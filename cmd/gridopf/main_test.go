package main

import (
	"bytes"
	"strings"
	"testing"

	"gridmtd"
)

// TestListingsMatchSharedRenderers pins the flag-dedup contract: the
// -case/-backend/-gamma "list" outputs are byte-identical to the shared
// facade renderers (and therefore to every other command's listings).
func TestListingsMatchSharedRenderers(t *testing.T) {
	for _, tc := range []struct {
		flag   string
		render func(*bytes.Buffer)
	}{
		{"-case", func(b *bytes.Buffer) { gridmtd.FormatCases(b) }},
		{"-backend", func(b *bytes.Buffer) { gridmtd.FormatBackends(b) }},
		{"-gamma", func(b *bytes.Buffer) { gridmtd.FormatGammaBackends(b) }},
	} {
		var got, want bytes.Buffer
		if err := run([]string{tc.flag, "list"}, &got); err != nil {
			t.Fatalf("%s list: %v", tc.flag, err)
		}
		tc.render(&want)
		if got.String() != want.String() {
			t.Errorf("%s list diverged from the shared renderer:\n got %q\nwant %q",
				tc.flag, got.String(), want.String())
		}
	}
}

// TestBadFlagErrorsListChoices pins the error contract the shared resolver
// carries: a bad backend value's error names every valid choice.
func TestBadFlagErrorsListChoices(t *testing.T) {
	err := run([]string{"-backend", "bogus"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("expected error for unknown backend")
	}
	for _, want := range []string{"auto", "dense", "sparse"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("backend flag error %q does not list %q", err, want)
		}
	}
	err = run([]string{"-gamma", "bogus"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("expected error for unknown gamma backend")
	}
	for _, want := range []string{"auto", "exact", "sparse", "sketch"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gamma flag error %q does not list %q", err, want)
		}
	}
}
