// Command gridopf inspects the embedded power system cases: it solves the
// OPF (optionally optimizing D-FACTS reactances), prints the dispatch,
// branch flows and binding constraints, and reports the state estimation
// setup (measurement counts, BDD threshold).
//
// Usage:
//
//	gridopf -case list
//	gridopf -case ieee14
//	gridopf -case case4gs -dfacts
//	gridopf -case ieee118
//	gridopf -case ieee118 -backend dense
//	gridopf -case ieee30 -scale 0.9 -sigma 0.002 -alpha 5e-4
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"gridmtd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gridopf:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gridopf", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		caseName = fs.String("case", "ieee14", "registered case name, or 'list' to print the registry")
		dfacts   = fs.Bool("dfacts", false, "optimize D-FACTS reactances too (paper problem (1))")
		scale    = fs.Float64("scale", 1.0, "load scaling factor")
		sigma    = fs.Float64("sigma", 0.0015, "measurement noise std dev (per-unit)")
		alpha    = fs.Float64("alpha", 5e-4, "BDD false-positive rate")
		starts   = fs.Int("starts", 8, "multi-start budget for the D-FACTS search")
		seed     = fs.Int64("seed", 1, "random seed")
		backend  = fs.String("backend", "auto", "linear-algebra backend: auto, dense or sparse ('list' describes them)")
		gammaBk  = fs.String("gamma", "auto", "γ-evaluation backend: auto, exact, sparse or sketch ('list' describes them)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if handled, err := gridmtd.ResolveCommonFlags(w, *caseName, *backend, *gammaBk); handled || err != nil {
		return err
	}

	n, err := gridmtd.CaseByName(*caseName)
	if err != nil {
		return err
	}
	if *scale != 1.0 {
		n.ScaleLoads(*scale)
	}
	if err := n.Validate(); err != nil {
		return err
	}

	fmt.Fprintf(w, "case %s: %d buses, %d branches (%d with D-FACTS), %d generators\n",
		n.Name, n.N(), n.L(), len(n.DFACTSIndices()), len(n.Gens))
	fmt.Fprintf(w, "total load %.1f MW, generation capacity %.1f MW\n\n",
		n.TotalLoadMW(), n.TotalGenCapacityMW())

	var res *gridmtd.OPFResult
	if *dfacts {
		res, err = gridmtd.SolveOPFWithDFACTS(n, gridmtd.DFACTSOPFConfig{Starts: *starts, Seed: *seed})
	} else {
		res, err = gridmtd.SolveOPF(n, n.Reactances())
	}
	if err != nil {
		return fmt.Errorf("OPF: %w", err)
	}

	fmt.Fprintf(w, "OPF cost: %.2f $/h\n\ndispatch:\n", res.CostPerHour)
	for i, g := range n.Gens {
		fmt.Fprintf(w, "  gen @ bus %-3d  %8.2f MW  (max %6.1f, %.0f $/MWh)\n",
			g.Bus, res.DispatchMW[i], g.MaxMW, g.CostPerMWh)
	}
	fmt.Fprintf(w, "\nbranch flows:\n")
	for l, br := range n.Branches {
		marker := ""
		if !math.IsInf(br.LimitMW, 1) && math.Abs(res.FlowsMW[l]) > br.LimitMW-1e-6 {
			marker = "  << at limit"
		}
		dev := ""
		if br.HasDFACTS {
			dev = " [D-FACTS]"
		}
		limit := "unlimited"
		if !math.IsInf(br.LimitMW, 1) {
			limit = fmt.Sprintf("%6.1f MW", br.LimitMW)
		}
		fmt.Fprintf(w, "  %2d: %2d->%-2d  x=%.5f  %8.2f MW / %s%s%s\n",
			l+1, br.From, br.To, res.Reactances[l], res.FlowsMW[l], limit, dev, marker)
	}

	est, err := gridmtd.NewEstimator(n, res.Reactances)
	if err != nil {
		return err
	}
	bdd, err := gridmtd.NewBDD(est, *sigma, *alpha)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstate estimation: %d measurements, %d states, %d residual DOF\n",
		est.NumMeasurements(), est.NumStates(), est.DOF())
	fmt.Fprintf(w, "BDD threshold τ = %.6f (σ = %g p.u., FP rate %g)\n", bdd.Tau, *sigma, *alpha)
	return nil
}
