// Command gridmtdload drives a running gridmtdd (or gridmtdd -route
// fleet front) with a deterministic mixed workload — selections, γ
// evaluations, day sweeps and placement studies over a configurable case
// list — and reports what the service delivered: throughput, latency
// percentiles, shed/timeout rates, and the server-side cache economics
// (memo hits, coalesced joins, disk hits) measured over exactly the run
// window via /v1/stats?mark= / ?since=.
//
// The report is one JSON object. With SLO flags set the exit status
// becomes a gate: any violated objective is listed in the report and the
// process exits 1, which is how CI keeps the serving path honest.
//
// Usage:
//
//	gridmtdload -addr http://127.0.0.1:8643 -duration 10s
//	gridmtdload -cases ieee57,ieee118 -mix select=60,gamma=30,placement=10
//	gridmtdload -concurrency 8 -variants 6 -o report.json
//	gridmtdload -duration 10s -slo-p99 2s -slo-max-shed 0.05 -slo-max-5xx 0
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridmtd/internal/planner"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridmtdload:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

type config struct {
	addr        string
	duration    time.Duration
	concurrency int
	cases       []string
	mix         map[string]int // endpoint -> weight
	variants    int
	seed        int64
	out         string

	sloP99     time.Duration // 0 = no gate
	sloMaxShed float64       // fraction of requests; < 0 = no gate
	sloMinRPS  float64       // 0 = no gate
	sloMax5xx  int64         // < 0 = no gate
}

// Report is the run's single JSON artifact.
type Report struct {
	Addr        string  `json:"addr"`
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	Mix         string  `json:"mix"`

	Requests int64            `json:"requests"`
	RPS      float64          `json:"rps"`
	ByStatus map[string]int64 `json:"by_status"`
	Net      int64            `json:"transport_errors"`
	Shed     int64            `json:"shed"`      // 429 load-shed answers
	ShedRate float64          `json:"shed_rate"` // shed / requests
	Count5xx int64            `json:"count_5xx"`

	LatencyMS Percentiles `json:"latency_ms"`

	// Server counters over exactly the run window (mark/since delta).
	Server *ServerWindow `json:"server_window,omitempty"`

	SLO SLOReport `json:"slo"`
}

type Percentiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// ServerWindow condenses the /v1/stats delta into the rates an operator
// tunes against: how much traffic the memo, the single-flight join and
// the disk cache absorbed, how hard admission control worked, and how
// many simplex runs the LP-layer screens (recycled Farkas rays, the
// dual-bound screen) retired before they started.
type ServerWindow struct {
	ResultHits      int64   `json:"result_hits"`
	ResultMisses    int64   `json:"result_misses"`
	ResultCoalesced int64   `json:"result_coalesced"`
	DiskHits        int64   `json:"disk_hits"`
	DiskWrites      int64   `json:"disk_writes"`
	Admitted        int64   `json:"admitted"`
	Queued          int64   `json:"queued"`
	Shed            int64   `json:"shed"`
	LPSolves        int64   `json:"lp_solves"`
	LPPrescreenHits int64   `json:"lp_prescreen_hits"`
	LPBoundProbes   int64   `json:"lp_bound_probes"`
	LPBoundScreens  int64   `json:"lp_bound_screens"`
	MemoHitRate     float64 `json:"memo_hit_rate"`
	CoalesceRate    float64 `json:"coalesce_rate"`
	DiskHitRate     float64 `json:"disk_hit_rate"`
	// BoundScreenRate is the fraction of would-be dispatch solves the
	// dual-bound screen retired: screens / (screens + solves).
	BoundScreenRate float64 `json:"bound_screen_rate"`
}

type SLOReport struct {
	Gated      bool     `json:"gated"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

func run(args []string, w io.Writer) (int, error) {
	cfg, err := parseFlags(args, w)
	if err != nil {
		if err == flag.ErrHelp {
			return 0, nil
		}
		return 1, err
	}
	report, err := drive(cfg)
	if err != nil {
		return 1, err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return 1, err
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return 1, err
	}
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
			return 1, err
		}
	}
	if report.SLO.Gated && !report.SLO.Pass {
		return 1, nil
	}
	return 0, nil
}

func parseFlags(args []string, w io.Writer) (config, error) {
	fs := flag.NewFlagSet("gridmtdload", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8643", "gridmtdd (or router) base URL")
		duration = fs.Duration("duration", 10*time.Second, "how long to drive traffic")
		conc     = fs.Int("concurrency", 4, "concurrent client workers")
		cases    = fs.String("cases", "ieee14,ieee57", "comma-separated case names to spread traffic over")
		mix      = fs.String("mix", "select=70,gamma=25,placement=5", "endpoint weights: select=N,gamma=N,daysweep=N,placement=N")
		variants = fs.Int("variants", 4, "distinct parameter variants per (case, endpoint); lower = more repeats = higher cache-hit rate")
		seed     = fs.Int64("seed", 1, "workload seed (same seed = same request sequence)")
		out      = fs.String("o", "", "also write the JSON report to this file")
		sloP99   = fs.Duration("slo-p99", 0, "fail (exit 1) if p99 latency exceeds this (0 = no gate)")
		sloShed  = fs.Float64("slo-max-shed", -1, "fail if shed-rate (429s/requests) exceeds this fraction (< 0 = no gate)")
		sloRPS   = fs.Float64("slo-min-rps", 0, "fail if throughput falls below this (0 = no gate)")
		slo5xx   = fs.Int64("slo-max-5xx", -1, "fail if more than this many 5xx responses (< 0 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		addr:        strings.TrimRight(*addr, "/"),
		duration:    *duration,
		concurrency: *conc,
		variants:    *variants,
		seed:        *seed,
		out:         *out,
		sloP99:      *sloP99,
		sloMaxShed:  *sloShed,
		sloMinRPS:   *sloRPS,
		sloMax5xx:   *slo5xx,
	}
	if !strings.Contains(cfg.addr, "://") {
		cfg.addr = "http://" + cfg.addr
	}
	for _, c := range strings.Split(*cases, ",") {
		if c = strings.TrimSpace(c); c != "" {
			cfg.cases = append(cfg.cases, c)
		}
	}
	if len(cfg.cases) == 0 {
		return config{}, fmt.Errorf("-cases is empty")
	}
	if cfg.concurrency < 1 {
		return config{}, fmt.Errorf("-concurrency must be >= 1")
	}
	if cfg.variants < 1 {
		cfg.variants = 1
	}
	cfg.mix = map[string]int{}
	for _, part := range strings.Split(*mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight, ok := strings.Cut(part, "=")
		if !ok {
			return config{}, fmt.Errorf("bad -mix entry %q, want endpoint=weight", part)
		}
		n, err := strconv.Atoi(weight)
		if err != nil || n < 0 {
			return config{}, fmt.Errorf("bad -mix weight in %q", part)
		}
		switch name {
		case "select", "gamma", "daysweep", "placement":
			cfg.mix[name] = n
		default:
			return config{}, fmt.Errorf("unknown -mix endpoint %q", name)
		}
	}
	total := 0
	for _, n := range cfg.mix {
		total += n
	}
	if total == 0 {
		return config{}, fmt.Errorf("-mix has no positive weight")
	}
	return cfg, nil
}

// sample is one completed request.
type sample struct {
	status  int
	latency time.Duration
	netErr  bool
}

func drive(cfg config) (*Report, error) {
	client := &http.Client{Timeout: 5 * time.Minute}

	// Branch counts feed the γ-endpoint request bodies.
	branches, err := fetchBranchCounts(client, cfg.addr, cfg.cases)
	if err != nil {
		return nil, err
	}

	// Mark the stats window so the report's server-side rates cover
	// exactly this run, not the daemon's lifetime.
	markOK := statsMark(client, cfg.addr, "loadgen") == nil

	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	workerSamples := make([][]sample, cfg.concurrency)
	start := time.Now()
	for wkr := 0; wkr < cfg.concurrency; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(wkr)*7919))
			for time.Now().Before(deadline) {
				path, body := nextRequest(cfg, rng, branches)
				t0 := time.Now()
				status, err := post(client, cfg.addr+path, body)
				workerSamples[wkr] = append(workerSamples[wkr], sample{
					status: status, latency: time.Since(t0), netErr: err != nil,
				})
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := &Report{
		Addr:        cfg.addr,
		DurationSec: elapsed.Seconds(),
		Concurrency: cfg.concurrency,
		Mix:         mixString(cfg.mix),
		ByStatus:    map[string]int64{},
	}
	var latencies []time.Duration
	for _, samples := range workerSamples {
		for _, s := range samples {
			report.Requests++
			if s.netErr {
				report.Net++
				continue
			}
			report.ByStatus[strconv.Itoa(s.status)]++
			latencies = append(latencies, s.latency)
			switch {
			case s.status == http.StatusTooManyRequests:
				report.Shed++
			case s.status >= 500:
				report.Count5xx++
			}
		}
	}
	if report.Requests > 0 {
		report.RPS = float64(report.Requests) / elapsed.Seconds()
		report.ShedRate = float64(report.Shed) / float64(report.Requests)
	}
	report.LatencyMS = percentiles(latencies)
	if markOK {
		report.Server = statsWindow(client, cfg.addr, "loadgen")
	}
	report.SLO = gate(cfg, report)
	return report, nil
}

// nextRequest draws one request from the configured mix, deterministic
// in (seed, worker, step). Parameter variants cycle so the same bodies
// recur — that repetition is what exercises memo, coalescing and disk.
func nextRequest(cfg config, rng *rand.Rand, branches map[string]int) (string, any) {
	total := 0
	for _, n := range cfg.mix {
		total += n
	}
	pick := rng.Intn(total)
	endpoint := ""
	for _, name := range []string{"select", "gamma", "daysweep", "placement"} {
		if n := cfg.mix[name]; pick < n {
			endpoint = name
			break
		} else {
			pick -= n
		}
	}
	caseName := cfg.cases[rng.Intn(len(cfg.cases))]
	v := rng.Intn(cfg.variants)
	switch endpoint {
	case "gamma":
		xNew := make([]float64, branches[caseName])
		for i := range xNew {
			xNew[i] = 0.1 + 0.001*float64(v)
		}
		return "/v1/gamma", planner.GammaRequest{Case: caseName, XNew: xNew}
	case "daysweep":
		return "/v1/daysweep", planner.DaySweepRequest{Case: caseName, Seed: int64(11 + v)}
	case "placement":
		return "/v1/placement", planner.PlacementRequest{Case: caseName, Devices: 1 + v%2}
	default: // select
		return "/v1/select", planner.SelectRequest{
			Case:           caseName,
			GammaThreshold: 0.05 + 0.01*float64(v),
			Starts:         1,
			MaxEvals:       20,
			Seed:           1,
			Attacks:        20,
		}
	}
}

func fetchBranchCounts(client *http.Client, addr string, cases []string) (map[string]int, error) {
	resp, err := client.Get(addr + "/v1/cases")
	if err != nil {
		return nil, fmt.Errorf("fetch case registry: %w", err)
	}
	defer resp.Body.Close()
	var listing []struct {
		Name     string `json:"Name"`
		Branches int    `json:"Branches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, fmt.Errorf("decode case registry: %w", err)
	}
	counts := map[string]int{}
	for _, c := range listing {
		counts[c.Name] = c.Branches
	}
	for _, c := range cases {
		if counts[c] == 0 {
			return nil, fmt.Errorf("case %q not in the server's registry", c)
		}
	}
	return counts, nil
}

func post(client *http.Client, url string, body any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func statsMark(client *http.Client, addr, mark string) error {
	resp, err := client.Get(addr + "/v1/stats?mark=" + mark)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats mark: status %d", resp.StatusCode)
	}
	return nil
}

// statsWindow reads the run-window delta. Best effort: a fleet where the
// stats fan-out fails mid-run just omits the server block.
func statsWindow(client *http.Client, addr, mark string) *ServerWindow {
	resp, err := client.Get(addr + "/v1/stats?since=" + mark)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var st planner.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	w := &ServerWindow{
		ResultHits:      st.ResultHits,
		ResultMisses:    st.ResultMisses,
		ResultCoalesced: st.ResultCoalesced,
		DiskHits:        st.Disk.Hits,
		DiskWrites:      st.Disk.Writes,
		Admitted:        st.Admission.Admitted,
		Queued:          st.Admission.Queued,
		Shed:            st.Admission.Shed,
		LPSolves:        int64(st.LP.Solves),
		LPPrescreenHits: int64(st.LP.PrescreenHits),
		LPBoundProbes:   int64(st.LP.BoundProbes),
		LPBoundScreens:  int64(st.LP.BoundScreens),
	}
	if served := w.ResultHits + w.ResultMisses + w.ResultCoalesced; served > 0 {
		w.MemoHitRate = float64(w.ResultHits) / float64(served)
		w.CoalesceRate = float64(w.ResultCoalesced) / float64(served)
		w.DiskHitRate = float64(w.DiskHits) / float64(served)
	}
	if would := w.LPBoundScreens + w.LPSolves; would > 0 {
		w.BoundScreenRate = float64(w.LPBoundScreens) / float64(would)
	}
	return w
}

func percentiles(lat []time.Duration) Percentiles {
	if len(lat) == 0 {
		return Percentiles{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		idx := int(q*float64(len(lat))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx]) / float64(time.Millisecond)
	}
	return Percentiles{
		P50: at(0.50), P95: at(0.95), P99: at(0.99),
		Max: float64(lat[len(lat)-1]) / float64(time.Millisecond),
	}
}

func gate(cfg config, r *Report) SLOReport {
	slo := SLOReport{Pass: true}
	check := func(violated bool, format string, a ...any) {
		slo.Gated = true
		if violated {
			slo.Pass = false
			slo.Violations = append(slo.Violations, fmt.Sprintf(format, a...))
		}
	}
	if cfg.sloP99 > 0 {
		budget := float64(cfg.sloP99) / float64(time.Millisecond)
		check(r.LatencyMS.P99 > budget, "p99 %.1f ms exceeds budget %.1f ms", r.LatencyMS.P99, budget)
	}
	if cfg.sloMaxShed >= 0 {
		check(r.ShedRate > cfg.sloMaxShed, "shed rate %.3f exceeds %.3f", r.ShedRate, cfg.sloMaxShed)
	}
	if cfg.sloMinRPS > 0 {
		check(r.RPS < cfg.sloMinRPS, "throughput %.1f req/s below %.1f", r.RPS, cfg.sloMinRPS)
	}
	if cfg.sloMax5xx >= 0 {
		check(r.Count5xx > cfg.sloMax5xx, "%d responses were 5xx (budget %d)", r.Count5xx, cfg.sloMax5xx)
	}
	// Transport errors always gate when any gate is armed: a connection
	// that never answered is worse than any 5xx.
	if slo.Gated {
		check(r.Net > 0, "%d requests failed at the transport layer", r.Net)
	}
	return slo
}

func mixString(mix map[string]int) string {
	var parts []string
	for _, name := range []string{"select", "gamma", "daysweep", "placement"} {
		if n := mix[name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, n))
		}
	}
	return strings.Join(parts, ",")
}
