package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubDaemon fakes just enough of the gridmtdd surface for the load
// generator: the case registry, the stats mark/since pair, and compute
// endpoints whose behavior the test scripts via shedEvery.
type stubDaemon struct {
	requests  atomic.Int64
	shedEvery int64 // every Nth compute request answers 429 (0 = never)
	marked    atomic.Bool
}

func (s *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cases", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]map[string]any{
			{"Name": "ieee14", "Branches": 20},
			{"Name": "ieee57", "Branches": 80},
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("mark") != "" {
			s.marked.Store(true)
		}
		if since := r.URL.Query().Get("since"); since != "" && !s.marked.Load() {
			http.Error(w, `{"error":"unknown mark"}`, http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"result_hits": 6, "result_misses": 2, "result_coalesced": 2,
			"disk_cache": map[string]any{"hits": 1, "writes": 2},
			"admission":  map[string]any{"admitted": 4, "queued": 1, "shed": 0},
		})
	})
	compute := func(w http.ResponseWriter, r *http.Request) {
		n := s.requests.Add(1)
		if s.shedEvery > 0 && n%s.shedEvery == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"case": "ieee14", "gamma": 0.1})
	}
	for _, p := range []string{"/v1/select", "/v1/gamma", "/v1/daysweep", "/v1/placement"} {
		mux.HandleFunc("POST "+p, compute)
	}
	return mux
}

func runStub(t *testing.T, stub *stubDaemon, extraArgs ...string) (int, *Report) {
	t.Helper()
	srv := httptest.NewServer(stub.handler())
	t.Cleanup(srv.Close)
	args := append([]string{
		"-addr", srv.URL, "-duration", "300ms", "-concurrency", "2", "-seed", "7",
	}, extraArgs...)
	var out bytes.Buffer
	code, err := run(args, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var report Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	return code, &report
}

// TestLoadRunHappyPath drives the stub and pins the report shape: request
// accounting, percentile ordering, the mark/since server window, and the
// exit code with no SLO gates armed.
func TestLoadRunHappyPath(t *testing.T) {
	stub := &stubDaemon{}
	code, r := runStub(t, stub, "-mix", "select=50,gamma=50")
	if code != 0 {
		t.Fatalf("ungated run exited %d", code)
	}
	if r.Requests < 10 {
		t.Fatalf("only %d requests in 300ms against an instant stub", r.Requests)
	}
	if r.ByStatus["200"] != r.Requests || r.Net != 0 || r.Count5xx != 0 || r.Shed != 0 {
		t.Errorf("status accounting off: %+v", r)
	}
	if r.RPS <= 0 {
		t.Errorf("rps = %v", r.RPS)
	}
	lat := r.LatencyMS
	if lat.P50 <= 0 || lat.P50 > lat.P95 || lat.P95 > lat.P99 || lat.P99 > lat.Max {
		t.Errorf("percentiles out of order: %+v", lat)
	}
	if r.Server == nil {
		t.Fatal("report missing the server window")
	}
	if r.Server.ResultHits != 6 || r.Server.ResultCoalesced != 2 || r.Server.DiskHits != 1 {
		t.Errorf("server window %+v does not match the stub's stats", r.Server)
	}
	// 6 hits + 2 misses + 2 coalesced served => rates over 10.
	if r.Server.MemoHitRate != 0.6 || r.Server.CoalesceRate != 0.2 || r.Server.DiskHitRate != 0.1 {
		t.Errorf("rates %+v, want 0.6/0.2/0.1", r.Server)
	}
	if !r.SLO.Gated && r.SLO.Pass != true {
		t.Errorf("ungated run must report pass: %+v", r.SLO)
	}
}

// TestLoadSheddingAndGates pins the SLO gating: a shedding server trips
// -slo-max-shed (exit 1, violation listed) while a generous budget passes.
func TestLoadSheddingAndGates(t *testing.T) {
	code, r := runStub(t, &stubDaemon{shedEvery: 3}, "-slo-max-shed", "0.05")
	if code != 1 {
		t.Fatalf("~33%% shed against a 5%% budget exited %d, want 1", code)
	}
	if r.SLO.Pass || len(r.SLO.Violations) == 0 || !strings.Contains(r.SLO.Violations[0], "shed rate") {
		t.Errorf("SLO report %+v does not name the shed violation", r.SLO)
	}
	if r.Shed == 0 || r.ShedRate < 0.2 || r.ShedRate > 0.5 {
		t.Errorf("shed accounting: %d shed, rate %v, want ~1/3", r.Shed, r.ShedRate)
	}
	// 429s are back-pressure, not server errors.
	if r.Count5xx != 0 {
		t.Errorf("shed answers counted as 5xx: %d", r.Count5xx)
	}
	if code, r := runStub(t, &stubDaemon{shedEvery: 3}, "-slo-max-shed", "0.9"); code != 0 || !r.SLO.Pass {
		t.Errorf("generous shed budget: exit %d, slo %+v", code, r.SLO)
	}
	// An impossible p99 budget trips its gate even with zero shed.
	if code, r := runStub(t, &stubDaemon{}, "-slo-p99", "1ns"); code != 1 || r.SLO.Pass {
		t.Errorf("1ns p99 budget: exit %d, slo %+v", code, r.SLO)
	}
	// An impossible throughput floor trips its gate.
	if code, _ := runStub(t, &stubDaemon{}, "-slo-min-rps", "1e9"); code != 1 {
		t.Errorf("1e9 rps floor: exit %d, want 1", code)
	}
}

// TestLoadReportFile pins -o: the same JSON lands in the file.
func TestLoadReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	_, want := runStub(t, &stubDaemon{}, "-o", path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("file report is not JSON: %v", err)
	}
	if got.Requests != want.Requests || got.RPS != want.RPS {
		t.Errorf("file report differs from stdout report")
	}
}

// TestLoadFlagErrors pins the flag surface's rejections.
func TestLoadFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mix", "select"},
		{"-mix", "select=-1"},
		{"-mix", "teleport=10"},
		{"-mix", "select=0,gamma=0"},
		{"-cases", ""},
		{"-concurrency", "0"},
	} {
		var out bytes.Buffer
		if _, err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// An unknown case is caught against the live registry before any load.
	stub := &stubDaemon{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	var out bytes.Buffer
	if _, err := run([]string{"-addr", srv.URL, "-cases", "ieee9999", "-duration", "50ms"}, &out); err == nil {
		t.Error("unknown case accepted")
	}
}

// TestPercentiles pins the estimator on a known distribution.
func TestPercentiles(t *testing.T) {
	var lat []time.Duration
	for i := 1; i <= 100; i++ {
		lat = append(lat, time.Duration(i)*time.Millisecond)
	}
	p := percentiles(lat)
	if p.P50 != 50 || p.P95 != 95 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles of 1..100ms = %+v, want 50/95/99/100", p)
	}
	if z := (percentiles(nil)); z != (Percentiles{}) {
		t.Errorf("empty percentiles = %+v", z)
	}
}
