// Command gencase300 regenerates the embedded 300-bus case description
// (internal/grid/cases/case300.go). The authoritative IEEE 300-bus data
// file is not redistributed with this repository, so the 300-bus entry is
// a documented deterministic reconstruction at that system's published
// aggregate scale — 300 buses in three interconnected areas, 411 branches,
// 69 generators, ≈ 23.5 GW of demand — built by this generator from a
// fixed seed:
//
//   - each area is a 100-bus chain (short, low-reactance backbone edges)
//     meshed by 36 longer chords; six backbone ties couple the areas
//     (3 between areas 1-2, 2 between 2-3, 1 between 1-3), giving a
//     connected 411-branch network with no parallel pairs, matching the
//     Network model's unique-bus-pair branches;
//   - ~62% of buses carry load, drawn heavy-tailed and rescaled to the
//     IEEE 300-bus system's 23,525 MW total;
//   - 69 generators (8 large base-load units at 18-30 $/MWh, 61 smaller
//     units at 35-75 $/MWh) are spread across the areas with aggregate
//     capacity 1.4x the demand; the largest unit's bus is the angle
//     reference;
//   - 12 D-FACTS devices (4 chords per area, ηmax = 0.5) keep the max-γ
//     corner poll exact, as on the embedded 57- and 118-bus cases;
//   - the emitted ratings array is all zeros (unlimited); regenerate the
//     calibrated limits with `calibcase -case ieee300 -floor 30` and paste
//     them over the array, exactly as for the 57- and 118-bus cases.
//
// Usage:
//
//	gencase300 > internal/grid/cases/case300.go
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

const (
	areas       = 3
	busesPer    = 100
	chordsPer   = 36
	totalLoadMW = 23525.2 // IEEE 300-bus published total demand
	seed        = 300
)

type branch struct {
	from, to int
	x        float64
}

func main() {
	rng := rand.New(rand.NewSource(seed))
	nBuses := areas * busesPer

	// Branches: per-area backbone chains, then chords, then the ties.
	var branches []branch
	used := map[[2]int]bool{}
	add := func(a, b int, x float64) bool {
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if a == b || used[key] {
			return false
		}
		used[key] = true
		branches = append(branches, branch{from: a, to: b, x: math.Round(x*1e4) / 1e4})
		return true
	}
	for a := 0; a < areas; a++ {
		base := a * busesPer
		for i := 1; i < busesPer; i++ {
			add(base+i, base+i+1, 0.01+0.05*rng.Float64())
		}
	}
	var chordIdx []int // branch indices of the chords, per area in order
	for a := 0; a < areas; a++ {
		base := a * busesPer
		for c := 0; c < chordsPer; {
			i := base + 1 + rng.Intn(busesPer)
			j := base + 1 + rng.Intn(busesPer)
			if i > j {
				i, j = j, i
			}
			if j-i < 2 {
				continue
			}
			if add(i, j, 0.03+0.22*rng.Float64()) {
				chordIdx = append(chordIdx, len(branches)-1)
				c++
			}
		}
	}
	ties := [][2]int{
		{25, 125}, {50, 150}, {75, 175}, // areas 1-2
		{140, 240}, {170, 270}, // areas 2-3
		{90, 290}, // areas 1-3
	}
	for _, t := range ties {
		add(t[0], t[1], 0.01+0.03*rng.Float64())
	}

	// Loads: heavy-tailed draw on ~62% of buses, rescaled to the published
	// total.
	loads := make([]float64, nBuses)
	var sum float64
	for i := range loads {
		if rng.Float64() < 0.62 {
			u := rng.Float64()
			loads[i] = 20 + 160*u*u
			sum += loads[i]
		}
	}
	scale := totalLoadMW / sum
	var total float64
	for i := range loads {
		loads[i] = math.Round(loads[i]*scale*10) / 10
		total += loads[i]
	}

	// Generators: 23 per area at distinct buses; the first 8 overall are
	// large cheap base-load units.
	type gen struct {
		bus       int
		cost, max float64
	}
	var gens []gen
	for a := 0; a < areas; a++ {
		base := a * busesPer
		picked := map[int]bool{}
		for g := 0; g < 23; {
			bus := base + 1 + rng.Intn(busesPer)
			if picked[bus] {
				continue
			}
			picked[bus] = true
			gens = append(gens, gen{bus: bus})
			g++
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].bus < gens[j].bus })
	var capSum float64
	for i := range gens {
		if i%9 == 0 { // 8 large units (indices 0,9,...,63)
			gens[i].cost = math.Round((18+12*rng.Float64())*100) / 100
			gens[i].max = math.Round((800 + 700*rng.Float64()))
		} else {
			gens[i].cost = math.Round((35+40*rng.Float64())*100) / 100
			gens[i].max = math.Round((100 + 400*rng.Float64()))
		}
		capSum += gens[i].max
	}
	capScale := 1.4 * total / capSum
	capSum = 0
	slack, largest := 1, 0.0
	for i := range gens {
		gens[i].max = 5 * math.Round(gens[i].max*capScale/5)
		capSum += gens[i].max
		if gens[i].max > largest {
			largest, slack = gens[i].max, gens[i].bus
		}
	}

	// D-FACTS: 4 evenly spaced chords per area.
	var dfacts []int
	for a := 0; a < areas; a++ {
		for k := 0; k < 4; k++ {
			dfacts = append(dfacts, chordIdx[a*chordsPer+k*(chordsPer/4)]+1)
		}
	}
	sort.Ints(dfacts)

	// Emit the case file.
	fmt.Printf(`package cases

// ieee300 is the repository's 300-bus scaling case. The authoritative
// IEEE 300-bus data file is not redistributed here; this entry is a
// deterministic reconstruction at that system's published aggregate scale
// (300 buses in three interconnected areas, 411 branches, 69 generators,
// %.1f MW demand, ~1.4x generation margin), generated by cmd/gencase300
// (fixed seed %d — regenerate with `+"`gencase300 > case300.go`"+`) and
// carrying the same reproduction conventions as the embedded 57- and
// 118-bus cases: no parallel branch pairs, linear generator costs, 12
// D-FACTS devices with the paper's ηmax = 0.5, and ratings calibrated
// from the rating-free base-case OPF flows by cmd/calibcase
// (-case ieee300 -floor 30). Bus %d — the largest unit's bus — is the
// angle reference.
func init() {
	Register(&Spec{
		Name:     "ieee300",
		Aliases:  []string{"300bus", "case300"},
		Title:    "300-bus three-area system (reconstructed at IEEE-300 scale, calibrated ratings)",
		BaseMVA:  100,
		SlackBus: %d,
		LoadsMW: []float64{
`, total, seed, slack, slack)
	for i := 0; i < nBuses; i += 10 {
		fmt.Printf("\t\t\t")
		for j := i; j < i+10; j++ {
			fmt.Printf("%g, ", loads[j])
		}
		fmt.Printf("// %d-%d\n", i+1, i+10)
	}
	fmt.Printf("\t\t},\n\t\tBranches: []Branch{\n")
	for i, b := range branches {
		fmt.Printf("\t\t\t{From: %d, To: %d, X: %g, LimitMW: caseLimit300[%d]}, // %d\n",
			b.from, b.to, b.x, i, i+1)
	}
	fmt.Printf("\t\t},\n\t\tGens: []Gen{\n")
	for _, g := range gens {
		fmt.Printf("\t\t\t{Bus: %d, CostPerMWh: %g, MinMW: 0, MaxMW: %g},\n", g.bus, g.cost, g.max)
	}
	fmt.Printf("\t\t},\n\t\tDFACTS: []int{")
	for i, d := range dfacts {
		if i > 0 {
			fmt.Printf(", ")
		}
		fmt.Printf("%d", d)
	}
	fmt.Printf("},\n\t\tEtaMax: 0.5,\n\t})\n}\n\n")
	fmt.Printf("// caseLimit300 holds the calibrated branch ratings (MW) in branch order;\n")
	fmt.Printf("// zeros mean unlimited. Regenerate with cmd/calibcase -case ieee300 -floor 30.\n")
	fmt.Printf("var caseLimit300 = [%d]float64{}\n", len(branches))
}
