// Command mtdexp regenerates the tables and figures of "Cost-Benefit
// Analysis of Moving-Target Defense in Power Grids" (DSN 2018).
//
// Usage:
//
//	mtdexp -list
//	mtdexp -exp table1
//	mtdexp -exp fig6a -quick
//	mtdexp -exp fig6a -case ieee118 -quick
//	mtdexp -case list
//	mtdexp -exp all -out results.txt
//	mtdexp -exp table1 -parallel 8 -cpuprofile cpu.prof
//	mtdexp -exp fig9 -case ieee118 -quick -backend dense
//
// Experiment IDs follow the paper's numbering: table1..table4, fig6a,
// fig6b, fig7, fig8, fig9, fig10, fig11. The -quick flag shrinks sampling
// budgets (useful for smoke tests); the default budgets follow the paper's
// protocol. The -case flag reruns a case-generic experiment's protocol on
// any registered grid (-case list shows them); with -exp all it runs every
// case-generic experiment on that grid. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gridmtd"
	"gridmtd/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mtdexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mtdexp", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		exp      = fs.String("exp", "all", "experiment id to run, or 'all'")
		caseName = fs.String("case", "", "run case-generic experiments on this registered case ('list' prints the registry)")
		quick    = fs.Bool("quick", false, "use reduced sampling budgets")
		out      = fs.String("out", "", "also write the output to this file")
		parallel = fs.Int("parallel", 0, "worker parallelism for the multi-start searches and η' sweeps (0 = all cores, 1 = serial); results are identical for any setting")
		backend  = fs.String("backend", "auto", "linear-algebra backend: auto, dense or sparse ('list' describes them)")
		gammaBk  = fs.String("gamma", "auto", "γ-evaluation backend: auto, exact, sparse or sketch ('list' describes them)")
		verbose  = fs.Bool("v", false, "append the process-wide dispatch-LP solver counters after the run")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if handled, err := gridmtd.ResolveCommonFlags(stdout, *caseName, *backend, *gammaBk); handled || err != nil {
		return err
	}

	if *parallel > 0 {
		// The engine parallelism knobs default to GOMAXPROCS, so capping
		// it caps every parallel path at once. Outputs do not depend on
		// the setting (see optimize.MSConfig.Parallelism).
		runtime.GOMAXPROCS(*parallel)
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range experiments.All() {
			marker := " "
			if e.CaseGeneric {
				marker = "*" // accepts -case
			}
			fmt.Fprintf(stdout, "%-8s %s %s\n", e.ID, marker, e.Title)
		}
		fmt.Fprintf(stdout, "\n* = case-generic: accepts -case (see -case list)\n")
		return nil
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	opts := experiments.Options{Quality: experiments.Full, Case: *caseName}
	if *quick {
		opts.Quality = experiments.Quick
	}

	var ids []string
	if strings.EqualFold(*exp, "all") {
		if *caseName != "" {
			// A case override restricts "all" to the experiments that can
			// honor it.
			ids = experiments.CaseGenericIDs()
			fmt.Fprintf(w, "case %s: running the case-generic experiments (%s)\n\n", *caseName, strings.Join(ids, ", "))
		} else {
			ids = experiments.IDs()
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		fmt.Fprintf(w, "=== %s: %s (quality: %s)\n", e.ID, e.Title, opts.Quality)
		if err := experiments.RunOne(e, w, opts); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Fprintf(w, "(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if *verbose {
		gridmtd.FormatLPStats(w, gridmtd.GlobalLPStats())
		gridmtd.FormatSolveCacheStats(w, gridmtd.GlobalSolveCacheStats())
	}
	return nil
}
