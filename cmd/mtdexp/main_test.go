package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridmtd"
)

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table1", "fig6a", "fig10", "impact", "learning"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestCaseListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-case", "list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"case4gs", "ieee14", "ieee30", "ieee57", "ieee118"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("case list missing %q:\n%s", name, buf.String())
		}
	}
}

// TestListingsMatchSharedRenderers pins the flag-dedup contract: the
// listings delegate to the shared facade renderers, so mtdexp's bytes are
// identical to mtdscan's and gridopf's.
func TestListingsMatchSharedRenderers(t *testing.T) {
	for _, tc := range []struct {
		flag   string
		render func(*bytes.Buffer)
	}{
		{"-case", func(b *bytes.Buffer) { gridmtd.FormatCases(b) }},
		{"-backend", func(b *bytes.Buffer) { gridmtd.FormatBackends(b) }},
		{"-gamma", func(b *bytes.Buffer) { gridmtd.FormatGammaBackends(b) }},
	} {
		var got, want bytes.Buffer
		if err := run([]string{tc.flag, "list"}, &got); err != nil {
			t.Fatalf("%s list: %v", tc.flag, err)
		}
		tc.render(&want)
		if got.String() != want.String() {
			t.Errorf("%s list diverged from the shared renderer:\n got %q\nwant %q",
				tc.flag, got.String(), want.String())
		}
	}
}

// TestVerboseLPStats pins mtdexp -v: after a run the process-wide
// dispatch-LP counter block is appended, making warm-path health (eta
// updates vs refactorizations) observable from the CLI.
func TestVerboseLPStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1", "-quick", "-v"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dispatch LP:", "eta updates", "refactorizations"} {
		if !strings.Contains(out, want) {
			t.Errorf("-v output missing %q:\n%s", want, out)
		}
	}
}

func TestCaseOverrideOnPinnedExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "table1", "-case", "ieee118"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("err = %v, want pinned-experiment error", err)
	}
}

func TestCaseOverrideUnknownCase(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig6a", "-case", "bogus"}, &buf); err == nil {
		t.Fatal("expected error for unknown case")
	}
}

func TestRunTablesWithOutputFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "out.txt")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1,table4", "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	// Output goes to both the writer and the file.
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("stdout missing Table I")
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table IV") {
		t.Error("file output missing Table IV")
	}
}

func TestQuickFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table2", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quality: quick") {
		t.Error("quick quality not reported")
	}
}
