package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table1", "fig6a", "fig10", "impact", "learning"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunTablesWithOutputFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "out.txt")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1,table4", "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	// Output goes to both the writer and the file.
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("stdout missing Table I")
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table IV") {
		t.Error("file output missing Table IV")
	}
}

func TestQuickFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table2", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quality: quick") {
		t.Error("quick quality not reported")
	}
}
