package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table1", "fig6a", "fig10", "impact", "learning"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestCaseListFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-case", "list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"case4gs", "ieee14", "ieee30", "ieee57", "ieee118"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("case list missing %q:\n%s", name, buf.String())
		}
	}
}

func TestCaseOverrideOnPinnedExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "table1", "-case", "ieee118"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("err = %v, want pinned-experiment error", err)
	}
}

func TestCaseOverrideUnknownCase(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig6a", "-case", "bogus"}, &buf); err == nil {
		t.Fatal("expected error for unknown case")
	}
}

func TestRunTablesWithOutputFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "out.txt")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1,table4", "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	// Output goes to both the writer and the file.
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("stdout missing Table I")
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table IV") {
		t.Error("file output missing Table IV")
	}
}

func TestQuickFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table2", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quality: quick") {
		t.Error("quick quality not reported")
	}
}
