// Command calib4bus reproduces the calibration of the 4-bus example's
// branch flow limits. The paper's Tables II-III fix the case4gs topology,
// loads, reactances, generator costs (20 and 30 $/MWh) and capacities, but
// omit the flow limits that make the post-perturbation dispatch deviate
// from (350, 150) MW. This sweep finds the limits on branches 1 and 2 that
// best reproduce the published Table III dispatch; the winning values are
// hard-coded as grid.Case4GSLine1LimitMW / Case4GSLine2LimitMW.
package main

import (
	"fmt"
	"math"
	"os"

	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calib4bus:", err)
		os.Exit(1)
	}
}

func run() error {
	// Table III targets: generator-1 dispatch under each single-line +20%
	// reactance perturbation.
	target := []float64{337.37, 340.51, 348.62, 345.95}
	bestErr := math.Inf(1)
	var bestF1, bestF2 float64
	for f1 := 124.0; f1 <= 132.0; f1 += 0.1 {
		for f2 := 172.0; f2 <= 176.0; f2 += 0.1 {
			n := grid.Case4GS()
			n.Branches[0].LimitMW = f1
			n.Branches[1].LimitMW = f2
			// The pre-perturbation OPF must still give (350, 150).
			pre, err := opf.SolveDispatch(n, n.Reactances())
			if err != nil || math.Abs(pre.DispatchMW[0]-350) > 0.01 {
				continue
			}
			var errSum float64
			feasible := true
			for line := 0; line < 4; line++ {
				x := n.Reactances()
				x[line] *= 1.2
				res, err := opf.SolveDispatch(n.WithReactances(x), x)
				if err != nil {
					feasible = false
					break
				}
				d := res.DispatchMW[0] - target[line]
				errSum += d * d
			}
			if feasible && errSum < bestErr {
				bestErr = errSum
				bestF1, bestF2 = f1, f2
			}
		}
	}
	fmt.Printf("best limits: branch1 = %.2f MW, branch2 = %.2f MW (dispatch RMSE %.4f MW)\n",
		bestF1, bestF2, math.Sqrt(bestErr/4))

	n := grid.Case4GS()
	n.Branches[0].LimitMW = bestF1
	n.Branches[1].LimitMW = bestF2
	pre, err := opf.SolveDispatch(n, n.Reactances())
	if err != nil {
		return err
	}
	fmt.Printf("pre-perturbation: g = (%.2f, %.2f) MW, cost = %.0f $/h, flows = %.2f MW\n",
		pre.DispatchMW[0], pre.DispatchMW[1], pre.CostPerHour, pre.FlowsMW)
	for line := 0; line < 4; line++ {
		x := n.Reactances()
		x[line] *= 1.2
		res, err := opf.SolveDispatch(n.WithReactances(x), x)
		if err != nil {
			return err
		}
		fmt.Printf("Δx%d: g1 = %.2f MW (paper %.2f), g2 = %.2f MW, cost = %.1f $/h\n",
			line+1, res.DispatchMW[0], target[line], res.DispatchMW[1], res.CostPerHour)
	}
	return nil
}
