// Router mode: gridmtdd -route shard1:port,shard2:port turns the daemon
// into a thin proxy that splits the case registry across N gridmtdd
// replicas. Each request's (case, load_scale) pair is rendezvous-hashed
// (highest-random-weight) over the shard list, so one case always lands
// on one shard — its factorized engines, response memo and disk cache
// never duplicate — and removing or adding a shard only remaps the 1/N
// of the keyspace that touched it. Concurrent byte-identical POSTs are
// single-flighted at the router: one forward crosses to the shard and
// every twin replays its buffered response (the "single_flight" block
// under /v1/stats counts forwards and joins). GET /v1/stats answers the
// field-wise sum of every shard's counters; /healthz aggregates shard
// health.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxRouteBody bounds how much of a request body the router will buffer
// for shard selection and forwarding (explicit x_old vectors on the
// 300-bus case are ~10 KB; 4 MiB is far beyond any legitimate request).
const maxRouteBody = 4 << 20

// router proxies planner traffic over a fixed shard list.
type router struct {
	shards []string // normalized base URLs, e.g. http://127.0.0.1:8643
	client *http.Client

	// Router-level single-flight: concurrent POSTs with byte-identical
	// (path, body) join the first request's forward instead of each
	// crossing the network to the shard. The shards coalesce identical
	// in-flight computations themselves, but only after every duplicate
	// has paid a proxy hop, a shard connection and an admission-queue
	// slot; coalescing at the router stops the duplicates one tier
	// earlier, where a retrying fleet client actually produces them.
	mu       sync.Mutex
	inflight map[string]*flight
	forwards int64 // POSTs that crossed to a shard
	joins    int64 // POSTs that replayed an in-flight twin's response
}

// flight is one in-flight forwarded POST plus its buffered outcome.
// done is closed after the outcome fields are final; joiners replay
// them verbatim, so every waiter answers exactly what the leader did.
type flight struct {
	done       chan struct{}
	status     int
	contentTyp string
	retryAfter string
	body       []byte
}

// newRouter normalizes and validates the shard list ("host:port" or full
// URLs, comma-separated).
func newRouter(addrs []string) (*router, error) {
	rt := &router{
		client:   &http.Client{Timeout: 5 * time.Minute},
		inflight: map[string]*flight{},
	}
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		rt.shards = append(rt.shards, strings.TrimRight(a, "/"))
	}
	if len(rt.shards) == 0 {
		return nil, fmt.Errorf("gridmtdd: -route needs at least one shard address")
	}
	return rt, nil
}

// shardKey is what routing hashes: the (case, load scale) pair, with the
// same scale normalization the planner's case LRU applies — every
// endpoint touching one resolved case lands on the same shard.
func shardKey(caseName string, scale float64) string {
	if scale == 0 {
		scale = 1
	}
	return fmt.Sprintf("%s|%g", caseName, scale)
}

// pick rendezvous-hashes key over the shards: each shard scores
// fnv64a(shard NUL key) and the highest score wins. Deterministic,
// coordination-free, and minimally disruptive under shard-list changes.
func (rt *router) pick(key string) string {
	var best string
	var bestScore uint64
	for _, s := range rt.shards {
		h := fnv.New64a()
		io.WriteString(h, s)
		h.Write([]byte{0})
		io.WriteString(h, key)
		if score := h.Sum64(); best == "" || score > bestScore || (score == bestScore && s < best) {
			best, bestScore = s, score
		}
	}
	return best
}

// handler wires the router's HTTP surface. POST bodies are decoded just
// enough to learn the routing key and then forwarded verbatim.
func (rt *router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.health)
	mux.HandleFunc("GET /v1/cases", func(w http.ResponseWriter, r *http.Request) {
		// Every shard embeds the same registry; the first answers for all.
		rt.forward(w, r, rt.shards[0], nil)
	})
	mux.HandleFunc("GET /v1/stats", rt.stats)
	for _, path := range []string{"/v1/select", "/v1/gamma", "/v1/daysweep", "/v1/placement"} {
		mux.HandleFunc("POST "+path, rt.route)
	}
	return mux
}

// route forwards one planner POST to the shard owning its (case, scale),
// single-flighting byte-identical concurrent requests: the first becomes
// the leader and forwards, later twins wait and replay its buffered
// response (status, Content-Type, Retry-After and body included, so even
// a coalesced 429 back-pressure verdict reaches every client).
func (rt *router) route(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRouteBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("read request: %v", err)})
		return
	}
	var key struct {
		Case      string  `json:"case"`
		LoadScale float64 `json:"load_scale"`
	}
	if err := json.Unmarshal(body, &key); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("invalid request: %v", err)})
		return
	}
	sfKey := r.URL.Path + "?" + r.URL.RawQuery + "\x00" + string(body)

	rt.mu.Lock()
	if f, ok := rt.inflight[sfKey]; ok {
		rt.joins++
		rt.mu.Unlock()
		select {
		case <-f.done:
			f.replay(w)
		case <-r.Context().Done():
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]any{"error": "request canceled while joined to an in-flight twin"})
		}
		return
	}
	f := &flight{done: make(chan struct{})}
	rt.inflight[sfKey] = f
	rt.forwards++
	rt.mu.Unlock()

	// The leader detaches from its own client's cancellation: joiners
	// arrived because they want this answer, so one impatient leader
	// must not poison the flight for everyone behind it. The HTTP
	// client's own timeout still bounds the forward.
	pathAndQuery := r.URL.Path
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	rt.exec(context.WithoutCancel(r.Context()), f, rt.pick(shardKey(key.Case, key.LoadScale)), pathAndQuery, body)
	rt.mu.Lock()
	delete(rt.inflight, sfKey)
	rt.mu.Unlock()
	close(f.done)
	f.replay(w)
}

// exec performs the shard POST and buffers the outcome into f. Errors
// become the same JSON payloads forward would have written, so leader
// and joiners stay indistinguishable to clients.
func (rt *router) exec(ctx context.Context, f *flight, shard, pathAndQuery string, body []byte) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, shard+pathAndQuery, bytes.NewReader(body))
	if err != nil {
		f.fail(http.StatusInternalServerError, err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		f.fail(http.StatusBadGateway, fmt.Sprintf("shard %s: %v", shard, err))
		return
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		f.fail(http.StatusBadGateway, fmt.Sprintf("shard %s: %v", shard, err))
		return
	}
	f.status = resp.StatusCode
	f.contentTyp = resp.Header.Get("Content-Type")
	f.retryAfter = resp.Header.Get("Retry-After")
	f.body = out
}

func (f *flight) fail(status int, msg string) {
	f.status = status
	f.contentTyp = "application/json"
	f.body, _ = json.Marshal(map[string]any{"error": msg})
	f.body = append(f.body, '\n')
}

// replay writes the buffered outcome. Safe to call from any number of
// goroutines once done is closed (the fields are read-only by then).
func (f *flight) replay(w http.ResponseWriter) {
	if f.contentTyp != "" {
		w.Header().Set("Content-Type", f.contentTyp)
	}
	if f.retryAfter != "" {
		w.Header().Set("Retry-After", f.retryAfter)
	}
	w.WriteHeader(f.status)
	w.Write(f.body)
}

// forward proxies the request to one shard, passing the response through
// byte-for-byte (status, Content-Type and Retry-After included, so shard
// 429/503 back-pressure reaches the client intact).
func (rt *router) forward(w http.ResponseWriter, r *http.Request, shard string, body []byte) {
	url := shard + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{"error": fmt.Sprintf("shard %s: %v", shard, err)})
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// health probes every shard; the fleet is healthy only if all shards are.
func (rt *router) health(w http.ResponseWriter, r *http.Request) {
	shardOK := map[string]bool{}
	allOK := true
	for _, s := range rt.shards {
		ok := false
		if resp, err := rt.client.Get(s + "/healthz"); err == nil {
			ok = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		shardOK[s] = ok
		allOK = allOK && ok
	}
	status := http.StatusOK
	if !allOK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ok": allOK, "shards": shardOK})
}

// stats fans /v1/stats out to every shard (the ?mark=/?since= query
// passes through, so named snapshots live per shard and their deltas sum)
// and answers the field-wise sum in the single-daemon shape — existing
// monitors and the load generator work unchanged against a router — plus
// a "router" block naming the shards.
func (rt *router) stats(w http.ResponseWriter, r *http.Request) {
	sum := map[string]any{}
	perShard := map[string]any{}
	for _, s := range rt.shards {
		url := s + "/v1/stats"
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		resp, err := rt.client.Get(url)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]any{"error": fmt.Sprintf("shard %s: %v", s, err)})
			return
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]any{"error": fmt.Sprintf("shard %s: %v", s, err)})
			return
		}
		if resp.StatusCode != http.StatusOK {
			// e.g. an unknown ?since= mark: pass the shard's verdict through.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			w.Write(raw)
			return
		}
		var one map[string]any
		if err := json.Unmarshal(raw, &one); err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]any{"error": fmt.Sprintf("shard %s: bad stats payload: %v", s, err)})
			return
		}
		perShard[s] = one
		sumJSON(sum, one)
	}
	rt.mu.Lock()
	forwards, joins := rt.forwards, rt.joins
	rt.mu.Unlock()
	sum["router"] = map[string]any{
		"shards": rt.shardNames(),
		"single_flight": map[string]any{
			"forwards": forwards,
			"joins":    joins,
		},
	}
	writeJSON(w, http.StatusOK, sum)
}

func (rt *router) shardNames() []string {
	out := append([]string(nil), rt.shards...)
	sort.Strings(out)
	return out
}

// sumJSON adds src into dst recursively: numbers add, objects merge,
// anything else copies from src. Summing generically over the decoded
// JSON (rather than planner.Stats fields) means every counter a future
// PR adds aggregates correctly with no router change.
func sumJSON(dst, src map[string]any) {
	for k, v := range src {
		switch sv := v.(type) {
		case float64:
			if dv, ok := dst[k].(float64); ok {
				dst[k] = dv + sv
			} else {
				dst[k] = sv
			}
		case map[string]any:
			dv, ok := dst[k].(map[string]any)
			if !ok {
				dv = map[string]any{}
				dst[k] = dv
			}
			sumJSON(dv, sv)
		default:
			dst[k] = v
		}
	}
}
