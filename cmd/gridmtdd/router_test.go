package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gridmtd/internal/planner"
)

// startFleet brings up n real planner shards and a router over them.
func startFleet(t *testing.T, n int) (*router, *httptest.Server) {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		shard := httptest.NewServer(newHandler(planner.New(planner.Config{}), time.Minute))
		t.Cleanup(shard.Close)
		addrs = append(addrs, shard.URL)
	}
	rt, err := newRouter(addrs)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.handler())
	t.Cleanup(front.Close)
	return rt, front
}

// TestRouterNormalizesAddrs pins the -route flag surface: bare host:port
// spellings, whitespace and trailing slashes all normalize, and an empty
// list is rejected.
func TestRouterNormalizesAddrs(t *testing.T) {
	rt, err := newRouter([]string{" 127.0.0.1:8643 ", "http://10.0.0.2:8643/", ""})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://127.0.0.1:8643", "http://10.0.0.2:8643"}
	if len(rt.shards) != 2 || rt.shards[0] != want[0] || rt.shards[1] != want[1] {
		t.Errorf("normalized shards %v, want %v", rt.shards, want)
	}
	if _, err := newRouter([]string{" ", ""}); err == nil {
		t.Error("empty shard list accepted")
	}
}

// TestRendezvousPick pins the hash's contract: deterministic, every
// shard reachable, and removing the non-owning shard never remaps a key
// (the minimal-disruption property that makes scaling cheap).
func TestRendezvousPick(t *testing.T) {
	rt := &router{shards: []string{"http://a:1", "http://b:1", "http://c:1"}}
	hitters := map[string]int{}
	for _, c := range []string{"case4gs", "ieee14", "ieee57", "ieee118", "ieee300", "synth1", "synth2", "synth3"} {
		key := shardKey(c, 1)
		first := rt.pick(key)
		if rt.pick(key) != first {
			t.Fatalf("pick(%q) not deterministic", key)
		}
		hitters[first]++
		// Drop a shard that does not own the key: ownership must not move.
		for _, drop := range rt.shards {
			if drop == first {
				continue
			}
			var rest []string
			for _, s := range rt.shards {
				if s != drop {
					rest = append(rest, s)
				}
			}
			if got := (&router{shards: rest}).pick(key); got != first {
				t.Errorf("dropping %s remapped %q: %s -> %s", drop, key, first, got)
			}
		}
	}
	if len(hitters) < 2 {
		t.Errorf("8 cases all landed on one shard of 3: %v", hitters)
	}
	// Scale 0 and scale 1 are the same resolved case and must share a shard.
	if shardKey("ieee14", 0) != shardKey("ieee14", 1) {
		t.Error("scale 0 and the default scale 1 hash differently")
	}
}

// TestRouterStickyAndAggregated drives real traffic through a 2-shard
// fleet: identical requests land on one shard (the repeat is that shard's
// memo hit), distinct cases spread, and the router's /v1/stats answers
// the field-wise sum with ?mark=/?since= passing through.
func TestRouterStickyAndAggregated(t *testing.T) {
	_, front := startFleet(t, 2)

	getStats := func(query string) (planner.Stats, int) {
		t.Helper()
		resp, err := http.Get(front.URL + "/v1/stats" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var s planner.Stats
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
				t.Fatal(err)
			}
		}
		return s, resp.StatusCode
	}
	if _, code := getStats("?mark=w"); code != http.StatusOK {
		t.Fatalf("mark through router: status %d", code)
	}

	req := planner.SelectRequest{Case: "ieee14", GammaThreshold: 0.1, Starts: 2, Seed: 1, Attacks: 50}
	var first, second planner.SelectResponse
	if code := postJSON(t, front.URL+"/v1/select", req, &first); code != http.StatusOK {
		t.Fatalf("routed select status %d", code)
	}
	if code := postJSON(t, front.URL+"/v1/select", req, &second); code != http.StatusOK {
		t.Fatalf("repeat routed select status %d", code)
	}
	// The repeat being a cache hit proves both requests reached the same
	// shard — each shard's memo is private.
	if !second.CacheHit {
		t.Error("repeat of an identical routed request missed the shard memo — routing is not sticky")
	}
	if second.Gamma != first.Gamma {
		t.Errorf("routed repeat γ %v != first %v", second.Gamma, first.Gamma)
	}

	delta, code := getStats("?since=w")
	if code != http.StatusOK {
		t.Fatalf("since through router: status %d", code)
	}
	if delta.ResultMisses != 1 || delta.ResultHits != 1 {
		t.Errorf("aggregated window misses=%d hits=%d, want 1/1", delta.ResultMisses, delta.ResultHits)
	}
	// The aggregate carries the router block naming both shards.
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Router struct {
			Shards []string `json:"shards"`
		} `json:"router"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(raw.Router.Shards) != 2 {
		t.Errorf("router stats block lists %v, want both shards", raw.Router.Shards)
	}

	// Shard errors pass through with their status: an unknown case is the
	// shard's 422, not a router 5xx.
	if code := postJSON(t, front.URL+"/v1/select",
		planner.SelectRequest{Case: "nope", GammaThreshold: 0.1}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown case through router: status %d, want 422", code)
	}
	// The case listing proxies.
	r2, err := http.Get(front.URL + "/v1/cases")
	if err != nil {
		t.Fatal(err)
	}
	var cases []map[string]any
	if err := json.NewDecoder(r2.Body).Decode(&cases); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if len(cases) < 5 {
		t.Errorf("routed case listing has %d entries", len(cases))
	}
}

// TestRouterSingleFlight pins the router-level coalescing contract: N
// concurrent byte-identical POSTs produce exactly 1 shard forward and
// N−1 joins, every caller gets the same response, and the counters show
// up in the /v1/stats router block. The fake shard blocks until the
// router has registered every join, so the count is deterministic, not
// a timing accident.
func TestRouterSingleFlight(t *testing.T) {
	const clients = 8
	release := make(chan struct{})
	var shardHits int64
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			atomic.AddInt64(&shardHits, 1)
			<-release
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"case":"ieee14","gamma":0.25}`))
	}))
	t.Cleanup(shard.Close)
	rt, err := newRouter([]string{shard.URL})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.handler())
	t.Cleanup(front.Close)

	body := `{"case":"ieee14","gamma_threshold":0.1,"starts":2,"seed":1}`
	type reply struct {
		code int
		body string
	}
	replies := make(chan reply, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Post(front.URL+"/v1/select", "application/json", strings.NewReader(body))
			if err != nil {
				replies <- reply{code: -1, body: err.Error()}
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			replies <- reply{code: resp.StatusCode, body: string(b)}
		}()
	}
	// Hold the shard until the router has seen every duplicate join, so
	// no client can slip through after the flight lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rt.mu.Lock()
		joins := rt.joins
		rt.mu.Unlock()
		if joins == clients-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router registered %d joins, want %d", joins, clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	want := `{"case":"ieee14","gamma":0.25}`
	for i := 0; i < clients; i++ {
		got := <-replies
		if got.code != http.StatusOK || got.body != want {
			t.Fatalf("client %d: status %d body %q, want 200 %q", i, got.code, got.body, want)
		}
	}
	if hits := atomic.LoadInt64(&shardHits); hits != 1 {
		t.Errorf("shard saw %d POSTs, want exactly 1 (single-flight leader)", hits)
	}
	rt.mu.Lock()
	forwards, joins := rt.forwards, rt.joins
	rt.mu.Unlock()
	if forwards != 1 || joins != clients-1 {
		t.Errorf("router counters forwards=%d joins=%d, want 1/%d", forwards, joins, clients-1)
	}

	// The counters surface in the aggregated stats block.
	resp, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Router struct {
			SingleFlight struct {
				Forwards int64 `json:"forwards"`
				Joins    int64 `json:"joins"`
			} `json:"single_flight"`
		} `json:"router"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if raw.Router.SingleFlight.Forwards != 1 || raw.Router.SingleFlight.Joins != clients-1 {
		t.Errorf("stats single_flight forwards=%d joins=%d, want 1/%d",
			raw.Router.SingleFlight.Forwards, raw.Router.SingleFlight.Joins, clients-1)
	}

	// Distinct bodies do NOT coalesce: a second, different request must
	// forward on its own.
	resp2, err := http.Post(front.URL+"/v1/select", "application/json",
		strings.NewReader(`{"case":"ieee14","gamma_threshold":0.2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if hits := atomic.LoadInt64(&shardHits); hits != 2 {
		t.Errorf("distinct body coalesced: shard saw %d POSTs, want 2", hits)
	}
}

// TestRouterHealthAndDeadShard pins degraded-fleet behavior: with one
// shard down, /healthz reports 503 naming the dead shard, and a request
// routed to it answers 502 Bad Gateway rather than hanging.
func TestRouterHealthAndDeadShard(t *testing.T) {
	live := httptest.NewServer(newHandler(planner.New(planner.Config{}), time.Minute))
	t.Cleanup(live.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt, err := newRouter([]string{live.URL, deadURL})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.handler())
	t.Cleanup(front.Close)

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK     bool            `json:"ok"`
		Shards map[string]bool `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || health.OK {
		t.Errorf("healthz with a dead shard: status %d ok=%v, want 503/false", resp.StatusCode, health.OK)
	}
	if health.Shards[deadURL] || !health.Shards[live.URL] {
		t.Errorf("per-shard health %v misreports", health.Shards)
	}

	// Find a case the dead shard owns and request it: 502.
	owned := ""
	for _, c := range []string{"case4gs", "ieee14", "ieee57", "ieee118", "ieee300", "case9", "case30"} {
		if rt.pick(shardKey(c, 1)) == strings.TrimRight(deadURL, "/") {
			owned = c
			break
		}
	}
	if owned == "" {
		t.Skip("no probe case hashes to the dead shard in this run")
	}
	if code := postJSON(t, front.URL+"/v1/select",
		planner.SelectRequest{Case: owned, GammaThreshold: 0.1}, nil); code != http.StatusBadGateway {
		t.Errorf("request for a dead shard's case: status %d, want 502", code)
	}
	// Stats cannot aggregate with a shard down.
	r2, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadGateway {
		t.Errorf("stats with a dead shard: status %d, want 502", r2.StatusCode)
	}
}
