// Command gridmtdd is the long-running MTD planner daemon: an HTTP
// front-end over the internal planner service, answering selection,
// γ-evaluation, day-sweep and placement requests for the embedded case
// registry with memoized case state — the second identical request is a
// cache lookup, and different requests on one case share its factorized
// engines.
//
// Usage:
//
//	gridmtdd [-addr 127.0.0.1:8642] [-backend auto] [-gamma auto] [-parallel 0] [-timeout 2m]
//	         [-max-inflight 0] [-queue-depth 0] [-disk-cache DIR] [-disk-cache-mb 256]
//	gridmtdd -route shard1:8643,shard2:8644 [-addr 127.0.0.1:8642] [-timeout 2m]
//
// Endpoints (JSON in, JSON out):
//
//	GET  /healthz        {"ok":true}
//	GET  /v1/cases       the case registry
//	GET  /v1/stats       cache hit/miss counters + γ backends served
//	                     (?mark=<name> stores a named snapshot,
//	                     ?since=<name> answers the delta against it)
//	POST /v1/select      planner.SelectRequest  -> planner.SelectResponse
//	POST /v1/gamma       planner.GammaRequest   -> planner.GammaResponse
//	POST /v1/daysweep    planner.DaySweepRequest -> planner.DaySweepResponse
//	POST /v1/placement   planner.PlacementRequest -> planner.PlacementResponse
//
// Service hardening: every POST endpoint runs under a per-request deadline
// (-timeout; exceeding it answers 503 with a Retry-After header while the
// abandoned computation's result still lands in the memo for the retry),
// and SIGINT/SIGTERM trigger a graceful shutdown that stops accepting
// connections and drains in-flight requests before exiting.
//
// # Serving at scale
//
// Four layers turn one daemon into a fleet-scale service; cmd/gridmtdload
// is the load harness that measures them, and PERF.md records the numbers.
//
// Single-flight coalescing (always on): identical in-flight requests join
// one computation instead of racing the memo — N clients asking for the
// same cold selection cost one search. The /v1/stats result_coalesced
// counter reports the joins, and coalesced responses carry
// "source":"coalesced".
//
// Admission control (-max-inflight N -queue-depth D): at most N requests
// compute concurrently; up to D more wait in a bounded queue (default
// 4×N); beyond that the daemon load-sheds with 429 + Retry-After instead
// of collapsing. Queue wait is part of the served latency and is reported
// under /v1/stats "admission". Memo, coalesced and disk hits bypass the
// queue entirely, so warm traffic stays microseconds under overload.
//
// Persistent response cache (-disk-cache DIR [-disk-cache-mb M]): computed
// responses are written through to a directory of content-addressed JSON
// entries (atomic write-rename, LRU byte cap, corrupt entries skipped not
// fatal), keyed on the bitwise memo key plus the case registry content
// hash. A restarted daemon serves previously computed selections from
// disk in microseconds ("source":"disk") instead of re-running sub-second
// searches; stale entries from a different registry build can never serve.
//
// Router mode (-route shard1:port,shard2:port,...): the daemon becomes a
// thin router — no planner of its own — that rendezvous-hashes each
// request's (case, load_scale) over the shards and proxies, so N replicas
// split the case registry (each case's factorized engines and disk cache
// live on exactly one shard). GET /v1/stats answers the field-wise sum of
// all shard stats (?mark=/?since= pass through to every shard), /healthz
// aggregates shard health, and shard 429/503 responses (Retry-After
// included) pass through untouched.
//
// The stats workflow for monitors and load tests: GET /v1/stats?mark=t0
// stores a named snapshot, a later GET /v1/stats?since=t0 answers the
// field-wise delta — per-window hit/coalesce/shed/solve counters without
// racing absolute values.
//
// A selection request is parameterized exactly like one mtdscan sweep
// point, so
//
//	curl -s -X POST localhost:8642/v1/select -d \
//	  '{"case":"ieee57","gamma_threshold":0.05,"starts":2,"max_evals":40,"seed":1,"attacks":50}'
//
// answers with the γ / η'(δ) / cost row `mtdscan -case ieee57 -from 0.05
// -to 0.05` prints (the CI daemon-smoke job diffs the two). Adding
// "gamma_backend":"sketch" runs the same search on the sketched γ probe —
// the served γ/η' values stay exact (see the planner's tolerance contract).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"gridmtd"
	"gridmtd/internal/planner"
	"gridmtd/internal/planner/diskcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridmtdd: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:8642", "listen address")
		backend     = flag.String("backend", "auto", "linear-algebra backend: auto, dense or sparse")
		gammaBk     = flag.String("gamma", "auto", "default γ-evaluation backend: auto, exact, sparse or sketch (requests may override per call)")
		parallel    = flag.Int("parallel", 0, "per-request search parallelism (0 = all cores); results are identical for any setting")
		maxCases    = flag.Int("cases", 8, "case LRU capacity ((case, load-scale) entries)")
		maxResults  = flag.Int("results", 256, "response memo capacity")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-request deadline (0 disables it)")
		maxInflight = flag.Int("max-inflight", 0, "admission control: max concurrently computing requests (0 = unbounded); cache hits bypass the limit")
		queueDepth  = flag.Int("queue-depth", 0, "admission control: max computations waiting for a slot (default 4x max-inflight); beyond it requests shed with 429")
		diskDir     = flag.String("disk-cache", "", "persistent response cache directory (empty = off); survives restarts")
		diskMB      = flag.Int("disk-cache-mb", 256, "disk cache size cap in MiB (LRU eviction past it)")
		route       = flag.String("route", "", "router mode: comma-separated shard addresses; proxy requests by rendezvous-hashing (case, load_scale) instead of serving a planner")
	)
	flag.Parse()

	if *route != "" {
		rt, err := newRouter(strings.Split(*route, ","))
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Addr: *addr, Handler: logRequests(rt.handler())}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		log.Printf("routing MTD planner traffic on %s over %d shards: %s", *addr, len(rt.shards), strings.Join(rt.shards, ", "))
		if err := serveUntilSignal(srv, ln, stop); err != nil {
			log.Fatal(err)
		}
		log.Print("drained; bye")
		return
	}

	b, err := gridmtd.ParseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	// The process default drives the γ-kernel seam; the planner config
	// drives the dispatch engines. One daemon = one backend contract.
	gridmtd.SetDefaultBackend(b)
	gb, err := gridmtd.ParseGammaBackend(*gammaBk)
	if err != nil {
		log.Fatal(err)
	}
	// Requests without an explicit gamma_backend resolve to this default.
	gridmtd.SetDefaultGammaBackend(gb)
	if *parallel > 0 {
		runtime.GOMAXPROCS(*parallel)
	}

	var disk *diskcache.Cache
	if *diskDir != "" {
		disk, err = diskcache.Open(diskcache.Config{Dir: *diskDir, MaxBytes: int64(*diskMB) << 20})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("persistent response cache at %s (%d entries resident, cap %d MiB)", *diskDir, disk.Stats().Entries, *diskMB)
	}
	p := planner.New(planner.Config{
		Backend:     b,
		MaxCases:    *maxCases,
		MaxResults:  *maxResults,
		Parallelism: *parallel,
		MaxInflight: *maxInflight,
		QueueDepth:  *queueDepth,
		Disk:        disk,
	})
	srv := &http.Server{Addr: *addr, Handler: newHandler(p, *timeout)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	log.Printf("serving MTD planner on %s (backend %s, gamma %s, request timeout %s)", *addr, *backend, *gammaBk, *timeout)
	if err := serveUntilSignal(srv, ln, stop); err != nil {
		log.Fatal(err)
	}
	log.Print("drained; bye")
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before giving up and closing their connections.
const shutdownGrace = 15 * time.Second

// serveUntilSignal serves on ln until a signal arrives, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// shutdownGrace to finish, and the function returns once everything is
// drained (nil) or the grace period expired (the Shutdown error).
func serveUntilSignal(srv *http.Server, ln net.Listener, stop <-chan os.Signal) error {
	done := make(chan error, 1)
	go func() {
		<-stop
		log.Print("signal received, draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// newHandler wires the planner's request types to the HTTP surface. Every
// POST endpoint runs under the per-request deadline; the health, registry
// and stats GETs answer instantly and stay outside it.
func newHandler(p *planner.Planner, timeout time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /v1/cases", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, gridmtd.Cases())
	})
	// The counters behind /v1/stats are cumulative for the process.
	// ?mark=<name> additionally stores the answered snapshot under the
	// name; a later ?since=<name> answers with the field-wise delta
	// against it (planner.Stats.Delta), so monitors and CI assert
	// per-window increments without racing absolute values. Marks are a
	// small LRU — old names silently age out and an unknown ?since= is a
	// 404.
	marks := newStatsMarks(32)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		cur := p.Stats()
		out := cur
		if name := r.URL.Query().Get("since"); name != "" {
			base, ok := marks.get(name)
			if !ok {
				writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("unknown stats mark %q", name)})
				return
			}
			out = cur.Delta(base)
		}
		if name := r.URL.Query().Get("mark"); name != "" {
			marks.put(name, cur)
		}
		writeJSON(w, http.StatusOK, out)
	})
	post := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, withDeadline(h, timeout))
	}
	post("POST /v1/select", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func(req planner.SelectRequest) (any, error) { return p.Select(req) })
	})
	post("POST /v1/gamma", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func(req planner.GammaRequest) (any, error) { return p.Gamma(req) })
	})
	post("POST /v1/daysweep", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func(req planner.DaySweepRequest) (any, error) { return p.DaySweep(req) })
	})
	post("POST /v1/placement", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func(req planner.PlacementRequest) (any, error) { return p.Placement(req) })
	})
	return logRequests(mux)
}

// retryAfterSeconds is the back-off hint on load-shed (429) and
// deadline (503) responses: the memo completes abandoned computations
// and sheds drain at the next slot, so an immediate-ish retry is cheap.
const retryAfterSeconds = "1"

// withDeadline bounds one request's wall clock: past the timeout the
// client gets 503 with a Retry-After header and a JSON body explaining
// that the abandoned computation still completes into the memo — the
// retry the header invites picks the result up as a cache hit rather
// than a second search. (A hand-rolled timeout wrapper rather than
// http.TimeoutHandler: the 503 needs its own headers, which
// TimeoutHandler cannot set without leaking them onto success
// responses.)
func withDeadline(h http.Handler, timeout time.Duration) http.Handler {
	if timeout <= 0 {
		return h
	}
	body, _ := json.Marshal(map[string]any{"error": fmt.Sprintf("request deadline (%s) exceeded; the computation continues and its result will be memoized — retry to pick it up", timeout)})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		rec := &bufferedResponse{header: http.Header{}}
		done := make(chan struct{})
		go func() {
			defer close(done)
			h.ServeHTTP(rec, r.WithContext(ctx))
		}()
		select {
		case <-done:
			rec.copyTo(w)
		case <-ctx.Done():
			// The handler goroutine keeps writing into its private buffer
			// until the planner call finishes; nothing reads it again.
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", retryAfterSeconds)
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write(body)
		}
	})
}

// bufferedResponse captures a handler's full response in memory so the
// deadline wrapper can either forward it or abandon it wholesale.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	status := b.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(b.body.Bytes())
}

// serve decodes one request body, runs the planner call and writes the
// response, mapping planner errors to HTTP statuses.
func serve[Req any](w http.ResponseWriter, r *http.Request, call func(Req) (any, error)) {
	var req Req
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("invalid request: %v", err)})
		return
	}
	resp, err := call(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, planner.ErrUnreachable):
			status = http.StatusConflict
		case errors.Is(err, planner.ErrOverloaded):
			// Load shed: tell the client when to come back. The result was
			// deliberately not memoized, so the retry re-enters the queue.
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", retryAfterSeconds)
		}
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%.1f ms)", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1e3)
	})
}

// statsMarks is the named-snapshot store behind /v1/stats?mark= /
// ?since=: a small mutex-guarded LRU of planner.Stats snapshots keyed by
// client-chosen names.
type statsMarks struct {
	cap int

	mu    sync.Mutex
	snaps map[string]planner.Stats
	order []string // oldest first
}

func newStatsMarks(capacity int) *statsMarks {
	return &statsMarks{cap: capacity, snaps: map[string]planner.Stats{}}
}

func (m *statsMarks) put(name string, s planner.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.snaps[name]; ok {
		for i, n := range m.order {
			if n == name {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.snaps[name] = s
	m.order = append(m.order, name)
	for len(m.order) > m.cap {
		delete(m.snaps, m.order[0])
		m.order = m.order[1:]
	}
}

func (m *statsMarks) get(name string) (planner.Stats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[name]
	return s, ok
}
