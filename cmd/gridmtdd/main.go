// Command gridmtdd is the long-running MTD planner daemon: an HTTP
// front-end over the internal planner service, answering selection,
// γ-evaluation, day-sweep and placement requests for the embedded case
// registry with memoized case state — the second identical request is a
// cache lookup, and different requests on one case share its factorized
// engines.
//
// Usage:
//
//	gridmtdd [-addr 127.0.0.1:8642] [-backend auto] [-parallel 0]
//
// Endpoints (JSON in, JSON out):
//
//	GET  /healthz        {"ok":true}
//	GET  /v1/cases       the case registry
//	GET  /v1/stats       cache hit/miss counters
//	POST /v1/select      planner.SelectRequest  -> planner.SelectResponse
//	POST /v1/gamma       planner.GammaRequest   -> planner.GammaResponse
//	POST /v1/daysweep    planner.DaySweepRequest -> planner.DaySweepResponse
//	POST /v1/placement   planner.PlacementRequest -> planner.PlacementResponse
//
// A selection request is parameterized exactly like one mtdscan sweep
// point, so
//
//	curl -s -X POST localhost:8642/v1/select -d \
//	  '{"case":"ieee57","gamma_threshold":0.05,"starts":2,"max_evals":40,"seed":1,"attacks":50}'
//
// answers with the γ / η'(δ) / cost row `mtdscan -case ieee57 -from 0.05
// -to 0.05` prints (the CI daemon-smoke job diffs the two).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gridmtd"
	"gridmtd/internal/planner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridmtdd: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:8642", "listen address")
		backend    = flag.String("backend", "auto", "linear-algebra backend: auto, dense or sparse")
		parallel   = flag.Int("parallel", 0, "per-request search parallelism (0 = all cores); results are identical for any setting")
		maxCases   = flag.Int("cases", 8, "case LRU capacity ((case, load-scale) entries)")
		maxResults = flag.Int("results", 256, "response memo capacity")
	)
	flag.Parse()

	b, err := gridmtd.ParseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	// The process default drives the γ-kernel seam; the planner config
	// drives the dispatch engines. One daemon = one backend contract.
	gridmtd.SetDefaultBackend(b)
	if *parallel > 0 {
		runtime.GOMAXPROCS(*parallel)
	}

	p := planner.New(planner.Config{
		Backend:     b,
		MaxCases:    *maxCases,
		MaxResults:  *maxResults,
		Parallelism: *parallel,
	})
	srv := &http.Server{Addr: *addr, Handler: newHandler(p)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Print("shutting down")
		srv.Close()
	}()

	log.Printf("serving MTD planner on %s (backend %s)", *addr, *backend)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// newHandler wires the planner's request types to the HTTP surface.
func newHandler(p *planner.Planner) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /v1/cases", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, gridmtd.Cases())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, p.Stats())
	})
	mux.HandleFunc("POST /v1/select", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func(req planner.SelectRequest) (any, error) { return p.Select(req) })
	})
	mux.HandleFunc("POST /v1/gamma", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func(req planner.GammaRequest) (any, error) { return p.Gamma(req) })
	})
	mux.HandleFunc("POST /v1/daysweep", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func(req planner.DaySweepRequest) (any, error) { return p.DaySweep(req) })
	})
	mux.HandleFunc("POST /v1/placement", func(w http.ResponseWriter, r *http.Request) {
		serve(w, r, func(req planner.PlacementRequest) (any, error) { return p.Placement(req) })
	})
	return logRequests(mux)
}

// serve decodes one request body, runs the planner call and writes the
// response, mapping planner errors to HTTP statuses.
func serve[Req any](w http.ResponseWriter, r *http.Request, call func(Req) (any, error)) {
	var req Req
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("invalid request: %v", err)})
		return
	}
	resp, err := call(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, planner.ErrUnreachable) {
			status = http.StatusConflict
		}
		writeJSON(w, status, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%.1f ms)", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1e3)
	})
}
