package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gridmtd/internal/planner"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newHandler(planner.New(planner.Config{})))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndCases(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var cases []map[string]any
	r2, err := http.Get(srv.URL + "/v1/cases")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) < 5 {
		t.Errorf("case listing has %d entries, want the full registry", len(cases))
	}
}

func TestSelectRoundTripAndMemo(t *testing.T) {
	srv := testServer(t)
	req := planner.SelectRequest{
		Case: "ieee14", GammaThreshold: 0.1, Starts: 2, Seed: 1, Attacks: 50,
	}
	var first planner.SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &first); code != http.StatusOK {
		t.Fatalf("select status %d", code)
	}
	if first.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if first.Gamma < 0.1-2e-3 {
		t.Errorf("served γ=%v below the requested threshold", first.Gamma)
	}
	if len(first.Eta) == 0 || len(first.Reactances) == 0 {
		t.Errorf("incomplete response: %+v", first)
	}
	var second planner.SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &second); code != http.StatusOK {
		t.Fatalf("second select status %d", code)
	}
	if !second.CacheHit {
		t.Error("second identical request missed the memo")
	}
	if second.Gamma != first.Gamma {
		t.Errorf("memoized γ %v != first %v", second.Gamma, first.Gamma)
	}
}

func TestErrorStatuses(t *testing.T) {
	srv := testServer(t)
	// Unknown case: unprocessable.
	if code := postJSON(t, srv.URL+"/v1/select",
		planner.SelectRequest{Case: "nope", GammaThreshold: 0.1}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown case status %d, want 422", code)
	}
	// Unreachable threshold without fallback: conflict.
	if code := postJSON(t, srv.URL+"/v1/select",
		planner.SelectRequest{Case: "ieee14", GammaThreshold: 5, Starts: 2, Seed: 1, Attacks: 50}, nil); code != http.StatusConflict {
		t.Errorf("unreachable threshold status %d, want 409", code)
	}
	// Malformed body: bad request.
	resp, err := http.Post(srv.URL+"/v1/select", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", resp.StatusCode)
	}
}

func TestGammaEndpoint(t *testing.T) {
	srv := testServer(t)
	// γ of the nominal configuration against itself is zero.
	var n struct {
		Gamma float64 `json:"gamma"`
	}
	var xNew []float64
	// Fetch branch count via the registry listing.
	r, err := http.Get(srv.URL + "/v1/cases")
	if err != nil {
		t.Fatal(err)
	}
	var cases []struct {
		Name     string `json:"Name"`
		Branches int    `json:"Branches"`
	}
	if err := json.NewDecoder(r.Body).Decode(&cases); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	branches := 0
	for _, c := range cases {
		if c.Name == "case4gs" {
			branches = c.Branches
		}
	}
	if branches == 0 {
		t.Fatal("case4gs missing from the registry listing")
	}
	xNew = make([]float64, branches)
	for i := range xNew {
		xNew[i] = 0.1 // any valid positive reactance vector
	}
	if code := postJSON(t, srv.URL+"/v1/gamma",
		planner.GammaRequest{Case: "case4gs", XNew: xNew}, &n); code != http.StatusOK {
		t.Fatalf("gamma status %d", code)
	}
	if n.Gamma < 0 {
		t.Errorf("γ = %v out of range", n.Gamma)
	}
}
