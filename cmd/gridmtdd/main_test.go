package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gridmtd/internal/planner"
	"gridmtd/internal/planner/diskcache"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newHandler(planner.New(planner.Config{}), time.Minute))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndCases(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var cases []map[string]any
	r2, err := http.Get(srv.URL + "/v1/cases")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) < 5 {
		t.Errorf("case listing has %d entries, want the full registry", len(cases))
	}
}

func TestSelectRoundTripAndMemo(t *testing.T) {
	srv := testServer(t)
	req := planner.SelectRequest{
		Case: "ieee14", GammaThreshold: 0.1, Starts: 2, Seed: 1, Attacks: 50,
	}
	var first planner.SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &first); code != http.StatusOK {
		t.Fatalf("select status %d", code)
	}
	if first.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if first.Gamma < 0.1-2e-3 {
		t.Errorf("served γ=%v below the requested threshold", first.Gamma)
	}
	if len(first.Eta) == 0 || len(first.Reactances) == 0 {
		t.Errorf("incomplete response: %+v", first)
	}
	var second planner.SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &second); code != http.StatusOK {
		t.Fatalf("second select status %d", code)
	}
	if !second.CacheHit {
		t.Error("second identical request missed the memo")
	}
	if second.Gamma != first.Gamma {
		t.Errorf("memoized γ %v != first %v", second.Gamma, first.Gamma)
	}
}

// TestStatsServesLPCounters pins the /v1/stats surface: the response
// carries the process-wide revised-simplex counter block alongside the
// cache counters, so LP warm-path health is observable in production.
func TestStatsServesLPCounters(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		CaseHits *int64 `json:"case_hits"`
		LP       *struct {
			Solves           *int `json:"solves"`
			EtaUpdates       *int `json:"eta_updates"`
			Refactorizations *int `json:"refactorizations"`
			Fallbacks        *int `json:"fallbacks"`
			PrescreenHits    *int `json:"prescreen_hits"`
			InfeasibleSolves *int `json:"infeasible_solves"`
		} `json:"lp"`
		SolveCache *struct {
			Hits   *int64 `json:"hits"`
			Misses *int64 `json:"misses"`
		} `json:"solve_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CaseHits == nil {
		t.Error("stats response missing case_hits")
	}
	if stats.LP == nil {
		t.Fatal("stats response missing the lp counter block")
	}
	for name, p := range map[string]*int{
		"solves":            stats.LP.Solves,
		"eta_updates":       stats.LP.EtaUpdates,
		"refactorizations":  stats.LP.Refactorizations,
		"fallbacks":         stats.LP.Fallbacks,
		"prescreen_hits":    stats.LP.PrescreenHits,
		"infeasible_solves": stats.LP.InfeasibleSolves,
	} {
		if p == nil {
			t.Errorf("lp block missing %q", name)
		} else if *p < 0 {
			t.Errorf("lp.%s = %d, want >= 0", name, *p)
		}
	}
	if stats.SolveCache == nil {
		t.Fatal("stats response missing the solve_cache block")
	}
	if stats.SolveCache.Hits == nil || stats.SolveCache.Misses == nil {
		t.Error("solve_cache block missing hits/misses")
	}
}

// TestRepeatSelectionHitsEstimatorCache pins the estimator-reuse contract
// end to end: two selections that differ only in a memo-key field (the
// attack budget) land on the same x_new, so the second request misses the
// response memo but serves its η′ evaluation from the runner's shared
// per-network estimator cache instead of refactorizing H'. The /v1/stats
// estimators block is the observable.
func TestRepeatSelectionHitsEstimatorCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two ieee57 selections")
	}
	srv := testServer(t)
	estStats := func() (hits, misses int64) {
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats struct {
			Estimators *struct {
				Hits       *int64 `json:"hits"`
				Misses     *int64 `json:"misses"`
				FastBuilds *int64 `json:"fast_builds"`
				FullQRs    *int64 `json:"full_qrs"`
			} `json:"estimators"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		e := stats.Estimators
		if e == nil || e.Hits == nil || e.Misses == nil || e.FastBuilds == nil || e.FullQRs == nil {
			t.Fatal("stats response missing the estimators counter block")
		}
		return *e.Hits, *e.Misses
	}
	// ieee57 is the smallest case the sparse (fast) evaluation path — and
	// with it the estimator cache — serves.
	req := planner.SelectRequest{
		Case: "ieee57", GammaThreshold: 0.05, Starts: 1, Seed: 3, Attacks: 40,
	}
	_, m0 := estStats()
	var first planner.SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &first); code != http.StatusOK {
		t.Fatalf("first select status %d", code)
	}
	h1, m1 := estStats()
	if m1 == m0 {
		t.Fatalf("first selection never consulted the estimator cache (misses %d -> %d)", m0, m1)
	}
	// Same search seed, different attack budget: new memo key, same x_new.
	req.Attacks = 60
	var second planner.SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", req, &second); code != http.StatusOK {
		t.Fatalf("second select status %d", code)
	}
	if second.CacheHit {
		t.Fatal("second request hit the response memo; the estimator cache was never exercised")
	}
	h2, _ := estStats()
	if h2 == h1 {
		t.Fatalf("repeat selection rebuilt its estimator instead of hitting the cache (hits %d -> %d)", h1, h2)
	}
}

func TestErrorStatuses(t *testing.T) {
	srv := testServer(t)
	// Unknown case: unprocessable.
	if code := postJSON(t, srv.URL+"/v1/select",
		planner.SelectRequest{Case: "nope", GammaThreshold: 0.1}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown case status %d, want 422", code)
	}
	// Unreachable threshold without fallback: conflict.
	if code := postJSON(t, srv.URL+"/v1/select",
		planner.SelectRequest{Case: "ieee14", GammaThreshold: 5, Starts: 2, Seed: 1, Attacks: 50}, nil); code != http.StatusConflict {
		t.Errorf("unreachable threshold status %d, want 409", code)
	}
	// Malformed body: bad request.
	resp, err := http.Post(srv.URL+"/v1/select", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", resp.StatusCode)
	}
}

// TestRequestDeadline pins the service-hardening contract: a compute
// endpoint that cannot finish inside the per-request deadline answers 503
// with a Retry-After header and a body telling the client the computation
// continues and will be memoized, while the instant GET endpoints stay
// outside the deadline entirely.
func TestRequestDeadline(t *testing.T) {
	// A deadline no real selection can meet makes the timeout deterministic.
	srv := httptest.NewServer(newHandler(planner.New(planner.Config{}), time.Nanosecond))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/select", "application/json",
		strings.NewReader(`{"case":"ieee14","gamma_threshold":0.1,"starts":1,"seed":1,"attacks":20}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-exceeded status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("503 Content-Type %q, want application/json like every other response", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != retryAfterSeconds {
		t.Errorf("503 Retry-After %q, want %q — timeouts must invite the retry that hits the memo", ra, retryAfterSeconds)
	}
	if s := string(body); !strings.Contains(s, "deadline") || !strings.Contains(s, "memoized") {
		t.Errorf("503 body %q does not explain the deadline and the memoized retry", body)
	}
	if r2, err := http.Get(srv.URL + "/healthz"); err != nil || r2.StatusCode != http.StatusOK {
		t.Fatalf("healthz under a nanosecond deadline: %v / %v", err, r2)
	} else {
		r2.Body.Close()
	}
}

// TestDaemonCoalescesIdenticalRequests drives the single-flight contract
// through real HTTP: N identical in-flight selections run exactly one
// computation (stats: 1 miss, the rest hits or coalesced joins) and every
// client reads the same numbers.
func TestDaemonCoalescesIdenticalRequests(t *testing.T) {
	srv := testServer(t)
	const n = 6
	req := planner.SelectRequest{
		Case: "ieee14", GammaThreshold: 0.12, Starts: 2, Seed: 1, Attacks: 50,
	}
	var wg sync.WaitGroup
	resps := make([]planner.SelectResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = postJSON(t, srv.URL+"/v1/select", req, &resps[i])
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	r, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st planner.Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.ResultMisses != 1 {
		t.Errorf("result_misses = %d for %d identical concurrent requests, want exactly 1 computation", st.ResultMisses, n)
	}
	if st.ResultHits+st.ResultCoalesced != n-1 {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d",
			st.ResultHits, st.ResultCoalesced, st.ResultHits+st.ResultCoalesced, n-1)
	}
	base := resps[0]
	base.CacheHit, base.Source = false, ""
	for i := 1; i < n; i++ {
		got := resps[i]
		got.CacheHit, got.Source = false, ""
		if !reflect.DeepEqual(base, got) {
			t.Errorf("response %d differs from response 0:\n%+v\n%+v", i, base, got)
		}
	}
}

// TestDaemonShedsWithRetryAfter drives admission control through real
// HTTP, sequenced by polling /v1/stats so nothing races: a long request
// holds the single worker slot, a second fills the queue, and the third
// answers 429 with a Retry-After header. The shed request retried after
// the drain computes normally.
func TestDaemonShedsWithRetryAfter(t *testing.T) {
	if testing.Short() {
		t.Skip("holds a multi-second computation to saturate the queue")
	}
	p := planner.New(planner.Config{MaxInflight: 1, QueueDepth: 1})
	srv := httptest.NewServer(newHandler(p, time.Minute))
	defer srv.Close()

	admission := func() planner.AdmissionStats {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st planner.Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Admission
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	// The holder: a cold 300-bus selection computes for the better part of
	// a second, so the millisecond-scale polling below sequences well
	// inside its compute window.
	holder := planner.SelectRequest{
		Case: "ieee300", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 30, Seed: 1, Attacks: 20, GammaBackend: "sketch",
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code := postJSON(t, srv.URL+"/v1/select", holder, nil); code != http.StatusOK {
			t.Errorf("holder request status %d", code)
		}
	}()
	waitFor("worker slot held", func() bool { return admission().Admitted == 1 })

	// The queuer: a distinct request that must wait for the slot.
	quick := planner.SelectRequest{Case: "ieee14", GammaThreshold: 0.1, Starts: 1, Seed: 1, Attacks: 20}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code := postJSON(t, srv.URL+"/v1/select", quick, nil); code != http.StatusOK {
			t.Errorf("queued request status %d", code)
		}
	}()
	waitFor("queue full", func() bool { return admission().Queued == 1 })

	// The third concurrent computation sheds deterministically.
	shedReq := planner.SelectRequest{Case: "ieee14", GammaThreshold: 0.2, Starts: 1, Seed: 1, Attacks: 20}
	buf, _ := json.Marshal(shedReq)
	resp, err := http.Post(srv.URL+"/v1/select", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated daemon answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != retryAfterSeconds {
		t.Errorf("429 Retry-After %q, want %q", ra, retryAfterSeconds)
	}
	if st := admission(); st.Shed != 1 {
		t.Errorf("admission shed = %d, want 1", st.Shed)
	}
	wg.Wait()
	// The shed request was not memoized as an error: the retry computes.
	var retried planner.SelectResponse
	if code := postJSON(t, srv.URL+"/v1/select", shedReq, &retried); code != http.StatusOK {
		t.Fatalf("retry after drain: status %d", code)
	}
	if retried.Source != planner.SourceComputed {
		t.Errorf("retry served source %q, want a fresh computation", retried.Source)
	}
}

// TestGracefulShutdown pins the SIGTERM path: the signal stops the
// listener, in-flight work drains, and serveUntilSignal returns cleanly.
func TestGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newHandler(planner.New(planner.Config{}), time.Minute)}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serveUntilSignal(srv, ln, stop) }()

	url := "http://" + ln.Addr().String()
	// Wait for the listener to answer, then shut down mid-session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop <- os.Interrupt
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(shutdownGrace + 5*time.Second):
		t.Fatal("serveUntilSignal did not return after the signal")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}

func TestGammaEndpoint(t *testing.T) {
	srv := testServer(t)
	// γ of the nominal configuration against itself is zero.
	var n struct {
		Gamma float64 `json:"gamma"`
	}
	var xNew []float64
	// Fetch branch count via the registry listing.
	r, err := http.Get(srv.URL + "/v1/cases")
	if err != nil {
		t.Fatal(err)
	}
	var cases []struct {
		Name     string `json:"Name"`
		Branches int    `json:"Branches"`
	}
	if err := json.NewDecoder(r.Body).Decode(&cases); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	branches := 0
	for _, c := range cases {
		if c.Name == "case4gs" {
			branches = c.Branches
		}
	}
	if branches == 0 {
		t.Fatal("case4gs missing from the registry listing")
	}
	xNew = make([]float64, branches)
	for i := range xNew {
		xNew[i] = 0.1 // any valid positive reactance vector
	}
	if code := postJSON(t, srv.URL+"/v1/gamma",
		planner.GammaRequest{Case: "case4gs", XNew: xNew}, &n); code != http.StatusOK {
		t.Fatalf("gamma status %d", code)
	}
	if n.Gamma < 0 {
		t.Errorf("γ = %v out of range", n.Gamma)
	}
}

// TestStatsMarkSince pins the snapshot/delta mechanism: mark a named
// snapshot, run one computed selection, and the ?since= delta reports the
// per-window increments — an LP solve, a result miss, an admission grant,
// a disk-cache write, and (after a concurrent repeat) coalesced joins —
// while the cumulative counters keep growing. An unknown mark is a 404.
func TestStatsMarkSince(t *testing.T) {
	disk, err := diskcache.Open(diskcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(planner.New(planner.Config{
		MaxInflight: 2, Disk: disk,
	}), time.Minute))
	t.Cleanup(srv.Close)
	getStats := func(query string) (planner.Stats, int) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/stats" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var s planner.Stats
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
				t.Fatal(err)
			}
		}
		return s, resp.StatusCode
	}

	if _, code := getStats("?since=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown mark: status %d, want 404", code)
	}
	base, code := getStats("?mark=t0")
	if code != http.StatusOK {
		t.Fatalf("mark request: status %d", code)
	}

	// ieee57 runs the sparse path, so the window moves the revised-simplex
	// and dispatch-memo counters, not just the planner's own memo.
	req := planner.SelectRequest{
		Case: "ieee57", GammaThreshold: 0.05,
		Starts: 1, MaxEvals: 20, Seed: 1, Attacks: 10,
	}
	if code := postJSON(t, srv.URL+"/v1/select", req, nil); code != http.StatusOK {
		t.Fatalf("select status %d", code)
	}

	delta, code := getStats("?since=t0")
	if code != http.StatusOK {
		t.Fatalf("since request: status %d", code)
	}
	if delta.ResultMisses != 1 {
		t.Errorf("delta result_misses = %d, want 1", delta.ResultMisses)
	}
	if delta.LP.Solves <= 0 {
		t.Errorf("delta lp.solves = %d, want > 0", delta.LP.Solves)
	}
	// The PR 9 serving counters move in the same window: the computed
	// selection passed admission control and wrote its disk entry.
	if delta.Admission.Admitted != 1 || delta.Admission.Shed != 0 {
		t.Errorf("delta admission = %+v, want 1 admitted / 0 shed", delta.Admission)
	}
	if delta.Disk.Writes != 1 || delta.Disk.Hits != 0 {
		t.Errorf("delta disk_cache = %+v, want 1 write / 0 hits", delta.Disk)
	}
	cum, _ := getStats("")
	if cum.LP.Solves < base.LP.Solves+delta.LP.Solves {
		t.Errorf("cumulative solves %d < base %d + delta %d",
			cum.LP.Solves, base.LP.Solves, delta.LP.Solves)
	}

	// Re-marking overwrites: a fresh mark makes the next delta empty of
	// result traffic.
	if _, code := getStats("?mark=t0"); code != http.StatusOK {
		t.Fatalf("re-mark: status %d", code)
	}
	delta2, _ := getStats("?since=t0")
	if delta2.ResultMisses != 0 || delta2.ResultHits != 0 {
		t.Errorf("delta after re-mark has result traffic: %+v", delta2)
	}

	// Coalesced joins are window counters too: N identical in-flight
	// requests in a fresh window leave 1 miss and n-1 hits-or-joins.
	const n = 4
	var wg sync.WaitGroup
	conReq := planner.SelectRequest{
		Case: "ieee57", GammaThreshold: 0.07,
		Starts: 1, MaxEvals: 20, Seed: 1, Attacks: 10,
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postJSON(t, srv.URL+"/v1/select", conReq, nil)
		}()
	}
	wg.Wait()
	delta3, _ := getStats("?since=t0")
	if delta3.ResultMisses != 1 || delta3.ResultHits+delta3.ResultCoalesced != n-1 {
		t.Errorf("concurrent window: misses=%d hits=%d coalesced=%d, want 1 miss and %d hits+joins",
			delta3.ResultMisses, delta3.ResultHits, delta3.ResultCoalesced, n-1)
	}
}
