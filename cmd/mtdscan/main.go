// Command mtdscan sweeps the MTD γ threshold on an embedded case and
// prints the cost-benefit frontier: achieved γ, effectiveness η'(δ) and
// operational cost per sweep point. It generalizes the paper's Fig. 9 to
// any case, load level and noise setting, and is the tool an operator
// would use to pick a γ threshold for their own risk appetite.
//
// Usage:
//
//	mtdscan -case list
//	mtdscan -case ieee14 -from 0.05 -to 0.45 -step 0.05
//	mtdscan -case ieee118 -from 0.05 -to 0.30 -attacks 200
//	mtdscan -case ieee30 -scale 0.9 -sigma 0.0005 -attacks 500
//	mtdscan -case ieee118 -backend dense -parallel 1
//	mtdscan -case ieee118 -gamma sketch
//	mtdscan -gamma list
//	mtdscan -case ieee14 -csv frontier.csv
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"

	"gridmtd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mtdscan:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mtdscan", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		caseName = fs.String("case", "ieee14", "registered case name, or 'list' to print the registry")
		scale    = fs.Float64("scale", 1.0, "load scaling factor")
		from     = fs.Float64("from", 0.05, "first γ threshold (rad)")
		to       = fs.Float64("to", 0.45, "last γ threshold (rad)")
		step     = fs.Float64("step", 0.05, "γ threshold step")
		sigma    = fs.Float64("sigma", 0.0015, "measurement noise std dev (per-unit)")
		alpha    = fs.Float64("alpha", 5e-4, "BDD false-positive rate")
		attacks  = fs.Int("attacks", 500, "number of sampled attacks for η'")
		starts   = fs.Int("starts", 6, "multi-start budget per selection")
		maxEvals = fs.Int("maxevals", 0, "objective evaluations per local search (0 = solver default; lower it for quick large-case scans)")
		seed     = fs.Int64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "worker parallelism for the selection searches (0 = all cores, 1 = serial); results are identical for any setting")
		backend  = fs.String("backend", "auto", "linear-algebra backend: auto, dense or sparse ('list' describes them)")
		gammaBk  = fs.String("gamma", "auto", "γ-evaluation backend: auto, exact, sparse or sketch ('list' describes them)")
		csvPath  = fs.String("csv", "", "also write the frontier to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if handled, err := gridmtd.ResolveCommonFlags(w, *caseName, *backend, *gammaBk); handled || err != nil {
		return err
	}
	if *step <= 0 || *to < *from {
		return errors.New("invalid gamma sweep range")
	}
	if *parallel > 0 {
		// The engine parallelism knobs default to GOMAXPROCS, so capping it
		// caps every parallel path at once; outputs are identical for any
		// setting (the CI serial-vs-parallel diff re-checks this on a
		// sparse-path case).
		runtime.GOMAXPROCS(*parallel)
	}

	if _, err := gridmtd.CaseByName(*caseName); err != nil {
		return err
	}
	var grid []float64
	for gth := *from; gth <= *to+1e-9; gth += *step {
		grid = append(grid, gth)
	}

	// The sweep is one scenario: the runner shares a single dispatch-OPF
	// engine and γ engine across the pre-perturbation OPF and every sweep
	// point, chaining each point's solution as the next warm start —
	// exactly the arithmetic the historical per-point loop performed.
	res, err := gridmtd.RunScenario(gridmtd.Scenario{
		Kind:      gridmtd.ScenarioGammaSweep,
		Case:      *caseName,
		LoadScale: *scale,
		GammaGrid: grid,
		Effectiveness: gridmtd.EffectivenessConfig{
			NumAttacks: *attacks,
			Sigma:      *sigma,
			Alpha:      *alpha,
			Seed:       *seed,
		},
		SelectStarts: *starts,
		MaxEvals:     *maxEvals,
		Seed:         *seed,
		OPFStarts:    *starts,
		OPFMaxEvals:  *maxEvals,
		OPFSeed:      *seed,
	})
	if err != nil {
		return err
	}

	n := res.Net
	fmt.Fprintf(w, "case %s, load %.1f MW, no-MTD cost %.1f $/h, σ=%g, α=%g\n\n",
		n.Name, n.TotalLoadMW(), res.Baseline.CostPerHour, *sigma, *alpha)
	fmt.Fprintf(w, "%8s  %8s  %9s  %9s  %9s  %9s  %10s\n",
		"γ_th", "γ", "η'(0.5)", "η'(0.8)", "η'(0.9)", "η'(0.95)", "cost +%")

	var records [][]string
	records = append(records, []string{"gamma_th", "gamma", "eta_0.5", "eta_0.8", "eta_0.9", "eta_0.95", "cost_increase"})

	for i, r := range res.Rows {
		fmt.Fprintf(w, "%8.2f  %8.3f  %9.3f  %9.3f  %9.3f  %9.3f  %9.2f%%\n",
			grid[i], r.Gamma, r.Eta[0], r.Eta[1], r.Eta[2], r.Eta[3], 100*r.CostIncrease)
		records = append(records, []string{
			fmtF(grid[i]), fmtF(r.Gamma),
			fmtF(r.Eta[0]), fmtF(r.Eta[1]), fmtF(r.Eta[2]), fmtF(r.Eta[3]),
			fmtF(r.CostIncrease),
		})
	}
	if res.Exhausted {
		fmt.Fprintf(w, "%8.2f  -- beyond the D-FACTS hardware's reach --\n", res.ExhaustedAt)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cw := csv.NewWriter(f)
		if err := cw.WriteAll(records); err != nil {
			return err
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nfrontier written to %s\n", *csvPath)
	}
	return nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
