package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildCase(t *testing.T) {
	for _, name := range []string{"case4gs", "4bus", "ieee14", "14bus", "ieee30", "30bus"} {
		if _, err := buildCase(name); err != nil {
			t.Errorf("buildCase(%q): %v", name, err)
		}
	}
	if _, err := buildCase("nope"); err == nil {
		t.Error("expected error for unknown case")
	}
}

func TestRunRejectsBadRange(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-from", "0.5", "-to", "0.1"}, &buf); err == nil {
		t.Error("expected error for inverted range")
	}
	if err := run([]string{"-step", "0"}, &buf); err == nil {
		t.Error("expected error for zero step")
	}
	if err := run([]string{"-case", "bogus"}, &buf); err == nil {
		t.Error("expected error for unknown case")
	}
}

func TestRunSmallSweepWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	csvPath := filepath.Join(t.TempDir(), "frontier.csv")
	var buf bytes.Buffer
	err := run([]string{
		"-case", "ieee14",
		"-from", "0.2", "-to", "0.2", "-step", "0.1",
		"-attacks", "50", "-starts", "2",
		"-csv", csvPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "η'(0.9)") || !strings.Contains(out, "no-MTD cost") {
		t.Errorf("unexpected output:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 { // header + one sweep point
		t.Errorf("CSV has %d lines, want 2:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "gamma_th,") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
}
