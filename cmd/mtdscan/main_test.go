package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gridmtd"
)

func TestCaseRegistryLookups(t *testing.T) {
	for _, name := range []string{
		"case4gs", "4bus", "ieee14", "14bus", "ieee30", "30bus",
		"ieee57", "57bus", "case57", "ieee118", "118bus", "case118",
	} {
		if _, err := gridmtd.CaseByName(name); err != nil {
			t.Errorf("CaseByName(%q): %v", name, err)
		}
	}
	if _, err := gridmtd.CaseByName("nope"); err == nil {
		t.Error("expected error for unknown case")
	}
}

func TestRunCaseList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-case", "list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"case4gs", "ieee14", "ieee30", "ieee57", "ieee118"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("case list missing %s:\n%s", want, buf.String())
		}
	}
}

// TestBackendDiscoverability pins the "-gamma list"/"-backend list"
// surface and the requirement that a bad flag value's error names every
// valid choice (mirroring "-case list").
func TestBackendDiscoverability(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-gamma", "list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"auto", "exact", "sparse", "sketch"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("gamma backend list missing %s:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	if err := run([]string{"-backend", "list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"auto", "dense", "sparse"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("backend list missing %s:\n%s", want, buf.String())
		}
	}

	err := run([]string{"-gamma", "bogus"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("expected error for unknown gamma backend")
	}
	for _, want := range []string{"auto", "exact", "sparse", "sketch"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gamma flag error %q does not list %q", err, want)
		}
	}
	err = run([]string{"-backend", "bogus"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("expected error for unknown backend")
	}
	for _, want := range []string{"auto", "dense", "sparse"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("backend flag error %q does not list %q", err, want)
		}
	}
}

// TestListingsMatchSharedRenderers pins the flag-dedup contract: the
// listings delegate to the shared facade renderers, so mtdscan's bytes are
// identical to mtdexp's and gridopf's.
func TestListingsMatchSharedRenderers(t *testing.T) {
	for _, tc := range []struct {
		flag   string
		render func(*bytes.Buffer)
	}{
		{"-case", func(b *bytes.Buffer) { gridmtd.FormatCases(b) }},
		{"-backend", func(b *bytes.Buffer) { gridmtd.FormatBackends(b) }},
		{"-gamma", func(b *bytes.Buffer) { gridmtd.FormatGammaBackends(b) }},
	} {
		var got, want bytes.Buffer
		if err := run([]string{tc.flag, "list"}, &got); err != nil {
			t.Fatalf("%s list: %v", tc.flag, err)
		}
		tc.render(&want)
		if got.String() != want.String() {
			t.Errorf("%s list diverged from the shared renderer:\n got %q\nwant %q",
				tc.flag, got.String(), want.String())
		}
	}
}

func TestRunRejectsBadRange(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-from", "0.5", "-to", "0.1"}, &buf); err == nil {
		t.Error("expected error for inverted range")
	}
	if err := run([]string{"-step", "0"}, &buf); err == nil {
		t.Error("expected error for zero step")
	}
	if err := run([]string{"-case", "bogus"}, &buf); err == nil {
		t.Error("expected error for unknown case")
	}
}

func TestRunSmallSweepWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	csvPath := filepath.Join(t.TempDir(), "frontier.csv")
	var buf bytes.Buffer
	err := run([]string{
		"-case", "ieee14",
		"-from", "0.2", "-to", "0.2", "-step", "0.1",
		"-attacks", "50", "-starts", "2",
		"-csv", csvPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "η'(0.9)") || !strings.Contains(out, "no-MTD cost") {
		t.Errorf("unexpected output:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 { // header + one sweep point
		t.Errorf("CSV has %d lines, want 2:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "gamma_th,") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
}
