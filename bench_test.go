package gridmtd_test

import (
	"io"
	"math/rand"
	"testing"

	"gridmtd"
	"gridmtd/internal/experiments"
	"gridmtd/internal/mat"
)

// ---- One benchmark per paper table/figure ---------------------------------
//
// Each benchmark regenerates its artifact end to end at Quick quality
// (reduced sampling budgets, same code paths); run cmd/mtdexp for the
// paper-fidelity outputs recorded in EXPERIMENTS.md.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, experiments.Options{Quality: experiments.Quick}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }

// ---- Micro-benchmarks of the hot paths ------------------------------------

// benchState caches the 14-bus pre-perturbation state shared by the micro
// benches.
type benchState struct {
	n   *gridmtd.Network
	xt  []float64
	zt  []float64
	sel *gridmtd.MTDSelection
	set *gridmtd.AttackSet
}

var benchCache *benchState

func setupBench(b *testing.B) *benchState {
	b.Helper()
	if benchCache != nil {
		return benchCache
	}
	n := gridmtd.NewIEEE14()
	pre, err := gridmtd.SolveOPFWithDFACTS(n, gridmtd.DFACTSOPFConfig{Starts: 6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	zt, err := gridmtd.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		b.Fatal(err)
	}
	sel, err := gridmtd.SelectMTD(n, pre.Reactances, gridmtd.MTDSelectConfig{
		GammaThreshold: 0.3, Starts: 3, Seed: 2, BaselineCost: pre.CostPerHour,
	})
	if err != nil {
		b.Fatal(err)
	}
	set, err := gridmtd.SampleAttacks(n, pre.Reactances, zt,
		gridmtd.EffectivenessConfig{NumAttacks: 1000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	benchCache = &benchState{n: n, xt: pre.Reactances, zt: zt, sel: sel, set: set}
	return benchCache
}

// BenchmarkOPF14 measures one dispatch LP solve on the 14-bus system (the
// inner loop of every MTD selection).
func BenchmarkOPF14(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.SolveOPF(s.n, s.xt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGamma measures one candidate γ evaluation through the cached
// engine — the form the problem-(4) search and the η' sweeps execute
// thousands of times per selection: H(x_old) is orthonormalized once at
// evaluator construction, so each iteration performs only the
// candidate-side work (building H(x'), one Gram-Schmidt pass, the
// cross-Gram matrix and a 13×13 singular-value computation).
func BenchmarkGamma(b *testing.B) {
	s := setupBench(b)
	ev := gridmtd.NewGammaEvaluator(s.n, s.xt)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Gamma(s.sel.Reactances)
	}
}

// BenchmarkGammaUncached measures the one-shot path that rebuilds and
// orthonormalizes both measurement matrices per call (the ablation the
// cached engine replaces).
func BenchmarkGammaUncached(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gridmtd.Gamma(s.n, s.xt, s.sel.Reactances)
	}
}

// BenchmarkMeasurementMatrix measures assembling H for the 14-bus system.
func BenchmarkMeasurementMatrix(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.n.MeasurementMatrix(s.xt)
	}
}

// BenchmarkEstimator measures building the estimator (QR factorization).
func BenchmarkEstimator(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.NewEstimator(s.n, s.xt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateEstimate measures one WLS estimate + residual.
func BenchmarkStateEstimate(b *testing.B) {
	s := setupBench(b)
	est, err := gridmtd.NewEstimator(s.n, s.xt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est.Estimate(s.zt)
		est.Residual(s.zt)
	}
}

// BenchmarkSelectMTD measures one full problem-(4) solve (multi-start
// search with nested LPs).
func BenchmarkSelectMTD(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.SelectMTD(s.n, s.xt, gridmtd.MTDSelectConfig{
			GammaThreshold: 0.3, Starts: 2, Seed: int64(i), BaselineCost: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVD measures the one-sided Jacobi SVD at the measurement-matrix
// size used by the principal-angle computation.
func BenchmarkSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := mat.NewDense(54, 13)
	for i := 0; i < 54; i++ {
		for j := 0; j < 13; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mat.ComputeSVD(a)
	}
}

// BenchmarkQR measures the Householder QR at the same size.
func BenchmarkQR(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := mat.NewDense(54, 13)
	for i := 0; i < 54; i++ {
		for j := 0; j < 13; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mat.ComputeQR(a)
	}
}

// ---- Ablation benchmarks ---------------------------------------------------

// BenchmarkEffectivenessAnalytic measures the 1000-attack η' evaluation via
// noncentrality thresholding (the fast path used by the keyspace sweeps).
func BenchmarkEffectivenessAnalytic(b *testing.B) {
	s := setupBench(b)
	cfg := gridmtd.EffectivenessConfig{NumAttacks: 1000, Seed: 3}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.EvaluateAttacks(s.n, s.set, s.sel.Reactances, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEffectivenessAnalyticWithProbs additionally evaluates the
// per-attack noncentral-χ² probabilities (ablation: what the fast path
// saves).
func BenchmarkEffectivenessAnalyticWithProbs(b *testing.B) {
	s := setupBench(b)
	cfg := gridmtd.EffectivenessConfig{NumAttacks: 1000, Seed: 3, ReportProbs: true}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.EvaluateAttacks(s.n, s.set, s.sel.Reactances, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEffectivenessMonteCarlo measures the paper's literal protocol
// (noise-resampling Monte Carlo, 100 noise draws here) for comparison.
func BenchmarkEffectivenessMonteCarlo(b *testing.B) {
	s := setupBench(b)
	cfg := gridmtd.EffectivenessConfig{
		NumAttacks: 100, Seed: 3, MonteCarlo: true, NoiseTrials: 100,
	}
	small, err := gridmtd.SampleAttacks(s.n, s.xt, s.zt, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.EvaluateAttacks(s.n, small, s.sel.Reactances, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxGammaCorners measures the corner-enumeration max-γ probe
// (ablation for the design choice of polling all 2^6 device corners).
func BenchmarkMaxGammaCorners(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gridmtd.MaxGamma(s.n, s.xt, gridmtd.MaxGammaConfig{
			Starts: 1, Seed: int64(i), BaselineCost: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomKeyWithinCost measures drawing one prior-work keyspace
// key (rejection sampling with nested OPF solves).
func BenchmarkRandomKeyWithinCost(b *testing.B) {
	s := setupBench(b)
	base, err := gridmtd.SolveOPF(s.n, s.xt)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := gridmtd.RandomKeyWithinCost(rng, s.n, base.CostPerHour, 0.05, 0); err != nil {
			b.Fatal(err)
		}
	}
}
