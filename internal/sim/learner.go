package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/opf"
	"gridmtd/internal/subspace"
)

// EstimateColumnSpace implements the attacker's subspace learning (Kim,
// Tong & Thomas 2015): given eavesdropped measurement vectors (each length
// M), it returns an orthonormal basis of the best rank-`dim` approximation
// of their span — the attacker's estimate of Col(H). The estimate needs
// measurement diversity (varying loads) to converge; this is the basis for
// the paper's argument that hourly MTD outpaces the attacker.
func EstimateColumnSpace(samples [][]float64, dim int) (*mat.Dense, error) {
	if len(samples) == 0 {
		return nil, errors.New("sim: no samples")
	}
	m := len(samples[0])
	if dim <= 0 || dim > m {
		return nil, fmt.Errorf("sim: invalid subspace dimension %d", dim)
	}
	if len(samples) < dim {
		return nil, fmt.Errorf("sim: %d samples cannot determine a %d-dimensional subspace", len(samples), dim)
	}
	// Stack samples as columns of an M×K matrix and take the top-dim left
	// singular vectors.
	z := mat.NewDense(m, len(samples))
	for k, s := range samples {
		if len(s) != m {
			return nil, errors.New("sim: inconsistent sample lengths")
		}
		z.SetCol(k, s)
	}
	work := z
	if work.Rows() < work.Cols() {
		// One-sided Jacobi needs rows >= cols; more samples than sensors is
		// fine, just decompose the transpose and use V.
		svd := mat.ComputeSVD(work.T())
		return svd.V.Submatrix(0, m, 0, dim), nil
	}
	svd := mat.ComputeSVD(work)
	return svd.U.Submatrix(0, m, 0, dim), nil
}

// LearningConfig drives SimulateLearning.
type LearningConfig struct {
	// Samples is the number of eavesdropped measurement vectors.
	Samples int
	// Sigma is the measurement noise level (per-unit).
	Sigma float64
	// JitterMW is the standard deviation of the per-bus injection
	// fluctuations around the operating point that provide information
	// diversity across samples. Every bus fluctuates (demand noise,
	// metering-epoch mismatch), which is the "maximum information
	// diversity" assumption of the subspace-learning analysis the paper
	// cites for its 500-1000 sample estimate; buses that never vary would
	// leave state directions unidentifiable.
	JitterMW float64
	// Seed seeds the sampler.
	Seed int64
}

// LearningOutcome reports how well the attacker learned the system.
type LearningOutcome struct {
	// SubspaceError is γ(Ĥ, H): the largest principal angle between the
	// learned subspace and the true Col(H). Zero means fully learned.
	SubspaceError float64
	// Basis is the learned orthonormal basis (M×(N−1)).
	Basis *mat.Dense
}

// SimulateLearning generates cfg.Samples eavesdropped measurements of the
// network operating at reactances x, with every bus injection jittered
// around the OPF operating point, runs the subspace estimator, and reports
// the angle to the true column space. It is the repository's executable
// version of the paper's Section IV-A argument for the MTD update
// interval: the error shrinks as samples accumulate, and any reactance
// perturbation invalidates the estimate.
func SimulateLearning(n *grid.Network, x []float64, cfg LearningConfig) (*LearningOutcome, error) {
	if cfg.Samples <= 0 {
		return nil, errors.New("sim: need at least one sample")
	}
	if cfg.Sigma < 0 || cfg.JitterMW < 0 {
		return nil, errors.New("sim: negative noise settings")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Operating point.
	res, err := opf.SolveDispatch(n, x)
	if err != nil {
		return nil, fmt.Errorf("sim: operating point: %w", err)
	}
	inj0 := n.InjectionsMW(res.DispatchMW)
	h := n.MeasurementMatrix(x)
	rb, err := mat.ComputeLU(n.ReducedB(x))
	if err != nil {
		return nil, fmt.Errorf("sim: singular susceptance matrix: %w", err)
	}
	p0 := n.ReduceVec(mat.ScaleVec(1/n.BaseMVA, inj0))

	samples := make([][]float64, 0, cfg.Samples)
	for k := 0; k < cfg.Samples; k++ {
		// Jitter every (non-slack) bus injection; the slack absorbs the
		// imbalance, as in real operation.
		p := mat.CopyVec(p0)
		for i := range p {
			p[i] += rng.NormFloat64() * cfg.JitterMW / n.BaseMVA
		}
		theta := rb.Solve(p)
		z := mat.MulVec(h, theta)
		for i := range z {
			z[i] += rng.NormFloat64() * cfg.Sigma
		}
		samples = append(samples, z)
	}
	basis, err := EstimateColumnSpace(samples, n.N()-1)
	if err != nil {
		return nil, err
	}
	return &LearningOutcome{
		SubspaceError: subspace.Gamma(h, basis),
		Basis:         basis,
	}, nil
}

// BasisGamma returns the angle γ between a learned subspace estimate and
// the true measurement column space at reactances x. After an MTD
// perturbation this angle is large: the attacker's model is stale.
func BasisGamma(n *grid.Network, x []float64, out *LearningOutcome) float64 {
	return subspace.Gamma(n.MeasurementMatrix(x), out.Basis)
}
