// Package sim runs the closed-loop defender/attacker simulations of the
// paper's Section VII-C: a day-long hourly loop in which the operator
// re-solves the OPF as the load moves, tunes and applies an MTD reactance
// perturbation each hour against an attacker whose knowledge of the
// measurement matrix is one hour stale, and accounts for the MTD's
// operational cost. It also contains the attacker-learning model
// (subspace estimation from eavesdropped measurements, per Kim, Tong &
// Thomas) used to justify the MTD update interval.
package sim

import (
	"errors"
	"fmt"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
	"gridmtd/internal/subspace"
)

// HourResult records one hour of the daily simulation (one point of the
// paper's Figs. 10 and 11).
type HourResult struct {
	// Hour indexes the load profile (0 = 1 AM ... 23 = 12 AM).
	Hour int
	// TotalLoadMW is the system demand this hour.
	TotalLoadMW float64
	// BaselineCost is C_OPF,t' — the no-MTD problem-(1) cost.
	BaselineCost float64
	// MTDCost is C'_OPF,t' — the cost under the selected MTD perturbation.
	MTDCost float64
	// CostIncrease is the paper's C_MTD (fraction, e.g. 0.023 = 2.3%).
	CostIncrease float64
	// GammaThreshold is the tuned γ_th used this hour.
	GammaThreshold float64
	// GammaOldMTD is γ(H_t, H'_t'): attacker knowledge vs applied MTD.
	GammaOldMTD float64
	// GammaOldNew is γ(H_t, H_t'): the natural hour-over-hour drift
	// without MTD (Fig. 11 shows it is ≈ 0).
	GammaOldNew float64
	// GammaNewMTD is γ(H_t', H'_t'): no-MTD-now vs MTD-now (Fig. 11 shows
	// it tracks GammaOldMTD, validating the paper's approximation).
	GammaNewMTD float64
	// Eta is the achieved effectiveness η'(δ*) of the applied MTD.
	Eta float64
}

// DayConfig configures RunDay.
type DayConfig struct {
	// Net is the base network; its loads define the profile's reference
	// level and are scaled by LoadFactors each hour.
	Net *grid.Network
	// LoadFactors multiply the base loads hour by hour.
	LoadFactors []float64
	// Tune configures the per-hour γ_th tuning (target δ*, target η',
	// inner search budgets). Its Select.BaselineCost is overridden hourly.
	Tune core.TuneConfig
	// OPFStarts is the multi-start budget of the hourly no-MTD OPF
	// (default 8).
	OPFStarts int
	// Warmup runs the first profile hour once, unrecorded, before the
	// simulated day so hour 0 starts from a realistic installed
	// configuration and stale attacker knowledge (the trace begins
	// mid-operation, not at commissioning).
	Warmup bool
	// PersistReactances starts each hour's no-MTD OPF from the previously
	// installed (MTD-perturbed) reactances instead of the case defaults.
	// Physically realistic — the D-FACTS devices stay where they were —
	// and it roughly doubles the reachable γ around the clock, but it
	// makes consecutive no-MTD configurations alternate between device
	// corners, so the natural drift γ(H_t, H_t') is no longer ≈ 0 as the
	// paper's Fig. 11 shows. Off by default (the paper's apparent
	// protocol); see EXPERIMENTS.md for the ablation.
	PersistReactances bool
	// GammaBackend selects the γ-evaluation backend of the hourly tuning
	// searches (auto = the -gamma process default, exact when none is
	// set). The recorded angles and effectiveness stay exact regardless:
	// approximate backends only guide the inner searches.
	GammaBackend core.GammaBackend
	// Seed seeds the hourly solvers.
	Seed int64
}

// RunDay executes the daily loop. For each hour h it:
//  1. scales the loads and solves problem (1) for the no-MTD reactances
//     x_t' and reference cost C_OPF,t';
//  2. takes the attacker's knowledge H_t from hour h−1's no-MTD
//     configuration (one-hour-stale knowledge, Section VII-C);
//  3. tunes γ_th so the selected MTD achieves the target effectiveness and
//     solves problem (4);
//  4. records costs and the three principal angles of Fig. 11.
//
// Hour 0 uses its own configuration as the attacker knowledge (γ = 0
// drift), matching the paper's first sample.
//
// One work network and one dispatch-OPF engine serve the whole day: the
// engine reads loads fresh on every solve and takes the reactances as an
// explicit argument, so mutating the work network's loads (and, under
// PersistReactances, its installed reactances) hour by hour performs
// exactly the arithmetic the historical per-hour engine construction
// performed — on the dense path the hourly records are bitwise identical —
// while the LP skeleton, the factorizer workspaces and (on the sparse
// path) the warm simplex bases are built once per day instead of once per
// hour. Only the γ engine is rebuilt hourly, because it is keyed by the
// attacker's (hourly-moving) knowledge x_t.
func RunDay(cfg DayConfig) ([]HourResult, error) {
	if cfg.Net == nil {
		return nil, errors.New("sim: nil network")
	}
	if len(cfg.LoadFactors) == 0 {
		return nil, errors.New("sim: empty load profile")
	}
	if cfg.OPFStarts <= 0 {
		cfg.OPFStarts = 8
	}
	baseLoads := cfg.Net.LoadsMW()

	// Hour h-1 state: the attacker's knowledge (no-MTD configuration) and
	// the physical reactance setting the devices were left at (the MTD
	// perturbation stays in effect until the next update, so each hour's
	// OPF re-optimizes from there rather than from the case defaults).
	var prevX []float64
	var prevZ []float64
	var installedX []float64

	factors := cfg.LoadFactors
	firstRecorded := 0
	if cfg.Warmup {
		factors = append([]float64{cfg.LoadFactors[0]}, cfg.LoadFactors...)
		firstRecorded = 1
	}

	net := cfg.Net.Clone()
	engine, err := opf.NewDispatchEngine(net)
	if err != nil {
		return nil, fmt.Errorf("sim: dispatch engine: %w", err)
	}
	loads := make([]float64, len(baseLoads))

	results := make([]HourResult, 0, len(factors))
	for h, factor := range factors {
		for i, l := range baseLoads {
			loads[i] = l * factor
		}
		net.SetLoadsMW(loads)
		startX := []float64(nil) // nominal reactances
		if cfg.PersistReactances && installedX != nil {
			net.SetReactances(installedX)
			startX = installedX
		}

		// Step 1: no-MTD OPF (problem (1)).
		noMTD, err := opf.SolveDFACTSEngine(engine, opf.DFACTSConfig{Starts: cfg.OPFStarts, Seed: cfg.Seed + int64(h), Initial: startX})
		if err != nil {
			return nil, fmt.Errorf("sim: hour %d no-MTD OPF: %w", h, err)
		}
		zNow, err := core.OperatingMeasurements(net, noMTD.Reactances)
		if err != nil {
			return nil, fmt.Errorf("sim: hour %d operating point: %w", h, err)
		}

		// Step 2: attacker knowledge = previous hour's configuration.
		xOld, zOld := prevX, prevZ
		if xOld == nil {
			xOld, zOld = noMTD.Reactances, zNow
		}

		// Step 3: tune γ_th and select the MTD.
		tuneCfg := cfg.Tune
		tuneCfg.Select.BaselineCost = noMTD.CostPerHour
		tuneCfg.Select.Seed = cfg.Seed + int64(h)
		tuneCfg.Effectiveness.Seed = cfg.Seed + int64(h)
		sel, eff, err := core.TuneGammaThresholdWith(core.NewEnginesSharedBackend(net, xOld, engine, cfg.GammaBackend), net, xOld, zOld, tuneCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: hour %d MTD selection: %w", h, err)
		}

		// Step 4: metrics (warm-up hours advance state but go unrecorded).
		if h < firstRecorded {
			prevX, prevZ = noMTD.Reactances, zNow
			installedX = sel.Reactances
			continue
		}
		hOld := net.MeasurementMatrix(xOld)
		hNow := net.MeasurementMatrix(noMTD.Reactances)
		hMTD := net.MeasurementMatrix(sel.Reactances)
		results = append(results, HourResult{
			Hour:           h - firstRecorded,
			TotalLoadMW:    net.TotalLoadMW(),
			BaselineCost:   noMTD.CostPerHour,
			MTDCost:        sel.OPF.CostPerHour,
			CostIncrease:   core.OperationalCost(noMTD.CostPerHour, sel.OPF.CostPerHour),
			GammaThreshold: sel.Gamma,
			GammaOldMTD:    subspace.Gamma(hOld, hMTD),
			GammaOldNew:    subspace.Gamma(hOld, hNow),
			GammaNewMTD:    subspace.Gamma(hNow, hMTD),
			Eta:            eff.Eta[0],
		})

		prevX, prevZ = noMTD.Reactances, zNow
		installedX = sel.Reactances
	}
	return results, nil
}
