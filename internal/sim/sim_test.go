package sim

import (
	"math"
	"testing"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/loadprofile"
	"gridmtd/internal/mat"
	"gridmtd/internal/subspace"
)

// fastTune returns a reduced-budget tuning config that keeps the day loop
// test affordable while exercising every code path.
func fastTune() core.TuneConfig {
	return core.TuneConfig{
		TargetDelta: 0.9,
		TargetEta:   0.9,
		Iterations:  2,
		Effectiveness: core.EffectivenessConfig{
			NumAttacks: 80,
		},
		Select: core.SelectConfig{Starts: 2},
	}
}

func TestRunDayShortHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("daily loop is expensive")
	}
	n := grid.CaseIEEE14()
	factors, err := loadprofile.ScaleToPeak(loadprofile.NYWinterWeekday(), n.TotalLoadMW(), 220)
	if err != nil {
		t.Fatal(err)
	}
	// Three representative hours: trough (3 AM), shoulder (9 AM), peak (6 PM).
	sel := []float64{factors[2], factors[8], factors[17]}
	results, err := RunDay(DayConfig{
		Net:         n,
		LoadFactors: sel,
		Tune:        fastTune(),
		OPFStarts:   4,
		Seed:        21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d hourly results", len(results))
	}
	for i, r := range results {
		if r.Hour != i {
			t.Errorf("hour %d mislabelled as %d", i, r.Hour)
		}
		if r.MTDCost < r.BaselineCost-1e-6 {
			t.Errorf("hour %d: MTD cost %v below baseline %v", i, r.MTDCost, r.BaselineCost)
		}
		if r.CostIncrease < 0 {
			t.Errorf("hour %d: negative cost increase", i)
		}
		if r.Eta <= 0 || r.Eta > 1 {
			t.Errorf("hour %d: eta = %v out of range", i, r.Eta)
		}
		if r.GammaOldMTD <= 0 && i > 0 {
			t.Errorf("hour %d: no subspace separation achieved", i)
		}
		// Fig. 11's approximation: γ(H_t, H'_t') ≈ γ(H_t', H'_t') whenever
		// the natural drift γ(H_t, H_t') is small.
		if i > 0 && r.GammaOldNew < 0.02 {
			if math.Abs(r.GammaOldMTD-r.GammaNewMTD) > 0.1 {
				t.Errorf("hour %d: approximation gap %v too large (γOldNew=%v)",
					i, math.Abs(r.GammaOldMTD-r.GammaNewMTD), r.GammaOldNew)
			}
		}
	}
	// Load ordering carried through.
	if !(results[0].TotalLoadMW < results[1].TotalLoadMW && results[1].TotalLoadMW < results[2].TotalLoadMW) {
		t.Error("load factors not applied in order")
	}
}

func TestRunDayValidation(t *testing.T) {
	if _, err := RunDay(DayConfig{}); err == nil {
		t.Error("expected error for nil network")
	}
	if _, err := RunDay(DayConfig{Net: grid.CaseIEEE14()}); err == nil {
		t.Error("expected error for empty profile")
	}
}

func TestEstimateColumnSpaceExact(t *testing.T) {
	// Noise-free samples spanning the space recover it exactly.
	n := grid.CaseIEEE14()
	x := n.Reactances()
	h := n.MeasurementMatrix(x)
	samples := make([][]float64, 0, h.Cols())
	for j := 0; j < h.Cols(); j++ {
		samples = append(samples, h.Col(j))
	}
	basis, err := EstimateColumnSpace(samples, h.Cols())
	if err != nil {
		t.Fatal(err)
	}
	if g := subspace.Gamma(h, basis); g > 1e-6 {
		t.Errorf("exact recovery failed: gamma = %v", g)
	}
}

func TestEstimateColumnSpaceErrors(t *testing.T) {
	if _, err := EstimateColumnSpace(nil, 2); err == nil {
		t.Error("expected error for no samples")
	}
	if _, err := EstimateColumnSpace([][]float64{{1, 2}}, 0); err == nil {
		t.Error("expected error for dim 0")
	}
	if _, err := EstimateColumnSpace([][]float64{{1, 2}}, 2); err == nil {
		t.Error("expected error for too few samples")
	}
	if _, err := EstimateColumnSpace([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Error("expected error for ragged samples")
	}
}

func TestEstimateColumnSpaceMoreSamplesThanSensors(t *testing.T) {
	// K > M exercises the transpose branch.
	samples := make([][]float64, 10)
	for k := range samples {
		samples[k] = []float64{float64(k + 1), float64(2 * (k + 1)), 0}
	}
	basis, err := EstimateColumnSpace(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All samples are multiples of (1, 2, 0)/√5.
	want := []float64{1 / math.Sqrt(5), 2 / math.Sqrt(5), 0}
	got := basis.Col(0)
	if math.Abs(math.Abs(mat.Dot(got, want))-1) > 1e-9 {
		t.Errorf("basis = %v, want ±%v", got, want)
	}
}

func TestSimulateLearningConvergesAndMTDInvalidates(t *testing.T) {
	n := grid.CaseIEEE14()
	x := n.Reactances()

	few, err := SimulateLearning(n, x, LearningConfig{Samples: 20, Sigma: 0.002, JitterMW: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := SimulateLearning(n, x, LearningConfig{Samples: 400, Sigma: 0.002, JitterMW: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(many.SubspaceError < few.SubspaceError) {
		t.Errorf("learning did not improve with samples: %v -> %v", few.SubspaceError, many.SubspaceError)
	}
	if many.SubspaceError > 0.3 {
		t.Errorf("with 400 diverse samples the subspace error %v should be small", many.SubspaceError)
	}

	// An MTD perturbation must invalidate the learned estimate: the angle
	// from the learned basis to the NEW H is much larger than to the old.
	xNew := x
	xNew = append([]float64(nil), xNew...)
	for _, i := range n.DFACTSIndices() {
		xNew[i] = n.Branches[i].XMax
	}
	hNew := n.MeasurementMatrix(xNew)
	angleToNew := subspace.Gamma(hNew, many.Basis)
	if !(angleToNew > 3*many.SubspaceError) {
		t.Errorf("MTD did not invalidate attacker knowledge: error to old %v, to new %v",
			many.SubspaceError, angleToNew)
	}
}

func TestSimulateLearningValidation(t *testing.T) {
	n := grid.CaseIEEE14()
	if _, err := SimulateLearning(n, n.Reactances(), LearningConfig{Samples: 0}); err == nil {
		t.Error("expected error for zero samples")
	}
	if _, err := SimulateLearning(n, n.Reactances(), LearningConfig{Samples: 10, Sigma: -1}); err == nil {
		t.Error("expected error for negative sigma")
	}
}
