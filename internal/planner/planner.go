// Package planner is the long-running selection front-end of the
// reproduction: a concurrency-safe service object answering MTD selection,
// γ-evaluation, day-sweep and placement requests against the embedded case
// registry. It amortizes everything amortizable across requests:
//
//   - an LRU of resolved cases (one immutable network per (case, load
//     scale) pair), whose dispatch-OPF engines the scenario runner caches
//     by network pointer — so the factorizer workspaces, LP skeletons and
//     warm simplex bases survive from request to request;
//   - a memo LRU of finished responses keyed by the full request
//     parameterization (case, setpoint, budgets, seeds), so a repeated
//     request is a map lookup instead of a multi-start search.
//
// Requests with identical keys share one computation — single-flight
// coalescing: the second caller joins the first's in-flight search instead
// of racing the memo, observable through the result_coalesced counter.
// Requests with different keys compute concurrently, optionally through a
// bounded admission queue (Config.MaxInflight / QueueDepth) that sheds
// load with ErrOverloaded once the queue is full, and optionally backed by
// a persistent disk cache (Config.Disk) so a restarted process serves
// previously computed responses without re-solving. cmd/gridmtdd serves
// this planner over HTTP.
package planner

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
	"gridmtd/internal/opf"
	"gridmtd/internal/planner/diskcache"
	"gridmtd/internal/scenario"
	"gridmtd/internal/subspace"
)

// ErrUnreachable is returned by Select when the requested γ threshold is
// beyond the case's D-FACTS reach and no max-γ fallback was requested.
var ErrUnreachable = errors.New("planner: gamma threshold unreachable within D-FACTS limits")

// ErrOverloaded is returned when admission control sheds a request: the
// worker pool is saturated and the work queue is at depth. The result is
// not memoized — an immediate retry (the HTTP layer answers 429 with
// Retry-After) re-enters the queue.
var ErrOverloaded = errors.New("planner: overloaded, work queue full; retry later")

// Config tunes a Planner.
type Config struct {
	// Backend forces the dispatch engines' linear-algebra backend
	// (AutoBackend picks by case size).
	Backend grid.Backend
	// MaxCases bounds the case LRU (default 8 (case, scale) entries).
	MaxCases int
	// MaxResults bounds the response memo LRU (default 256).
	MaxResults int
	// Parallelism bounds each request's internal search parallelism
	// (0 = GOMAXPROCS). Results are identical for any setting.
	Parallelism int
	// MaxInflight bounds how many requests may compute concurrently
	// (0 = unbounded, admission control off). Memo, coalesced and disk
	// hits never consume a slot.
	MaxInflight int
	// QueueDepth bounds how many computations may wait for a slot
	// (default 4×MaxInflight when admission control is on); past the
	// depth, requests shed with ErrOverloaded.
	QueueDepth int
	// Disk attaches a persistent response cache: computed responses are
	// written through, and a fresh process serves previously computed
	// requests from disk without re-solving. Entries are keyed on the
	// bitwise memo key plus the case registry content hash, so stale
	// caches from a different registry build read as misses.
	Disk *diskcache.Cache
}

func (c Config) withDefaults() Config {
	if c.MaxCases <= 0 {
		c.MaxCases = 8
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 256
	}
	return c
}

// Stats counts cache traffic and which γ backend served the computed
// (non-memoized) selection-style requests.
type Stats struct {
	CaseHits     int64 `json:"case_hits"`
	CaseMisses   int64 `json:"case_misses"`
	ResultHits   int64 `json:"result_hits"`
	ResultMisses int64 `json:"result_misses"`
	// ResultCoalesced counts requests that joined an identical in-flight
	// computation (single-flight coalescing) instead of hitting a finished
	// memo entry or computing themselves.
	ResultCoalesced int64 `json:"result_coalesced"`
	// GammaExactServed / GammaSparseServed / GammaSketchServed count
	// computed requests by the γ backend that served their searches.
	GammaExactServed  int64 `json:"gamma_exact_served"`
	GammaSparseServed int64 `json:"gamma_sparse_served"`
	GammaSketchServed int64 `json:"gamma_sketch_served"`
	// LP is the process-wide revised-simplex counter snapshot
	// (lp.GlobalRevisedStats) taken when the Stats call was answered.
	// Warm-path health (eta updates vs refactorizations, fallback rate)
	// is the production-observable face of the dispatch-solve cost.
	LP LPStats `json:"lp"`
	// Estimators is the process-wide estimator-cache snapshot
	// (core.GlobalEstimatorCacheStats): how many state-estimator rebuilds
	// repeat selections avoided, and how many of the remaining builds the
	// rank-structured fast path served instead of a full QR.
	Estimators core.EstimatorCacheStats `json:"estimators"`
	// SolveCache is the process-wide dispatch-solve memo snapshot
	// (opf.GlobalSolveCacheStats): how many dispatch LPs the bitwise
	// (loads, reactances) memo answered without touching the solver.
	SolveCache opf.SolveCacheStats `json:"solve_cache"`
	// Admission is the bounded work queue's traffic (all zero when
	// admission control is off).
	Admission AdmissionStats `json:"admission"`
	// Disk is the persistent response cache's traffic (all zero when no
	// disk cache is attached).
	Disk diskcache.Stats `json:"disk_cache"`
}

// Delta returns the counter increments between an earlier Stats snapshot
// and this one (field-wise s − since). The process-global counters served
// by /v1/stats are cumulative; tests, CI and dashboards diff two
// snapshots with it instead of racing absolute values. The γ-backend
// label is copied from the newer snapshot.
func (s Stats) Delta(since Stats) Stats {
	return Stats{
		CaseHits:          s.CaseHits - since.CaseHits,
		CaseMisses:        s.CaseMisses - since.CaseMisses,
		ResultHits:        s.ResultHits - since.ResultHits,
		ResultMisses:      s.ResultMisses - since.ResultMisses,
		ResultCoalesced:   s.ResultCoalesced - since.ResultCoalesced,
		GammaExactServed:  s.GammaExactServed - since.GammaExactServed,
		GammaSparseServed: s.GammaSparseServed - since.GammaSparseServed,
		GammaSketchServed: s.GammaSketchServed - since.GammaSketchServed,
		LP:                s.LP.Delta(since.LP),
		Estimators:        s.Estimators.Delta(since.Estimators),
		SolveCache:        s.SolveCache.Delta(since.SolveCache),
		Admission:         s.Admission.Delta(since.Admission),
		Disk:              s.Disk.Delta(since.Disk),
	}
}

// LPStats mirrors lp.RevisedStats with the JSON field names /v1/stats
// serves. See lp.RevisedStats for the counters' precise meanings.
type LPStats struct {
	Solves           int `json:"solves"`
	WarmSolves       int `json:"warm_solves"`
	ColdSolves       int `json:"cold_solves"`
	Fallbacks        int `json:"fallbacks"`
	PrimalPivots     int `json:"primal_pivots"`
	DualPivots       int `json:"dual_pivots"`
	SEPivots         int `json:"se_pivots"`
	BoundFlips       int `json:"bound_flips"`
	WeightResets     int `json:"weight_resets"`
	EtaUpdates       int `json:"eta_updates"`
	Refactorizations int `json:"refactorizations"`
	SparseFactors    int `json:"sparse_factors"`
	PrescreenHits    int `json:"prescreen_hits"`
	PrescreenProbes  int `json:"prescreen_probes"`
	BoundProbes      int `json:"bound_probes"`
	BoundScreens     int `json:"bound_screens"`
	InfeasibleSolves int `json:"infeasible_solves"`
}

// Delta returns the field-wise counter increments s − since.
func (s LPStats) Delta(since LPStats) LPStats {
	return LPStats{
		Solves:           s.Solves - since.Solves,
		WarmSolves:       s.WarmSolves - since.WarmSolves,
		ColdSolves:       s.ColdSolves - since.ColdSolves,
		Fallbacks:        s.Fallbacks - since.Fallbacks,
		PrimalPivots:     s.PrimalPivots - since.PrimalPivots,
		DualPivots:       s.DualPivots - since.DualPivots,
		SEPivots:         s.SEPivots - since.SEPivots,
		BoundFlips:       s.BoundFlips - since.BoundFlips,
		WeightResets:     s.WeightResets - since.WeightResets,
		EtaUpdates:       s.EtaUpdates - since.EtaUpdates,
		Refactorizations: s.Refactorizations - since.Refactorizations,
		SparseFactors:    s.SparseFactors - since.SparseFactors,
		PrescreenHits:    s.PrescreenHits - since.PrescreenHits,
		PrescreenProbes:  s.PrescreenProbes - since.PrescreenProbes,
		BoundProbes:      s.BoundProbes - since.BoundProbes,
		BoundScreens:     s.BoundScreens - since.BoundScreens,
		InfeasibleSolves: s.InfeasibleSolves - since.InfeasibleSolves,
	}
}

// lpStatsSnapshot converts the process-wide lp counters into the
// JSON-tagged mirror.
func lpStatsSnapshot() LPStats {
	g := lp.GlobalRevisedStats()
	return LPStats{
		Solves:           g.Solves,
		WarmSolves:       g.WarmSolves,
		ColdSolves:       g.ColdSolves,
		Fallbacks:        g.Fallbacks,
		PrimalPivots:     g.PrimalPivots,
		DualPivots:       g.DualPivots,
		SEPivots:         g.SEPivots,
		BoundFlips:       g.BoundFlips,
		WeightResets:     g.WeightResets,
		EtaUpdates:       g.EtaUpdates,
		Refactorizations: g.Refactorizations,
		SparseFactors:    g.SparseFactors,
		PrescreenHits:    g.PrescreenHits,
		PrescreenProbes:  g.PrescreenProbes,
		BoundProbes:      g.BoundProbes,
		BoundScreens:     g.BoundScreens,
		InfeasibleSolves: g.InfeasibleSolves,
	}
}

// Planner is the long-running selection service. Safe for concurrent use.
type Planner struct {
	cfg    Config
	runner *scenario.Runner
	adm    *admission
	disk   *diskcache.Cache

	mu      sync.Mutex
	cases   map[string]*caseEntry
	caseLRU *list.List // front = most recent; values are case keys
	results map[string]*resultEntry
	resLRU  *list.List
	stats   Stats
}

type caseEntry struct {
	once sync.Once
	net  *grid.Network
	err  error
	elem *list.Element
}

type resultEntry struct {
	once    sync.Once
	done    chan struct{} // closed when the computation (or disk load) finished
	resp    any
	err     error
	elapsed time.Duration
	source  string // sourceComputed or sourceDisk, set by the first caller
	elem    *list.Element
}

// New builds a planner.
func New(cfg Config) *Planner {
	cfg = cfg.withDefaults()
	return &Planner{
		cfg:     cfg,
		runner:  scenario.NewRunner(),
		adm:     newAdmission(cfg.MaxInflight, cfg.QueueDepth),
		disk:    cfg.Disk,
		cases:   map[string]*caseEntry{},
		caseLRU: list.New(),
		results: map[string]*resultEntry{},
		resLRU:  list.New(),
	}
}

// Stats returns a snapshot of the cache counters plus the process-wide
// revised-simplex counters.
func (p *Planner) Stats() Stats {
	p.mu.Lock()
	s := p.stats
	p.mu.Unlock()
	s.LP = lpStatsSnapshot()
	s.Estimators = core.GlobalEstimatorCacheStats()
	s.SolveCache = opf.GlobalSolveCacheStats()
	s.Admission = p.adm.stats()
	s.Disk = p.disk.Stats()
	return s
}

// caseFor resolves the immutable network of a (case, load scale) pair
// through the LRU. The returned network must never be mutated — the
// scenario runner keys its engine cache on the pointer.
func (p *Planner) caseFor(name string, scale float64) (*grid.Network, error) {
	if scale == 0 {
		scale = 1
	}
	key := fmt.Sprintf("%s|%g", name, scale)
	p.mu.Lock()
	e, ok := p.cases[key]
	if ok {
		p.stats.CaseHits++
		p.caseLRU.MoveToFront(e.elem)
	} else {
		p.stats.CaseMisses++
		e = &caseEntry{}
		e.elem = p.caseLRU.PushFront(key)
		p.cases[key] = e
		for p.caseLRU.Len() > p.cfg.MaxCases {
			old := p.caseLRU.Back()
			p.caseLRU.Remove(old)
			delete(p.cases, old.Value.(string))
		}
	}
	p.mu.Unlock()
	e.once.Do(func() {
		n, err := grid.CaseByName(name)
		if err != nil {
			e.err = err
			return
		}
		if scale != 1 {
			n.ScaleLoads(scale)
		}
		e.net = n
	})
	return e.net, e.err
}

// The Source values a served response reports: where its payload came
// from.
const (
	// SourceComputed marks a freshly computed response.
	SourceComputed = "computed"
	// SourceMemo marks a response served from the in-memory memo.
	SourceMemo = "memo"
	// SourceCoalesced marks a request that joined an identical in-flight
	// computation (single-flight coalescing) and shares its response.
	SourceCoalesced = "coalesced"
	// SourceDisk marks a response loaded from the persistent disk cache
	// (first request for the key in this process, computed by an earlier
	// one).
	SourceDisk = "disk"
)

// memo runs compute under the response memo: the first request with a key
// computes (after a disk-cache probe and, when configured, admission),
// every later identical request returns the stored response — joining the
// in-flight computation (coalesced) or reading the finished entry (memo
// hit). The returned source labels which of the four paths served.
func (p *Planner) memo(key string, compute func() (any, error)) (resp any, elapsed time.Duration, source string, err error) {
	p.mu.Lock()
	e, ok := p.results[key]
	if ok {
		select {
		case <-e.done:
			p.stats.ResultHits++
			source = SourceMemo
		default:
			p.stats.ResultCoalesced++
			source = SourceCoalesced
		}
		p.resLRU.MoveToFront(e.elem)
	} else {
		p.stats.ResultMisses++
		e = &resultEntry{done: make(chan struct{})}
		e.elem = p.resLRU.PushFront(key)
		p.results[key] = e
		for p.resLRU.Len() > p.cfg.MaxResults {
			old := p.resLRU.Back()
			p.resLRU.Remove(old)
			delete(p.results, old.Value.(string))
		}
	}
	p.mu.Unlock()
	first := false
	e.once.Do(func() {
		first = true
		defer close(e.done)
		start := time.Now()
		e.source = SourceComputed
		if data, hit := p.disk.Get(p.diskKey(key)); hit {
			if r, derr := decodeResponse(key, data); derr == nil {
				e.resp, e.source = r, SourceDisk
				e.elapsed = time.Since(start)
				return
			}
			// The envelope key verified but the payload didn't decode (a
			// response-schema change): fall through and recompute; the
			// write-through below overwrites the stale entry.
		}
		if aerr := p.adm.acquire(); aerr != nil {
			// Shed: report the error but never memoize it — the entry is
			// evicted so a retry re-enters the queue instead of replaying
			// the rejection from cache.
			e.err = aerr
			e.elapsed = time.Since(start)
			p.dropResult(key, e)
			return
		}
		func() {
			defer p.adm.release()
			e.resp, e.err = compute()
		}()
		// elapsed includes the admission queue wait: it is the latency a
		// client actually observed for the computed request.
		e.elapsed = time.Since(start)
		if e.err == nil {
			if data, merr := json.Marshal(e.resp); merr == nil {
				p.disk.Put(p.diskKey(key), data)
			}
		}
	})
	if first {
		source = e.source
	}
	return e.resp, e.elapsed, source, e.err
}

// dropResult evicts e from the memo if it is still the entry stored under
// key (shed results must not be replayed from cache).
func (p *Planner) dropResult(key string, e *resultEntry) {
	p.mu.Lock()
	if cur, ok := p.results[key]; ok && cur == e {
		delete(p.results, key)
		p.resLRU.Remove(e.elem)
	}
	p.mu.Unlock()
}

// diskKey extends the bitwise memo key with the case registry content
// hash: a persistent entry computed against different embedded case data
// can never serve.
func (p *Planner) diskKey(key string) string {
	return key + "|registry:" + grid.RegistryHash()
}

// decodeResponse unmarshals a disk-cache payload into the response type
// its memo-key prefix names.
func decodeResponse(key string, data []byte) (any, error) {
	var v any
	switch {
	case strings.HasPrefix(key, "select|"):
		v = new(SelectResponse)
	case strings.HasPrefix(key, "gamma|"):
		v = new(GammaResponse)
	case strings.HasPrefix(key, "day|"):
		v = new(DaySweepResponse)
	case strings.HasPrefix(key, "placement|"):
		v = new(PlacementResponse)
	default:
		return nil, fmt.Errorf("planner: unknown response kind for key %q", key)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return nil, err
	}
	return v, nil
}

// ---- Select ----------------------------------------------------------------

// SelectRequest asks for one problem-(4) selection, parameterized exactly
// like one mtdscan sweep point: the attacker's knowledge defaults to the
// case's problem-(1) solution at the requested loads (XOld overrides it),
// and the response carries the achieved γ, the η'(δ) curve against the
// request's attack model, and the operational cost.
type SelectRequest struct {
	Case           string  `json:"case"`
	GammaThreshold float64 `json:"gamma_threshold"`
	// MaxGamma falls back to the hardware's best design when the threshold
	// is unreachable (or is the request itself when GammaThreshold is 0).
	MaxGamma  bool    `json:"max_gamma,omitempty"`
	LoadScale float64 `json:"load_scale,omitempty"`
	// XOld optionally fixes the attacker-known reactance vector.
	XOld     []float64 `json:"x_old,omitempty"`
	Starts   int       `json:"starts,omitempty"`
	MaxEvals int       `json:"max_evals,omitempty"`
	Seed     int64     `json:"seed,omitempty"`
	Attacks  int       `json:"attacks,omitempty"`
	Sigma    float64   `json:"sigma,omitempty"`
	Alpha    float64   `json:"alpha,omitempty"`
	// GammaBackend selects the γ-evaluation backend of the search ("auto",
	// "exact", "sparse" or "sketch"; empty = auto). Approximate backends
	// only guide the search — the served γ and η' values are exact.
	GammaBackend string `json:"gamma_backend,omitempty"`
}

// SelectResponse is a served selection.
type SelectResponse struct {
	Case             string    `json:"case"`
	GammaThreshold   float64   `json:"gamma_threshold"`
	Gamma            float64   `json:"gamma"`
	Deltas           []float64 `json:"deltas"`
	Eta              []float64 `json:"eta"`
	CostIncrease     float64   `json:"cost_increase"`
	BaselineCost     float64   `json:"baseline_cost"`
	CostPerHour      float64   `json:"cost_per_hour"`
	Undetectable     float64   `json:"undetectable"`
	Reactances       []float64 `json:"reactances"`
	MaxGammaFallback bool      `json:"max_gamma_fallback,omitempty"`
	// GammaBackend reports which γ backend served the search (the resolved
	// value: "exact", "sparse" or "sketch").
	GammaBackend string `json:"gamma_backend"`
	// CacheHit reports whether any cache served (memo, coalesced in-flight
	// computation, or disk); Source names which ("computed", "memo",
	// "coalesced" or "disk").
	CacheHit  bool    `json:"cache_hit"`
	Source    string  `json:"source,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (r SelectRequest) key() string {
	return fmt.Sprintf("select|%s|%g|%v|%g|%v|%d|%d|%d|%d|%g|%g|%s",
		r.Case, r.GammaThreshold, r.MaxGamma, r.LoadScale, r.XOld,
		r.Starts, r.MaxEvals, r.Seed, r.Attacks, r.Sigma, r.Alpha, r.GammaBackend)
}

func (r SelectRequest) withDefaults() SelectRequest {
	if r.Starts <= 0 {
		r.Starts = 6
	}
	return r
}

// Select serves one memoized selection request.
func (p *Planner) Select(req SelectRequest) (*SelectResponse, error) {
	req = req.withDefaults()
	// Parse (and normalize) the γ backend before the memo: a bad value
	// never occupies an LRU slot, and every spelling of one backend
	// ("", "auto", "Exact", ...) that resolves identically shares one key.
	gb, err := subspace.ParseGammaBackend(req.GammaBackend)
	if err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}
	req.GammaBackend = subspace.EffectiveGammaBackend(gb).String()
	resp, elapsed, source, err := p.memo(req.key(), func() (any, error) {
		return p.computeSelect(req, gb)
	})
	if err != nil {
		return nil, err
	}
	out := *(resp.(*SelectResponse))
	out.CacheHit = source != SourceComputed
	out.Source = source
	out.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	return &out, nil
}

func (p *Planner) computeSelect(req SelectRequest, gb core.GammaBackend) (*SelectResponse, error) {
	n, err := p.caseFor(req.Case, req.LoadScale)
	if err != nil {
		return nil, err
	}
	effCfg := core.EffectivenessConfig{
		NumAttacks: req.Attacks, Sigma: req.Sigma, Alpha: req.Alpha, Seed: req.Seed,
		GammaBackend: gb,
	}
	if len(req.XOld) > 0 {
		return p.selectExplicitXOld(req, n, gb, effCfg)
	}
	spec := scenario.Spec{
		Kind:            scenario.GammaSweep,
		Net:             n,
		Backend:         p.cfg.Backend,
		GammaBackend:    gb,
		GammaGrid:       []float64{req.GammaThreshold},
		CapWithMaxGamma: req.MaxGamma,
		SelectStarts:    req.Starts,
		MaxEvals:        req.MaxEvals,
		Seed:            req.Seed,
		OPFStarts:       req.Starts,
		OPFMaxEvals:     req.MaxEvals,
		OPFSeed:         req.Seed,
		Effectiveness:   effCfg,
		Parallelism:     p.cfg.Parallelism,
	}
	if req.MaxGamma && req.GammaThreshold <= 0 {
		// A pure max-γ request: an unreachable sentinel threshold forces
		// the sweep straight into its max-γ cap.
		spec.GammaGrid = []float64{1e9}
	}
	res, err := p.runner.Run(spec)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		if res.Exhausted && !req.MaxGamma {
			return nil, fmt.Errorf("%w: γ_th=%g on %s", ErrUnreachable, req.GammaThreshold, req.Case)
		}
		return nil, fmt.Errorf("planner: no operable design on %s (max-γ corner infeasible)", req.Case)
	}
	// The runner reports the backend that actually served the search (a
	// sketch request whose old-side Gram matrix defeats the construction
	// degrades to exact) — that, not the requested value, is what the
	// response and the served-backend counters record.
	served := res.GammaBackendUsed
	p.countGammaServed(served)
	row := res.Rows[len(res.Rows)-1]
	return &SelectResponse{
		Case:             req.Case,
		GammaThreshold:   req.GammaThreshold,
		Gamma:            row.Gamma,
		Deltas:           row.Deltas,
		Eta:              row.Eta,
		CostIncrease:     row.CostIncrease,
		BaselineCost:     row.BaselineCost,
		CostPerHour:      row.MTDCost,
		Undetectable:     row.Undetectable,
		Reactances:       row.Reactances,
		MaxGammaFallback: req.MaxGamma && row.GammaTarget == 0,
		GammaBackend:     served.String(),
	}, nil
}

// countGammaServed records which γ backend actually served a computed
// request (called only after a successful computation, with the engine's
// resolved backend).
func (p *Planner) countGammaServed(gb core.GammaBackend) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch subspace.EffectiveGammaBackend(gb) {
	case core.SparseGamma:
		p.stats.GammaSparseServed++
	case core.SketchGamma:
		p.stats.GammaSketchServed++
	default:
		p.stats.GammaExactServed++
	}
}

// selectExplicitXOld serves a request whose attacker knowledge is given:
// the planner works directly on the shared engines (the setpoint hash —
// case, scale, x_old — keys the γ engine, the dispatch engine comes from
// the runner's cache).
func (p *Planner) selectExplicitXOld(req SelectRequest, n *grid.Network, gb core.GammaBackend, effCfg core.EffectivenessConfig) (*SelectResponse, error) {
	if len(req.XOld) != n.L() {
		return nil, fmt.Errorf("planner: x_old has %d entries, case %s has %d branches", len(req.XOld), req.Case, n.L())
	}
	eng, err := p.runner.DispatchEngine(n, p.cfg.Backend)
	if err != nil {
		return nil, err
	}
	baseline, err := opf.SolveDFACTSEngine(eng, opf.DFACTSConfig{
		Starts: req.Starts, MaxEvals: req.MaxEvals, Seed: req.Seed, Parallelism: p.cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	engines := core.NewEnginesSharedBackend(n, req.XOld, eng, gb)
	selCfg := core.SelectConfig{
		GammaThreshold: req.GammaThreshold,
		Starts:         req.Starts,
		MaxEvals:       req.MaxEvals,
		Seed:           req.Seed,
		BaselineCost:   baseline.CostPerHour,
		Parallelism:    p.cfg.Parallelism,
	}
	sel, err := core.SelectMTDWith(engines, n, req.XOld, selCfg)
	fellBack := false
	if errors.Is(err, core.ErrConstraintUnreachable) || (req.MaxGamma && req.GammaThreshold <= 0) {
		if !req.MaxGamma {
			return nil, fmt.Errorf("%w: γ_th=%g on %s", ErrUnreachable, req.GammaThreshold, req.Case)
		}
		fellBack = err != nil
		sel, err = core.MaxGammaWith(engines, n, req.XOld, core.MaxGammaConfig{
			Starts: req.Starts, MaxEvals: req.MaxEvals, Seed: req.Seed,
			BaselineCost: baseline.CostPerHour, Parallelism: p.cfg.Parallelism,
		})
	}
	if err != nil {
		return nil, err
	}
	zOld, err := core.OperatingMeasurements(n, req.XOld)
	if err != nil {
		return nil, err
	}
	attacks, err := core.SampleAttacks(n, req.XOld, zOld, effCfg)
	if err != nil {
		return nil, err
	}
	// The runner's shared per-network estimator cache memoizes the post-MTD
	// QR across requests against this case (and rank-structured-rebuilds it
	// on a miss) — the network pointer comes from the planner's case LRU,
	// so the key is effectively (case, load scale, x_new).
	effCfg.Estimators = p.runner.EstimatorCache(n)
	eff, err := core.EvaluateAttacks(n, attacks, sel.Reactances, effCfg)
	if err != nil {
		return nil, err
	}
	served := engines.Gamma().Backend()
	p.countGammaServed(served)
	return &SelectResponse{
		Case:             req.Case,
		GammaThreshold:   req.GammaThreshold,
		Gamma:            eff.Gamma,
		Deltas:           eff.Deltas,
		Eta:              eff.Eta,
		CostIncrease:     sel.CostIncrease,
		BaselineCost:     sel.BaselineCost,
		CostPerHour:      sel.OPF.CostPerHour,
		Undetectable:     eff.UndetectableFraction,
		Reactances:       sel.Reactances,
		MaxGammaFallback: fellBack,
		GammaBackend:     served.String(),
	}, nil
}

// ---- Gamma -----------------------------------------------------------------

// GammaRequest asks for the subspace separation between two reactance
// settings of a case (XOld empty = the case's nominal reactances).
type GammaRequest struct {
	Case string    `json:"case"`
	XOld []float64 `json:"x_old,omitempty"`
	XNew []float64 `json:"x_new"`
}

// GammaResponse carries γ(H(x_old), H(x_new)).
type GammaResponse struct {
	Case      string  `json:"case"`
	Gamma     float64 `json:"gamma"`
	CacheHit  bool    `json:"cache_hit"`
	Source    string  `json:"source,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Gamma serves one memoized γ evaluation.
func (p *Planner) Gamma(req GammaRequest) (*GammaResponse, error) {
	key := fmt.Sprintf("gamma|%s|%v|%v", req.Case, req.XOld, req.XNew)
	resp, elapsed, source, err := p.memo(key, func() (any, error) {
		n, err := p.caseFor(req.Case, 1)
		if err != nil {
			return nil, err
		}
		xOld := req.XOld
		if len(xOld) == 0 {
			xOld = n.Reactances()
		}
		if len(xOld) != n.L() || len(req.XNew) != n.L() {
			return nil, fmt.Errorf("planner: reactance vectors must have %d entries for case %s", n.L(), req.Case)
		}
		return &GammaResponse{Case: req.Case, Gamma: core.Gamma(n, xOld, req.XNew)}, nil
	})
	if err != nil {
		return nil, err
	}
	out := *(resp.(*GammaResponse))
	out.CacheHit = source != SourceComputed
	out.Source = source
	out.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	return &out, nil
}

// ---- Day sweep -------------------------------------------------------------

// DaySweepRequest asks for a (subset of a) Section VII-C operating day.
// The defaults are service-sized: quick tuning budgets on three
// representative hours; pass explicit fields for the full protocol.
type DaySweepRequest struct {
	Case        string  `json:"case"`
	Hours       []int   `json:"hours,omitempty"`
	PeakLoadMW  float64 `json:"peak_load_mw,omitempty"`
	TargetDelta float64 `json:"target_delta,omitempty"`
	TargetEta   float64 `json:"target_eta,omitempty"`
	Iterations  int     `json:"iterations,omitempty"`
	Attacks     int     `json:"attacks,omitempty"`
	Starts      int     `json:"starts,omitempty"`
	OPFStarts   int     `json:"opf_starts,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
}

// DaySweepHour is one served hour.
type DaySweepHour struct {
	Hour         int     `json:"hour"`
	TotalLoadMW  float64 `json:"total_load_mw"`
	BaselineCost float64 `json:"baseline_cost"`
	MTDCost      float64 `json:"mtd_cost"`
	CostIncrease float64 `json:"cost_increase"`
	Gamma        float64 `json:"gamma"`
	Eta          float64 `json:"eta"`
}

// DaySweepResponse is a served day sweep.
type DaySweepResponse struct {
	Case      string         `json:"case"`
	Hours     []DaySweepHour `json:"hours"`
	CacheHit  bool           `json:"cache_hit"`
	Source    string         `json:"source,omitempty"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

func (r DaySweepRequest) withDefaults() DaySweepRequest {
	if len(r.Hours) == 0 {
		r.Hours = []int{2, 8, 17} // trough, shoulder, peak
	}
	if r.TargetDelta <= 0 {
		r.TargetDelta = 0.9
	}
	if r.TargetEta <= 0 {
		r.TargetEta = 0.9
	}
	if r.Iterations <= 0 {
		r.Iterations = 2
	}
	if r.Attacks <= 0 {
		r.Attacks = 100
	}
	if r.Starts <= 0 {
		r.Starts = 2
	}
	if r.OPFStarts <= 0 {
		r.OPFStarts = 3
	}
	return r
}

// DaySweep serves one memoized day sweep.
func (p *Planner) DaySweep(req DaySweepRequest) (*DaySweepResponse, error) {
	req = req.withDefaults()
	key := fmt.Sprintf("day|%s|%v|%g|%g|%g|%d|%d|%d|%d|%d",
		req.Case, req.Hours, req.PeakLoadMW, req.TargetDelta, req.TargetEta,
		req.Iterations, req.Attacks, req.Starts, req.OPFStarts, req.Seed)
	resp, elapsed, source, err := p.memo(key, func() (any, error) {
		n, err := p.caseFor(req.Case, 1)
		if err != nil {
			return nil, err
		}
		res, err := p.runner.Run(scenario.Spec{
			Kind:       scenario.DaySweep,
			Net:        n,
			Backend:    p.cfg.Backend,
			Hours:      req.Hours,
			PeakLoadMW: req.PeakLoadMW,
			Warmup:     true,
			Tune: core.TuneConfig{
				TargetDelta: req.TargetDelta,
				TargetEta:   req.TargetEta,
				Iterations:  req.Iterations,
				Effectiveness: core.EffectivenessConfig{
					NumAttacks: req.Attacks,
				},
				Select: core.SelectConfig{Starts: req.Starts, Parallelism: p.cfg.Parallelism},
			},
			OPFStarts:   req.OPFStarts,
			Seed:        req.Seed,
			Parallelism: p.cfg.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		out := &DaySweepResponse{Case: req.Case}
		for _, r := range res.Rows {
			out.Hours = append(out.Hours, DaySweepHour{
				Hour:         r.Hour,
				TotalLoadMW:  r.TotalLoadMW,
				BaselineCost: r.BaselineCost,
				MTDCost:      r.MTDCost,
				CostIncrease: r.CostIncrease,
				Gamma:        r.Gamma,
				Eta:          r.Eta[0],
			})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	out := *(resp.(*DaySweepResponse))
	out.CacheHit = source != SourceComputed
	out.Source = source
	out.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	return &out, nil
}

// ---- Placement -------------------------------------------------------------

// PlacementRequest asks for a greedy D-FACTS placement study.
type PlacementRequest struct {
	Case    string `json:"case"`
	Devices int    `json:"devices,omitempty"`
	Pool    []int  `json:"pool,omitempty"`
	// AllBranches widens the pool to every branch of the case; pair it
	// with GammaBackend "sketch" so the L-wide probe rounds stay cheap
	// (each round's winner is re-checked exactly either way).
	AllBranches  bool   `json:"all_branches,omitempty"`
	GammaBackend string `json:"gamma_backend,omitempty"`
}

// PlacementRound is one greedy round's deployment.
type PlacementRound struct {
	Devices      []int   `json:"devices"`
	Gamma        float64 `json:"gamma"`
	ProbeGamma   float64 `json:"probe_gamma,omitempty"`
	CostIncrease float64 `json:"cost_increase,omitempty"`
	CostKnown    bool    `json:"cost_known"`
}

// PlacementResponse is a served placement study.
type PlacementResponse struct {
	Case      string           `json:"case"`
	Rounds    []PlacementRound `json:"rounds"`
	CacheHit  bool             `json:"cache_hit"`
	Source    string           `json:"source,omitempty"`
	ElapsedMS float64          `json:"elapsed_ms"`
}

// Placement serves one memoized placement study.
func (p *Planner) Placement(req PlacementRequest) (*PlacementResponse, error) {
	// Same pre-memo parse/normalization as Select: bad values never enter
	// the LRU, equivalent spellings share one key.
	gb, err := subspace.ParseGammaBackend(req.GammaBackend)
	if err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}
	req.GammaBackend = subspace.EffectiveGammaBackend(gb).String()
	key := fmt.Sprintf("placement|%s|%d|%v|%v|%s", req.Case, req.Devices, req.Pool, req.AllBranches, req.GammaBackend)
	resp, elapsed, source, err := p.memo(key, func() (any, error) {
		n, err := p.caseFor(req.Case, 1)
		if err != nil {
			return nil, err
		}
		res, err := p.runner.Run(scenario.Spec{
			Kind:         scenario.Placement,
			Net:          n,
			Backend:      p.cfg.Backend,
			GammaBackend: gb,
			Placement: scenario.PlacementSpec{
				Devices: req.Devices, Pool: req.Pool, AllBranches: req.AllBranches,
			},
			Parallelism: p.cfg.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		p.countGammaServed(res.GammaBackendUsed)
		out := &PlacementResponse{Case: req.Case}
		for _, r := range res.Rows {
			out.Rounds = append(out.Rounds, PlacementRound{
				Devices:      r.Devices,
				Gamma:        r.Gamma,
				ProbeGamma:   r.ProbeGamma,
				CostIncrease: r.CostIncrease,
				CostKnown:    r.CostKnown,
			})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	out := *(resp.(*PlacementResponse))
	out.CacheHit = source != SourceComputed
	out.Source = source
	out.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	return &out, nil
}
