package planner

import (
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionStats counts the bounded work queue's traffic. Queue wait is
// part of every computed request's served latency (the memo times the
// acquire), so the cumulative wait here is the load-dependent share of it.
type AdmissionStats struct {
	// Admitted counts computations that got a worker slot (immediately or
	// after queueing); Queued counts the subset that had to wait.
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	// Shed counts computations rejected with ErrOverloaded because the
	// queue was at depth (HTTP surfaces them as 429 + Retry-After).
	Shed int64 `json:"shed"`
	// QueueWaitMicros is the cumulative time queued computations spent
	// waiting for a slot.
	QueueWaitMicros int64 `json:"queue_wait_micros"`
}

// Delta returns the field-wise counter increments s − since.
func (s AdmissionStats) Delta(since AdmissionStats) AdmissionStats {
	return AdmissionStats{
		Admitted:        s.Admitted - since.Admitted,
		Queued:          s.Queued - since.Queued,
		Shed:            s.Shed - since.Shed,
		QueueWaitMicros: s.QueueWaitMicros - since.QueueWaitMicros,
	}
}

// admission is the planner's bounded work queue: a counting semaphore of
// worker slots plus a cap on how many computations may wait for one.
// Memo and disk hits never pass through it — only the requests that are
// about to run a real search compete for slots, so warm traffic stays
// microseconds even when the compute queue is saturated.
type admission struct {
	sem   chan struct{}
	depth int

	mu      sync.Mutex
	waiting int

	admitted, queued, shed, waitMicros atomic.Int64
}

// newAdmission builds the queue; maxInflight <= 0 disables admission
// control entirely (the returned nil is a no-op).
func newAdmission(maxInflight, queueDepth int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if queueDepth <= 0 {
		queueDepth = 4 * maxInflight
	}
	return &admission{sem: make(chan struct{}, maxInflight), depth: queueDepth}
}

// acquire takes a worker slot, queueing up to the depth cap. Past the cap
// it sheds immediately with ErrOverloaded — a fast rejection the HTTP
// layer turns into 429 + Retry-After, so clients back off instead of
// piling onto an unbounded queue.
func (a *admission) acquire() error {
	if a == nil {
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	a.mu.Lock()
	if a.waiting >= a.depth {
		a.mu.Unlock()
		a.shed.Add(1)
		return ErrOverloaded
	}
	a.waiting++
	a.mu.Unlock()
	// Counted at queue entry, not exit, so /v1/stats shows the waiter
	// while it waits.
	a.queued.Add(1)
	start := time.Now()
	a.sem <- struct{}{}
	a.mu.Lock()
	a.waiting--
	a.mu.Unlock()
	a.waitMicros.Add(time.Since(start).Microseconds())
	a.admitted.Add(1)
	return nil
}

// release returns a worker slot.
func (a *admission) release() {
	if a != nil {
		<-a.sem
	}
}

// stats snapshots the counters.
func (a *admission) stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		Admitted:        a.admitted.Load(),
		Queued:          a.queued.Load(),
		Shed:            a.shed.Load(),
		QueueWaitMicros: a.waitMicros.Load(),
	}
}
