// Package diskcache is the planner's persistent response cache: a
// directory of content-addressed JSON entries that survives daemon
// restarts, so a fresh process serves previously computed selections in
// microseconds instead of re-running sub-second searches.
//
// Design constraints, in order:
//
//   - Correctness across versions: an entry's filename is the SHA-256 of
//     its full logical key (the planner's bitwise memo key + the case
//     registry content hash), and the key is stored inside the entry and
//     re-verified on every read — a hash collision or a stale file from a
//     different registry build reads as a miss, never as a wrong answer.
//   - Crash safety: entries are written to a temp file in the cache
//     directory and atomically renamed into place. A crash mid-write
//     leaves only a temp file, which the next Open sweeps away; a torn or
//     corrupt entry is deleted and counted, never fatal.
//   - Bounded size: an in-memory LRU (loaded from file mtimes at Open,
//     maintained by access order afterwards) evicts the least recently
//     used entries when the byte cap is exceeded.
//
// The cache is safe for concurrent use by one process. It does not
// coordinate between processes; give each daemon its own directory (the
// sharding router already splits the keyspace, so shards never compete
// for entries).
package diskcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// tmpPrefix marks in-progress writes; Open removes any leftovers.
const tmpPrefix = "tmp-"

// entrySuffix is the filename suffix of committed entries.
const entrySuffix = ".json"

// Config tunes a Cache.
type Config struct {
	// Dir is the cache directory (created if absent).
	Dir string
	// MaxBytes caps the total size of committed entries (default 256 MiB).
	// Least-recently-used entries are evicted past the cap.
	MaxBytes int64
}

// Stats counts cache traffic. All counters are cumulative for the process
// (entries served from a previous process count as hits here).
type Stats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Writes int64 `json:"writes"`
	// Evictions counts entries removed by the LRU byte cap.
	Evictions int64 `json:"evictions"`
	// Corrupt counts unreadable entries (torn writes, bad JSON, key
	// mismatches) that were dropped and served as misses.
	Corrupt int64 `json:"corrupt"`
	// Errors counts I/O failures (failed writes, unreadable directory
	// entries); the cache degrades to a no-op rather than failing requests.
	Errors int64 `json:"errors"`
	// Entries and Bytes describe the current resident set.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Delta returns the counter increments between an earlier snapshot and
// this one (field-wise s − since). The gauge fields (Entries, Bytes) are
// copied from the newer snapshot rather than differenced.
func (s Stats) Delta(since Stats) Stats {
	return Stats{
		Hits:      s.Hits - since.Hits,
		Misses:    s.Misses - since.Misses,
		Writes:    s.Writes - since.Writes,
		Evictions: s.Evictions - since.Evictions,
		Corrupt:   s.Corrupt - since.Corrupt,
		Errors:    s.Errors - since.Errors,
		Entries:   s.Entries,
		Bytes:     s.Bytes,
	}
}

// envelope is the on-disk entry format: the full logical key for
// post-hash verification plus the cached JSON payload.
type envelope struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// Cache is a persistent, size-capped, LRU response cache.
type Cache struct {
	dir      string
	maxBytes int64

	hits, misses, writes, evictions, corrupt, errs atomic.Int64

	mu    sync.Mutex
	index map[string]*list.Element // filename -> lru node
	lru   *list.List               // front = most recently used
	bytes int64
}

// lruEntry is one committed file in the LRU index.
type lruEntry struct {
	name string
	size int64
}

// Open loads (or creates) the cache directory: leftover temp files from
// crashed writes are removed, committed entries are indexed
// least-recently-used first by mtime, and the byte cap is enforced
// immediately.
func Open(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("diskcache: empty directory")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	c := &Cache{
		dir:      cfg.Dir,
		maxBytes: cfg.MaxBytes,
		index:    map[string]*list.Element{},
		lru:      list.New(),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	type onDisk struct {
		name  string
		size  int64
		mtime time.Time
	}
	var found []onDisk
	for _, de := range entries {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// A crash mid-write left this behind; the rename never happened,
			// so it is invisible to Get either way — sweep it.
			os.Remove(filepath.Join(cfg.Dir, name))
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) || de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			c.errs.Add(1)
			continue
		}
		found = append(found, onDisk{name, info.Size(), info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found { // oldest first, so the newest end up at the front
		c.index[f.name] = c.lru.PushFront(lruEntry{f.name, f.size})
		c.bytes += f.size
	}
	c.mu.Lock()
	c.enforceCapLocked()
	c.mu.Unlock()
	return c, nil
}

// fileName maps a logical key to its content-addressed filename.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + entrySuffix
}

// Get returns the payload stored under key, or ok=false on a miss. A
// torn, corrupt or mismatched entry is deleted and reported as a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	name := fileName(key)
	c.mu.Lock()
	el, ok := c.index[name]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(filepath.Join(c.dir, name))
	if err != nil {
		// Indexed but unreadable (evicted by a racing writer, torn disk):
		// drop it from the index and miss.
		c.dropEntry(name)
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Key != key || len(env.Data) == 0 {
		// Corrupt entry (partial write that still renamed, bit rot) or a
		// SHA-256 collision: delete, count, miss — never fatal, never wrong.
		c.removeFile(name)
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	// Persist the access order across restarts (best effort): Open rebuilds
	// recency from mtimes.
	now := time.Now()
	os.Chtimes(filepath.Join(c.dir, name), now, now)
	c.hits.Add(1)
	return env.Data, true
}

// Put stores payload under key: marshal the envelope, write to a temp
// file, fsync, and atomically rename into place. Failures are counted and
// swallowed — a broken disk degrades the cache, not the request.
func (c *Cache) Put(key string, payload []byte) {
	if c == nil {
		return
	}
	raw, err := json.Marshal(envelope{Key: key, Data: payload})
	if err != nil {
		c.errs.Add(1)
		return
	}
	name := fileName(key)
	tmp, err := os.CreateTemp(c.dir, tmpPrefix+"*")
	if err != nil {
		c.errs.Add(1)
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(raw)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, filepath.Join(c.dir, name))
	}
	if werr != nil {
		os.Remove(tmpName)
		c.errs.Add(1)
		return
	}
	c.writes.Add(1)
	c.mu.Lock()
	if el, ok := c.index[name]; ok {
		c.bytes += int64(len(raw)) - el.Value.(lruEntry).size
		el.Value = lruEntry{name, int64(len(raw))}
		c.lru.MoveToFront(el)
	} else {
		c.index[name] = c.lru.PushFront(lruEntry{name, int64(len(raw))})
		c.bytes += int64(len(raw))
	}
	c.enforceCapLocked()
	c.mu.Unlock()
}

// enforceCapLocked evicts least-recently-used entries until the resident
// set fits the byte cap. Callers hold c.mu.
func (c *Cache) enforceCapLocked() {
	for c.bytes > c.maxBytes && c.lru.Len() > 0 {
		el := c.lru.Back()
		e := el.Value.(lruEntry)
		c.lru.Remove(el)
		delete(c.index, e.name)
		c.bytes -= e.size
		os.Remove(filepath.Join(c.dir, e.name))
		c.evictions.Add(1)
	}
}

// dropEntry removes name from the in-memory index only.
func (c *Cache) dropEntry(name string) {
	c.mu.Lock()
	if el, ok := c.index[name]; ok {
		c.bytes -= el.Value.(lruEntry).size
		c.lru.Remove(el)
		delete(c.index, name)
	}
	c.mu.Unlock()
}

// removeFile removes name from the index and the directory.
func (c *Cache) removeFile(name string) {
	c.dropEntry(name)
	os.Remove(filepath.Join(c.dir, name))
}

// Stats returns a snapshot of the traffic counters and resident-set
// gauges.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	entries, bytes := int64(c.lru.Len()), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Writes:    c.writes.Load(),
		Evictions: c.evictions.Load(),
		Corrupt:   c.corrupt.Load(),
		Errors:    c.errs.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}
