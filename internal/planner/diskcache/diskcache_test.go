package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func open(t *testing.T, dir string, maxBytes int64) *Cache {
	t.Helper()
	c, err := Open(Config{Dir: dir, MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := open(t, t.TempDir(), 0)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("k1", []byte(`{"gamma":0.25}`))
	got, ok := c.Get("k1")
	if !ok || string(got) != `{"gamma":0.25}` {
		t.Fatalf("Get after Put = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 write / 1 entry", st)
	}
}

// TestSurvivesReopen pins the restart contract: a second Cache over the
// same directory serves the first one's entries.
func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c1 := open(t, dir, 0)
	c1.Put("select|ieee300|...", []byte(`{"gamma":0.0671}`))
	c2 := open(t, dir, 0)
	got, ok := c2.Get("select|ieee300|...")
	if !ok || string(got) != `{"gamma":0.0671}` {
		t.Fatalf("reopened cache: Get = %q, %v", got, ok)
	}
	if st := c2.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("reopened stats = %+v, want the persisted entry indexed", st)
	}
}

// TestCrashMidWriteLeavesOldEntryAndSweepsTemp simulates a crash between
// the temp-file write and the rename: the next Open must sweep the temp
// file, and the committed entry (if any) stays intact.
func TestCrashMidWriteLeavesOldEntryAndSweepsTemp(t *testing.T) {
	dir := t.TempDir()
	c1 := open(t, dir, 0)
	c1.Put("k", []byte(`{"v":1}`))
	// A "crashed" write: a temp file with partial content that never got
	// renamed (exactly what a kill mid-Put leaves behind).
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"crashed"), []byte(`{"key":"k","da`), 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := open(t, dir, 0)
	if got, ok := c2.Get("k"); !ok || string(got) != `{"v":1}` {
		t.Fatalf("committed entry lost after crash: %q, %v", got, ok)
	}
	left, err := filepath.Glob(filepath.Join(dir, tmpPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("temp files survived Open: %v", left)
	}
}

// TestCorruptEntrySkippedNotFatal pins the tolerance contract: a torn or
// garbage committed entry reads as a miss, is deleted, and is counted —
// and a re-Put repairs it.
func TestCorruptEntrySkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, 0)
	c.Put("k", []byte(`{"v":1}`))
	name := fileName("k")
	if err := os.WriteFile(filepath.Join(dir, name), []byte(`{"key":"k","data":{"v"`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Same process: the index still lists the entry, the read must detect
	// the corruption.
	if _, ok := c.Get("k"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
		t.Error("corrupt entry not deleted")
	}
	// Fresh process over the same directory: a corrupt survivor must also
	// read as a miss, not a panic or error.
	if err := os.WriteFile(filepath.Join(dir, name), []byte(`garbage`), 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := open(t, dir, 0)
	if _, ok := c2.Get("k"); ok {
		t.Fatal("garbage entry served as a hit after reopen")
	}
	c2.Put("k", []byte(`{"v":2}`))
	if got, ok := c2.Get("k"); !ok || string(got) != `{"v":2}` {
		t.Fatalf("re-Put after corruption: %q, %v", got, ok)
	}
}

// TestKeyMismatchIsMiss pins the content-address verification: an entry
// whose stored key differs from the requested one (collision, or a file
// copied between registry builds) is dropped.
func TestKeyMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := open(t, dir, 0)
	c.Put("other-key", []byte(`{"v":1}`))
	// Plant other-key's envelope under k's filename.
	src, _ := os.ReadFile(filepath.Join(dir, fileName("other-key")))
	if err := os.WriteFile(filepath.Join(dir, fileName("k")), src, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := open(t, dir, 0)
	if _, ok := c2.Get("k"); ok {
		t.Fatal("entry with mismatched key served as a hit")
	}
	if st := c2.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

// TestLRUSizeCap pins the byte cap: oldest-accessed entries are evicted
// first, both within a process and at Open time.
func TestLRUSizeCap(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"pad":"` + strings.Repeat("x", 100) + `"}`)
	env := len(payload) + len(`{"key":"k00","data":}`)
	c := open(t, dir, int64(3*env+env/2)) // room for ~3 entries
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%02d", i), payload)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under the cap: %+v", st)
	}
	if st.Bytes > int64(3*env+env/2) {
		t.Errorf("resident bytes %d exceed the cap", st.Bytes)
	}
	if _, ok := c.Get("k00"); ok {
		t.Error("oldest entry survived the cap")
	}
	if _, ok := c.Get("k05"); !ok {
		t.Error("newest entry evicted")
	}
	// Reopen with a tighter cap: Open itself must evict down to the cap.
	c2 := open(t, dir, int64(env+env/2))
	if st := c2.Stats(); st.Bytes > int64(env+env/2) || st.Entries > 2 {
		t.Errorf("reopen did not enforce the cap: %+v", st)
	}
}

// TestNilCacheIsNoOp pins the disabled path: a nil *Cache (no -disk-cache
// flag) answers misses and swallows writes.
func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache hit")
	}
	c.Put("k", []byte(`{}`)) // must not panic
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

// TestStatsDelta pins the Delta convention: counters difference, gauges
// copy.
func TestStatsDelta(t *testing.T) {
	a := Stats{Hits: 2, Misses: 3, Writes: 4, Evictions: 1, Corrupt: 1, Errors: 0, Entries: 7, Bytes: 700}
	b := Stats{Hits: 5, Misses: 4, Writes: 6, Evictions: 2, Corrupt: 1, Errors: 1, Entries: 9, Bytes: 900}
	d := b.Delta(a)
	want := Stats{Hits: 3, Misses: 1, Writes: 2, Evictions: 1, Corrupt: 0, Errors: 1, Entries: 9, Bytes: 900}
	if d != want {
		t.Errorf("Delta = %+v, want %+v", d, want)
	}
}
