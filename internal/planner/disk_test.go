package planner

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gridmtd/internal/planner/diskcache"
)

func openDisk(t *testing.T, dir string) *diskcache.Cache {
	t.Helper()
	d, err := diskcache.Open(diskcache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskCacheServesAcrossRestart pins the persistence contract: a fresh
// planner over the same cache directory (a "restarted daemon") serves a
// previously computed selection from disk — same numbers, microsecond
// class, no search — and the response says so (source=disk, cache_hit).
func TestDiskCacheServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	p1 := New(Config{Disk: openDisk(t, dir)})
	req := quickSelect(0.1)
	first, err := p1.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != SourceComputed {
		t.Fatalf("first request source %q, want computed", first.Source)
	}
	if st := p1.Stats(); st.Disk.Writes != 1 {
		t.Fatalf("disk writes = %d after one computed select, want 1", st.Disk.Writes)
	}

	// "Restart": a fresh planner (empty memo, fresh runner) over the same
	// directory.
	p2 := New(Config{Disk: openDisk(t, dir)})
	start := time.Now()
	second, err := p2.Select(req)
	warm := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != SourceDisk || !second.CacheHit {
		t.Fatalf("restarted planner served source=%q cache_hit=%v, want disk hit", second.Source, second.CacheHit)
	}
	f, s := *first, *second
	f.CacheHit, s.CacheHit = false, false
	f.Source, s.Source = "", ""
	f.ElapsedMS, s.ElapsedMS = 0, 0
	if !reflect.DeepEqual(f, s) {
		t.Errorf("disk-served response differs from the computed one:\n%+v\n%+v", f, s)
	}
	if warm > 50*time.Millisecond {
		t.Errorf("disk-served select took %v, want well under the compute time", warm)
	}
	if st := p2.Stats(); st.Disk.Hits != 1 {
		t.Errorf("disk hits = %d, want 1", st.Disk.Hits)
	}
	// Within the restarted process the memo now answers; disk is not
	// re-read.
	third, err := p2.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Source != SourceMemo {
		t.Errorf("repeat in restarted process source %q, want memo", third.Source)
	}
}

// TestDiskCacheKeyedOnRegistryHash pins stale-cache safety: an entry
// stored under a different registry hash (simulating a cache directory
// carried across a registry edit) reads as a miss and is recomputed.
func TestDiskCacheKeyedOnRegistryHash(t *testing.T) {
	dir := t.TempDir()
	p1 := New(Config{Disk: openDisk(t, dir)})
	if _, err := p1.Gamma(GammaRequest{Case: "case4gs", XNew: []float64{0.1, 0.1, 0.1, 0.1}}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the registry suffix by renaming the entry to what a
	// different-registry key would hash to: simplest is to plant a file
	// that won't verify. Overwrite the sole entry with its own bytes under
	// a different name — key verification must reject it.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("glob: %v, %d entries", err, len(entries))
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(entries[0])
	// A different logical key (different registry hash) hashes to a
	// different filename; planting the old envelope there must be detected
	// by the in-envelope key check.
	if err := os.WriteFile(filepath.Join(dir, "0000000000000000000000000000000000000000000000000000000000000000.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := New(Config{Disk: openDisk(t, dir)})
	resp, err := p2.Gamma(GammaRequest{Case: "case4gs", XNew: []float64{0.1, 0.1, 0.1, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != SourceComputed {
		t.Errorf("request against a planted foreign entry served source %q, want recompute", resp.Source)
	}
}

// TestDiskCacheGammaAndPlacementDecode pins the per-endpoint decode
// seam: each memoized response kind round-trips through its disk entry
// into the right concrete type.
func TestDiskCacheGammaAndPlacementDecode(t *testing.T) {
	dir := t.TempDir()
	p1 := New(Config{Disk: openDisk(t, dir)})
	greq := GammaRequest{Case: "case4gs", XNew: []float64{0.1, 0.1, 0.1, 0.1}}
	g1, err := p1.Gamma(greq)
	if err != nil {
		t.Fatal(err)
	}
	p2 := New(Config{Disk: openDisk(t, dir)})
	g2, err := p2.Gamma(greq)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Source != SourceDisk || g2.Gamma != g1.Gamma {
		t.Errorf("gamma disk round-trip: source=%q γ=%v, want disk-served %v", g2.Source, g2.Gamma, g1.Gamma)
	}
}
