package planner

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMemoSingleFlightCoalescing pins the coalescing contract
// deterministically: N identical requests in flight run exactly one
// computation — the first caller misses, every other joins it (counted as
// result_coalesced, not result_hits) and shares the same response. The
// compute blocks until the counters prove all N callers are in flight, so
// the assertion cannot race the computation finishing.
func TestMemoSingleFlightCoalescing(t *testing.T) {
	p := New(Config{})
	const n = 8
	release := make(chan struct{})
	var computes atomic.Int64
	want := &SelectResponse{Case: "test", Gamma: 0.5}
	var wg sync.WaitGroup
	responses := make([]any, n)
	sources := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, source, err := p.memo("select|coalesce-test", func() (any, error) {
				computes.Add(1)
				<-release
				return want, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			responses[i], sources[i] = resp, source
		}(i)
	}
	// All N callers are guaranteed in flight once the counters say so —
	// only then does the single computation get to finish.
	waitFor(t, "1 miss + n-1 coalesced", func() bool {
		st := p.Stats()
		return st.ResultMisses == 1 && st.ResultCoalesced == n-1
	})
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for %d identical in-flight requests, want exactly 1", got, n)
	}
	st := p.Stats()
	if st.ResultMisses != 1 || st.ResultCoalesced != n-1 || st.ResultHits != 0 {
		t.Errorf("stats misses=%d coalesced=%d hits=%d, want 1/%d/0",
			st.ResultMisses, st.ResultCoalesced, st.ResultHits, n-1)
	}
	var firsts, joins int
	for i := 0; i < n; i++ {
		if responses[i] != any(want) {
			t.Fatalf("caller %d got a different response object", i)
		}
		switch sources[i] {
		case SourceComputed:
			firsts++
		case SourceCoalesced:
			joins++
		default:
			t.Errorf("caller %d source %q", i, sources[i])
		}
	}
	if firsts != 1 || joins != n-1 {
		t.Errorf("sources: %d computed / %d coalesced, want 1/%d", firsts, joins, n-1)
	}
	// A request after completion is a plain memo hit.
	if _, _, source, err := p.memo("select|coalesce-test", func() (any, error) {
		t.Error("memo hit recomputed")
		return nil, nil
	}); err != nil || source != SourceMemo {
		t.Errorf("post-completion request: source=%q err=%v, want memo hit", source, err)
	}
}

// TestConcurrentIdenticalSelects drives the same contract through the
// public Select path under the race detector: N identical concurrent
// requests yield one computation and bitwise-identical responses.
func TestConcurrentIdenticalSelects(t *testing.T) {
	p := New(Config{})
	const n = 6
	var wg sync.WaitGroup
	resps := make([]*SelectResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = p.Select(quickSelect(0.1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.ResultMisses != 1 {
		t.Errorf("result_misses = %d for %d identical requests, want exactly 1 computation", st.ResultMisses, n)
	}
	if st.ResultHits+st.ResultCoalesced != n-1 {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d", st.ResultHits, st.ResultCoalesced,
			st.ResultHits+st.ResultCoalesced, n-1)
	}
	base := *resps[0]
	base.CacheHit, base.Source = false, ""
	for i := 1; i < n; i++ {
		got := *resps[i]
		got.CacheHit, got.Source = false, ""
		if !reflect.DeepEqual(base, got) {
			t.Errorf("response %d differs from response 0:\n%+v\n%+v", i, base, got)
		}
	}
}

// TestMemoShedNotMemoized pins the admission-control contract at the memo
// layer: with 1 worker slot and a queue depth of 1, a third concurrent
// computation sheds with ErrOverloaded, the shed entry is evicted (never
// replayed from cache), and a retry after drain computes normally.
func TestMemoShedNotMemoized(t *testing.T) {
	p := New(Config{MaxInflight: 1, QueueDepth: 1})
	release := make(chan struct{})
	var wg sync.WaitGroup
	// Caller A holds the only worker slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, err := p.memo("select|a", func() (any, error) {
			<-release
			return &SelectResponse{Case: "a"}, nil
		})
		if err != nil {
			t.Errorf("caller a: %v", err)
		}
	}()
	waitFor(t, "slot held", func() bool { return p.adm.stats().Admitted == 1 })
	// Caller B fills the queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, err := p.memo("select|b", func() (any, error) {
			return &SelectResponse{Case: "b"}, nil
		})
		if err != nil {
			t.Errorf("caller b: %v", err)
		}
	}()
	waitFor(t, "queue full", func() bool {
		p.adm.mu.Lock()
		defer p.adm.mu.Unlock()
		return p.adm.waiting == 1
	})
	// Caller C sheds immediately.
	_, _, _, err := p.memo("select|c", func() (any, error) {
		t.Error("shed request computed")
		return nil, nil
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated memo returned %v, want ErrOverloaded", err)
	}
	if st := p.adm.stats(); st.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Shed)
	}
	p.mu.Lock()
	_, stillThere := p.results["select|c"]
	p.mu.Unlock()
	if stillThere {
		t.Error("shed result left in the memo — a retry would replay the 429")
	}
	close(release)
	wg.Wait()
	// The retry computes (and reports the queue drain, not the shed).
	resp, _, source, err := p.memo("select|c", func() (any, error) {
		return &SelectResponse{Case: "c"}, nil
	})
	if err != nil || source != SourceComputed || resp.(*SelectResponse).Case != "c" {
		t.Errorf("retry after drain: resp=%v source=%q err=%v", resp, source, err)
	}
	if st := p.Stats(); st.Admission.Shed != 1 || st.Admission.Admitted != 3 || st.Admission.Queued != 1 {
		t.Errorf("admission stats = %+v, want shed=1 admitted=3 queued=1", st.Admission)
	}
}

// TestAdmissionQueueWaitCounted pins the latency accounting: a queued
// computation's served elapsed time includes its queue wait, and the
// cumulative wait shows up in the admission stats.
func TestAdmissionQueueWaitCounted(t *testing.T) {
	p := New(Config{MaxInflight: 1, QueueDepth: 2})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.memo("select|hold", func() (any, error) {
			<-release
			return &SelectResponse{}, nil
		})
	}()
	waitFor(t, "slot held", func() bool { return p.adm.stats().Admitted == 1 })
	const hold = 30 * time.Millisecond
	var queuedElapsed time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, elapsed, _, err := p.memo("select|queued", func() (any, error) {
			return &SelectResponse{}, nil
		})
		if err != nil {
			t.Errorf("queued caller: %v", err)
		}
		queuedElapsed = elapsed
	}()
	waitFor(t, "caller queued", func() bool {
		p.adm.mu.Lock()
		defer p.adm.mu.Unlock()
		return p.adm.waiting == 1
	})
	time.Sleep(hold)
	close(release)
	wg.Wait()
	if queuedElapsed < hold {
		t.Errorf("queued request's elapsed %v < queue wait %v — queue time must be part of served latency", queuedElapsed, hold)
	}
	if st := p.adm.stats(); st.Queued != 1 || time.Duration(st.QueueWaitMicros)*time.Microsecond < hold/2 {
		t.Errorf("admission stats %+v, want 1 queued with >= %v cumulative wait", st, hold/2)
	}
}
