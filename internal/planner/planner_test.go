package planner

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/scenario"
)

func quickSelect(th float64) SelectRequest {
	return SelectRequest{
		Case:           "ieee14",
		GammaThreshold: th,
		Starts:         2,
		Seed:           1,
		Attacks:        50,
	}
}

// TestSelectMemoized pins the service contract: the second identical
// request is a cache hit with the same numbers, orders of magnitude
// faster than the first.
func TestSelectMemoized(t *testing.T) {
	p := New(Config{})
	first, err := p.Select(quickSelect(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first request reported a cache hit")
	}
	start := time.Now()
	second, err := p.Select(quickSelect(0.1))
	warm := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second identical request missed the memo")
	}
	if first.Source != SourceComputed || second.Source != SourceMemo {
		t.Errorf("sources %q / %q, want %q / %q", first.Source, second.Source, SourceComputed, SourceMemo)
	}
	f, s := *first, *second
	f.CacheHit, s.CacheHit = false, false
	f.Source, s.Source = "", ""
	if !reflect.DeepEqual(f, s) {
		t.Errorf("memoized response differs:\nfirst  %+v\nsecond %+v", f, s)
	}
	// The cold request runs a multi-start search (milliseconds at best);
	// the warm one is a map lookup. 10x is the acceptance bar, the real
	// ratio is far larger.
	if cold := time.Duration(first.ElapsedMS * float64(time.Millisecond)); warm > cold/10 {
		t.Errorf("warm request took %v, cold compute %v — expected >= 10x faster", warm, cold)
	}
}

// TestSelectGammaBackendNormalizedAndReported pins the γ-backend request
// surface: equivalent spellings share one memo entry, the response reports
// the backend that served (not the raw request string), a bogus value is
// rejected before it can occupy an LRU slot, and the served counters move.
func TestSelectGammaBackendNormalizedAndReported(t *testing.T) {
	p := New(Config{})
	req := quickSelect(0.1)
	req.GammaBackend = "Sketch"
	first, err := p.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.GammaBackend != "sketch" {
		t.Errorf("served backend %q, want sketch", first.GammaBackend)
	}
	req.GammaBackend = "sketch"
	second, err := p.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("normalized spelling missed the memo")
	}
	// "auto" and "" and "exact" all resolve to exact under the default and
	// must share one key: the second spelling is a hit.
	req.GammaBackend = "auto"
	if r, err := p.Select(req); err != nil || r.CacheHit {
		t.Errorf("auto spelling: err=%v hit=%v (want fresh compute)", err, r.CacheHit)
	}
	req.GammaBackend = "exact"
	if r, err := p.Select(req); err != nil || !r.CacheHit {
		t.Errorf("exact spelling after auto: err=%v, cache hit=%v (want hit)", err, r)
	}
	req.GammaBackend = "bogus"
	if _, err := p.Select(req); err == nil {
		t.Error("bogus gamma backend accepted")
	}
	st := p.Stats()
	if st.GammaSketchServed != 1 || st.GammaExactServed != 1 {
		t.Errorf("served counters sketch=%d exact=%d, want 1/1 (memo hits and errors must not count)",
			st.GammaSketchServed, st.GammaExactServed)
	}
}

// TestSelectMatchesScenarioSweep pins request/CLI parity: a selection
// request is exactly one mtdscan sweep point (both run the same
// scenario), so the served numbers must match the sweep's row.
func TestSelectMatchesScenarioSweep(t *testing.T) {
	req := quickSelect(0.1)
	p := New(Config{})
	resp, err := p.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.NewRunner().Run(scenario.Spec{
		Kind:         scenario.GammaSweep,
		Case:         req.Case,
		GammaGrid:    []float64{req.GammaThreshold},
		SelectStarts: req.Starts,
		Seed:         req.Seed,
		OPFStarts:    req.Starts,
		OPFSeed:      req.Seed,
		Effectiveness: core.EffectivenessConfig{
			NumAttacks: req.Attacks, Seed: req.Seed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if resp.Gamma != row.Gamma || resp.CostIncrease != row.CostIncrease {
		t.Errorf("served (γ=%v, cost=%v) != sweep row (γ=%v, cost=%v)",
			resp.Gamma, resp.CostIncrease, row.Gamma, row.CostIncrease)
	}
	if !reflect.DeepEqual(resp.Eta, row.Eta) {
		t.Errorf("served η' %v != sweep row %v", resp.Eta, row.Eta)
	}
}

// TestConcurrentSelects exercises the shared-case concurrency: distinct
// thresholds on one case run concurrently against the same cached network
// and dispatch engine (the race detector guards the sharing rules).
func TestConcurrentSelects(t *testing.T) {
	p := New(Config{})
	thresholds := []float64{0.05, 0.1, 0.15, 0.2}
	var wg sync.WaitGroup
	errs := make([]error, len(thresholds))
	resps := make([]*SelectResponse, len(thresholds))
	for i, th := range thresholds {
		wg.Add(1)
		go func(i int, th float64) {
			defer wg.Done()
			resps[i], errs[i] = p.Select(quickSelect(th))
		}(i, th)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("threshold %v: %v", thresholds[i], err)
		}
	}
	// Each must equal its serial recomputation.
	serial := New(Config{})
	for i, th := range thresholds {
		want, err := serial.Select(quickSelect(th))
		if err != nil {
			t.Fatal(err)
		}
		if resps[i].Gamma != want.Gamma || !reflect.DeepEqual(resps[i].Eta, want.Eta) {
			t.Errorf("threshold %v: concurrent (γ=%v) != serial (γ=%v)", th, resps[i].Gamma, want.Gamma)
		}
	}
	st := p.Stats()
	if st.CaseMisses != 1 || st.CaseHits != int64(len(thresholds)-1) {
		t.Errorf("case LRU stats = %+v, want 1 miss / %d hits", st, len(thresholds)-1)
	}
}

// TestSelectExplicitXOld serves a request whose attacker knowledge is the
// nominal configuration, and cross-checks the achieved γ with a direct
// evaluation.
func TestSelectExplicitXOld(t *testing.T) {
	n, err := grid.CaseByName("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{})
	resp, err := p.Select(SelectRequest{
		Case:           "ieee14",
		GammaThreshold: 0.2,
		XOld:           n.Reactances(),
		Starts:         2,
		Seed:           1,
		Attacks:        50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := core.Gamma(n, n.Reactances(), resp.Reactances); got < 0.2-2e-3 {
		t.Errorf("served selection achieves γ=%v against nominal knowledge, want >= 0.2", got)
	}
}

// TestSelectErrors pins the error surface: unknown cases, unreachable
// thresholds without fallback, bad x_old lengths.
func TestSelectErrors(t *testing.T) {
	p := New(Config{})
	if _, err := p.Select(SelectRequest{Case: "nope", GammaThreshold: 0.1}); err == nil {
		t.Error("unknown case accepted")
	}
	if _, err := p.Select(quickSelect(5.0)); !errors.Is(err, ErrUnreachable) {
		t.Errorf("unreachable threshold returned %v, want ErrUnreachable", err)
	}
	// With the fallback the same threshold serves the max-γ design.
	req := quickSelect(5.0)
	req.MaxGamma = true
	resp, err := p.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.MaxGammaFallback || resp.Gamma <= 0 {
		t.Errorf("fallback response %+v, want max-γ design", resp)
	}
	if _, err := p.Select(SelectRequest{Case: "ieee14", GammaThreshold: 0.1, XOld: []float64{1}}); err == nil {
		t.Error("bad x_old length accepted")
	}
}

// TestGammaRequest pins the γ endpoint against the library evaluation.
func TestGammaRequest(t *testing.T) {
	n, err := grid.CaseByName("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := n.DFACTSBounds()
	_ = lo
	xNew := n.ExpandDFACTS(hi)
	p := New(Config{})
	resp, err := p.Gamma(GammaRequest{Case: "ieee14", XNew: xNew})
	if err != nil {
		t.Fatal(err)
	}
	if want := core.Gamma(n, n.Reactances(), xNew); resp.Gamma != want {
		t.Errorf("served γ=%v, want %v", resp.Gamma, want)
	}
	second, err := p.Gamma(GammaRequest{Case: "ieee14", XNew: xNew})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second γ request missed the memo")
	}
	if _, err := p.Gamma(GammaRequest{Case: "ieee14", XNew: []float64{1, 2}}); err == nil {
		t.Error("bad x_new length accepted")
	}
}

// TestDaySweepServed runs the service-sized day sweep on the 14-bus case.
func TestDaySweepServed(t *testing.T) {
	if testing.Short() {
		t.Skip("day sweep is expensive")
	}
	p := New(Config{})
	resp, err := p.DaySweep(DaySweepRequest{Case: "ieee14", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Hours) != 3 {
		t.Fatalf("got %d hours, want the 3 service-default hours", len(resp.Hours))
	}
	for _, h := range resp.Hours {
		if h.MTDCost < h.BaselineCost {
			t.Errorf("hour %d: MTD cost %v below baseline %v", h.Hour, h.MTDCost, h.BaselineCost)
		}
	}
	second, err := p.DaySweep(DaySweepRequest{Case: "ieee14", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second day-sweep request missed the memo")
	}
}

// TestPlacementServed runs the greedy placement study on the 57-bus case:
// the reachable γ must be monotone in the deployment size, and the full
// 12-device deployment's reach must match the embedded deployment's.
func TestPlacementServed(t *testing.T) {
	if testing.Short() {
		t.Skip("placement probes are expensive")
	}
	p := New(Config{})
	resp, err := p.Placement(PlacementRequest{Case: "ieee57", Devices: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rounds) != 3 {
		t.Fatalf("got %d rounds, want 3", len(resp.Rounds))
	}
	for i, r := range resp.Rounds {
		if len(r.Devices) != i+1 {
			t.Errorf("round %d deployed %v, want %d devices", i+1, r.Devices, i+1)
		}
		if i > 0 && r.Gamma < resp.Rounds[i-1].Gamma-1e-12 {
			t.Errorf("round %d: γ %v below round %d's %v (greedy must be monotone)",
				i+1, r.Gamma, i, resp.Rounds[i-1].Gamma)
		}
	}
}
