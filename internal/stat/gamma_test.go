package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaIncLowerKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x} (exponential distribution CDF).
	cases := []struct {
		a, x, want float64
	}{
		{1, 0, 0},
		{1, 1, 1 - math.Exp(-1)},
		{1, 5, 1 - math.Exp(-5)},
		{0.5, 0.5, 0.6826894921370859}, // P(|N(0,1)| <= 1) via chi2(1)
		{2, 2, 1 - 3*math.Exp(-2)},     // Erlang(2) CDF at 2
	}
	for _, c := range cases {
		got, err := GammaIncLower(c.a, c.x)
		if err != nil {
			t.Fatalf("GammaIncLower(%v, %v): %v", c.a, c.x, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("GammaIncLower(%v, %v) = %.15f, want %.15f", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaIncDomainErrors(t *testing.T) {
	if _, err := GammaIncLower(0, 1); err == nil {
		t.Error("expected error for a=0")
	}
	if _, err := GammaIncLower(1, -1); err == nil {
		t.Error("expected error for x<0")
	}
	if _, err := GammaIncUpper(-1, 1); err == nil {
		t.Error("expected error for a<0")
	}
	if _, err := GammaIncLower(math.NaN(), 1); err == nil {
		t.Error("expected error for NaN a")
	}
}

func TestGammaIncComplementary(t *testing.T) {
	// P + Q = 1 over a range of arguments spanning both branches.
	for _, a := range []float64{0.5, 1, 2.5, 10, 41, 100} {
		for _, x := range []float64{0.1, 1, 5, 20, 60, 150} {
			p, err1 := GammaIncLower(a, x)
			q, err2 := GammaIncUpper(a, x)
			if err1 != nil || err2 != nil {
				t.Fatalf("a=%v x=%v: %v %v", a, x, err1, err2)
			}
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P+Q = %v for a=%v x=%v, want 1", p+q, a, x)
			}
		}
	}
}

// Property: P(a, x) is monotone nondecreasing in x.
func TestQuickGammaIncMonotone(t *testing.T) {
	f := func(aRaw, x1Raw, x2Raw float64) bool {
		a := 0.1 + math.Abs(math.Mod(aRaw, 50))
		x1 := math.Abs(math.Mod(x1Raw, 100))
		x2 := math.Abs(math.Mod(x2Raw, 100))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		p1, err1 := GammaIncLower(a, x1)
		p2, err2 := GammaIncLower(a, x2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 <= p2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
