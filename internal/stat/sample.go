package stat

import (
	"math"
	"math/rand"
	"sort"
)

// NormalVec fills a new slice of length n with independent N(0, sigma²)
// samples drawn from rng.
func NormalVec(rng *rand.Rand, n int, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * sigma
	}
	return out
}

// Mean returns the arithmetic mean of x (0 for an empty slice).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 for fewer than two
// samples).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x)-1)
}

// StdDev returns the sample standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Quantile returns the q-th empirical quantile (0 <= q <= 1) of x using
// linear interpolation between order statistics. It panics on an empty
// slice.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		panic("stat: Quantile of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionAbove returns the fraction of entries in x strictly greater than
// threshold.
func FractionAbove(x []float64, threshold float64) float64 {
	if len(x) == 0 {
		return 0
	}
	n := 0
	for _, v := range x {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(x))
}

// FractionAtLeast returns the fraction of entries in x greater than or
// equal to threshold.
func FractionAtLeast(x []float64, threshold float64) float64 {
	if len(x) == 0 {
		return 0
	}
	n := 0
	for _, v := range x {
		if v >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(x))
}
