// Package stat implements the probability distributions and statistical
// helpers needed by the bad data detector and the Monte-Carlo evaluation:
// the regularized incomplete gamma function, central and noncentral
// chi-square distributions, Gaussian sampling and summary statistics.
package stat

import (
	"errors"
	"math"
)

// ErrDomain is returned for arguments outside a function's domain.
var ErrDomain = errors.New("stat: argument out of domain")

const (
	gammaEps    = 1e-14
	gammaFPMin  = 1e-300
	gammaMaxIts = 500
)

// GammaIncLower returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0.
func GammaIncLower(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		// Series representation converges quickly here.
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// GammaIncUpper returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncUpper(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series (valid for x < a+1).
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIts; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, errors.New("stat: incomplete gamma series did not converge")
}

// gammaContinuedFraction evaluates Q(a,x) by Lentz's continued fraction
// (valid for x >= a+1).
func gammaContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / gammaFPMin
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIts; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaFPMin {
			d = gammaFPMin
		}
		c = b + an/c
		if math.Abs(c) < gammaFPMin {
			c = gammaFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, errors.New("stat: incomplete gamma continued fraction did not converge")
}
