package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChiSquareCDFKnown(t *testing.T) {
	// chi2(2) is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 1, 3, 10} {
		got, err := ChiSquareCDF(2, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x/2)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("ChiSquareCDF(2, %v) = %v, want %v", x, got, want)
		}
	}
	// chi2(1): CDF(x) = erf(sqrt(x/2)).
	got, err := ChiSquareCDF(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Erf(math.Sqrt(0.5))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ChiSquareCDF(1, 1) = %v, want %v", got, want)
	}
}

func TestChiSquareEdgeCases(t *testing.T) {
	if got, _ := ChiSquareCDF(3, 0); got != 0 {
		t.Errorf("CDF at 0 = %v, want 0", got)
	}
	if got, _ := ChiSquareSF(3, 0); got != 1 {
		t.Errorf("SF at 0 = %v, want 1", got)
	}
	if got, _ := ChiSquareSF(3, -5); got != 1 {
		t.Errorf("SF at negative = %v, want 1", got)
	}
	if _, err := ChiSquareCDF(0, 1); err == nil {
		t.Error("expected domain error for k=0")
	}
}

func TestChiSquareQuantileUpperRoundTrip(t *testing.T) {
	for _, k := range []float64{1, 2, 13, 41, 95} {
		for _, alpha := range []float64{0.5, 0.05, 5e-4, 1e-6} {
			x, err := ChiSquareQuantileUpper(k, alpha)
			if err != nil {
				t.Fatalf("quantile k=%v alpha=%v: %v", k, alpha, err)
			}
			sf, err := ChiSquareSF(k, x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sf-alpha) > 1e-9*(1+alpha) && math.Abs(sf-alpha) > 1e-12 {
				t.Errorf("SF(quantile) = %v, want %v (k=%v)", sf, alpha, k)
			}
		}
	}
}

func TestChiSquareQuantileKnown(t *testing.T) {
	// chi2inv(0.95, 1) = 3.841458820694124 (standard table value).
	x, err := ChiSquareQuantileUpper(1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3.841458820694124) > 1e-8 {
		t.Errorf("chi2 upper quantile(1, 0.05) = %v, want 3.8414588", x)
	}
	// chi2inv(0.99, 5) = 15.08627246938899.
	x, err = ChiSquareQuantileUpper(5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-15.08627246938899) > 1e-7 {
		t.Errorf("chi2 upper quantile(5, 0.01) = %v, want 15.0862724", x)
	}
}

func TestChiSquareQuantileDomain(t *testing.T) {
	if _, err := ChiSquareQuantileUpper(3, 0); err == nil {
		t.Error("expected error for alpha=0")
	}
	if _, err := ChiSquareQuantileUpper(3, 1); err == nil {
		t.Error("expected error for alpha=1")
	}
	if _, err := ChiSquareQuantileUpper(-1, 0.5); err == nil {
		t.Error("expected error for k<0")
	}
}

func TestNoncentralChiSquareReducesToCentral(t *testing.T) {
	for _, k := range []float64{1, 5, 41} {
		for _, x := range []float64{1, 10, 60} {
			nc, err := NoncentralChiSquareSF(k, 0, x)
			if err != nil {
				t.Fatal(err)
			}
			c, err := ChiSquareSF(k, x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(nc-c) > 1e-12 {
				t.Errorf("NC(λ=0) = %v, central = %v (k=%v, x=%v)", nc, c, k, x)
			}
		}
	}
}

func TestNoncentralChiSquareMonteCarlo(t *testing.T) {
	// Compare against direct simulation: sum of (Z_i + mu_i)^2 with
	// sum(mu^2) = lambda.
	rng := rand.New(rand.NewSource(99))
	k := 5
	lambda := 12.0
	x := 25.0
	mu := math.Sqrt(lambda / float64(k))
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < k; j++ {
			z := rng.NormFloat64() + mu
			s += z * z
		}
		if s > x {
			hits++
		}
	}
	mc := float64(hits) / n
	got, err := NoncentralChiSquareSF(float64(k), lambda, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-mc) > 0.01 {
		t.Errorf("NoncentralChiSquareSF = %v, Monte Carlo = %v", got, mc)
	}
}

func TestNoncentralChiSquareLargeLambda(t *testing.T) {
	// With huge noncentrality the variable concentrates far above any
	// moderate threshold.
	sf, err := NoncentralChiSquareSF(41, 5000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sf < 1-1e-9 {
		t.Errorf("SF = %v, want ~1 for lambda >> x", sf)
	}
}

func TestNoncentralChiSquareDomain(t *testing.T) {
	if _, err := NoncentralChiSquareSF(0, 1, 1); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := NoncentralChiSquareSF(1, -1, 1); err == nil {
		t.Error("expected error for lambda<0")
	}
	if got, _ := NoncentralChiSquareSF(3, 5, 0); got != 1 {
		t.Errorf("SF at 0 = %v, want 1", got)
	}
}

func TestNoncentralChiSquareCDFComplement(t *testing.T) {
	cdf, err := NoncentralChiSquareCDF(7, 9, 15)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NoncentralChiSquareSF(7, 9, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf+sf-1) > 1e-12 {
		t.Errorf("CDF+SF = %v, want 1", cdf+sf)
	}
}

// Property: SF is monotone increasing in the noncentrality parameter
// (this is the fact Theorem 1's proof relies on).
func TestQuickNoncentralMonotoneInLambda(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + float64(r.Intn(60))
		x := r.Float64() * 100
		l1 := r.Float64() * 50
		l2 := l1 + r.Float64()*50
		s1, err1 := NoncentralChiSquareSF(k, l1, x)
		s2, err2 := NoncentralChiSquareSF(k, l2, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2 >= s1-1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNoncentralChiSquareLambdaForSF(t *testing.T) {
	// Round trip: SF(k, lambda(p), x) == p.
	k, x := 41.0, 78.0
	for _, p := range []float64{0.5, 0.8, 0.9, 0.95, 0.999} {
		lambda, err := NoncentralChiSquareLambdaForSF(k, x, p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		sf, err := NoncentralChiSquareSF(k, lambda, x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sf-p) > 1e-8 {
			t.Errorf("SF(lambda(%v)) = %v", p, sf)
		}
	}
}

func TestNoncentralChiSquareLambdaForSFEdge(t *testing.T) {
	// Below the central SF no noncentrality is required.
	central, err := ChiSquareSF(10, 30)
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := NoncentralChiSquareLambdaForSF(10, 30, central/2)
	if err != nil {
		t.Fatal(err)
	}
	if lambda != 0 {
		t.Errorf("lambda = %v, want 0", lambda)
	}
	if _, err := NoncentralChiSquareLambdaForSF(0, 1, 0.5); err == nil {
		t.Error("expected domain error for k=0")
	}
	if _, err := NoncentralChiSquareLambdaForSF(1, 1, 0); err == nil {
		t.Error("expected domain error for p=0")
	}
	if _, err := NoncentralChiSquareLambdaForSF(1, 1, 1); err == nil {
		t.Error("expected domain error for p=1")
	}
}
