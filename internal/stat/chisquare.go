package stat

import (
	"errors"
	"fmt"
	"math"
)

// ChiSquareCDF returns P(X <= x) for a chi-square random variable with k
// degrees of freedom. k may be fractional (k > 0).
func ChiSquareCDF(k, x float64) (float64, error) {
	if k <= 0 {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 0, nil
	}
	return GammaIncLower(k/2, x/2)
}

// ChiSquareSF returns the survival function P(X > x) for a chi-square random
// variable with k degrees of freedom.
func ChiSquareSF(k, x float64) (float64, error) {
	if k <= 0 {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 1, nil
	}
	return GammaIncUpper(k/2, x/2)
}

// ChiSquareQuantileUpper returns the threshold x such that a chi-square
// random variable with k degrees of freedom exceeds x with probability
// alpha, i.e. SF(x) = alpha. It is used to set the BDD threshold for a
// target false-positive rate.
func ChiSquareQuantileUpper(k, alpha float64) (float64, error) {
	if k <= 0 || alpha <= 0 || alpha >= 1 {
		return 0, ErrDomain
	}
	// Bracket the root: SF is decreasing in x, SF(0) = 1.
	lo, hi := 0.0, k+10
	for i := 0; ; i++ {
		sf, err := ChiSquareSF(k, hi)
		if err != nil {
			return 0, err
		}
		if sf < alpha {
			break
		}
		hi *= 2
		if i > 200 {
			return 0, fmt.Errorf("stat: cannot bracket chi-square quantile (k=%g, alpha=%g)", k, alpha)
		}
	}
	// Bisection: robust and plenty fast for the sizes used here.
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		sf, err := ChiSquareSF(k, mid)
		if err != nil {
			return 0, err
		}
		if sf > alpha {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// NoncentralChiSquareSF returns P(X > x) for a noncentral chi-square random
// variable with k degrees of freedom and noncentrality parameter lambda.
// It evaluates the Poisson mixture
//
//	SF(x) = Σ_j e^{-λ/2} (λ/2)^j / j! · SF_central(k+2j, x)
//
// truncating when the remaining Poisson mass bounds the error below 1e-12.
func NoncentralChiSquareSF(k, lambda, x float64) (float64, error) {
	if k <= 0 || lambda < 0 {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 1, nil
	}
	if lambda == 0 {
		return ChiSquareSF(k, x)
	}
	half := lambda / 2
	// Start at the modal Poisson term for numerical efficiency and sum
	// outwards in both directions.
	j0 := int(half)
	logW0 := -half + float64(j0)*math.Log(half) - lgammaInt(j0+1)
	w0 := math.Exp(logW0)

	sum := 0.0
	accum := 0.0 // total Poisson mass consumed

	// Upward pass from j0.
	w := w0
	for j := j0; ; j++ {
		sf, err := ChiSquareSF(k+2*float64(j), x)
		if err != nil {
			return 0, err
		}
		sum += w * sf
		accum += w
		wNext := w * half / float64(j+1)
		if wNext < 1e-16 && float64(j) > half {
			break
		}
		w = wNext
		if j > 100000 {
			break
		}
	}
	// Downward pass from j0-1.
	w = w0
	for j := j0 - 1; j >= 0; j-- {
		w = w * float64(j+1) / half
		sf, err := ChiSquareSF(k+2*float64(j), x)
		if err != nil {
			return 0, err
		}
		sum += w * sf
		accum += w
		if w < 1e-16 {
			break
		}
	}
	// Any truncated Poisson mass contributes at most its weight; SF <= 1, so
	// clamping covers it.
	_ = accum
	if sum > 1 {
		sum = 1
	}
	if sum < 0 {
		sum = 0
	}
	return sum, nil
}

// NoncentralChiSquareCDF returns P(X <= x) for a noncentral chi-square
// variable with k degrees of freedom and noncentrality lambda.
func NoncentralChiSquareCDF(k, lambda, x float64) (float64, error) {
	sf, err := NoncentralChiSquareSF(k, lambda, x)
	if err != nil {
		return 0, err
	}
	return 1 - sf, nil
}

func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

// NoncentralChiSquareLambdaForSF returns the noncentrality parameter λ at
// which a noncentral chi-square variable with k degrees of freedom exceeds
// x with probability p, i.e. SF(k, λ, x) = p. SF is strictly increasing in
// λ, so the root is found by bracketing and bisection. For p at or below
// the central value SF(k, 0, x) it returns 0 (no noncentrality needed).
//
// This inverse turns per-attack detection-probability thresholding
// (P_D ≥ δ) into a cheap comparison of residual components against
// σ·sqrt(λ_δ), which is what makes large keyspace sweeps affordable.
func NoncentralChiSquareLambdaForSF(k, x, p float64) (float64, error) {
	if k <= 0 || x < 0 || p <= 0 || p >= 1 {
		return 0, ErrDomain
	}
	central, err := ChiSquareSF(k, x)
	if err != nil {
		return 0, err
	}
	if p <= central {
		return 0, nil
	}
	lo, hi := 0.0, math.Max(x, 1.0)
	for i := 0; ; i++ {
		sf, err := NoncentralChiSquareSF(k, hi, x)
		if err != nil {
			return 0, err
		}
		if sf >= p {
			break
		}
		hi *= 2
		if i > 100 {
			return 0, errors.New("stat: cannot bracket noncentrality parameter")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		sf, err := NoncentralChiSquareSF(k, mid, x)
		if err != nil {
			return 0, err
		}
		if sf < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
