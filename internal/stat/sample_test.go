package stat

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := NormalVec(rng, 100000, 2.0)
	if len(x) != 100000 {
		t.Fatalf("len = %d", len(x))
	}
	if m := Mean(x); math.Abs(m) > 0.05 {
		t.Errorf("mean = %v, want ~0", m)
	}
	if s := StdDev(x); math.Abs(s-2) > 0.05 {
		t.Errorf("stddev = %v, want ~2", s)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Unbiased sample variance of the classic dataset is 32/7.
	if v := Variance(x); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/single-element edge cases wrong")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Out-of-range q values are clamped.
	if got := Quantile(x, -1); got != 1 {
		t.Errorf("Quantile(-1) = %v, want 1", got)
	}
	if got := Quantile(x, 2); got != 5 {
		t.Errorf("Quantile(2) = %v, want 5", got)
	}
	if got := Quantile([]float64{42}, 0.5); got != 42 {
		t.Errorf("Quantile single = %v", got)
	}
	// Quantile must not mutate its input.
	y := []float64{3, 1, 2}
	Quantile(y, 0.5)
	if y[0] != 3 || y[1] != 1 || y[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestFractions(t *testing.T) {
	x := []float64{0.1, 0.5, 0.5, 0.9}
	if got := FractionAbove(x, 0.5); got != 0.25 {
		t.Errorf("FractionAbove = %v, want 0.25", got)
	}
	if got := FractionAtLeast(x, 0.5); got != 0.75 {
		t.Errorf("FractionAtLeast = %v, want 0.75", got)
	}
	if FractionAbove(nil, 0) != 0 || FractionAtLeast(nil, 0) != 0 {
		t.Error("empty-slice fractions should be 0")
	}
}
