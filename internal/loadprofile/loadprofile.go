// Package loadprofile provides the hourly load traces that drive the
// dynamic-load experiments. The paper feeds a New York state trace
// (25-JAN-2016, hourly) to the IEEE 14-bus system; that file is not
// redistributable, so NYWinterWeekday embeds a synthetic winter-weekday
// shape with the same structure (overnight trough ~64% of peak, morning
// ramp, evening peak at 6 PM) — the properties Figs. 9-11 actually depend
// on (temporal correlation and a load level that modulates congestion).
// Synthetic generators (sinusoid, random walk) support further testing.
package loadprofile

import (
	"errors"
	"math"
	"math/rand"
)

// NYWinterWeekday returns 24 hourly load factors normalized to peak = 1,
// index 0 = 1 AM through index 23 = midnight, shaped like a New York
// January weekday (cf. the paper's Fig. 10 trace): flat overnight trough,
// morning ramp to a late-morning plateau, evening peak at 6 PM.
func NYWinterWeekday() []float64 {
	return []float64{
		0.68, 0.65, 0.64, 0.64, 0.66, 0.71, // 1 AM - 6 AM
		0.78, 0.83, 0.86, 0.88, 0.89, 0.89, // 7 AM - 12 PM
		0.88, 0.87, 0.87, 0.89, 0.95, 1.00, // 1 PM - 6 PM
		0.99, 0.97, 0.94, 0.89, 0.82, 0.74, // 7 PM - 12 AM
	}
}

// HourLabel returns a clock label ("1AM" ... "12AM") for an index into a
// 24-hour profile.
func HourLabel(i int) string {
	labels := []string{
		"1AM", "2AM", "3AM", "4AM", "5AM", "6AM",
		"7AM", "8AM", "9AM", "10AM", "11AM", "12PM",
		"1PM", "2PM", "3PM", "4PM", "5PM", "6PM",
		"7PM", "8PM", "9PM", "10PM", "11PM", "12AM",
	}
	if i < 0 || i >= len(labels) {
		return "?"
	}
	return labels[i]
}

// ScaleToPeak rescales a normalized shape so that applying the factors to a
// system with base total load baseTotalMW yields the given peak total load.
// E.g. the paper's Fig. 10 swings the 14-bus system (259 MW base) between
// ~140 and ~220 MW: ScaleToPeak(NYWinterWeekday(), 259, 220).
func ScaleToPeak(shape []float64, baseTotalMW, peakTotalMW float64) ([]float64, error) {
	if baseTotalMW <= 0 || peakTotalMW <= 0 {
		return nil, errors.New("loadprofile: totals must be positive")
	}
	if len(shape) == 0 {
		return nil, errors.New("loadprofile: empty shape")
	}
	maxShape := shape[0]
	for _, v := range shape {
		if v <= 0 {
			return nil, errors.New("loadprofile: shape factors must be positive")
		}
		if v > maxShape {
			maxShape = v
		}
	}
	k := peakTotalMW / (baseTotalMW * maxShape)
	out := make([]float64, len(shape))
	for i, v := range shape {
		out[i] = v * k
	}
	return out, nil
}

// Sinusoid returns an hours-long profile mean + amplitude·cos centered so
// the maximum lands at peakHour (0-based).
func Sinusoid(hours int, mean, amplitude float64, peakHour int) []float64 {
	out := make([]float64, hours)
	for h := 0; h < hours; h++ {
		phase := 2 * math.Pi * float64(h-peakHour) / float64(hours)
		out[h] = mean + amplitude*math.Cos(phase)
	}
	return out
}

// RandomWalk returns an hours-long profile following a reflected random
// walk with the given step size, clamped to [lo, hi]. It models slowly
// varying, temporally correlated demand for robustness tests.
func RandomWalk(rng *rand.Rand, hours int, start, step, lo, hi float64) []float64 {
	out := make([]float64, hours)
	v := start
	for h := 0; h < hours; h++ {
		v += (2*rng.Float64() - 1) * step
		if v < lo {
			v = 2*lo - v
		}
		if v > hi {
			v = 2*hi - v
		}
		// Double reflection can still escape for huge steps; clamp.
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		out[h] = v
	}
	return out
}
