package loadprofile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNYWinterWeekdayShape(t *testing.T) {
	p := NYWinterWeekday()
	if len(p) != 24 {
		t.Fatalf("len = %d, want 24", len(p))
	}
	// Peak at 6 PM (index 17), normalized to 1.
	peak := 0
	for i, v := range p {
		if v > p[peak] {
			peak = i
		}
	}
	if peak != 17 {
		t.Errorf("peak at index %d (%s), want 17 (6PM)", peak, HourLabel(peak))
	}
	if p[peak] != 1.0 {
		t.Errorf("peak value %v, want 1.0", p[peak])
	}
	// Overnight trough around 60-70%.
	if p[2] < 0.55 || p[2] > 0.75 {
		t.Errorf("3AM factor %v outside winter trough range", p[2])
	}
	for i, v := range p {
		if v <= 0 || v > 1 {
			t.Errorf("factor[%d] = %v outside (0, 1]", i, v)
		}
	}
}

func TestHourLabel(t *testing.T) {
	if HourLabel(0) != "1AM" || HourLabel(17) != "6PM" || HourLabel(23) != "12AM" {
		t.Error("labels wrong")
	}
	if HourLabel(-1) != "?" || HourLabel(24) != "?" {
		t.Error("out-of-range labels should be ?")
	}
}

func TestScaleToPeak(t *testing.T) {
	factors, err := ScaleToPeak(NYWinterWeekday(), 259, 220)
	if err != nil {
		t.Fatal(err)
	}
	// Max scaled total = 220 MW.
	maxTotal := 0.0
	minTotal := math.Inf(1)
	for _, f := range factors {
		total := 259 * f
		if total > maxTotal {
			maxTotal = total
		}
		if total < minTotal {
			minTotal = total
		}
	}
	if math.Abs(maxTotal-220) > 1e-9 {
		t.Errorf("peak total %v, want 220", maxTotal)
	}
	// The paper's Fig. 10 trough is ~140 MW.
	if minTotal < 130 || minTotal > 150 {
		t.Errorf("trough total %v, want ~140", minTotal)
	}
}

func TestScaleToPeakErrors(t *testing.T) {
	if _, err := ScaleToPeak(nil, 100, 100); err == nil {
		t.Error("expected error for empty shape")
	}
	if _, err := ScaleToPeak([]float64{1}, 0, 100); err == nil {
		t.Error("expected error for zero base")
	}
	if _, err := ScaleToPeak([]float64{1}, 100, 0); err == nil {
		t.Error("expected error for zero peak")
	}
	if _, err := ScaleToPeak([]float64{1, -1}, 100, 100); err == nil {
		t.Error("expected error for negative factor")
	}
}

func TestSinusoid(t *testing.T) {
	p := Sinusoid(24, 0.8, 0.2, 18)
	if len(p) != 24 {
		t.Fatalf("len = %d", len(p))
	}
	if math.Abs(p[18]-1.0) > 1e-12 {
		t.Errorf("peak value %v at peak hour, want 1.0", p[18])
	}
	// Trough is diametrically opposite.
	if math.Abs(p[6]-0.6) > 1e-12 {
		t.Errorf("trough %v, want 0.6", p[6])
	}
}

func TestRandomWalkStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomWalk(rng, 1000, 0.8, 0.1, 0.6, 1.0)
	for i, v := range p {
		if v < 0.6 || v > 1.0 {
			t.Fatalf("walk[%d] = %v escaped [0.6, 1]", i, v)
		}
	}
}

// Property: RandomWalk respects its bounds for arbitrary seeds and steps.
func TestQuickRandomWalkBounds(t *testing.T) {
	f := func(seed int64, stepRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		step := math.Abs(math.Mod(stepRaw, 1))
		p := RandomWalk(rng, 100, 0.8, step, 0.5, 1.2)
		for _, v := range p {
			if v < 0.5 || v > 1.2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
