package experiments

import (
	"errors"
	"fmt"
	"io"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/scenario"
)

// Fig6Config controls the effectiveness-vs-γ sweep of Fig. 6.
type Fig6Config struct {
	// Network builds the test case (CaseIEEE14 for 6a, CaseIEEE30 for 6b).
	Network func() *grid.Network
	// GammaGrid are the γ_th values of constraint (4b); points beyond the
	// hardware's reach are replaced by the max-γ design.
	GammaGrid []float64
	// Effectiveness configures the η' evaluation (paper: 1000 attacks,
	// α = 5e-4, δ ∈ {0.5, 0.8, 0.9, 0.95}).
	Effectiveness core.EffectivenessConfig
	// SelectStarts is the multi-start budget of each problem-(4) solve.
	SelectStarts int
	// Seed seeds the solvers.
	Seed int64
}

// DefaultFig6aConfig returns the paper's Fig. 6a protocol (IEEE 14-bus,
// γ ∈ {0.05, ..., 0.45} rad in 0.05 steps).
func DefaultFig6aConfig() Fig6Config {
	grid14 := func() *grid.Network { return grid.CaseIEEE14() }
	return Fig6Config{
		Network:      grid14,
		GammaGrid:    gammaGrid(0.05, 0.45, 0.05),
		SelectStarts: 8,
		Seed:         61,
	}
}

// DefaultFig6bConfig returns the paper's Fig. 6b protocol (IEEE 30-bus,
// γ ∈ {0.05, ..., 0.50}). The noise level is calibrated per case, as for
// the 14-bus system: σ = 0.0005 p.u. puts the 30-bus η'(δ) curves in the
// paper's operating range (the 30-bus D-FACTS placement is not specified
// by the paper, so exact levels are not reproducible — the monotone trend
// is; see EXPERIMENTS.md).
func DefaultFig6bConfig() Fig6Config {
	grid30 := func() *grid.Network { return grid.CaseIEEE30() }
	return Fig6Config{
		Network:   grid30,
		GammaGrid: gammaGrid(0.05, 0.50, 0.05),
		Effectiveness: core.EffectivenessConfig{
			Sigma: 0.0005,
		},
		SelectStarts: 6,
		Seed:         62,
	}
}

func gammaGrid(from, to, step float64) []float64 {
	var out []float64
	for g := from; g <= to+1e-9; g += step {
		out = append(out, g)
	}
	return out
}

// Fig6Row is one sweep point of Fig. 6.
type Fig6Row struct {
	// GammaTarget is the requested γ_th (0 marks the max-γ fallback point).
	GammaTarget float64
	// Gamma is the achieved γ(H_t, H'_t').
	Gamma float64
	// Deltas and Eta form the η'(δ) values at this γ.
	Deltas []float64
	Eta    []float64
	// CostIncrease is C_MTD at this point (not plotted in Fig. 6 but
	// reported for the tradeoff discussion).
	CostIncrease float64
}

// RunFig6 executes the sweep: pre-perturbation state from problem (1),
// a fixed 1000-attack set, then one problem-(4) solve per γ_th with the
// same attack set evaluated after each. The sweep is a scenario.Spec —
// the scenario runner shares one dispatch-OPF engine and one γ engine
// across every sweep point — and the rows are identical to the historical
// per-point engine construction (bitwise on the dense backend).
func RunFig6(cfg Fig6Config) ([]Fig6Row, error) {
	if cfg.Network == nil {
		return nil, errors.New("experiments: Fig6Config.Network is nil")
	}
	effCfg := cfg.Effectiveness
	effCfg.Seed = cfg.Seed
	res, err := scenario.NewRunner().Run(scenario.Spec{
		Kind:            scenario.GammaSweep,
		Network:         cfg.Network,
		GammaGrid:       cfg.GammaGrid,
		CapWithMaxGamma: true,
		SelectStarts:    cfg.SelectStarts,
		Seed:            cfg.Seed,
		OPFStarts:       cfg.SelectStarts,
		OPFSeed:         cfg.Seed,
		Effectiveness:   effCfg,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}
	rows := make([]Fig6Row, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, Fig6Row{
			GammaTarget:  r.GammaTarget,
			Gamma:        r.Gamma,
			Deltas:       r.Deltas,
			Eta:          r.Eta,
			CostIncrease: r.CostIncrease,
		})
	}
	return rows, nil
}

// FormatFig6 renders the sweep as the series the paper plots.
func FormatFig6(w io.Writer, title string, rows []Fig6Row) error {
	if len(rows) == 0 {
		_, err := fmt.Fprintf(w, "%s: no feasible sweep points\n", title)
		return err
	}
	headers := []string{"γ_target", "γ(Ht,H't')"}
	for _, d := range rows[0].Deltas {
		headers = append(headers, fmt.Sprintf("η'(δ=%.2f)", d))
	}
	headers = append(headers, "C_MTD")
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		target := f2(r.GammaTarget)
		if r.GammaTarget == 0 {
			target = "max"
		}
		cells := []string{target, f3(r.Gamma)}
		for _, e := range r.Eta {
			cells = append(cells, f3(e))
		}
		cells = append(cells, fmt.Sprintf("%.2f%%", 100*r.CostIncrease))
		out = append(out, cells)
	}
	return renderTable(w, title, headers, out)
}

func quickFig6(cfg Fig6Config) Fig6Config {
	cfg.GammaGrid = []float64{0.1, 0.25, 0.4}
	cfg.Effectiveness.NumAttacks = 100
	cfg.SelectStarts = 2
	return cfg
}

func init() {
	register(Experiment{
		ID:          "fig6a",
		Title:       "Fig. 6a: MTD effectiveness η'(δ) vs γ (IEEE 14-bus)",
		CaseGeneric: true,
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultFig6aConfig()
			if opts.Quality == Quick {
				cfg = quickFig6(cfg)
			}
			title := "Fig. 6a: effectiveness vs γ, IEEE 14-bus (FP rate 5e-4)"
			if net, err := resolveCase(opts.Case); err != nil {
				return err
			} else if net != nil {
				cfg.Network = net
				title = fmt.Sprintf("Fig. 6a protocol: effectiveness vs γ, case %s (FP rate 5e-4)", opts.Case)
			}
			rows, err := RunFig6(cfg)
			if err != nil {
				return err
			}
			return FormatFig6(w, title, rows)
		},
	})
	register(Experiment{
		ID:          "fig6b",
		Title:       "Fig. 6b: MTD effectiveness η'(δ) vs γ (IEEE 30-bus)",
		CaseGeneric: true,
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultFig6bConfig()
			if opts.Quality == Quick {
				cfg = quickFig6(cfg)
			}
			title := "Fig. 6b: effectiveness vs γ, IEEE 30-bus (FP rate 5e-4)"
			if net, err := resolveCase(opts.Case); err != nil {
				return err
			} else if net != nil {
				cfg.Network = net
				title = fmt.Sprintf("Fig. 6b protocol: effectiveness vs γ, case %s (FP rate 5e-4)", opts.Case)
			}
			rows, err := RunFig6(cfg)
			if err != nil {
				return err
			}
			return FormatFig6(w, title, rows)
		},
	})
}
