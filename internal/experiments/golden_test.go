package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenQuickOutputs pins the byte-exact quick-mode output of every
// registered experiment at the paper's fixed seeds. The golden file was
// captured from `mtdexp -exp all -quick` before the case-registry/sparse
// refactor, so this test is the contract that the 4/14/30-bus paper
// artifacts never drift: any change to a float operation on the dense
// path, a seed, a format string, or the experiment registry shows up as a
// diff here. Regenerate (only when an output change is intended and
// understood) with:
//
//	go run ./cmd/mtdexp -exp all -quick | grep -v 'completed in' > internal/experiments/testdata/golden_quick_all.txt
func TestGoldenQuickOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run executes every experiment")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_quick_all.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, id := range IDs() {
		e, _ := ByID(id)
		// Reproduce mtdexp's framing minus the timing line (which the
		// capture filtered out).
		fmt.Fprintf(&buf, "=== %s: %s (quality: %s)\n", e.ID, e.Title, Quick)
		if err := e.Run(&buf, Options{Quality: Quick}); err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		fmt.Fprintf(&buf, "\n")
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gotPath := filepath.Join(t.TempDir(), "got.txt")
		os.WriteFile(gotPath, buf.Bytes(), 0o644)
		t.Fatalf("quick-mode experiment output drifted from the golden capture.\n"+
			"got written to %s\n"+
			"Diff against internal/experiments/testdata/golden_quick_all.txt; regenerate only if the change is intended.", gotPath)
	}
}
