// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VII). Each experiment has a typed config with the
// paper's parameters as defaults, a Run function returning structured rows,
// and a text formatter that prints the same rows/series the paper reports.
// The cmd/mtdexp binary and the repository benchmarks are thin wrappers
// around this package; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gridmtd/internal/grid"
)

// Quality selects the evaluation budget.
type Quality int

const (
	// Full reproduces the paper's protocol (1000 attacks, 500 keyspace
	// draws, 24-hour day, full multi-start budgets).
	Full Quality = iota
	// Quick shrinks sampling budgets for benchmarks and smoke tests while
	// preserving every code path and the qualitative shapes.
	Quick
)

// String names the quality level.
func (q Quality) String() string {
	if q == Quick {
		return "quick"
	}
	return "full"
}

// Options parameterizes one experiment run.
type Options struct {
	// Quality selects the sampling budget.
	Quality Quality
	// Case optionally overrides the grid of a case-generic experiment with
	// a registered case name (resolved through grid.CaseByName). Pinned
	// experiments — the ones reproducing a specific paper artifact on a
	// specific system — reject an override.
	Case string
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	// ID is the registry key (e.g. "table1", "fig6a").
	ID string
	// Title describes the paper artifact.
	Title string
	// CaseGeneric marks experiments whose protocol runs on any registered
	// case via Options.Case.
	CaseGeneric bool
	// Run executes the experiment and writes its table(s) to w.
	Run func(w io.Writer, opts Options) error
}

// RunOne executes the experiment with the options, enforcing the
// case-override contract: a case override on a pinned experiment is an
// error that names the case-generic alternatives.
func RunOne(e Experiment, w io.Writer, opts Options) error {
	if opts.Case != "" && !e.CaseGeneric {
		return fmt.Errorf("experiments: %s is pinned to its paper case; case-generic experiments: %s",
			e.ID, strings.Join(CaseGenericIDs(), ", "))
	}
	return e.Run(w, opts)
}

// CaseGenericIDs returns the IDs of the experiments that accept a case
// override, sorted.
func CaseGenericIDs() []string {
	var ids []string
	for id, e := range registry {
		if e.CaseGeneric {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// resolveCase turns an Options.Case override into a network constructor,
// or returns nil when no override is requested. The name is validated
// eagerly so a typo fails before any computation starts.
func resolveCase(name string) (func() *grid.Network, error) {
	if name == "" {
		return nil, nil
	}
	if _, err := grid.CaseByName(name); err != nil {
		return nil, err
	}
	return func() *grid.Network {
		n, err := grid.CaseByName(name)
		if err != nil {
			panic(err) // validated above; registry is immutable
		}
		return n
	}, nil
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns the sorted registry keys.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// renderTable writes a fixed-width text table.
func renderTable(w io.Writer, title string, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if _, err := fmt.Fprintf(w, "%-*s", widths[i]+2, c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
