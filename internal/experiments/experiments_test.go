package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig10", "fig11", "fig6a", "fig6b", "fig7", "fig8", "fig9",
		"impact", "learning",
		"table1", "table2", "table3", "table4",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("ByID(%q) missing", id)
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %q incomplete", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should miss unknown ids")
	}
	if len(All()) != len(want) {
		t.Error("All() length mismatch")
	}
}

func TestTable1ZeroPattern(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Paper Table I: attack 1 detected by Δx1, Δx2 only; attack 2 by Δx3,
	// Δx4 only.
	a1, a2 := rows[0].Residuals, rows[1].Residuals
	const eps = 1e-9
	if !(a1[0] > 0.1 && a1[1] > 0.1 && a1[2] < eps && a1[3] < eps) {
		t.Errorf("attack 1 residual pattern %v does not match Table I", a1)
	}
	if !(a2[0] < eps && a2[1] < eps && a2[2] > 0.1 && a2[3] > 0.1) {
		t.Errorf("attack 2 residual pattern %v does not match Table I", a2)
	}
	// The paper's non-zero residual pairs are nearly equal in magnitude
	// (2.82 vs 2.87); ours must exhibit the same near-equality.
	if math.Abs(a1[0]-a1[1]) > 0.3*math.Max(a1[0], a1[1]) {
		t.Errorf("attack 1 non-zero residuals %v not of comparable magnitude", a1[:2])
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	r, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	wantFlows := []float64{126.56, 173.44, -43.44, -26.56}
	for i, f := range wantFlows {
		if math.Abs(r.FlowsMW[i]-f) > 0.05 {
			t.Errorf("flow %d = %.2f, paper %.2f", i+1, r.FlowsMW[i], f)
		}
	}
	if math.Abs(r.DispatchMW[0]-350) > 1e-3 || math.Abs(r.DispatchMW[1]-150) > 1e-3 {
		t.Errorf("dispatch = %v, paper (350, 150)", r.DispatchMW)
	}
	if math.Abs(r.CostPerHour-11500) > 0.5 {
		t.Errorf("cost = %v, paper 1.15e4", r.CostPerHour)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ g1, cost float64 }{
		{337.37, 11626}, {340.51, 11595}, {348.62, 11514}, {345.95, 11540},
	}
	for i, w := range want {
		if math.Abs(rows[i].DispatchMW[0]-w.g1) > 0.5 {
			t.Errorf("Δx%d: g1 = %.2f, paper %.2f", i+1, rows[i].DispatchMW[0], w.g1)
		}
		if math.Abs(rows[i].CostPerHour-w.cost) > 15 {
			t.Errorf("Δx%d: cost = %.1f, paper %.0f", i+1, rows[i].CostPerHour, w.cost)
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	rows := RunTable4()
	wantBus := []int{1, 2, 3, 6, 8}
	wantPmax := []float64{300, 50, 30, 50, 20}
	wantCost := []float64{20, 30, 40, 50, 35}
	if len(rows) != 5 {
		t.Fatalf("got %d generators", len(rows))
	}
	for i := range rows {
		if rows[i].Bus != wantBus[i] || rows[i].PmaxMW != wantPmax[i] || rows[i].CostPerMWh != wantCost[i] {
			t.Errorf("row %d = %+v, want bus %d Pmax %v cost %v",
				i, rows[i], wantBus[i], wantPmax[i], wantCost[i])
		}
	}
}

func TestFig6QuickMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	cfg := quickFig6(DefaultFig6aConfig())
	rows, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("got %d sweep points", len(rows))
	}
	// γ achieved must be nondecreasing and η'(δ) nondecreasing in γ for
	// every δ (the paper's headline trend).
	for i := 1; i < len(rows); i++ {
		if rows[i].Gamma < rows[i-1].Gamma-1e-6 {
			t.Errorf("gamma not increasing: %v -> %v", rows[i-1].Gamma, rows[i].Gamma)
		}
		for j := range rows[i].Eta {
			if rows[i].Eta[j] < rows[i-1].Eta[j]-0.05 {
				t.Errorf("eta[%d] decreased: %v -> %v (γ %v -> %v)",
					j, rows[i-1].Eta[j], rows[i].Eta[j], rows[i-1].Gamma, rows[i].Gamma)
			}
		}
	}
	// High-γ end must be strongly effective.
	last := rows[len(rows)-1]
	if last.Eta[0] < 0.9 {
		t.Errorf("eta(0.5) = %v at γ=%.2f, want >= 0.9", last.Eta[0], last.Gamma)
	}
}

func TestFig7Variability(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	cfg := DefaultFig7Config()
	cfg.Effectiveness.NumAttacks = 150
	cfg.OPFStarts = 3
	rows, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d trials", len(rows))
	}
	// The paper's point is high across-trial variability: the random keys'
	// γ (and hence η') spread widely, unlike the designed MTD's guarantee.
	minG, maxG := rows[0].Gamma, rows[0].Gamma
	for _, r := range rows {
		if r.Gamma < minG {
			minG = r.Gamma
		}
		if r.Gamma > maxG {
			maxG = r.Gamma
		}
	}
	if maxG-minG < 0.02 {
		t.Errorf("random keyspace γ spread [%v, %v] suspiciously tight", minG, maxG)
	}
	// Every η' curve is monotone non-increasing in δ by construction.
	for _, r := range rows {
		for i := 1; i < len(r.Eta); i++ {
			if r.Eta[i] > r.Eta[i-1]+1e-12 {
				t.Errorf("trial %d: η' increased with δ", r.Trial)
			}
		}
	}
}

func TestFig8SmallFractions(t *testing.T) {
	if testing.Short() {
		t.Skip("keyspace sweep is expensive")
	}
	cfg := DefaultFig8Config()
	cfg.Keys = 100
	cfg.Fig7.Effectiveness.NumAttacks = 150
	cfg.Fig7.OPFStarts = 3
	rows, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: less than ~10% of random keys achieve
	// η'(0.9) >= 0.9.
	for _, r := range rows {
		if r.Delta >= 0.9 && r.Fraction > 0.1 {
			t.Errorf("fraction at δ=%v is %v, expected <= 0.1", r.Delta, r.Fraction)
		}
		if r.Fraction < 0 || r.Fraction > 1 {
			t.Errorf("fraction %v out of range", r.Fraction)
		}
	}
}

func TestFormattersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	rows1, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if err := FormatTable1(&buf, rows1); err != nil {
		t.Fatal(err)
	}
	r2, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if err := FormatTable2(&buf, r2); err != nil {
		t.Fatal(err)
	}
	rows3, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if err := FormatTable3(&buf, rows3); err != nil {
		t.Fatal(err)
	}
	if err := FormatTable4(&buf, RunTable4()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV", "Δx1", "Gen1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFormatEmptySweeps(t *testing.T) {
	var buf bytes.Buffer
	if err := FormatFig6(&buf, "Fig. 6a", nil); err != nil {
		t.Fatal(err)
	}
	if err := FormatFig9(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no feasible sweep points") {
		t.Error("empty-sweep message missing")
	}
}
