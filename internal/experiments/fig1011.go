package experiments

import (
	"fmt"
	"io"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/loadprofile"
	"gridmtd/internal/scenario"
	"gridmtd/internal/sim"
)

// DailyConfig controls the 24-hour simulation behind Figs. 10 and 11.
type DailyConfig struct {
	// Network builds the test case; nil runs the paper's IEEE 14-bus
	// protocol.
	Network func() *grid.Network
	// PeakLoadMW scales the NY-shaped profile (paper: ~220 MW peak on the
	// 14-bus system); 0 picks 85% of the case's base load.
	PeakLoadMW float64
	// Hours restricts the simulation to a subset of profile indices (nil =
	// all 24).
	Hours []int
	// Tune configures the per-hour γ_th tuning; the paper targets
	// η'(0.9) ≥ 0.9.
	Tune core.TuneConfig
	// OPFStarts is the hourly problem-(1) budget.
	OPFStarts int
	// Seed seeds the solvers.
	Seed int64
}

// DefaultDailyConfig returns the paper's Section VII-C protocol.
func DefaultDailyConfig() DailyConfig {
	return DailyConfig{
		PeakLoadMW: 220,
		Tune: core.TuneConfig{
			TargetDelta: 0.9,
			TargetEta:   0.9,
			Iterations:  5,
			Effectiveness: core.EffectivenessConfig{
				NumAttacks: 500,
			},
			Select: core.SelectConfig{Starts: 4},
		},
		OPFStarts: 6,
		Seed:      101,
	}
}

// RunDaily executes the day-long loop and returns the hourly records that
// Figs. 10 and 11 plot. The day is a scenario.Spec: the runner (through
// sim.RunDay) builds the dispatch-OPF engine once for the whole sweep
// instead of once per hour, with records identical to the historical
// per-hour construction (bitwise on the dense backend).
func RunDaily(cfg DailyConfig) ([]sim.HourResult, error) {
	build := cfg.Network
	if build == nil {
		build = grid.CaseIEEE14
	}
	res, err := scenario.NewRunner().Run(scenario.Spec{
		Kind:       scenario.DaySweep,
		Network:    build,
		PeakLoadMW: cfg.PeakLoadMW,
		Hours:      cfg.Hours,
		Warmup:     true,
		Tune:       cfg.Tune,
		OPFStarts:  cfg.OPFStarts,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: daily: %w", err)
	}
	results := make([]sim.HourResult, 0, len(res.Rows))
	for _, r := range res.Rows {
		results = append(results, sim.HourResult{
			Hour:           r.Hour,
			TotalLoadMW:    r.TotalLoadMW,
			BaselineCost:   r.BaselineCost,
			MTDCost:        r.MTDCost,
			CostIncrease:   r.CostIncrease,
			GammaThreshold: r.GammaThreshold,
			GammaOldMTD:    r.Gamma,
			GammaOldNew:    r.GammaOldNew,
			GammaNewMTD:    r.GammaNewMTD,
			Eta:            r.Eta[0],
		})
	}
	return results, nil
}

// FormatFig10 renders the daily load and MTD operational cost (Fig. 10).
func FormatFig10(w io.Writer, rows []sim.HourResult) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			loadprofile.HourLabel(r.Hour),
			f2(r.TotalLoadMW),
			fmt.Sprintf("%.0f", r.BaselineCost),
			fmt.Sprintf("%.0f", r.MTDCost),
			fmt.Sprintf("%.2f%%", 100*r.CostIncrease),
			f3(r.Eta),
		})
	}
	return renderTable(w,
		"Fig. 10: MTD operational cost over a day (NY-shaped trace, target η'(0.9) ≥ 0.9)",
		[]string{"hour", "load (MW)", "C_OPF ($/h)", "C'_OPF ($/h)", "cost increase", "η'(0.9)"}, out)
}

// FormatFig11 renders the three principal-angle series (Fig. 11).
func FormatFig11(w io.Writer, rows []sim.HourResult) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			loadprofile.HourLabel(r.Hour),
			f4(r.GammaOldNew),
			f4(r.GammaOldMTD),
			f4(r.GammaNewMTD),
		})
	}
	return renderTable(w,
		"Fig. 11: principal angles between pre- and post-perturbation measurement matrices",
		[]string{"hour", "γ(Ht,Ht')", "γ(Ht,H't')", "γ(Ht',H't')"}, out)
}

func quickDaily(cfg DailyConfig) DailyConfig {
	cfg.Hours = []int{2, 8, 17} // trough, shoulder, peak
	cfg.Tune.Iterations = 2
	cfg.Tune.Effectiveness.NumAttacks = 100
	cfg.Tune.Select.Starts = 2
	cfg.OPFStarts = 3
	return cfg
}

func init() {
	register(Experiment{
		ID:          "fig10",
		Title:       "Fig. 10: MTD operational cost over a day (IEEE 14-bus, NY-shaped trace)",
		CaseGeneric: true,
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultDailyConfig()
			if opts.Quality == Quick {
				cfg = quickDaily(cfg)
			}
			if net, err := resolveCase(opts.Case); err != nil {
				return err
			} else if net != nil {
				cfg.Network = net
				cfg.PeakLoadMW = 0
			}
			rows, err := RunDaily(cfg)
			if err != nil {
				return err
			}
			return FormatFig10(w, rows)
		},
	})
	register(Experiment{
		ID:          "fig11",
		Title:       "Fig. 11: principal angles over a day (IEEE 14-bus, NY-shaped trace)",
		CaseGeneric: true,
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultDailyConfig()
			if opts.Quality == Quick {
				cfg = quickDaily(cfg)
			}
			if net, err := resolveCase(opts.Case); err != nil {
				return err
			} else if net != nil {
				cfg.Network = net
				cfg.PeakLoadMW = 0
			}
			rows, err := RunDaily(cfg)
			if err != nil {
				return err
			}
			return FormatFig11(w, rows)
		},
	})
}
