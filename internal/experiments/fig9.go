package experiments

import (
	"errors"
	"fmt"
	"io"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/loadprofile"
	"gridmtd/internal/opf"
)

// Fig9Config controls the cost-benefit tradeoff experiment at a single
// hour of the dynamic-load day.
type Fig9Config struct {
	// Network builds the test case; nil runs the paper's IEEE 14-bus
	// protocol.
	Network func() *grid.Network
	// Hour indexes the load profile (paper: 6 PM, index 17).
	Hour int
	// PeakLoadMW scales the profile (paper's trace swings the 14-bus
	// system up to ~220 MW); 0 picks 85% of the case's base load, the same
	// peak-to-base ratio the paper uses.
	PeakLoadMW float64
	// GammaGrid are the sweep's γ_th values.
	GammaGrid []float64
	// Effectiveness configures the η' evaluations.
	Effectiveness core.EffectivenessConfig
	// SelectStarts is the per-point problem-(4) budget.
	SelectStarts int
	// Seed seeds the solvers.
	Seed int64
}

// DefaultFig9Config returns the paper's Fig. 9 protocol: 6 PM load, the
// attacker's knowledge one hour stale (5 PM configuration).
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Hour:         17,
		PeakLoadMW:   220,
		GammaGrid:    gammaGrid(0.05, 0.40, 0.05),
		SelectStarts: 8,
		Seed:         91,
	}
}

// Fig9Row is one tradeoff point.
type Fig9Row struct {
	GammaTarget  float64
	Gamma        float64
	Deltas       []float64
	Eta          []float64
	CostIncrease float64
}

// RunFig9 reproduces Fig. 9: the tradeoff between η'(δ) and the MTD
// operational cost at the 6 PM operating point. The attacker's knowledge
// H_t is the 5 PM no-MTD configuration; cost is measured against the 6 PM
// no-MTD OPF (problem (1)).
func RunFig9(cfg Fig9Config) ([]Fig9Row, error) {
	build := cfg.Network
	if build == nil {
		build = grid.CaseIEEE14
	}
	base := build()
	if cfg.PeakLoadMW <= 0 {
		cfg.PeakLoadMW = 0.85 * base.TotalLoadMW()
	}
	factors, err := loadprofile.ScaleToPeak(loadprofile.NYWinterWeekday(), base.TotalLoadMW(), cfg.PeakLoadMW)
	if err != nil {
		return nil, err
	}
	if cfg.Hour <= 0 || cfg.Hour >= len(factors) {
		return nil, fmt.Errorf("experiments: fig9 hour %d out of range", cfg.Hour)
	}

	// Attacker knowledge: previous hour's no-MTD configuration.
	prevNet := base.Clone()
	prevNet.ScaleLoads(factors[cfg.Hour-1])
	prev, err := opf.SolveDFACTS(prevNet, opf.DFACTSConfig{Starts: cfg.SelectStarts, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig9 previous-hour OPF: %w", err)
	}
	zOld, err := core.OperatingMeasurements(prevNet, prev.Reactances)
	if err != nil {
		return nil, err
	}

	// Current hour.
	net := base.Clone()
	net.ScaleLoads(factors[cfg.Hour])
	noMTD, err := opf.SolveDFACTS(net, opf.DFACTSConfig{Starts: cfg.SelectStarts, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig9 current-hour OPF: %w", err)
	}

	effCfg := cfg.Effectiveness
	effCfg.Seed = cfg.Seed
	attacks, err := core.SampleAttacks(net, prev.Reactances, zOld, effCfg)
	if err != nil {
		return nil, err
	}

	rows := make([]Fig9Row, 0, len(cfg.GammaGrid)+1)
	var warm [][]float64
	appendPoint := func(sel *core.Selection, target float64) error {
		eff, err := core.EvaluateAttacks(net, attacks, sel.Reactances, effCfg)
		if err != nil {
			return err
		}
		rows = append(rows, Fig9Row{
			GammaTarget:  target,
			Gamma:        eff.Gamma,
			Deltas:       eff.Deltas,
			Eta:          eff.Eta,
			CostIncrease: sel.CostIncrease,
		})
		warm = [][]float64{net.DFACTSSetting(sel.Reactances)}
		return nil
	}

	exhausted := false
	for _, gth := range cfg.GammaGrid {
		sel, err := core.SelectMTD(net, prev.Reactances, core.SelectConfig{
			GammaThreshold: gth,
			Starts:         cfg.SelectStarts,
			Seed:           cfg.Seed,
			BaselineCost:   noMTD.CostPerHour,
			WarmStarts:     warm,
		})
		if errors.Is(err, core.ErrConstraintUnreachable) {
			exhausted = true
			break
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 γ_th=%.2f: %w", gth, err)
		}
		if err := appendPoint(sel, gth); err != nil {
			return nil, err
		}
	}
	if exhausted {
		sel, err := core.MaxGamma(net, prev.Reactances, core.MaxGammaConfig{
			Starts: cfg.SelectStarts, Seed: cfg.Seed, BaselineCost: noMTD.CostPerHour,
		})
		if errors.Is(err, opf.ErrInfeasible) {
			// The max-γ corner cannot be operated on this case's ratings;
			// the tradeoff ends at the last reachable threshold.
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		if err := appendPoint(sel, 0); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatFig9 renders the tradeoff series (cost vs effectiveness).
// caseLabel overrides the system named in the title ("" keeps the paper's
// IEEE 14-bus label).
func FormatFig9(w io.Writer, caseLabel string, rows []Fig9Row) error {
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "Fig. 9: no feasible sweep points")
		return err
	}
	headers := []string{"γ_target", "γ(Ht,H't')"}
	for _, d := range rows[0].Deltas {
		headers = append(headers, fmt.Sprintf("η'(δ=%.2f)", d))
	}
	headers = append(headers, "OPF cost increase")
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		target := f2(r.GammaTarget)
		if r.GammaTarget == 0 {
			target = "max"
		}
		cells := []string{target, f3(r.Gamma)}
		for _, e := range r.Eta {
			cells = append(cells, f3(e))
		}
		cells = append(cells, fmt.Sprintf("%.2f%%", 100*r.CostIncrease))
		out = append(out, cells)
	}
	label := "IEEE 14-bus"
	if caseLabel != "" {
		label = "case " + caseLabel
	}
	return renderTable(w,
		fmt.Sprintf("Fig. 9: tradeoff between MTD effectiveness and operational cost, %s, 6 PM load", label),
		headers, out)
}

func init() {
	register(Experiment{
		ID:          "fig9",
		Title:       "Fig. 9: effectiveness vs operational cost tradeoff at 6 PM (IEEE 14-bus)",
		CaseGeneric: true,
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultFig9Config()
			if opts.Quality == Quick {
				cfg.GammaGrid = []float64{0.1, 0.25, 0.4}
				cfg.Effectiveness.NumAttacks = 100
				cfg.SelectStarts = 2
			}
			if net, err := resolveCase(opts.Case); err != nil {
				return err
			} else if net != nil {
				cfg.Network = net
				cfg.PeakLoadMW = 0 // 85% of the case's base load
			}
			rows, err := RunFig9(cfg)
			if err != nil {
				return err
			}
			return FormatFig9(w, opts.Case, rows)
		},
	})
}
