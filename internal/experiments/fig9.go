package experiments

import (
	"fmt"
	"io"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/scenario"
)

// Fig9Config controls the cost-benefit tradeoff experiment at a single
// hour of the dynamic-load day.
type Fig9Config struct {
	// Network builds the test case; nil runs the paper's IEEE 14-bus
	// protocol.
	Network func() *grid.Network
	// Hour indexes the load profile (paper: 6 PM, index 17).
	Hour int
	// PeakLoadMW scales the profile (paper's trace swings the 14-bus
	// system up to ~220 MW); 0 picks 85% of the case's base load, the same
	// peak-to-base ratio the paper uses.
	PeakLoadMW float64
	// GammaGrid are the sweep's γ_th values.
	GammaGrid []float64
	// Effectiveness configures the η' evaluations.
	Effectiveness core.EffectivenessConfig
	// SelectStarts is the per-point problem-(4) budget.
	SelectStarts int
	// Seed seeds the solvers.
	Seed int64
}

// DefaultFig9Config returns the paper's Fig. 9 protocol: 6 PM load, the
// attacker's knowledge one hour stale (5 PM configuration).
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Hour:         17,
		PeakLoadMW:   220,
		GammaGrid:    gammaGrid(0.05, 0.40, 0.05),
		SelectStarts: 8,
		Seed:         91,
	}
}

// Fig9Row is one tradeoff point.
type Fig9Row struct {
	GammaTarget  float64
	Gamma        float64
	Deltas       []float64
	Eta          []float64
	CostIncrease float64
}

// RunFig9 reproduces Fig. 9: the tradeoff between η'(δ) and the MTD
// operational cost at the 6 PM operating point. The attacker's knowledge
// H_t is the 5 PM no-MTD configuration; cost is measured against the 6 PM
// no-MTD OPF (problem (1)). The whole protocol — both hourly OPFs and the
// γ sweep — is one scenario.Spec sharing a single dispatch engine.
func RunFig9(cfg Fig9Config) ([]Fig9Row, error) {
	build := cfg.Network
	if build == nil {
		build = grid.CaseIEEE14
	}
	effCfg := cfg.Effectiveness
	effCfg.Seed = cfg.Seed
	res, err := scenario.NewRunner().Run(scenario.Spec{
		Kind:            scenario.GammaSweep,
		Network:         build,
		PeakLoadMW:      cfg.PeakLoadMW,
		Hour:            cfg.Hour,
		StaleAttacker:   true,
		GammaGrid:       cfg.GammaGrid,
		CapWithMaxGamma: true,
		SelectStarts:    cfg.SelectStarts,
		Seed:            cfg.Seed,
		OPFStarts:       cfg.SelectStarts,
		OPFSeed:         cfg.Seed,
		Effectiveness:   effCfg,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig9: %w", err)
	}
	rows := make([]Fig9Row, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, Fig9Row{
			GammaTarget:  r.GammaTarget,
			Gamma:        r.Gamma,
			Deltas:       r.Deltas,
			Eta:          r.Eta,
			CostIncrease: r.CostIncrease,
		})
	}
	return rows, nil
}

// FormatFig9 renders the tradeoff series (cost vs effectiveness).
// caseLabel overrides the system named in the title ("" keeps the paper's
// IEEE 14-bus label).
func FormatFig9(w io.Writer, caseLabel string, rows []Fig9Row) error {
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "Fig. 9: no feasible sweep points")
		return err
	}
	headers := []string{"γ_target", "γ(Ht,H't')"}
	for _, d := range rows[0].Deltas {
		headers = append(headers, fmt.Sprintf("η'(δ=%.2f)", d))
	}
	headers = append(headers, "OPF cost increase")
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		target := f2(r.GammaTarget)
		if r.GammaTarget == 0 {
			target = "max"
		}
		cells := []string{target, f3(r.Gamma)}
		for _, e := range r.Eta {
			cells = append(cells, f3(e))
		}
		cells = append(cells, fmt.Sprintf("%.2f%%", 100*r.CostIncrease))
		out = append(out, cells)
	}
	label := "IEEE 14-bus"
	if caseLabel != "" {
		label = "case " + caseLabel
	}
	return renderTable(w,
		fmt.Sprintf("Fig. 9: tradeoff between MTD effectiveness and operational cost, %s, 6 PM load", label),
		headers, out)
}

func init() {
	register(Experiment{
		ID:          "fig9",
		Title:       "Fig. 9: effectiveness vs operational cost tradeoff at 6 PM (IEEE 14-bus)",
		CaseGeneric: true,
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultFig9Config()
			if opts.Quality == Quick {
				cfg.GammaGrid = []float64{0.1, 0.25, 0.4}
				cfg.Effectiveness.NumAttacks = 100
				cfg.SelectStarts = 2
			}
			if net, err := resolveCase(opts.Case); err != nil {
				return err
			} else if net != nil {
				cfg.Network = net
				cfg.PeakLoadMW = 0 // 85% of the case's base load
			}
			rows, err := RunFig9(cfg)
			if err != nil {
				return err
			}
			return FormatFig9(w, opts.Case, rows)
		},
	})
}
