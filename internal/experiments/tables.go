package experiments

import (
	"fmt"
	"io"

	"gridmtd/internal/attack"
	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
	"gridmtd/internal/se"
)

// motivatingPerturbations returns the four single-line +20% reactance
// vectors of the paper's Section IV-B example.
func motivatingPerturbations(n *grid.Network) [][]float64 {
	out := make([][]float64, n.L())
	for line := 0; line < n.L(); line++ {
		x := n.Reactances()
		x[line] *= 1.2
		out[line] = x
	}
	return out
}

// Table1Row holds one attack's BDD residuals under the four MTDs.
type Table1Row struct {
	// Attack labels the injected vector.
	Attack string
	// C is the state perturbation (over all four buses; slack first).
	C []float64
	// Residuals are the noiseless BDD residuals r'(1..4) under the four
	// single-line perturbations.
	Residuals []float64
}

// RunTable1 reproduces Table I: the residuals of two attacks crafted on the
// pre-perturbation 4-bus matrix, evaluated (noiselessly) under each of the
// four single-line +20% MTD perturbations. The zero pattern — attack 1
// exposed only by perturbing lines 1-2, attack 2 only by lines 3-4 — is the
// paper's motivating observation.
func RunTable1() ([]Table1Row, error) {
	n := grid.Case4GS()
	h := n.MeasurementMatrix(n.Reactances())
	// Reduced state space drops the slack (bus 1) entry.
	attacks := []struct {
		label string
		cFull []float64
		cRed  []float64
	}{
		{"attack 1", []float64{0, 1, 1, 1}, []float64{1, 1, 1}},
		{"attack 2", []float64{0, 0, 0, 1}, []float64{0, 0, 1}},
	}
	rows := make([]Table1Row, 0, len(attacks))
	for _, a := range attacks {
		av := attack.Craft(h, a.cRed)
		res := make([]float64, 0, n.L())
		for _, x := range motivatingPerturbations(n) {
			est, err := se.NewEstimator(n.MeasurementMatrix(x))
			if err != nil {
				return nil, fmt.Errorf("experiments: table1 estimator: %w", err)
			}
			res = append(res, est.ResidualComponent(av.A))
		}
		rows = append(rows, Table1Row{Attack: a.label, C: a.cFull, Residuals: res})
	}
	return rows, nil
}

// FormatTable1 renders Table I.
func FormatTable1(w io.Writer, rows []Table1Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells := []string{r.Attack}
		for _, v := range r.Residuals {
			cells = append(cells, f2(v))
		}
		out = append(out, cells)
	}
	return renderTable(w,
		"Table I: BDD residual values (noiseless) under MTD Δx(1..4), 4-bus system",
		[]string{"", "r'(1)", "r'(2)", "r'(3)", "r'(4)"}, out)
}

// Table2Result holds the pre-perturbation operating point of the 4-bus
// system (paper Table II).
type Table2Result struct {
	FlowsMW     []float64
	DispatchMW  []float64
	CostPerHour float64
}

// RunTable2 reproduces Table II: the pre-perturbation OPF of the 4-bus
// system (flows, dispatch, cost).
func RunTable2() (*Table2Result, error) {
	n := grid.Case4GS()
	res, err := opf.SolveDispatch(n, n.Reactances())
	if err != nil {
		return nil, fmt.Errorf("experiments: table2 OPF: %w", err)
	}
	return &Table2Result{
		FlowsMW:     res.FlowsMW,
		DispatchMW:  res.DispatchMW,
		CostPerHour: res.CostPerHour,
	}, nil
}

// FormatTable2 renders Table II.
func FormatTable2(w io.Writer, r *Table2Result) error {
	row := []string{}
	for _, f := range r.FlowsMW {
		row = append(row, f2(f))
	}
	for _, g := range r.DispatchMW {
		row = append(row, f2(g))
	}
	row = append(row, fmt.Sprintf("%.4g", r.CostPerHour))
	return renderTable(w,
		"Table II: pre-perturbation power flows, generator dispatch and OPF cost, 4-bus system",
		[]string{"Line1 (MW)", "Line2 (MW)", "Line3 (MW)", "Line4 (MW)", "Gen1 (MW)", "Gen2 (MW)", "Cost ($)"},
		[][]string{row})
}

// Table3Row holds the post-perturbation dispatch and cost for one MTD.
type Table3Row struct {
	MTD         string
	DispatchMW  []float64
	CostPerHour float64
}

// RunTable3 reproduces Table III: generator dispatch and OPF cost after
// each of the four single-line +20% perturbations. One dispatch engine
// serves all four solves — the engine reads the reactances as an explicit
// argument, so the per-line WithReactances clones of the historical loop
// are unnecessary and the results are bitwise identical.
func RunTable3() ([]Table3Row, error) {
	n := grid.Case4GS()
	engine, err := opf.NewDispatchEngine(n)
	if err != nil {
		return nil, fmt.Errorf("experiments: table3 engine: %w", err)
	}
	rows := make([]Table3Row, 0, n.L())
	for line, x := range motivatingPerturbations(n) {
		res, err := engine.Solve(x)
		if err != nil {
			return nil, fmt.Errorf("experiments: table3 OPF for Δx%d: %w", line+1, err)
		}
		rows = append(rows, Table3Row{
			MTD:         fmt.Sprintf("Δx%d", line+1),
			DispatchMW:  res.DispatchMW,
			CostPerHour: res.CostPerHour,
		})
	}
	return rows, nil
}

// FormatTable3 renders Table III.
func FormatTable3(w io.Writer, rows []Table3Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.MTD, f2(r.DispatchMW[0]), f2(r.DispatchMW[1]),
			fmt.Sprintf("%.5g", r.CostPerHour),
		})
	}
	return renderTable(w,
		"Table III: post-perturbation generator dispatch and OPF cost, 4-bus system",
		[]string{"MTD", "Gen1 (MW)", "Gen2 (MW)", "Cost ($)"}, out)
}

// Table4Row echoes one generator's parameters (paper Table IV is an input
// table; reproducing it verifies the embedded configuration).
type Table4Row struct {
	Bus        int
	PmaxMW     float64
	CostPerMWh float64
}

// RunTable4 returns the 14-bus generator parameters.
func RunTable4() []Table4Row {
	n := grid.CaseIEEE14()
	rows := make([]Table4Row, 0, len(n.Gens))
	for _, g := range n.Gens {
		rows = append(rows, Table4Row{Bus: g.Bus, PmaxMW: g.MaxMW, CostPerMWh: g.CostPerMWh})
	}
	return rows
}

// FormatTable4 renders Table IV.
func FormatTable4(w io.Writer, rows []Table4Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Bus), f2(r.PmaxMW), f2(r.CostPerMWh),
		})
	}
	return renderTable(w,
		"Table IV: generator parameters, IEEE 14-bus system",
		[]string{"Gen. bus", "Pmax (MW)", "ci ($/MWh)"}, out)
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I: BDD residuals of prior attacks under four single-line MTDs (4-bus)",
		Run: func(w io.Writer, _ Options) error {
			rows, err := RunTable1()
			if err != nil {
				return err
			}
			return FormatTable1(w, rows)
		},
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table II: pre-perturbation flows, dispatch and OPF cost (4-bus)",
		Run: func(w io.Writer, _ Options) error {
			r, err := RunTable2()
			if err != nil {
				return err
			}
			return FormatTable2(w, r)
		},
	})
	register(Experiment{
		ID:    "table3",
		Title: "Table III: post-perturbation dispatch and OPF cost (4-bus)",
		Run: func(w io.Writer, _ Options) error {
			rows, err := RunTable3()
			if err != nil {
				return err
			}
			return FormatTable3(w, rows)
		},
	})
	register(Experiment{
		ID:    "table4",
		Title: "Table IV: generator parameters (IEEE 14-bus)",
		Run: func(w io.Writer, _ Options) error {
			return FormatTable4(w, RunTable4())
		},
	})
}
