package experiments

import (
	"fmt"
	"io"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/impact"
	"gridmtd/internal/opf"
	"gridmtd/internal/scenario"
)

// ImpactConfig controls the Section VII-D damage quantification.
type ImpactConfig struct {
	// PeakLoadMW sets the operating point (the paper's discussion assumes
	// a stressed system; the evening peak is used).
	PeakLoadMW float64
	// Impact configures the attacker model.
	Impact impact.Config
	// OPFStarts is the problem-(1) budget.
	OPFStarts int
	// Seed seeds the solvers.
	Seed int64
}

// DefaultImpactConfig returns the Section VII-D setup: the 14-bus system
// under stressed loading and the paper's 8% attack budget. 250 MW makes
// the bus-1 export limit (160 + 60 MW thermal ratings) bind no matter how
// the D-FACTS devices are set — the irreducible congestion that
// load-redistribution attacks exploit (the cited attack studies likewise
// evaluate congested systems).
func DefaultImpactConfig() ImpactConfig {
	return ImpactConfig{
		PeakLoadMW: 250,
		Impact:     impact.Config{Candidates: 300, Seed: 121},
		OPFStarts:  8,
		Seed:       121,
	}
}

// ImpactResult pairs the worst-case attack damage with the MTD premium it
// should be weighed against (the paper's insurance argument).
type ImpactResult struct {
	Attack *impact.Result
	// MTDPremium is the operational cost of an MTD tuned for
	// η'(0.9) ≥ 0.9 at the same operating point.
	MTDPremium float64
	// MTDEta is the tuned MTD's achieved η'(0.9).
	MTDEta float64
}

// RunImpact quantifies the damage of a successful stealthy attack
// (Section VII-D cites up to ~28% OPF cost increase from the
// load-redistribution literature) and the MTD premium that insures
// against it.
func RunImpact(cfg ImpactConfig) (*ImpactResult, error) {
	n := grid.CaseIEEE14()
	factor := cfg.PeakLoadMW / n.TotalLoadMW()
	n.ScaleLoads(factor)

	// One dispatch engine serves the stressed-system OPF and every solve
	// of the γ-threshold tuning below.
	engine, err := opf.NewDispatchEngine(n)
	if err != nil {
		return nil, fmt.Errorf("experiments: impact engine: %w", err)
	}
	pre, err := opf.SolveDFACTSEngine(engine, opf.DFACTSConfig{Starts: cfg.OPFStarts, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: impact OPF: %w", err)
	}
	z, err := core.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		return nil, err
	}

	worst, err := impact.WorstCase(n, pre.Reactances, z, cfg.Impact)
	if err != nil {
		return nil, err
	}

	sel, eff, err := core.TuneGammaThresholdWith(core.NewEnginesShared(n, pre.Reactances, engine), n, pre.Reactances, z, core.TuneConfig{
		TargetDelta:   0.9,
		TargetEta:     0.9,
		Iterations:    4,
		Effectiveness: core.EffectivenessConfig{NumAttacks: 300, Seed: cfg.Seed},
		Select: core.SelectConfig{
			Starts:       4,
			Seed:         cfg.Seed,
			BaselineCost: pre.CostPerHour,
		},
	})
	if err != nil {
		return nil, err
	}
	return &ImpactResult{
		Attack:     worst,
		MTDPremium: sel.CostIncrease,
		MTDEta:     eff.Eta[0],
	}, nil
}

// FormatImpact renders the insurance comparison.
func FormatImpact(w io.Writer, r *ImpactResult) error {
	rows := [][]string{
		{"undetected-attack cost increase", fmt.Sprintf("%.2f%%", 100*r.Attack.CostIncrease)},
		{"  overloaded branches (pre-correction)", fmt.Sprintf("%d", len(r.Attack.OverloadedLines))},
		{"  emergency load shed", fmt.Sprintf("%.1f MW", r.Attack.ShedMW)},
		{"MTD premium for η'(0.9) ≥ 0.9", fmt.Sprintf("%.2f%%", 100*r.MTDPremium)},
		{"  achieved η'(0.9)", f3(r.MTDEta)},
	}
	return renderTable(w,
		"Section VII-D: worst-case stealthy-attack damage vs MTD insurance premium (IEEE 14-bus, stressed loading)",
		[]string{"quantity", "value"}, rows)
}

// LearningRow is one point of the attacker-learning curve.
type LearningRow struct {
	Samples       int
	SubspaceError float64
}

// RunLearning reproduces the Section IV-A argument on the given network:
// the attacker's subspace-estimation error vs number of eavesdropped
// measurements, and the staleness induced by one max-γ MTD perturbation.
// A nil network runs the paper's IEEE 14-bus protocol. The curve and the
// staleness probe form one Learning scenario.
func RunLearning(n *grid.Network, seed int64, sampleGrid []int) ([]LearningRow, float64, error) {
	build := func() *grid.Network { return grid.CaseIEEE14() }
	if n != nil {
		build = func() *grid.Network { return n }
	}
	res, err := scenario.NewRunner().Run(scenario.Spec{
		Kind:              scenario.Learning,
		Network:           build,
		SampleGrid:        sampleGrid,
		LearnSigma:        0.0015,
		LearnJitterMW:     2,
		Seed:              seed,
		ProbeStarts:       4,
		ProbeSeed:         seed,
		ProbeBaselineCost: 1,
	})
	if err != nil {
		return nil, 0, err
	}
	rows := make([]LearningRow, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, LearningRow{Samples: r.Samples, SubspaceError: r.SubspaceError})
	}
	stale := 0.0
	if res.Learning != nil {
		stale = res.Learning.Stale
	}
	return rows, stale, nil
}

// FormatLearning renders the learning curve. caseLabel overrides the
// system named in the title ("" keeps the paper's IEEE 14-bus label).
func FormatLearning(w io.Writer, caseLabel string, rows []LearningRow, stale float64) error {
	label := "IEEE 14-bus"
	if caseLabel != "" {
		label = "case " + caseLabel
	}
	out := make([][]string, 0, len(rows)+1)
	for _, r := range rows {
		out = append(out, []string{fmt.Sprintf("%d", r.Samples), f4(r.SubspaceError)})
	}
	if err := renderTable(w,
		fmt.Sprintf("Section IV-A: attacker subspace-learning error vs eavesdropped samples (%s)", label),
		[]string{"samples", "γ(estimate, true H)"}, out); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "after one max-γ MTD perturbation the learned model is stale: γ(estimate, new H) = %.3f\n\n", stale)
	return err
}

func init() {
	register(Experiment{
		ID:    "impact",
		Title: "Extension (Sec. VII-D): stealthy-attack damage vs MTD premium (IEEE 14-bus)",
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultImpactConfig()
			if opts.Quality == Quick {
				cfg.Impact.Candidates = 50
				cfg.OPFStarts = 3
			}
			r, err := RunImpact(cfg)
			if err != nil {
				return err
			}
			return FormatImpact(w, r)
		},
	})
	register(Experiment{
		ID:          "learning",
		Title:       "Extension (Sec. IV-A): attacker subspace learning vs MTD staleness (IEEE 14-bus)",
		CaseGeneric: true,
		Run: func(w io.Writer, opts Options) error {
			gridSamples := []int{15, 30, 60, 120, 250, 500, 1000}
			if opts.Quality == Quick {
				gridSamples = []int{15, 60, 250}
			}
			var n *grid.Network
			if net, err := resolveCase(opts.Case); err != nil {
				return err
			} else if net != nil {
				n = net()
				// The subspace method needs at least N-1 samples; rebuild
				// the grid starting just above the case's state dimension
				// and doubling, as the paper's 14-bus grid does.
				steps := len(gridSamples)
				gridSamples = gridSamples[:0]
				for k, i := (n.N()-1)+(n.N()-1)/5+1, 0; i < steps; k, i = 2*k, i+1 {
					gridSamples = append(gridSamples, k)
				}
			}
			rows, stale, err := RunLearning(n, 131, gridSamples)
			if err != nil {
				return err
			}
			return FormatLearning(w, opts.Case, rows, stale)
		},
	})
}
