package experiments

import (
	"fmt"
	"io"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/scenario"
)

// Fig7Config controls the random-perturbation baseline comparison.
type Fig7Config struct {
	// Trials is the number of random perturbations plotted (paper: 5).
	Trials int
	// CostBudget is the keyspace's relative OPF-cost allowance (paper:
	// perturbations "within 2% of the optimal value", i.e. 0.02).
	CostBudget float64
	// DeltaGrid is the δ axis.
	DeltaGrid []float64
	// Effectiveness configures the η' evaluation.
	Effectiveness core.EffectivenessConfig
	// Seed seeds the key sampler.
	Seed int64
	// OPFStarts is the pre-perturbation problem-(1) budget.
	OPFStarts int
}

// DefaultFig7Config returns the paper's Fig. 7 protocol.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		Trials:     5,
		CostBudget: 0.02,
		DeltaGrid:  gammaGrid(0.05, 0.95, 0.05),
		Seed:       71,
		OPFStarts:  8,
	}
}

// Fig7Row is one random trial's η'(δ) curve.
type Fig7Row struct {
	Trial int
	Gamma float64
	Eta   []float64 // aligned with the configured DeltaGrid
}

// fig7Spec translates a Fig7Config into the RandomKeys scenario the runner
// executes: one shared dispatch engine serves the pre-perturbation OPF and
// every keyspace draw, one attack set serves every evaluation.
func fig7Spec(cfg Fig7Config, trials int) scenario.Spec {
	effCfg := cfg.Effectiveness
	effCfg.Deltas = cfg.DeltaGrid
	effCfg.Seed = cfg.Seed
	return scenario.Spec{
		Kind:          scenario.RandomKeys,
		Network:       func() *grid.Network { return grid.CaseIEEE14() },
		Trials:        trials,
		CostBudget:    cfg.CostBudget,
		OPFStarts:     cfg.OPFStarts,
		OPFSeed:       cfg.Seed,
		Seed:          cfg.Seed,
		Effectiveness: effCfg,
	}
}

// RunFig7 reproduces Fig. 7: η'(δ) for a handful of random keyspace
// perturbations (prior work's MTD — random D-FACTS settings whose OPF cost
// stays within 2% of the optimum), showing high across-trial variability.
func RunFig7(cfg Fig7Config) ([]Fig7Row, error) {
	res, err := scenario.NewRunner().Run(fig7Spec(cfg, cfg.Trials))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7: %w", err)
	}
	rows := make([]Fig7Row, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, Fig7Row{Trial: r.Trial, Gamma: r.Gamma, Eta: r.Eta})
	}
	return rows, nil
}

// FormatFig7 renders the per-trial curves.
func FormatFig7(w io.Writer, cfg Fig7Config, rows []Fig7Row) error {
	headers := []string{"δ"}
	for _, r := range rows {
		headers = append(headers, fmt.Sprintf("trial %d (γ=%.3f)", r.Trial, r.Gamma))
	}
	out := make([][]string, 0, len(cfg.DeltaGrid))
	for i, d := range cfg.DeltaGrid {
		cells := []string{f2(d)}
		for _, r := range rows {
			cells = append(cells, f3(r.Eta[i]))
		}
		out = append(out, cells)
	}
	return renderTable(w,
		"Fig. 7: η'(δ) under five random keyspace MTD perturbations (2% cost budget), IEEE 14-bus",
		headers, out)
}

// Fig8Config controls the keyspace experiment.
type Fig8Config struct {
	// Keys is the keyspace size (paper: 500 random perturbations).
	Keys int
	// EtaTarget is the effectiveness bar (paper: η'(δ) >= 0.9).
	EtaTarget float64
	Fig7      Fig7Config
}

// DefaultFig8Config returns the paper's Fig. 8 protocol.
func DefaultFig8Config() Fig8Config {
	cfg := DefaultFig7Config()
	cfg.Seed = 81
	return Fig8Config{Keys: 500, EtaTarget: 0.9, Fig7: cfg}
}

// Fig8Row is one δ point: the fraction of random keys that meet the bar.
type Fig8Row struct {
	Delta    float64
	Fraction float64
}

// RunFig8 reproduces Fig. 8: the fraction of the random-perturbation
// keyspace achieving η'(δ) ≥ 0.9, as a function of δ — the same RandomKeys
// scenario as Fig. 7 at keyspace scale, aggregated per δ.
func RunFig8(cfg Fig8Config) ([]Fig8Row, error) {
	f7 := cfg.Fig7
	res, err := scenario.NewRunner().Run(fig7Spec(f7, cfg.Keys))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig8: %w", err)
	}
	counts := make([]int, len(f7.DeltaGrid))
	for _, r := range res.Rows {
		for i := range f7.DeltaGrid {
			if r.Eta[i] >= cfg.EtaTarget {
				counts[i]++
			}
		}
	}
	rows := make([]Fig8Row, len(f7.DeltaGrid))
	for i, d := range f7.DeltaGrid {
		rows[i] = Fig8Row{Delta: d, Fraction: float64(counts[i]) / float64(cfg.Keys)}
	}
	return rows, nil
}

// FormatFig8 renders the keyspace fractions.
func FormatFig8(w io.Writer, cfg Fig8Config, rows []Fig8Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{f2(r.Delta), f3(r.Fraction)})
	}
	return renderTable(w,
		fmt.Sprintf("Fig. 8: fraction of %d random keyspace perturbations (2%% cost budget) with η'(δ) ≥ %.1f, IEEE 14-bus",
			cfg.Keys, cfg.EtaTarget),
		[]string{"δ", "fraction of keys"}, out)
}

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Fig. 7: η'(δ) under five random MTD perturbations (IEEE 14-bus)",
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultFig7Config()
			if opts.Quality == Quick {
				cfg.Effectiveness.NumAttacks = 100
				cfg.OPFStarts = 3
				cfg.DeltaGrid = gammaGrid(0.1, 0.9, 0.2)
			}
			rows, err := RunFig7(cfg)
			if err != nil {
				return err
			}
			return FormatFig7(w, cfg, rows)
		},
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Fig. 8: fraction of random keyspace achieving η'(δ) ≥ 0.9 (IEEE 14-bus)",
		Run: func(w io.Writer, opts Options) error {
			cfg := DefaultFig8Config()
			if opts.Quality == Quick {
				cfg.Keys = 50
				cfg.Fig7.Effectiveness.NumAttacks = 100
				cfg.Fig7.OPFStarts = 3
				cfg.Fig7.DeltaGrid = gammaGrid(0.1, 0.9, 0.2)
			}
			rows, err := RunFig8(cfg)
			if err != nil {
				return err
			}
			return FormatFig8(w, cfg, rows)
		},
	})
}
