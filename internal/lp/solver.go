package lp

import (
	"math"

	"gridmtd/internal/mat"
)

// Solver is a reusable dense two-phase simplex solver. The MTD selection
// search solves thousands of structurally identical dispatch LPs; a Solver
// keeps the standard-form arrays, the tableau, the reduced-cost row and the
// basis bookkeeping alive across solves so the steady-state per-solve
// allocation is just the returned Solution. The pivot sequence is exactly
// the one package-level Solve has always performed (Bland's rule,
// identical tie-breaking), so solutions are bitwise identical to the
// historical solver.
//
// A Solver is not safe for concurrent use; use one per goroutine.
type Solver struct {
	// Standard-form model: min cᵀy s.t. Ay = b, y >= 0.
	vmap     []varMap
	upperCol []int
	upperRhs []float64
	a        []float64 // m×n, flat row-major
	b        []float64
	c        []float64
	m, n     int
	orig     int
	// Simplex scratch.
	tab   []float64 // m×width flat tableau with artificials and RHS
	z     []float64 // reduced-cost row, length width
	basis []int
	nzIdx []int // nonzero pivot-row columns, rebuilt per pivot
	y     []float64
}

// NewSolver returns an empty solver; buffers are grown on first use.
func NewSolver() *Solver { return &Solver{} }

// Solve solves the problem, reusing the solver's buffers. See the
// package-level Solve for the error contract.
func (s *Solver) Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.toStandardForm(p)
	y, err := s.simplex()
	if err != nil {
		return nil, err
	}
	orig := s.recover(y)
	obj := mat.Dot(p.C, orig)
	return &Solution{X: orig, Objective: obj, Status: StatusOptimal}, nil
}

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// toStandardForm rewrites the problem as min cᵀy s.t. Ay = b, y >= 0 into
// the solver's buffers, mirroring the historical conversion exactly.
func (s *Solver) toStandardForm(p *Problem) {
	n := len(p.C)
	s.orig = n

	// Assign standard-form columns for the original variables.
	if cap(s.vmap) < n {
		s.vmap = make([]varMap, n)
	}
	s.vmap = s.vmap[:n]
	s.upperCol = s.upperCol[:0]
	s.upperRhs = s.upperRhs[:0]
	cols := 0
	for j := 0; j < n; j++ {
		lo, up := p.bound(j)
		switch {
		case !math.IsInf(lo, -1):
			s.vmap[j] = varMap{kind: 0, col: cols, shift: lo}
			if !math.IsInf(up, 1) {
				s.upperCol = append(s.upperCol, cols)
				s.upperRhs = append(s.upperRhs, up-lo)
			}
			cols++
		case !math.IsInf(up, 1):
			s.vmap[j] = varMap{kind: 1, col: cols, shift: up}
			cols++
		default:
			s.vmap[j] = varMap{kind: 2, col: cols}
			cols += 2
		}
	}

	nEq := 0
	if p.Aeq != nil {
		nEq = p.Aeq.Rows()
	}
	nUb := 0
	if p.Aub != nil {
		nUb = p.Aub.Rows()
	}
	nUp := len(s.upperCol)
	mRows := nEq + nUb + nUp
	nCols := cols + nUb + nUp // slacks for <= rows and upper-bound rows
	s.m, s.n = mRows, nCols

	s.a = growF(s.a, mRows*nCols)
	for i := range s.a {
		s.a[i] = 0
	}
	s.b = growF(s.b, mRows)
	s.c = growF(s.c, nCols)
	for i := range s.c {
		s.c[i] = 0
	}

	// Objective in terms of standard-form variables, dropping the constant
	// from the shifts (added back in recover()).
	for j := 0; j < n; j++ {
		vm := s.vmap[j]
		switch vm.kind {
		case 0:
			s.c[vm.col] += p.C[j]
		case 1:
			s.c[vm.col] -= p.C[j]
		case 2:
			s.c[vm.col] += p.C[j]
			s.c[vm.col+1] -= p.C[j]
		}
	}

	// setRow expands original-variable coefficients into standard form,
	// returning the RHS adjustment caused by shifts.
	setRow := func(row []float64, coeffs func(j int) float64) (rhsAdjust float64) {
		for j := 0; j < n; j++ {
			v := coeffs(j)
			if v == 0 {
				continue
			}
			vm := s.vmap[j]
			switch vm.kind {
			case 0: // x = lo + y
				row[vm.col] += v
				rhsAdjust += v * vm.shift
			case 1: // x = up - y
				row[vm.col] -= v
				rhsAdjust += v * vm.shift
			case 2: // x = y+ - y-
				row[vm.col] += v
				row[vm.col+1] -= v
			}
		}
		return rhsAdjust
	}

	r := 0
	for i := 0; i < nEq; i++ {
		row := s.a[r*nCols : (r+1)*nCols]
		adj := setRow(row, func(j int) float64 { return p.Aeq.At(i, j) })
		s.b[r] = p.Beq[i] - adj
		r++
	}
	for i := 0; i < nUb; i++ {
		row := s.a[r*nCols : (r+1)*nCols]
		adj := setRow(row, func(j int) float64 { return p.Aub.At(i, j) })
		s.b[r] = p.Bub[i] - adj
		row[cols+i] = 1 // slack
		r++
	}
	for i := 0; i < nUp; i++ {
		row := s.a[r*nCols : (r+1)*nCols]
		row[s.upperCol[i]] = 1
		row[cols+nUb+i] = 1 // slack
		s.b[r] = s.upperRhs[i]
		r++
	}

	// Normalize to b >= 0.
	for i := 0; i < mRows; i++ {
		if s.b[i] < 0 {
			s.b[i] = -s.b[i]
			row := s.a[i*nCols : (i+1)*nCols]
			for j := range row {
				row[j] = -row[j]
			}
		}
	}
}

// recover maps a standard-form solution back to original variables.
func (s *Solver) recover(y []float64) []float64 {
	x := make([]float64, s.orig)
	for j := 0; j < s.orig; j++ {
		vm := s.vmap[j]
		switch vm.kind {
		case 0:
			x[j] = vm.shift + y[vm.col]
		case 1:
			x[j] = vm.shift - y[vm.col]
		case 2:
			x[j] = y[vm.col] - y[vm.col+1]
		}
	}
	return x
}

// simplex runs phase 1 (artificial variables) then phase 2, returning the
// standard-form solution vector (owned by the solver). Once phase 1 ends
// the artificial columns are never read again, so the drive-out and
// phase-2 pivots restrict their updates to the live columns [0, n) plus
// the right-hand side — a pure dead-store elimination that leaves every
// live value bitwise unchanged.
func (s *Solver) simplex() ([]float64, error) {
	m, n := s.m, s.n
	if m == 0 {
		// No constraints: minimum is at y = 0 unless some cost is negative,
		// in which case the LP is unbounded.
		for _, cj := range s.c[:n] {
			if cj < -pivotTol {
				return nil, ErrUnbounded
			}
		}
		s.y = growF(s.y, n)
		for i := range s.y {
			s.y[i] = 0
		}
		return s.y, nil
	}

	// Tableau with artificial variables appended: columns [0,n) original,
	// [n, n+m) artificial, last column RHS. Every row gets an artificial:
	// seeding the basis with row slacks instead would start phase 1 from a
	// different vertex and reach the optimum along a different pivot path,
	// whose accumulated roundoff differs in the last bits — enough to
	// perturb the derivative-free searches built on top. Reproducibility
	// wins over the shorter phase 1 here.
	//
	// Phase 1 runs optimistically: under Bland's rule an artificial column
	// (index >= n, i.e. above every real column) is selected to enter only
	// when no real column has negative reduced cost — a pathological
	// re-entry that a feasible problem essentially never exercises. The
	// optimistic pass therefore scans only the real columns and skips
	// maintaining the artificial block entirely (those columns are written
	// but never read before the fallback check). If it ends with the
	// phase-1 objective still positive — the one situation where the
	// artificial pivots the optimistic pass cannot perform could matter —
	// the tableau is rebuilt and phase 1 reruns with full maintenance,
	// reproducing the historical sequence exactly.
	width := n + m + 1
	s.tab = growF(s.tab, m*width)
	tab := s.tab
	s.basis = growI(s.basis, m)
	basis := s.basis
	s.z = growF(s.z, width)
	z := s.z
	initPhase1 := func(full bool) {
		for i := 0; i < m; i++ {
			row := tab[i*width : (i+1)*width]
			copy(row, s.a[i*n:(i+1)*n])
			for j := n; j < width-1; j++ {
				row[j] = 0
			}
			row[n+i] = 1
			basis[i] = n + i
			row[width-1] = s.b[i]
		}
		// Phase 1 objective: minimize the sum of artificials. Reduced-cost
		// row z[j] = -Σ_i tab[i][j], with +1 for the artificial columns.
		// The optimistic pass needs only the real columns and the RHS.
		hi := n
		if full {
			hi = width - 1
		}
		for j := 0; j < hi; j++ {
			var sum float64
			for i := 0; i < m; i++ {
				sum += tab[i*width+j]
			}
			z[j] = -sum
		}
		if full {
			for j := n; j < n+m; j++ {
				z[j] += 1
			}
		}
		var sum float64
		for i := 0; i < m; i++ {
			sum += tab[i*width+width-1]
		}
		z[width-1] = -sum
	}

	initPhase1(false)
	if err := s.pivotLoop(tab, z, basis, m, width, n, n); err != nil {
		return nil, err
	}
	if -z[width-1] > feasTol {
		// The optimistic pass could not reach feasibility without the
		// artificial columns; rerun phase 1 exactly.
		initPhase1(true)
		if err := s.pivotLoop(tab, z, basis, m, width, width-1, n+m); err != nil {
			return nil, err
		}
		if -z[width-1] > feasTol { // phase-1 objective value
			return nil, ErrInfeasible
		}
	}

	// Drive any artificial variables out of the basis. The artificial
	// columns are dead from here on: nothing after the feasibility check
	// reads them, so the remaining pivots update only the live columns.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		for j := 0; j < n; j++ {
			if math.Abs(tab[i*width+j]) > pivotTol {
				s.doPivot(tab, z, basis, m, width, n, i, j)
				break
			}
		}
		// If no pivot column was found the row is redundant: harmless,
		// the basis keeps a zero-valued artificial.
	}

	// Phase 2: rebuild the reduced-cost row for the real objective and
	// forbid artificial columns from entering.
	for j := 0; j < n; j++ {
		z[j] = s.c[j]
	}
	for j := n; j < width; j++ {
		z[j] = 0
	}
	for i := 0; i < m; i++ {
		bi := basis[i]
		var cb float64
		if bi < n {
			cb = s.c[bi]
		}
		if cb == 0 {
			continue
		}
		row := tab[i*width : (i+1)*width]
		for j := 0; j < n; j++ {
			z[j] -= cb * row[j]
		}
		z[width-1] -= cb * row[width-1]
	}
	if err := s.pivotLoop(tab, z, basis, m, width, n, n); err != nil {
		return nil, err
	}

	s.y = growF(s.y, n)
	y := s.y
	for i := range y {
		y[i] = 0
	}
	for i, bi := range basis {
		if bi < n {
			y[bi] = tab[i*width+width-1]
			if y[bi] < 0 && y[bi] > -feasTol {
				y[bi] = 0
			}
		}
	}
	return y, nil
}

// pivotLoop runs simplex pivots with Bland's rule until no entering
// column among [0, limit) has negative reduced cost. live is the number of
// leading tableau columns still updated by pivots (the RHS column is
// always updated); limit never exceeds live.
func (s *Solver) pivotLoop(tab, z []float64, basis []int, m, width, live, limit int) error {
	for iter := 0; iter < maxSimplex; iter++ {
		// Bland's rule: smallest-index entering variable.
		enter := -1
		for j := 0; j < limit; j++ {
			if z[j] < -pivotTol {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test; ties broken by smallest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			aij := tab[i*width+enter]
			if aij <= pivotTol {
				continue
			}
			ratio := tab[i*width+width-1] / aij
			if ratio < best-1e-12 || (math.Abs(ratio-best) <= 1e-12 && (leave == -1 || basis[i] < basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave == -1 {
			return ErrUnbounded
		}
		s.doPivot(tab, z, basis, m, width, live, leave, enter)
	}
	return ErrMaxIterations
}

// doPivot performs a Gauss-Jordan pivot on tab[row][col], updating the
// leading live columns plus the RHS of every row, the reduced-cost row and
// the basis bookkeeping. The nonzero columns of the scaled pivot row are
// collected once and only those columns are eliminated: subtracting f·0
// can only flip the sign of an existing zero, which no comparison or
// recovered solution observes, so results are unchanged while the (often
// sparse) early pivots touch a fraction of the tableau.
func (s *Solver) doPivot(tab, z []float64, basis []int, m, width, live, row, col int) {
	rhs := width - 1
	prow := tab[row*width : (row+1)*width]
	pv := prow[col]
	inv := 1 / pv
	if cap(s.nzIdx) < live+1 {
		s.nzIdx = make([]int, 0, width)
	}
	nz := s.nzIdx[:0]
	for j := 0; j < live; j++ {
		if v := prow[j] * inv; v != 0 {
			prow[j] = v
			nz = append(nz, j)
		} else {
			prow[j] = v
		}
	}
	prow[rhs] *= inv
	if prow[rhs] != 0 {
		nz = append(nz, rhs)
	}
	s.nzIdx = nz
	prow[col] = 1 // exact
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		trow := tab[i*width : (i+1)*width]
		f := trow[col]
		if f == 0 {
			continue
		}
		for _, j := range nz {
			trow[j] -= f * prow[j]
		}
		trow[col] = 0 // exact
	}
	f := z[col]
	if f != 0 {
		for _, j := range nz {
			z[j] -= f * prow[j]
		}
		z[col] = 0
	}
	basis[row] = col
}
