package lp

import (
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/mat"
)

// TestDualBoundRejectionsMatchExactSolves is the dual-bound screen's
// safety property, mirroring TestPrescreenRejectionsMatchExactSolves:
// every candidate the probe certifies above a threshold must, on a fresh
// exact solve, either have an optimal objective strictly above that
// threshold or be infeasible (whose search objective is the infeasible
// sentinel, above any screenable threshold by construction). The
// candidates are randomized perturbations — RHS jitter, bound shifts and
// constraint-matrix noise — around a solved base problem, so the
// certificates are tested against data they were NOT captured from.
func TestDualBoundRejectionsMatchExactSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	screened, admitted := 0, 0
	for trial := 0; trial < 60; trial++ {
		n, nUb := 3+rng.Intn(6), 1+rng.Intn(6)
		base := randomBoundedLP(rng, n, nUb)
		rs := NewRevisedSolver()
		sol, err := rs.Solve(base)
		if err != nil {
			continue
		}
		if len(rs.certs) == 0 {
			t.Fatalf("trial %d: verified solve captured no dual certificate", trial)
		}

		for k := 0; k < 15; k++ {
			cand := cloneProblem(base)
			cand.Beq[0] *= 0.7 + 0.6*rng.Float64()
			for i := range cand.Bub {
				cand.Bub[i] += 0.3 * (2*rng.Float64() - 1)
			}
			for j := range cand.C {
				cand.C[j] *= 1 + 0.1*(2*rng.Float64()-1)
			}
			if rng.Intn(2) == 0 {
				r := rng.Intn(len(cand.Bub))
				row := cand.Aub.RowView(r)
				row[rng.Intn(n)] += 0.05 * (2*rng.Float64() - 1)
			}
			// Thresholds straddle the base optimum so both verdicts occur.
			threshold := sol.Objective * (0.8 + 0.4*rng.Float64())
			bound, hit := rs.DualBoundExceeds(cand, threshold)
			if !hit {
				admitted++
				continue
			}
			screened++
			fresh := NewRevisedSolver()
			exact, err := fresh.Solve(cand)
			switch {
			case err == nil:
				if exact.Objective <= threshold {
					t.Fatalf("trial %d/%d: screen certified bound %.9g > threshold %.9g but exact optimum is %.9g",
						trial, k, bound, threshold, exact.Objective)
				}
				if bound > exact.Objective+1e-9*(1+math.Abs(exact.Objective)) {
					t.Fatalf("trial %d/%d: 'lower bound' %.9g exceeds the exact optimum %.9g",
						trial, k, bound, exact.Objective)
				}
			case errorsIsInfeasible(err):
				// Infeasible candidate: its LP has no cost at all; the
				// screen's claim "the cost cannot beat the threshold" holds
				// vacuously (search objectives map infeasibility to a
				// sentinel above every screenable threshold).
			default:
				t.Fatalf("trial %d/%d: exact solve failed unexpectedly: %v", trial, k, err)
			}
		}
	}
	if screened == 0 {
		t.Fatal("property test never exercised a bound screen")
	}
	if admitted == 0 {
		t.Fatal("property test never exercised an admitted candidate")
	}
	t.Logf("bound screen rejected %d candidates, admitted %d", screened, admitted)
}

func errorsIsInfeasible(err error) bool { return err == ErrInfeasible }

// TestDualBoundCounters pins the probe/screen counter semantics: every
// DualBoundExceeds call is one BoundProbes, only certifying calls add a
// BoundScreens, and neither touches Solves.
func TestDualBoundCounters(t *testing.T) {
	mk := func(b float64) *Problem {
		return &Problem{
			C:     []float64{1, 2},
			Aeq:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
			Beq:   []float64{b},
			Lower: []float64{0, 0},
			Upper: []float64{1, 1},
		}
	}
	rs := NewRevisedSolver()
	sol, err := rs.Solve(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 1 {
		t.Fatalf("base optimum %v, want 1", sol.Objective)
	}
	// The optimum of mk(1.9) is 1 + 2·0.9 = 2.8; either optimal basis of
	// the base problem carries duals bounding it well above 1.5.
	if bound, hit := rs.DualBoundExceeds(mk(1.9), 1.5); !hit {
		t.Fatal("expected the dual bound to certify the perturbed-RHS candidate above 1.5")
	} else if bound <= 1.5 {
		t.Fatalf("certified bound %v not above the threshold", bound)
	}
	// Same candidate against an unreachable threshold: probe, no screen.
	if _, hit := rs.DualBoundExceeds(mk(1.9), 10); hit {
		t.Fatal("dual bound certified a candidate above a threshold beyond its optimum")
	}
	s := rs.Stats()
	if s.BoundProbes != 2 || s.BoundScreens != 1 {
		t.Fatalf("probe/screen counters: %+v", s)
	}
	if s.Solves != 1 {
		t.Fatalf("probes must not count as solves: %+v", s)
	}
	// +Inf threshold (the search's "must be exact" sentinel) never probes.
	if _, hit := rs.DualBoundExceeds(mk(3), math.Inf(1)); hit {
		t.Fatal("screened against +Inf threshold")
	}
	if s := rs.Stats(); s.BoundProbes != 2 {
		t.Fatalf("+Inf threshold should not count a probe: %+v", s)
	}
}

// TestFarkasIndexRetainsDistinctCauses exercises the structural-cause
// index: rays for distinct causes coexist instead of evicting each other,
// a refreshed ray supersedes its cause's stale predecessor in place, and
// PrescreenProbes counts the revalidation work.
func TestFarkasIndexRetainsDistinctCauses(t *testing.T) {
	mk := func(b float64) *Problem {
		return &Problem{
			C:     []float64{1, 1},
			Aeq:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
			Beq:   []float64{b},
			Lower: []float64{0, 0},
			Upper: []float64{1, 1},
		}
	}
	rs := NewRevisedSolver()
	if _, err := rs.Solve(mk(1)); err != nil {
		t.Fatal(err)
	}
	// Same structural cause certified at two RHS levels: the index keeps
	// one ray for it, refreshed in place.
	if _, err := rs.Solve(mk(5)); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if len(rs.rays) != 1 {
		t.Fatalf("after first capture: %d rays, want 1", len(rs.rays))
	}
	cause := rs.rays[0].cause
	// A screened re-probe is answered from the index (prescreen runs
	// before Solves counts it) and counts its probe.
	before := rs.Stats()
	if _, err := rs.Solve(mk(6)); err != ErrInfeasible {
		t.Fatalf("want screened ErrInfeasible, got %v", err)
	}
	d := rs.Stats().Delta(before)
	if d.PrescreenHits != 1 || d.PrescreenProbes != 1 || d.Solves != 0 {
		t.Fatalf("screened probe delta: %+v", d)
	}
	if len(rs.rays) != 1 || rs.rays[0].cause != cause {
		t.Fatalf("screened probe disturbed the index: %d rays", len(rs.rays))
	}
}
