package lp

import (
	"math"

	"gridmtd/internal/mat"
)

// WarmSolver is a Problem solver that can reuse the optimal basis of the
// previous solve to start the next one. The MTD selection search solves
// long runs of near-identical dispatch LPs (one Nelder-Mead walk perturbs
// a handful of PTDF coefficients per step), where re-solving from the
// previous optimal basis takes a few pivots instead of a full two-phase
// tableau pass. Invalidate drops the warm state; callers that need results
// independent of the solve history (e.g. the deterministic parallel
// multi-start driver) must call it at their determinism boundaries — the
// dispatch engine resets at the start of every local search.
type WarmSolver interface {
	// Solve solves the problem with the package-level Solve error contract.
	Solve(p *Problem) (*Solution, error)
	// Invalidate drops the warm basis; the next Solve starts cold.
	Invalidate()
}

// RevisedStats counts what the revised solver actually did — tests assert
// the warm path is exercised and PERF.md reports pivot counts from it.
type RevisedStats struct {
	// Solves is the total number of Solve calls.
	Solves int
	// WarmSolves counts solves completed by the revised warm path.
	WarmSolves int
	// ColdSolves counts solves delegated to the flat tableau solver
	// (first solve, structural change, or fallback).
	ColdSolves int
	// Fallbacks counts warm attempts abandoned mid-flight (singular or
	// stalled basis, failed verification) that then re-solved cold.
	Fallbacks int
	// PrimalPivots and DualPivots count warm-path simplex pivots.
	PrimalPivots int
	DualPivots   int
}

// Variable statuses of the bounded-variable revised simplex. Slack
// variables (one per inequality row, bounds [0, +Inf)) follow the
// structural variables in the status array.
const (
	stLower int8 = iota // nonbasic at lower bound
	stUpper             // nonbasic at upper bound
	stBasic
)

const (
	warmMaxIter = 2000
	// ratioTie is the ratio-test tie band, matching the flat solver.
	ratioTie = 1e-12
)

// RevisedSolver is a bounded-variable revised-simplex solver with
// cross-solve basis warm-starting. It works on the row geometry of the
// Problem directly (equality rows plus slack-extended inequality rows,
// structural variables kept inside their bounds) instead of the flat
// solver's standard form, and it never materializes a tableau: each
// iteration factors only the small "working matrix" — active rows ×
// basic structural columns, at most n×n however many inequality rows the
// problem has — because the basic slack columns are unit vectors.
//
// The first solve (and any solve after Invalidate, a structural change, or
// a warm failure) delegates to the embedded flat tableau Solver — the
// historical reference implementation — and crashes a warm basis out of
// its optimal tableau. Subsequent solves restart from the previous optimal
// basis: if the perturbed problem leaves it primal feasible the primal
// simplex finishes in a few pivots; if the perturbation makes it primal
// infeasible but it is still dual feasible, the dual simplex recovers
// feasibility first. Every warm result is verified against the original
// problem (primal feasibility, bound satisfaction, and the reduced-cost
// optimality certificate); any doubt — singular working matrix, stalled
// loop, failed check — falls back to an exact cold solve, so the solver
// never returns an unverified warm answer.
//
// A RevisedSolver is not safe for concurrent use; use one per goroutine.
type RevisedSolver struct {
	cold  Solver
	stats RevisedStats

	// Warm state: statuses per variable (structural then slacks) for the
	// problem signature below.
	hasBasis           bool
	status             []int8
	sigN, sigEq, sigUb int

	// Per-solve model arrays, length nTot = n + nUb.
	lo, up, c []float64
	x, d      []float64
	// Basis bookkeeping.
	activeRows  []int  // eq rows + inequality rows whose slack is nonbasic
	basicStruct []int  // basic structural columns, ascending
	isBasicCol  []bool // length n
	w           mat.Dense
	lu          mat.LU
	// Scratch vectors sized to the working dimension k or nTot.
	rhs, sol, yAct, colAct, wSlack, rho, alpha []float64
	// Tolerances, refreshed per solve from the problem scale.
	ptol, dtol float64
}

// NewRevisedSolver returns an empty solver; buffers grow on first use.
func NewRevisedSolver() *RevisedSolver { return &RevisedSolver{} }

// Stats returns the cumulative solve counters.
func (s *RevisedSolver) Stats() RevisedStats { return s.stats }

// Invalidate drops the warm basis; the next Solve runs cold.
func (s *RevisedSolver) Invalidate() { s.hasBasis = false }

// Solve solves the problem, warm-starting from the previous optimal basis
// when one is available and structurally compatible. The error contract is
// that of the package-level Solve.
func (s *RevisedSolver) Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.stats.Solves++
	n := len(p.C)
	nEq, nUb := 0, 0
	if p.Aeq != nil {
		nEq = p.Aeq.Rows()
	}
	if p.Aub != nil {
		nUb = p.Aub.Rows()
	}
	if s.hasBasis && (n != s.sigN || nEq != s.sigEq || nUb != s.sigUb) {
		s.hasBasis = false
	}
	s.sigN, s.sigEq, s.sigUb = n, nEq, nUb

	if nEq+nUb == 0 || !s.warmEligible(p) {
		// Unconstrained problems never touch the tableau basis, and free
		// variables have no bound to park a nonbasic status at; both stay
		// on the flat path with no warm state.
		s.hasBasis = false
		s.stats.ColdSolves++
		return s.cold.Solve(p)
	}

	if s.hasBasis {
		if sol, ok := s.warmSolve(p); ok {
			s.stats.WarmSolves++
			return sol, nil
		}
		s.stats.Fallbacks++
		s.hasBasis = false
	}
	return s.coldSolve(p)
}

// coldSolve delegates to the flat tableau solver and crashes a warm basis
// from its optimal tableau.
func (s *RevisedSolver) coldSolve(p *Problem) (*Solution, error) {
	s.stats.ColdSolves++
	sol, err := s.cold.Solve(p)
	if err != nil {
		s.hasBasis = false
		return nil, err
	}
	s.hasBasis = s.crashFromCold(p)
	return sol, nil
}

// warmEligible reports whether every variable has at least one finite
// bound (the nonbasic statuses need a bound to sit at).
func (s *RevisedSolver) warmEligible(p *Problem) bool {
	for j := range p.C {
		lo, up := p.bound(j)
		if math.IsInf(lo, -1) && math.IsInf(up, 1) {
			return false
		}
	}
	return true
}

// crashFromCold derives bounded-form variable statuses from the flat
// solver's final basis. Returns false when no clean basis exists (an
// artificial column is still basic — a redundant row — or the status
// count does not form a basis).
func (s *RevisedSolver) crashFromCold(p *Problem) bool {
	c := &s.cold
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	nUp := len(c.upperCol)
	stdN := c.n
	cols := stdN - nUb - nUp

	// Membership of the final tableau basis over standard-form columns.
	inBasis := make([]bool, stdN)
	for _, b := range c.basis {
		if b >= stdN {
			return false // artificial stuck in basis: redundant row
		}
		inBasis[b] = true
	}
	// Upper-bound row index per standard-form column.
	upOf := make([]int, cols)
	for i := range upOf {
		upOf[i] = -1
	}
	for i, col := range c.upperCol {
		upOf[col] = i
	}

	nTot := n + nUb
	s.status = growI8(s.status, nTot)
	count := 0
	for j := 0; j < n; j++ {
		vm := c.vmap[j]
		switch vm.kind {
		case 0: // x = lo + y
			switch {
			case !inBasis[vm.col]:
				s.status[j] = stLower
			case upOf[vm.col] >= 0 && !inBasis[cols+nUb+upOf[vm.col]]:
				// y basic at its upper-row RHS: the variable sits at its
				// upper bound, nonbasic in the bounded form.
				s.status[j] = stUpper
			default:
				s.status[j] = stBasic
				count++
			}
		case 1: // x = up - y
			if inBasis[vm.col] {
				s.status[j] = stBasic
				count++
			} else {
				s.status[j] = stUpper
			}
		default: // free split: warmEligible filtered these out
			return false
		}
	}
	for i := 0; i < nUb; i++ {
		if inBasis[cols+i] {
			s.status[n+i] = stBasic
			count++
		} else {
			s.status[n+i] = stLower
		}
	}
	return count == nEq+nUb
}

// ---- Warm path ------------------------------------------------------------

// warmSolve re-solves p from the stored statuses. ok=false means "fall
// back to a cold solve" for any reason, including warm-detected
// infeasibility (the cold path re-derives and reports it exactly).
func (s *RevisedSolver) warmSolve(p *Problem) (*Solution, bool) {
	n := s.sigN
	s.setupModel(p)
	if err := s.factorBasis(p); err != nil {
		return nil, false
	}
	s.computeX(p)
	s.computeDualsAndReducedCosts(p)

	pf := s.primalFeasible()
	df := s.dualFeasible()
	switch {
	case pf:
		if s.primalLoop(p) != nil {
			return nil, false
		}
	case df:
		if s.dualLoop(p) != nil {
			return nil, false
		}
		if s.primalLoop(p) != nil {
			return nil, false
		}
	default:
		return nil, false
	}
	if !s.verify(p) {
		return nil, false
	}
	xOut := make([]float64, n)
	copy(xOut, s.x[:n])
	return &Solution{X: xOut, Objective: mat.Dot(p.C, xOut), Status: StatusOptimal}, true
}

// setupModel fills the per-variable bound and cost arrays and the
// scale-aware tolerances.
func (s *RevisedSolver) setupModel(p *Problem) {
	n, nUb := s.sigN, s.sigUb
	nTot := n + nUb
	s.lo = growF(s.lo, nTot)
	s.up = growF(s.up, nTot)
	s.c = growF(s.c, nTot)
	s.x = growF(s.x, nTot)
	s.d = growF(s.d, nTot)
	var cScale float64
	for j := 0; j < n; j++ {
		s.lo[j], s.up[j] = p.bound(j)
		s.c[j] = p.C[j]
		if a := math.Abs(p.C[j]); a > cScale {
			cScale = a
		}
	}
	for i := 0; i < nUb; i++ {
		s.lo[n+i], s.up[n+i] = 0, math.Inf(1)
		s.c[n+i] = 0
	}
	var bScale float64
	for _, v := range p.Beq {
		if a := math.Abs(v); a > bScale {
			bScale = a
		}
	}
	for _, v := range p.Bub {
		if a := math.Abs(v); a > bScale {
			bScale = a
		}
	}
	for j := 0; j < n; j++ {
		if a := math.Abs(s.lo[j]); a > bScale && !math.IsInf(a, 1) {
			bScale = a
		}
		if a := math.Abs(s.up[j]); a > bScale && !math.IsInf(a, 1) {
			bScale = a
		}
	}
	s.ptol = feasTol * (1 + bScale)
	s.dtol = feasTol * (1 + cScale)
}

// rowView returns row r of the stacked [Aeq; Aub] constraint matrix.
func (s *RevisedSolver) rowView(p *Problem, r int) []float64 {
	if r < s.sigEq {
		return p.Aeq.RowView(r)
	}
	return p.Aub.RowView(r - s.sigEq)
}

// rowRHS returns the right-hand side of stacked row r.
func (s *RevisedSolver) rowRHS(p *Problem, r int) float64 {
	if r < s.sigEq {
		return p.Beq[r]
	}
	return p.Bub[r-s.sigEq]
}

// factorBasis rebuilds the active-row and basic-column lists from the
// statuses and factors the working matrix W = A[active rows, basic
// structural columns]. Any structural defect (cardinality mismatch,
// singular W) is an error that sends the caller cold.
func (s *RevisedSolver) factorBasis(p *Problem) error {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	s.activeRows = s.activeRows[:0]
	for r := 0; r < nEq; r++ {
		s.activeRows = append(s.activeRows, r)
	}
	for i := 0; i < nUb; i++ {
		if s.status[n+i] != stBasic {
			s.activeRows = append(s.activeRows, nEq+i)
		}
	}
	s.basicStruct = s.basicStruct[:0]
	if cap(s.isBasicCol) < n {
		s.isBasicCol = make([]bool, n)
	}
	s.isBasicCol = s.isBasicCol[:n]
	for j := 0; j < n; j++ {
		s.isBasicCol[j] = s.status[j] == stBasic
		if s.isBasicCol[j] {
			s.basicStruct = append(s.basicStruct, j)
		}
	}
	k := len(s.activeRows)
	if len(s.basicStruct) != k {
		return ErrMaxIterations // structural defect; exact error unused
	}
	s.w.ReuseAs(k, k)
	wd := s.w.RawData()
	for a, r := range s.activeRows {
		rv := s.rowView(p, r)
		row := wd[a*k : (a+1)*k]
		for b, j := range s.basicStruct {
			row[b] = rv[j]
		}
	}
	if k == 0 {
		return nil
	}
	return s.lu.Reset(&s.w)
}

// computeX sets every variable's value from the statuses: nonbasic at
// bounds, basic structurals from the working-matrix solve, basic slacks
// from their row residuals.
func (s *RevisedSolver) computeX(p *Problem) {
	n, nUb := s.sigN, s.sigUb
	for j := 0; j < n+nUb; j++ {
		switch s.status[j] {
		case stLower:
			s.x[j] = s.lo[j]
		case stUpper:
			s.x[j] = s.up[j]
		}
	}
	k := len(s.activeRows)
	s.rhs = growF(s.rhs, k)
	s.sol = growF(s.sol, k)
	for a, r := range s.activeRows {
		rv := s.rowView(p, r)
		sum := s.rowRHS(p, r)
		for j := 0; j < n; j++ {
			if !s.isBasicCol[j] {
				sum -= rv[j] * s.x[j]
			}
		}
		s.rhs[a] = sum
	}
	if k > 0 {
		s.lu.SolveInto(s.sol, s.rhs)
		for b, j := range s.basicStruct {
			s.x[j] = s.sol[b]
		}
	}
	for i := 0; i < nUb; i++ {
		if s.status[n+i] != stBasic {
			continue
		}
		rv := p.Aub.RowView(i)
		sum := p.Bub[i]
		for j := 0; j < n; j++ {
			sum -= rv[j] * s.x[j]
		}
		s.x[n+i] = sum
	}
}

// computeDualsAndReducedCosts solves Wᵀy = c_B for the active-row duals
// and prices every column: d = c − yᵀA (zero dual on inactive rows).
func (s *RevisedSolver) computeDualsAndReducedCosts(p *Problem) {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	k := len(s.activeRows)
	s.yAct = growF(s.yAct, k)
	s.rhs = growF(s.rhs, k)
	for b, j := range s.basicStruct {
		s.rhs[b] = s.c[j]
	}
	if k > 0 {
		s.lu.SolveTransposeInto(s.yAct, s.rhs)
	}
	copy(s.d[:n], s.c[:n])
	for i := 0; i < nUb; i++ {
		s.d[n+i] = 0
	}
	for a, r := range s.activeRows {
		y := s.yAct[a]
		if y != 0 {
			mat.AxpyVec(-y, s.rowView(p, r), s.d[:n])
		}
		if r >= nEq {
			s.d[n+(r-nEq)] = -y
		}
	}
}

// primalFeasible reports whether every basic variable is inside its
// bounds (nonbasic variables sit on a bound by construction).
func (s *RevisedSolver) primalFeasible() bool {
	for j, st := range s.status[:s.sigN+s.sigUb] {
		if st != stBasic {
			continue
		}
		if s.x[j] < s.lo[j]-s.ptol || s.x[j] > s.up[j]+s.ptol {
			return false
		}
	}
	return true
}

// dualFeasible reports whether the reduced costs certify the current
// basis: nonnegative at lower bounds, nonpositive at upper bounds.
func (s *RevisedSolver) dualFeasible() bool {
	for j, st := range s.status[:s.sigN+s.sigUb] {
		switch st {
		case stLower:
			if s.d[j] < -s.dtol && s.up[j] > s.lo[j] {
				return false
			}
		case stUpper:
			if s.d[j] > s.dtol && s.up[j] > s.lo[j] {
				return false
			}
		}
	}
	return true
}

// computeColumn computes the basis-inverse image of column q: the working
// solve gives the basic-structural components (into s.sol) and the basic
// slack components are the row residuals (into s.wSlack, indexed by
// inequality row).
func (s *RevisedSolver) computeColumn(p *Problem, q int) {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	k := len(s.activeRows)
	s.colAct = growF(s.colAct, k)
	s.sol = growF(s.sol, k)
	if q < n {
		for a, r := range s.activeRows {
			s.colAct[a] = s.rowView(p, r)[q]
		}
	} else {
		// Slack column: unit vector on its (active) row.
		for a := range s.colAct {
			s.colAct[a] = 0
		}
		row := nEq + (q - n)
		for a, r := range s.activeRows {
			if r == row {
				s.colAct[a] = 1
				break
			}
		}
	}
	if k > 0 {
		s.lu.SolveInto(s.sol, s.colAct)
	}
	s.wSlack = growF(s.wSlack, nUb)
	for i := 0; i < nUb; i++ {
		if s.status[n+i] != stBasic {
			s.wSlack[i] = 0
			continue
		}
		rv := p.Aub.RowView(i)
		var v float64
		if q < n {
			v = rv[q]
		}
		for b, j := range s.basicStruct {
			v -= rv[j] * s.sol[b]
		}
		s.wSlack[i] = v
	}
}

// primalLoop runs bounded-variable primal simplex pivots (Bland's rule)
// from a primal-feasible basis until optimality. Each iteration refactors
// the working matrix and recomputes values and prices from scratch — the
// matrix is at most n×n, so freshness is cheaper than update formulas are
// risky. A nil return means the statuses describe an optimal basis and
// s.x/s.d hold fresh values for it.
func (s *RevisedSolver) primalLoop(p *Problem) error {
	n := s.sigN
	nTot := n + s.sigUb
	for iter := 0; iter < warmMaxIter; iter++ {
		// Entering variable: Bland's smallest index with an improving
		// reduced cost. Fixed variables (lo == up) cannot move.
		enter := -1
		var sigma float64
		for j := 0; j < nTot; j++ {
			switch s.status[j] {
			case stLower:
				if s.d[j] < -s.dtol && s.up[j] > s.lo[j] {
					enter, sigma = j, 1
				}
			case stUpper:
				if s.d[j] > s.dtol && s.up[j] > s.lo[j] {
					enter, sigma = j, -1
				}
			}
			if enter >= 0 {
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		s.computeColumn(p, enter)

		// Ratio test: the entering variable moves by t >= 0 toward its
		// opposite bound; basic variables move at rate -sigma * w.
		tBest := s.up[enter] - s.lo[enter] // own-range bound flip, may be +Inf
		leave, leaveAtUpper := -1, false
		consider := func(j int, rate float64) {
			var ratio float64
			var hitsUpper bool
			switch {
			case rate < -pivotTol:
				if math.IsInf(s.lo[j], -1) {
					return
				}
				ratio = (s.x[j] - s.lo[j]) / -rate
			case rate > pivotTol:
				if math.IsInf(s.up[j], 1) {
					return
				}
				ratio = (s.up[j] - s.x[j]) / rate
				hitsUpper = true
			default:
				return
			}
			if ratio < 0 {
				ratio = 0 // degenerate overshoot from roundoff
			}
			if ratio < tBest-ratioTie || (ratio <= tBest+ratioTie && (leave == -1 || j < leave)) {
				tBest = ratio
				leave = j
				leaveAtUpper = hitsUpper
			}
		}
		for b, j := range s.basicStruct {
			consider(j, -sigma*s.sol[b])
		}
		for i := 0; i < s.sigUb; i++ {
			if s.status[n+i] == stBasic {
				consider(n+i, -sigma*s.wSlack[i])
			}
		}
		if math.IsInf(tBest, 1) {
			return ErrUnbounded
		}
		s.stats.PrimalPivots++
		if leave < 0 {
			// Bound flip: the entering variable crosses its own range
			// before any basic variable blocks.
			if s.status[enter] == stLower {
				s.status[enter] = stUpper
			} else {
				s.status[enter] = stLower
			}
		} else {
			s.status[enter] = stBasic
			if leaveAtUpper {
				s.status[leave] = stUpper
			} else {
				s.status[leave] = stLower
			}
		}
		if err := s.factorBasis(p); err != nil {
			return err
		}
		s.computeX(p)
		s.computeDualsAndReducedCosts(p)
	}
	return ErrMaxIterations
}

// dualLoop runs bounded-variable dual simplex pivots from a dual-feasible
// basis until primal feasibility — the recovery path when a perturbed
// candidate makes the previous optimal basis primal infeasible. A nil
// return means s.x is primal feasible for the current statuses.
func (s *RevisedSolver) dualLoop(p *Problem) error {
	n, nEq := s.sigN, s.sigEq
	nTot := n + s.sigUb
	for iter := 0; iter < warmMaxIter; iter++ {
		// Leaving variable: smallest-index basic variable outside its
		// bounds (Bland-style anti-cycling for the dual method).
		leave := -1
		var belowLower bool
		for j := 0; j < nTot; j++ {
			if s.status[j] != stBasic {
				continue
			}
			if s.x[j] < s.lo[j]-s.ptol {
				leave, belowLower = j, true
				break
			}
			if s.x[j] > s.up[j]+s.ptol {
				leave, belowLower = j, false
				break
			}
		}
		if leave < 0 {
			return nil // primal feasible
		}

		// Row direction: rho = B^-T e_leave over the active rows, with an
		// extra unit weight on the leaving slack's own (inactive) row.
		k := len(s.activeRows)
		s.rho = growF(s.rho, k)
		s.rhs = growF(s.rhs, k)
		extraRow := -1
		if leave < n {
			pos := -1
			for b, j := range s.basicStruct {
				if j == leave {
					pos = b
					break
				}
			}
			if pos < 0 {
				return ErrMaxIterations
			}
			for a := range s.rhs {
				s.rhs[a] = 0
			}
			s.rhs[pos] = 1
			if k > 0 {
				s.lu.SolveTransposeInto(s.rho, s.rhs)
			}
		} else {
			extraRow = nEq + (leave - n)
			rv := p.Aub.RowView(leave - n)
			for b, j := range s.basicStruct {
				s.rhs[b] = rv[j]
			}
			if k > 0 {
				s.lu.SolveTransposeInto(s.rho, s.rhs)
			}
			for a := range s.rho {
				s.rho[a] = -s.rho[a]
			}
		}

		// alpha_j = rho . A[:, j] for every nonbasic column.
		s.alpha = growF(s.alpha, nTot)
		for j := 0; j < n; j++ {
			s.alpha[j] = 0
		}
		for a, r := range s.activeRows {
			if s.rho[a] != 0 {
				mat.AxpyVec(s.rho[a], s.rowView(p, r), s.alpha[:n])
			}
		}
		if extraRow >= 0 {
			mat.AxpyVec(1, s.rowView(p, extraRow), s.alpha[:n])
		}
		for a, r := range s.activeRows {
			if r >= nEq {
				s.alpha[n+(r-nEq)] = s.rho[a]
			}
		}

		// Entering variable: dual ratio test over sign-eligible nonbasic
		// columns, smallest |d|/|alpha| with Bland tie-breaking.
		enter := -1
		best := math.Inf(1)
		for j := 0; j < nTot; j++ {
			st := s.status[j]
			if st == stBasic || s.up[j] <= s.lo[j] {
				continue
			}
			a := s.alpha[j]
			if math.Abs(a) <= pivotTol {
				continue
			}
			// x_leave changes by -alpha_j * dx_j; pick directions that
			// push it back toward the violated bound.
			var elig bool
			if belowLower {
				elig = (st == stLower && a < 0) || (st == stUpper && a > 0)
			} else {
				elig = (st == stLower && a > 0) || (st == stUpper && a < 0)
			}
			if !elig {
				continue
			}
			dj := s.d[j]
			// Clamp tiny wrong-signed reduced costs (inside the dual
			// tolerance) to zero so the ratio stays nonnegative.
			if st == stLower && dj < 0 {
				dj = 0
			}
			if st == stUpper && dj > 0 {
				dj = 0
			}
			ratio := math.Abs(dj) / math.Abs(a)
			if ratio < best-ratioTie || (ratio <= best+ratioTie && (enter == -1 || j < enter)) {
				best = ratio
				enter = j
			}
		}
		if enter < 0 {
			// No column can repair the violated row: primal infeasible.
			return ErrInfeasible
		}
		s.stats.DualPivots++
		s.status[enter] = stBasic
		if belowLower {
			s.status[leave] = stLower
		} else {
			s.status[leave] = stUpper
		}
		if err := s.factorBasis(p); err != nil {
			return err
		}
		s.computeX(p)
		s.computeDualsAndReducedCosts(p)
	}
	return ErrMaxIterations
}

// verify checks the warm result against the original problem: bounds and
// rows within the scale-aware primal tolerance, and the reduced-cost
// optimality certificate within the dual tolerance. It is the exact
// feasibility/optimality cross-check gating every warm answer; failure
// sends the solve to the flat tableau solver.
func (s *RevisedSolver) verify(p *Problem) bool {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	for j := 0; j < n; j++ {
		if s.x[j] < s.lo[j]-s.ptol || s.x[j] > s.up[j]+s.ptol {
			return false
		}
	}
	for r := 0; r < nEq; r++ {
		rv := p.Aeq.RowView(r)
		var sum, scale float64
		for j := 0; j < n; j++ {
			v := rv[j] * s.x[j]
			sum += v
			scale += math.Abs(v)
		}
		if math.Abs(sum-p.Beq[r]) > feasTol*(1+scale+math.Abs(p.Beq[r])) {
			return false
		}
	}
	for r := 0; r < nUb; r++ {
		rv := p.Aub.RowView(r)
		var sum, scale float64
		for j := 0; j < n; j++ {
			v := rv[j] * s.x[j]
			sum += v
			scale += math.Abs(v)
		}
		if sum > p.Bub[r]+feasTol*(1+scale+math.Abs(p.Bub[r])) {
			return false
		}
	}
	return s.dualFeasible()
}

// growI8 is growF for status slices.
func growI8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		return make([]int8, n)
	}
	return buf[:n]
}
