package lp

import (
	"errors"
	"math"
	"sort"

	"gridmtd/internal/mat"
)

// errWarmFallback is warmSolve's internal "abandon this attempt and
// re-solve on the flat tableau" signal. It never escapes Solve: the only
// warm error surfaced to callers is a certified ErrInfeasible.
var errWarmFallback = errors.New("lp: warm solve abandoned")

// WarmSolver is a Problem solver that can reuse the optimal basis of the
// previous solve to start the next one. The MTD selection search solves
// long runs of near-identical dispatch LPs (one Nelder-Mead walk perturbs
// a handful of PTDF coefficients per step), where re-solving from the
// previous optimal basis takes a few pivots instead of a full two-phase
// tableau pass. Invalidate drops the warm state; callers that need results
// independent of the solve history (e.g. the deterministic parallel
// multi-start driver) must call it at their determinism boundaries — the
// dispatch engine resets at the start of every local search.
type WarmSolver interface {
	// Solve solves the problem with the package-level Solve error contract.
	Solve(p *Problem) (*Solution, error)
	// Invalidate drops the warm basis; the next Solve starts cold.
	Invalidate()
}

// RevisedStats counts what the revised solver actually did — tests assert
// the warm path is exercised and PERF.md reports pivot counts from it.
type RevisedStats struct {
	// Solves is the total number of Solve calls.
	Solves int
	// WarmSolves counts solves completed by the revised warm path.
	WarmSolves int
	// ColdSolves counts solves delegated to the flat tableau solver
	// (first solve, structural change, or fallback).
	ColdSolves int
	// Fallbacks counts warm attempts abandoned mid-flight (singular or
	// stalled basis, failed verification) that then re-solved cold.
	Fallbacks int
	// PrimalPivots and DualPivots count warm-path simplex pivots.
	PrimalPivots int
	DualPivots   int
	// EtaUpdates counts basis exchanges absorbed by a product-form eta
	// update instead of a refactorization.
	EtaUpdates int
	// Refactorizations counts working-matrix refactorizations: one per
	// warm attempt, plus every eta-file collapse (cap reached, spike
	// retry, or the exact re-derivation before an answer is accepted).
	Refactorizations int
	// SEPivots counts the dual pivots whose leaving row was chosen by the
	// Devex-weighted steepest-edge rule (as opposed to Bland scans, either
	// because the rule was configured or as the anti-cycling fallback).
	SEPivots int
	// WeightResets counts steepest-edge reference-weight resets: the Devex
	// weights restart at 1 on every refactorization, so this tracks
	// Refactorizations while steepest-edge pricing is active.
	WeightResets int
	// BoundFlips counts nonbasic bound flips applied by the dual
	// bound-flipping ratio test (long-step dual pivots absorb several
	// breakpoints into one basis exchange; each absorbed breakpoint is one
	// flip).
	BoundFlips int
	// SparseFactors counts working-matrix refactorizations routed through
	// the sparse LU (density-gated; see SetSparseLU).
	SparseFactors int
	// PrescreenHits counts Solve calls answered by the Farkas-ray
	// pre-screen: a recycled infeasibility certificate, revalidated
	// exactly against the call's own problem data, proved the problem
	// infeasible before any simplex work. Pre-screened calls are NOT
	// counted in Solves — Solves remains the number of full dispatch
	// solves actually run.
	PrescreenHits int
	// PrescreenProbes counts individual stored-ray revalidations run by
	// the pre-screen (the structural-cause index's per-miss work;
	// PrescreenHits/PrescreenProbes is its precision).
	PrescreenProbes int
	// InfeasibleSolves counts full solves (counted in Solves) that ended
	// in a certified ErrInfeasible — the pre-screen's remaining misses;
	// each is also a ray-capture opportunity.
	InfeasibleSolves int
	// BoundProbes counts DualBoundExceeds calls: incumbent-basis
	// weak-duality bound evaluations run instead of (potentially) a full
	// solve.
	BoundProbes int
	// BoundScreens counts the probes that certified the candidate's
	// optimal cost above the caller's threshold — each one a simplex run
	// the search skipped. Screened probes never touch Solves.
	BoundScreens int
}

// PricingRule selects how the dual simplex picks its leaving row (and
// whether the entering ratio test may flip bounds).
type PricingRule int8

const (
	// PriceAuto resolves to PriceSteepestEdge — the warm-path default.
	PriceAuto PricingRule = iota
	// PriceBland is the historical rule: smallest-index violated basic
	// variable, smallest-ratio entering column with index tie-breaks, no
	// bound flips. It is the anti-cycling reference the agreement tests
	// compare against.
	PriceBland
	// PriceDantzig picks the most-violated basic variable (largest bound
	// violation, unweighted) with the bound-flipping ratio test.
	PriceDantzig
	// PriceSteepestEdge picks the leaving row maximizing violation²/β via
	// Devex reference weights β approximating the dual steepest-edge norms
	// ‖B⁻ᵀe_i‖². Weights reset to 1 at every refactorization, so the
	// pivot-path heuristic never outlives the factorization it was
	// accumulated against; answers are still only accepted on freshly
	// re-derived numbers, keeping the 1e-9 warm/cold agreement contract
	// and the Farkas-certificate trust rule unchanged.
	PriceSteepestEdge
)

// Variable statuses of the bounded-variable revised simplex. Slack
// variables (one per inequality row, bounds [0, +Inf)) follow the
// structural variables in the status array.
const (
	stLower int8 = iota // nonbasic at lower bound
	stUpper             // nonbasic at upper bound
	stBasic
)

const (
	warmMaxIter = 2000
	// ratioTie is the ratio-test tie band, matching the flat solver.
	ratioTie = 1e-12
	// defaultMaxUpdates bounds the product-form eta file between
	// refactorizations. Forty exchanges on a ≤n×n working matrix keep the
	// accumulated forward/backward transformation cost well below one
	// refactorization while bounding update drift; the exact re-derivation
	// at loop exit makes the bound a performance knob, not a correctness
	// one.
	defaultMaxUpdates = 40
	// spikeAbs/spikeRel gate each eta update on its pivot element: a pivot
	// below the absolute floor, or tiny relative to the transformed
	// column's magnitude, would amplify drift through every later solve
	// (the Forrest–Tomlin spike-growth hazard) — such exchanges refactor
	// instead.
	spikeAbs = 1e-11
	spikeRel = 1e-8
)

// RevisedSolver is a bounded-variable revised-simplex solver with
// cross-solve basis warm-starting. It works on the row geometry of the
// Problem directly (equality rows plus slack-extended inequality rows,
// structural variables kept inside their bounds) instead of the flat
// solver's standard form, and it never materializes a tableau: it factors
// only the small "working matrix" — active rows × basic structural
// columns, at most n×n however many inequality rows the problem has —
// because the basic slack columns are unit vectors. Between
// refactorizations, basis exchanges are absorbed by bounded product-form
// eta updates (Forrest–Tomlin-style pivot monitoring with refactor
// fallback; see primalLoop/pivotUpdate), so a typical warm re-solve
// factors the working matrix once and pivots through rank-one updates.
//
// The first solve (and any solve after Invalidate, a structural change, or
// a warm failure) delegates to the embedded flat tableau Solver — the
// historical reference implementation — and crashes a warm basis out of
// its optimal tableau. Subsequent solves restart from the previous optimal
// basis: if the perturbed problem leaves it primal feasible the primal
// simplex finishes in a few pivots; if the perturbation makes it primal
// infeasible but it is still dual feasible, the dual simplex recovers
// feasibility first. Every warm result is verified against the original
// problem (primal feasibility, bound satisfaction, and the reduced-cost
// optimality certificate); any doubt — singular working matrix, stalled
// loop, failed check — falls back to an exact cold solve, so the solver
// never returns an unverified warm answer.
//
// A RevisedSolver is not safe for concurrent use; use one per goroutine.
type RevisedSolver struct {
	cold    Solver
	stats   RevisedStats
	flushed RevisedStats // portion of stats already added to the globals

	// Warm state: statuses per variable (structural then slacks) for the
	// problem signature below.
	hasBasis           bool
	status             []int8
	sigN, sigEq, sigUb int

	// Per-solve model arrays, length nTot = n + nUb.
	lo, up, c []float64
	x, d      []float64
	// Basis bookkeeping, frozen at the last refactorization (eta updates
	// exchange basis positions without touching these).
	activeRows  []int  // eq rows + inequality rows whose slack is nonbasic
	basicStruct []int  // basic structural columns, ascending
	isBasicCol  []bool // length n
	w           mat.Dense
	lu          mat.LU
	// Sparse working-matrix route: enabled by SetSparseLU, taken per
	// refactorization when the working matrix passes the density gate,
	// with the dense LU as the pivot-failure fallback.
	sparseLUOn   bool
	sparseActive bool
	slu          mat.SparseLU
	// abasic is the contiguous gather of the basic structural columns over
	// the inactive rows, rebuilt at each refactorization:
	// abasic[t*k+b] = A[inactiveRows[t], basicStruct[b]]. The ftran/btran
	// inactive-row sweeps run on these contiguous k-vectors instead of
	// indexed gathers through the problem's row views.
	abasic []float64
	// factorHook, when non-nil, observes every working matrix right after
	// it is assembled — a testing seam for capturing the real working
	// matrices a workload factors.
	factorHook func(w *mat.Dense)
	// Product-form eta file: basis B = B₀·E₁·…·E_t where B₀ is the frozen
	// factorization above and each Eᵢ is the identity with basis position
	// etaPos[i] replaced by the column etaBuf[i·m:(i+1)·m] (m = nEq+nUb).
	// varAt/posOf track which variable currently holds each position;
	// inactiveRows lists the rows whose slack was basic at refactor time
	// (positions k..m-1, in row order).
	maxUpdates   int // see SetMaxUpdates; 0 = default, negative = disabled
	etaPos       []int
	etaBuf       []float64
	varAt, posOf []int
	inactiveRows []int
	fresh        bool // x and d were recomputed from a fresh factorization
	// Pricing state: the configured rule, the Devex reference weights per
	// basis position (reset to 1 at every refactorization), and the
	// bound-flipping ratio-test scratch.
	pricing PricingRule
	dw      []float64
	cands   []dualCand
	flips   []int
	flipCol []float64
	fcol    []float64
	// Farkas-ray pre-screen state (see prescreen.go): an MRU index of
	// infeasibility certificates keyed by structural cause, plus scratch.
	// The index survives Invalidate on purpose — rays are never trusted
	// from storage, only after exact revalidation against the current
	// problem's data, so dropping the warm basis has no bearing on their
	// validity.
	rays                []farkasRay
	rayScratch, rayCand []float64
	// Dual-bound certificates (see dualbound.go): recent verified optimal
	// dual solutions, MRU-ordered. Like the Farkas index they survive
	// Invalidate — a weak-duality bound is recomputed exactly against
	// each candidate's own data, so certificate origin never matters.
	certs []dualCert
	// Scratch vectors sized to the working dimension k, m or nTot.
	rhs, sol, yAct, colAct, alpha []float64
	col, posv, pi                 []float64
	// Tolerances, refreshed per solve from the problem scale.
	ptol, dtol float64
}

// dualCand is one sign-eligible entering candidate of the dual ratio test:
// its variable index and its dual ratio |d_j|/|α_j|.
type dualCand struct {
	j     int
	ratio float64
}

// NewRevisedSolver returns an empty solver; buffers grow on first use.
func NewRevisedSolver() *RevisedSolver { return &RevisedSolver{} }

// Stats returns the cumulative solve counters.
func (s *RevisedSolver) Stats() RevisedStats { return s.stats }

// Invalidate drops the warm basis; the next Solve starts from scratch —
// a pure function of the problem (crash-basis warm route, flat tableau
// when that fails) with no memory of previous solves.
func (s *RevisedSolver) Invalidate() { s.hasBasis = false }

// HasBasis reports whether a warm basis is loaded (from a previous solve
// or InstallBasis).
func (s *RevisedSolver) HasBasis() bool { return s.hasBasis }

// WarmBasis is a portable snapshot of a solver's optimal basis: the
// per-variable statuses (structural then inequality slacks) plus the
// problem signature they belong to. It is immutable once captured, so one
// snapshot may seed any number of solvers concurrently.
type WarmBasis struct {
	status    []int8
	n, eq, ub int
}

// CaptureBasis snapshots the current warm basis, or returns nil when the
// solver has none.
func (s *RevisedSolver) CaptureBasis() *WarmBasis {
	if !s.hasBasis {
		return nil
	}
	nTot := s.sigN + s.sigUb
	return &WarmBasis{
		status: append([]int8(nil), s.status[:nTot]...),
		n:      s.sigN, eq: s.sigEq, ub: s.sigUb,
	}
}

// InstallBasis seeds the solver's warm state from a snapshot: the next
// Solve of a signature-compatible problem starts from it exactly as it
// would from its own previous optimal basis (with the same verification
// and cold fallback). Solving a problem with a different signature simply
// drops the seed. A nil snapshot is a no-op.
func (s *RevisedSolver) InstallBasis(b *WarmBasis) {
	if b == nil {
		return
	}
	s.status = growI8(s.status, len(b.status))
	copy(s.status, b.status)
	s.sigN, s.sigEq, s.sigUb = b.n, b.eq, b.ub
	s.hasBasis = true
}

// SetMaxUpdates bounds the product-form eta updates accumulated between
// refactorizations. Zero restores the default (defaultMaxUpdates); a
// negative value disables eta updates entirely, refactorizing after every
// basis exchange — the pre-update reference behavior the agreement tests
// compare against.
func (s *RevisedSolver) SetMaxUpdates(n int) { s.maxUpdates = n }

func (s *RevisedSolver) effMaxUpdates() int {
	switch {
	case s.maxUpdates < 0:
		return 0
	case s.maxUpdates == 0:
		return defaultMaxUpdates
	}
	return s.maxUpdates
}

// SetPricing selects the dual pricing rule. PriceAuto (the zero value)
// resolves to steepest-edge — the warm-path default.
func (s *RevisedSolver) SetPricing(r PricingRule) { s.pricing = r }

// SetSparseLU enables the sparse working-matrix factorization route. Each
// refactorization then measures the working matrix's density and factors
// through mat.SparseLU when it is sparse enough to win
// (≤ sparseLUMaxDensity nonzeros at dimension ≥ sparseLUMinDim); a sparse
// pivot failure falls back to the dense LU within the same
// refactorization, so enabling the route never changes which problems
// solve. Dispatch LPs condense the grid through dense PTDF rows, so their
// working matrices typically fail the gate and stay dense — the route
// pays off for structurally sparse constraint systems.
func (s *RevisedSolver) SetSparseLU(on bool) { s.sparseLUOn = on }

// SetFactorHook installs a callback observing every working matrix right
// after assembly, before it is factored. Testing seam: the sparse-LU suite
// uses it to capture the actual working matrices of real selections. A nil
// hook disables it.
func (s *RevisedSolver) SetFactorHook(h func(w *mat.Dense)) { s.factorHook = h }

const (
	// sparseLUMinDim is the smallest working dimension worth the sparse
	// factorization's symbolic overhead.
	sparseLUMinDim = 32
	// sparseLUMaxDensity routes matrices with at most this nonzero
	// fraction to the sparse LU.
	sparseLUMaxDensity = 0.25
)

// wSolveInto solves W·x = b through whichever factorization the last
// refactorization produced.
func (s *RevisedSolver) wSolveInto(dst, b []float64) {
	if s.sparseActive {
		s.slu.SolveInto(dst, b)
		return
	}
	s.lu.SolveInto(dst, b)
}

// wSolveTransposeInto solves Wᵀ·x = b through the active factorization.
func (s *RevisedSolver) wSolveTransposeInto(dst, b []float64) {
	if s.sparseActive {
		s.slu.SolveTransposeInto(dst, b)
		return
	}
	s.lu.SolveTransposeInto(dst, b)
}

func (s *RevisedSolver) effPricing() PricingRule {
	if s.pricing == PriceAuto {
		return PriceSteepestEdge
	}
	return s.pricing
}

// Solve solves the problem, warm-starting from the previous optimal basis
// when one is available and structurally compatible. The error contract is
// that of the package-level Solve.
func (s *RevisedSolver) Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	defer s.flushStats()
	n := len(p.C)
	nEq, nUb := 0, 0
	if p.Aeq != nil {
		nEq = p.Aeq.Rows()
	}
	if p.Aub != nil {
		nUb = p.Aub.Rows()
	}
	// Farkas-ray pre-screen: if a recycled certificate, revalidated against
	// this problem's exact data, proves infeasibility, that IS the answer —
	// no simplex run, no warm-state change, not counted in Solves.
	if len(s.rays) > 0 && s.prescreen(p, n, nEq, nUb) {
		s.stats.PrescreenHits++
		return nil, ErrInfeasible
	}
	s.stats.Solves++
	if s.hasBasis && (n != s.sigN || nEq != s.sigEq || nUb != s.sigUb) {
		s.hasBasis = false
	}
	s.sigN, s.sigEq, s.sigUb = n, nEq, nUb

	if nEq+nUb == 0 || !s.warmEligible(p) {
		// Unconstrained problems never touch the tableau basis, and free
		// variables have no bound to park a nonbasic status at; both stay
		// on the flat path with no warm state.
		s.hasBasis = false
		s.stats.ColdSolves++
		return s.countInfeasible(s.cold.Solve(p))
	}

	if s.hasBasis {
		sol, err := s.warmSolve(p)
		if err == nil || errors.Is(err, ErrInfeasible) {
			s.stats.WarmSolves++
			return s.countInfeasible(sol, err)
		}
		s.stats.Fallbacks++
		s.hasBasis = false
	}
	// No usable basis. Before paying for the flat two-phase tableau solve,
	// try the revised machinery from a deterministic crash basis (all
	// slacks basic, one max-coefficient structural per equality row): the
	// flip repair makes it dual feasible and the dual simplex walks to the
	// optimum in roughly active-set-many cheap pivots instead of the
	// tableau's dense Gauss-Jordan passes. The result passes the same
	// verification as any warm solve; any doubt still lands on the exact
	// cold path. The crash basis is a pure function of the problem, so
	// first-solve answers stay deterministic and scheduling-independent.
	if s.crashBasis(p) {
		sol, err := s.warmSolve(p)
		if err == nil || errors.Is(err, ErrInfeasible) {
			s.stats.WarmSolves++
			return s.countInfeasible(sol, err)
		}
		s.hasBasis = false
	}
	return s.countInfeasible(s.coldSolve(p))
}

// countInfeasible attributes a full solve's infeasible outcome to the
// stats on its way out (pre-screened calls are counted separately).
func (s *RevisedSolver) countInfeasible(sol *Solution, err error) (*Solution, error) {
	if errors.Is(err, ErrInfeasible) {
		s.stats.InfeasibleSolves++
	}
	return sol, err
}

// crashBasis installs the deterministic cold-start basis: every slack
// basic, every structural nonbasic at a finite bound, except one
// structural per equality row — the largest-|coefficient| column not yet
// chosen — to complete the basis. Returns false when an equality row has
// no usable column (the flat path handles it).
func (s *RevisedSolver) crashBasis(p *Problem) bool {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	s.status = growI8(s.status, n+nUb)
	for j := 0; j < n; j++ {
		if lo, _ := p.bound(j); math.IsInf(lo, -1) {
			s.status[j] = stUpper
		} else {
			s.status[j] = stLower
		}
	}
	for i := 0; i < nUb; i++ {
		s.status[n+i] = stBasic
	}
	for r := 0; r < nEq; r++ {
		rv := p.Aeq.RowView(r)
		best, bv := -1, 0.0
		for j := 0; j < n; j++ {
			if s.status[j] == stBasic {
				continue
			}
			if a := math.Abs(rv[j]); a > bv {
				bv, best = a, j
			}
		}
		if best < 0 {
			return false
		}
		s.status[best] = stBasic
	}
	s.hasBasis = true
	return true
}

// coldSolve delegates to the flat tableau solver and crashes a warm basis
// from its optimal tableau.
func (s *RevisedSolver) coldSolve(p *Problem) (*Solution, error) {
	s.stats.ColdSolves++
	sol, err := s.cold.Solve(p)
	if err != nil {
		s.hasBasis = false
		return nil, err
	}
	s.hasBasis = s.crashFromCold(p)
	return sol, nil
}

// warmEligible reports whether every variable has at least one finite
// bound (the nonbasic statuses need a bound to sit at).
func (s *RevisedSolver) warmEligible(p *Problem) bool {
	for j := range p.C {
		lo, up := p.bound(j)
		if math.IsInf(lo, -1) && math.IsInf(up, 1) {
			return false
		}
	}
	return true
}

// crashFromCold derives bounded-form variable statuses from the flat
// solver's final basis. Returns false when no clean basis exists (an
// artificial column is still basic — a redundant row — or the status
// count does not form a basis).
func (s *RevisedSolver) crashFromCold(p *Problem) bool {
	c := &s.cold
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	nUp := len(c.upperCol)
	stdN := c.n
	cols := stdN - nUb - nUp

	// Membership of the final tableau basis over standard-form columns.
	inBasis := make([]bool, stdN)
	for _, b := range c.basis {
		if b >= stdN {
			return false // artificial stuck in basis: redundant row
		}
		inBasis[b] = true
	}
	// Upper-bound row index per standard-form column.
	upOf := make([]int, cols)
	for i := range upOf {
		upOf[i] = -1
	}
	for i, col := range c.upperCol {
		upOf[col] = i
	}

	nTot := n + nUb
	s.status = growI8(s.status, nTot)
	count := 0
	for j := 0; j < n; j++ {
		vm := c.vmap[j]
		switch vm.kind {
		case 0: // x = lo + y
			switch {
			case !inBasis[vm.col]:
				s.status[j] = stLower
			case upOf[vm.col] >= 0 && !inBasis[cols+nUb+upOf[vm.col]]:
				// y basic at its upper-row RHS: the variable sits at its
				// upper bound, nonbasic in the bounded form.
				s.status[j] = stUpper
			default:
				s.status[j] = stBasic
				count++
			}
		case 1: // x = up - y
			if inBasis[vm.col] {
				s.status[j] = stBasic
				count++
			} else {
				s.status[j] = stUpper
			}
		default: // free split: warmEligible filtered these out
			return false
		}
	}
	for i := 0; i < nUb; i++ {
		if inBasis[cols+i] {
			s.status[n+i] = stBasic
			count++
		} else {
			s.status[n+i] = stLower
		}
	}
	return count == nEq+nUb
}

// ---- Warm path ------------------------------------------------------------

// warmSolve re-solves p from the stored statuses. ok=false means "fall
// back to a cold solve" for any reason, including warm-detected
// infeasibility (the cold path re-derives and reports it exactly).
func (s *RevisedSolver) warmSolve(p *Problem) (*Solution, error) {
	n := s.sigN
	s.setupModel(p)
	if s.refresh(p) != nil {
		return nil, errWarmFallback
	}

	// dualStep wraps a dualLoop run: a certified infeasibility verdict —
	// issued only on a fresh factorization with no entering column for a
	// violated row, the Farkas certificate — is a final answer the caller
	// must not re-derive on the flat tableau (on large cases an infeasible
	// candidate costs seconds there, and the selection search probes many);
	// every other failure stays a fallback.
	dualStep := func() error {
		switch err := s.dualLoop(p); {
		case err == nil:
			return nil
		case errors.Is(err, ErrInfeasible):
			return ErrInfeasible
		}
		return errWarmFallback
	}

	pf := s.primalFeasible()
	df := s.dualFeasible()
	switch {
	case pf:
		if s.primalLoop(p) != nil {
			return nil, errWarmFallback
		}
	case df:
		if err := dualStep(); err != nil {
			return nil, err
		}
		if s.primalLoop(p) != nil {
			return nil, errWarmFallback
		}
	default:
		// Neither feasible — the usual fate of a basis seeded from a
		// different problem instance (engine seed basis, crash basis, large
		// candidate jumps). Bound flipping restores dual feasibility without
		// touching the basis matrix: a nonbasic variable whose reduced cost
		// has the wrong sign for its bound moves to the opposite bound,
		// where the same sign is the right one. Only variables with both
		// bounds finite can flip; a wrong-signed variable without a finite
		// opposite bound (a slack) keeps the repair impossible and the
		// solve goes cold. After the flips the factorization and reduced
		// costs are still exact, only the primal values moved, so one
		// computeX refresh feeds the ordinary dual→primal recovery.
		if !s.flipToDualFeasible() {
			return nil, errWarmFallback
		}
		s.computeX(p)
		if err := dualStep(); err != nil {
			return nil, err
		}
		if s.primalLoop(p) != nil {
			return nil, errWarmFallback
		}
	}
	if !s.verify(p) {
		return nil, errWarmFallback
	}
	// The verified optimum's dual solution is a reusable weak-duality
	// bound certificate for future candidates (see dualbound.go). The
	// loops above only accept on a fresh factorization, so
	// s.yAct/s.activeRows still describe the final basis exactly.
	s.captureDualCert()
	xOut := make([]float64, n)
	copy(xOut, s.x[:n])
	return &Solution{X: xOut, Objective: mat.Dot(p.C, xOut), Status: StatusOptimal}, nil
}

// setupModel fills the per-variable bound and cost arrays and the
// scale-aware tolerances.
func (s *RevisedSolver) setupModel(p *Problem) {
	n, nUb := s.sigN, s.sigUb
	nTot := n + nUb
	s.lo = growF(s.lo, nTot)
	s.up = growF(s.up, nTot)
	s.c = growF(s.c, nTot)
	s.x = growF(s.x, nTot)
	s.d = growF(s.d, nTot)
	var cScale float64
	for j := 0; j < n; j++ {
		s.lo[j], s.up[j] = p.bound(j)
		s.c[j] = p.C[j]
		if a := math.Abs(p.C[j]); a > cScale {
			cScale = a
		}
	}
	for i := 0; i < nUb; i++ {
		s.lo[n+i], s.up[n+i] = 0, math.Inf(1)
		s.c[n+i] = 0
	}
	var bScale float64
	for _, v := range p.Beq {
		if a := math.Abs(v); a > bScale {
			bScale = a
		}
	}
	for _, v := range p.Bub {
		if a := math.Abs(v); a > bScale {
			bScale = a
		}
	}
	for j := 0; j < n; j++ {
		if a := math.Abs(s.lo[j]); a > bScale && !math.IsInf(a, 1) {
			bScale = a
		}
		if a := math.Abs(s.up[j]); a > bScale && !math.IsInf(a, 1) {
			bScale = a
		}
	}
	s.ptol = feasTol * (1 + bScale)
	s.dtol = feasTol * (1 + cScale)
}

// rowView returns row r of the stacked [Aeq; Aub] constraint matrix.
func (s *RevisedSolver) rowView(p *Problem, r int) []float64 {
	if r < s.sigEq {
		return p.Aeq.RowView(r)
	}
	return p.Aub.RowView(r - s.sigEq)
}

// rowRHS returns the right-hand side of stacked row r.
func (s *RevisedSolver) rowRHS(p *Problem, r int) float64 {
	if r < s.sigEq {
		return p.Beq[r]
	}
	return p.Bub[r-s.sigEq]
}

// factorBasis rebuilds the active-row and basic-column lists from the
// statuses and factors the working matrix W = A[active rows, basic
// structural columns]. Any structural defect (cardinality mismatch,
// singular W) is an error that sends the caller cold.
func (s *RevisedSolver) factorBasis(p *Problem) error {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	s.activeRows = s.activeRows[:0]
	for r := 0; r < nEq; r++ {
		s.activeRows = append(s.activeRows, r)
	}
	for i := 0; i < nUb; i++ {
		if s.status[n+i] != stBasic {
			s.activeRows = append(s.activeRows, nEq+i)
		}
	}
	s.basicStruct = s.basicStruct[:0]
	if cap(s.isBasicCol) < n {
		s.isBasicCol = make([]bool, n)
	}
	s.isBasicCol = s.isBasicCol[:n]
	for j := 0; j < n; j++ {
		s.isBasicCol[j] = s.status[j] == stBasic
		if s.isBasicCol[j] {
			s.basicStruct = append(s.basicStruct, j)
		}
	}
	k := len(s.activeRows)
	if len(s.basicStruct) != k {
		return ErrMaxIterations // structural defect; exact error unused
	}
	// Freeze the position bookkeeping the eta file pivots against:
	// positions 0..k-1 hold the basic structural columns, positions
	// k..m-1 the basic slacks in row order.
	m := nEq + nUb
	s.varAt = growInt(s.varAt, m)
	s.posOf = growInt(s.posOf, n+nUb)
	for j := range s.posOf {
		s.posOf[j] = -1
	}
	for b, j := range s.basicStruct {
		s.varAt[b] = j
		s.posOf[j] = b
	}
	s.inactiveRows = s.inactiveRows[:0]
	for i, t := 0, 0; i < nUb; i++ {
		if s.status[n+i] == stBasic {
			s.inactiveRows = append(s.inactiveRows, nEq+i)
			s.varAt[k+t] = n + i
			s.posOf[n+i] = k + t
			t++
		}
	}
	s.etaPos = s.etaPos[:0]
	s.etaBuf = s.etaBuf[:0]
	s.stats.Refactorizations++
	if s.effPricing() == PriceSteepestEdge {
		// Devex reference framework restart: the weights approximate dual
		// steepest-edge norms relative to the factorization they were
		// accumulated against, so every refactorization re-references them
		// at 1.
		s.dw = growF(s.dw, m)
		for i := range s.dw {
			s.dw[i] = 1
		}
		s.stats.WeightResets++
	}

	// Contiguous gather of the basic structural columns over the inactive
	// rows: the ftran/btran inactive-row sweeps run Dot/Axpy kernels on
	// these k-vectors instead of indexed gathers through the row views.
	nIn := len(s.inactiveRows)
	s.abasic = growF(s.abasic, nIn*k)
	for t, r := range s.inactiveRows {
		rv := s.rowView(p, r)
		row := s.abasic[t*k : (t+1)*k]
		for b, j := range s.basicStruct {
			row[b] = rv[j]
		}
	}

	s.w.ReuseAs(k, k)
	wd := s.w.RawData()
	nnz := 0
	for a, r := range s.activeRows {
		rv := s.rowView(p, r)
		row := wd[a*k : (a+1)*k]
		for b, j := range s.basicStruct {
			row[b] = rv[j]
			if rv[j] != 0 {
				nnz++
			}
		}
	}
	s.sparseActive = false
	if s.factorHook != nil && k > 0 {
		s.factorHook(&s.w)
	}
	if k == 0 {
		return nil
	}
	if s.sparseLUOn && k >= sparseLUMinDim && nnz <= int(sparseLUMaxDensity*float64(k*k)) {
		if s.slu.Reset(&s.w) == nil {
			s.sparseActive = true
			s.stats.SparseFactors++
			return nil
		}
		// Sparse pivot failure: fall through to the dense factorization.
	}
	return s.lu.Reset(&s.w)
}

// refresh refactors the working matrix from the current statuses and
// re-derives primal values and reduced costs from scratch, collapsing any
// accumulated eta file together with its drift.
func (s *RevisedSolver) refresh(p *Problem) error {
	if err := s.factorBasis(p); err != nil {
		return err
	}
	s.computeX(p)
	s.computeDualsAndReducedCosts(p)
	s.fresh = true
	return nil
}

// computeX sets every variable's value from the statuses: nonbasic at
// bounds, basic structurals from the working-matrix solve, basic slacks
// from their row residuals.
func (s *RevisedSolver) computeX(p *Problem) {
	n, nUb := s.sigN, s.sigUb
	for j := 0; j < n+nUb; j++ {
		switch s.status[j] {
		case stLower:
			s.x[j] = s.lo[j]
		case stUpper:
			s.x[j] = s.up[j]
		}
	}
	k := len(s.activeRows)
	s.rhs = growF(s.rhs, k)
	s.sol = growF(s.sol, k)
	for a, r := range s.activeRows {
		rv := s.rowView(p, r)
		sum := s.rowRHS(p, r)
		for j := 0; j < n; j++ {
			if !s.isBasicCol[j] {
				sum -= rv[j] * s.x[j]
			}
		}
		s.rhs[a] = sum
	}
	if k > 0 {
		s.wSolveInto(s.sol, s.rhs)
		for b, j := range s.basicStruct {
			s.x[j] = s.sol[b]
		}
	}
	for i := 0; i < nUb; i++ {
		if s.status[n+i] != stBasic {
			continue
		}
		rv := p.Aub.RowView(i)
		sum := p.Bub[i]
		for j := 0; j < n; j++ {
			sum -= rv[j] * s.x[j]
		}
		s.x[n+i] = sum
	}
}

// computeDualsAndReducedCosts solves Wᵀy = c_B for the active-row duals
// and prices every column: d = c − yᵀA (zero dual on inactive rows).
func (s *RevisedSolver) computeDualsAndReducedCosts(p *Problem) {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	k := len(s.activeRows)
	s.yAct = growF(s.yAct, k)
	s.rhs = growF(s.rhs, k)
	for b, j := range s.basicStruct {
		s.rhs[b] = s.c[j]
	}
	if k > 0 {
		s.wSolveTransposeInto(s.yAct, s.rhs)
	}
	copy(s.d[:n], s.c[:n])
	for i := 0; i < nUb; i++ {
		s.d[n+i] = 0
	}
	for a, r := range s.activeRows {
		y := s.yAct[a]
		if y != 0 {
			mat.AxpyVec(-y, s.rowView(p, r), s.d[:n])
		}
		if r >= nEq {
			s.d[n+(r-nEq)] = -y
		}
	}
}

// flipToDualFeasible flips nonbasic variables with wrong-signed reduced
// costs to their opposite bound, making the basis dual feasible without
// changing the basis matrix (flips only move nonbasic values, so the
// factorization and the reduced costs stay exact). Returns false when a
// wrong-signed variable has no finite opposite bound to flip to; statuses
// may then be partially flipped, which is fine — every failure path
// discards the warm state and re-derives it cold.
func (s *RevisedSolver) flipToDualFeasible() bool {
	for j, st := range s.status[:s.sigN+s.sigUb] {
		if s.up[j] <= s.lo[j] {
			continue // fixed variable: any sign is optimal
		}
		switch st {
		case stLower:
			if s.d[j] < -s.dtol {
				if math.IsInf(s.up[j], 1) {
					return false
				}
				s.status[j] = stUpper
			}
		case stUpper:
			if s.d[j] > s.dtol {
				if math.IsInf(s.lo[j], -1) {
					return false
				}
				s.status[j] = stLower
			}
		}
	}
	return true
}

// primalFeasible reports whether every basic variable is inside its
// bounds (nonbasic variables sit on a bound by construction).
func (s *RevisedSolver) primalFeasible() bool {
	for j, st := range s.status[:s.sigN+s.sigUb] {
		if st != stBasic {
			continue
		}
		if s.x[j] < s.lo[j]-s.ptol || s.x[j] > s.up[j]+s.ptol {
			return false
		}
	}
	return true
}

// dualFeasible reports whether the reduced costs certify the current
// basis: nonnegative at lower bounds, nonpositive at upper bounds.
func (s *RevisedSolver) dualFeasible() bool {
	for j, st := range s.status[:s.sigN+s.sigUb] {
		switch st {
		case stLower:
			if s.d[j] < -s.dtol && s.up[j] > s.lo[j] {
				return false
			}
		case stUpper:
			if s.d[j] > s.dtol && s.up[j] > s.lo[j] {
				return false
			}
		}
	}
	return true
}

// ftran computes w = B⁻¹·a_q over basis positions for column q. The frozen
// factorization handles the B₀ part — the LU solves the active rows and the
// frozen-basic slack positions are row residuals — and the eta file is then
// applied in pivot order (E_i⁻¹ touches only its pivot position's multiple
// of the stored column).
func (s *RevisedSolver) ftran(p *Problem, q int) []float64 {
	n, nEq := s.sigN, s.sigEq
	k := len(s.activeRows)
	m := s.sigEq + s.sigUb
	s.colAct = growF(s.colAct, k)
	s.sol = growF(s.sol, k)
	if q < n {
		for a, r := range s.activeRows {
			s.colAct[a] = s.rowView(p, r)[q]
		}
	} else {
		// Slack column: unit vector on its row.
		row := nEq + (q - n)
		for a := range s.colAct {
			s.colAct[a] = 0
		}
		for a, r := range s.activeRows {
			if r == row {
				s.colAct[a] = 1
				break
			}
		}
	}
	if k > 0 {
		s.wSolveInto(s.sol, s.colAct)
	}
	s.col = growF(s.col, m)
	copy(s.col, s.sol[:k])
	for t, r := range s.inactiveRows {
		var v float64
		if q < n {
			v = s.rowView(p, r)[q]
		} else if r == nEq+(q-n) {
			v = 1
		}
		v -= mat.Dot(s.abasic[t*k:(t+1)*k], s.sol[:k])
		s.col[k+t] = v
	}
	for t, pp := range s.etaPos {
		e := s.etaBuf[t*m : (t+1)*m]
		wp := s.col[pp] / e[pp]
		if wp != 0 {
			for i := 0; i < m; i++ {
				if i != pp {
					s.col[i] -= e[i] * wp
				}
			}
		}
		s.col[pp] = wp
	}
	return s.col
}

// btranUnit computes π = B⁻ᵀ·e_pos over the stacked rows: the eta file's
// transposed solves run in reverse pivot order on the position vector, then
// the frozen B₀ᵀ turns positions into row duals — frozen-basic slack rows
// read their position directly, the active rows go through the transposed
// LU after eliminating the slack-row contributions of the basic structural
// columns.
func (s *RevisedSolver) btranUnit(p *Problem, pos int) []float64 {
	k := len(s.activeRows)
	m := s.sigEq + s.sigUb
	s.posv = growF(s.posv, m)
	for i := range s.posv {
		s.posv[i] = 0
	}
	s.posv[pos] = 1
	for t := len(s.etaPos) - 1; t >= 0; t-- {
		pp := s.etaPos[t]
		e := s.etaBuf[t*m : (t+1)*m]
		var sum float64
		for j := 0; j < m; j++ {
			if j != pp {
				sum += e[j] * s.posv[j]
			}
		}
		s.posv[pp] = (s.posv[pp] - sum) / e[pp]
	}
	s.pi = growF(s.pi, m)
	for i := range s.pi {
		s.pi[i] = 0
	}
	for t, r := range s.inactiveRows {
		s.pi[r] = s.posv[k+t]
	}
	if k > 0 {
		s.rhs = growF(s.rhs, k)
		copy(s.rhs, s.posv[:k])
		for t := range s.inactiveRows {
			pr := s.posv[k+t]
			if pr == 0 {
				continue
			}
			mat.AxpyVec(-pr, s.abasic[t*k:(t+1)*k], s.rhs[:k])
		}
		s.yAct = growF(s.yAct, k)
		s.wSolveTransposeInto(s.yAct, s.rhs)
		for a, r := range s.activeRows {
			s.pi[r] = s.yAct[a]
		}
	}
	return s.pi
}

// priceAlpha fills s.alpha with α_j = πᵀ·A[:,j] for every column from the
// row duals π: structural columns accumulate over the rows with nonzero
// dual, slack columns read their row's dual directly.
func (s *RevisedSolver) priceAlpha(p *Problem, pi []float64) {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	s.alpha = growF(s.alpha, n+nUb)
	for j := 0; j < n; j++ {
		s.alpha[j] = 0
	}
	for r := 0; r < nEq+nUb; r++ {
		if pi[r] != 0 {
			mat.AxpyVec(pi[r], s.rowView(p, r), s.alpha[:n])
		}
	}
	for i := 0; i < nUb; i++ {
		s.alpha[n+i] = pi[nEq+i]
	}
}

// etaSpike reports whether the basis exchange at position pos is too
// ill-conditioned to absorb as an eta update: product-form solves divide by
// w[pos], so a pivot element far below the transformed column's magnitude
// (or below absolute noise) would amplify drift through every later solve.
func etaSpike(w []float64, pos int) bool {
	wp := math.Abs(w[pos])
	if wp < spikeAbs {
		return true
	}
	var max float64
	for _, v := range w {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return wp < spikeRel*max
}

// pivotUpdate applies the basis exchange enter↔(leave at position pos)
// without refactorizing: primal values move along w = B⁻¹·a_enter by delta
// (the entering variable's signed step off its bound), reduced costs by the
// standard pivot-row update through ρ = B⁻ᵀ·e_pos, and w joins the eta
// file. The caller has already chosen the exchange and cleared the spike
// check; the update collapses into a refactorization when the eta cap is
// reached.
func (s *RevisedSolver) pivotUpdate(p *Problem, enter, leave, pos int, w []float64, delta float64, leaveAtUpper bool) error {
	m := s.sigEq + s.sigUb
	if delta != 0 {
		for b := 0; b < m; b++ {
			if v := w[b]; v != 0 {
				s.x[s.varAt[b]] -= delta * v
			}
		}
	}
	s.x[enter] += delta
	if leaveAtUpper {
		s.x[leave] = s.up[leave]
	} else {
		s.x[leave] = s.lo[leave]
	}

	// ρ is taken against the pre-exchange basis, so it must precede the
	// eta append; the status swap follows the dual update so that the loop
	// below skips exactly the pre-exchange basic columns.
	pi := s.btranUnit(p, pos)
	s.priceAlpha(p, pi)
	rate := s.d[enter] / w[pos]
	if rate != 0 {
		nTot := s.sigN + s.sigUb
		for j := 0; j < nTot; j++ {
			if s.status[j] != stBasic && j != enter {
				s.d[j] -= rate * s.alpha[j]
			}
		}
	}
	s.d[leave] = -rate
	s.d[enter] = 0

	s.status[enter] = stBasic
	if leaveAtUpper {
		s.status[leave] = stUpper
	} else {
		s.status[leave] = stLower
	}
	s.varAt[pos] = enter
	s.posOf[enter] = pos
	s.posOf[leave] = -1
	s.etaPos = append(s.etaPos, pos)
	s.etaBuf = append(s.etaBuf, w...)
	s.stats.EtaUpdates++
	s.fresh = false
	if len(s.etaPos) >= s.effMaxUpdates() {
		return s.refresh(p)
	}
	return nil
}

// primalLoop runs bounded-variable primal simplex pivots (Bland's rule)
// from a primal-feasible basis until optimality. Basis exchanges are
// absorbed by product-form eta updates (pivotUpdate) instead of per-pivot
// refactorizations; the working matrix refactors only when the eta cap or
// the spike monitor demands it, and always once more before optimality is
// accepted, so a nil return means the statuses describe an optimal basis
// with s.x/s.d freshly re-derived for it — eta drift can steer the pivot
// path, never the answer.
func (s *RevisedSolver) primalLoop(p *Problem) error {
	nTot := s.sigN + s.sigUb
	m := s.sigEq + s.sigUb
	for iter := 0; iter < warmMaxIter; iter++ {
		// Entering variable: Bland's smallest index with an improving
		// reduced cost. Fixed variables (lo == up) cannot move.
		enter := -1
		var sigma float64
		for j := 0; j < nTot; j++ {
			switch s.status[j] {
			case stLower:
				if s.d[j] < -s.dtol && s.up[j] > s.lo[j] {
					enter, sigma = j, 1
				}
			case stUpper:
				if s.d[j] > s.dtol && s.up[j] > s.lo[j] {
					enter, sigma = j, -1
				}
			}
			if enter >= 0 {
				break
			}
		}
		if enter < 0 {
			if s.fresh {
				return nil // optimal, on exactly re-derived numbers
			}
			if err := s.refresh(p); err != nil {
				return err
			}
			continue
		}
		w := s.ftran(p, enter)

		// Ratio test: the entering variable moves by t >= 0 toward its
		// opposite bound; basic variables move at rate -sigma * w.
		tBest := s.up[enter] - s.lo[enter] // own-range bound flip, may be +Inf
		leave, leaveAtUpper := -1, false
		consider := func(j int, rate float64) {
			var ratio float64
			var hitsUpper bool
			switch {
			case rate < -pivotTol:
				if math.IsInf(s.lo[j], -1) {
					return
				}
				ratio = (s.x[j] - s.lo[j]) / -rate
			case rate > pivotTol:
				if math.IsInf(s.up[j], 1) {
					return
				}
				ratio = (s.up[j] - s.x[j]) / rate
				hitsUpper = true
			default:
				return
			}
			if ratio < 0 {
				ratio = 0 // degenerate overshoot from roundoff
			}
			if ratio < tBest-ratioTie || (ratio <= tBest+ratioTie && (leave == -1 || j < leave)) {
				tBest = ratio
				leave = j
				leaveAtUpper = hitsUpper
			}
		}
		for b := 0; b < m; b++ {
			consider(s.varAt[b], -sigma*w[b])
		}
		if math.IsInf(tBest, 1) {
			return ErrUnbounded
		}
		if leave < 0 {
			// Bound flip: the entering variable crosses its own range
			// before any basic variable blocks. No basis change — the
			// primal values just shift along w.
			s.stats.PrimalPivots++
			for b := 0; b < m; b++ {
				if v := w[b]; v != 0 {
					s.x[s.varAt[b]] -= sigma * tBest * v
				}
			}
			if s.status[enter] == stLower {
				s.status[enter] = stUpper
				s.x[enter] = s.up[enter]
			} else {
				s.status[enter] = stLower
				s.x[enter] = s.lo[enter]
			}
			s.fresh = false
			continue
		}
		pos := s.posOf[leave]
		if pos < 0 {
			return ErrMaxIterations
		}
		if s.effMaxUpdates() == 0 || etaSpike(w, pos) {
			if len(s.etaPos) > 0 {
				// Spike under an accumulated eta file: retry the iteration
				// on a fresh factorization before committing to anything —
				// most spikes are artifacts of update drift.
				if err := s.refresh(p); err != nil {
					return err
				}
				continue
			}
			// Fresh-basis spike (or updates disabled): exchange, then
			// refactor — the reference per-pivot path.
			s.stats.PrimalPivots++
			s.status[enter] = stBasic
			if leaveAtUpper {
				s.status[leave] = stUpper
			} else {
				s.status[leave] = stLower
			}
			if err := s.refresh(p); err != nil {
				return err
			}
			continue
		}
		s.stats.PrimalPivots++
		if err := s.pivotUpdate(p, enter, leave, pos, w, sigma*tBest, leaveAtUpper); err != nil {
			return err
		}
	}
	return ErrMaxIterations
}

// dualLoop runs bounded-variable dual simplex pivots from a dual-feasible
// basis until primal feasibility — the recovery path when a perturbed
// candidate makes the previous optimal basis primal infeasible. Exchanges
// go through the same eta-update machinery as the primal loop (the uniform
// π = B⁻ᵀ·e_pos row direction replaces the old active-row special-casing),
// and feasibility — like primal optimality — is only accepted on freshly
// re-derived numbers: a nil return means s.x is primal feasible for the
// current statuses, exactly recomputed.
func (s *RevisedSolver) dualLoop(p *Problem) error {
	nTot := s.sigN + s.sigUb
	m := s.sigEq + s.sigUb
	rule := s.effPricing()
	for iter := 0; iter < warmMaxIter; iter++ {
		// Past half the iteration budget the loop abandons the weighted
		// rules for Bland's — the anti-cycling guarantee the pricing
		// heuristics lack. The selection rule only steers the pivot path;
		// the answer is still accepted only on freshly re-derived numbers.
		bland := rule == PriceBland || iter >= warmMaxIter/2

		// Leaving variable.
		leave := -1
		var belowLower bool
		var viol float64
		if bland {
			// Historical rule: smallest-index basic variable outside its
			// bounds (Bland-style anti-cycling for the dual method).
			for j := 0; j < nTot; j++ {
				if s.status[j] != stBasic {
					continue
				}
				if s.x[j] < s.lo[j]-s.ptol {
					leave, belowLower, viol = j, true, s.lo[j]-s.x[j]
					break
				}
				if s.x[j] > s.up[j]+s.ptol {
					leave, belowLower, viol = j, false, s.x[j]-s.up[j]
					break
				}
			}
		} else {
			// Most-violated row, violation²/β-weighted under steepest-edge,
			// with a deterministic smallest-variable tie-break.
			best := 0.0
			for b := 0; b < m; b++ {
				j := s.varAt[b]
				var v float64
				var bl bool
				switch {
				case s.x[j] < s.lo[j]-s.ptol:
					v, bl = s.lo[j]-s.x[j], true
				case s.x[j] > s.up[j]+s.ptol:
					v, bl = s.x[j]-s.up[j], false
				default:
					continue
				}
				score := v
				if rule == PriceSteepestEdge {
					score = v * v / s.dw[b]
				}
				if leave < 0 || score > best || (score == best && j < leave) {
					best, leave, belowLower, viol = score, j, bl, v
				}
			}
		}
		if leave < 0 {
			if s.fresh {
				return nil // primal feasible, on exactly re-derived numbers
			}
			if err := s.refresh(p); err != nil {
				return err
			}
			continue
		}
		pos := s.posOf[leave]
		if pos < 0 {
			return ErrMaxIterations
		}

		// Row direction and pricing: alpha_j = pi . A[:, j] with
		// pi = B^-T e_pos through the eta file.
		pi := s.btranUnit(p, pos)
		s.priceAlpha(p, pi)

		// Entering candidates: sign-eligible nonbasic columns with their
		// dual ratios |d|/|alpha|.
		s.cands = s.cands[:0]
		for j := 0; j < nTot; j++ {
			st := s.status[j]
			if st == stBasic || s.up[j] <= s.lo[j] {
				continue
			}
			a := s.alpha[j]
			if math.Abs(a) <= pivotTol {
				continue
			}
			// x_leave changes by -alpha_j * dx_j; pick directions that
			// push it back toward the violated bound.
			var elig bool
			if belowLower {
				elig = (st == stLower && a < 0) || (st == stUpper && a > 0)
			} else {
				elig = (st == stLower && a > 0) || (st == stUpper && a < 0)
			}
			if !elig {
				continue
			}
			dj := s.d[j]
			// Clamp tiny wrong-signed reduced costs (inside the dual
			// tolerance) to zero so the ratio stays nonnegative.
			if st == stLower && dj < 0 {
				dj = 0
			}
			if st == stUpper && dj > 0 {
				dj = 0
			}
			s.cands = append(s.cands, dualCand{j: j, ratio: math.Abs(dj) / math.Abs(a)})
		}
		if len(s.cands) == 0 {
			if !s.fresh {
				// The violation may be an artifact of eta drift: re-derive
				// exactly before declaring the problem infeasible.
				if err := s.refresh(p); err != nil {
					return err
				}
				continue
			}
			// No column can repair the violated row: primal infeasible.
			// Bank the dual ray as a recyclable certificate before
			// reporting, indexed by its structural cause — the violated
			// basic variable and direction (see prescreen.go).
			s.captureRay(p, farkasCause{leave: leave, belowLower: belowLower})
			return ErrInfeasible
		}
		enter := -1
		s.flips = s.flips[:0]
		if bland {
			// Historical entering rule: smallest ratio with Bland
			// tie-breaking, no bound flips.
			best := math.Inf(1)
			for _, c := range s.cands {
				if c.ratio < best-ratioTie || (c.ratio <= best+ratioTie && (enter == -1 || c.j < enter)) {
					best, enter = c.ratio, c.j
				}
			}
		} else {
			// Bound-flipping ratio test: walk the breakpoints in dual-step
			// order. Passing a boxed candidate's breakpoint flips it to the
			// opposite bound (its reduced cost changes sign there, so the
			// flip keeps dual feasibility) and reduces the improvement slope
			// — the leaving variable's remaining violation — by |α|·range.
			// The entering column is the breakpoint at which the slope would
			// be exhausted, or the first candidate with no finite opposite
			// bound to flip to. One long dual step absorbs every flipped
			// breakpoint into a single basis exchange.
			sort.Slice(s.cands, func(a, b int) bool {
				ca, cb := s.cands[a], s.cands[b]
				return ca.ratio < cb.ratio || (ca.ratio == cb.ratio && ca.j < cb.j)
			})
			slope := viol
			for _, c := range s.cands {
				rng := s.up[c.j] - s.lo[c.j]
				if math.IsInf(rng, 1) {
					enter = c.j
					break
				}
				dec := math.Abs(s.alpha[c.j]) * rng
				if slope-dec <= s.ptol {
					enter = c.j
					break
				}
				slope -= dec
				s.flips = append(s.flips, c.j)
			}
			if enter < 0 {
				// Every candidate is a flippable breakpoint and the slope
				// never exhausts. Enter at the last breakpoint instead of
				// inventing an unbounded dual ray — infeasibility verdicts
				// stay with the fresh-basis Farkas branch above.
				enter = s.flips[len(s.flips)-1]
				s.flips = s.flips[:len(s.flips)-1]
			}
			if len(s.flips) > 0 {
				s.applyFlips(p)
			}
		}
		useSE := !bland && rule == PriceSteepestEdge
		w := s.ftran(p, enter)
		if s.effMaxUpdates() == 0 || etaSpike(w, pos) {
			if len(s.etaPos) > 0 {
				if err := s.refresh(p); err != nil {
					return err
				}
				continue
			}
			s.stats.DualPivots++
			if useSE {
				s.stats.SEPivots++
			}
			s.status[enter] = stBasic
			if belowLower {
				s.status[leave] = stLower
			} else {
				s.status[leave] = stUpper
			}
			if err := s.refresh(p); err != nil {
				return err
			}
			continue
		}
		var bound float64
		if belowLower {
			bound = s.lo[leave]
		} else {
			bound = s.up[leave]
		}
		delta := (s.x[leave] - bound) / w[pos]
		s.stats.DualPivots++
		if useSE {
			s.stats.SEPivots++
			s.devexUpdate(w, pos, m)
		}
		if err := s.pivotUpdate(p, enter, leave, pos, w, delta, !belowLower); err != nil {
			return err
		}
	}
	return ErrMaxIterations
}

// devexUpdate propagates the Devex reference weights through the basis
// exchange at position pos with transformed column w (taken against the
// pre-exchange basis): every touched position's weight rises to at least
// its steepest-edge estimate through the pivot, and the pivot position
// restarts from the reference floor of 1. Weights only steer leaving-row
// selection, so approximation error here costs pivots, never correctness.
func (s *RevisedSolver) devexUpdate(w []float64, pos, m int) {
	wp := w[pos]
	bp := s.dw[pos]
	for i := 0; i < m; i++ {
		if i == pos || w[i] == 0 {
			continue
		}
		r := w[i] / wp
		if cand := r * r * bp; cand > s.dw[i] {
			s.dw[i] = cand
		}
	}
	if d := bp / (wp * wp); d > 1 {
		s.dw[pos] = d
	} else {
		s.dw[pos] = 1
	}
}

// applyFlips moves every variable in s.flips to its opposite bound and
// repairs the basic values with one combined ftran: Δx_B = −B⁻¹·A_F·Δx_F,
// where the flipped columns' deltas are accumulated into a single stacked-row
// vector first. Flips never touch the basis matrix or the reduced costs —
// only primal values move.
func (s *RevisedSolver) applyFlips(p *Problem) {
	n, nEq := s.sigN, s.sigEq
	m := s.sigEq + s.sigUb
	s.flipCol = growF(s.flipCol, m)
	for i := range s.flipCol {
		s.flipCol[i] = 0
	}
	for _, j := range s.flips {
		var dx float64
		if s.status[j] == stLower {
			dx = s.up[j] - s.lo[j]
			s.status[j] = stUpper
			s.x[j] = s.up[j]
		} else {
			dx = s.lo[j] - s.up[j]
			s.status[j] = stLower
			s.x[j] = s.lo[j]
		}
		if j < n {
			for r := 0; r < m; r++ {
				if v := s.rowView(p, r)[j]; v != 0 {
					s.flipCol[r] += dx * v
				}
			}
		} else {
			s.flipCol[nEq+(j-n)] += dx
		}
	}
	s.stats.BoundFlips += len(s.flips)
	wf := s.ftranRows(p, s.flipCol)
	for b := 0; b < m; b++ {
		if v := wf[b]; v != 0 {
			s.x[s.varAt[b]] -= v
		}
	}
	s.fresh = false
}

// ftranRows is ftran for an arbitrary stacked-row vector instead of a
// single constraint column: it computes B⁻¹·col over basis positions
// through the frozen factorization and the eta file. Used by the
// bound-flipping ratio test to repair the basic values after a batch of
// flips with one solve.
func (s *RevisedSolver) ftranRows(p *Problem, col []float64) []float64 {
	k := len(s.activeRows)
	m := s.sigEq + s.sigUb
	s.colAct = growF(s.colAct, k)
	s.sol = growF(s.sol, k)
	for a, r := range s.activeRows {
		s.colAct[a] = col[r]
	}
	if k > 0 {
		s.wSolveInto(s.sol, s.colAct)
	}
	s.fcol = growF(s.fcol, m)
	copy(s.fcol, s.sol[:k])
	for t, r := range s.inactiveRows {
		s.fcol[k+t] = col[r] - mat.Dot(s.abasic[t*k:(t+1)*k], s.sol[:k])
	}
	for t, pp := range s.etaPos {
		e := s.etaBuf[t*m : (t+1)*m]
		wp := s.fcol[pp] / e[pp]
		if wp != 0 {
			for i := 0; i < m; i++ {
				if i != pp {
					s.fcol[i] -= e[i] * wp
				}
			}
		}
		s.fcol[pp] = wp
	}
	return s.fcol
}

// verify checks the warm result against the original problem: bounds and
// rows within the scale-aware primal tolerance, and the reduced-cost
// optimality certificate within the dual tolerance. It is the exact
// feasibility/optimality cross-check gating every warm answer; failure
// sends the solve to the flat tableau solver.
func (s *RevisedSolver) verify(p *Problem) bool {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	for j := 0; j < n; j++ {
		if s.x[j] < s.lo[j]-s.ptol || s.x[j] > s.up[j]+s.ptol {
			return false
		}
	}
	for r := 0; r < nEq; r++ {
		rv := p.Aeq.RowView(r)
		var sum, scale float64
		for j := 0; j < n; j++ {
			v := rv[j] * s.x[j]
			sum += v
			scale += math.Abs(v)
		}
		if math.Abs(sum-p.Beq[r]) > feasTol*(1+scale+math.Abs(p.Beq[r])) {
			return false
		}
	}
	for r := 0; r < nUb; r++ {
		rv := p.Aub.RowView(r)
		var sum, scale float64
		for j := 0; j < n; j++ {
			v := rv[j] * s.x[j]
			sum += v
			scale += math.Abs(v)
		}
		if sum > p.Bub[r]+feasTol*(1+scale+math.Abs(p.Bub[r])) {
			return false
		}
	}
	return s.dualFeasible()
}

// growI8 is growF for status slices.
func growI8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		return make([]int8, n)
	}
	return buf[:n]
}

// growInt is growF for index slices.
func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
