package lp

import "sync/atomic"

// Process-wide revised-solver counters. Revised solvers live deep inside
// pooled engine workspaces and per-worker sessions, so production
// observability (the gridmtdd /v1/stats endpoint, mtdexp -v) cannot reach
// the per-solver RevisedStats; instead every RevisedSolver flushes its
// per-Solve counter deltas into these atomics, and GlobalRevisedStats
// aggregates them for the whole process. The flush is one batch of atomic
// adds per Solve call, so the hot pivot loops never touch shared memory.
type globalStats struct {
	solves, warm, cold, fallbacks      atomic.Int64
	primal, dual, etaUpdates, refacts  atomic.Int64
	sePivots, weightResets, boundFlips atomic.Int64
	sparseFactors, prescreens          atomic.Int64
	prescreenProbes                    atomic.Int64
	infeasibles                        atomic.Int64
	boundProbes, boundScreens          atomic.Int64
}

var global globalStats

// GlobalRevisedStats returns the process-wide revised-simplex counters
// accumulated since process start, across every RevisedSolver instance.
func GlobalRevisedStats() RevisedStats {
	return RevisedStats{
		Solves:           int(global.solves.Load()),
		WarmSolves:       int(global.warm.Load()),
		ColdSolves:       int(global.cold.Load()),
		Fallbacks:        int(global.fallbacks.Load()),
		PrimalPivots:     int(global.primal.Load()),
		DualPivots:       int(global.dual.Load()),
		EtaUpdates:       int(global.etaUpdates.Load()),
		Refactorizations: int(global.refacts.Load()),
		SEPivots:         int(global.sePivots.Load()),
		WeightResets:     int(global.weightResets.Load()),
		BoundFlips:       int(global.boundFlips.Load()),
		SparseFactors:    int(global.sparseFactors.Load()),
		PrescreenHits:    int(global.prescreens.Load()),
		PrescreenProbes:  int(global.prescreenProbes.Load()),
		InfeasibleSolves: int(global.infeasibles.Load()),
		BoundProbes:      int(global.boundProbes.Load()),
		BoundScreens:     int(global.boundScreens.Load()),
	}
}

// Delta returns the counter increments between an earlier snapshot of the
// cumulative stats and this one (field-wise s − since). Tests and CI
// compare per-request deltas with it instead of racing absolute
// process-global values:
//
//	before := lp.GlobalRevisedStats()
//	... run one request ...
//	d := lp.GlobalRevisedStats().Delta(before)
func (s RevisedStats) Delta(since RevisedStats) RevisedStats {
	return RevisedStats{
		Solves:           s.Solves - since.Solves,
		WarmSolves:       s.WarmSolves - since.WarmSolves,
		ColdSolves:       s.ColdSolves - since.ColdSolves,
		Fallbacks:        s.Fallbacks - since.Fallbacks,
		PrimalPivots:     s.PrimalPivots - since.PrimalPivots,
		DualPivots:       s.DualPivots - since.DualPivots,
		EtaUpdates:       s.EtaUpdates - since.EtaUpdates,
		Refactorizations: s.Refactorizations - since.Refactorizations,
		SEPivots:         s.SEPivots - since.SEPivots,
		WeightResets:     s.WeightResets - since.WeightResets,
		BoundFlips:       s.BoundFlips - since.BoundFlips,
		SparseFactors:    s.SparseFactors - since.SparseFactors,
		PrescreenHits:    s.PrescreenHits - since.PrescreenHits,
		PrescreenProbes:  s.PrescreenProbes - since.PrescreenProbes,
		InfeasibleSolves: s.InfeasibleSolves - since.InfeasibleSolves,
		BoundProbes:      s.BoundProbes - since.BoundProbes,
		BoundScreens:     s.BoundScreens - since.BoundScreens,
	}
}

// flushStats adds the counters accumulated since the previous flush to the
// process-wide aggregate.
func (s *RevisedSolver) flushStats() {
	d, f := s.stats, s.flushed
	global.solves.Add(int64(d.Solves - f.Solves))
	global.warm.Add(int64(d.WarmSolves - f.WarmSolves))
	global.cold.Add(int64(d.ColdSolves - f.ColdSolves))
	global.fallbacks.Add(int64(d.Fallbacks - f.Fallbacks))
	global.primal.Add(int64(d.PrimalPivots - f.PrimalPivots))
	global.dual.Add(int64(d.DualPivots - f.DualPivots))
	global.etaUpdates.Add(int64(d.EtaUpdates - f.EtaUpdates))
	global.refacts.Add(int64(d.Refactorizations - f.Refactorizations))
	global.sePivots.Add(int64(d.SEPivots - f.SEPivots))
	global.weightResets.Add(int64(d.WeightResets - f.WeightResets))
	global.boundFlips.Add(int64(d.BoundFlips - f.BoundFlips))
	global.sparseFactors.Add(int64(d.SparseFactors - f.SparseFactors))
	global.prescreens.Add(int64(d.PrescreenHits - f.PrescreenHits))
	global.prescreenProbes.Add(int64(d.PrescreenProbes - f.PrescreenProbes))
	global.infeasibles.Add(int64(d.InfeasibleSolves - f.InfeasibleSolves))
	global.boundProbes.Add(int64(d.BoundProbes - f.BoundProbes))
	global.boundScreens.Add(int64(d.BoundScreens - f.BoundScreens))
	s.flushed = d
}
