package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/mat"
)

// randomBoundedLP builds a random feasible-looking LP with one equality
// row (a budget constraint, like the dispatch balance) and several
// inequality rows over box-bounded variables.
func randomBoundedLP(rng *rand.Rand, n, nUb int) *Problem {
	c := make([]float64, n)
	lo := make([]float64, n)
	up := make([]float64, n)
	total := 0.0
	for j := 0; j < n; j++ {
		c[j] = 1 + 9*rng.Float64()
		lo[j] = 0
		up[j] = 1 + 4*rng.Float64()
		total += up[j]
	}
	aeq := mat.NewDense(1, n)
	for j := 0; j < n; j++ {
		aeq.Set(0, j, 1)
	}
	beq := []float64{total * (0.3 + 0.4*rng.Float64())}
	aub := mat.NewDense(nUb, n)
	bub := make([]float64, nUb)
	for i := 0; i < nUb; i++ {
		for j := 0; j < n; j++ {
			aub.Set(i, j, 2*rng.Float64()-1)
		}
		bub[i] = 1 + 3*rng.Float64()
	}
	return &Problem{C: c, Aeq: aeq, Beq: beq, Aub: aub, Bub: bub, Lower: lo, Upper: up}
}

func objectivesAgree(t *testing.T, tag string, a, b float64) {
	t.Helper()
	scale := 1 + math.Abs(a)
	if math.Abs(a-b) > 1e-9*scale {
		t.Fatalf("%s: objectives disagree: %.15g vs %.15g", tag, a, b)
	}
}

// TestRevisedMatchesFlatRandom cross-checks the revised solver against the
// flat tableau solver on random LPs, including the warm re-solve of each
// problem (second call reuses the crashed basis).
func TestRevisedMatchesFlatRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs := NewRevisedSolver()
	solved := 0
	for trial := 0; trial < 120; trial++ {
		p := randomBoundedLP(rng, 3+rng.Intn(6), 1+rng.Intn(8))
		ref, refErr := Solve(p)
		got, gotErr := rs.Solve(p)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: flat err %v, revised err %v", trial, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		solved++
		objectivesAgree(t, "cold", ref.Objective, got.Objective)
		// Re-solve warm: the crashed basis is already optimal, so this
		// must finish on the warm path with zero pivots.
		before := rs.Stats()
		again, err := rs.Solve(p)
		if err != nil {
			t.Fatalf("trial %d warm re-solve: %v", trial, err)
		}
		objectivesAgree(t, "warm", ref.Objective, again.Objective)
		if rs.Stats().WarmSolves == before.WarmSolves {
			t.Fatalf("trial %d: warm re-solve did not use the warm path", trial)
		}
	}
	if solved < 40 {
		t.Fatalf("only %d/120 random LPs were feasible; generator too aggressive", solved)
	}
}

// TestRevisedWarmAcrossPerturbations drives one solver through a walk of
// slightly perturbed LPs — the dispatch-engine access pattern — and
// cross-checks every solve against a fresh flat solve.
func TestRevisedWarmAcrossPerturbations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var base *Problem
	for seed := int64(11); ; seed++ {
		rng = rand.New(rand.NewSource(seed))
		base = randomBoundedLP(rng, 6, 10)
		if _, err := Solve(base); err == nil {
			break
		}
		if seed > 100 {
			t.Fatal("no feasible base LP found")
		}
	}
	rs := NewRevisedSolver()
	warmUsed := 0
	for step := 0; step < 60; step++ {
		p := &Problem{
			C:     base.C,
			Aeq:   base.Aeq,
			Beq:   base.Beq,
			Aub:   base.Aub.Clone(),
			Bub:   append([]float64(nil), base.Bub...),
			Lower: base.Lower,
			Upper: base.Upper,
		}
		for i := 0; i < p.Aub.Rows(); i++ {
			for j := 0; j < p.Aub.Cols(); j++ {
				p.Aub.Set(i, j, p.Aub.At(i, j)*(1+0.15*(2*rng.Float64()-1)))
			}
			p.Bub[i] *= 1 + 0.15*(2*rng.Float64()-1)
		}
		ref, refErr := Solve(p)
		before := rs.Stats()
		got, gotErr := rs.Solve(p)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("step %d: flat err %v, revised err %v", step, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		objectivesAgree(t, "perturbed", ref.Objective, got.Objective)
		if rs.Stats().WarmSolves > before.WarmSolves {
			warmUsed++
		}
	}
	if warmUsed == 0 {
		t.Fatal("no perturbed solve used the warm path")
	}
	t.Logf("warm path used on %d/60 perturbed solves; stats %+v", warmUsed, rs.Stats())
}

// TestRevisedDualRecovery tightens an inequality until the previous
// optimal basis is primal infeasible and checks that the dual-simplex
// recovery produces the flat solver's optimum.
func TestRevisedDualRecovery(t *testing.T) {
	// min -x0 - x1 inside the unit box with x0 + x1 <= b: the optimum
	// rides the diagonal constraint, so shrinking b strands the old basis
	// above the new facet.
	mk := func(b float64) *Problem {
		return &Problem{
			C:     []float64{-1, -1.1},
			Aub:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
			Bub:   []float64{b},
			Lower: []float64{0, 0},
			Upper: []float64{1, 1},
		}
	}
	rs := NewRevisedSolver()
	if _, err := rs.Solve(mk(1.5)); err != nil {
		t.Fatal(err)
	}
	before := rs.Stats()
	got, err := rs.Solve(mk(0.8))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Solve(mk(0.8))
	if err != nil {
		t.Fatal(err)
	}
	objectivesAgree(t, "tightened", ref.Objective, got.Objective)
	st := rs.Stats()
	if st.WarmSolves == before.WarmSolves {
		t.Fatalf("tightened solve fell back cold: %+v", st)
	}
	if st.DualPivots == before.DualPivots {
		t.Fatalf("expected dual-simplex pivots for the primal-infeasible basis: %+v", st)
	}
}

// TestRevisedDegenerateBasis re-solves a degenerate LP (redundant active
// constraints at the optimum) warm and cross-checks the objective.
func TestRevisedDegenerateBasis(t *testing.T) {
	// Three constraints meet x0 + x1 <= 1 at the same vertex (1, 0):
	// duplicated rows force degenerate pivots.
	p := &Problem{
		C:     []float64{-1, -0.5},
		Aub:   mat.NewDenseFrom(3, 2, []float64{1, 1, 1, 1, 2, 2}),
		Bub:   []float64{1, 1, 2},
		Lower: []float64{0, 0},
		Upper: []float64{2, 2},
	}
	rs := NewRevisedSolver()
	first, err := rs.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := rs.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	objectivesAgree(t, "degenerate", first.Objective, second.Objective)
	ref, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	objectivesAgree(t, "degenerate-vs-flat", ref.Objective, second.Objective)
}

// TestRevisedInfeasibleAfterWarm perturbs a solved LP into infeasibility;
// the warm path must hand over to the flat solver, which reports
// ErrInfeasible.
func TestRevisedInfeasibleAfterWarm(t *testing.T) {
	mk := func(b float64) *Problem {
		return &Problem{
			C:     []float64{1, 1},
			Aeq:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
			Beq:   []float64{1},
			Aub:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
			Bub:   []float64{b},
			Lower: []float64{0, 0},
			Upper: []float64{1, 1},
		}
	}
	rs := NewRevisedSolver()
	if _, err := rs.Solve(mk(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Solve(mk(0.5)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	// And the solver recovers once the problem is feasible again.
	sol, err := rs.Solve(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1) > 1e-9 {
		t.Fatalf("post-recovery objective %.12g, want 1", sol.Objective)
	}
}

// TestRevisedFreeVariableFallsBack checks that problems outside the warm
// path's variable model (free variables) still solve via the flat solver.
func TestRevisedFreeVariableFallsBack(t *testing.T) {
	p := &Problem{
		C:   []float64{1, 2},
		Aeq: mat.NewDenseFrom(1, 2, []float64{1, 1}),
		Beq: []float64{3},
		Aub: mat.NewDenseFrom(1, 2, []float64{1, -1}),
		Bub: []float64{1},
	}
	rs := NewRevisedSolver()
	got, err := rs.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	objectivesAgree(t, "free", ref.Objective, got.Objective)
	if rs.Stats().WarmSolves != 0 {
		t.Fatal("free-variable LP must not use the warm path")
	}
}

// TestRevisedInvalidate forces a from-scratch restart and checks the
// solver still agrees with the flat path afterwards, without reusing the
// dropped basis: a repeated solve with the basis kept is a zero-pivot
// basis hit, so the post-Invalidate solve must pay pivots again.
func TestRevisedInvalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomBoundedLP(rng, 5, 6)
	ref, err := Solve(p)
	if err != nil {
		t.Skip("random LP infeasible under this seed")
	}
	rs := NewRevisedSolver()
	if _, err := rs.Solve(p); err != nil {
		t.Fatal(err)
	}
	first := rs.Stats()
	if _, err := rs.Solve(p); err != nil {
		t.Fatal(err)
	}
	kept := rs.Stats()
	if d := (kept.PrimalPivots + kept.DualPivots) - (first.PrimalPivots + first.DualPivots); d != 0 {
		t.Fatalf("re-solving with the kept basis paid %d pivots", d)
	}
	rs.Invalidate()
	if rs.HasBasis() {
		t.Fatal("Invalidate left the basis loaded")
	}
	got, err := rs.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	objectivesAgree(t, "post-invalidate", ref.Objective, got.Objective)
	st := rs.Stats()
	if st.ColdSolves == 0 &&
		(st.PrimalPivots+st.DualPivots) == (kept.PrimalPivots+kept.DualPivots) {
		t.Fatalf("post-Invalidate solve reused the dropped basis: %+v", st)
	}
}
