// Package lp implements a dense two-phase simplex solver for linear
// programs of the form
//
//	min  cᵀx
//	s.t. Aeq·x  = beq
//	     Aub·x <= bub
//	     lower <= x <= upper
//
// It is the workhorse behind the DC optimal power flow: with linear
// generation costs the DC OPF is exactly such an LP. The flat-tableau
// two-phase solver (Solver) favours robustness (Bland's anti-cycling
// rule, explicit infeasible/unbounded detection) and performs the
// historical floating-point operations bit for bit — it anchors the
// bitwise-reproducible dense path. For the rating-heavy large cases the
// package also provides a bounded-variable revised simplex with
// cross-solve basis warm-starting (RevisedSolver, behind the WarmSolver
// interface; see revised.go) that re-solves the near-identical LPs of a
// local search in a few pivots and cross-checks every warm answer against
// a feasibility/optimality certificate, falling back to the flat solver
// on any doubt.
//
// The revised solver also answers questions about an LP without solving
// it. Recycled Farkas rays (prescreen.go) certify infeasibility of
// perturbed candidates before any pivoting, with the rays held in a
// structural-cause index so distinct failure modes screen concurrently.
// Dual-bound screening (dualbound.go) works on the feasible side: each
// verified optimal basis banks its dual solution, and
// DualBoundExceeds prices a candidate problem's data against those
// certificates — by weak duality every stored dual vector yields an
// exact lower bound on the candidate's optimum in O(m·n) with zero
// pivots, so search layers can reject candidates whose bound already
// clears their acceptance threshold. Both screens trust only
// certificates re-evaluated against the candidate's exact data with
// conservative margins: float error can weaken a screen (a missed
// skip), never produce a wrong verdict.
package lp

import (
	"errors"
	"fmt"
	"math"

	"gridmtd/internal/mat"
)

// Status describes the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal solution was found.
	StatusOptimal Status = iota + 1
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrInfeasible is returned when the problem has no feasible point.
var ErrInfeasible = errors.New("lp: problem is infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: problem is unbounded")

// ErrMaxIterations is returned if the simplex method fails to terminate
// within its iteration budget (should not happen with Bland's rule unless
// the problem is numerically pathological).
var ErrMaxIterations = errors.New("lp: iteration limit exceeded")

// Problem is an LP in the general form documented at the package level.
// Aeq/Beq and Aub/Bub may be nil (no constraints of that kind). Lower and
// Upper may be nil (interpreted as -Inf/+Inf) or contain ±Inf entries.
type Problem struct {
	C     []float64
	Aeq   *mat.Dense
	Beq   []float64
	Aub   *mat.Dense
	Bub   []float64
	Lower []float64
	Upper []float64
}

// Solution is the result of a successful solve.
type Solution struct {
	X         []float64
	Objective float64
	Status    Status
}

// Validate checks the dimensional consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: empty objective")
	}
	if p.Aeq != nil {
		if p.Aeq.Cols() != n {
			return fmt.Errorf("lp: Aeq has %d columns, want %d", p.Aeq.Cols(), n)
		}
		if len(p.Beq) != p.Aeq.Rows() {
			return fmt.Errorf("lp: Beq has length %d, want %d", len(p.Beq), p.Aeq.Rows())
		}
	} else if len(p.Beq) != 0 {
		return errors.New("lp: Beq without Aeq")
	}
	if p.Aub != nil {
		if p.Aub.Cols() != n {
			return fmt.Errorf("lp: Aub has %d columns, want %d", p.Aub.Cols(), n)
		}
		if len(p.Bub) != p.Aub.Rows() {
			return fmt.Errorf("lp: Bub has length %d, want %d", len(p.Bub), p.Aub.Rows())
		}
	} else if len(p.Bub) != 0 {
		return errors.New("lp: Bub without Aub")
	}
	if p.Lower != nil && len(p.Lower) != n {
		return fmt.Errorf("lp: Lower has length %d, want %d", len(p.Lower), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("lp: Upper has length %d, want %d", len(p.Upper), n)
	}
	for j := 0; j < n; j++ {
		lo, up := p.bound(j)
		if lo > up {
			return fmt.Errorf("lp: variable %d has lower bound %g > upper bound %g", j, lo, up)
		}
	}
	return nil
}

func (p *Problem) bound(j int) (lo, up float64) {
	lo, up = math.Inf(-1), math.Inf(1)
	if p.Lower != nil {
		lo = p.Lower[j]
	}
	if p.Upper != nil {
		up = p.Upper[j]
	}
	return lo, up
}

// Solve solves the problem. On success Status is StatusOptimal; otherwise
// the error is ErrInfeasible, ErrUnbounded or ErrMaxIterations. Callers
// solving many LPs should hold a Solver and call its Solve method to reuse
// the tableau buffers; this function is the one-shot convenience form.
func Solve(p *Problem) (*Solution, error) {
	return NewSolver().Solve(p)
}

// varMap records how original variable j maps onto standard-form variables.
type varMap struct {
	kind  int // 0: shifted by lower (x = lo + y), 1: reflected (x = up - y), 2: free split (x = y+ - y-)
	col   int // first standard-form column
	shift float64
}

const (
	pivotTol   = 1e-9
	feasTol    = 1e-7
	maxSimplex = 20000
)
