// Package lp implements a dense two-phase simplex solver for linear
// programs of the form
//
//	min  cᵀx
//	s.t. Aeq·x  = beq
//	     Aub·x <= bub
//	     lower <= x <= upper
//
// It is the workhorse behind the DC optimal power flow: with linear
// generation costs the DC OPF is exactly such an LP. Problem sizes in this
// project are tiny (tens of variables and constraints), so the solver
// favours robustness (Bland's anti-cycling rule, explicit
// infeasible/unbounded detection) over speed.
package lp

import (
	"errors"
	"fmt"
	"math"

	"gridmtd/internal/mat"
)

// Status describes the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal solution was found.
	StatusOptimal Status = iota + 1
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrInfeasible is returned when the problem has no feasible point.
var ErrInfeasible = errors.New("lp: problem is infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: problem is unbounded")

// ErrMaxIterations is returned if the simplex method fails to terminate
// within its iteration budget (should not happen with Bland's rule unless
// the problem is numerically pathological).
var ErrMaxIterations = errors.New("lp: iteration limit exceeded")

// Problem is an LP in the general form documented at the package level.
// Aeq/Beq and Aub/Bub may be nil (no constraints of that kind). Lower and
// Upper may be nil (interpreted as -Inf/+Inf) or contain ±Inf entries.
type Problem struct {
	C     []float64
	Aeq   *mat.Dense
	Beq   []float64
	Aub   *mat.Dense
	Bub   []float64
	Lower []float64
	Upper []float64
}

// Solution is the result of a successful solve.
type Solution struct {
	X         []float64
	Objective float64
	Status    Status
}

// Validate checks the dimensional consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: empty objective")
	}
	if p.Aeq != nil {
		if p.Aeq.Cols() != n {
			return fmt.Errorf("lp: Aeq has %d columns, want %d", p.Aeq.Cols(), n)
		}
		if len(p.Beq) != p.Aeq.Rows() {
			return fmt.Errorf("lp: Beq has length %d, want %d", len(p.Beq), p.Aeq.Rows())
		}
	} else if len(p.Beq) != 0 {
		return errors.New("lp: Beq without Aeq")
	}
	if p.Aub != nil {
		if p.Aub.Cols() != n {
			return fmt.Errorf("lp: Aub has %d columns, want %d", p.Aub.Cols(), n)
		}
		if len(p.Bub) != p.Aub.Rows() {
			return fmt.Errorf("lp: Bub has length %d, want %d", len(p.Bub), p.Aub.Rows())
		}
	} else if len(p.Bub) != 0 {
		return errors.New("lp: Bub without Aub")
	}
	if p.Lower != nil && len(p.Lower) != n {
		return fmt.Errorf("lp: Lower has length %d, want %d", len(p.Lower), n)
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("lp: Upper has length %d, want %d", len(p.Upper), n)
	}
	for j := 0; j < n; j++ {
		lo, up := p.bound(j)
		if lo > up {
			return fmt.Errorf("lp: variable %d has lower bound %g > upper bound %g", j, lo, up)
		}
	}
	return nil
}

func (p *Problem) bound(j int) (lo, up float64) {
	lo, up = math.Inf(-1), math.Inf(1)
	if p.Lower != nil {
		lo = p.Lower[j]
	}
	if p.Upper != nil {
		up = p.Upper[j]
	}
	return lo, up
}

// Solve solves the problem. On success Status is StatusOptimal; otherwise
// the error is ErrInfeasible, ErrUnbounded or ErrMaxIterations.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sf := toStandardForm(p)
	x, err := sf.simplex()
	if err != nil {
		return nil, err
	}
	orig := sf.recover(x)
	obj := mat.Dot(p.C, orig)
	return &Solution{X: orig, Objective: obj, Status: StatusOptimal}, nil
}

// --- standard form conversion -------------------------------------------

// varMap records how original variable j maps onto standard-form variables.
type varMap struct {
	kind  int // 0: shifted by lower (x = lo + y), 1: reflected (x = up - y), 2: free split (x = y+ - y-)
	col   int // first standard-form column
	shift float64
}

type standardForm struct {
	m, n int         // rows, columns of the standard-form system A y = b, y >= 0
	a    [][]float64 // m x n
	b    []float64   // length m, kept >= 0
	c    []float64   // length n
	vmap []varMap
	orig int // number of original variables
}

// toStandardForm rewrites the problem as min cᵀy s.t. Ay = b, y >= 0.
func toStandardForm(p *Problem) *standardForm {
	n := len(p.C)

	// Assign standard-form columns for the original variables.
	vmap := make([]varMap, n)
	cols := 0
	type upperRow struct {
		col int
		rhs float64
	}
	var uppers []upperRow
	for j := 0; j < n; j++ {
		lo, up := p.bound(j)
		switch {
		case !math.IsInf(lo, -1):
			vmap[j] = varMap{kind: 0, col: cols, shift: lo}
			if !math.IsInf(up, 1) {
				uppers = append(uppers, upperRow{col: cols, rhs: up - lo})
			}
			cols++
		case !math.IsInf(up, 1):
			vmap[j] = varMap{kind: 1, col: cols, shift: up}
			cols++
		default:
			vmap[j] = varMap{kind: 2, col: cols}
			cols += 2
		}
	}

	nEq := 0
	if p.Aeq != nil {
		nEq = p.Aeq.Rows()
	}
	nUb := 0
	if p.Aub != nil {
		nUb = p.Aub.Rows()
	}
	mRows := nEq + nUb + len(uppers)
	nCols := cols + nUb + len(uppers) // slacks for <= rows and upper-bound rows

	a := make([][]float64, mRows)
	for i := range a {
		a[i] = make([]float64, nCols)
	}
	b := make([]float64, mRows)
	c := make([]float64, nCols)

	// Objective in terms of standard-form variables, dropping the constant
	// from the shifts (added back in recover()).
	for j := 0; j < n; j++ {
		vm := vmap[j]
		switch vm.kind {
		case 0:
			c[vm.col] += p.C[j]
		case 1:
			c[vm.col] -= p.C[j]
		case 2:
			c[vm.col] += p.C[j]
			c[vm.col+1] -= p.C[j]
		}
	}

	// setRow expands original-variable coefficients into standard form,
	// returning the RHS adjustment caused by shifts.
	setRow := func(row []float64, coeffs func(j int) float64) (rhsAdjust float64) {
		for j := 0; j < n; j++ {
			v := coeffs(j)
			if v == 0 {
				continue
			}
			vm := vmap[j]
			switch vm.kind {
			case 0: // x = lo + y
				row[vm.col] += v
				rhsAdjust += v * vm.shift
			case 1: // x = up - y
				row[vm.col] -= v
				rhsAdjust += v * vm.shift
			case 2: // x = y+ - y-
				row[vm.col] += v
				row[vm.col+1] -= v
			}
		}
		return rhsAdjust
	}

	r := 0
	for i := 0; i < nEq; i++ {
		adj := setRow(a[r], func(j int) float64 { return p.Aeq.At(i, j) })
		b[r] = p.Beq[i] - adj
		r++
	}
	for i := 0; i < nUb; i++ {
		adj := setRow(a[r], func(j int) float64 { return p.Aub.At(i, j) })
		b[r] = p.Bub[i] - adj
		a[r][cols+i] = 1 // slack
		r++
	}
	for i, ur := range uppers {
		a[r][ur.col] = 1
		a[r][cols+nUb+i] = 1 // slack
		b[r] = ur.rhs
		r++
	}

	// Normalize to b >= 0.
	for i := range b {
		if b[i] < 0 {
			b[i] = -b[i]
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
		}
	}

	return &standardForm{m: mRows, n: nCols, a: a, b: b, c: c, vmap: vmap, orig: n}
}

// recover maps a standard-form solution back to original variables.
func (sf *standardForm) recover(y []float64) []float64 {
	x := make([]float64, sf.orig)
	for j := 0; j < sf.orig; j++ {
		vm := sf.vmap[j]
		switch vm.kind {
		case 0:
			x[j] = vm.shift + y[vm.col]
		case 1:
			x[j] = vm.shift - y[vm.col]
		case 2:
			x[j] = y[vm.col] - y[vm.col+1]
		}
	}
	return x
}

// --- two-phase simplex ----------------------------------------------------

const (
	pivotTol   = 1e-9
	feasTol    = 1e-7
	maxSimplex = 20000
)

// simplex runs phase 1 (artificial variables) then phase 2, returning the
// standard-form solution vector.
func (sf *standardForm) simplex() ([]float64, error) {
	m, n := sf.m, sf.n
	if m == 0 {
		// No constraints: minimum is at y = 0 unless some cost is negative,
		// in which case the LP is unbounded.
		for _, cj := range sf.c {
			if cj < -pivotTol {
				return nil, ErrUnbounded
			}
		}
		return make([]float64, n), nil
	}

	// Tableau with artificial variables appended: columns [0,n) original,
	// [n, n+m) artificial, last column RHS.
	width := n + m + 1
	tab := make([][]float64, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, width)
		copy(tab[i], sf.a[i])
		tab[i][n+i] = 1
		tab[i][width-1] = sf.b[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// Phase 1 objective: minimize the sum of artificials. Reduced-cost row.
	z := make([]float64, width)
	for j := 0; j < width; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += tab[i][j]
		}
		z[j] = -s // reduced cost of artificial basis for cost e on artificials
	}
	for j := n; j < n+m; j++ {
		z[j] += 1
	}

	if err := pivotLoop(tab, z, basis, n+m); err != nil {
		return nil, err
	}
	if -z[width-1] > feasTol { // phase-1 objective value
		return nil, ErrInfeasible
	}

	// Drive any artificial variables out of the basis.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(tab[i][j]) > pivotTol {
				doPivot(tab, z, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: harmless, basis keeps a zero-valued artificial.
			continue
		}
	}

	// Phase 2: rebuild the reduced-cost row for the real objective and
	// forbid artificial columns from entering.
	for j := 0; j < n; j++ {
		z[j] = sf.c[j]
	}
	for j := n; j < width; j++ {
		z[j] = 0
	}
	for i := 0; i < m; i++ {
		bi := basis[i]
		var cb float64
		if bi < n {
			cb = sf.c[bi]
		}
		if cb == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			z[j] -= cb * tab[i][j]
		}
	}
	if err := pivotLoop(tab, z, basis, n); err != nil {
		return nil, err
	}

	y := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			y[bi] = tab[i][width-1]
			if y[bi] < 0 && y[bi] > -feasTol {
				y[bi] = 0
			}
		}
	}
	return y, nil
}

// pivotLoop runs simplex pivots with Bland's rule until no entering column
// among [0, limit) has negative reduced cost.
func pivotLoop(tab [][]float64, z []float64, basis []int, limit int) error {
	m := len(tab)
	width := len(z)
	for iter := 0; iter < maxSimplex; iter++ {
		// Bland's rule: smallest-index entering variable.
		enter := -1
		for j := 0; j < limit; j++ {
			if z[j] < -pivotTol {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test; ties broken by smallest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			aij := tab[i][enter]
			if aij <= pivotTol {
				continue
			}
			ratio := tab[i][width-1] / aij
			if ratio < best-1e-12 || (math.Abs(ratio-best) <= 1e-12 && (leave == -1 || basis[i] < basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave == -1 {
			return ErrUnbounded
		}
		doPivot(tab, z, basis, leave, enter)
	}
	return ErrMaxIterations
}

// doPivot performs a Gauss-Jordan pivot on tab[row][col] and updates the
// reduced-cost row and basis bookkeeping.
func doPivot(tab [][]float64, z []float64, basis []int, row, col int) {
	width := len(z)
	pv := tab[row][col]
	inv := 1 / pv
	for j := 0; j < width; j++ {
		tab[row][j] *= inv
	}
	tab[row][col] = 1 // exact
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= f * tab[row][j]
		}
		tab[i][col] = 0 // exact
	}
	f := z[col]
	if f != 0 {
		for j := 0; j < width; j++ {
			z[j] -= f * tab[row][j]
		}
		z[col] = 0
	}
	basis[row] = col
}
