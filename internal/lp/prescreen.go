package lp

import (
	"math"

	"gridmtd/internal/mat"
)

// Farkas-ray recycling: when the dual simplex certifies a problem
// infeasible it does so by exhibiting a row-multiplier vector y (the dual
// ray at the violated row) with y ≥ 0 on the inequality rows such that the
// implied valid inequality (yᵀA)·x ≤ yᵀb cannot be met by any x inside the
// variable bounds. That certificate is a property of (A, b, lo, up) alone,
// not of the pivot path that found it — so a ray captured from one
// infeasible candidate can be re-tested, exactly, against the next
// candidate's data in O(m·n) and, when it still certifies, IS the answer.
// The selection search probes many reactance configurations whose dispatch
// LPs are infeasible for the same structural reason (the same overloaded
// cut), so recycling recent rays converts the repeated 15–22 ms infeasible
// dual-simplex runs of a cold ieee300 selection into microsecond screens.
//
// Certificates are indexed by their STRUCTURAL CAUSE — the basic variable
// whose bound violation no entering column could repair, and the violated
// direction. Distinct causes are distinct overloaded cuts; one search can
// alternate between several of them (different corners of the device box
// overload different line groups), and the old newest-first ring let a
// burst of one cause evict the rays of every other. The index instead
// retains the newest ray PER cause (a fresher ray for the same cut
// supersedes its stale predecessor rather than crowding out unrelated
// ones) and probes causes most-recently-useful first, bounding the probes
// per miss so a screen miss never costs more than the historical ring
// scan.
//
// Soundness does not rest on where a stored ray came from: every use
// recomputes yᵀA and yᵀb against the candidate's own data and declares
// infeasibility only when the bound gap exceeds a conservatively scaled
// tolerance — the same "trust only certificates" rule the warm solver
// already follows. A stale ray can only miss (costing one normal solve),
// never wrongly reject.

const (
	// farkasIndexCap bounds the number of distinct structural causes the
	// index retains (MRU eviction past it). Selections see a handful of
	// binding cut patterns; 32 is a wide ceiling, not a working set.
	farkasIndexCap = 32
	// farkasProbeMax bounds the O(m·n) ray revalidations per pre-screen
	// miss, keeping the worst-case miss cost at the historical 8-entry
	// ring's while the MRU ordering concentrates hits in the first
	// probes.
	farkasProbeMax = 8
)

// farkasCause identifies the structural reason a dual ray certified
// infeasibility: the basic variable whose violated bound no entering
// column could repair, and which bound it violated.
type farkasCause struct {
	leave      int
	belowLower bool
}

// farkasRay is one stored infeasibility certificate: the stacked-row
// multipliers (equality rows first, then inequality rows — the latter
// clamped nonnegative), the problem signature they apply to, and the
// structural cause they were captured at.
type farkasRay struct {
	y           []float64
	n, nEq, nUb int
	cause       farkasCause
}

// prescreen tests the indexed rays, most-recently-useful first and at
// most farkasProbeMax of them, against the problem's exact data. It
// returns true only when some ray certifies infeasibility for this
// problem; the certifying ray moves to the front of the probe order.
func (s *RevisedSolver) prescreen(p *Problem, n, nEq, nUb int) bool {
	probes := 0
	for i := range s.rays {
		if probes >= farkasProbeMax {
			break
		}
		ray := &s.rays[i]
		if ray.n != n || ray.nEq != nEq || ray.nUb != nUb {
			continue
		}
		probes++
		s.stats.PrescreenProbes++
		if s.rayCertifies(p, ray.y, n, nEq, nUb) {
			s.promoteRay(i)
			return true
		}
	}
	return false
}

// promoteRay moves the ray at index i to the front of the MRU order.
func (s *RevisedSolver) promoteRay(i int) {
	if i == 0 {
		return
	}
	r := s.rays[i]
	copy(s.rays[1:i+1], s.rays[:i])
	s.rays[0] = r
}

// rayCertifies recomputes c = yᵀA and yᵀb for the candidate problem and
// reports whether min_{lo≤x≤up} cᵀx > yᵀb by more than a scale-aware
// tolerance — the exact Farkas infeasibility condition. Any infinite bound
// the minimization would need makes the ray inconclusive (never a wrong
// verdict, just no screen).
func (s *RevisedSolver) rayCertifies(p *Problem, y []float64, n, nEq, nUb int) bool {
	s.rayScratch = growF(s.rayScratch, n)
	c := s.rayScratch[:n]
	for j := range c {
		c[j] = 0
	}
	rhs, scale := 0.0, 0.0
	for r := 0; r < nEq+nUb; r++ {
		yr := y[r]
		if yr == 0 {
			continue
		}
		var row []float64
		var b float64
		if r < nEq {
			row, b = p.Aeq.RowView(r), p.Beq[r]
		} else {
			row, b = p.Aub.RowView(r-nEq), p.Bub[r-nEq]
		}
		mat.AxpyVec(yr, row, c)
		rhs += yr * b
		scale += math.Abs(yr * b)
	}
	minAct := 0.0
	for j := 0; j < n; j++ {
		cj := c[j]
		if cj == 0 {
			continue
		}
		lo, up := p.bound(j)
		var v float64
		if cj > 0 {
			if math.IsInf(lo, -1) {
				return false
			}
			v = cj * lo
		} else {
			if math.IsInf(up, 1) {
				return false
			}
			v = cj * up
		}
		minAct += v
		scale += math.Abs(v)
	}
	return minAct > rhs+feasTol*(1+scale)
}

// captureRay is called at the dual loop's certified-infeasible exit, while
// s.pi still holds the dual ray B⁻ᵀe_pos of the violated row; cause names
// the basic variable (and direction) whose violation proved irreparable.
// It clamps the inequality-row components nonnegative in both orientations
// and stores whichever one certifies the current (known-infeasible)
// problem — self-validating, so a capture that would not have screened its
// own problem is simply dropped.
func (s *RevisedSolver) captureRay(p *Problem, cause farkasCause) {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	m := nEq + nUb
	if len(s.pi) < m {
		return
	}
	for _, sgn := range [2]float64{1, -1} {
		s.rayCand = growF(s.rayCand, m)
		y := s.rayCand[:m]
		maxAbs := 0.0
		for r := 0; r < m; r++ {
			v := sgn * s.pi[r]
			if r >= nEq && v < 0 {
				v = 0
			}
			y[r] = v
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		inv := 1 / maxAbs
		for r := range y {
			y[r] *= inv
		}
		if !s.rayCertifies(p, y, n, nEq, nUb) {
			continue
		}
		s.storeRay(y, n, nEq, nUb, cause)
		return
	}
}

// storeRay places a copy of y at the front of the MRU index. A ray with
// the same structural cause and signature is superseded in place (the
// newest certificate for a cut is the one its future candidates resemble)
// and exact duplicates are just promoted; past the cause cap the
// least-recently-useful cause is evicted.
func (s *RevisedSolver) storeRay(y []float64, n, nEq, nUb int, cause farkasCause) {
	for i := range s.rays {
		r := &s.rays[i]
		if r.n != n || r.nEq != nEq || r.nUb != nUb || r.cause != cause {
			continue
		}
		if !equalVec(r.y, y) {
			r.y = append(r.y[:0], y...)
		}
		s.promoteRay(i)
		return
	}
	ray := farkasRay{y: append([]float64(nil), y...), n: n, nEq: nEq, nUb: nUb, cause: cause}
	if len(s.rays) < farkasIndexCap {
		s.rays = append(s.rays, farkasRay{})
	}
	copy(s.rays[1:], s.rays[:len(s.rays)-1])
	s.rays[0] = ray
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
