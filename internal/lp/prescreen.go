package lp

import (
	"math"

	"gridmtd/internal/mat"
)

// Farkas-ray recycling: when the dual simplex certifies a problem
// infeasible it does so by exhibiting a row-multiplier vector y (the dual
// ray at the violated row) with y ≥ 0 on the inequality rows such that the
// implied valid inequality (yᵀA)·x ≤ yᵀb cannot be met by any x inside the
// variable bounds. That certificate is a property of (A, b, lo, up) alone,
// not of the pivot path that found it — so a ray captured from one
// infeasible candidate can be re-tested, exactly, against the next
// candidate's data in O(m·n) and, when it still certifies, IS the answer.
// The selection search probes many reactance configurations whose dispatch
// LPs are infeasible for the same structural reason (the same overloaded
// cut), so a tiny ring of recent rays converts the repeated 15–22 ms
// infeasible dual-simplex runs of a cold ieee300 selection into
// microsecond screens.
//
// Soundness does not rest on where a stored ray came from: every use
// recomputes yᵀA and yᵀb against the candidate's own data and declares
// infeasibility only when the bound gap exceeds a conservatively scaled
// tolerance — the same "trust only certificates" rule the warm solver
// already follows. A stale ray can only miss (costing one normal solve),
// never wrongly reject.

const (
	// farkasRingCap bounds the per-solver certificate ring. Screens cost
	// O(m·n) per ray on every solve that misses, so the ring stays small:
	// the searches that benefit recycle one or two structural causes of
	// infeasibility at a time.
	farkasRingCap = 8
)

// farkasRay is one stored infeasibility certificate: the stacked-row
// multipliers (equality rows first, then inequality rows — the latter
// clamped nonnegative) and the problem signature they apply to.
type farkasRay struct {
	y           []float64
	n, nEq, nUb int
}

// prescreen tests the ring's rays, newest first, against the problem's
// exact data. It returns true only when some ray certifies infeasibility
// for this problem.
func (s *RevisedSolver) prescreen(p *Problem, n, nEq, nUb int) bool {
	cnt := len(s.rays)
	for i := 1; i <= cnt; i++ {
		idx := ((s.rayNext-i)%cnt + cnt) % cnt
		ray := &s.rays[idx]
		if ray.n != n || ray.nEq != nEq || ray.nUb != nUb {
			continue
		}
		if s.rayCertifies(p, ray.y, n, nEq, nUb) {
			return true
		}
	}
	return false
}

// rayCertifies recomputes c = yᵀA and yᵀb for the candidate problem and
// reports whether min_{lo≤x≤up} cᵀx > yᵀb by more than a scale-aware
// tolerance — the exact Farkas infeasibility condition. Any infinite bound
// the minimization would need makes the ray inconclusive (never a wrong
// verdict, just no screen).
func (s *RevisedSolver) rayCertifies(p *Problem, y []float64, n, nEq, nUb int) bool {
	s.rayScratch = growF(s.rayScratch, n)
	c := s.rayScratch[:n]
	for j := range c {
		c[j] = 0
	}
	rhs, scale := 0.0, 0.0
	for r := 0; r < nEq+nUb; r++ {
		yr := y[r]
		if yr == 0 {
			continue
		}
		var row []float64
		var b float64
		if r < nEq {
			row, b = p.Aeq.RowView(r), p.Beq[r]
		} else {
			row, b = p.Aub.RowView(r-nEq), p.Bub[r-nEq]
		}
		mat.AxpyVec(yr, row, c)
		rhs += yr * b
		scale += math.Abs(yr * b)
	}
	minAct := 0.0
	for j := 0; j < n; j++ {
		cj := c[j]
		if cj == 0 {
			continue
		}
		lo, up := p.bound(j)
		var v float64
		if cj > 0 {
			if math.IsInf(lo, -1) {
				return false
			}
			v = cj * lo
		} else {
			if math.IsInf(up, 1) {
				return false
			}
			v = cj * up
		}
		minAct += v
		scale += math.Abs(v)
	}
	return minAct > rhs+feasTol*(1+scale)
}

// captureRay is called at the dual loop's certified-infeasible exit, while
// s.pi still holds the dual ray B⁻ᵀe_pos of the violated row. It clamps
// the inequality-row components nonnegative in both orientations and
// stores whichever one certifies the current (known-infeasible) problem —
// self-validating, so a capture that would not have screened its own
// problem is simply dropped.
func (s *RevisedSolver) captureRay(p *Problem) {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	m := nEq + nUb
	if len(s.pi) < m {
		return
	}
	for _, sgn := range [2]float64{1, -1} {
		s.rayCand = growF(s.rayCand, m)
		y := s.rayCand[:m]
		maxAbs := 0.0
		for r := 0; r < m; r++ {
			v := sgn * s.pi[r]
			if r >= nEq && v < 0 {
				v = 0
			}
			y[r] = v
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		inv := 1 / maxAbs
		for r := range y {
			y[r] *= inv
		}
		if !s.rayCertifies(p, y, n, nEq, nUb) {
			continue
		}
		s.storeRay(y, n, nEq, nUb)
		return
	}
}

// storeRay places a copy of y in the ring, replacing the oldest entry, and
// drops exact duplicates (consecutive infeasible candidates usually share
// one structural cause, and a ring full of copies screens nothing new).
func (s *RevisedSolver) storeRay(y []float64, n, nEq, nUb int) {
	for i := range s.rays {
		r := &s.rays[i]
		if r.n == n && r.nEq == nEq && r.nUb == nUb && equalVec(r.y, y) {
			return
		}
	}
	ray := farkasRay{y: append([]float64(nil), y...), n: n, nEq: nEq, nUb: nUb}
	if len(s.rays) < farkasRingCap {
		s.rays = append(s.rays, ray)
		s.rayNext = len(s.rays) % farkasRingCap
		return
	}
	s.rays[s.rayNext] = ray
	s.rayNext = (s.rayNext + 1) % farkasRingCap
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
