package lp

import (
	"math/rand"
	"sync"
	"testing"
)

// TestPricingRulesAgreeRandom is the pricing-invariance property on random
// bounded LPs: steepest-edge, Dantzig and Bland dual pricing pick different
// pivot sequences but must land on the same optimum as the flat tableau
// solver (1e-9), with identical feasibility verdicts. The warm re-solve
// after each cold one keeps every rule exercising the eta-update path.
func TestPricingRulesAgreeRandom(t *testing.T) {
	rules := []struct {
		name string
		rule PricingRule
	}{
		{"steepest-edge", PriceSteepestEdge},
		{"dantzig", PriceDantzig},
		{"bland", PriceBland},
	}
	solvers := make([]*RevisedSolver, len(rules))
	for i, r := range rules {
		solvers[i] = NewRevisedSolver()
		solvers[i].SetPricing(r.rule)
	}
	rng := rand.New(rand.NewSource(31))
	solved := 0
	for trial := 0; trial < 150; trial++ {
		p := randomBoundedLP(rng, 3+rng.Intn(8), 1+rng.Intn(10))
		ref, refErr := Solve(p)
		for i, r := range rules {
			got, gotErr := solvers[i].Solve(p)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d (%s): flat err %v, revised err %v", trial, r.name, refErr, gotErr)
			}
			if refErr != nil {
				continue
			}
			objectivesAgree(t, r.name, ref.Objective, got.Objective)
			// Warm re-solve under the same rule: the optimal basis is
			// current, so the answer must be identical again.
			again, err := solvers[i].Solve(p)
			if err != nil {
				t.Fatalf("trial %d (%s) warm: %v", trial, r.name, err)
			}
			objectivesAgree(t, r.name+" warm", ref.Objective, again.Objective)
		}
		if refErr == nil {
			solved++
		}
	}
	if solved < 50 {
		t.Fatalf("only %d/150 random LPs were feasible; generator too aggressive", solved)
	}
	// Counter hygiene: the steepest-edge solver must have priced with
	// weights (and reset them at refactorizations); the others must not
	// have touched the SE counters.
	se := solvers[0].Stats()
	if se.SEPivots == 0 || se.WeightResets == 0 {
		t.Fatalf("steepest-edge solver never used weighted pricing: %+v", se)
	}
	for i := 1; i < len(rules); i++ {
		if st := solvers[i].Stats(); st.SEPivots != 0 {
			t.Fatalf("%s solver recorded steepest-edge pivots: %+v", rules[i].name, st)
		}
	}
}

// TestGlobalStatsUnderParallelSolves hammers the process-wide counters from
// concurrent solvers (the planner's multi-start pattern: one solver per
// goroutine, shared atomic stats) and checks the aggregate adds up exactly.
// Run with -race to verify the counter path is synchronization-clean.
func TestGlobalStatsUnderParallelSolves(t *testing.T) {
	const workers = 8
	const perWorker = 25
	before := GlobalRevisedStats()
	var wg sync.WaitGroup
	locals := make([]RevisedStats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			rs := NewRevisedSolver()
			rs.SetPricing(PricingRule(w % 3)) // mix Bland/Dantzig/SE across workers
			for trial := 0; trial < perWorker; trial++ {
				p := randomBoundedLP(rng, 3+rng.Intn(6), 1+rng.Intn(8))
				_, _ = rs.Solve(p)
				// Interleave snapshot reads with the writes.
				_ = GlobalRevisedStats()
			}
			locals[w] = rs.Stats()
		}(w)
	}
	wg.Wait()
	after := GlobalRevisedStats()
	var want RevisedStats
	for _, st := range locals {
		want.Solves += st.Solves
		want.DualPivots += st.DualPivots
		want.SEPivots += st.SEPivots
		want.BoundFlips += st.BoundFlips
		want.WeightResets += st.WeightResets
		want.Refactorizations += st.Refactorizations
	}
	if got := after.Solves - before.Solves; got != want.Solves {
		t.Fatalf("global Solves delta %d != per-solver sum %d", got, want.Solves)
	}
	if got := after.DualPivots - before.DualPivots; got != want.DualPivots {
		t.Fatalf("global DualPivots delta %d != per-solver sum %d", got, want.DualPivots)
	}
	if got := after.SEPivots - before.SEPivots; got != want.SEPivots {
		t.Fatalf("global SEPivots delta %d != per-solver sum %d", got, want.SEPivots)
	}
	if got := after.BoundFlips - before.BoundFlips; got != want.BoundFlips {
		t.Fatalf("global BoundFlips delta %d != per-solver sum %d", got, want.BoundFlips)
	}
	if got := after.WeightResets - before.WeightResets; got != want.WeightResets {
		t.Fatalf("global WeightResets delta %d != per-solver sum %d", got, want.WeightResets)
	}
}
