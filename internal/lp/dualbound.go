package lp

import (
	"math"

	"gridmtd/internal/mat"
)

// Dual-bound screening: every verified warm solve ends with an optimal
// dual solution y for its problem — zero on rows whose slack is basic,
// the working-matrix transpose solve on the active rows. For THIS
// problem, y is optimal; but by weak duality, ANY y whose inequality-row
// components are ≤ 0 (in this solver's d = c − yᵀA sign convention)
// yields a valid lower bound on the optimum of ANY problem with the same
// shape:
//
//	OPT(p) ≥ yᵀb + Σ_j min(d_j·lo_j, d_j·up_j),  d = c − yᵀA,
//
// where d, b, lo, up are recomputed fresh against the candidate's own
// data. The selection search solves long runs of slightly perturbed
// dispatch LPs, so the incumbent optimum's duals stay near-optimal — and
// near-tight as a bound — for nearby candidates: when the bound already
// exceeds the search's current acceptance threshold, the candidate's
// exact cost cannot matter and the simplex run is skipped entirely.
//
// Exactness rests on the same trust-only-certificates rule as the Farkas
// pre-screen: the bound is evaluated in O(nnz(y)·n) against the
// candidate's exact data with a conservatively scaled margin, so float
// error can only weaken the screen (a missed skip), never produce a
// wrong verdict. A stale certificate costs one normal solve, nothing
// more.

const (
	// dualCertCap bounds the per-solver certificate ring. One local
	// search revolves around one incumbent basis at a time, so a few
	// recent dual solutions cover it; every extra certificate costs one
	// O(nnz(y)·n) bound evaluation per probe miss.
	dualCertCap = 4
	// boundTol scales the certification margin: a bound must clear the
	// threshold by boundTol·(1 + |threshold| + accumulated magnitude)
	// before a screen fires. Far above the ~1e-12 relative error an
	// O(m·n) float accumulation can carry, so the margin makes the
	// screen certified, not heuristic.
	boundTol = 1e-7
)

// dualCert is one stored dual solution: stacked row duals (equality rows
// first, inequality components clamped ≤ 0) plus the problem signature
// they price.
type dualCert struct {
	y           []float64
	n, nEq, nUb int
}

// DualBoundExceeds probes the stored dual certificates against the
// problem's exact data and reports whether any of them proves
// OPT(p) > threshold by the certified margin, returning the first such
// bound. The problem is not solved and no solver state changes; a false
// return means no stored certificate was conclusive, never that the
// optimum is below the threshold. p must be a validated problem of the
// shape the solver has been solving (callers on the engine fast path
// construct it the same way as for Solve).
func (s *RevisedSolver) DualBoundExceeds(p *Problem, threshold float64) (float64, bool) {
	if len(s.certs) == 0 || math.IsInf(threshold, 1) {
		return 0, false
	}
	defer s.flushStats()
	s.stats.BoundProbes++
	n := len(p.C)
	nEq, nUb := 0, 0
	if p.Aeq != nil {
		nEq = p.Aeq.Rows()
	}
	if p.Aub != nil {
		nUb = p.Aub.Rows()
	}
	for i := range s.certs {
		cert := &s.certs[i]
		if cert.n != n || cert.nEq != nEq || cert.nUb != nUb {
			continue
		}
		bound, scale, ok := s.certBound(p, cert.y, n, nEq, nUb)
		if !ok {
			continue
		}
		if bound > threshold+boundTol*(1+math.Abs(threshold)+scale) {
			s.stats.BoundScreens++
			if i > 0 {
				// MRU: the certificate that fired screens the next
				// candidate first.
				c := s.certs[i]
				copy(s.certs[1:i+1], s.certs[:i])
				s.certs[0] = c
			}
			return bound, true
		}
	}
	return 0, false
}

// certBound evaluates the weak-duality lower bound of one certificate
// against the candidate's exact data: bound = yᵀb + Σ_j min(d_j·lo_j,
// d_j·up_j) with d = c − yᵀA recomputed fresh. scale accumulates the
// magnitudes entering the sum (the margin's conditioning input);
// ok=false means the minimization needed an infinite bound — the
// certificate is inconclusive for this candidate, never wrong.
func (s *RevisedSolver) certBound(p *Problem, y []float64, n, nEq, nUb int) (bound, scale float64, ok bool) {
	s.rayScratch = growF(s.rayScratch, n)
	d := s.rayScratch[:n]
	copy(d, p.C)
	for r := 0; r < nEq+nUb; r++ {
		yr := y[r]
		if yr == 0 {
			continue
		}
		var row []float64
		var b float64
		if r < nEq {
			row, b = p.Aeq.RowView(r), p.Beq[r]
		} else {
			row, b = p.Aub.RowView(r-nEq), p.Bub[r-nEq]
		}
		mat.AxpyVec(-yr, row, d)
		bound += yr * b
		scale += math.Abs(yr * b)
	}
	for j := 0; j < n; j++ {
		dj := d[j]
		if dj == 0 {
			continue
		}
		lo, up := p.bound(j)
		var v float64
		if dj > 0 {
			if math.IsInf(lo, -1) {
				return 0, 0, false
			}
			v = dj * lo
		} else {
			if math.IsInf(up, 1) {
				return 0, 0, false
			}
			v = dj * up
		}
		bound += v
		scale += math.Abs(v)
	}
	return bound, scale, true
}

// captureDualCert banks the just-verified optimal basis's dual solution
// as a reusable bound certificate: zero duals on inactive rows, the
// fresh transpose-solve values on the active ones, inequality components
// clamped ≤ 0 (optimality leaves them ≤ dtol; any y with nonpositive
// inequality duals stays a valid weak-duality multiplier, so the clamp
// only trades a tolerance-sized sliver of tightness for exactness). Must
// be called while s.yAct/s.activeRows describe the final fresh
// factorization — warmSolve calls it right after verify succeeds.
func (s *RevisedSolver) captureDualCert() {
	n, nEq, nUb := s.sigN, s.sigEq, s.sigUb
	m := nEq + nUb
	if len(s.yAct) < len(s.activeRows) {
		return
	}
	s.rayCand = growF(s.rayCand, m)
	y := s.rayCand[:m]
	for r := range y {
		y[r] = 0
	}
	nz := false
	for a, r := range s.activeRows {
		v := s.yAct[a]
		if r >= nEq && v > 0 {
			v = 0
		}
		y[r] = v
		if v != 0 {
			nz = true
		}
	}
	if !nz {
		return
	}
	for i := range s.certs {
		c := &s.certs[i]
		if c.n == n && c.nEq == nEq && c.nUb == nUb && equalVec(c.y, y) {
			if i > 0 {
				cc := s.certs[i]
				copy(s.certs[1:i+1], s.certs[:i])
				s.certs[0] = cc
			}
			return
		}
	}
	cert := dualCert{y: append([]float64(nil), y...), n: n, nEq: nEq, nUb: nUb}
	if len(s.certs) < dualCertCap {
		s.certs = append(s.certs, dualCert{})
	}
	copy(s.certs[1:], s.certs[:len(s.certs)-1])
	s.certs[0] = cert
}
