package lp

import (
	"errors"
	"math/rand"
	"testing"

	"gridmtd/internal/mat"
)

// cloneProblem deep-copies the parts of a Problem the prescreen tests
// perturb (matrices are copied too, so candidates never alias).
func cloneProblem(p *Problem) *Problem {
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	q := &Problem{
		C:     cp(p.C),
		Beq:   cp(p.Beq),
		Bub:   cp(p.Bub),
		Lower: cp(p.Lower),
		Upper: cp(p.Upper),
	}
	if p.Aeq != nil {
		q.Aeq = p.Aeq.Clone()
	}
	if p.Aub != nil {
		q.Aub = p.Aub.Clone()
	}
	return q
}

// TestPrescreenRejectionsMatchExactSolves is the Farkas-screen safety
// property: every candidate the ray ring screen-rejects must be certified
// infeasible by a full exact solve on a fresh solver (no rays, no warm
// state). By contraposition the same assertion proves no feasible
// candidate is ever screen-rejected. The candidates are randomized
// perturbations — right-hand-side jitter and constraint-matrix noise —
// around captured-infeasible probes, so the rays are tested against data
// they were NOT captured from.
func TestPrescreenRejectionsMatchExactSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	screened, admitted := 0, 0
	for trial := 0; trial < 60; trial++ {
		n, nUb := 3+rng.Intn(6), 1+rng.Intn(6)
		base := randomBoundedLP(rng, n, nUb)
		rs := NewRevisedSolver()
		if _, err := rs.Solve(base); err != nil {
			continue // want a solver with warm state, like the search has
		}

		// Infeasible probe: demand more on the budget row than the box
		// can supply. The dual simplex certifies it and captures a ray.
		total := 0.0
		for _, up := range base.Upper {
			total += up
		}
		probe := cloneProblem(base)
		probe.Beq[0] = total * (1.05 + rng.Float64())
		if _, err := rs.Solve(probe); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("trial %d: infeasible probe not detected: %v", trial, err)
		}

		// Randomized perturbations around the probe: some stay
		// infeasible, some are pulled back into reach.
		for k := 0; k < 15; k++ {
			cand := cloneProblem(probe)
			cand.Beq[0] = total * (0.5 + 1.2*rng.Float64())
			for i := range cand.Bub {
				cand.Bub[i] += 0.1 * (2*rng.Float64() - 1)
			}
			if cand.Aub != nil && rng.Intn(2) == 0 {
				r := rng.Intn(len(cand.Bub))
				row := cand.Aub.RowView(r)
				row[rng.Intn(n)] += 0.05 * (2*rng.Float64() - 1)
			}
			if rs.prescreen(cand, n, 1, nUb) {
				screened++
				fresh := NewRevisedSolver()
				if _, err := fresh.Solve(cand); !errors.Is(err, ErrInfeasible) {
					t.Fatalf("trial %d/%d: prescreen rejected a candidate the exact solver did not certify infeasible (err=%v)",
						trial, k, err)
				}
			} else {
				admitted++
			}
		}
	}
	if screened == 0 {
		t.Fatal("property test never exercised a screen rejection")
	}
	if admitted == 0 {
		t.Fatal("property test never exercised an admitted candidate")
	}
	t.Logf("screen rejected %d candidates, admitted %d", screened, admitted)
}

// TestPrescreenCountsSeparately pins the counter semantics: a
// screen-rejected solve increments PrescreenHits and leaves Solves
// untouched, while a full certified-infeasible solve increments both
// Solves and InfeasibleSolves.
func TestPrescreenCountsSeparately(t *testing.T) {
	mk := func(b float64) *Problem {
		return &Problem{
			C:     []float64{1, 1},
			Aeq:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
			Beq:   []float64{b},
			Lower: []float64{0, 0},
			Upper: []float64{1, 1},
		}
	}
	rs := NewRevisedSolver()
	if _, err := rs.Solve(mk(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Solve(mk(5)); !errors.Is(err, ErrInfeasible) {
		t.Fatal("want ErrInfeasible from the full solve")
	}
	s := rs.Stats()
	if s.Solves != 2 || s.InfeasibleSolves != 1 || s.PrescreenHits != 0 {
		t.Fatalf("after full infeasible solve: %+v", s)
	}
	// A near-identical re-probe is answered by the recycled ray: no new
	// Solve, one PrescreenHits.
	if _, err := rs.Solve(mk(5.1)); !errors.Is(err, ErrInfeasible) {
		t.Fatal("want ErrInfeasible from the screen")
	}
	s = rs.Stats()
	if s.Solves != 2 || s.PrescreenHits != 1 {
		t.Fatalf("after screened re-probe: %+v", s)
	}
	// And a feasible problem still gets through.
	if _, err := rs.Solve(mk(1.5)); err != nil {
		t.Fatalf("feasible problem after screening: %v", err)
	}
}
