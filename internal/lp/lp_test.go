package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/mat"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleBoundedMin(t *testing.T) {
	// min x1 + 2 x2 with 1 <= x <= 3 elementwise: optimum at the lower corner.
	p := &Problem{
		C:     []float64{1, 2},
		Lower: []float64{1, 1},
		Upper: []float64{3, 3},
	}
	s := mustSolve(t, p)
	if !mat.VecEqual(s.X, []float64{1, 1}, 1e-9) {
		t.Fatalf("X = %v, want [1 1]", s.X)
	}
	if math.Abs(s.Objective-3) > 1e-9 {
		t.Fatalf("Objective = %v, want 3", s.Objective)
	}
}

func TestClassicLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
	// (standard textbook problem; optimum x=2, y=6, value 36).
	aub := mat.NewDenseFrom(3, 2, []float64{
		1, 0,
		0, 2,
		3, 2,
	})
	p := &Problem{
		C:     []float64{-3, -5}, // maximize => minimize negative
		Aub:   aub,
		Bub:   []float64{4, 12, 18},
		Lower: []float64{0, 0},
	}
	s := mustSolve(t, p)
	if !mat.VecEqual(s.X, []float64{2, 6}, 1e-8) {
		t.Fatalf("X = %v, want [2 6]", s.X)
	}
	if math.Abs(s.Objective+36) > 1e-8 {
		t.Fatalf("Objective = %v, want -36", s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2a + 3b s.t. a + b = 10, 0 <= a,b <= 8: put as much as possible on a.
	p := &Problem{
		C:     []float64{2, 3},
		Aeq:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
		Beq:   []float64{10},
		Lower: []float64{0, 0},
		Upper: []float64{8, 8},
	}
	s := mustSolve(t, p)
	if !mat.VecEqual(s.X, []float64{8, 2}, 1e-8) {
		t.Fatalf("X = %v, want [8 2]", s.X)
	}
}

func TestMeritOrderDispatch(t *testing.T) {
	// A miniature economic dispatch: three generators, total must equal
	// 100, cheapest fills first.
	p := &Problem{
		C:     []float64{10, 20, 30},
		Aeq:   mat.NewDenseFrom(1, 3, []float64{1, 1, 1}),
		Beq:   []float64{100},
		Lower: []float64{0, 0, 0},
		Upper: []float64{40, 50, 100},
	}
	s := mustSolve(t, p)
	if !mat.VecEqual(s.X, []float64{40, 50, 10}, 1e-8) {
		t.Fatalf("X = %v, want [40 50 10]", s.X)
	}
	if math.Abs(s.Objective-(400+1000+300)) > 1e-7 {
		t.Fatalf("Objective = %v", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 5 and x <= 1 simultaneously.
	p := &Problem{
		C:     []float64{1},
		Aub:   mat.NewDenseFrom(1, 1, []float64{-1}),
		Bub:   []float64{-5}, // -x <= -5 i.e. x >= 5
		Lower: []float64{0},
		Upper: []float64{1},
	}
	_, err := Solve(p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	// x1 + x2 = 5 with upper bounds 1 each.
	p := &Problem{
		C:     []float64{1, 1},
		Aeq:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
		Beq:   []float64{5},
		Lower: []float64{0, 0},
		Upper: []float64{1, 1},
	}
	_, err := Solve(p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x >= 0 and no upper bound.
	p := &Problem{
		C:     []float64{-1},
		Lower: []float64{0},
	}
	_, err := Solve(p)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestFreeVariable(t *testing.T) {
	// min |style| objective with a free variable pushed negative:
	// min x s.t. x >= -7 is modelled with an inequality, x itself free.
	p := &Problem{
		C:   []float64{1},
		Aub: mat.NewDenseFrom(1, 1, []float64{-1}),
		Bub: []float64{7}, // -x <= 7 i.e. x >= -7
	}
	s := mustSolve(t, p)
	if math.Abs(s.X[0]+7) > 1e-8 {
		t.Fatalf("X = %v, want -7", s.X)
	}
}

func TestUpperBoundedOnlyVariable(t *testing.T) {
	// min -x with x <= 4 and no lower bound: optimum 4.
	p := &Problem{
		C:     []float64{-1},
		Upper: []float64{4},
	}
	s := mustSolve(t, p)
	if math.Abs(s.X[0]-4) > 1e-9 {
		t.Fatalf("X = %v, want 4", s.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// Equality with negative RHS exercises row normalization.
	p := &Problem{
		C:     []float64{1, 1},
		Aeq:   mat.NewDenseFrom(1, 2, []float64{-1, -1}),
		Beq:   []float64{-4},
		Lower: []float64{0, 0},
		Upper: []float64{10, 10},
	}
	s := mustSolve(t, p)
	if math.Abs(s.X[0]+s.X[1]-4) > 1e-8 {
		t.Fatalf("X = %v, want sum 4", s.X)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Problem{
		{},                                   // empty objective
		{C: []float64{1}, Beq: []float64{1}}, // Beq without Aeq
		{C: []float64{1}, Bub: []float64{1}}, // Bub without Aub
		{C: []float64{1}, Aeq: mat.NewDense(1, 2), Beq: []float64{0}},       // Aeq shape
		{C: []float64{1}, Aeq: mat.NewDense(2, 1), Beq: []float64{0}},       // Beq length
		{C: []float64{1}, Lower: []float64{1, 2}},                           // Lower length
		{C: []float64{1}, Upper: []float64{1, 2}},                           // Upper length
		{C: []float64{1}, Lower: []float64{2}, Upper: []float64{1}},         // crossed bounds
		{C: []float64{1, 2}, Aub: mat.NewDense(1, 2), Bub: []float64{0, 1}}, // Bub length
		{C: []float64{1, 2}, Aub: mat.NewDense(1, 3), Bub: []float64{0}},    // Aub shape
	}
	for i, p := range cases {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Multiple redundant constraints meeting at the optimum; Bland's rule
	// must still terminate.
	aub := mat.NewDenseFrom(4, 2, []float64{
		1, 1,
		1, 1,
		1, 0,
		0, 1,
	})
	p := &Problem{
		C:     []float64{-1, -1},
		Aub:   aub,
		Bub:   []float64{2, 2, 1, 1},
		Lower: []float64{0, 0},
	}
	s := mustSolve(t, p)
	if math.Abs(s.Objective+2) > 1e-8 {
		t.Fatalf("Objective = %v, want -2", s.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicated equality rows leave a redundant artificial in the basis;
	// the solver must cope.
	aeq := mat.NewDenseFrom(2, 2, []float64{
		1, 1,
		1, 1,
	})
	p := &Problem{
		C:     []float64{1, 2},
		Aeq:   aeq,
		Beq:   []float64{3, 3},
		Lower: []float64{0, 0},
	}
	s := mustSolve(t, p)
	if !mat.VecEqual(s.X, []float64{3, 0}, 1e-8) {
		t.Fatalf("X = %v, want [3 0]", s.X)
	}
}

// Property: for random feasible dispatch problems, the solution satisfies
// all constraints and is no worse than a large random sample of feasible
// points.
func TestQuickDispatchOptimality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		c := make([]float64, n)
		up := make([]float64, n)
		var capTotal float64
		for j := 0; j < n; j++ {
			c[j] = 1 + r.Float64()*10
			up[j] = 1 + r.Float64()*10
			capTotal += up[j]
		}
		demand := capTotal * (0.2 + 0.6*r.Float64())
		p := &Problem{
			C:     c,
			Aeq:   mat.NewDenseFrom(1, n, mat.Ones(n)),
			Beq:   []float64{demand},
			Lower: mat.Zeros(n),
			Upper: up,
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		// Feasibility.
		var sum float64
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-7 || s.X[j] > up[j]+1e-7 {
				return false
			}
			sum += s.X[j]
		}
		if math.Abs(sum-demand) > 1e-6 {
			return false
		}
		// Optimality vs greedy merit order (known optimum for this LP).
		type gen struct{ cost, cap float64 }
		gens := make([]gen, n)
		for j := 0; j < n; j++ {
			gens[j] = gen{c[j], up[j]}
		}
		// insertion sort by cost
		for i := 1; i < n; i++ {
			for k := i; k > 0 && gens[k].cost < gens[k-1].cost; k-- {
				gens[k], gens[k-1] = gens[k-1], gens[k]
			}
		}
		remaining := demand
		var best float64
		for _, g := range gens {
			take := math.Min(remaining, g.cap)
			best += take * g.cost
			remaining -= take
		}
		return math.Abs(s.Objective-best) < 1e-6*(1+math.Abs(best))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the reported objective always equals cᵀx of the reported point.
func TestQuickObjectiveConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		c := make([]float64, n)
		lo := make([]float64, n)
		up := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = r.NormFloat64()
			lo[j] = -r.Float64() * 5
			up[j] = lo[j] + r.Float64()*10
		}
		p := &Problem{C: c, Lower: lo, Upper: up}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		return math.Abs(s.Objective-mat.Dot(c, s.X)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSolverReuseMatchesOneShot solves a sequence of structurally varied
// problems through one reused Solver and checks each solution is bitwise
// identical to a fresh package-level Solve.
func TestSolverReuseMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewSolver()
	for trial := 0; trial < 50; trial++ {
		nv := 2 + rng.Intn(4)
		nub := rng.Intn(6)
		prob := &Problem{C: make([]float64, nv)}
		for j := range prob.C {
			prob.C[j] = rng.NormFloat64()
		}
		lo := make([]float64, nv)
		hi := make([]float64, nv)
		for j := 0; j < nv; j++ {
			lo[j] = -1 - rng.Float64()
			hi[j] = 1 + rng.Float64()
		}
		prob.Lower, prob.Upper = lo, hi
		aeq := mat.NewDense(1, nv)
		for j := 0; j < nv; j++ {
			aeq.Set(0, j, 1)
		}
		prob.Aeq = aeq
		prob.Beq = []float64{rng.Float64()}
		if nub > 0 {
			aub := mat.NewDense(nub, nv)
			bub := make([]float64, nub)
			for i := 0; i < nub; i++ {
				for j := 0; j < nv; j++ {
					aub.Set(i, j, rng.NormFloat64())
				}
				bub[i] = 0.5 + rng.Float64()
			}
			prob.Aub = aub
			prob.Bub = bub
		}

		fresh, errFresh := Solve(prob)
		reused, errReused := s.Solve(prob)
		if (errFresh == nil) != (errReused == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errFresh, errReused)
		}
		if errFresh != nil {
			continue
		}
		if fresh.Objective != reused.Objective {
			t.Fatalf("trial %d: objective %v vs %v", trial, fresh.Objective, reused.Objective)
		}
		for j := range fresh.X {
			if fresh.X[j] != reused.X[j] {
				t.Fatalf("trial %d: x[%d] = %v vs %v", trial, j, fresh.X[j], reused.X[j])
			}
		}
	}
}

// TestSolverInfeasibleFallback drives the optimistic phase 1 into its
// exact-rerun fallback with an infeasible system and checks the verdict.
func TestSolverInfeasibleFallback(t *testing.T) {
	// x0 + x1 = 5 with 0 <= x <= 1 is infeasible.
	prob := &Problem{
		C:     []float64{1, 1},
		Aeq:   mat.NewDenseFrom(1, 2, []float64{1, 1}),
		Beq:   []float64{5},
		Lower: []float64{0, 0},
		Upper: []float64{1, 1},
	}
	if _, err := NewSolver().Solve(prob); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
