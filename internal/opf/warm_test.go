package opf

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
)

// warmVsColdCase drives one warm RevisedSolver through count
// perturbed-reactance dispatch LPs of a registered case and cross-checks
// every objective against a fresh flat-tableau solve of the identical
// problem. This is the warm-start correctness property the sparse path
// relies on: 1e-9 objective agreement across a realistic LP walk.
func warmVsColdCase(t *testing.T, caseName string, count int, step float64) lp.RevisedStats {
	t.Helper()
	n, err := grid.CaseByName(caseName)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	// Two workspaces over the same engine: one for the warm walk, one to
	// rebuild each problem for the reference solve (Problem aliases the
	// workspace buffers, so the warm and cold solves each need their own).
	warmW := eng.pool.New().(*dispatchWorkspace)
	coldW := eng.pool.New().(*dispatchWorkspace)
	coldSolver := lp.NewSolver()

	rng := rand.New(rand.NewSource(42))
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.5 * (lo[i] + hi[i])
	}
	checked := 0
	for trial := 0; trial < count; trial++ {
		// Random walk inside the D-FACTS box — the Nelder-Mead access
		// pattern: mostly small steps around the previous candidate.
		for i := range xd {
			xd[i] += step * (hi[i] - lo[i]) * (2*rng.Float64() - 1)
			if xd[i] < lo[i] {
				xd[i] = lo[i]
			}
			if xd[i] > hi[i] {
				xd[i] = hi[i]
			}
		}
		x := n.ExpandDFACTS(xd)

		warmProb, err := eng.buildProblem(warmW, x)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		warmSol, warmErr := warmW.rsolver.Solve(warmProb)

		coldProb, err := eng.buildProblem(coldW, x)
		if err != nil {
			t.Fatalf("trial %d: build (cold): %v", trial, err)
		}
		coldSol, coldErr := coldSolver.Solve(coldProb)

		if (warmErr == nil) != (coldErr == nil) {
			t.Fatalf("trial %d: warm err %v, cold err %v", trial, warmErr, coldErr)
		}
		if coldErr != nil {
			if !errors.Is(warmErr, lp.ErrInfeasible) || !errors.Is(coldErr, lp.ErrInfeasible) {
				t.Fatalf("trial %d: unexpected errors warm=%v cold=%v", trial, warmErr, coldErr)
			}
			continue
		}
		checked++
		scale := 1 + math.Abs(coldSol.Objective)
		if diff := math.Abs(warmSol.Objective - coldSol.Objective); diff > 1e-9*scale {
			t.Fatalf("trial %d: warm objective %.15g vs cold %.15g (diff %.3g)",
				trial, warmSol.Objective, coldSol.Objective, diff)
		}
	}
	st := warmW.rsolver.Stats()
	if st.WarmSolves == 0 {
		t.Fatalf("%s: the warm path was never taken: %+v", caseName, st)
	}
	t.Logf("%s: %d/%d feasible candidates checked; stats %+v", caseName, checked, count, st)
	return st
}

// TestWarmColdAgreeIEEE57 cross-checks 200 perturbed-reactance dispatch
// LPs on the 57-bus case.
func TestWarmColdAgreeIEEE57(t *testing.T) {
	warmVsColdCase(t, "ieee57", 200, 0.05)
}

// TestWarmColdAgreeIEEE118 cross-checks 200 perturbed-reactance dispatch
// LPs on the 118-bus case, and requires that the walk exercised the
// dual-simplex recovery (perturbations that strand the previous basis
// primal-infeasible).
func TestWarmColdAgreeIEEE118(t *testing.T) {
	if testing.Short() {
		t.Skip("200 cold 118-bus tableau solves take seconds")
	}
	st := warmVsColdCase(t, "ieee118", 200, 0.05)
	if st.DualPivots == 0 {
		t.Fatalf("118-bus walk never exercised dual-simplex recovery: %+v", st)
	}
}

// TestWarmRecoveryAfterCornerJump jumps the candidate from one box corner
// to the opposite one — the largest perturbation the hardware allows, which
// makes the previous optimal basis primal infeasible — and checks the warm
// solve still matches a cold solve.
func TestWarmRecoveryAfterCornerJump(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession()
	lo, hi := n.DFACTSBounds()
	point := func(frac float64) []float64 {
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + frac*(hi[i]-lo[i])
		}
		return n.ExpandDFACTS(xd)
	}
	if _, err := sess.Cost(point(0)); err != nil {
		t.Fatalf("low corner: %v", err)
	}
	warmCost, err := sess.Cost(point(0.8))
	if err != nil {
		t.Fatalf("far point: %v", err)
	}
	cold, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	coldCost, err := cold.NewSession().Cost(point(0.8))
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 + math.Abs(coldCost)
	if math.Abs(warmCost-coldCost) > 1e-9*scale {
		t.Fatalf("corner jump: warm %.15g vs cold %.15g", warmCost, coldCost)
	}
	st := sess.LPStats()
	if st.Solves != 2 {
		t.Fatalf("expected 2 solves, got %+v", st)
	}
	// The calibrated ratings make the full high corner operationally
	// infeasible; the warm path must agree with a cold solve on that too.
	_, warmErr := sess.Cost(point(1))
	_, coldErr := cold.NewSession().Cost(point(1))
	if (warmErr == nil) != (coldErr == nil) {
		t.Fatalf("high corner: warm err %v, cold err %v", warmErr, coldErr)
	}
}

// TestWarmSessionMatchesDense ensures the warm sparse session agrees with
// the dense (historical, bitwise) engine across perturbations: same LP up
// to the 1e-10 PTDF backend agreement.
func TestWarmSessionMatchesDense(t *testing.T) {
	for _, caseName := range []string{"ieee57", "ieee118"} {
		n, err := grid.CaseByName(caseName)
		if err != nil {
			t.Fatal(err)
		}
		sparseEng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
		if err != nil {
			t.Fatal(err)
		}
		denseEng, err := NewDispatchEngineBackend(n, grid.DenseBackend)
		if err != nil {
			t.Fatal(err)
		}
		sess := sparseEng.NewSession()
		rng := rand.New(rand.NewSource(5))
		lo, hi := n.DFACTSBounds()
		xd := make([]float64, len(lo))
		trials := 12
		if testing.Short() {
			trials = 3
		}
		for trial := 0; trial < trials; trial++ {
			for i := range xd {
				xd[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			x := n.ExpandDFACTS(xd)
			warm, warmErr := sess.Cost(x)
			dense, denseErr := denseEng.Cost(x)
			if (warmErr == nil) != (denseErr == nil) {
				t.Fatalf("%s trial %d: warm err %v, dense err %v", caseName, trial, warmErr, denseErr)
			}
			if denseErr != nil {
				continue
			}
			rel := math.Abs(warm-dense) / (1 + math.Abs(dense))
			if rel > 1e-6 {
				t.Fatalf("%s trial %d: warm %.10g vs dense %.10g (rel %.3g)", caseName, trial, warm, dense, rel)
			}
		}
	}
}

// TestResetWarmStartRestoresSeedState checks the determinism boundary:
// after a reset the session must not carry its accumulated basis — the
// next solve starts from the engine's fixed seed basis, bitwise identical
// to a fresh session's first solve of the same candidate (the property
// that makes results independent of how starts land on workers).
func TestResetWarmStartRestoresSeedState(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession()
	lo, hi := n.DFACTSBounds()
	point := func(f float64) []float64 {
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + f*(hi[i]-lo[i])
		}
		return n.ExpandDFACTS(xd)
	}
	// Walk the session's basis away from the seed, then reset.
	if _, err := sess.Cost(n.Reactances()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Cost(point(0.35)); err != nil {
		t.Fatal(err)
	}
	st := sess.LPStats()
	if st.WarmSolves != st.Solves {
		t.Fatalf("seeded session ran a cold solve: %+v", st)
	}
	sess.ResetWarmStart()
	got, err := sess.Cost(point(0.6))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.NewSession().Cost(point(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-reset solve %.17g != fresh-session solve %.17g", got, want)
	}
}

// TestSeedBasisPurity pins the pooled-solve purity contract the seed
// basis preserves: engine-level Cost answers are bitwise identical
// however many warm solves other users of the engine ran in between.
func TestSeedBasisPurity(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.25*lo[i] + 0.75*hi[i]
	}
	x := n.ExpandDFACTS(xd)
	first, err := eng.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	// Pollute the pool with warm histories at other candidates.
	sess := eng.NewSession()
	for _, f := range []float64{0.1, 0.5, 0.9} {
		for i := range xd {
			xd[i] = lo[i] + f*(hi[i]-lo[i])
		}
		if _, err := sess.Cost(n.ExpandDFACTS(xd)); err != nil {
			t.Fatal(err)
		}
	}
	again, err := eng.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("pooled Cost drifted after interleaved warm solves: %.17g vs %.17g", first, again)
	}
}
