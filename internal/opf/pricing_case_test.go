package opf

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
)

// pricingAgreeCase drives two warm revised solvers — dual steepest-edge
// and Dantzig pricing — through the same perturbed-reactance dispatch-LP
// walk of a registered case, cross-checking both against a fresh flat
// tableau solve: 1e-9 objective agreement and identical feasibility
// verdicts regardless of the pivot order the pricing rule picks.
func pricingAgreeCase(t *testing.T, caseName string, count int, step float64) (seStats, dzStats lp.RevisedStats) {
	t.Helper()
	n, err := grid.CaseByName(caseName)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	seW := eng.pool.New().(*dispatchWorkspace)
	dzW := eng.pool.New().(*dispatchWorkspace)
	refW := eng.pool.New().(*dispatchWorkspace)
	seW.rsolver.SetPricing(lp.PriceSteepestEdge)
	dzW.rsolver.SetPricing(lp.PriceDantzig)
	coldSolver := lp.NewSolver()

	rng := rand.New(rand.NewSource(17))
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.5 * (lo[i] + hi[i])
	}
	checked := 0
	for trial := 0; trial < count; trial++ {
		for i := range xd {
			xd[i] += step * (hi[i] - lo[i]) * (2*rng.Float64() - 1)
			if xd[i] < lo[i] {
				xd[i] = lo[i]
			}
			if xd[i] > hi[i] {
				xd[i] = hi[i]
			}
		}
		x := n.ExpandDFACTS(xd)
		solveWith := func(w *dispatchWorkspace) (float64, error) {
			prob, err := eng.buildProblem(w, x)
			if err != nil {
				t.Fatalf("trial %d: build: %v", trial, err)
			}
			sol, err := w.rsolver.Solve(prob)
			if err != nil {
				return 0, err
			}
			return sol.Objective, nil
		}
		seObj, seErr := solveWith(seW)
		dzObj, dzErr := solveWith(dzW)
		refProb, err := eng.buildProblem(refW, x)
		if err != nil {
			t.Fatalf("trial %d: build (ref): %v", trial, err)
		}
		refSol, refErr := coldSolver.Solve(refProb)
		if (seErr == nil) != (refErr == nil) || (dzErr == nil) != (refErr == nil) {
			t.Fatalf("trial %d: verdicts disagree: se=%v dantzig=%v flat=%v", trial, seErr, dzErr, refErr)
		}
		if refErr != nil {
			if !errors.Is(seErr, lp.ErrInfeasible) || !errors.Is(dzErr, lp.ErrInfeasible) {
				t.Fatalf("trial %d: unexpected errors se=%v dantzig=%v", trial, seErr, dzErr)
			}
			continue
		}
		checked++
		scale := 1 + math.Abs(refSol.Objective)
		if d := math.Abs(seObj - refSol.Objective); d > 1e-9*scale {
			t.Fatalf("trial %d: steepest-edge %.15g vs flat %.15g (diff %.3g)", trial, seObj, refSol.Objective, d)
		}
		if d := math.Abs(dzObj - refSol.Objective); d > 1e-9*scale {
			t.Fatalf("trial %d: dantzig %.15g vs flat %.15g (diff %.3g)", trial, dzObj, refSol.Objective, d)
		}
	}
	seStats, dzStats = seW.rsolver.Stats(), dzW.rsolver.Stats()
	if seStats.SEPivots == 0 {
		t.Fatalf("%s: steepest-edge pricing never engaged: %+v", caseName, seStats)
	}
	if dzStats.SEPivots != 0 {
		t.Fatalf("%s: Dantzig solver recorded steepest-edge pivots: %+v", caseName, dzStats)
	}
	t.Logf("%s: %d/%d feasible; SE %+v; Dantzig %+v", caseName, checked, count, seStats, dzStats)
	return seStats, dzStats
}

// TestPricingAgreeIEEE57 cross-checks 100 perturbed-reactance dispatch LPs
// on the 57-bus case under both pricing rules.
func TestPricingAgreeIEEE57(t *testing.T) {
	pricingAgreeCase(t, "ieee57", 100, 0.05)
}

// TestPricingAgreeIEEE118 cross-checks 100 perturbed-reactance dispatch
// LPs on the 118-bus case under both pricing rules (200 case LPs total
// with the 57-bus walk — the PR's pricing-agreement property budget).
func TestPricingAgreeIEEE118(t *testing.T) {
	if testing.Short() {
		t.Skip("100 cold 118-bus tableau solves take seconds")
	}
	pricingAgreeCase(t, "ieee118", 100, 0.05)
}

// TestPricingInfeasibleCertificateIEEE300 pins the Farkas trust rule under
// every pricing rule on real ieee300 candidates: the calibrated ratings
// make the low-reactance corner of the D-FACTS box operationally
// infeasible, and every pricing rule must return ErrInfeasible there — the
// certificate is only ever accepted on a fresh factorization, so a pivot
// order can delay the verdict but never change it — while agreeing to 1e-9
// on the feasible probes.
func TestPricingInfeasibleCertificateIEEE300(t *testing.T) {
	if testing.Short() {
		t.Skip("ieee300 dispatch probes take seconds")
	}
	n, err := grid.CaseByName("ieee300")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	ws := map[string]*dispatchWorkspace{
		"steepest-edge": eng.pool.New().(*dispatchWorkspace),
		"dantzig":       eng.pool.New().(*dispatchWorkspace),
		"bland":         eng.pool.New().(*dispatchWorkspace),
	}
	ws["steepest-edge"].rsolver.SetPricing(lp.PriceSteepestEdge)
	ws["dantzig"].rsolver.SetPricing(lp.PriceDantzig)
	ws["bland"].rsolver.SetPricing(lp.PriceBland)
	lo, hi := n.DFACTSBounds()
	point := func(f float64) []float64 {
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + f*(hi[i]-lo[i])
		}
		return n.ExpandDFACTS(xd)
	}
	verdict := func(w *dispatchWorkspace, x []float64) (float64, error) {
		prob, err := eng.buildProblem(w, x)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		sol, err := w.rsolver.Solve(prob)
		if err != nil {
			return 0, err
		}
		return sol.Objective, nil
	}
	feasibleSeen, infeasibleSeen := 0, 0
	for _, f := range []float64{0.0, 0.2, 0.5, 0.75, 1.0} {
		x := point(f)
		seObj, seErr := verdict(ws["steepest-edge"], x)
		dzObj, dzErr := verdict(ws["dantzig"], x)
		blObj, blErr := verdict(ws["bland"], x)
		if (seErr == nil) != (dzErr == nil) || (seErr == nil) != (blErr == nil) {
			t.Fatalf("f=%g: verdicts disagree: se=%v dantzig=%v bland=%v", f, seErr, dzErr, blErr)
		}
		if seErr != nil {
			if !errors.Is(seErr, lp.ErrInfeasible) || !errors.Is(dzErr, lp.ErrInfeasible) || !errors.Is(blErr, lp.ErrInfeasible) {
				t.Fatalf("f=%g: non-certificate errors: se=%v dantzig=%v bland=%v", f, seErr, dzErr, blErr)
			}
			infeasibleSeen++
			continue
		}
		feasibleSeen++
		scale := 1 + math.Abs(seObj)
		if d := math.Abs(dzObj - seObj); d > 1e-9*scale {
			t.Fatalf("f=%g: dantzig %.15g vs steepest-edge %.15g", f, dzObj, seObj)
		}
		if d := math.Abs(blObj - seObj); d > 1e-9*scale {
			t.Fatalf("f=%g: bland %.15g vs steepest-edge %.15g", f, blObj, seObj)
		}
	}
	if infeasibleSeen == 0 || feasibleSeen == 0 {
		t.Fatalf("probe spread covered only one verdict (feasible=%d infeasible=%d)", feasibleSeen, infeasibleSeen)
	}
}
