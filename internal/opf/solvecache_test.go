package opf

import (
	"math"
	"testing"

	"gridmtd/internal/grid"
)

// TestSolveCacheLRU unit-tests the entry store: capacity bounds the map,
// the least recently used key is evicted first, and a re-touched key
// survives.
func TestSolveCacheLRU(t *testing.T) {
	c := newSolveCache(2)
	if _, ok := c.entry("a"); ok {
		t.Fatal("fresh key reported as existing")
	}
	if _, ok := c.entry("b"); ok {
		t.Fatal("fresh key reported as existing")
	}
	if _, ok := c.entry("a"); !ok {
		t.Fatal("cached key not found")
	}
	// "b" is now the LRU entry; inserting "c" must evict it, not "a".
	c.entry("c")
	if _, ok := c.entry("a"); !ok {
		t.Fatal("recently used key was evicted")
	}
	// That lookup refreshed "a"; "c" fell behind and the next insert
	// evicts it.
	c.entry("d")
	if _, ok := c.entry("c"); ok {
		t.Fatal("LRU key survived eviction")
	}
	if len(c.entries) > 2 || c.lru.Len() > 2 {
		t.Fatalf("cache grew past capacity: %d entries", len(c.entries))
	}
}

// TestSolveCacheHitReturnsBitwiseResult is the memo's transparency
// contract: a cache hit returns bitwise what a fresh engine computes for
// the same (loads, x) — objective, dispatch, flows and angles — and the
// process-wide counters record the traffic.
func TestSolveCacheHitReturnsBitwiseResult(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	if eng.cache == nil {
		t.Fatal("sparse engine has no solve cache")
	}
	x := n.Reactances()
	x[0] *= 1.01

	before := GlobalSolveCacheStats()
	first, err := eng.Solve(x)
	if err != nil {
		t.Fatal(err)
	}
	mid := GlobalSolveCacheStats()
	if d := mid.Delta(before); d.Misses != 1 || d.Hits != 0 {
		t.Fatalf("first solve: %+v, want exactly one miss", d)
	}
	second, err := eng.Solve(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := GlobalSolveCacheStats().Delta(mid); d.Hits != 1 || d.Misses != 0 {
		t.Fatalf("second solve: %+v, want exactly one hit", d)
	}

	// Fresh engine = guaranteed miss: the hit must match it bitwise.
	fresh, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fresh.Solve(x)
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2][]float64{
		"dispatch": {second.DispatchMW, ref.DispatchMW},
		"flows":    {second.FlowsMW, ref.FlowsMW},
		"angles":   {second.ThetaRad, ref.ThetaRad},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s length differs", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: hit %v != fresh %v", name, i, a[i], b[i])
			}
		}
	}
	if second.CostPerHour != ref.CostPerHour || second.CostPerHour != first.CostPerHour {
		t.Fatalf("objective differs: hit %v, fresh %v, first %v",
			second.CostPerHour, ref.CostPerHour, first.CostPerHour)
	}

	// Cost and Solve share the entry: Cost on a session is a hit too.
	s := eng.NewSession()
	preHit := GlobalSolveCacheStats()
	cost, err := s.Cost(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := GlobalSolveCacheStats().Delta(preHit); d.Hits != 1 || d.Misses != 0 {
		t.Fatalf("session Cost after Solve: %+v, want a hit", d)
	}
	if cost != first.CostPerHour {
		t.Fatalf("session Cost %v != Solve objective %v", cost, first.CostPerHour)
	}
}

// TestSolveCacheCachesDeterministicErrors: an infeasible candidate's
// error is memoized like a result — the second probe answers from the
// cache and still reports infeasibility.
func TestSolveCacheCachesDeterministicErrors(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	// Overload the system: with Σ load beyond Σ gmax the balance row is
	// infeasible for every reactance vector. Loads are part of the cache
	// key, so this coexists with the feasible entries of other tests.
	for i := range n.Buses {
		n.Buses[i].LoadMW *= 50
	}
	defer func() {
		for i := range n.Buses {
			n.Buses[i].LoadMW /= 50
		}
	}()
	infeasible := n.Reactances()
	if _, err := eng.Solve(infeasible); err == nil {
		t.Fatal("overloaded system unexpectedly feasible")
	}
	before := GlobalSolveCacheStats()
	_, err1 := eng.Solve(infeasible)
	if err1 == nil {
		t.Fatal("expected cached error")
	}
	if d := GlobalSolveCacheStats().Delta(before); d.Hits != 1 {
		t.Fatalf("repeat infeasible probe: %+v, want a hit", d)
	}
	s := eng.NewSession()
	if _, err2 := s.Cost(infeasible); err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("cached error differs: %v vs %v", err1, err2)
	}
}

// TestDenseEngineHasNoSolveCache pins the golden-path guarantee: the
// dense backend never consults the memo, so its bitwise history cannot
// depend on cache state.
func TestDenseEngineHasNoSolveCache(t *testing.T) {
	n, err := grid.CaseByName("case14")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.DenseBackend)
	if err != nil {
		t.Fatal(err)
	}
	if eng.cache != nil {
		t.Fatal("dense engine built a solve cache")
	}
	before := GlobalSolveCacheStats()
	if _, err := eng.Solve(n.Reactances()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Solve(n.Reactances()); err != nil {
		t.Fatal(err)
	}
	if d := GlobalSolveCacheStats().Delta(before); d.Hits != 0 || d.Misses != 0 {
		t.Fatalf("dense solves touched the cache counters: %+v", d)
	}
}

// TestCostUpperBound pins the lazy-penalty surrogate's premise: no
// feasible dispatch can cost more than CostUpperBound.
func TestCostUpperBound(t *testing.T) {
	for _, name := range []string{"case14", "ieee57"} {
		n, err := grid.CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewDispatchEngine(n)
		if err != nil {
			t.Fatal(err)
		}
		ub := eng.CostUpperBound()
		if math.IsInf(ub, 0) || math.IsNaN(ub) || ub <= 0 {
			t.Fatalf("%s: degenerate upper bound %v", name, ub)
		}
		res, err := eng.Solve(n.Reactances())
		if err != nil {
			t.Fatal(err)
		}
		if res.CostPerHour > ub {
			t.Fatalf("%s: optimal cost %v exceeds upper bound %v", name, res.CostPerHour, ub)
		}
	}
}
