package opf

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"gridmtd/internal/dcflow"
	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
	"gridmtd/internal/mat"
)

// DispatchEngine solves the dispatch-only OPF for many reactance vectors
// against one network. It precomputes everything that does not depend on
// the reactances (generator cost/bound vectors, the set of flow-limited
// branches, the bus-to-reduced-column map) and keeps per-goroutine
// workspaces for everything that does (the reduced-susceptance factorizer,
// the PTDF, the LP tableau), so the per-candidate cost of the problem-(4)
// search drops to the unavoidable factorization + simplex work. The
// susceptance factorization goes through the pluggable grid.BFactorizer:
// below grid.SparseThreshold buses the dense backend performs exactly the
// historical arithmetic (costs and dispatches bitwise identical to
// SolveDispatch); at or above it the sparse Cholesky backend takes over
// transparently.
//
// A DispatchEngine is safe for concurrent use.
//
// On the sparse-backend path (grid.EffectiveBackend resolves to
// SparseBackend, i.e. ≥ grid.SparseThreshold buses under AutoBackend) the
// dispatch LP is solved by the warm-started revised simplex
// (lp.RevisedSolver): each workspace keeps the previous solve's optimal
// basis and re-solves the near-identical LPs of one local search from it,
// with dual-simplex recovery and a verified cold fallback. Warm solves
// agree with the flat tableau solver to well under 1e-9 on the objective
// but not bitwise, and the result of a sequence of solves depends on the
// sequence (the basis carries over) — deterministic parallel drivers must
// therefore scope a workspace per worker via NewSession and reset it at
// their determinism boundaries (optimize.MultiStart does this per local
// search). The dense path keeps the historical flat tableau solver and
// stays bitwise identical to SolveDispatch.
type DispatchEngine struct {
	n       *grid.Network
	backend grid.Backend
	warm    bool // sparse path: warm-started revised simplex
	nG      int
	redIdx  []int // reduced state column per generator bus, -1 at slack
	uCols   []int // distinct non-slack entries of redIdx, first-seen order
	giCol   []int // generator → row of the partial PTDF (uCols), -1 at slack
	limRow  []int // branch indices with finite flow limits
	cost    []float64
	genLo   []float64
	genHi   []float64
	aeq     *mat.Dense
	pool    sync.Pool // *dispatchWorkspace

	// Engine-level seed basis (sparse path): the optimal basis of the
	// dispatch LP at the network's reference reactances, computed once on
	// first demand. Solvers with no warm basis of their own start from it
	// instead of a cold tableau solve — the dominant cost of a cold
	// selection (every pooled Cost call and every post-reset session solve
	// used to pay a full two-phase dense-tableau solve). The seed is a pure
	// function of the network, so seeded solves remain pure functions of
	// (loads, x): scheduling, worker count and pool order cannot influence
	// results, which is the determinism contract pooled solves rely on.
	seedOnce sync.Once
	seed     *lp.WarmBasis

	// Dispatch-solve memo (sparse path only): because every fast-path
	// solve is a pure from-seed function of (loads, x), a cache hit is
	// bitwise indistinguishable from recomputing — see SolveCache. nil on
	// the dense path, which keeps its historical bitwise behavior and
	// never consults the cache.
	cache *SolveCache
}

type dispatchWorkspace struct {
	bf      grid.BFactorizer
	ptdf    *mat.Dense // L×(N-1); full-PTDF path only
	pg      *mat.Dense // partial-PTDF path: generator columns, len(uCols)×L
	theta   []float64  // partial-PTDF path: B_r⁻¹·redLoad
	loads   []float64  // bus loads (MW)
	redLoad []float64  // slack-reduced loads
	f0      []float64  // flows of the load-only injection
	aub     *mat.Dense
	bub     []float64
	solver  *lp.Solver        // dense path: historical flat tableau
	rsolver *lp.RevisedSolver // sparse path: warm-started revised simplex
	// Full-solve extras (power-flow verification).
	inj      []float64
	pRed     []float64
	thetaRed []float64
}

// NewDispatchEngine prepares an engine for the network with the
// size-picked factorization backend. The network's topology, limits, costs
// and generator set must not change afterwards; loads are read fresh on
// every solve.
func NewDispatchEngine(n *grid.Network) (*DispatchEngine, error) {
	return NewDispatchEngineBackend(n, grid.AutoBackend)
}

// NewDispatchEngineBackend is NewDispatchEngine with an explicit
// factorization backend (benchmarks and the dense/sparse crossover
// measurements).
func NewDispatchEngineBackend(n *grid.Network, backend grid.Backend) (*DispatchEngine, error) {
	if len(n.Gens) == 0 {
		return nil, errors.New("opf: network has no generators")
	}
	// Snapshot the backend resolution (including any process-wide default
	// override) at construction, so lazily created pool workspaces always
	// match the engine's warm/dense mode.
	eff := grid.EffectiveBackend(n, backend)
	e := &DispatchEngine{
		n:       n,
		backend: eff,
		warm:    eff == grid.SparseBackend,
		nG:      len(n.Gens),
	}
	e.redIdx = make([]int, e.nG)
	e.giCol = make([]int, e.nG)
	seen := make(map[int]int)
	for gi, g := range n.Gens {
		e.redIdx[gi], e.giCol[gi] = -1, -1
		if g.Bus != n.SlackBus {
			idx := g.Bus - 1
			if idx > n.SlackBus-1 {
				idx--
			}
			e.redIdx[gi] = idx
			row, ok := seen[idx]
			if !ok {
				row = len(e.uCols)
				seen[idx] = row
				e.uCols = append(e.uCols, idx)
			}
			e.giCol[gi] = row
		}
	}
	for l, br := range n.Branches {
		if !math.IsInf(br.LimitMW, 1) {
			e.limRow = append(e.limRow, l)
		}
	}
	e.cost = n.GenCosts()
	e.genLo, e.genHi = n.GenBounds()
	e.aeq = mat.NewDenseFrom(1, e.nG, mat.Ones(e.nG))
	nb, nl := n.N(), n.L()
	e.pool.New = func() any {
		w := &dispatchWorkspace{
			bf:       grid.NewBFactorizerBackend(n, e.backend),
			loads:    make([]float64, nb),
			redLoad:  make([]float64, nb-1),
			f0:       make([]float64, nl),
			bub:      make([]float64, 2*len(e.limRow)),
			inj:      make([]float64, nb),
			pRed:     make([]float64, nb-1),
			thetaRed: make([]float64, nb-1),
		}
		if _, ok := w.bf.(grid.PTDFColser); ok {
			// Partial-PTDF path: only the generator columns and one
			// load-flow solve are needed, never the full L×(N-1) matrix.
			w.theta = make([]float64, nb-1)
			if len(e.uCols) > 0 {
				w.pg = mat.NewDense(len(e.uCols), nl)
			}
		} else {
			w.ptdf = mat.NewDense(nl, nb-1)
		}
		if e.warm {
			w.rsolver = lp.NewRevisedSolver()
			// Density-gated sparse working-matrix factorization: the
			// dispatch LP's PTDF-condensed working matrices are usually
			// dense and keep the dense LU, but the gate costs one nnz
			// count per refactorization and wins when a case's rating
			// pattern leaves the working matrix sparse.
			w.rsolver.SetSparseLU(true)
		} else {
			w.solver = lp.NewSolver()
		}
		if len(e.limRow) > 0 {
			w.aub = mat.NewDense(2*len(e.limRow), e.nG)
		}
		return w
	}
	if e.warm {
		e.cache = newSolveCache(0)
	}
	return e, nil
}

// Backend reports the resolved factorization backend the engine runs on.
func (e *DispatchEngine) Backend() grid.Backend { return e.backend }

// prepare builds the dispatch LP for reactances x into the workspace and
// solves it. It mirrors SolveDispatch step for step on the dense path; the
// sparse path routes the identical LP through the warm-started revised
// simplex.
func (e *DispatchEngine) prepare(w *dispatchWorkspace, x []float64) (*lp.Solution, error) {
	if e.warm && !w.rsolver.HasBasis() {
		w.rsolver.InstallBasis(e.seedBasis())
	}
	return e.prepareUnseeded(w, x)
}

// prepareUnseeded is prepare without the seed-basis installation — the
// path the seed computation itself runs on.
func (e *DispatchEngine) prepareUnseeded(w *dispatchWorkspace, x []float64) (*lp.Solution, error) {
	prob, err := e.buildProblem(w, x)
	if err != nil {
		return nil, err
	}
	var sol *lp.Solution
	if e.warm {
		sol, err = w.rsolver.Solve(prob)
	} else {
		sol, err = w.solver.Solve(prob)
	}
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil, ErrInfeasible
		}
		return nil, fmt.Errorf("opf: %w", err)
	}
	return sol, nil
}

// buildProblem assembles the dispatch LP for reactances x into the
// workspace buffers (the returned Problem aliases them).
func (e *DispatchEngine) buildProblem(w *dispatchWorkspace, x []float64) (*lp.Problem, error) {
	n := e.n
	// PTDF = D·Arᵀ·Br⁻¹ through the factorization backend (the dense
	// backend reproduces Network.PTDF's construction bitwise).
	if err := w.bf.Reset(x); err != nil {
		return nil, fmt.Errorf("opf: PTDF: %w", err)
	}
	s := n.SlackBus - 1

	// Reduced load vector (MW).
	for i, b := range n.Buses {
		w.loads[i] = b.LoadMW
	}
	reduceInto(w.redLoad, w.loads, s)

	// Load flows f0 and the generator PTDF columns. The LP never reads
	// any other part of the PTDF, so a backend that can deliver single
	// columns (PTDFColser) pays one solve per distinct generator bus plus
	// one for the loads — instead of all N-1 inverse columns. The dense
	// path keeps the full historical build (its bitwise contract).
	pc, fast := w.bf.(grid.PTDFColser)
	if fast {
		w.bf.SolveInto(w.theta, w.redLoad)
		for l, br := range n.Branches {
			ri := reducedBusIndex(br.From-1, s)
			rj := reducedBusIndex(br.To-1, s)
			y := 1 / x[l]
			switch {
			case ri >= 0 && rj >= 0:
				w.f0[l] = y * (w.theta[ri] - w.theta[rj])
			case ri >= 0:
				w.f0[l] = y * w.theta[ri]
			default:
				w.f0[l] = -y * w.theta[rj]
			}
		}
		if w.pg != nil {
			if err := pc.PTDFColsInto(w.pg, e.uCols); err != nil {
				return nil, fmt.Errorf("opf: PTDF: %w", err)
			}
		}
	} else {
		if err := w.bf.PTDFInto(w.ptdf); err != nil {
			return nil, fmt.Errorf("opf: PTDF: %w", err)
		}
		mat.MulVecInto(w.f0, w.ptdf, w.redLoad)
	}

	// Inequalities: S·g − f0 <= fmax and −S·g + f0 <= fmax, skipping
	// unlimited branches. S maps dispatch to flows — column g is the PTDF
	// column of the generator's reduced bus index (zero if it sits at
	// slack), identical to applying the PTDF to the unit injection — and
	// its rows land straight in Aub without a dense intermediate.
	nR := len(e.limRow)
	if nR > 0 {
		for k, l := range e.limRow {
			pos := w.aub.RowView(k)
			neg := w.aub.RowView(nR + k)
			if fast {
				for gi := 0; gi < e.nG; gi++ {
					v := 0.0
					if r := e.giCol[gi]; r >= 0 {
						v = w.pg.RowView(r)[l]
					}
					pos[gi] = v
					neg[gi] = -v
				}
			} else {
				pr := w.ptdf.RowView(l)
				for gi := 0; gi < e.nG; gi++ {
					v := 0.0
					if ri := e.redIdx[gi]; ri >= 0 {
						v = pr[ri]
					}
					pos[gi] = v
					neg[gi] = -v
				}
			}
			w.bub[k] = n.Branches[l].LimitMW + w.f0[l]
			w.bub[nR+k] = n.Branches[l].LimitMW - w.f0[l]
		}
	}

	prob := &lp.Problem{
		C:     e.cost,
		Aeq:   e.aeq,
		Beq:   []float64{n.TotalLoadMW()},
		Lower: e.genLo,
		Upper: e.genHi,
	}
	if nR > 0 {
		prob.Aub = w.aub
		prob.Bub = w.bub
	}
	return prob, nil
}

// Cost returns the optimal generation cost ($/h) for reactances x without
// materializing flows and angles — the form the selection search's inner
// loop wants. The value is bitwise identical to Solve(x).CostPerHour.
//
// Pooled solves never reuse another solve's warm basis: sync.Pool hands
// out workspaces in a scheduling- and GC-dependent order, so any warm
// state carried across pooled calls would make results depend on that
// order. Each pooled solve instead starts from the engine's fixed seed
// basis (see seedBasis) — a pure function of the network — which keeps
// every engine-level solve a pure function of (loads, x) while skipping
// the cold tableau solve. Per-candidate warm chaining stays with the
// explicitly scoped per-worker sessions.
func (e *DispatchEngine) Cost(x []float64) (float64, error) {
	if e.cache != nil {
		return e.cachedCost(nil, x)
	}
	w := e.pool.Get().(*dispatchWorkspace)
	w.dropWarmStart()
	sol, err := e.prepare(w, x)
	e.pool.Put(w)
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// CostUpperBound returns an upper bound on Cost over every reactance
// vector: Σ_i max(c_i·g_i^lo, c_i·g_i^hi), the worst any within-bounds
// dispatch can cost. Searches use it to skip dispatch solves at points
// whose penalty terms already exceed any cost the solve could contribute.
func (e *DispatchEngine) CostUpperBound() float64 {
	ub := 0.0
	for i, c := range e.cost {
		ub += math.Max(c*e.genLo[i], c*e.genHi[i])
	}
	return ub
}

// Solve returns the full OPF result for reactances x, including the
// verifying DC power flow, exactly as SolveDispatch does. Like Cost, a
// pooled solve starts from the engine's fixed seed basis, never another
// solve's warm state.
func (e *DispatchEngine) Solve(x []float64) (*Result, error) {
	w := e.pool.Get().(*dispatchWorkspace)
	defer e.pool.Put(w)
	if e.cache != nil {
		return e.cachedSolve(w, x)
	}
	w.dropWarmStart()
	return e.solve(w, x)
}

// cachedCost returns the memoized LP objective for the current (loads, x),
// computing it on the caller's workspace (or a pooled one when w is nil)
// on a miss. See SolveCache for why a hit is bitwise equivalent to a
// fresh solve.
func (e *DispatchEngine) cachedCost(w *dispatchWorkspace, x []float64) (float64, error) {
	ent, ok := e.cache.entry(e.solveKey(x))
	first := e.computeEntry(ent, w, x)
	countSolveLookup(first, ok)
	if ent.err != nil {
		return 0, ent.err
	}
	return ent.obj, nil
}

// cachedSolve is Solve through the memo: the LP comes from the cache (or
// one shared computation on a miss); only the verifying DC power flow —
// which needs this workspace's factorization at x — runs per call.
func (e *DispatchEngine) cachedSolve(w *dispatchWorkspace, x []float64) (*Result, error) {
	ent, ok := e.cache.entry(e.solveKey(x))
	first := e.computeEntry(ent, w, x)
	countSolveLookup(first, ok)
	if ent.err != nil {
		return nil, ent.err
	}
	if !first {
		// The LP ran in some earlier call: w.bf does not hold x's
		// factorization, which the verifying power flow below needs.
		if err := w.bf.Reset(x); err != nil {
			return nil, fmt.Errorf("opf: PTDF: %w", err)
		}
	}
	return e.verifiedResult(w, x, append([]float64(nil), ent.x...), ent.obj)
}

// computeEntry runs the entry's single LP solve if nobody has yet: a pure
// from-seed solve of (loads, x) on the caller's workspace, or on a pooled
// workspace when w is nil. It reports whether this call did the work (in
// which case w's factorizer holds x when w was supplied).
func (e *DispatchEngine) computeEntry(ent *solveEntry, w *dispatchWorkspace, x []float64) (first bool) {
	ent.once.Do(func() {
		first = true
		ws := w
		if ws == nil {
			ws = e.pool.Get().(*dispatchWorkspace)
			defer e.pool.Put(ws)
		}
		ws.dropWarmStart()
		sol, err := e.prepare(ws, x)
		if err != nil {
			ent.err = err
			return
		}
		ent.obj = sol.Objective
		ent.x = append([]float64(nil), sol.X...)
	})
	return first
}

// computeEntryPrepared is computeEntry for a caller that already built
// the candidate's LP on its own workspace (the dual-bound probe path):
// on a miss it finishes the pure from-seed solve of that problem instead
// of rebuilding it. The caller must have built prob via buildProblem on w
// AFTER w.dropWarmStart(), so the solve below starts from the seed basis
// with no warm state — bitwise the solve computeEntry would run.
func (e *DispatchEngine) computeEntryPrepared(ent *solveEntry, w *dispatchWorkspace, prob *lp.Problem, perr error) (first bool) {
	ent.once.Do(func() {
		first = true
		if perr != nil {
			ent.err = perr
			return
		}
		if !w.rsolver.HasBasis() {
			w.rsolver.InstallBasis(e.seedBasis())
		}
		sol, err := w.rsolver.Solve(prob)
		if err != nil {
			if errors.Is(err, lp.ErrInfeasible) {
				ent.err = ErrInfeasible
			} else {
				ent.err = fmt.Errorf("opf: %w", err)
			}
			return
		}
		ent.obj = sol.Objective
		ent.x = append([]float64(nil), sol.X...)
	})
	return first
}

// countSolveLookup attributes one cache lookup to the process-wide
// counters: a lookup that found a computed entry is a hit, anything else
// (created the entry, or did/shared the computation) is a miss.
func countSolveLookup(first, existed bool) {
	if first || !existed {
		solveGlobal.misses.Add(1)
	} else {
		solveGlobal.hits.Add(1)
	}
}

// dropWarmStart discards the workspace's warm LP basis (no-op on the
// dense path).
func (w *dispatchWorkspace) dropWarmStart() {
	if w.rsolver != nil {
		w.rsolver.Invalidate()
	}
}

// seedBasis returns the engine-level seed basis, computing it on first
// demand: one cold solve of the dispatch LP at the network's reference
// reactances on a private workspace, whose optimal basis every subsequent
// basis-less solve starts from. Returns nil on the dense path or when the
// reference LP cannot be solved (each later solve then runs cold exactly
// as before).
func (e *DispatchEngine) seedBasis() *lp.WarmBasis {
	if !e.warm {
		return nil
	}
	e.seedOnce.Do(func() {
		w := e.pool.New().(*dispatchWorkspace)
		if _, err := e.prepareUnseeded(w, e.n.Reactances()); err == nil {
			e.seed = w.rsolver.CaptureBasis()
		}
		w.dropWarmStart()
		e.pool.Put(w)
	})
	return e.seed
}

// solve is Solve against an explicit workspace.
func (e *DispatchEngine) solve(w *dispatchWorkspace, x []float64) (*Result, error) {
	sol, err := e.prepare(w, x)
	if err != nil {
		return nil, err
	}
	return e.verifiedResult(w, x, sol.X, sol.Objective)
}

// verifiedResult runs the verifying DC power flow for an already-solved
// dispatch and assembles the Result. w.bf must hold the factorization of
// x (buildProblem leaves it there; the cache-hit path re-resets it).
func (e *DispatchEngine) verifiedResult(w *dispatchWorkspace, x, dispatch []float64, obj float64) (*Result, error) {
	n := e.n

	// Verifying power flow (dcflow.SolveDispatch, reusing the factors of
	// the same reduced susceptance matrix).
	for i, b := range n.Buses {
		w.inj[i] = -b.LoadMW
	}
	for i, g := range n.Gens {
		w.inj[g.Bus-1] += dispatch[i]
	}
	total := mat.SumVec(w.inj)
	if math.Abs(total) > 1e-6*(1+mat.Norm1(w.inj)) {
		return nil, fmt.Errorf("opf: verifying dispatch: %w: imbalance %.6g MW", dcflow.ErrUnbalanced, total)
	}
	slack := n.SlackBus - 1
	invBase := 1 / n.BaseMVA // multiply, as dcflow's ScaleVec does
	for i := range w.inj {
		w.inj[i] *= invBase
	}
	reduceInto(w.pRed, w.inj, slack)
	w.bf.SolveInto(w.thetaRed, w.pRed)
	theta := n.ExpandVec(w.thetaRed, 0)
	flows := make([]float64, n.L())
	for l, br := range n.Branches {
		flows[l] = (theta[br.From-1] - theta[br.To-1]) / x[l] * n.BaseMVA
	}
	return &Result{
		DispatchMW:  dispatch,
		FlowsMW:     flows,
		ThetaRad:    theta,
		CostPerHour: obj,
		Reactances:  mat.CopyVec(x),
	}, nil
}

// DispatchSession is a single-goroutine view of a DispatchEngine: it owns
// one workspace outright instead of borrowing from the pool per call. The
// parallel multi-start driver holds one session per worker (no pool churn)
// and, on the sparse path, the session is where the warm LP basis lives —
// ResetWarmStart scopes it to one local search so results stay independent
// of how starts are distributed across workers. A DispatchSession is not
// safe for concurrent use.
type DispatchSession struct {
	e *DispatchEngine
	w *dispatchWorkspace
}

// NewSession returns a fresh session with its own workspace.
func (e *DispatchEngine) NewSession() *DispatchSession {
	return &DispatchSession{e: e, w: e.pool.New().(*dispatchWorkspace)}
}

// Cost is DispatchEngine.Cost on the session's private workspace. On the
// sparse path it serves from the engine's shared SolveCache: every miss
// is a pure from-seed solve of (loads, x), so hits are bitwise equivalent
// and session results no longer depend on the session's solve history.
func (s *DispatchSession) Cost(x []float64) (float64, error) {
	if s.e.cache != nil {
		return s.e.cachedCost(s.w, x)
	}
	sol, err := s.e.prepare(s.w, x)
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// CostOrBound is Cost with a dual-bound screen in front of the solve: if
// the session solver's incumbent dual certificates prove (by weak
// duality, on the candidate's freshly built data) that the dispatch cost
// at x must exceed threshold, it returns that certified lower bound with
// screened=true — zero simplex iterations, no cache entry, no trace in
// the solve-cache economics. Otherwise it behaves exactly like Cost:
// cached hits are served as usual, and a miss finishes the identical pure
// from-seed solve on the LP the probe already built. A screened return is
// NOT the dispatch cost — only a certificate that the true cost is above
// threshold; callers may use it solely for decisions whose outcome is
// already fixed by "cost > threshold". A +Inf threshold skips the probe
// (the result is then always exact). Dense-path engines never screen.
func (s *DispatchSession) CostOrBound(x []float64, threshold float64) (cost float64, screened bool, err error) {
	e := s.e
	if e.cache == nil {
		c, err := s.Cost(x)
		return c, false, err
	}
	key := e.solveKey(x)
	if ent, ok := e.cache.peek(key); ok {
		first := e.computeEntry(ent, s.w, x)
		countSolveLookup(first, true)
		if ent.err != nil {
			return 0, false, ent.err
		}
		return ent.obj, false, nil
	}
	// Miss: build the candidate LP once, probe it, and on an inconclusive
	// probe reuse the build for the solve. dropWarmStart first so the LP
	// and a subsequent solve are the same pure from-seed computation
	// computeEntry would run.
	w := s.w
	w.dropWarmStart()
	prob, perr := e.buildProblem(w, x)
	if perr == nil {
		if bound, hit := w.rsolver.DualBoundExceeds(prob, threshold); hit {
			return bound, true, nil
		}
	}
	ent, existed := e.cache.entry(key)
	first := e.computeEntryPrepared(ent, w, prob, perr)
	countSolveLookup(first, existed)
	if ent.err != nil {
		return 0, false, ent.err
	}
	return ent.obj, false, nil
}

// Solve is DispatchEngine.Solve on the session's private workspace.
func (s *DispatchSession) Solve(x []float64) (*Result, error) {
	if s.e.cache != nil {
		return s.e.cachedSolve(s.w, x)
	}
	return s.e.solve(s.w, x)
}

// ResetWarmStart drops the session's warm LP basis (a no-op on the dense
// path): the next solve starts from the engine's fixed seed basis (cold
// when the engine has none). Deterministic drivers call it at their
// reproducibility boundaries — one local search per warm scope; because
// the seed is a pure function of the network, the post-reset state is
// identical however starts are distributed across workers.
func (s *DispatchSession) ResetWarmStart() {
	if s.w.rsolver != nil {
		s.w.rsolver.Invalidate()
	}
}

// LPStats reports the session's revised-simplex counters (zero value on
// the dense path).
func (s *DispatchSession) LPStats() lp.RevisedStats {
	if s.w.rsolver == nil {
		return lp.RevisedStats{}
	}
	return s.w.rsolver.Stats()
}

// reducedBusIndex maps a 0-based bus index to its slack-reduced state
// column, or -1 for the slack bus itself.
func reducedBusIndex(bus, slack int) int {
	switch {
	case bus == slack:
		return -1
	case bus > slack:
		return bus - 1
	}
	return bus
}

// reduceInto removes the slack entry of the length-N vector v into dst.
func reduceInto(dst, v []float64, slack int) {
	k := 0
	for i, x := range v {
		if i == slack {
			continue
		}
		dst[k] = x
		k++
	}
}
