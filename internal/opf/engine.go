package opf

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"gridmtd/internal/dcflow"
	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
	"gridmtd/internal/mat"
)

// DispatchEngine solves the dispatch-only OPF for many reactance vectors
// against one network. It precomputes everything that does not depend on
// the reactances (generator cost/bound vectors, the set of flow-limited
// branches, the bus-to-reduced-column map) and keeps per-goroutine
// workspaces for everything that does (the reduced-susceptance factorizer,
// the PTDF, the LP tableau), so the per-candidate cost of the problem-(4)
// search drops to the unavoidable factorization + simplex work. The
// susceptance factorization goes through the pluggable grid.BFactorizer:
// below grid.SparseThreshold buses the dense backend performs exactly the
// historical arithmetic (costs and dispatches bitwise identical to
// SolveDispatch); at or above it the sparse Cholesky backend takes over
// transparently.
//
// A DispatchEngine is safe for concurrent use.
//
// On the sparse-backend path (grid.EffectiveBackend resolves to
// SparseBackend, i.e. ≥ grid.SparseThreshold buses under AutoBackend) the
// dispatch LP is solved by the warm-started revised simplex
// (lp.RevisedSolver): each workspace keeps the previous solve's optimal
// basis and re-solves the near-identical LPs of one local search from it,
// with dual-simplex recovery and a verified cold fallback. Warm solves
// agree with the flat tableau solver to well under 1e-9 on the objective
// but not bitwise, and the result of a sequence of solves depends on the
// sequence (the basis carries over) — deterministic parallel drivers must
// therefore scope a workspace per worker via NewSession and reset it at
// their determinism boundaries (optimize.MultiStart does this per local
// search). The dense path keeps the historical flat tableau solver and
// stays bitwise identical to SolveDispatch.
type DispatchEngine struct {
	n       *grid.Network
	backend grid.Backend
	warm    bool // sparse path: warm-started revised simplex
	nG      int
	redIdx  []int // reduced state column per generator bus, -1 at slack
	limRow  []int // branch indices with finite flow limits
	cost    []float64
	genLo   []float64
	genHi   []float64
	aeq     *mat.Dense
	pool    sync.Pool // *dispatchWorkspace
}

type dispatchWorkspace struct {
	bf      grid.BFactorizer
	ptdf    *mat.Dense // L×(N-1)
	loads   []float64  // bus loads (MW)
	redLoad []float64  // slack-reduced loads
	f0      []float64  // PTDF·loadRed
	s       *mat.Dense // dispatch-to-flow map, L×nG
	aub     *mat.Dense
	bub     []float64
	solver  *lp.Solver        // dense path: historical flat tableau
	rsolver *lp.RevisedSolver // sparse path: warm-started revised simplex
	// Full-solve extras (power-flow verification).
	inj      []float64
	pRed     []float64
	thetaRed []float64
}

// NewDispatchEngine prepares an engine for the network with the
// size-picked factorization backend. The network's topology, limits, costs
// and generator set must not change afterwards; loads are read fresh on
// every solve.
func NewDispatchEngine(n *grid.Network) (*DispatchEngine, error) {
	return NewDispatchEngineBackend(n, grid.AutoBackend)
}

// NewDispatchEngineBackend is NewDispatchEngine with an explicit
// factorization backend (benchmarks and the dense/sparse crossover
// measurements).
func NewDispatchEngineBackend(n *grid.Network, backend grid.Backend) (*DispatchEngine, error) {
	if len(n.Gens) == 0 {
		return nil, errors.New("opf: network has no generators")
	}
	// Snapshot the backend resolution (including any process-wide default
	// override) at construction, so lazily created pool workspaces always
	// match the engine's warm/dense mode.
	eff := grid.EffectiveBackend(n, backend)
	e := &DispatchEngine{
		n:       n,
		backend: eff,
		warm:    eff == grid.SparseBackend,
		nG:      len(n.Gens),
	}
	e.redIdx = make([]int, e.nG)
	for gi, g := range n.Gens {
		e.redIdx[gi] = -1
		if g.Bus != n.SlackBus {
			idx := g.Bus - 1
			if idx > n.SlackBus-1 {
				idx--
			}
			e.redIdx[gi] = idx
		}
	}
	for l, br := range n.Branches {
		if !math.IsInf(br.LimitMW, 1) {
			e.limRow = append(e.limRow, l)
		}
	}
	e.cost = n.GenCosts()
	e.genLo, e.genHi = n.GenBounds()
	e.aeq = mat.NewDenseFrom(1, e.nG, mat.Ones(e.nG))
	nb, nl := n.N(), n.L()
	e.pool.New = func() any {
		w := &dispatchWorkspace{
			bf:       grid.NewBFactorizerBackend(n, e.backend),
			ptdf:     mat.NewDense(nl, nb-1),
			loads:    make([]float64, nb),
			redLoad:  make([]float64, nb-1),
			f0:       make([]float64, nl),
			s:        mat.NewDense(nl, e.nG),
			bub:      make([]float64, 2*len(e.limRow)),
			inj:      make([]float64, nb),
			pRed:     make([]float64, nb-1),
			thetaRed: make([]float64, nb-1),
		}
		if e.warm {
			w.rsolver = lp.NewRevisedSolver()
		} else {
			w.solver = lp.NewSolver()
		}
		if len(e.limRow) > 0 {
			w.aub = mat.NewDense(2*len(e.limRow), e.nG)
		}
		return w
	}
	return e, nil
}

// Backend reports the resolved factorization backend the engine runs on.
func (e *DispatchEngine) Backend() grid.Backend { return e.backend }

// prepare builds the dispatch LP for reactances x into the workspace and
// solves it. It mirrors SolveDispatch step for step on the dense path; the
// sparse path routes the identical LP through the warm-started revised
// simplex.
func (e *DispatchEngine) prepare(w *dispatchWorkspace, x []float64) (*lp.Solution, error) {
	prob, err := e.buildProblem(w, x)
	if err != nil {
		return nil, err
	}
	var sol *lp.Solution
	if e.warm {
		sol, err = w.rsolver.Solve(prob)
	} else {
		sol, err = w.solver.Solve(prob)
	}
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil, ErrInfeasible
		}
		return nil, fmt.Errorf("opf: %w", err)
	}
	return sol, nil
}

// buildProblem assembles the dispatch LP for reactances x into the
// workspace buffers (the returned Problem aliases them).
func (e *DispatchEngine) buildProblem(w *dispatchWorkspace, x []float64) (*lp.Problem, error) {
	n := e.n
	// PTDF = D·Arᵀ·Br⁻¹ through the factorization backend (the dense
	// backend reproduces Network.PTDF's construction bitwise).
	if err := w.bf.Reset(x); err != nil {
		return nil, fmt.Errorf("opf: PTDF: %w", err)
	}
	if err := w.bf.PTDFInto(w.ptdf); err != nil {
		return nil, fmt.Errorf("opf: PTDF: %w", err)
	}
	s := n.SlackBus - 1

	// Reduced load vector (MW) and its flow contribution.
	for i, b := range n.Buses {
		w.loads[i] = b.LoadMW
	}
	reduceInto(w.redLoad, w.loads, s)
	mat.MulVecInto(w.f0, w.ptdf, w.redLoad)

	// S maps dispatch to flows: column g is the PTDF column of the
	// generator's reduced bus index (zero column if it sits at slack);
	// identical to applying the PTDF to the unit injection.
	w.s.Zero()
	for gi := 0; gi < e.nG; gi++ {
		ri := e.redIdx[gi]
		if ri < 0 {
			continue
		}
		for l := 0; l < n.L(); l++ {
			w.s.Set(l, gi, w.ptdf.At(l, ri))
		}
	}

	// Inequalities: S·g − f0 <= fmax and −S·g + f0 <= fmax, skipping
	// unlimited branches.
	nR := len(e.limRow)
	if nR > 0 {
		for k, l := range e.limRow {
			for gi := 0; gi < e.nG; gi++ {
				w.aub.Set(k, gi, w.s.At(l, gi))
				w.aub.Set(nR+k, gi, -w.s.At(l, gi))
			}
			w.bub[k] = n.Branches[l].LimitMW + w.f0[l]
			w.bub[nR+k] = n.Branches[l].LimitMW - w.f0[l]
		}
	}

	prob := &lp.Problem{
		C:     e.cost,
		Aeq:   e.aeq,
		Beq:   []float64{n.TotalLoadMW()},
		Lower: e.genLo,
		Upper: e.genHi,
	}
	if nR > 0 {
		prob.Aub = w.aub
		prob.Bub = w.bub
	}
	return prob, nil
}

// Cost returns the optimal generation cost ($/h) for reactances x without
// materializing flows and angles — the form the selection search's inner
// loop wants. The value is bitwise identical to Solve(x).CostPerHour.
//
// Pooled solves always start from a cold LP basis: sync.Pool hands out
// workspaces in a scheduling- and GC-dependent order, so any warm state
// carried across pooled calls would make results depend on that order.
// Dropping it keeps every engine-level solve a pure function of (loads, x)
// — the arithmetic a freshly constructed engine performs — and leaves warm
// solving to the explicitly scoped per-worker sessions.
func (e *DispatchEngine) Cost(x []float64) (float64, error) {
	w := e.pool.Get().(*dispatchWorkspace)
	w.dropWarmStart()
	sol, err := e.prepare(w, x)
	e.pool.Put(w)
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// Solve returns the full OPF result for reactances x, including the
// verifying DC power flow, exactly as SolveDispatch does. Like Cost, a
// pooled solve always starts from a cold LP basis.
func (e *DispatchEngine) Solve(x []float64) (*Result, error) {
	w := e.pool.Get().(*dispatchWorkspace)
	defer e.pool.Put(w)
	w.dropWarmStart()
	return e.solve(w, x)
}

// dropWarmStart discards the workspace's warm LP basis (no-op on the
// dense path).
func (w *dispatchWorkspace) dropWarmStart() {
	if w.rsolver != nil {
		w.rsolver.Invalidate()
	}
}

// solve is Solve against an explicit workspace.
func (e *DispatchEngine) solve(w *dispatchWorkspace, x []float64) (*Result, error) {
	sol, err := e.prepare(w, x)
	if err != nil {
		return nil, err
	}
	n := e.n

	// Verifying power flow (dcflow.SolveDispatch, reusing the factors of
	// the same reduced susceptance matrix).
	for i, b := range n.Buses {
		w.inj[i] = -b.LoadMW
	}
	for i, g := range n.Gens {
		w.inj[g.Bus-1] += sol.X[i]
	}
	total := mat.SumVec(w.inj)
	if math.Abs(total) > 1e-6*(1+mat.Norm1(w.inj)) {
		return nil, fmt.Errorf("opf: verifying dispatch: %w: imbalance %.6g MW", dcflow.ErrUnbalanced, total)
	}
	slack := n.SlackBus - 1
	invBase := 1 / n.BaseMVA // multiply, as dcflow's ScaleVec does
	for i := range w.inj {
		w.inj[i] *= invBase
	}
	reduceInto(w.pRed, w.inj, slack)
	w.bf.SolveInto(w.thetaRed, w.pRed)
	theta := n.ExpandVec(w.thetaRed, 0)
	flows := make([]float64, n.L())
	for l, br := range n.Branches {
		flows[l] = (theta[br.From-1] - theta[br.To-1]) / x[l] * n.BaseMVA
	}
	return &Result{
		DispatchMW:  sol.X,
		FlowsMW:     flows,
		ThetaRad:    theta,
		CostPerHour: sol.Objective,
		Reactances:  mat.CopyVec(x),
	}, nil
}

// DispatchSession is a single-goroutine view of a DispatchEngine: it owns
// one workspace outright instead of borrowing from the pool per call. The
// parallel multi-start driver holds one session per worker (no pool churn)
// and, on the sparse path, the session is where the warm LP basis lives —
// ResetWarmStart scopes it to one local search so results stay independent
// of how starts are distributed across workers. A DispatchSession is not
// safe for concurrent use.
type DispatchSession struct {
	e *DispatchEngine
	w *dispatchWorkspace
}

// NewSession returns a fresh session with its own workspace.
func (e *DispatchEngine) NewSession() *DispatchSession {
	return &DispatchSession{e: e, w: e.pool.New().(*dispatchWorkspace)}
}

// Cost is DispatchEngine.Cost on the session's private workspace.
func (s *DispatchSession) Cost(x []float64) (float64, error) {
	sol, err := s.e.prepare(s.w, x)
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}

// Solve is DispatchEngine.Solve on the session's private workspace.
func (s *DispatchSession) Solve(x []float64) (*Result, error) {
	return s.e.solve(s.w, x)
}

// ResetWarmStart drops the session's warm LP basis (a no-op on the dense
// path): the next solve starts cold. Deterministic drivers call it at
// their reproducibility boundaries — one local search per warm scope.
func (s *DispatchSession) ResetWarmStart() {
	if s.w.rsolver != nil {
		s.w.rsolver.Invalidate()
	}
}

// LPStats reports the session's revised-simplex counters (zero value on
// the dense path).
func (s *DispatchSession) LPStats() lp.RevisedStats {
	if s.w.rsolver == nil {
		return lp.RevisedStats{}
	}
	return s.w.rsolver.Stats()
}

// reduceInto removes the slack entry of the length-N vector v into dst.
func reduceInto(dst, v []float64, slack int) {
	k := 0
	for i, x := range v {
		if i == slack {
			continue
		}
		dst[k] = x
		k++
	}
}
