package opf

import (
	"math/rand"
	"reflect"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/optimize"
)

// TestDualBoundNeverCutsFeasibleWinner is the end-to-end screening
// contract on real dispatch LPs: Nelder-Mead searches over perturbed
// D-FACTS reactances, run once exactly and once with the dual-bound
// screen (on a fresh engine, so every screened evaluation really probes
// instead of hitting the first run's solve cache), must evaluate the
// identical candidate sequence and return bitwise-identical results —
// the screen may only remove simplex work from rejected candidates,
// never a feasible winner. ieee118's calibrated ratings make line
// limits bind, so the search landscape has real gradients and the
// screen actually fires (asserted).
func TestDualBoundNeverCutsFeasibleWinner(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping ieee118 screened-search property in -short mode")
	}
	n, err := grid.CaseByName("ieee118")
	if err != nil {
		t.Fatal(err)
	}
	mkObj := func(s *DispatchSession, seq *[][]float64) optimize.Objective {
		return func(xd []float64) float64 {
			*seq = append(*seq, append([]float64(nil), xd...))
			cost, err := s.Cost(n.ExpandDFACTS(xd))
			if err != nil {
				return optimize.InfeasibleObjective
			}
			return cost
		}
	}
	mkScreen := func(s *DispatchSession, seq *[][]float64) optimize.ThresholdEval {
		return func(xd []float64, threshold float64) (float64, bool) {
			*seq = append(*seq, append([]float64(nil), xd...))
			if threshold >= optimize.InfeasibleObjective {
				cost, err := s.Cost(n.ExpandDFACTS(xd))
				if err != nil {
					return optimize.InfeasibleObjective, false
				}
				return cost, false
			}
			cost, screened, err := s.CostOrBound(n.ExpandDFACTS(xd), threshold)
			if err != nil {
				return optimize.InfeasibleObjective, false
			}
			return cost, screened
		}
	}

	rng := rand.New(rand.NewSource(5))
	lo, hi := n.DFACTSBounds()
	totalScreens := 0
	for trial := 0; trial < 6; trial++ {
		x0 := make([]float64, len(lo))
		for i := range x0 {
			x0[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		cfg := optimize.NMConfig{MaxEvals: 40 + rng.Intn(40)}

		exactEng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
		if err != nil {
			t.Fatal(err)
		}
		var exactSeq [][]float64
		exact, err := optimize.NelderMead(mkObj(exactEng.NewSession(), &exactSeq), x0, cfg)
		if err != nil {
			t.Fatal(err)
		}

		scrEng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
		if err != nil {
			t.Fatal(err)
		}
		ss := scrEng.NewSession()
		var scrSeq [][]float64
		scfg := cfg
		scfg.Screen = mkScreen(ss, &scrSeq)
		screened, err := optimize.NelderMead(mkObj(ss, &scrSeq), x0, scfg)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(exact, screened) {
			t.Fatalf("trial %d: screened search returned a different result:\nexact    %+v\nscreened %+v",
				trial, exact, screened)
		}
		if !reflect.DeepEqual(exactSeq, scrSeq) {
			t.Fatalf("trial %d: screened search evaluated a different candidate sequence (%d vs %d points)",
				trial, len(scrSeq), len(exactSeq))
		}
		st := ss.LPStats()
		totalScreens += st.BoundScreens
		if st.BoundProbes == 0 {
			t.Fatalf("trial %d: screened search never probed the dual bound", trial)
		}
	}
	if totalScreens == 0 {
		t.Fatal("screened searches never certified a rejection — the screen is dead")
	}
	t.Logf("dual-bound screen certified %d rejections across trials, results bitwise identical", totalScreens)
}
