package opf

import (
	"errors"
	"fmt"
	"math"

	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
	"gridmtd/internal/mat"
)

// SolveDispatchAngles solves the same dispatch-only DC OPF as
// SolveDispatch but in the paper's original variables (g, θ):
//
//	min  Σ c_i g_i
//	s.t. g − l = B·θ           (nodal balance, equation (1b))
//	     |D·Aᵀ·θ| <= fmax       (branch limits, (1c))
//	     gmin <= g <= gmax      ((1d))
//	     θ_slack = 0
//
// It exists as a cross-check and ablation for the PTDF formulation: both
// must find the same optimal cost (they are the same LP after eliminating
// θ), but this variant carries N−1 extra free variables and N equality
// rows. The equivalence is asserted by tests and its cost measured by the
// repository benchmarks.
func SolveDispatchAngles(n *grid.Network, x []float64) (*Result, error) {
	if len(n.Gens) == 0 {
		return nil, errors.New("opf: network has no generators")
	}
	nG := len(n.Gens)
	nb := n.N()
	nTheta := nb - 1 // reduced angles
	nv := nG + nTheta

	// Variable layout: [g_0..g_{nG-1}, θ_red...]. Angles are free; use wide
	// artificial bounds to keep the standard-form conversion compact.
	lower := make([]float64, nv)
	upper := make([]float64, nv)
	lo, hi := n.GenBounds()
	copy(lower, lo)
	copy(upper, hi)
	for j := nG; j < nv; j++ {
		lower[j] = math.Inf(-1)
		upper[j] = math.Inf(1)
	}

	c := make([]float64, nv)
	copy(c, n.GenCosts())

	// Equality rows: for each bus i, Σ_{g at i} g − Σ_j B_ij θ_j = l_i.
	// B in per-unit acting on θ gives per-unit injections; convert to MW.
	b := n.BMatrix(x)
	aeq := mat.NewDense(nb, nv)
	beq := make([]float64, nb)
	colOf := func(bus int) int { // reduced angle column for 0-based bus
		s := n.SlackBus - 1
		switch {
		case bus == s:
			return -1
		case bus < s:
			return nG + bus
		default:
			return nG + bus - 1
		}
	}
	for i := 0; i < nb; i++ {
		for gi, g := range n.Gens {
			if g.Bus-1 == i {
				aeq.Add(i, gi, 1)
			}
		}
		for j := 0; j < nb; j++ {
			if cj := colOf(j); cj >= 0 {
				aeq.Add(i, cj, -b.At(i, j)*n.BaseMVA)
			}
		}
		beq[i] = n.Buses[i].LoadMW
	}

	// Inequality rows: ±flow_l = ±(θ_from − θ_to)/x_l · base <= fmax_l.
	var rows []int
	for l, br := range n.Branches {
		if !math.IsInf(br.LimitMW, 1) {
			rows = append(rows, l)
		}
	}
	var aub *mat.Dense
	var bub []float64
	if len(rows) > 0 {
		aub = mat.NewDense(2*len(rows), nv)
		bub = make([]float64, 2*len(rows))
		for k, l := range rows {
			br := n.Branches[l]
			coef := n.BaseMVA / x[l]
			if cj := colOf(br.From - 1); cj >= 0 {
				aub.Add(k, cj, coef)
				aub.Add(len(rows)+k, cj, -coef)
			}
			if cj := colOf(br.To - 1); cj >= 0 {
				aub.Add(k, cj, -coef)
				aub.Add(len(rows)+k, cj, coef)
			}
			bub[k] = br.LimitMW
			bub[len(rows)+k] = br.LimitMW
		}
	}

	sol, err := lp.Solve(&lp.Problem{
		C: c, Aeq: aeq, Beq: beq, Aub: aub, Bub: bub,
		Lower: lower, Upper: upper,
	})
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil, ErrInfeasible
		}
		return nil, fmt.Errorf("opf: angle formulation: %w", err)
	}

	dispatch := sol.X[:nG]
	thetaRed := sol.X[nG:]
	theta := n.ExpandVec(thetaRed, 0)
	flows := make([]float64, n.L())
	for l, br := range n.Branches {
		flows[l] = (theta[br.From-1] - theta[br.To-1]) / x[l] * n.BaseMVA
	}
	return &Result{
		DispatchMW:  mat.CopyVec(dispatch),
		FlowsMW:     flows,
		ThetaRad:    theta,
		CostPerHour: sol.Objective,
		Reactances:  mat.CopyVec(x),
	}, nil
}
