package opf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
)

func TestAnglesMatchesPTDFOn4Bus(t *testing.T) {
	n := grid.Case4GS()
	a, err := SolveDispatchAngles(n, n.Reactances())
	if err != nil {
		t.Fatal(err)
	}
	p, err := SolveDispatch(n, n.Reactances())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.CostPerHour-p.CostPerHour) > 1e-5 {
		t.Fatalf("angle cost %v != PTDF cost %v", a.CostPerHour, p.CostPerHour)
	}
	if !mat.VecEqual(a.DispatchMW, p.DispatchMW, 1e-4) {
		t.Fatalf("dispatch mismatch: %v vs %v", a.DispatchMW, p.DispatchMW)
	}
}

func TestAnglesMatchesPTDFOn14And30Bus(t *testing.T) {
	for _, n := range []*grid.Network{grid.CaseIEEE14(), grid.CaseIEEE30()} {
		a, err := SolveDispatchAngles(n, n.Reactances())
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		p, err := SolveDispatch(n, n.Reactances())
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if math.Abs(a.CostPerHour-p.CostPerHour) > 1e-4*(1+p.CostPerHour) {
			t.Errorf("%s: angle cost %v != PTDF cost %v", n.Name, a.CostPerHour, p.CostPerHour)
		}
		// The angle solution must be physically consistent and feasible.
		for l, br := range n.Branches {
			if math.Abs(a.FlowsMW[l]) > br.LimitMW+1e-5 {
				t.Errorf("%s: branch %d flow %v exceeds %v", n.Name, l, a.FlowsMW[l], br.LimitMW)
			}
		}
		if math.Abs(mat.SumVec(a.DispatchMW)-n.TotalLoadMW()) > 1e-5 {
			t.Errorf("%s: dispatch does not balance load", n.Name)
		}
	}
}

func TestAnglesInfeasible(t *testing.T) {
	n := grid.Case4GS()
	n.ScaleLoads(2)
	if _, err := SolveDispatchAngles(n, n.Reactances()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestAnglesNoGenerators(t *testing.T) {
	n := grid.Case4GS()
	n.Gens = nil
	if _, err := SolveDispatchAngles(n, n.Reactances()); err == nil {
		t.Fatal("expected error")
	}
}

// Property: the two LP formulations agree at random D-FACTS settings and
// load scalings (the formulations are algebraically equivalent).
func TestQuickFormulationEquivalence(t *testing.T) {
	base := grid.CaseIEEE14()
	lo, hi := base.DFACTSBounds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := base.Clone()
		n.ScaleLoads(0.6 + 0.5*rng.Float64())
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		x := n.ExpandDFACTS(xd)
		a, errA := SolveDispatchAngles(n, x)
		p, errP := SolveDispatch(n, x)
		if errA != nil || errP != nil {
			// Both must agree on infeasibility too.
			return errors.Is(errA, ErrInfeasible) == errors.Is(errP, ErrInfeasible)
		}
		return math.Abs(a.CostPerHour-p.CostPerHour) < 1e-4*(1+p.CostPerHour)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
