package opf

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
	"gridmtd/internal/mat"
)

// captureWorkingMatrices drives a warm dispatch walk on a registered case
// with a factor hook installed and returns clones of up to limit working
// matrices the revised solver actually factored — the real inputs the
// sparse-LU route must handle, not synthetic random patterns.
func captureWorkingMatrices(t *testing.T, caseName string, trials, limit, minDim int) []*mat.Dense {
	t.Helper()
	n, err := grid.CaseByName(caseName)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	w := eng.pool.New().(*dispatchWorkspace)
	// One captured matrix per working dimension seen: the walk refactors
	// hundreds of near-identical bases, but the interesting coverage axis
	// is the size/pattern spectrum from the 1×1 crash basis up to the full
	// active set at the optimum.
	bySize := map[int]*mat.Dense{}
	w.rsolver.SetFactorHook(func(wm *mat.Dense) {
		if _, ok := bySize[wm.Rows()]; !ok {
			bySize[wm.Rows()] = wm.Clone()
		}
	})
	rng := rand.New(rand.NewSource(23))
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.5 * (lo[i] + hi[i])
	}
	for trial := 0; trial < trials; trial++ {
		for i := range xd {
			xd[i] += 0.05 * (hi[i] - lo[i]) * (2*rng.Float64() - 1)
			if xd[i] < lo[i] {
				xd[i] = lo[i]
			}
			if xd[i] > hi[i] {
				xd[i] = hi[i]
			}
		}
		prob, err := eng.buildProblem(w, n.ExpandDFACTS(xd))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Infeasible candidates still factor bases on the way to the
		// certificate; only build errors are fatal.
		_, _ = w.rsolver.Solve(prob)
	}
	if len(bySize) == 0 {
		t.Fatalf("%s: no working matrices captured", caseName)
	}
	// Largest dimensions first — the bases that actually cost solves.
	sizes := make([]int, 0, len(bySize))
	for k := range bySize {
		sizes = append(sizes, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	var captured []*mat.Dense
	for _, k := range sizes {
		if len(captured) == limit {
			break
		}
		captured = append(captured, bySize[k])
	}
	if captured[0].Rows() < minDim {
		t.Fatalf("%s: largest captured working matrix is only %dx%d — the walk never grew a real active set",
			caseName, captured[0].Rows(), captured[0].Rows())
	}
	return captured
}

// checkSparseVsDense factors one captured working matrix both ways and
// compares forward and transpose solves to 1e-10 — the agreement bar the
// ISSUE sets for routing the revised solver's solves through the sparse
// factorization.
func checkSparseVsDense(t *testing.T, tag string, wm *mat.Dense) {
	t.Helper()
	k := wm.Rows()
	dense, err := mat.ComputeLU(wm)
	if err != nil {
		t.Fatalf("%s: dense LU failed on a captured basis: %v", tag, err)
	}
	sparse, err := mat.ComputeSparseLU(wm)
	if err != nil {
		t.Fatalf("%s: sparse LU failed on a captured basis: %v", tag, err)
	}
	rng := rand.New(rand.NewSource(int64(k)))
	b := make([]float64, k)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	xd := make([]float64, k)
	xs := make([]float64, k)
	dense.SolveInto(xd, b)
	sparse.SolveInto(xs, b)
	for i := range xd {
		if d := math.Abs(xd[i] - xs[i]); d > 1e-10*(1+math.Abs(xd[i])) {
			t.Fatalf("%s: solve[%d]: dense %.15g sparse %.15g", tag, i, xd[i], xs[i])
		}
	}
	dense.SolveTransposeInto(xd, b)
	sparse.SolveTransposeInto(xs, b)
	for i := range xd {
		if d := math.Abs(xd[i] - xs[i]); d > 1e-10*(1+math.Abs(xd[i])) {
			t.Fatalf("%s: transpose solve[%d]: dense %.15g sparse %.15g", tag, i, xd[i], xs[i])
		}
	}
}

// TestSparseLUOnCapturedWorkingMatrices118 validates the sparse LU against
// working matrices captured from a real ieee118 dispatch walk.
func TestSparseLUOnCapturedWorkingMatrices118(t *testing.T) {
	// ieee118's calibrated ratings bind only a handful of rows near the
	// mid-box walk, so its real working matrices top out small.
	for i, wm := range captureWorkingMatrices(t, "ieee118", 25, 6, 4) {
		checkSparseVsDense(t, "ieee118", wm)
		if testing.Verbose() {
			t.Logf("matrix %d: %dx%d", i, wm.Rows(), wm.Cols())
		}
	}
}

// TestSparseLUOnCapturedWorkingMatrices300 does the same on ieee300 — the
// case whose cold-selection latency the sparse route serves.
func TestSparseLUOnCapturedWorkingMatrices300(t *testing.T) {
	if testing.Short() {
		t.Skip("ieee300 dispatch walk takes seconds")
	}
	for _, wm := range captureWorkingMatrices(t, "ieee300", 15, 4, 8) {
		checkSparseVsDense(t, "ieee300", wm)
	}
}

// TestSparseRouteAgreesOnSparseLP pins the in-solver routing contract: on
// an LP whose working matrices pass the density gate, the sparse route
// must actually be taken (SparseFactors advances) and the answers must
// match a solver without the route to 1e-9 — so flipping the gate can
// never change which problems solve or what they report.
func TestSparseRouteAgreesOnSparseLP(t *testing.T) {
	mk := func(tighten float64) *lp.Problem {
		// 48 box variables maximizing their sum under bidiagonal rating
		// rows: every row is tight at the optimum, so the working matrix
		// is the full 48×48 bidiagonal active set — dimension over the
		// gate's floor at ~4% density.
		nv := 48
		c := make([]float64, nv)
		lo := make([]float64, nv)
		up := make([]float64, nv)
		for j := 0; j < nv; j++ {
			c[j] = -1 - 0.01*float64(j)
			up[j] = 2
		}
		aub := mat.NewDense(nv, nv)
		bub := make([]float64, nv)
		for i := 0; i < nv; i++ {
			aub.Set(i, i, 1)
			if i > 0 {
				aub.Set(i, i-1, 0.25)
			}
			bub[i] = 1.2 - tighten
		}
		return &lp.Problem{C: c, Aub: aub, Bub: bub, Lower: lo, Upper: up}
	}
	routed := lp.NewRevisedSolver()
	routed.SetSparseLU(true)
	plain := lp.NewRevisedSolver()
	for trial := 0; trial < 4; trial++ {
		p := mk(0.05 * float64(trial))
		a, errA := routed.Solve(p)
		b, errB := plain.Solve(p)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: routed err %v, plain err %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if d := math.Abs(a.Objective - b.Objective); d > 1e-9*(1+math.Abs(b.Objective)) {
			t.Fatalf("trial %d: routed %.15g vs plain %.15g", trial, a.Objective, b.Objective)
		}
	}
	if routed.Stats().SparseFactors == 0 {
		t.Fatalf("sparse route never taken on a gate-passing LP: %+v", routed.Stats())
	}
	if plain.Stats().SparseFactors != 0 {
		t.Fatalf("unrouted solver took the sparse route: %+v", plain.Stats())
	}
}
