// Package opf solves the paper's optimal power flow problems. With linear
// generation costs and the DC model, OPF over the generator dispatch
// (problem (1) with fixed reactances) is a linear program, formulated here
// over PTDF sensitivities and solved with the internal simplex. OPF over
// dispatch AND D-FACTS reactance settings (problem (1) in full) is
// non-convex in the reactances; it is solved by derivative-free multi-start
// search over the D-FACTS box with the dispatch LP nested inside — the same
// decomposition MATLAB's fmincon+MultiStart effectively performs in the
// paper's simulations.
package opf

import (
	"errors"
	"fmt"
	"math"

	"gridmtd/internal/dcflow"
	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
	"gridmtd/internal/mat"
	"gridmtd/internal/optimize"
)

// ErrInfeasible is returned when no dispatch satisfies the generation,
// balance and flow constraints.
var ErrInfeasible = errors.New("opf: problem is infeasible")

// Result is a solved OPF.
type Result struct {
	// DispatchMW is the generator dispatch (ordered as Network.Gens).
	DispatchMW []float64
	// FlowsMW are branch flows at the optimum.
	FlowsMW []float64
	// ThetaRad are bus voltage angles at the optimum (slack = 0).
	ThetaRad []float64
	// CostPerHour is the generation cost Σ c_i g_i in $/h.
	CostPerHour float64
	// Reactances is the branch reactance vector the OPF was solved for.
	Reactances []float64
}

// SolveDispatch solves the dispatch-only OPF for fixed branch reactances x:
//
//	min  Σ c_i g_i
//	s.t. Σ g = Σ load, |PTDF·(g − load)| <= fmax, gmin <= g <= gmax.
func SolveDispatch(n *grid.Network, x []float64) (*Result, error) {
	if len(n.Gens) == 0 {
		return nil, errors.New("opf: network has no generators")
	}
	nG := len(n.Gens)
	ptdf, err := n.PTDF(x)
	if err != nil {
		return nil, fmt.Errorf("opf: PTDF: %w", err)
	}

	// Reduced load vector (MW) and its flow contribution.
	loadRed := n.ReduceVec(n.LoadsMW())
	f0 := mat.MulVec(ptdf, loadRed) // flow produced by -load alone, negated below

	// S maps dispatch to flows: column g is PTDF applied to the unit
	// injection at the generator's bus (zero column if it sits at slack).
	s := mat.NewDense(n.L(), nG)
	for gi, g := range n.Gens {
		if g.Bus == n.SlackBus {
			continue
		}
		unit := make([]float64, n.N())
		unit[g.Bus-1] = 1
		col := mat.MulVec(ptdf, n.ReduceVec(unit))
		s.SetCol(gi, col)
	}

	// Inequalities: S·g − f0 <= fmax and −S·g + f0 <= fmax, skipping
	// unlimited branches.
	var rows []int
	for l, br := range n.Branches {
		if !math.IsInf(br.LimitMW, 1) {
			rows = append(rows, l)
		}
	}
	var aub *mat.Dense
	var bub []float64
	if len(rows) > 0 {
		aub = mat.NewDense(2*len(rows), nG)
		bub = make([]float64, 2*len(rows))
		for k, l := range rows {
			for gi := 0; gi < nG; gi++ {
				aub.Set(k, gi, s.At(l, gi))
				aub.Set(len(rows)+k, gi, -s.At(l, gi))
			}
			bub[k] = n.Branches[l].LimitMW + f0[l]
			bub[len(rows)+k] = n.Branches[l].LimitMW - f0[l]
		}
	}

	lo, hi := n.GenBounds()
	prob := &lp.Problem{
		C:     n.GenCosts(),
		Aeq:   mat.NewDenseFrom(1, nG, mat.Ones(nG)),
		Beq:   []float64{n.TotalLoadMW()},
		Aub:   aub,
		Bub:   bub,
		Lower: lo,
		Upper: hi,
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil, ErrInfeasible
		}
		return nil, fmt.Errorf("opf: %w", err)
	}

	flow, err := dcflow.SolveDispatch(n, x, sol.X)
	if err != nil {
		return nil, fmt.Errorf("opf: verifying dispatch: %w", err)
	}
	return &Result{
		DispatchMW:  sol.X,
		FlowsMW:     flow.FlowsMW,
		ThetaRad:    flow.ThetaRad,
		CostPerHour: sol.Objective,
		Reactances:  mat.CopyVec(x),
	}, nil
}

// DFACTSConfig tunes the outer reactance search of SolveDFACTS.
type DFACTSConfig struct {
	// Starts is the number of random multi-start points in addition to the
	// current reactance setting (default 8).
	Starts int
	// Seed seeds the multi-start sampler.
	Seed int64
	// MaxEvals bounds objective evaluations per local search (default
	// 60 × #D-FACTS branches).
	MaxEvals int
}

func (c DFACTSConfig) withDefaults(dim int) DFACTSConfig {
	if c.Starts <= 0 {
		c.Starts = 8
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 60 * dim
	}
	return c
}

// SolveDFACTS solves the full problem (1): minimize generation cost over
// both the dispatch and the D-FACTS reactance settings. Networks without
// D-FACTS devices reduce to SolveDispatch at the current reactances
// (paper footnote 1).
func SolveDFACTS(n *grid.Network, cfg DFACTSConfig) (*Result, error) {
	idx := n.DFACTSIndices()
	if len(idx) == 0 {
		return SolveDispatch(n, n.Reactances())
	}
	cfg = cfg.withDefaults(len(idx))
	lo, hi := n.DFACTSBounds()
	box := optimize.Bounds{Lower: lo, Upper: hi}

	obj := func(xd []float64) float64 {
		res, err := SolveDispatch(n, n.ExpandDFACTS(xd))
		if err != nil {
			return optimize.InfeasibleObjective
		}
		return res.CostPerHour
	}
	local := func(f optimize.Objective, x0 []float64) (*optimize.Result, error) {
		return optimize.NelderMead(f, x0, optimize.NMConfig{MaxEvals: cfg.MaxEvals})
	}
	best, err := optimize.MultiStart(obj, box, local, optimize.MSConfig{
		Starts:        cfg.Starts,
		Seed:          cfg.Seed,
		InitialPoints: [][]float64{n.DFACTSSetting(n.Reactances())},
	})
	if err != nil {
		return nil, fmt.Errorf("opf: D-FACTS search: %w", err)
	}
	if best.F >= optimize.InfeasibleObjective {
		return nil, ErrInfeasible
	}
	return SolveDispatch(n, n.ExpandDFACTS(best.X))
}
