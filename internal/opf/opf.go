// Package opf solves the paper's optimal power flow problems. With linear
// generation costs and the DC model, OPF over the generator dispatch
// (problem (1) with fixed reactances) is a linear program, formulated here
// over PTDF sensitivities and solved with the internal simplex. OPF over
// dispatch AND D-FACTS reactance settings (problem (1) in full) is
// non-convex in the reactances; it is solved by derivative-free multi-start
// search over the D-FACTS box with the dispatch LP nested inside — the same
// decomposition MATLAB's fmincon+MultiStart effectively performs in the
// paper's simulations.
package opf

import (
	"errors"
	"fmt"

	"gridmtd/internal/grid"
	"gridmtd/internal/optimize"
)

// ErrInfeasible is returned when no dispatch satisfies the generation,
// balance and flow constraints.
var ErrInfeasible = errors.New("opf: problem is infeasible")

// Result is a solved OPF.
type Result struct {
	// DispatchMW is the generator dispatch (ordered as Network.Gens).
	DispatchMW []float64
	// FlowsMW are branch flows at the optimum.
	FlowsMW []float64
	// ThetaRad are bus voltage angles at the optimum (slack = 0).
	ThetaRad []float64
	// CostPerHour is the generation cost Σ c_i g_i in $/h.
	CostPerHour float64
	// Reactances is the branch reactance vector the OPF was solved for.
	Reactances []float64
}

// SolveDispatch solves the dispatch-only OPF for fixed branch reactances x:
//
//	min  Σ c_i g_i
//	s.t. Σ g = Σ load, |PTDF·(g − load)| <= fmax, gmin <= g <= gmax.
func SolveDispatch(n *grid.Network, x []float64) (*Result, error) {
	e, err := NewDispatchEngine(n)
	if err != nil {
		return nil, err
	}
	return e.Solve(x)
}

// DFACTSConfig tunes the outer reactance search of SolveDFACTS.
type DFACTSConfig struct {
	// Starts is the number of random multi-start points in addition to the
	// current reactance setting (default 8).
	Starts int
	// Seed seeds the multi-start sampler.
	Seed int64
	// MaxEvals bounds objective evaluations per local search (default
	// 60 × #D-FACTS branches).
	MaxEvals int
	// Parallelism bounds the number of concurrent local searches (0 =
	// GOMAXPROCS). The result is identical for any setting.
	Parallelism int
	// Initial, when non-nil, is the full reactance vector whose D-FACTS
	// setting seeds the search instead of the network's nominal reactances
	// (day-sweep loops that keep yesterday's devices installed pass the
	// installed vector here).
	Initial []float64
}

func (c DFACTSConfig) withDefaults(dim int) DFACTSConfig {
	if c.Starts <= 0 {
		c.Starts = 8
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 60 * dim
	}
	return c
}

// SolveDFACTS solves the full problem (1): minimize generation cost over
// both the dispatch and the D-FACTS reactance settings. Networks without
// D-FACTS devices reduce to SolveDispatch at the current reactances
// (paper footnote 1).
func SolveDFACTS(n *grid.Network, cfg DFACTSConfig) (*Result, error) {
	engine, err := NewDispatchEngine(n)
	if err != nil {
		return nil, err
	}
	return SolveDFACTSEngine(engine, cfg)
}

// SolveDFACTSEngine is SolveDFACTS against a pre-built dispatch engine —
// the form batched drivers (day sweeps, the planner service) use so one
// engine's cached LP skeleton and factorizer workspaces serve every solve
// on a case. The arithmetic is identical to SolveDFACTS.
func SolveDFACTSEngine(engine *DispatchEngine, cfg DFACTSConfig) (*Result, error) {
	n := engine.n
	idx := n.DFACTSIndices()
	if len(idx) == 0 {
		return engine.Solve(n.Reactances())
	}
	cfg = cfg.withDefaults(len(idx))
	lo, hi := n.DFACTSBounds()
	box := optimize.Bounds{Lower: lo, Upper: hi}

	// Per-worker engine sessions: no pool churn per evaluation, and on the
	// sparse path the warm LP basis is scoped to one local search so the
	// result is identical for every worker count. The driver-level
	// objective comes from the same factory — one definition.
	newWorker := func() (optimize.Objective, optimize.ThresholdEval, func()) {
		s := engine.NewSession()
		obj := func(xd []float64) float64 {
			cost, err := s.Cost(n.ExpandDFACTS(xd))
			if err != nil {
				return optimize.InfeasibleObjective
			}
			return cost
		}
		if engine.Backend() != grid.SparseBackend {
			return obj, nil, s.ResetWarmStart
		}
		// Sparse path: the objective IS the dispatch cost, so the
		// dual-bound screen applies to every threshold-bearing
		// evaluation. The screen is only valid below the infeasibility
		// sentinel (errors map to exactly InfeasibleObjective, so
		// "cost > threshold" implies "objective > threshold" only when
		// threshold < InfeasibleObjective).
		te := func(xd []float64, threshold float64) (float64, bool) {
			if threshold >= optimize.InfeasibleObjective {
				return obj(xd), false
			}
			cost, screened, err := s.CostOrBound(n.ExpandDFACTS(xd), threshold)
			if err != nil {
				return optimize.InfeasibleObjective, false
			}
			return cost, screened
		}
		return obj, te, s.ResetWarmStart
	}
	obj, _, _ := newWorker()
	local := func(f optimize.Objective, x0 []float64) (*optimize.Result, error) {
		return optimize.NelderMead(f, x0, optimize.NMConfig{MaxEvals: cfg.MaxEvals})
	}
	initial := cfg.Initial
	if initial == nil {
		initial = n.Reactances()
	}
	best, err := optimize.MultiStart(obj, box, local, optimize.MSConfig{
		Starts:        cfg.Starts,
		Seed:          cfg.Seed,
		InitialPoints: [][]float64{n.DFACTSSetting(initial)},
		Parallelism:   cfg.Parallelism,
		// On the sparse path every evaluation is a full dispatch LP, so a
		// random restart must beat the incumbent initial-point optimum at
		// its start point to earn a Nelder-Mead budget. The dense path
		// keeps the historical every-start search bitwise.
		ScreenRestarts:    engine.Backend() == grid.SparseBackend,
		NewWorkerScreened: newWorker,
		ScreenedLocal: func(f optimize.Objective, screen optimize.ThresholdEval, x0 []float64) (*optimize.Result, error) {
			return optimize.NelderMead(f, x0, optimize.NMConfig{MaxEvals: cfg.MaxEvals, Screen: screen})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("opf: D-FACTS search: %w", err)
	}
	if best.F >= optimize.InfeasibleObjective {
		return nil, ErrInfeasible
	}
	return engine.Solve(n.ExpandDFACTS(best.X))
}
