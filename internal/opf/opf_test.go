package opf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
)

func TestCase4GSPreTableII(t *testing.T) {
	// Paper Table II: dispatch (350, 150) MW, cost 1.15e4 $/h, flows
	// (126.56, 173.44, -43.44, -26.56) MW.
	n := grid.Case4GS()
	res, err := SolveDispatch(n, n.Reactances())
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(res.DispatchMW, []float64{350, 150}, 1e-4) {
		t.Fatalf("dispatch = %v, want [350 150]", res.DispatchMW)
	}
	if math.Abs(res.CostPerHour-11500) > 0.1 {
		t.Fatalf("cost = %v, want 11500", res.CostPerHour)
	}
	want := []float64{126.56, 173.44, -43.44, -26.56}
	for l := range want {
		if math.Abs(res.FlowsMW[l]-want[l]) > 0.05 {
			t.Errorf("flow %d = %.2f, want %.2f", l+1, res.FlowsMW[l], want[l])
		}
	}
}

func TestCase4GSPerturbedTableIII(t *testing.T) {
	// Paper Table III: generator dispatch and OPF cost after +20%
	// single-line reactance perturbations (Δx2's published cost 1.595e4 is
	// a typo for 1.1595e4 — c·g of its own dispatch column).
	n := grid.Case4GS()
	cases := []struct {
		line   int
		g1, g2 float64
		cost   float64
	}{
		{0, 337.37, 162.62, 11626},
		{1, 340.51, 159.48, 11595},
		{2, 348.62, 151.37, 11514},
		{3, 345.95, 154.02, 11540},
	}
	for _, c := range cases {
		x := n.Reactances()
		x[c.line] *= 1.2
		res, err := SolveDispatch(n.WithReactances(x), x)
		if err != nil {
			t.Fatalf("line %d: %v", c.line+1, err)
		}
		// Calibrated limits reproduce the paper within 0.5 MW / 15 $/h.
		if math.Abs(res.DispatchMW[0]-c.g1) > 0.5 || math.Abs(res.DispatchMW[1]-c.g2) > 0.5 {
			t.Errorf("Δx%d: dispatch = (%.2f, %.2f), paper (%.2f, %.2f)",
				c.line+1, res.DispatchMW[0], res.DispatchMW[1], c.g1, c.g2)
		}
		if math.Abs(res.CostPerHour-c.cost) > 15 {
			t.Errorf("Δx%d: cost = %.1f, paper %.0f", c.line+1, res.CostPerHour, c.cost)
		}
		// The qualitative claim: every perturbation raises the cost.
		if res.CostPerHour <= 11500 {
			t.Errorf("Δx%d: cost %.1f did not increase over 11500", c.line+1, res.CostPerHour)
		}
	}
}

func TestCase4GSCheapestPerturbationIsLine3(t *testing.T) {
	// Paper Section IV-B: Δx3 incurs the least cost among the four.
	n := grid.Case4GS()
	costs := make([]float64, 4)
	for line := 0; line < 4; line++ {
		x := n.Reactances()
		x[line] *= 1.2
		res, err := SolveDispatch(n.WithReactances(x), x)
		if err != nil {
			t.Fatal(err)
		}
		costs[line] = res.CostPerHour
	}
	for line, c := range costs {
		if line != 2 && c <= costs[2] {
			t.Errorf("cost(Δx%d) = %.1f not greater than cost(Δx3) = %.1f", line+1, c, costs[2])
		}
	}
}

func TestIEEE14Feasible(t *testing.T) {
	n := grid.CaseIEEE14()
	res, err := SolveDispatch(n, n.Reactances())
	if err != nil {
		t.Fatal(err)
	}
	// Balance.
	if math.Abs(mat.SumVec(res.DispatchMW)-n.TotalLoadMW()) > 1e-6 {
		t.Error("dispatch does not balance load")
	}
	// Bounds.
	lo, hi := n.GenBounds()
	for i := range res.DispatchMW {
		if res.DispatchMW[i] < lo[i]-1e-7 || res.DispatchMW[i] > hi[i]+1e-7 {
			t.Errorf("gen %d dispatch %v outside [%v, %v]", i, res.DispatchMW[i], lo[i], hi[i])
		}
	}
	// Flow limits.
	for l, br := range n.Branches {
		if math.Abs(res.FlowsMW[l]) > br.LimitMW+1e-6 {
			t.Errorf("branch %d flow %v exceeds limit %v", l+1, res.FlowsMW[l], br.LimitMW)
		}
	}
	// Merit order sanity: cheapest generator (bus 1, 20 $/MWh) is fully
	// used up to its binding constraint; cost must be below naive upper
	// bound of running everything at the most expensive price.
	if res.CostPerHour >= 50*n.TotalLoadMW() {
		t.Errorf("cost %v implausibly high", res.CostPerHour)
	}
}

func TestIEEE30Feasible(t *testing.T) {
	n := grid.CaseIEEE30()
	res, err := SolveDispatch(n, n.Reactances())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mat.SumVec(res.DispatchMW)-n.TotalLoadMW()) > 1e-6 {
		t.Error("dispatch does not balance load")
	}
	for l, br := range n.Branches {
		if math.Abs(res.FlowsMW[l]) > br.LimitMW+1e-6 {
			t.Errorf("branch %d flow %v exceeds limit %v", l+1, res.FlowsMW[l], br.LimitMW)
		}
	}
}

func TestInfeasibleWhenOverloaded(t *testing.T) {
	n := grid.Case4GS()
	n.ScaleLoads(2) // 1000 MW demand vs 668 MW capacity
	_, err := SolveDispatch(n, n.Reactances())
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestNoGenerators(t *testing.T) {
	n := grid.Case4GS()
	n.Gens = nil
	if _, err := SolveDispatch(n, n.Reactances()); err == nil {
		t.Fatal("expected error for generator-free network")
	}
}

func TestSolveDFACTSNoWorseThanFixed(t *testing.T) {
	// Optimizing reactances can only help (the fixed setting is in the
	// feasible set of the D-FACTS search).
	n := grid.CaseIEEE14()
	fixed, err := SolveDispatch(n, n.Reactances())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveDFACTS(n, DFACTSConfig{Starts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if opt.CostPerHour > fixed.CostPerHour+1e-6 {
		t.Errorf("D-FACTS OPF cost %v worse than fixed-x cost %v", opt.CostPerHour, fixed.CostPerHour)
	}
	// The chosen reactances must respect the device limits.
	lo, hi := n.DFACTSBounds()
	xd := n.DFACTSSetting(opt.Reactances)
	for i := range xd {
		if xd[i] < lo[i]-1e-9 || xd[i] > hi[i]+1e-9 {
			t.Errorf("reactance %d = %v outside [%v, %v]", i, xd[i], lo[i], hi[i])
		}
	}
}

func TestSolveDFACTSWithoutDevices(t *testing.T) {
	n := grid.Case4GS()
	for i := range n.Branches {
		n.Branches[i].HasDFACTS = false
		n.Branches[i].XMin = n.Branches[i].X
		n.Branches[i].XMax = n.Branches[i].X
	}
	res, err := SolveDFACTS(n, DFACTSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqual(res.DispatchMW, []float64{350, 150}, 1e-4) {
		t.Fatalf("dispatch = %v, want [350 150]", res.DispatchMW)
	}
}

// Property: OPF cost is monotone nondecreasing in the total load (for
// uniform scaling within the feasible region).
func TestQuickCostMonotoneInLoad(t *testing.T) {
	base := grid.CaseIEEE14()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := 0.5 + rng.Float64()*0.4
		s2 := s1 + rng.Float64()*0.3
		n1 := base.Clone()
		n1.ScaleLoads(s1)
		n2 := base.Clone()
		n2.ScaleLoads(s2)
		r1, err1 := SolveDispatch(n1, n1.Reactances())
		r2, err2 := SolveDispatch(n2, n2.Reactances())
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.CostPerHour >= r1.CostPerHour-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the LP solution is physically consistent — the reported flows
// come from an exact DC power flow of the reported dispatch.
func TestQuickFlowsConsistent(t *testing.T) {
	n := grid.CaseIEEE14()
	lo, hi := n.DFACTSBounds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		x := n.ExpandDFACTS(xd)
		res, err := SolveDispatch(n, x)
		if err != nil {
			return true // some random settings may congest to infeasibility
		}
		// Angles must reproduce the flows through the branch equations.
		for l, br := range n.Branches {
			want := (res.ThetaRad[br.From-1] - res.ThetaRad[br.To-1]) / x[l] * n.BaseMVA
			if math.Abs(res.FlowsMW[l]-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
