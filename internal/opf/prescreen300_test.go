package opf

import (
	"errors"
	"math/rand"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
)

// TestPrescreen300ProbesConfirmedByFreshSolve drives the Farkas screen on
// the case it was built for: random D-FACTS probes on ieee300, re-probed
// with tiny perturbations so recycled rays actually fire, and every
// infeasible verdict — screened or fully solved — re-checked on a fresh
// engine whose solver holds no rays and no cache entry for the candidate.
// This is the end-to-end face of the lp package's screen-rejection
// property test.
func TestPrescreen300ProbesConfirmedByFreshSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping ieee300 prescreen probes in -short mode")
	}
	n, err := grid.CaseByName("ieee300")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := n.DFACTSBounds()
	rng := rand.New(rand.NewSource(9))
	before := lp.GlobalRevisedStats()

	type verdict struct {
		x          []float64
		infeasible bool
	}
	var probes []verdict
	for i := 0; i < 25; i++ {
		xd := make([]float64, len(lo))
		for j := range xd {
			xd[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		x := n.ExpandDFACTS(xd)
		_, err := eng.Solve(x)
		if err != nil && !errors.Is(err, ErrInfeasible) {
			t.Fatalf("probe %d: unexpected error: %v", i, err)
		}
		probes = append(probes, verdict{x: x, infeasible: err != nil})
		if err != nil {
			// Re-probe a hair away: same structural cause, different
			// bits — the recycled ray, not the memo, must answer.
			xd2 := append([]float64(nil), xd...)
			xd2[0] *= 1 + 1e-9
			x2 := n.ExpandDFACTS(xd2)
			_, err2 := eng.Solve(x2)
			probes = append(probes, verdict{x: x2, infeasible: err2 != nil})
		}
	}
	d := lp.GlobalRevisedStats().Delta(before)
	if d.InfeasibleSolves == 0 {
		t.Fatal("probe sequence produced no infeasible candidates; widen the sampling")
	}
	if d.PrescreenHits == 0 {
		t.Fatal("probe sequence never exercised the Farkas screen")
	}
	t.Logf("probes: %d full infeasible solves, %d prescreen hits", d.InfeasibleSolves, d.PrescreenHits)

	// Confirm every infeasible verdict on a ray-free, cache-cold engine.
	confirmed := 0
	for i, p := range probes {
		if !p.infeasible || confirmed >= 6 {
			continue
		}
		fresh, err := NewDispatchEngineBackend(n, grid.SparseBackend)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fresh.Solve(p.x); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("probe %d: screened/solved infeasible but fresh engine says %v", i, err)
		}
		confirmed++
	}
	if confirmed == 0 {
		t.Fatal("no infeasible probes to confirm")
	}
}
