package opf

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
)

// defaultSolveCacheCap bounds a SolveCache's LRU. Each entry holds the
// objective, the dispatch vector (nG floats) and the packed key
// (N + L floats), about 6 KB at ieee300 scale — a thousand entries cover
// a cold selection's distinct candidates several times over for a few MB
// per network.
const defaultSolveCacheCap = 1024

// solveGlobal aggregates dispatch-solve-cache traffic process-wide,
// mirroring the lp package's global revised-simplex counters: lock-free
// increments on the serving path, one snapshot for /v1/stats and
// mtdexp -v.
var solveGlobal struct {
	hits, misses atomic.Int64
}

// SolveCacheStats is a snapshot of the process-wide dispatch-solve-cache
// counters.
type SolveCacheStats struct {
	// Hits / Misses count cache lookups by outcome. A hit returns the
	// memoized LP result without running the simplex; a miss pays one
	// full dispatch solve (counted in the lp Solves/PrescreenHits
	// telemetry as usual).
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// Delta returns the field-wise counter increments s − since, for
// per-request assertions against the cumulative process-wide counters.
func (s SolveCacheStats) Delta(since SolveCacheStats) SolveCacheStats {
	return SolveCacheStats{Hits: s.Hits - since.Hits, Misses: s.Misses - since.Misses}
}

// GlobalSolveCacheStats returns the process-wide cache counters.
func GlobalSolveCacheStats() SolveCacheStats {
	return SolveCacheStats{
		Hits:   int(solveGlobal.hits.Load()),
		Misses: int(solveGlobal.misses.Load()),
	}
}

// SolveCache memoizes dispatch-LP results per (bus loads, reactance
// vector) for one engine. The key is the exact bit pattern of both, so a
// hit returns the result of a bitwise-identical LP — no tolerance is
// involved in reuse. It exists because every fast-path solve is a pure
// from-seed function of (loads, x) (see DispatchEngine.Cost): a hit is
// bitwise indistinguishable from recomputing, so the hit/miss pattern —
// and with it scheduling, worker count and pool order — cannot influence
// any observable result. The selection search re-evaluates bitwise-
// identical candidates constantly (multi-start re-evaluation at the
// clamped optimum, γ-ladder backoffs re-walking earlier simplices, corner
// polls sharing corners), and every one of those repeats collapses into a
// map lookup.
//
// Entries are immutable once computed (callers receive copies of the
// dispatch vector), so one entry may serve concurrent readers; concurrent
// misses on one key share a single solve. Deterministic errors
// (infeasibility, PTDF build failures — all pure functions of the input)
// are cached like results.
//
// A SolveCache is safe for concurrent use. A nil cache is valid and means
// every solve runs fresh (the dense path, which keeps its historical
// bitwise behavior).
type SolveCache struct {
	cap int

	mu      sync.Mutex
	entries map[string]*solveEntry
	lru     *list.List // front = most recent; values are keys
}

type solveEntry struct {
	once sync.Once
	obj  float64
	x    []float64 // optimal dispatch (MW), nil on error
	err  error
	elem *list.Element
}

// newSolveCache builds a cache; capacity <= 0 selects the default.
func newSolveCache(capacity int) *SolveCache {
	if capacity <= 0 {
		capacity = defaultSolveCacheCap
	}
	return &SolveCache{
		cap:     capacity,
		entries: map[string]*solveEntry{},
		lru:     list.New(),
	}
}

// solveKey packs the bit patterns of the network's current bus loads and
// the candidate reactances into a map key. Loads are part of the key
// because the engine reads them fresh on every solve (day sweeps mutate
// them between batches on the same engine).
func (e *DispatchEngine) solveKey(x []float64) string {
	buses := e.n.Buses
	b := make([]byte, 8*(len(buses)+len(x)))
	k := 0
	put := func(v float64) {
		u := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			b[k] = byte(u >> s)
			k++
		}
	}
	for i := range buses {
		put(buses[i].LoadMW)
	}
	for _, v := range x {
		put(v)
	}
	return string(b)
}

// peek returns the cache slot for key without creating one. A screened
// candidate must leave no trace in the cache — an uncomputed slot would
// pollute the LRU and distort the hit/miss economics — so the bound
// probe looks before it leaps. An existing slot is touched as most
// recently used.
func (c *SolveCache) peek(key string) (e *solveEntry, ok bool) {
	c.mu.Lock()
	e, ok = c.entries[key]
	if ok {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	return e, ok
}

// entry returns the cache slot for key, creating (and LRU-evicting) as
// needed. ok reports whether the slot already existed.
func (c *SolveCache) entry(key string) (e *solveEntry, ok bool) {
	c.mu.Lock()
	e, ok = c.entries[key]
	if ok {
		c.lru.MoveToFront(e.elem)
	} else {
		e = &solveEntry{}
		e.elem = c.lru.PushFront(key)
		c.entries[key] = e
		for c.lru.Len() > c.cap {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.entries, old.Value.(string))
		}
	}
	c.mu.Unlock()
	return e, ok
}
