package opf

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
)

// etaVsRefactorCase drives two warm RevisedSolvers through the same
// perturbed-reactance LP walk used by warmVsColdCase: one with product-form
// eta updates enabled (the default) and one with SetMaxUpdates(-1), which
// refactorizes the basis at every exchange — the pre-eta reference
// behaviour. Objectives must agree to 1e-9 on every feasible candidate, and
// the eta solver must actually have absorbed exchanges into updates.
func etaVsRefactorCase(t *testing.T, caseName string, count int, step float64) {
	t.Helper()
	n, err := grid.CaseByName(caseName)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	etaW := eng.pool.New().(*dispatchWorkspace)
	refW := eng.pool.New().(*dispatchWorkspace)
	refW.rsolver.SetMaxUpdates(-1)

	rng := rand.New(rand.NewSource(42))
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.5 * (lo[i] + hi[i])
	}
	checked := 0
	for trial := 0; trial < count; trial++ {
		for i := range xd {
			xd[i] += step * (hi[i] - lo[i]) * (2*rng.Float64() - 1)
			if xd[i] < lo[i] {
				xd[i] = lo[i]
			}
			if xd[i] > hi[i] {
				xd[i] = hi[i]
			}
		}
		x := n.ExpandDFACTS(xd)

		etaProb, err := eng.buildProblem(etaW, x)
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		etaSol, etaErr := etaW.rsolver.Solve(etaProb)

		refProb, err := eng.buildProblem(refW, x)
		if err != nil {
			t.Fatalf("trial %d: build (ref): %v", trial, err)
		}
		refSol, refErr := refW.rsolver.Solve(refProb)

		if (etaErr == nil) != (refErr == nil) {
			t.Fatalf("trial %d: eta err %v, refactor err %v", trial, etaErr, refErr)
		}
		if refErr != nil {
			if !errors.Is(etaErr, lp.ErrInfeasible) || !errors.Is(refErr, lp.ErrInfeasible) {
				t.Fatalf("trial %d: unexpected errors eta=%v refactor=%v", trial, etaErr, refErr)
			}
			continue
		}
		checked++
		scale := 1 + math.Abs(refSol.Objective)
		if diff := math.Abs(etaSol.Objective - refSol.Objective); diff > 1e-9*scale {
			t.Fatalf("trial %d: eta objective %.15g vs refactor %.15g (diff %.3g)",
				trial, etaSol.Objective, refSol.Objective, diff)
		}
	}
	etaSt := etaW.rsolver.Stats()
	refSt := refW.rsolver.Stats()
	if etaSt.EtaUpdates == 0 {
		t.Fatalf("%s: eta solver never absorbed an exchange into an update: %+v", caseName, etaSt)
	}
	if refSt.EtaUpdates != 0 {
		t.Fatalf("%s: SetMaxUpdates(-1) solver still produced eta updates: %+v", caseName, refSt)
	}
	if etaSt.Refactorizations >= refSt.Refactorizations {
		t.Fatalf("%s: eta solver refactorized no less than the reference (%d vs %d)",
			caseName, etaSt.Refactorizations, refSt.Refactorizations)
	}
	t.Logf("%s: %d/%d feasible checked; eta %+v; refactor %+v", caseName, checked, count, etaSt, refSt)
}

// TestEtaVsRefactorizeIEEE57 pins 1e-9 agreement between the eta-update
// path and refactorize-every-exchange over the 200-LP perturbed-reactance
// corpus on the 57-bus case.
func TestEtaVsRefactorizeIEEE57(t *testing.T) {
	etaVsRefactorCase(t, "ieee57", 200, 0.05)
}

// TestEtaVsRefactorizeIEEE118 is the same property on the 118-bus case,
// where the working matrix is large enough for update drift to surface if
// the spike monitor or the exact re-derivation gates were wrong.
func TestEtaVsRefactorizeIEEE118(t *testing.T) {
	if testing.Short() {
		t.Skip("200 118-bus double solves take seconds")
	}
	etaVsRefactorCase(t, "ieee118", 200, 0.05)
}

// TestGlobalRevisedStatsAccumulates checks the process-wide counters move
// when solves happen — the production observability seam behind
// /v1/stats and mtdexp -v.
func TestGlobalRevisedStatsAccumulates(t *testing.T) {
	before := lp.GlobalRevisedStats()
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewDispatchEngineBackend(n, grid.SparseBackend)
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession()
	if _, err := sess.Cost(n.Reactances()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Cost(n.Reactances()); err != nil {
		t.Fatal(err)
	}
	after := lp.GlobalRevisedStats()
	if after.Solves-before.Solves < 2 {
		t.Fatalf("global Solves did not advance: before %+v after %+v", before, after)
	}
	if after.Refactorizations <= before.Refactorizations {
		t.Fatalf("global Refactorizations did not advance: before %+v after %+v", before, after)
	}
}
