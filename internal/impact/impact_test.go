package impact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/opf"
)

func TestZeroAttackNoImpact(t *testing.T) {
	n := grid.CaseIEEE14()
	x := n.Reactances()
	res, err := Evaluate(n, x, make([]float64, n.N()-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OverloadedLines) != 0 {
		t.Errorf("zero attack overloaded lines %v", res.OverloadedLines)
	}
	if res.ShedMW > 1e-6 {
		t.Errorf("zero attack shed %v MW", res.ShedMW)
	}
	// The corrective problem around the honest dispatch must recover the
	// baseline cost (within ramp slack the optimum is unchanged).
	if math.Abs(res.CostIncrease) > 1e-6 {
		t.Errorf("zero attack cost increase %v", res.CostIncrease)
	}
}

func TestEvaluateRejectsBadLength(t *testing.T) {
	n := grid.CaseIEEE14()
	if _, err := Evaluate(n, n.Reactances(), []float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestFalseLoadsBalanced(t *testing.T) {
	// The estimated load redistribution B·c preserves total demand (the
	// columns of B sum to zero); the realized false loads can deviate only
	// by the mass clamped at zero-load buses.
	n := grid.CaseIEEE14()
	x := n.Reactances()
	rng := rand.New(rand.NewSource(1))
	c := make([]float64, n.N()-1)
	for i := range c {
		c[i] = rng.NormFloat64() * 3e-4
	}
	// Raw redistribution balances exactly.
	b := n.BMatrix(x)
	deltaP := mat.MulVec(b, n.ExpandVec(c, 0))
	if s := mat.SumVec(deltaP); math.Abs(s) > 1e-9 {
		t.Fatalf("B·c sums to %v, want 0", s)
	}
	res, err := Evaluate(n, x, c)
	if err != nil {
		t.Fatal(err)
	}
	// Clamp accounting: total false load = total true load + clamped mass.
	var clamped float64
	for i, bus := range n.Buses {
		raw := bus.LoadMW - deltaP[i]*n.BaseMVA
		if raw < 0 {
			clamped += -raw
		}
	}
	diff := mat.SumVec(res.FalseLoadsMW) - n.TotalLoadMW()
	if math.Abs(diff-clamped) > 1e-6 {
		t.Errorf("false-load imbalance %v does not match clamped mass %v", diff, clamped)
	}
}

func TestWorstCaseFindsDamage(t *testing.T) {
	// On the congested evening-peak system, some stealthy attack within
	// the paper's 8% budget must cause real damage (overloads and a
	// positive realized-cost increase) — the quantity the MTD insures
	// against.
	n := grid.CaseIEEE14()
	// Stress the system so the bus-1 export limit binds irreducibly.
	factor := 250.0 / n.TotalLoadMW()
	n.ScaleLoads(factor)
	pre, err := opf.SolveDFACTS(n, opf.DFACTSConfig{Starts: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	z, err := core.OperatingMeasurements(n, pre.Reactances)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WorstCase(n, pre.Reactances, z, Config{Candidates: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostIncrease <= 0 {
		t.Errorf("worst-case attack cost increase %v, want > 0", res.CostIncrease)
	}
	if res.CostIncrease > 2 {
		t.Errorf("cost increase %v implausibly large", res.CostIncrease)
	}
	t.Logf("worst-case: +%.1f%% cost, %d overloads, %.1f MW shed",
		100*res.CostIncrease, len(res.OverloadedLines), res.ShedMW)
}

func TestWorstCaseValidation(t *testing.T) {
	n := grid.CaseIEEE14()
	if _, err := WorstCase(n, n.Reactances(), []float64{1}, Config{}); err == nil {
		t.Error("expected error for wrong-length z")
	}
	z := make([]float64, n.M())
	if _, err := WorstCase(n, n.Reactances(), z, Config{Candidates: 3}); err == nil {
		t.Error("expected error for zero measurement vector")
	}
}

// Property: the realized corrective cost is never below the true optimum —
// an attack can only make operation more expensive.
func TestQuickRealizedCostAtLeastBaseline(t *testing.T) {
	n := grid.CaseIEEE14()
	n.ScaleLoads(0.8)
	x := n.Reactances()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := make([]float64, n.N()-1)
		for i := range c {
			c[i] = rng.NormFloat64() * 0.01
		}
		res, err := Evaluate(n, x, c)
		if err != nil {
			return false
		}
		return res.RealizedCost >= res.BaselineCost-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
