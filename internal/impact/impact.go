// Package impact quantifies the damage of a successful (undetected) FDI
// attack, making the paper's Section VII-D insurance argument executable.
// The paper cites load-redistribution attack studies (Yuan et al.) showing
// that a BDD-bypassing attack can raise the operating cost by up to ~28%
// on the 14-bus system; this package implements that attack class so the
// MTD premium can be compared against the damage it insures against.
//
// Attack model: a stealthy injection a = H·c biases the state estimate by
// exactly c, so the operator's estimated injections become p + B·c — a
// load redistribution that is automatically balanced (the columns of B sum
// to zero). The operator, trusting the estimate, re-dispatches for the
// false loads. The realized system then runs the misinformed dispatch
// against the TRUE loads: branches overload, and the operator must pay for
// emergency correction (ramp-limited redispatch plus load shedding at the
// value of lost load).
package impact

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gridmtd/internal/dcflow"
	"gridmtd/internal/grid"
	"gridmtd/internal/lp"
	"gridmtd/internal/mat"
	"gridmtd/internal/opf"
)

// Config parameterizes the attack-impact evaluation.
type Config struct {
	// AttackRatio is the attacker's ‖a‖₁/‖z‖₁ magnitude budget (default
	// 0.08, the paper's attack scaling).
	AttackRatio float64
	// SheddingCostPerMWh is the value of lost load used to price emergency
	// load shedding (default 1000 $/MWh).
	SheddingCostPerMWh float64
	// RampFrac bounds the corrective UP-ramp per generator as a fraction
	// of its capacity (default 0.1): the attack's damage comes from the
	// window in which generators cannot raise output far beyond the
	// misinformed dispatch. Down-ramping (curtailment) is unrestricted, as
	// in practice.
	RampFrac float64
	// Candidates is the number of random attack directions the heuristic
	// worst-case search evaluates (default 200).
	Candidates int
	// Seed seeds the search.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.AttackRatio <= 0 {
		c.AttackRatio = 0.08
	}
	if c.SheddingCostPerMWh <= 0 {
		c.SheddingCostPerMWh = 1000
	}
	if c.RampFrac <= 0 {
		c.RampFrac = 0.1
	}
	if c.Candidates <= 0 {
		c.Candidates = 200
	}
	return c
}

// Result reports the realized impact of one undetected attack.
type Result struct {
	// C is the state bias injected by the attacker.
	C []float64
	// FalseLoadsMW are the loads the operator believed.
	FalseLoadsMW []float64
	// MisinformedDispatchMW is the OPF dispatch for the false loads.
	MisinformedDispatchMW []float64
	// PreCorrectionFlowsMW are the true flows under that dispatch.
	PreCorrectionFlowsMW []float64
	// OverloadedLines are 0-based branches whose true flow exceeds the
	// limit before correction.
	OverloadedLines []int
	// ShedMW is the emergency load shed during correction.
	ShedMW float64
	// RealizedCost is the corrective operating cost: generation cost of
	// the ramp-limited redispatch plus shedding at the VOLL.
	RealizedCost float64
	// BaselineCost is the no-attack OPF cost at the true loads.
	BaselineCost float64
	// CostIncrease is (RealizedCost − BaselineCost)/BaselineCost.
	CostIncrease float64
}

// Evaluate computes the realized impact of the stealthy attack with state
// bias c against the network operating at reactances x.
func Evaluate(n *grid.Network, x []float64, c []float64) (*Result, error) {
	cfg := Config{}.withDefaults()
	return evaluate(n, x, c, cfg)
}

func evaluate(n *grid.Network, x []float64, c []float64, cfg Config) (*Result, error) {
	if len(c) != n.N()-1 {
		return nil, errors.New("impact: state bias has wrong length")
	}
	baseline, err := opf.SolveDispatch(n, x)
	if err != nil {
		return nil, fmt.Errorf("impact: baseline OPF: %w", err)
	}

	// Estimated injection shift: δp = B·c (per-unit) expanded over all
	// buses, converted to MW.
	b := n.BMatrix(x)
	cFull := n.ExpandVec(c, 0)
	deltaP := mat.ScaleVec(n.BaseMVA, mat.MulVec(b, cFull))

	// The operator sees loads l̂ = l − δp (higher estimated injection reads
	// as lower load). Negative estimated loads are physically implausible
	// and would be caught by sanity checks; clamp the attack there.
	falseNet := n.Clone()
	falseLoads := make([]float64, n.N())
	for i, bus := range n.Buses {
		falseLoads[i] = bus.LoadMW - deltaP[i]
		if falseLoads[i] < 0 {
			falseLoads[i] = 0
		}
	}
	falseNet.SetLoadsMW(falseLoads)

	misinformed, err := opf.SolveDispatch(falseNet, x)
	if err != nil {
		// The false loads congest the system past feasibility: the
		// operator would notice; treat as no-impact.
		return &Result{
			C:            mat.CopyVec(c),
			FalseLoadsMW: falseLoads,
			BaselineCost: baseline.CostPerHour,
			RealizedCost: baseline.CostPerHour,
		}, nil
	}

	// True flows under the misinformed dispatch.
	trueFlow, err := dcflow.Solve(n, x, balancedInjections(n, misinformed.DispatchMW))
	if err != nil {
		return nil, err
	}
	overloads := dcflow.Violations(n, trueFlow.FlowsMW, 1e-6)

	realized, shed, err := correctiveCost(n, x, misinformed.DispatchMW, cfg)
	if err != nil {
		return nil, err
	}

	return &Result{
		C:                     mat.CopyVec(c),
		FalseLoadsMW:          falseLoads,
		MisinformedDispatchMW: misinformed.DispatchMW,
		PreCorrectionFlowsMW:  trueFlow.FlowsMW,
		OverloadedLines:       overloads,
		ShedMW:                shed,
		RealizedCost:          realized,
		BaselineCost:          baseline.CostPerHour,
		CostIncrease:          (realized - baseline.CostPerHour) / baseline.CostPerHour,
	}, nil
}

// balancedInjections returns true-load injections for a dispatch whose
// total may differ from the true demand; the slack generator's bus absorbs
// the mismatch (frequency regulation in practice).
func balancedInjections(n *grid.Network, dispatch []float64) []float64 {
	inj := n.InjectionsMW(dispatch)
	imbalance := mat.SumVec(inj)
	inj[n.SlackBus-1] -= imbalance
	return inj
}

// correctiveCost solves the operator's emergency problem after the attack
// is realized: ramp-limited redispatch around the misinformed dispatch g',
// with load shedding s priced at the VOLL, subject to true-network flow
// limits:
//
//	min  c·g + VOLL·Σs
//	s.t. Σg = Σ(l − s), |PTDF·(inj)| <= fmax,
//	     gmin <= g <= min(gmax, g'+ramp), 0 <= s <= l.
func correctiveCost(n *grid.Network, x []float64, gPrime []float64, cfg Config) (cost, shedMW float64, err error) {
	nG := len(n.Gens)
	nb := n.N()
	nv := nG + nb

	ptdf, err := n.PTDF(x)
	if err != nil {
		return 0, 0, err
	}

	cVec := make([]float64, nv)
	copy(cVec, n.GenCosts())
	for j := nG; j < nv; j++ {
		cVec[j] = cfg.SheddingCostPerMWh
	}

	lo := make([]float64, nv)
	hi := make([]float64, nv)
	gLo, gHi := n.GenBounds()
	for i, g := range n.Gens {
		ramp := cfg.RampFrac * g.MaxMW
		lo[i] = gLo[i]
		hi[i] = math.Min(gHi[i], gPrime[i]+ramp)
		if hi[i] < lo[i] { // numerical guard
			hi[i] = lo[i]
		}
	}
	for i, bus := range n.Buses {
		lo[nG+i] = 0
		hi[nG+i] = bus.LoadMW
	}

	// Balance: Σg + Σs = Σl.
	aeq := mat.NewDense(1, nv)
	for j := 0; j < nv; j++ {
		aeq.Set(0, j, 1)
	}
	beq := []float64{n.TotalLoadMW()}

	// Flows: inj_i = Σ_{g@i} g + s_i − l_i ; |PTDF·inj_red| <= fmax.
	// Build the per-variable injection incidence for non-slack buses.
	var rows []int
	for l, br := range n.Branches {
		if !math.IsInf(br.LimitMW, 1) {
			rows = append(rows, l)
		}
	}
	var aub *mat.Dense
	var bub []float64
	if len(rows) > 0 {
		// sens[l][v]: effect of variable v on flow l.
		sens := mat.NewDense(n.L(), nv)
		unit := make([]float64, nb)
		for v := 0; v < nv; v++ {
			for i := range unit {
				unit[i] = 0
			}
			if v < nG {
				unit[n.Gens[v].Bus-1] = 1
			} else {
				unit[v-nG] = 1 // shedding at bus v-nG acts like injection
			}
			col := mat.MulVec(ptdf, n.ReduceVec(unit))
			sens.SetCol(v, col)
		}
		// Constant part: flows from −l.
		loadFlow := mat.MulVec(ptdf, n.ReduceVec(n.LoadsMW()))
		aub = mat.NewDense(2*len(rows), nv)
		bub = make([]float64, 2*len(rows))
		for k, l := range rows {
			for v := 0; v < nv; v++ {
				aub.Set(k, v, sens.At(l, v))
				aub.Set(len(rows)+k, v, -sens.At(l, v))
			}
			bub[k] = n.Branches[l].LimitMW + loadFlow[l]
			bub[len(rows)+k] = n.Branches[l].LimitMW - loadFlow[l]
		}
	}

	sol, err := lp.Solve(&lp.Problem{
		C: cVec, Aeq: aeq, Beq: beq, Aub: aub, Bub: bub, Lower: lo, Upper: hi,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("impact: corrective dispatch: %w", err)
	}
	for j := nG; j < nv; j++ {
		shedMW += sol.X[j]
	}
	return sol.Objective, shedMW, nil
}

// WorstCase searches for the most damaging stealthy attack within the
// magnitude budget by evaluating random directions and keeping the worst
// (a heuristic stand-in for the bilevel load-redistribution optimization
// of Yuan et al.). z is the operating measurement vector used for the
// ‖a‖₁/‖z‖₁ scaling.
func WorstCase(n *grid.Network, x, z []float64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(z) != n.M() {
		return nil, errors.New("impact: measurement vector has wrong length")
	}
	h := n.MeasurementMatrix(x)
	rng := rand.New(rand.NewSource(cfg.Seed))
	zNorm := mat.Norm1(z)
	if zNorm == 0 {
		return nil, errors.New("impact: zero measurement vector")
	}

	var worst *Result
	for k := 0; k < cfg.Candidates; k++ {
		c := make([]float64, n.N()-1)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		a := mat.MulVec(h, c)
		an := mat.Norm1(a)
		if an == 0 {
			continue
		}
		scale := cfg.AttackRatio * zNorm / an
		res, err := evaluate(n, x, mat.ScaleVec(scale, c), cfg)
		if err != nil {
			return nil, err
		}
		if worst == nil || res.CostIncrease > worst.CostIncrease {
			worst = res
		}
	}
	if worst == nil {
		return nil, errors.New("impact: no valid attack direction found")
	}
	return worst, nil
}
