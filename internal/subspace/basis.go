package subspace

import (
	"math"

	"gridmtd/internal/mat"
)

// Basis is an orthonormal basis for the column space of a matrix, stored
// one vector per contiguous row (i.e. transposed relative to the matrix it
// was computed from). The contiguous layout makes the inner products of the
// principal-angle computation cache-friendly, and caching a Basis lets the
// γ-evaluation engine orthonormalize the fixed pre-perturbation matrix
// H(x_old) exactly once instead of once per candidate.
//
// The vectors are produced by the same twice-applied modified Gram-Schmidt
// procedure as mat.OrthonormalBasis, in the same floating-point order, so
// every downstream angle is bitwise identical to the uncached path.
type Basis struct {
	ambient int // dimension of the space the vectors live in
	k       int // number of basis vectors (the numerical rank)
	vecs    []float64

	// Support tracking, populated only by the sparse backend: union holds
	// the structural-nonzero indices in first-seen order, prefix[i] the
	// union length when basis vector i was accepted (vector i is exactly
	// zero beyond that prefix), and mask is the membership scratch. Dense
	// backends reset prefix so stale support info is never trusted.
	union  []int
	prefix []int
	mask   []bool
}

// support returns the index set basis vector i is supported on, or nil when
// the basis carries no support information (dense backends).
func (b *Basis) support(i int) []int {
	if len(b.prefix) != b.k {
		return nil
	}
	return b.union[:b.prefix[i]]
}

// Dim returns the number of basis vectors (the subspace dimension).
func (b *Basis) Dim() int { return b.k }

// Ambient returns the dimension of the ambient space.
func (b *Basis) Ambient() int { return b.ambient }

// vec returns basis vector i as a view into the backing array.
func (b *Basis) vec(i int) []float64 {
	return b.vecs[i*b.ambient : (i+1)*b.ambient]
}

// ComputeBasis computes an orthonormal basis for the column space of a.
// tol <= 0 selects the default rank tolerance of mat.OrthonormalBasis.
func ComputeBasis(a *mat.Dense, tol float64) *Basis {
	at := mat.TransposeInto(mat.NewDense(a.Cols(), a.Rows()), a)
	b := &Basis{}
	computeBasisT(b, at, tol)
	return b
}

// ComputeBasisT is ComputeBasis for a matrix given in transposed (row per
// column) layout: row j of at is column j of the matrix whose column space
// is orthonormalized.
func ComputeBasisT(at *mat.Dense, tol float64) *Basis {
	b := &Basis{}
	computeBasisT(b, at, tol)
	return b
}

// ComputeBasisTFast is ComputeBasisT with the multi-accumulator large-case
// kernels (mat.DotFast / mat.Norm2SqFast / mat.AxpyFast). The resulting
// basis spans the same subspace but its vectors differ from ComputeBasisT
// in the last bits (different summation order), so it must only be paired
// with the fast evaluation path (Workspace.Fast = true); the sub-threshold
// dense path keeps the bitwise-stable ComputeBasisT.
func ComputeBasisTFast(at *mat.Dense, tol float64) *Basis {
	b := &Basis{}
	computeBasisTFast(b, at, tol)
	return b
}

// computeBasisT runs the modified Gram-Schmidt of mat.OrthonormalBasis over
// the rows of at, writing the accepted vectors into dst's backing array.
// The candidate vector is staged in the next free row of the output buffer
// and kept only if it survives the rank test, so no per-column scratch is
// allocated.
func computeBasisT(dst *Basis, at *mat.Dense, tol float64) {
	if tol <= 0 {
		tol = 1e-12
	}
	cols, m := at.Rows(), at.Cols() // at is (columns of A) × (ambient dim)
	dst.ambient = m
	dst.k = 0
	dst.prefix = dst.prefix[:0] // dense basis: no support info
	if cap(dst.vecs) < cols*m {
		dst.vecs = make([]float64, cols*m)
	}
	dst.vecs = dst.vecs[:cols*m]

	var maxNorm float64
	for j := 0; j < cols; j++ {
		if n := mat.Norm2(at.RowView(j)); n > maxNorm {
			maxNorm = n
		}
	}
	if maxNorm == 0 {
		return
	}
	thresh := tol * maxNorm
	for j := 0; j < cols; j++ {
		v := dst.vecs[dst.k*m : (dst.k+1)*m]
		copy(v, at.RowView(j))
		// Twice-applied modified Gram-Schmidt for robustness (same as
		// mat.OrthonormalBasis).
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < dst.k; i++ {
				b := dst.vec(i)
				mat.AxpyVec(-mat.Dot(b, v), b, v)
			}
		}
		if n := mat.Norm2(v); n > thresh {
			for i := range v {
				v[i] /= n
			}
			dst.k++
		}
	}
}

// computeBasisTFast is computeBasisT with the multi-accumulator kernels:
// the projections use mat.DotFast/mat.AxpyFast and the norms the plain
// (unscaled) fused sum of squares. The accepted-vector sequence and rank
// decisions follow the same twice-applied modified Gram-Schmidt; only the
// reduction orders differ.
func computeBasisTFast(dst *Basis, at *mat.Dense, tol float64) {
	if tol <= 0 {
		tol = 1e-12
	}
	cols, m := at.Rows(), at.Cols()
	dst.ambient = m
	dst.k = 0
	dst.prefix = dst.prefix[:0] // dense basis: no support info
	if cap(dst.vecs) < cols*m {
		dst.vecs = make([]float64, cols*m)
	}
	dst.vecs = dst.vecs[:cols*m]

	var maxSq float64
	for j := 0; j < cols; j++ {
		if s := mat.Norm2SqFast(at.RowView(j)); s > maxSq {
			maxSq = s
		}
	}
	if maxSq == 0 {
		return
	}
	thresh := tol * math.Sqrt(maxSq)
	for j := 0; j < cols; j++ {
		v := dst.vecs[dst.k*m : (dst.k+1)*m]
		copy(v, at.RowView(j))
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < dst.k; i++ {
				b := dst.vec(i)
				mat.AxpyFast(-mat.DotFast(b, v), b, v)
			}
		}
		if n := math.Sqrt(mat.Norm2SqFast(v)); n > thresh {
			inv := 1 / n
			for i := range v {
				v[i] *= inv
			}
			dst.k++
		}
	}
}

// Workspace holds every scratch buffer of a cached principal-angle
// evaluation: the candidate basis, the cross-Gram matrix and the SVD
// workspace. The zero value is ready to use. A Workspace is not safe for
// concurrent use; per-goroutine workspaces (e.g. via sync.Pool) make the
// evaluation embarrassingly parallel.
//
// Fast selects the multi-accumulator/blocked large-case kernels for the
// basis, cross-Gram and SVD stages. It changes summation orders, so it
// must stay false on the sub-threshold dense path whose outputs are
// bitwise contracts; the ≥ grid.SparseThreshold path sets it and carries a
// 1e-9-agreement contract instead.
//
// Backend, when non-nil, overrides the Fast toggle with an explicit
// BasisBackend (the γ-backend layer's dispatch point): the orthonormalizer
// comes from the backend, and the cross-Gram/σ_min kernel family follows
// its fastKernels contract. A nil Backend is the exact backend honoring
// Fast, which keeps every pre-layer caller byte-identical.
type Workspace struct {
	Fast    bool
	Backend BasisBackend
	basis   Basis
	cross   *mat.Dense
	svd     mat.SVDWorkspace
	angles  []float64
}

// backend resolves the workspace's effective basis backend.
func (ws *Workspace) backend() BasisBackend {
	if ws.Backend != nil {
		return ws.Backend
	}
	return exactBasisBackend{fast: ws.Fast}
}

// BasisT computes the orthonormal basis of the matrix given in transposed
// layout (see ComputeBasisT) into the workspace and returns it. The result
// is overwritten by the next BasisT call on the same workspace.
func (ws *Workspace) BasisT(at *mat.Dense, tol float64) *Basis {
	ws.backend().basisT(&ws.basis, at, tol)
	return &ws.basis
}

// PrincipalAnglesBases returns the principal angles (radians, ascending)
// between the subspaces spanned by the two bases, reusing the workspace
// buffers. The returned slice is owned by the workspace. Results are
// bitwise identical to PrincipalAngles on the matrices the bases were
// computed from.
func (ws *Workspace) PrincipalAnglesBases(qa, qb *Basis) []float64 {
	if qa.Dim() == 0 || qb.Dim() == 0 {
		return nil
	}
	ws.buildCross(qa, qb)
	var sv []float64
	if ws.backend().fastKernels() {
		sv = ws.svd.SingularValuesFast(ws.cross)
	} else {
		sv = ws.svd.SingularValues(ws.cross)
	}
	if cap(ws.angles) < len(sv) {
		ws.angles = make([]float64, len(sv))
	}
	ws.angles = ws.angles[:len(sv)]
	for i, s := range sv {
		ws.angles[i] = math.Acos(clampCos(s))
	}
	return ws.angles
}

// buildCross fills ws.cross with QaᵀQb, transposed when needed so the SVD
// always sees rows >= cols (as PrincipalAngles arranges via T()).
func (ws *Workspace) buildCross(qa, qb *Basis) {
	if qa.Ambient() != qb.Ambient() {
		panic("subspace: bases live in different ambient spaces")
	}
	ra, rb := qa, qb
	if qa.Dim() < qb.Dim() {
		ra, rb = qb, qa
	}
	if ws.cross == nil || ws.cross.Rows() != ra.Dim() || ws.cross.Cols() != rb.Dim() {
		ws.cross = mat.NewDense(ra.Dim(), rb.Dim())
	}
	if ws.backend().fastKernels() {
		for i := 0; i < ra.Dim(); i++ {
			row := ws.cross.RowView(i)
			for j := 0; j < rb.Dim(); j++ {
				row[j] = crossDot(ra, i, rb, j)
			}
		}
	} else {
		for i := 0; i < ra.Dim(); i++ {
			row := ws.cross.RowView(i)
			for j := 0; j < rb.Dim(); j++ {
				row[j] = mat.Dot(ra.vec(i), rb.vec(j))
			}
		}
	}
}

// crossDot is one cross-Gram entry on the fast-kernel path. When either
// basis carries support information the reduction iterates the shorter
// support (entries outside a vector's support are exact zeros); otherwise
// it is the multi-accumulator dense kernel.
func crossDot(qa *Basis, i int, qb *Basis, j int) float64 {
	sa, sb := qa.support(i), qb.support(j)
	sup := sa
	if sa == nil || (sb != nil && len(sb) < len(sa)) {
		sup = sb
	}
	if sup == nil {
		return mat.DotFast(qa.vec(i), qb.vec(j))
	}
	av, bv := qa.vec(i), qb.vec(j)
	var s float64
	for _, idx := range sup {
		s += av[idx] * bv[idx]
	}
	return s
}

func clampCos(s float64) float64 {
	if s > 1 {
		return 1
	}
	if s < -1 {
		return -1
	}
	return s
}

// GammaBases returns γ for two precomputed bases: the largest principal
// angle between the spanned subspaces (0 for empty subspaces). The fast
// path computes only the smallest singular value of the cross-Gram matrix
// (the largest angle's cosine) via tridiagonal bisection instead of the
// full Jacobi spectrum — the one number γ needs.
func (ws *Workspace) GammaBases(qa, qb *Basis) float64 {
	if qa.Dim() == 0 || qb.Dim() == 0 {
		return 0
	}
	if ws.backend().fastKernels() {
		ws.buildCross(qa, qb)
		s := ws.svd.SmallestSingularValueFast(ws.cross)
		// The bisection works on the squared spectrum, so σ below ~1e-7
		// carries only ~1e-8 absolute accuracy — and near σ = 0 the acos
		// derivative is -1, which would leak that error straight into γ
		// past the 1e-9 contract. Near-orthogonal subspaces are a sliver
		// of the search space, so re-resolve them with the full-precision
		// Jacobi sweep instead of weakening the contract.
		if s < 1e-7 {
			sv := ws.svd.SingularValuesFast(ws.cross)
			s = sv[len(sv)-1]
		}
		return math.Acos(clampCos(s))
	}
	angles := ws.PrincipalAnglesBases(qa, qb)
	if len(angles) == 0 {
		return 0
	}
	return angles[len(angles)-1]
}
