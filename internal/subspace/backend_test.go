package subspace

import (
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/mat"
)

// randomSparseT builds a rows×cols transposed matrix whose rows carry a
// random, fixed-pattern support of the given size — the shape the sparse
// backend is built for.
func randomSparseT(rng *rand.Rand, rows, cols, supportSize int) *mat.Dense {
	at := mat.NewDense(rows, cols)
	for j := 0; j < rows; j++ {
		seen := map[int]bool{}
		for len(seen) < supportSize {
			idx := rng.Intn(cols)
			if seen[idx] {
				continue
			}
			seen[idx] = true
			v := rng.NormFloat64()
			for v == 0 {
				v = rng.NormFloat64()
			}
			at.Set(j, idx, v)
		}
	}
	return at
}

// TestSparseBackendMatchesExact: the support-tracking Gram-Schmidt must
// reproduce the exact backend's γ to 1e-9 on random sparse inputs, rank
// decisions included.
func TestSparseBackendMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		m := 20 + rng.Intn(40)
		ka := 2 + rng.Intn(8)
		kb := 2 + rng.Intn(8)
		supp := 2 + rng.Intn(5)
		atA := randomSparseT(rng, ka, m, supp)
		atB := randomSparseT(rng, kb, m, supp)

		qaE := ComputeBasisT(atA.Clone(), 0)
		qbE := ComputeBasisT(atB.Clone(), 0)
		var wsE Workspace
		gE := wsE.GammaBases(qaE, qbE)

		sbA := NewSparseBasisBackend(atA)
		sbB := NewSparseBasisBackend(atB)
		var qaS, qbS Basis
		sbA.basisT(&qaS, atA, 0)
		sbB.basisT(&qbS, atB, 0)
		if qaS.Dim() != qaE.Dim() || qbS.Dim() != qbE.Dim() {
			t.Fatalf("trial %d: sparse ranks (%d, %d) vs exact (%d, %d)",
				trial, qaS.Dim(), qbS.Dim(), qaE.Dim(), qbE.Dim())
		}
		wsS := Workspace{Backend: sbA}
		gS := wsS.GammaBases(&qaS, &qbS)
		if math.Abs(math.Cos(gS)-math.Cos(gE)) > 1e-11 {
			t.Fatalf("trial %d: sparse γ %.15g vs exact %.15g", trial, gS, gE)
		}
	}
}

// TestSparseBackendWorkspaceReuse: a workspace reused across calls (and a
// staging slot dirtied by a rejected candidate) must not leak stale values
// into later bases.
func TestSparseBackendWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A rank-deficient input: duplicate rows force rejections, dirtying
	// staging slots.
	at := randomSparseT(rng, 4, 30, 3)
	at.SetRow(2, at.RowView(1)) // duplicate → rejected in GS
	sb := NewSparseBasisBackend(at)
	var b Basis
	sb.basisT(&b, at, 0)
	if b.Dim() != 3 {
		t.Fatalf("rank %d, want 3 (one duplicate row)", b.Dim())
	}
	first := append([]float64(nil), b.vecs[:b.Dim()*b.Ambient()]...)
	// Re-run on the same workspace: identical output.
	sb.basisT(&b, at, 0)
	for i, v := range b.vecs[:b.Dim()*b.Ambient()] {
		if v != first[i] {
			t.Fatalf("entry %d drifted across workspace reuse: %v vs %v", i, v, first[i])
		}
	}
	// Support invariants: every vector zero outside its recorded support.
	for i := 0; i < b.Dim(); i++ {
		sup := map[int]bool{}
		for _, idx := range b.support(i) {
			sup[idx] = true
		}
		for idx, v := range b.vec(i) {
			if v != 0 && !sup[idx] {
				t.Fatalf("vector %d has value %v outside its support at %d", i, v, idx)
			}
		}
	}
}

// TestExactBackendIsDefault: a zero-value workspace must behave exactly as
// before the backend layer (serial kernels), and the Fast toggle must keep
// selecting the fast family — the two pre-layer paths are the exact
// backend's two faces.
func TestExactBackendIsDefault(t *testing.T) {
	var ws Workspace
	if got := ws.backend().Backend(); got != ExactGamma {
		t.Fatalf("zero-value workspace backend %v, want exact", got)
	}
	if ws.backend().fastKernels() {
		t.Fatal("zero-value workspace selects fast kernels")
	}
	ws.Fast = true
	if !ws.backend().fastKernels() {
		t.Fatal("Fast workspace does not select fast kernels")
	}
	rng := rand.New(rand.NewSource(3))
	at := randomSparseT(rng, 5, 12, 4)
	legacy := ComputeBasisT(at.Clone(), 0)
	var ws2 Workspace
	got := ws2.BasisT(at, 0)
	if got.Dim() != legacy.Dim() {
		t.Fatalf("dispatched rank %d vs legacy %d", got.Dim(), legacy.Dim())
	}
	for i := 0; i < got.Dim(); i++ {
		for j, v := range got.vec(i) {
			if v != legacy.vec(i)[j] {
				t.Fatalf("vector %d entry %d: %v vs legacy %v", i, j, v, legacy.vec(i)[j])
			}
		}
	}
}
