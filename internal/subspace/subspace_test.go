package subspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/mat"
)

func colSpan(vecs ...[]float64) *mat.Dense {
	m := mat.NewDense(len(vecs[0]), len(vecs))
	for j, v := range vecs {
		m.SetCol(j, v)
	}
	return m
}

func TestIdenticalSubspaces(t *testing.T) {
	a := colSpan([]float64{1, 0, 0}, []float64{0, 1, 0})
	b := colSpan([]float64{1, 1, 0}, []float64{1, -1, 0}) // same plane
	angles := PrincipalAngles(a, b)
	if len(angles) != 2 {
		t.Fatalf("got %d angles, want 2", len(angles))
	}
	for _, ang := range angles {
		if ang > 1e-7 {
			t.Errorf("angle %v, want 0 for identical subspaces", ang)
		}
	}
	if g := Gamma(a, b); g > 1e-7 {
		t.Errorf("Gamma = %v, want 0", g)
	}
}

func TestOrthogonalSubspaces(t *testing.T) {
	a := colSpan([]float64{1, 0, 0, 0})
	b := colSpan([]float64{0, 1, 0, 0})
	if g := SmallestAngle(a, b); math.Abs(g-math.Pi/2) > 1e-12 {
		t.Errorf("angle = %v, want pi/2", g)
	}
}

func TestKnownAngle(t *testing.T) {
	// A line at 30 degrees from the x-axis.
	theta := math.Pi / 6
	a := colSpan([]float64{1, 0})
	b := colSpan([]float64{math.Cos(theta), math.Sin(theta)})
	if g := SmallestAngle(a, b); math.Abs(g-theta) > 1e-12 {
		t.Errorf("angle = %v, want %v", g, theta)
	}
}

func TestPartiallySharedSubspace(t *testing.T) {
	// a = span{e1, e2}, b = span{e1, e3}: smallest angle 0 (shared e1),
	// largest pi/2 (e2 vs e3).
	a := colSpan([]float64{1, 0, 0}, []float64{0, 1, 0})
	b := colSpan([]float64{1, 0, 0}, []float64{0, 0, 1})
	if s := SmallestAngle(a, b); s > 1e-7 {
		t.Errorf("smallest = %v, want 0", s)
	}
	if l := LargestAngle(a, b); math.Abs(l-math.Pi/2) > 1e-7 {
		t.Errorf("largest = %v, want pi/2", l)
	}
}

func TestScalingInvariance(t *testing.T) {
	// Col((1+eta)H) == Col(H): the paper's "perfectly aligned" case.
	rng := rand.New(rand.NewSource(3))
	h := mat.NewDense(10, 4)
	for i := 0; i < 10; i++ {
		for j := 0; j < 4; j++ {
			h.Set(i, j, rng.NormFloat64())
		}
	}
	scaled := mat.ScaleMat(1.2, h)
	if g := Gamma(h, scaled); g > 1e-7 {
		t.Errorf("Gamma(H, 1.2H) = %v, want 0", g)
	}
}

func TestEmptySubspace(t *testing.T) {
	zero := mat.NewDense(4, 2) // rank 0
	full := colSpan([]float64{1, 0, 0, 0})
	if got := PrincipalAngles(zero, full); got != nil {
		t.Errorf("angles for empty subspace = %v, want nil", got)
	}
	if SmallestAngle(zero, full) != 0 || LargestAngle(zero, full) != 0 {
		t.Error("angles of empty subspace should be 0")
	}
}

func TestRankDeficientInputs(t *testing.T) {
	// Duplicated columns must not distort angles.
	a := colSpan([]float64{1, 0, 0}, []float64{2, 0, 0})
	b := colSpan([]float64{0, 1, 0})
	if g := SmallestAngle(a, b); math.Abs(g-math.Pi/2) > 1e-7 {
		t.Errorf("angle = %v, want pi/2", g)
	}
}

// Property: angles are symmetric in their arguments and lie in [0, pi/2].
func TestQuickSymmetryAndRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(8)
		ka := 1 + r.Intn(3)
		kb := 1 + r.Intn(3)
		a := mat.NewDense(m, ka)
		b := mat.NewDense(m, kb)
		for i := 0; i < m; i++ {
			for j := 0; j < ka; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			for j := 0; j < kb; j++ {
				b.Set(i, j, r.NormFloat64())
			}
		}
		g1 := SmallestAngle(a, b)
		g2 := SmallestAngle(b, a)
		l1 := LargestAngle(a, b)
		l2 := LargestAngle(b, a)
		inRange := g1 >= 0 && l1 <= math.Pi/2+1e-12 && g1 <= l1+1e-12
		// Compare cosines: acos amplifies roundoff near angle 0, so angle
		// differences of ~1e-8 are expected there even for exact inputs.
		cosOK := math.Abs(math.Cos(g1)-math.Cos(g2)) < 1e-10 &&
			math.Abs(math.Cos(l1)-math.Cos(l2)) < 1e-10
		return inRange && cosOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: rotating a subspace by a known small rotation in a shared plane
// produces exactly that principal angle.
func TestQuickKnownRotation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		theta := r.Float64() * math.Pi / 2
		a := colSpan([]float64{1, 0, 0})
		b := colSpan([]float64{math.Cos(theta), math.Sin(theta), 0})
		return math.Abs(SmallestAngle(a, b)-theta) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestBasisEngineMatchesPrincipalAngles: the cached Basis/Workspace path
// must reproduce the matrix-level API bitwise, including when the
// workspace is reused across calls with different-rank inputs.
func TestBasisEngineMatchesPrincipalAngles(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var ws Workspace
	for trial := 0; trial < 25; trial++ {
		m := 5 + rng.Intn(30)
		ka := 1 + rng.Intn(m)
		kb := 1 + rng.Intn(m)
		a := randomMatrix(rng, m, ka)
		b := randomMatrix(rng, m, kb)

		want := PrincipalAngles(a, b)
		qa := ComputeBasis(a, 0)
		qb := ws.BasisT(mat.TransposeInto(mat.NewDense(b.Cols(), b.Rows()), b), 0)
		got := ws.PrincipalAnglesBases(qa, qb)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d angles, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: angle[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
		if len(want) > 0 {
			if g := ws.GammaBases(qa, qb); g != Gamma(a, b) {
				t.Fatalf("trial %d: GammaBases = %v, Gamma = %v", trial, g, Gamma(a, b))
			}
		}
	}
}

func randomMatrix(rng *rand.Rand, m, n int) *mat.Dense {
	a := mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	return a
}
