package subspace

import (
	"fmt"
	"strings"
	"sync/atomic"

	"gridmtd/internal/mat"
)

// GammaBackend names a γ-evaluation strategy: how the orthonormal bases
// behind the principal-angle computation are produced (and, for the sketch
// backend, whether they are produced at all). It is the γ-side analogue of
// grid.Backend, selected through the same seam pattern.
type GammaBackend int

const (
	// AutoGamma resolves to the process-wide default (SetDefaultGammaBackend,
	// the cmds' -gamma flag) and to ExactGamma when none is set. The exact
	// backend is the only one whose outputs are pinned by the golden
	// reproducibility contracts, so auto never silently picks an
	// approximate evaluator.
	AutoGamma GammaBackend = iota
	// ExactGamma is the reference evaluator: dense modified Gram-Schmidt and
	// the full principal-angle machinery. Below grid.SparseThreshold buses it
	// performs the historical bitwise float sequence; at or above it the
	// multi-accumulator/blocked kernels run under the 1e-9-agreement
	// contract (the two paths that predate the backend layer).
	ExactGamma
	// SparseGamma is the CSC-aware Gram-Schmidt over the reduced [p; √2·f]
	// rows: structural zeros are skipped via per-column support lists, so
	// every projection touches only the union of the supports seen so far.
	// Values agree with ExactGamma to 1e-9 rad.
	SparseGamma
	// SketchGamma is the randomized sketch evaluator: orthonormalization
	// happens implicitly through sparse Cholesky factors of the candidate
	// Gram matrix Eᵀ·D·G·D·E, and sin²γ is extracted by a seeded Lanczos
	// iteration — no dense basis is ever formed. It carries a documented
	// relative-error contract, is deterministic per seed, and falls back to
	// the exact evaluator automatically when the sketched σ_min sits within
	// tolerance of the rank cutoff or the iteration fails to converge.
	SketchGamma
)

// String names the backend.
func (b GammaBackend) String() string {
	switch b {
	case ExactGamma:
		return "exact"
	case SparseGamma:
		return "sparse"
	case SketchGamma:
		return "sketch"
	default:
		return "auto"
	}
}

// GammaBackends lists the selectable γ backends with one-line descriptions,
// in flag-value order — the shared source for the cmds' "-gamma list"
// discoverability output.
func GammaBackends() []struct{ Name, Desc string } {
	return []struct{ Name, Desc string }{
		{"auto", "process default (-gamma flag), exact when none is set"},
		{"exact", "reference evaluator: bitwise below the sparse threshold, fast kernels above (1e-9)"},
		{"sparse", "CSC-aware Gram-Schmidt skipping structural zeros (1e-9 agreement)"},
		{"sketch", "sparse-Gram Cholesky + seeded randomized Lanczos; documented error bound, exact fallback"},
	}
}

// ParseGammaBackend parses a -gamma flag value. The error for an unknown
// value lists every valid choice (mirroring the case registry's "-case
// list" discoverability).
func ParseGammaBackend(s string) (GammaBackend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return AutoGamma, nil
	case "exact":
		return ExactGamma, nil
	case "sparse":
		return SparseGamma, nil
	case "sketch":
		return SketchGamma, nil
	default:
		return AutoGamma, fmt.Errorf("subspace: unknown gamma backend %q (want auto, exact, sparse or sketch)", s)
	}
}

// defaultGammaBackend is the process-wide AutoGamma override, settable from
// command-line flags so backend A/B runs need no code edits.
var defaultGammaBackend atomic.Int32

// SetDefaultGammaBackend overrides what AutoGamma resolves to for every γ
// engine constructed afterwards. AutoGamma restores the built-in rule
// (exact). Intended for process startup (the cmds' -gamma flag); engines
// snapshot their resolution at construction time.
func SetDefaultGammaBackend(b GammaBackend) { defaultGammaBackend.Store(int32(b)) }

// CurrentDefaultGammaBackend returns the active AutoGamma override
// (AutoGamma when none is set).
func CurrentDefaultGammaBackend() GammaBackend { return GammaBackend(defaultGammaBackend.Load()) }

// EffectiveGammaBackend resolves a possibly-Auto γ-backend choice: the
// process-wide default first, then ExactGamma. The result is always
// ExactGamma, SparseGamma or SketchGamma. Unlike grid.EffectiveBackend
// there is no size rule: the approximate backends are strictly opt-in, so
// default-path outputs stay pinned to the exact evaluator.
func EffectiveGammaBackend(b GammaBackend) GammaBackend {
	if b == AutoGamma {
		b = CurrentDefaultGammaBackend()
	}
	if b == AutoGamma {
		return ExactGamma
	}
	return b
}

// BasisBackend produces orthonormal bases for transposed candidate
// matrices — the seam the γ engines select an orthonormalization strategy
// through, mirroring grid.BFactorizer on the linear-algebra side. The two
// basis-producing implementations are ExactBasisBackend (dense MGS, both
// kernel families) and the support-tracking SparseBasisBackend; the sketch
// evaluator never forms a basis and therefore lives outside this interface
// (see SketchEvaluator).
//
// The interface is sealed (unexported methods): Workspace dispatch relies
// on implementation invariants — which kernel family the cross-Gram and
// σ_min stages must use, and whether produced bases carry support lists.
type BasisBackend interface {
	// Backend reports which γ backend this implementation serves.
	Backend() GammaBackend
	// basisT orthonormalizes the rows of at (columns of the candidate
	// matrix) into dst, reusing dst's buffers.
	basisT(dst *Basis, at *mat.Dense, tol float64)
	// fastKernels reports whether downstream stages (cross-Gram, σ_min)
	// should use the multi-accumulator/blocked kernel family.
	fastKernels() bool
}

// exactBasisBackend is today's dense modified Gram-Schmidt: the bitwise
// serial kernels or the multi-accumulator fast family, exactly as the
// pre-backend-layer Workspace.Fast toggle selected them.
type exactBasisBackend struct{ fast bool }

// ExactBasisBackend returns the reference dense-MGS backend; fast selects
// the multi-accumulator kernel family (the ≥ grid.SparseThreshold path).
func ExactBasisBackend(fast bool) BasisBackend { return exactBasisBackend{fast: fast} }

func (e exactBasisBackend) Backend() GammaBackend { return ExactGamma }

func (e exactBasisBackend) basisT(dst *Basis, at *mat.Dense, tol float64) {
	if e.fast {
		computeBasisTFast(dst, at, tol)
	} else {
		computeBasisT(dst, at, tol)
	}
}

func (e exactBasisBackend) fastKernels() bool { return e.fast }
