package subspace

import (
	"math"

	"gridmtd/internal/mat"
)

// SparseBasisBackend is the CSC-aware Gram-Schmidt: the candidate columns
// (rows of the transposed input) have a fixed, topology-determined sparsity
// pattern, and every projection in the orthonormalization touches only the
// union of the supports encountered so far instead of the full ambient
// dimension. Early basis vectors therefore cost O(|support|) rather than
// O(m), which is where the measurement matrices' degree-bounded structure
// pays off.
//
// The arithmetic performs the same twice-applied modified Gram-Schmidt as
// the exact backend over the same values — only the structurally-zero terms
// (which contribute exactly 0.0 to every reduction) are skipped, and the
// reductions iterate supports in first-seen order rather than ascending
// index order. γ values agree with the exact backend to 1e-9 rad (the
// large-case contract), and the produced bases carry their support lists so
// the cross-Gram stage stays support-aware too.
//
// A SparseBasisBackend is immutable after construction and safe to share
// across workspaces; all mutable state lives in the destination Basis.
type SparseBasisBackend struct {
	ambient  int
	supports [][]int // per input row, ascending structural-nonzero indices
}

// NewSparseBasisBackend scans the nonzero pattern of the transposed matrix
// at (row j = candidate column j) and returns a backend for that pattern.
// For the measurement matrices the pattern is a pure topology artifact —
// every entry is ±1/x_l or a sum of positive 1/x_l terms — so the pattern
// of any one reactance vector is the pattern of all of them.
func NewSparseBasisBackend(at *mat.Dense) *SparseBasisBackend {
	sb := &SparseBasisBackend{ambient: at.Cols(), supports: make([][]int, at.Rows())}
	for j := 0; j < at.Rows(); j++ {
		row := at.RowView(j)
		var sup []int
		for idx, v := range row {
			if v != 0 {
				sup = append(sup, idx)
			}
		}
		sb.supports[j] = sup
	}
	return sb
}

// Backend reports SparseGamma.
func (sb *SparseBasisBackend) Backend() GammaBackend { return SparseGamma }

func (sb *SparseBasisBackend) fastKernels() bool { return true }

// basisT runs the support-tracking modified Gram-Schmidt. The growing
// support union lives in dst (per-workspace state), so one backend can
// serve many goroutines' workspaces concurrently.
func (sb *SparseBasisBackend) basisT(dst *Basis, at *mat.Dense, tol float64) {
	if tol <= 0 {
		tol = 1e-12
	}
	cols, m := at.Rows(), at.Cols()
	if cols != len(sb.supports) || m != sb.ambient {
		panic("subspace: sparse backend pattern does not match the candidate matrix")
	}
	dst.ambient = m
	dst.k = 0
	if cap(dst.vecs) < cols*m {
		dst.vecs = make([]float64, cols*m)
	}
	dst.vecs = dst.vecs[:cols*m]
	// The staging slots are reused across calls and across rejected
	// candidates, and the support-restricted writes below never clear
	// entries outside the current union — start from a clean slate.
	for i := range dst.vecs {
		dst.vecs[i] = 0
	}
	if cap(dst.mask) < m {
		dst.mask = make([]bool, m)
	}
	dst.mask = dst.mask[:m]
	for i := range dst.mask {
		dst.mask[i] = false
	}
	dst.union = dst.union[:0]
	dst.prefix = dst.prefix[:0]

	var maxSq float64
	for j := 0; j < cols; j++ {
		row := at.RowView(j)
		var s float64
		for _, idx := range sb.supports[j] {
			s += row[idx] * row[idx]
		}
		if s > maxSq {
			maxSq = s
		}
	}
	if maxSq == 0 {
		return
	}
	thresh := tol * math.Sqrt(maxSq)

	for j := 0; j < cols; j++ {
		v := dst.vecs[dst.k*m : (dst.k+1)*m]
		// Clear whatever an earlier (rejected) candidate staged here: every
		// prior write to this slot landed inside the union as it then stood,
		// which is a prefix of the union now.
		for _, idx := range dst.union {
			v[idx] = 0
		}
		// Extend the union with this column's support and scatter its values.
		row := at.RowView(j)
		for _, idx := range sb.supports[j] {
			if !dst.mask[idx] {
				dst.mask[idx] = true
				dst.union = append(dst.union, idx)
			}
			v[idx] = row[idx]
		}
		// Twice-applied modified Gram-Schmidt, each projection restricted to
		// the union prefix that was live when that basis vector was accepted
		// (entries beyond it are exact zeros of the basis vector).
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < dst.k; i++ {
				b := dst.vec(i)
				sup := dst.union[:dst.prefix[i]]
				var s float64
				for _, idx := range sup {
					s += b[idx] * v[idx]
				}
				for _, idx := range sup {
					v[idx] -= s * b[idx]
				}
			}
		}
		var nsq float64
		for _, idx := range dst.union {
			nsq += v[idx] * v[idx]
		}
		if n := math.Sqrt(nsq); n > thresh {
			inv := 1 / n
			for _, idx := range dst.union {
				v[idx] *= inv
			}
			dst.prefix = append(dst.prefix, len(dst.union))
			dst.k++
		}
	}
}
