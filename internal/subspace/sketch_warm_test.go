package subspace

import (
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/grid"
)

// warmTestFixture builds a sketch evaluator for ieee57's base configuration
// plus a deterministic local-search-like walk of candidate diagonals
// (1/x_l): small steps on the D-FACTS branches, the access pattern the
// carried warm start is designed for.
func warmTestFixture(t *testing.T) (*SketchEvaluator, [][]float64) {
	t.Helper()
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	xOld := n.Reactances()
	dOld := make([]float64, n.L())
	for i, v := range xOld {
		dOld[i] = 1 / v
	}
	et, g := n.GammaSketchOperands()
	e, err := NewSketchEvaluator(et, g, dOld, SketchConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	lo, hi := n.DFACTSBounds()
	xd := make([]float64, len(lo))
	for i := range xd {
		xd[i] = 0.5 * (lo[i] + hi[i])
	}
	var walk [][]float64
	for step := 0; step < 8; step++ {
		for i := range xd {
			xd[i] += 0.05 * (hi[i] - lo[i]) * (2*rng.Float64() - 1)
			xd[i] = math.Min(math.Max(xd[i], lo[i]), hi[i])
		}
		x := n.ExpandDFACTS(xd)
		d := make([]float64, len(x))
		for i, v := range x {
			d[i] = 1 / v
		}
		walk = append(walk, d)
	}
	return e, walk
}

// TestSketchWarmStartCarriedDeterminism pins the carry discipline at the
// session level: two carrying sessions over the same candidate sequence
// produce bitwise-identical γ values, and every carried value stays within
// the documented sketch bound of a fresh cold evaluation.
func TestSketchWarmStartCarriedDeterminism(t *testing.T) {
	e, walk := warmTestFixture(t)
	s1, s2 := e.NewSession(), e.NewSession()
	s1.CarryWarmStarts()
	s2.CarryWarmStarts()
	for i, d := range walk {
		g1, ok1 := s1.Gamma(d)
		g2, ok2 := s2.Gamma(d)
		if ok1 != ok2 || g1 != g2 {
			t.Fatalf("step %d: carrying sessions diverged: (%v,%v) vs (%v,%v)", i, g1, ok1, g2, ok2)
		}
		cold, okc := e.NewSession().Gamma(d)
		if ok1 && okc {
			if diff := math.Abs(g1 - cold); diff > 1e-6*math.Max(1, cold) {
				t.Fatalf("step %d: carried γ %.12g vs cold %.12g (|Δ| = %.3g beyond the sketch bound)", i, g1, cold, diff)
			}
		}
	}
}

// TestSketchWarmStartConvergesFaster pins the point of the carry: on a
// small-step walk the carried Lanczos run needs fewer iterations than the
// cold seeded start for the same candidate.
func TestSketchWarmStartConvergesFaster(t *testing.T) {
	e, walk := warmTestFixture(t)
	warm := e.NewSession()
	warm.CarryWarmStarts()
	cold := e.NewSession()
	warmIters, coldIters := 0, 0
	for _, d := range walk {
		if _, ok := warm.Gamma(d); !ok {
			t.Skip("sketch refused a walk candidate; nothing to compare")
		}
		warmIters += len(warm.alpha)
		if _, ok := cold.Gamma(d); !ok {
			t.Skip("sketch refused a walk candidate; nothing to compare")
		}
		coldIters += len(cold.alpha)
	}
	if warmIters >= coldIters {
		t.Fatalf("carried warm starts did not converge faster: %d iterations vs cold %d", warmIters, coldIters)
	}
	t.Logf("Lanczos iterations over the walk: carried %d vs cold %d", warmIters, coldIters)
}

// TestSketchWarmStartReset pins the reset semantics: after ResetWarmStart
// the next evaluation is bitwise identical to a fresh session's (the
// deterministic boundary the multi-start search resets at).
func TestSketchWarmStartReset(t *testing.T) {
	e, walk := warmTestFixture(t)
	s := e.NewSession()
	s.CarryWarmStarts()
	for _, d := range walk[:3] {
		s.Gamma(d)
	}
	s.ResetWarmStart()
	got, okGot := s.Gamma(walk[3])
	want, okWant := e.NewSession().Gamma(walk[3])
	if okGot != okWant || got != want {
		t.Fatalf("post-reset evaluation (%v,%v) != fresh session (%v,%v)", got, okGot, want, okWant)
	}
}
