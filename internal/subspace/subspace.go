// Package subspace computes principal angles between the column spaces of
// matrices, following Björck & Golub: orthonormalize both column spaces and
// take the SVD of the cross-Gram matrix; the singular values are the
// cosines of the principal angles.
//
// The MTD literature (and the reproduced paper) writes "smallest principal
// angle" but operationally uses MATLAB's subspace(), which returns the
// LARGEST principal angle. With D-FACTS on a strict subset of branches the
// two column spaces always share a non-trivial subspace, so the smallest
// angle is identically zero and carries no information (see DESIGN.md).
// Both angles are exposed here; the MTD design criterion γ uses
// LargestAngle.
package subspace

import (
	"gridmtd/internal/mat"
)

// PrincipalAngles returns all principal angles (in radians, ascending)
// between the column spaces of a and b. The number of angles is the smaller
// of the two subspace dimensions (numerical ranks). An empty slice is
// returned if either matrix has rank zero.
//
// Cosines of the principal angles are the singular values of QaᵀQb. The
// computation is delegated to the Basis engine (see basis.go), which
// performs the identical orthonormalize-cross-SVD sequence with reusable
// buffers; callers evaluating many candidates against a fixed matrix
// should hold a Basis and Workspace directly.
func PrincipalAngles(a, b *mat.Dense) []float64 {
	qa := ComputeBasis(a, 0)
	qb := ComputeBasis(b, 0)
	var ws Workspace
	angles := ws.PrincipalAnglesBases(qa, qb)
	if len(angles) == 0 {
		return nil
	}
	out := make([]float64, len(angles))
	copy(out, angles)
	return out
}

// SmallestAngle returns the smallest principal angle between the column
// spaces of a and b (0 when the spaces share a direction). Returns 0 for
// empty subspaces.
func SmallestAngle(a, b *mat.Dense) float64 {
	angles := PrincipalAngles(a, b)
	if len(angles) == 0 {
		return 0
	}
	return angles[0]
}

// LargestAngle returns the largest principal angle between the column
// spaces of a and b. This is what MATLAB's subspace() computes and what the
// reproduced paper's γ(H, H') evaluates to in its experiments. Returns 0
// for empty subspaces.
func LargestAngle(a, b *mat.Dense) float64 {
	angles := PrincipalAngles(a, b)
	if len(angles) == 0 {
		return 0
	}
	return angles[len(angles)-1]
}

// Gamma is the separation measure γ(H, H') used by the MTD design
// criterion: the largest principal angle between Col(H) and Col(H').
func Gamma(h, hPrime *mat.Dense) float64 {
	return LargestAngle(h, hPrime)
}
