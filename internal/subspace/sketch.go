package subspace

import (
	"errors"
	"math"
	"math/rand"

	"gridmtd/internal/mat"
)

// The sketch backend never forms an orthonormal basis. It exploits the
// structural factorization of the measurement matrix: in the reduced
// γ-equivalent representation every candidate column matrix is
//
//	B(x) = Ĉ · D(x) · E,   Ĉ = [A; √2·I] fixed,  E = Ãᵀ fixed,
//	                        D(x) = diag(1/x_l),
//
// so every inner product between candidate columns is a quadratic form in
// the sparse, topology-fixed Gram kernel G = ĈᵀĈ = AᵀA + 2I:
//
//	B(x₁)ᵀB(x₂) = Eᵀ·D₁·G·D₂·E.
//
// These k×k Gram matrices (k = N−1) share one sparsity pattern — the 2-hop
// bus adjacency — and revalue in O(nnz(G)) per candidate. Orthonormal bases
// then exist implicitly through sparse Cholesky factors: with
// P·M₂₂·Pᵀ = L₂·L₂ᵀ the matrix Q₂ = B₂·P₂ᵀ·L₂⁻ᵀ has orthonormal columns,
// and the cross operator whose smallest singular value is cos γ is
//
//	W = Q₁ᵀQ₂ = L₁⁻¹·P₁·M₁₂·P₂ᵀ·L₂⁻ᵀ,
//
// applied matrix-free via two triangular half-solves and one sparse
// matvec. sin²γ = λ_max(I − WᵀW) is extracted by a Lanczos iteration from
// a seeded random start vector — the randomized part of the sketch, which
// makes every evaluation deterministic per seed regardless of evaluation
// order or worker count.
//
// Error contract: the Gram route squares the candidate matrix's
// conditioning (the classic CholeskyQR tradeoff) and the Lanczos value
// approaches λ_max from below, so γ values agree with the exact evaluator
// only to the documented sketch bound (PERF.md; the property tests pin
// |γ_sketch − γ_exact| ≤ 1e-6·max(1, γ_exact) across the registered
// cases). Evaluations that cannot honor the bound — a candidate Gram
// matrix that fails the Cholesky (rank within roundoff of deficiency), a
// sketched σ_min within RankCutoff of the rank boundary, or a
// non-converged iteration — report ok=false so the caller falls back to
// the exact evaluator.

// SketchConfig tunes a SketchEvaluator.
type SketchConfig struct {
	// Seed drives the Lanczos start vectors. Every evaluation derives its
	// randomness from the seed alone, so results are identical across runs
	// and worker counts.
	Seed int64
	// RankCutoff is the σ_min (= cos γ) level below which the sketch
	// refuses the evaluation and requests the exact fallback: near the rank
	// boundary the squared-Gram route cannot certify the documented bound
	// (default 1e-6).
	RankCutoff float64
	// MaxIter caps the Lanczos iterations (default min(k, 160)); hitting
	// the cap reports ok=false.
	MaxIter int
}

func (c SketchConfig) withDefaults(k int) SketchConfig {
	if c.RankCutoff <= 0 {
		c.RankCutoff = 1e-6
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 160
	}
	if c.MaxIter > k {
		c.MaxIter = k
	}
	return c
}

// sketchContrib scatters one Gram-kernel entry into the candidate Gram
// pattern: M[slot] += coeff · d1[l] · d2[m].
type sketchContrib struct {
	slot  int
	l, m  int32
	coeff float64
}

// SketchEvaluator evaluates γ(old, candidate) through the sparse-Gram
// Cholesky route described above. The evaluator itself is immutable after
// construction (pattern, contribution list, the old side's factor);
// numeric per-candidate state lives in SketchSessions, one per goroutine.
type SketchEvaluator struct {
	k        int
	dim      int // number of diagonal entries (branches)
	cfg      SketchConfig
	contribs []sketchContrib
	pattern  *mat.CSC // k×k candidate Gram pattern, zero values
	dOld     []float64
	chol1    *SparseCholRef
}

// SparseCholRef wraps the immutable old-side factorization so sessions can
// clone it without redoing the symbolic analysis.
type SparseCholRef struct{ c *mat.SparseChol }

// NewSketchEvaluator builds the sketch evaluator for a fixed old side.
// et is Eᵀ in CSC form (k×L: column l holds the ±1 entries of the reduced
// incidence row of branch l), g the L×L Gram kernel ĈᵀĈ, and dOld the old
// side's diagonal (1/x_l). The construction fails if the old side's Gram
// matrix is not numerically positive definite (a rank-deficient old
// configuration), in which case callers should stay on the exact
// evaluator.
func NewSketchEvaluator(et, g *mat.CSC, dOld []float64, cfg SketchConfig) (*SketchEvaluator, error) {
	k, l := et.Rows(), et.Cols()
	if g.Rows() != l || g.Cols() != l || len(dOld) != l {
		return nil, errors.New("subspace: sketch operand shapes disagree")
	}
	e := &SketchEvaluator{k: k, dim: l, cfg: cfg.withDefaults(k), dOld: append([]float64(nil), dOld...)}

	// Candidate Gram pattern and contribution list. Each kernel entry
	// (l, m) meets ≤ 2 incidence entries per side, so the list holds at
	// most 4·nnz(G) records; the pattern is the 2-hop bus adjacency.
	etPtr, etIdx, etVal := cscParts(et)
	gPtr, gIdx, gVal := cscParts(g)
	var is, js []int
	for m := 0; m < l; m++ {
		for p := gPtr[m]; p < gPtr[m+1]; p++ {
			lrow := gIdx[p]
			for p1 := etPtr[lrow]; p1 < etPtr[lrow+1]; p1++ {
				for p2 := etPtr[m]; p2 < etPtr[m+1]; p2++ {
					is = append(is, etIdx[p1])
					js = append(js, etIdx[p2])
				}
			}
		}
	}
	e.pattern = mat.NewCSCFromTriplets(k, k, is, js, make([]float64, len(is)))
	for m := 0; m < l; m++ {
		for p := gPtr[m]; p < gPtr[m+1]; p++ {
			lrow := gIdx[p]
			gv := gVal[p]
			for p1 := etPtr[lrow]; p1 < etPtr[lrow+1]; p1++ {
				for p2 := etPtr[m]; p2 < etPtr[m+1]; p2++ {
					slot := e.pattern.Pos(etIdx[p1], etIdx[p2])
					e.contribs = append(e.contribs, sketchContrib{
						slot:  slot,
						l:     int32(lrow),
						m:     int32(m),
						coeff: etVal[p1] * etVal[p2] * gv,
					})
				}
			}
		}
	}

	m11 := e.pattern.Clone()
	e.revalue(m11, e.dOld, e.dOld)
	chol, err := mat.NewSparseChol(m11)
	if err != nil {
		return nil, err
	}
	e.chol1 = &SparseCholRef{c: chol}
	return e, nil
}

// Dim returns the subspace dimension k the evaluator compares at.
func (e *SketchEvaluator) Dim() int { return e.k }

// revalue fills dst (a clone of the candidate Gram pattern) with
// Eᵀ·D₁·G·D₂·E.
func (e *SketchEvaluator) revalue(dst *mat.CSC, d1, d2 []float64) {
	vals := dst.Values()
	for i := range vals {
		vals[i] = 0
	}
	for _, c := range e.contribs {
		vals[c.slot] += c.coeff * d1[c.l] * d2[c.m]
	}
}

// cscParts exposes a CSC's internals for the pattern construction.
func cscParts(m *mat.CSC) (colPtr, rowIdx []int, values []float64) {
	return m.ColPtr(), m.RowIdx(), m.Values()
}

// SketchSession is a single-goroutine evaluation state: its own clones of
// the Cholesky factors, the candidate Gram values and the Lanczos buffers.
//
// A session can optionally carry the previous candidate's top Ritz vector
// as the next evaluation's Lanczos start (CarryWarmStarts). Local-search
// candidates are tiny perturbations of each other, so the dominant
// eigenvector of I − WᵀW barely moves between evaluations and the carried
// start converges in a fraction of the cold iteration count. Carrying makes
// a γ value depend on the session's evaluation history, so it is strictly
// opt-in: callers must evaluate a deterministic candidate sequence per
// session and call ResetWarmStart at every sequence boundary (each
// local-search start) — that is what keeps seed determinism and
// worker-count invariance intact. Pooled evaluations never carry.
type SketchSession struct {
	e                 *SketchEvaluator
	chol1, chol2      *mat.SparseChol
	m12, m22          *mat.CSC
	t1, t2, t3, t4, w []float64
	vbuf              []float64
	alpha, beta       []float64
	carry             bool
	hasWarm           bool
	warm              []float64 // previous top Ritz vector, length k when hasWarm
	u1, u2            []float64 // inverse-iteration scratch, tridiagonal order
}

// CarryWarmStarts enables Ritz-vector carrying for this session. See the
// type comment for the determinism obligations this places on the caller.
func (s *SketchSession) CarryWarmStarts() { s.carry = true }

// ResetWarmStart discards any carried Ritz vector, so the next evaluation
// starts from the seeded random vector exactly like a fresh session. Called
// at every local-search start to pin worker-count invariance.
func (s *SketchSession) ResetWarmStart() { s.hasWarm = false }

// NewSession returns a fresh session. Sessions are cheap: the symbolic
// Cholesky analysis is shared, only numeric state is copied.
func (e *SketchEvaluator) NewSession() *SketchSession {
	k := e.k
	return &SketchSession{
		e:     e,
		chol1: e.chol1.c.Clone(),
		chol2: e.chol1.c.Clone(),
		m12:   e.pattern.Clone(),
		m22:   e.pattern.Clone(),
		t1:    make([]float64, k),
		t2:    make([]float64, k),
		t3:    make([]float64, k),
		t4:    make([]float64, k),
		w:     make([]float64, k),
	}
}

// Gamma evaluates γ(old, candidate) for the candidate diagonal d (1/x_l).
// ok=false requests the exact fallback (see the error contract above);
// when ok is true the value honors the documented sketch bound.
func (s *SketchSession) Gamma(d []float64) (gamma float64, ok bool) {
	e := s.e
	if len(d) != e.dim {
		panic("subspace: sketch diagonal length mismatch")
	}
	if e.k == 0 {
		return 0, true
	}
	e.revalue(s.m22, d, d)
	if err := s.chol2.Refactor(s.m22); err != nil {
		return 0, false // candidate within roundoff of rank deficiency
	}
	e.revalue(s.m12, e.dOld, d)
	lam, converged := s.lanczosSin2()
	if !converged {
		return 0, false
	}
	if lam < 0 {
		lam = 0
	}
	if lam > 1 {
		lam = 1
	}
	if math.Sqrt(1-lam) < e.cfg.RankCutoff {
		return 0, false // σ_min within tolerance of the rank cutoff
	}
	return math.Asin(math.Sqrt(lam)), true
}

// PrepareCandidate revalues and factors the candidate-side Gram data for
// the diagonal d (1/x_l), readying ResidualSq for a batch of attacks
// against the same candidate. ok=false means the candidate Gram matrix sits
// within roundoff of rank deficiency, in which case callers must take their
// exact path.
func (s *SketchSession) PrepareCandidate(d []float64) bool {
	e := s.e
	if len(d) != e.dim {
		panic("subspace: sketch diagonal length mismatch")
	}
	if e.k == 0 {
		return false
	}
	e.revalue(s.m22, d, d)
	if err := s.chol2.Refactor(s.m22); err != nil {
		return false
	}
	e.revalue(s.m12, e.dOld, d)
	return true
}

// ResidualSq returns the squared state-estimation residual
// ‖(I − Π_new)·a‖² of the stealthy attack a = H_old·c under the prepared
// candidate, where Π_new projects onto Col(H_new). Everything reduces to
// the Gram representation: H_newᵀ·a = M₁₂ᵀ·c and
//
//	‖Π_new·a‖² = (M₁₂ᵀc)ᵀ·M₂₂⁻¹·(M₁₂ᵀc) = ‖L₂⁻¹·P₂·(M₁₂ᵀc)‖²,
//
// so one sparse matvec and one triangular half-solve replace the dense
// QR-based residual. anorm2 is the exact ‖a‖² (candidate-independent, so
// callers precompute it once per attack). The subtraction cancels
// catastrophically when the true residual is near zero — the value guides
// screening only; any decision within a tolerance band of a threshold must
// be re-checked exactly.
func (s *SketchSession) ResidualSq(c []float64, anorm2 float64) float64 {
	s.m12.MulVecTransposeInto(s.t1, c)
	s.chol2.HalfSolveInto(s.t2, s.t1)
	return anorm2 - mat.Norm2SqFast(s.t2)
}

// apply computes dst = v − Wᵀ(W·v) with W applied matrix-free.
func (s *SketchSession) apply(dst, v []float64) {
	s.chol2.HalfSolveTransposeInto(s.t1, v)
	s.m12.MulVecInto(s.t2, s.t1)
	s.chol1.HalfSolveInto(s.t3, s.t2)
	s.chol1.HalfSolveTransposeInto(s.t4, s.t3)
	s.m12.MulVecTransposeInto(s.t1, s.t4)
	s.chol2.HalfSolveInto(s.t2, s.t1)
	for i := range dst {
		dst[i] = v[i] - s.t2[i]
	}
}

// lanczosSin2 runs a fully-reorthogonalized Lanczos iteration on
// B = I − WᵀW and returns the converged Ritz estimate of
// λ_max(B) = sin²γ. The start vector is the carried Ritz vector when the
// session carries one (CarryWarmStarts), else a seeded random draw. The
// Ritz value is monotone over the nested Krylov spaces, so stagnation
// across consecutive iterations is the convergence signal; exhausting the
// subspace dimension is exact by construction.
func (s *SketchSession) lanczosSin2() (float64, bool) {
	e := s.e
	k := e.k
	maxIter := e.cfg.MaxIter
	if cap(s.vbuf) < (maxIter+1)*k {
		s.vbuf = make([]float64, (maxIter+1)*k)
	}
	v := s.vbuf[:(maxIter+1)*k]
	s.alpha = s.alpha[:0]
	s.beta = s.beta[:0]

	v0 := v[:k]
	// A carried Ritz start is already concentrated on the dominant
	// eigenvector, so the stagnation rule may engage almost immediately; the
	// tight stagnation tolerance is what guards against stopping on a poor
	// carried vector (a genuinely bad start keeps making progress and never
	// stagnates early).
	minStagJ := 8
	if s.carry && s.hasWarm {
		copy(v0, s.warm) // already unit-norm
		minStagJ = 2
	} else {
		rng := rand.New(rand.NewSource(e.cfg.Seed))
		for i := range v0 {
			v0[i] = rng.NormFloat64()
		}
		nrm := math.Sqrt(mat.Norm2SqFast(v0))
		if nrm == 0 {
			return 0, false
		}
		for i := range v0 {
			v0[i] /= nrm
		}
	}

	prevLam := -1.0
	stagnant := 0
	for j := 0; j < maxIter; j++ {
		vj := v[j*k : (j+1)*k]
		s.apply(s.w, vj)
		a := mat.DotFast(vj, s.w)
		s.alpha = append(s.alpha, a)
		mat.AxpyFast(-a, vj, s.w)
		if j > 0 {
			mat.AxpyFast(-s.beta[j-1], v[(j-1)*k:j*k], s.w)
		}
		// Full reorthogonalization: k is a few hundred at most, and a clean
		// Krylov basis is what keeps the monotone-Ritz stopping rule honest.
		for i := 0; i <= j; i++ {
			vi := v[i*k : (i+1)*k]
			mat.AxpyFast(-mat.DotFast(vi, s.w), vi, s.w)
		}
		lam := tridiagMaxEig(s.alpha, s.beta)
		if lam < 0 {
			lam = 0
		}
		b := math.Sqrt(mat.Norm2SqFast(s.w))
		if b <= 1e-14 || j+1 >= k {
			// Invariant subspace reached (or the Krylov space is the whole
			// space): the Ritz value is λ_max up to roundoff.
			s.storeRitz(v, lam)
			return lam, true
		}
		if j >= minStagJ {
			if lam-prevLam <= 1e-13+1e-11*lam {
				stagnant++
			} else {
				stagnant = 0
			}
			if stagnant >= 3 {
				s.storeRitz(v, lam)
				return lam, true
			}
		}
		prevLam = lam
		s.beta = append(s.beta, b)
		vnext := v[(j+1)*k : (j+2)*k]
		for i := range vnext {
			vnext[i] = s.w[i] / b
		}
	}
	return 0, false
}

// storeRitz keeps the top Ritz vector y = V·u of the just-converged
// iteration as the next evaluation's warm start: u is the λ_max eigenvector
// of the final tridiagonal, recovered by two rounds of deterministic
// inverse iteration from the all-ones vector. Any numerical degeneracy
// (overflow, a zero direction) simply keeps the previous warm start — the
// carry is an accelerator, never a correctness dependency.
func (s *SketchSession) storeRitz(v []float64, lam float64) {
	if !s.carry {
		return
	}
	k := s.e.k
	j := len(s.alpha)
	if cap(s.u1) < j {
		s.u1 = make([]float64, j)
		s.u2 = make([]float64, j)
	}
	u, diag := s.u1[:j], s.u2[:j]
	for i := range u {
		u[i] = 1
	}
	sigma := lam + 1e-12*(1+math.Abs(lam))
	for it := 0; it < 2; it++ {
		tridiagSolveShifted(s.alpha, s.beta, sigma, u, diag)
		nrm := math.Sqrt(mat.Norm2SqFast(u))
		if nrm == 0 || math.IsInf(nrm, 0) || math.IsNaN(nrm) {
			return
		}
		for i := range u {
			u[i] /= nrm
		}
	}
	if cap(s.warm) < k {
		s.warm = make([]float64, k)
	}
	y := s.warm[:k]
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < j; i++ {
		mat.AxpyFast(u[i], v[i*k:(i+1)*k], y)
	}
	nrm := math.Sqrt(mat.Norm2SqFast(y))
	if nrm == 0 || math.IsInf(nrm, 0) || math.IsNaN(nrm) {
		return
	}
	for i := range y {
		y[i] /= nrm
	}
	s.warm = y
	s.hasWarm = true
}

// tridiagSolveShifted solves (T − σI)·x = b in place (x holds b on entry)
// for the symmetric tridiagonal T with diagonal d and off-diagonal e, by
// the Thomas recurrence with guarded pivots: near-singular shifts — the
// whole point of inverse iteration — just produce a large solution in the
// eigenvector's direction, which the caller normalizes. diag is scratch.
func tridiagSolveShifted(d, e []float64, sigma float64, x, diag []float64) {
	n := len(d)
	const tiny = 1e-300
	piv := d[0] - sigma
	if math.Abs(piv) < tiny {
		piv = tiny
	}
	diag[0] = piv
	for i := 1; i < n; i++ {
		m := e[i-1] / diag[i-1]
		piv = d[i] - sigma - m*e[i-1]
		if math.Abs(piv) < tiny {
			piv = tiny
		}
		diag[i] = piv
		x[i] -= m * x[i-1]
	}
	x[n-1] /= diag[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = (x[i] - e[i]*x[i+1]) / diag[i]
	}
}

// tridiagMaxEig returns the largest eigenvalue of the symmetric
// tridiagonal matrix with diagonal d and off-diagonal e (len(e) =
// len(d)−1) by Sturm bisection — the same LDLᵀ sign-count recurrence the
// σ_min kernel uses, aimed at the other end of the spectrum.
func tridiagMaxEig(d, e []float64) float64 {
	n := len(d)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return d[0]
	}
	countBelow := func(t float64) int {
		cnt := 0
		q := 1.0
		for i := 0; i < n; i++ {
			var esq float64
			if i > 0 {
				esq = e[i-1] * e[i-1]
			}
			q = d[i] - t - esq/q
			if q < 0 {
				cnt++
			}
			if q == 0 {
				q = 1e-300
			}
		}
		return cnt
	}
	lo, hi := d[0], d[0]
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < n-1 {
			r += math.Abs(e[i])
		}
		if d[i]-r < lo {
			lo = d[i] - r
		}
		if d[i]+r > hi {
			hi = d[i] + r
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-15*(1+math.Abs(hi)); iter++ {
		mid := 0.5 * (lo + hi)
		if countBelow(mid) >= n {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
