package se

import (
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
)

// estimatorsAgree compares the two estimators' full API surface on random
// probe vectors to the fast-path agreement bar: states, residual vectors
// and residual norms to 1e-9 relative.
func estimatorsAgree(t *testing.T, tag string, got, want *Estimator, seed int64) {
	t.Helper()
	m, n := want.NumMeasurements(), want.NumStates()
	if got.NumMeasurements() != m || got.NumStates() != n || got.DOF() != want.DOF() {
		t.Fatalf("%s: dimensions disagree: got %dx%d, want %dx%d", tag,
			got.NumMeasurements(), got.NumStates(), m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	z := make([]float64, m)
	for trial := 0; trial < 3; trial++ {
		for i := range z {
			z[i] = 2*rng.Float64() - 1
		}
		te, tw := got.Estimate(z), want.Estimate(z)
		for j := range tw {
			if d := math.Abs(te[j] - tw[j]); d > 1e-9*(1+math.Abs(tw[j])) {
				t.Fatalf("%s trial %d: Estimate[%d]: got %.15g want %.15g", tag, trial, j, te[j], tw[j])
			}
		}
		re, rw := got.Residual(z), want.Residual(z)
		if d := math.Abs(re - rw); d > 1e-9*(1+rw) {
			t.Fatalf("%s trial %d: Residual: got %.15g want %.15g", tag, trial, re, rw)
		}
		var ws ResidualWorkspace
		if rws := got.ResidualWS(&ws, z); rws != re {
			t.Fatalf("%s trial %d: ResidualWS %.15g != Residual %.15g on one estimator", tag, trial, rws, re)
		}
	}
}

// TestFactoryFastBuildMatchesFullQR is the rank-structured rebuild
// contract on a real network: for D-FACTS perturbations the factory must
// take the fast path and agree with the from-scratch QR estimator.
func TestFactoryFastBuildMatchesFullQR(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	vol := n.DFACTSStateColumns()
	if len(vol) == 0 {
		t.Fatal("ieee57 has no D-FACTS state columns")
	}
	hBase := n.MeasurementMatrix(n.Reactances())
	f, err := NewFactory(hBase, vol)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := n.DFACTSBounds()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		h := n.MeasurementMatrix(n.ExpandDFACTS(xd))
		got, fast, err := f.Build(h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !fast {
			t.Fatalf("trial %d: D-FACTS-only perturbation took the full-QR fallback", trial)
		}
		want, err := NewEstimator(h)
		if err != nil {
			t.Fatal(err)
		}
		estimatorsAgree(t, "dfacts", got, want, int64(trial))
	}
}

// TestFactoryFallsBackOnStableColumnChange pins the premise check: a
// perturbation on a branch without a D-FACTS device changes columns the
// factory assumed stable, so Build must detect the mismatch and serve the
// full QR instead of a silently wrong completion.
func TestFactoryFallsBackOnStableColumnChange(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	hBase := n.MeasurementMatrix(n.Reactances())
	f, err := NewFactory(hBase, n.DFACTSStateColumns())
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the first non-D-FACTS branch.
	x := n.Reactances()
	perturbed := false
	for i, br := range n.Branches {
		if !br.HasDFACTS {
			x[i] *= 1.25
			perturbed = true
			break
		}
	}
	if !perturbed {
		t.Fatal("every ieee57 branch has a D-FACTS device")
	}
	h := n.MeasurementMatrix(x)
	got, fast, err := f.Build(h)
	if err != nil {
		t.Fatal(err)
	}
	if fast {
		t.Fatal("stable-column change was not detected; fast path produced an estimator for the wrong base")
	}
	want, err := NewEstimator(h)
	if err != nil {
		t.Fatal(err)
	}
	estimatorsAgree(t, "fallback", got, want, 3)
}

// TestFactoryRankDeficientVolatileColumn checks the tolerance fallback: a
// volatile column made exactly dependent on a stable one must not survive
// the Gram-Schmidt completion — the build falls back to NewEstimator, which
// reports the rank deficiency.
func TestFactoryRankDeficientVolatileColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n := 10, 4
	h := mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 2*rng.Float64()-1)
		}
	}
	f, err := NewFactory(h, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	bad := h.Clone()
	bad.SetCol(3, bad.Col(0))
	// The fast path must refuse (residual below tolerance); what happens
	// next — error or a barely-conditioned estimator — is the full QR's
	// call, exactly as if the factory never existed.
	_, fast, err := f.Build(bad)
	if fast {
		t.Fatal("dependent volatile column survived the Gram-Schmidt tolerance check")
	}
	_, refErr := NewEstimator(bad)
	if (err == nil) != (refErr == nil) {
		t.Fatalf("fallback error %v disagrees with NewEstimator error %v", err, refErr)
	}
	// A well-conditioned volatile change on the same factory still fast-builds.
	good := h.Clone()
	col := good.Col(3)
	for i := range col {
		col[i] += 0.5 * rng.Float64()
	}
	good.SetCol(3, col)
	got, fast, err := f.Build(good)
	if err != nil {
		t.Fatal(err)
	}
	if !fast {
		t.Fatal("well-conditioned volatile change took the fallback")
	}
	want, err := NewEstimator(good)
	if err != nil {
		t.Fatal(err)
	}
	estimatorsAgree(t, "synthetic", got, want, 9)
}
