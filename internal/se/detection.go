package se

import (
	"fmt"
	"math/rand"

	"gridmtd/internal/mat"
	"gridmtd/internal/stat"
)

// ResidualComponent returns ‖(I − Γ)a‖, the deterministic attack component
// of the residual that an attack vector a contributes under this
// estimator's measurement matrix (the quantity the paper calls ‖r'_a‖).
// It is zero exactly when a lies in Col(H), i.e. the attack is stealthy.
func (e *Estimator) ResidualComponent(a []float64) float64 {
	return e.Residual(a)
}

// DetectionProbability returns the analytic probability that the BDD alarm
// fires for measurements z = Hθ + n + a with n ~ N(0, σ²I): the residual
// satisfies r²/σ² ~ noncentral χ²(DOF, λ) with λ = ‖(I−Γ)a‖²/σ², so
// P_D = SF(τ²/σ²). Passing a zero attack returns the false-positive rate.
func (e *Estimator) DetectionProbability(b *BDD, a []float64) (float64, error) {
	ra := e.ResidualComponent(a)
	lambda := (ra / b.Sigma) * (ra / b.Sigma)
	x := (b.Tau / b.Sigma) * (b.Tau / b.Sigma)
	pd, err := stat.NoncentralChiSquareSF(float64(b.DOF), lambda, x)
	if err != nil {
		return 0, fmt.Errorf("se: detection probability: %w", err)
	}
	return pd, nil
}

// DetectionProbabilityMC estimates the detection probability by Monte
// Carlo, drawing `trials` noise vectors (the paper's protocol with 1000
// instantiations). Because the residual of z = Hθ + n + a equals the
// residual of n + a, the true state does not need to be simulated.
func (e *Estimator) DetectionProbabilityMC(b *BDD, a []float64, trials int, rng *rand.Rand) float64 {
	if trials <= 0 {
		return 0
	}
	m := e.NumMeasurements()
	hits := 0
	buf := make([]float64, m)
	for t := 0; t < trials; t++ {
		for i := 0; i < m; i++ {
			buf[i] = a[i] + rng.NormFloat64()*b.Sigma
		}
		if b.Detect(e.Residual(buf)) {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// IsStealthy reports whether attack vector a is undetectable under this
// estimator's measurement matrix: its residual component vanishes, i.e. a
// lies in Col(H). tol is relative to ‖a‖ (default 1e-8 if tol <= 0). This
// is the operational form of the paper's Proposition 1 rank condition
// rank([H' a]) = rank(H').
func (e *Estimator) IsStealthy(a []float64, tol float64) bool {
	if tol <= 0 {
		tol = 1e-8
	}
	na := mat.Norm2(a)
	if na == 0 {
		return true
	}
	return e.ResidualComponent(a) <= tol*na
}
