package se

import (
	"fmt"

	"gridmtd/internal/mat"
)

// fastBuildTol is the relative residual-norm floor under which a volatile
// column is treated as numerically dependent on the preceding ones and the
// fast build falls back to the full QR (whose rank handling is the
// estimator's authoritative one).
const fastBuildTol = 1e-10

// Factory builds Estimators for measurement matrices that differ from a
// base matrix only in a known set of "volatile" columns. For the MTD
// workload that structure is exact: a D-FACTS reactance change on branch
// (a,b) perturbs only the two state columns of buses a and b, so across
// every candidate x_new the other N−1−|volatile| columns of H are bitwise
// identical.
//
// The factory fixes one column permutation (stable columns first, volatile
// columns last), computes the thin QR of the stable block once, and per
// build completes the factorization by orthogonalizing only the volatile
// columns against it (twice-applied modified Gram-Schmidt, the package's
// standard re-orthogonalization idiom). That turns the O(M·n²) Householder
// factorization into an O(M·n·|volatile|) completion — on ieee300, ~24
// volatile columns out of 299.
//
// Build verifies its structural premise (the stable columns of the
// incoming matrix are bitwise equal to the base's) and its numerical one
// (every volatile column keeps a residual above fastBuildTol of its norm
// after projection); either failing falls back to NewEstimator, so a
// Factory never changes which matrices are accepted — only how fast the
// accepted ones factor.
//
// A Factory is immutable after construction and safe for concurrent Build
// calls.
type Factory struct {
	hBase    *mat.Dense
	stable   []int      // original column indices that never change, ascending
	volatile []int      // original column indices that may change, ascending
	perm     []int      // factor position -> original column (stable ++ volatile)
	qtLead   *mat.Dense // p×M: transposed thin Q of the stable block
	rLead    *mat.Dense // p×p: R factor of the stable block
}

// NewFactory builds a factory from a base measurement matrix and the set
// of column indices that later matrices may differ in. Indices are deduped;
// out-of-range indices are an error.
func NewFactory(hBase *mat.Dense, volatileCols []int) (*Factory, error) {
	m, n := hBase.Rows(), hBase.Cols()
	if m < n {
		return nil, fmt.Errorf("se: measurement matrix is %dx%d; need at least as many measurements as states", m, n)
	}
	isVol := make([]bool, n)
	for _, j := range volatileCols {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("se: volatile column %d out of range [0,%d)", j, n)
		}
		isVol[j] = true
	}
	f := &Factory{hBase: hBase.Clone()}
	for j := 0; j < n; j++ {
		if isVol[j] {
			f.volatile = append(f.volatile, j)
		} else {
			f.stable = append(f.stable, j)
		}
	}
	f.perm = make([]int, 0, n)
	f.perm = append(f.perm, f.stable...)
	f.perm = append(f.perm, f.volatile...)
	p := len(f.stable)
	lead := mat.NewDense(m, p)
	for k, j := range f.stable {
		lead.SetCol(k, f.hBase.Col(j))
	}
	if p > 0 {
		qr := mat.ComputeQR(lead)
		f.qtLead = mat.TransposeInto(mat.NewDense(p, m), qr.Q)
		f.rLead = qr.R
	} else {
		f.qtLead = mat.NewDense(0, m)
		f.rLead = mat.NewDense(0, 0)
	}
	return f, nil
}

// NumVolatile returns the number of columns the factory re-orthogonalizes
// per build.
func (f *Factory) NumVolatile() int { return len(f.volatile) }

// Build returns an estimator for h. The second return reports whether the
// rank-structured fast path produced it (false: the full-QR fallback ran —
// h disagreed with the base outside the volatile columns, or a volatile
// column lost rank against the stable block).
func (f *Factory) Build(h *mat.Dense) (*Estimator, bool, error) {
	m, n := f.hBase.Rows(), f.hBase.Cols()
	if h.Rows() != m || h.Cols() != n || !f.stableColsEqual(h) {
		est, err := NewEstimator(h)
		return est, false, err
	}
	p, d := len(f.stable), len(f.volatile)
	qt := mat.NewDense(n, m)
	for k := 0; k < p; k++ {
		copy(qt.RowView(k), f.qtLead.RowView(k))
	}
	r := mat.NewDense(n, n)
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			r.Set(i, j, f.rLead.At(i, j))
		}
	}
	v := make([]float64, m)
	for t := 0; t < d; t++ {
		jcol := f.volatile[t]
		for i := 0; i < m; i++ {
			v[i] = h.At(i, jcol)
		}
		nrm0 := mat.Norm2(v)
		// Twice-applied modified Gram-Schmidt against the stable basis and
		// the already-completed volatile columns; both passes' coefficients
		// accumulate into R so H·P = Q·R holds to rounding.
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < p+t; k++ {
				q := qt.RowView(k)
				c := mat.Dot(q, v)
				r.Add(k, p+t, c)
				mat.AxpyVec(-c, q, v)
			}
		}
		nrm := mat.Norm2(v)
		if nrm <= fastBuildTol*nrm0 {
			est, err := NewEstimator(h)
			return est, false, err
		}
		r.Set(p+t, p+t, nrm)
		dst := qt.RowView(p + t)
		for i := range v {
			dst[i] = v[i] / nrm
		}
	}
	lu, err := mat.ComputeLU(r)
	if err != nil {
		est, err := NewEstimator(h)
		return est, false, err
	}
	q := mat.TransposeInto(mat.NewDense(m, n), qt)
	return &Estimator{h: h, q: q, qt: qt, r: r, lu: lu, perm: f.perm}, true, nil
}

// stableColsEqual reports whether h matches the base matrix bitwise on
// every stable column — the structural premise of the fast path.
func (f *Factory) stableColsEqual(h *mat.Dense) bool {
	for _, j := range f.stable {
		for i := 0; i < f.hBase.Rows(); i++ {
			if h.At(i, j) != f.hBase.At(i, j) {
				return false
			}
		}
	}
	return true
}
