package se

import (
	"fmt"
	"math"

	"gridmtd/internal/stat"
)

// BDD is a bad data detector with a χ²-calibrated threshold: it raises an
// alarm when the estimation residual r = ‖z − Hθ̂‖ meets or exceeds τ.
type BDD struct {
	// Tau is the residual alarm threshold.
	Tau float64
	// Alpha is the configured false-positive rate.
	Alpha float64
	// Sigma is the per-measurement noise standard deviation.
	Sigma float64
	// DOF is the residual degrees of freedom M − (N−1).
	DOF int
}

// NewBDD calibrates a detector for an estimator with the given noise level
// and target false-positive rate alpha: under H0 the squared residual
// satisfies r²/σ² ~ χ²(DOF), so τ = σ·sqrt(χ²_inv(1−alpha, DOF)).
func NewBDD(e *Estimator, sigma, alpha float64) (*BDD, error) {
	b, err := NewBDDForDOF(e.DOF(), sigma, alpha)
	if err != nil && e.DOF() <= 0 {
		return nil, fmt.Errorf("se: no residual degrees of freedom (M = %d, states = %d)", e.NumMeasurements(), e.NumStates())
	}
	return b, err
}

// NewBDDForDOF is NewBDD from the residual degrees of freedom alone
// (DOF = M − (N−1)). The calibration depends only on DOF, σ and α — not on
// the matrix values — so callers that know the measurement geometry can
// build the detector without ever factorizing an estimator.
func NewBDDForDOF(dof int, sigma, alpha float64) (*BDD, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("se: noise sigma must be positive, got %g", sigma)
	}
	if dof <= 0 {
		return nil, fmt.Errorf("se: no residual degrees of freedom (DOF = %d)", dof)
	}
	q, err := stat.ChiSquareQuantileUpper(float64(dof), alpha)
	if err != nil {
		return nil, fmt.Errorf("se: calibrating threshold: %w", err)
	}
	return &BDD{
		Tau:   sigma * math.Sqrt(q),
		Alpha: alpha,
		Sigma: sigma,
		DOF:   dof,
	}, nil
}

// Detect reports whether the residual triggers the alarm.
func (b *BDD) Detect(residual float64) bool { return residual >= b.Tau }
