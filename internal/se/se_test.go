package se

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
)

func estimator14(t *testing.T) *Estimator {
	t.Helper()
	n := grid.CaseIEEE14()
	e, err := NewEstimator(n.MeasurementMatrix(n.Reactances()))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimateRecoversState(t *testing.T) {
	e := estimator14(t)
	rng := rand.New(rand.NewSource(1))
	theta := make([]float64, e.NumStates())
	for i := range theta {
		theta[i] = rng.NormFloat64() * 0.1
	}
	z := mat.MulVec(e.H(), theta)
	got := e.Estimate(z)
	if !mat.VecEqual(got, theta, 1e-9) {
		t.Fatalf("estimate error %v", mat.Norm2(mat.SubVec(got, theta)))
	}
	if r := e.Residual(z); r > 1e-9 {
		t.Errorf("noiseless residual = %v, want ~0", r)
	}
}

func TestEstimateWithNoiseIsClose(t *testing.T) {
	e := estimator14(t)
	rng := rand.New(rand.NewSource(2))
	theta := make([]float64, e.NumStates())
	for i := range theta {
		theta[i] = rng.NormFloat64() * 0.1
	}
	z := mat.MulVec(e.H(), theta)
	sigma := 0.01
	for i := range z {
		z[i] += rng.NormFloat64() * sigma
	}
	got := e.Estimate(z)
	// WLS error should be on the order of sigma / singular values of H.
	if err := mat.Norm2(mat.SubVec(got, theta)); err > 0.05 {
		t.Fatalf("estimate error %v too large", err)
	}
}

func TestNewEstimatorRejectsRankDeficient(t *testing.T) {
	// Two identical columns: unobservable.
	h := mat.NewDense(4, 2)
	for i := 0; i < 4; i++ {
		h.Set(i, 0, float64(i+1))
		h.Set(i, 1, float64(i+1))
	}
	if _, err := NewEstimator(h); err == nil {
		t.Fatal("expected rank-deficiency error")
	}
}

func TestNewEstimatorRejectsWide(t *testing.T) {
	if _, err := NewEstimator(mat.NewDense(2, 5)); err == nil {
		t.Fatal("expected error for more states than measurements")
	}
}

func TestDims(t *testing.T) {
	e := estimator14(t)
	if e.NumMeasurements() != 54 || e.NumStates() != 13 || e.DOF() != 41 {
		t.Fatalf("dims M=%d n=%d dof=%d, want 54/13/41",
			e.NumMeasurements(), e.NumStates(), e.DOF())
	}
}

func TestBDDFalsePositiveRate(t *testing.T) {
	e := estimator14(t)
	sigma := 0.01
	alpha := 0.05 // use a large alpha so MC converges quickly
	b, err := NewBDD(e, sigma, alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const trials = 20000
	fp := 0
	z := make([]float64, e.NumMeasurements())
	for i := 0; i < trials; i++ {
		for j := range z {
			z[j] = rng.NormFloat64() * sigma
		}
		if b.Detect(e.Residual(z)) {
			fp++
		}
	}
	rate := float64(fp) / trials
	if math.Abs(rate-alpha) > 0.01 {
		t.Errorf("observed FP rate %v, want ~%v", rate, alpha)
	}
}

func TestBDDValidation(t *testing.T) {
	e := estimator14(t)
	if _, err := NewBDD(e, 0, 0.05); err == nil {
		t.Error("expected error for sigma=0")
	}
	if _, err := NewBDD(e, 0.01, 0); err == nil {
		t.Error("expected error for alpha=0")
	}
	// Square H has no residual DOF.
	hSquare := mat.Identity(3)
	eSquare, err := NewEstimator(hSquare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBDD(eSquare, 0.01, 0.05); err == nil {
		t.Error("expected error for zero DOF")
	}
}

func TestStealthyAttackBypassesBDD(t *testing.T) {
	// The core FDI result: a = Hc has zero residual component and detection
	// probability equal to the false-positive rate.
	e := estimator14(t)
	b, err := NewBDD(e, 0.01, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	c := make([]float64, e.NumStates())
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	a := mat.MulVec(e.H(), c)
	if rc := e.ResidualComponent(a); rc > 1e-9*mat.Norm2(a) {
		t.Fatalf("residual component %v for in-column-space attack", rc)
	}
	if !e.IsStealthy(a, 0) {
		t.Error("IsStealthy = false for a = Hc")
	}
	pd, err := e.DetectionProbability(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pd-b.Alpha) > 1e-6 {
		t.Errorf("P_D = %v for stealthy attack, want alpha = %v", pd, b.Alpha)
	}
}

func TestRandomAttackIsDetected(t *testing.T) {
	// A random (non-structured) attack of decent size is detected with
	// near certainty.
	e := estimator14(t)
	b, err := NewBDD(e, 0.01, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, e.NumMeasurements())
	for i := range a {
		a[i] = rng.NormFloat64() * 0.5
	}
	if e.IsStealthy(a, 0) {
		t.Fatal("random attack should not be stealthy")
	}
	pd, err := e.DetectionProbability(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if pd < 0.999 {
		t.Errorf("P_D = %v for large random attack, want ~1", pd)
	}
}

func TestAnalyticMatchesMonteCarlo(t *testing.T) {
	// The analytic noncentral-χ² detection probability must agree with
	// Monte Carlo across the interesting operating range.
	e := estimator14(t)
	sigma := 0.01
	b, err := NewBDD(e, sigma, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for _, scale := range []float64{0.002, 0.01, 0.03, 0.1} {
		a := make([]float64, e.NumMeasurements())
		for i := range a {
			a[i] = rng.NormFloat64() * scale
		}
		analytic, err := e.DetectionProbability(b, a)
		if err != nil {
			t.Fatal(err)
		}
		mc := e.DetectionProbabilityMC(b, a, 4000, rng)
		if math.Abs(analytic-mc) > 0.03 {
			t.Errorf("scale %v: analytic %v vs MC %v", scale, analytic, mc)
		}
	}
}

func TestIsStealthyZeroAttack(t *testing.T) {
	e := estimator14(t)
	if !e.IsStealthy(make([]float64, e.NumMeasurements()), 0) {
		t.Error("zero attack must be stealthy")
	}
}

func TestDetectionProbabilityMCZeroTrials(t *testing.T) {
	e := estimator14(t)
	b, _ := NewBDD(e, 0.01, 0.05)
	if got := e.DetectionProbabilityMC(b, make([]float64, e.NumMeasurements()), 0, rand.New(rand.NewSource(1))); got != 0 {
		t.Errorf("MC with zero trials = %v, want 0", got)
	}
}

// Property: detection probability is monotone in the attack magnitude for a
// fixed attack direction.
func TestQuickDetectionMonotoneInMagnitude(t *testing.T) {
	e := estimator14(t)
	b, err := NewBDD(e, 0.01, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := make([]float64, e.NumMeasurements())
		for i := range dir {
			dir[i] = rng.NormFloat64() * 0.01
		}
		s1 := rng.Float64() * 2
		s2 := s1 + rng.Float64()*2
		p1, err1 := e.DetectionProbability(b, mat.ScaleVec(s1, dir))
		p2, err2 := e.DetectionProbability(b, mat.ScaleVec(s2, dir))
		if err1 != nil || err2 != nil {
			return false
		}
		return p2 >= p1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the estimator is unbiased on noiseless data for any state.
func TestQuickEstimateExactRecovery(t *testing.T) {
	e := estimator14(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		theta := make([]float64, e.NumStates())
		for i := range theta {
			theta[i] = rng.NormFloat64()
		}
		z := mat.MulVec(e.H(), theta)
		return mat.VecEqual(e.Estimate(z), theta, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestResidualWSMatchesResidual: the workspace residual must agree bitwise
// with the allocating path, including across reuse.
func TestResidualWSMatchesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	h := mat.NewDense(30, 8)
	for i := 0; i < 30; i++ {
		for j := 0; j < 8; j++ {
			h.Set(i, j, rng.NormFloat64())
		}
	}
	est, err := NewEstimator(h)
	if err != nil {
		t.Fatal(err)
	}
	var ws ResidualWorkspace
	for trial := 0; trial < 25; trial++ {
		z := make([]float64, 30)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		want := est.Residual(z)
		got := est.ResidualWS(&ws, z)
		if got != want {
			t.Fatalf("trial %d: ResidualWS = %v, Residual = %v", trial, got, want)
		}
	}
}
