// Package se implements DC state estimation and the residual-based bad
// data detector (BDD) that the MTD defends: a weighted least squares
// estimator θ̂ = (HᵀWH)⁻¹HᵀWz, the residual r = ‖z − Hθ̂‖, a χ²-calibrated
// detection threshold for a target false-positive rate, and both analytic
// (noncentral χ²) and Monte-Carlo attack detection probabilities.
//
// The noise model is homoskedastic (W = σ⁻²I), as in the paper's
// simulations. Under that model the hat matrix Γ = H(HᵀH)⁻¹Hᵀ is the
// orthogonal projector onto Col(H), r² /σ² is central χ² with M−(N−1)
// degrees of freedom without attack, and noncentral χ² with noncentrality
// ‖(I−Γ)a‖²/σ² under attack a — exactly the facts used in the paper's
// Appendix B.
package se

import (
	"errors"
	"fmt"

	"gridmtd/internal/mat"
)

// Estimator performs least-squares DC state estimation for a fixed
// measurement matrix. Construct with NewEstimator; the QR factorization is
// cached so repeated estimates and residuals are cheap.
type Estimator struct {
	h  *mat.Dense // M×n measurement matrix (n = N-1 reduced states)
	q  *mat.Dense // thin Q factor (M×n), orthonormal columns
	qt *mat.Dense // Qᵀ (n×M), rows contiguous for the batch residual path
	r  *mat.Dense // R factor (n×n upper triangular)
	lu *mat.LU    // factorization of R for state recovery
	// perm maps factor column k to the column of h it orthogonalized
	// (Factory builds factor H·P with the volatile columns trailing; nil
	// means identity). Only Estimate needs it — every residual quantity
	// depends on Col(H) alone, which a column permutation preserves.
	perm []int
}

// NewEstimator builds an estimator for measurement matrix h (M×n, M >= n,
// full column rank). It returns an error if h is rank deficient.
func NewEstimator(h *mat.Dense) (*Estimator, error) {
	if h.Rows() < h.Cols() {
		return nil, fmt.Errorf("se: measurement matrix is %dx%d; need at least as many measurements as states", h.Rows(), h.Cols())
	}
	qr := mat.ComputeQR(h)
	lu, err := mat.ComputeLU(qr.R)
	if err != nil {
		return nil, errors.New("se: measurement matrix is rank deficient; the state is unobservable")
	}
	qt := mat.TransposeInto(mat.NewDense(qr.Q.Cols(), qr.Q.Rows()), qr.Q)
	return &Estimator{h: h, q: qr.Q, qt: qt, r: qr.R, lu: lu}, nil
}

// H returns the measurement matrix the estimator was built for.
func (e *Estimator) H() *mat.Dense { return e.h }

// NumMeasurements returns M.
func (e *Estimator) NumMeasurements() int { return e.h.Rows() }

// NumStates returns the reduced state dimension (N-1).
func (e *Estimator) NumStates() int { return e.h.Cols() }

// DOF returns the residual degrees of freedom M − (N−1).
func (e *Estimator) DOF() int { return e.h.Rows() - e.h.Cols() }

// Estimate returns the least-squares state estimate θ̂ for measurement
// vector z (length M). With homoskedastic noise the weight matrix cancels,
// so θ̂ = R⁻¹Qᵀz.
func (e *Estimator) Estimate(z []float64) []float64 {
	if len(z) != e.h.Rows() {
		panic("se: measurement vector length mismatch")
	}
	qtz := mat.MulVecT(e.q, z)
	sol := e.lu.Solve(qtz)
	if e.perm == nil {
		return sol
	}
	// The factorization is of H·P; undo the column permutation so the
	// returned state vector is in h's column order.
	out := make([]float64, len(sol))
	for k, j := range e.perm {
		out[j] = sol[k]
	}
	return out
}

// ResidualVector returns z − Hθ̂ = (I − Γ)z without forming the projector.
func (e *Estimator) ResidualVector(z []float64) []float64 {
	if len(z) != e.h.Rows() {
		panic("se: measurement vector length mismatch")
	}
	qtz := mat.MulVecT(e.q, z)
	proj := mat.MulVec(e.q, qtz)
	return mat.SubVec(z, proj)
}

// Residual returns the BDD residual r = ‖z − Hθ̂‖₂.
func (e *Estimator) Residual(z []float64) float64 {
	return mat.Norm2(e.ResidualVector(z))
}

// ResidualWorkspace holds the scratch vectors of a residual evaluation so
// batch loops (the η′ sweep scores 1000 attacks per candidate) can reuse
// them instead of allocating three vectors per attack. The zero value is
// ready to use; a workspace is not safe for concurrent use — the parallel
// evaluation path keeps one per worker.
type ResidualWorkspace struct {
	qtz []float64
	res []float64
}

// ResidualWS returns the BDD residual ‖z − Hθ̂‖₂ using the workspace
// buffers. The operations match Residual exactly, so the value is bitwise
// identical.
func (e *Estimator) ResidualWS(ws *ResidualWorkspace, z []float64) float64 {
	m, n := e.h.Rows(), e.h.Cols()
	if len(z) != m {
		panic("se: measurement vector length mismatch")
	}
	if cap(ws.qtz) < n {
		ws.qtz = make([]float64, n)
	}
	if cap(ws.res) < m {
		ws.res = make([]float64, m)
	}
	// Qᵀz via contiguous rows of the cached transpose: each component is
	// the same ascending-index accumulation MulVecT performs, held in a
	// register instead of streamed through memory.
	qtz := ws.qtz[:n]
	for j := 0; j < n; j++ {
		qtz[j] = mat.Dot(e.qt.RowView(j), z)
	}
	proj := mat.MulVecInto(ws.res[:m], e.q, qtz)
	for i, v := range z {
		proj[i] = v - proj[i]
	}
	return mat.Norm2(proj)
}
