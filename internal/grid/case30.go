package grid

// CaseIEEE30 returns the IEEE 30-bus system used for the paper's
// scalability experiment (Fig. 6b), with topology, reactances, loads,
// generator locations/capacities and branch ratings from the MATPOWER
// case30 file. Two reproduction choices documented in DESIGN.md:
//
//   - MATPOWER's quadratic generator costs are linearized at half capacity
//     (only the pre-perturbation OPF state depends on them, and Fig. 6b
//     measures detection effectiveness, not cost);
//   - the paper does not list the 30-bus D-FACTS set; ten branches spread
//     across the network are used here, with the same ηmax = 0.5 range as
//     the 14-bus case.
func CaseIEEE30() *Network {
	const etaMax = 0.5
	// 0-based branch positions carrying D-FACTS (chosen to cover all areas
	// of the network).
	dfacts := map[int]bool{0: true, 4: true, 8: true, 13: true, 17: true,
		20: true, 24: true, 28: true, 32: true, 38: true}

	type bdata struct {
		from, to int
		x        float64
		limit    float64
	}
	branches := []bdata{
		{1, 2, 0.06, 130},  // 1
		{1, 3, 0.19, 130},  // 2
		{2, 4, 0.17, 65},   // 3
		{3, 4, 0.04, 130},  // 4
		{2, 5, 0.20, 130},  // 5
		{2, 6, 0.18, 65},   // 6
		{4, 6, 0.04, 90},   // 7
		{5, 7, 0.12, 70},   // 8
		{6, 7, 0.08, 130},  // 9
		{6, 8, 0.04, 32},   // 10
		{6, 9, 0.21, 65},   // 11
		{6, 10, 0.56, 32},  // 12
		{9, 11, 0.21, 65},  // 13
		{9, 10, 0.11, 65},  // 14
		{4, 12, 0.26, 65},  // 15
		{12, 13, 0.14, 65}, // 16
		{12, 14, 0.26, 32}, // 17
		{12, 15, 0.13, 32}, // 18
		{12, 16, 0.20, 32}, // 19
		{14, 15, 0.20, 16}, // 20
		{16, 17, 0.19, 16}, // 21
		{15, 18, 0.22, 16}, // 22
		{18, 19, 0.13, 16}, // 23
		{19, 20, 0.07, 32}, // 24
		{10, 20, 0.21, 32}, // 25
		{10, 17, 0.08, 32}, // 26
		{10, 21, 0.07, 32}, // 27
		{10, 22, 0.15, 32}, // 28
		{21, 22, 0.02, 32}, // 29
		{15, 23, 0.20, 16}, // 30
		{22, 24, 0.18, 16}, // 31
		{23, 24, 0.27, 16}, // 32
		{24, 25, 0.33, 16}, // 33
		{25, 26, 0.38, 16}, // 34
		{25, 27, 0.21, 16}, // 35
		{28, 27, 0.40, 65}, // 36
		{27, 29, 0.42, 16}, // 37
		{27, 30, 0.60, 16}, // 38
		{29, 30, 0.45, 16}, // 39
		{8, 28, 0.20, 32},  // 40
		{6, 28, 0.06, 32},  // 41
	}
	brs := make([]Branch, len(branches))
	for i, b := range branches {
		br := Branch{From: b.from, To: b.to, X: b.x, LimitMW: b.limit, XMin: b.x, XMax: b.x}
		if dfacts[i] {
			br.HasDFACTS = true
			br.XMin = (1 - etaMax) * b.x
			br.XMax = (1 + etaMax) * b.x
		}
		brs[i] = br
	}

	loads := []float64{
		0, 21.7, 2.4, 7.6, 94.2, 0, 22.8, 30.0, 0, 5.8,
		0, 11.2, 0, 6.2, 8.2, 3.5, 9.0, 3.2, 9.5, 2.2,
		17.5, 0, 3.2, 8.7, 0, 3.5, 0, 0, 2.4, 10.6,
	}
	buses := make([]Bus, len(loads))
	for i, l := range loads {
		buses[i] = Bus{Index: i + 1, LoadMW: l}
	}

	return &Network{
		Name:     "ieee30",
		BaseMVA:  100,
		SlackBus: 1,
		Buses:    buses,
		Branches: brs,
		Gens: []Generator{
			{Bus: 1, CostPerMWh: 3.6, MinMW: 0, MaxMW: 80},
			{Bus: 2, CostPerMWh: 3.15, MinMW: 0, MaxMW: 80},
			{Bus: 22, CostPerMWh: 4.13, MinMW: 0, MaxMW: 50},
			{Bus: 27, CostPerMWh: 3.71, MinMW: 0, MaxMW: 55},
			{Bus: 23, CostPerMWh: 3.75, MinMW: 0, MaxMW: 30},
			{Bus: 13, CostPerMWh: 4.0, MinMW: 0, MaxMW: 40},
		},
	}
}
