package grid

import (
	"math"
	"testing"

	"gridmtd/internal/mat"
)

// TestGammaSketchOperandsIdentity verifies the structural factorization the
// sketch backend rests on: for any two reactance vectors, the sparse
// quadratic form Eᵀ·D₁·G·D₂·E must reproduce the Gram matrix of the
// reduced [p; √2·f] representation's columns — i.e. the same inner
// products the exact γ pipeline reduces over.
func TestGammaSketchOperandsIdentity(t *testing.T) {
	for _, name := range []string{"case4gs", "ieee14", "ieee57"} {
		n, err := CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		et, g := n.GammaSketchOperands()
		k, l := n.N()-1, n.L()
		if et.Rows() != k || et.Cols() != l || g.Rows() != l || g.Cols() != l {
			t.Fatalf("%s: operand shapes (%dx%d, %dx%d)", name, et.Rows(), et.Cols(), g.Rows(), g.Cols())
		}

		x1 := n.Reactances()
		x2 := n.Reactances()
		for i := range x2 {
			x2[i] *= 1 + 0.3*float64(i%5)/5
		}
		// Dense reference: rows of the reduced transposed builders are the
		// candidate columns.
		ht1 := mat.NewDense(k, n.GammaAmbient())
		ht2 := mat.NewDense(k, n.GammaAmbient())
		n.MeasurementMatrixTGammaInto(x1, ht1)
		n.MeasurementMatrixTGammaInto(x2, ht2)

		// Sparse route: M₁₂ = Eᵀ·D₁·G·D₂·E via dense intermediates (the
		// test exercises the operands, not the scatter).
		d1 := make([]float64, l)
		d2 := make([]float64, l)
		for i := 0; i < l; i++ {
			d1[i], d2[i] = 1/x1[i], 1/x2[i]
		}
		gd := g.Dense()
		etd := et.Dense()
		// M[r][c] = Σ_{l,m} E[l][r]·d1[l]·G[l][m]·d2[m]·E[m][c]
		for r := 0; r < k; r++ {
			for c := 0; c < k; c++ {
				var want float64
				want = mat.Dot(ht1.RowView(r), ht2.RowView(c))
				var got float64
				for li := 0; li < l; li++ {
					e1 := etd.At(r, li)
					if e1 == 0 {
						continue
					}
					for m := 0; m < l; m++ {
						gv := gd.At(li, m)
						if gv == 0 {
							continue
						}
						e2 := etd.At(c, m)
						if e2 == 0 {
							continue
						}
						got += e1 * d1[li] * gv * d2[m] * e2
					}
				}
				scale := math.Max(1, math.Abs(want))
				if math.Abs(got-want) > 1e-9*scale {
					t.Fatalf("%s: M[%d][%d] = %.12g via operands, %.12g via dense rows", name, r, c, got, want)
				}
			}
		}
	}
}
