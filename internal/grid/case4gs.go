package grid

// Case4GS returns the 4-bus test system of the paper's motivating example
// (Section IV-B), which is MATPOWER's case4gs (Grainger & Stevenson):
//
//	branch 1: 1-2, x = 0.0504
//	branch 2: 1-3, x = 0.0372
//	branch 3: 2-4, x = 0.0372
//	branch 4: 3-4, x = 0.0636
//
// with loads (50, 170, 200, 80) MW and generators at buses 1 and 4. The
// paper does not list the generator costs and flow limits it used; the
// values here were reverse-engineered so the OPF reproduces Tables II-III:
// linear costs c1 = 20, c2 = 30 $/MWh reproduce every cost in the tables
// exactly (and reveal that Table III's "1.595e4" for Δx2 is a typo for
// 1.1595e4), generator 1 capacity 350 MW gives the pre-perturbation
// dispatch (350, 150), and the flow limits on branches 1 and 2 are
// calibrated so the post-perturbation dispatches match Table III (see
// EXPERIMENTS.md). All four branches carry D-FACTS with a ±50% range so
// the example's ±20% perturbations stay in range.
func Case4GS() *Network {
	const etaMax = 0.5
	mk := func(from, to int, x, limit float64) Branch {
		return Branch{
			From: from, To: to, X: x, LimitMW: limit,
			HasDFACTS: true, XMin: (1 - etaMax) * x, XMax: (1 + etaMax) * x,
		}
	}
	return &Network{
		Name:     "case4gs",
		BaseMVA:  100,
		SlackBus: 1,
		Buses: []Bus{
			{Index: 1, LoadMW: 50},
			{Index: 2, LoadMW: 170},
			{Index: 3, LoadMW: 200},
			{Index: 4, LoadMW: 80},
		},
		Branches: []Branch{
			mk(1, 2, 0.0504, Case4GSLine1LimitMW),
			mk(1, 3, 0.0372, Case4GSLine2LimitMW),
			mk(2, 4, 0.0372, 250),
			mk(3, 4, 0.0636, 250),
		},
		Gens: []Generator{
			{Bus: 1, CostPerMWh: 20, MinMW: 0, MaxMW: 350},
			{Bus: 4, CostPerMWh: 30, MinMW: 0, MaxMW: 318},
		},
	}
}

// Calibrated flow limits for the 4-bus example (see Case4GS). The paper
// omits them; these values minimize the deviation of the reproduced
// Table III dispatch from the published one (RMSE 0.35 MW across the four
// perturbations; cmd/calib4bus re-runs the calibration sweep).
const (
	Case4GSLine1LimitMW = 127.7
	Case4GSLine2LimitMW = 173.5
)
