package grid

import (
	"regexp"
	"testing"
)

// TestRegistryHashStable pins the persistent-cache key contract: the hash
// is a fixed-length hex digest, identical across calls (and therefore
// across the processes a disk cache outlives), and distinct from a hash
// over perturbed case data — the property diskcache relies on to
// invalidate entries when the embedded registry changes.
func TestRegistryHashStable(t *testing.T) {
	h := RegistryHash()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(h) {
		t.Fatalf("RegistryHash() = %q, want 64 hex chars", h)
	}
	if h2 := RegistryHash(); h2 != h {
		t.Fatalf("RegistryHash not stable: %q then %q", h, h2)
	}
}
