package grid

import (
	"math"
	"math/rand"
	"testing"

	"gridmtd/internal/mat"
)

// allCases builds every registered case.
func allCases(t *testing.T) []*Network {
	t.Helper()
	var nets []*Network
	for _, name := range CaseNames() {
		n, err := CaseByName(name)
		if err != nil {
			t.Fatalf("CaseByName(%q): %v", name, err)
		}
		nets = append(nets, n)
	}
	return nets
}

// perturbedReactances returns the case reactances with every D-FACTS branch
// moved to a deterministic interior point of its range.
func perturbedReactances(n *Network, rng *rand.Rand) []float64 {
	x := n.Reactances()
	for _, i := range n.DFACTSIndices() {
		lo, hi := n.Branches[i].XMin, n.Branches[i].XMax
		x[i] = lo + (hi-lo)*rng.Float64()
	}
	return x
}

// TestDenseSparseSolveAgree is the backend-agreement property test of the
// case registry: for every registered case and several reactance settings,
// the dense LU and sparse Cholesky factorizations must solve B_r·y = b to
// within 1e-10 of each other.
func TestDenseSparseSolveAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range allCases(t) {
		dense := NewBFactorizerBackend(n, DenseBackend)
		sparse := NewBFactorizerBackend(n, SparseBackend)
		for trial := 0; trial < 3; trial++ {
			x := n.Reactances()
			if trial > 0 {
				x = perturbedReactances(n, rng)
			}
			if err := dense.Reset(x); err != nil {
				t.Fatalf("%s: dense Reset: %v", n.Name, err)
			}
			if err := sparse.Reset(x); err != nil {
				t.Fatalf("%s: sparse Reset: %v", n.Name, err)
			}
			b := make([]float64, n.N()-1)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			yd := dense.SolveInto(make([]float64, len(b)), b)
			ys := sparse.SolveInto(make([]float64, len(b)), b)
			for i := range yd {
				if diff := math.Abs(yd[i] - ys[i]); diff > 1e-10*(1+math.Abs(yd[i])) {
					t.Fatalf("%s trial %d: solve mismatch at %d: dense %g sparse %g", n.Name, trial, i, yd[i], ys[i])
				}
			}
		}
	}
}

// TestDenseSparsePTDFAgree checks the PTDF construction through both
// backends to 1e-10 on every registered case.
func TestDenseSparsePTDFAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range allCases(t) {
		dense := NewBFactorizerBackend(n, DenseBackend)
		sparse := NewBFactorizerBackend(n, SparseBackend)
		for trial := 0; trial < 2; trial++ {
			x := n.Reactances()
			if trial > 0 {
				x = perturbedReactances(n, rng)
			}
			pd := mat.NewDense(n.L(), n.N()-1)
			ps := mat.NewDense(n.L(), n.N()-1)
			if err := dense.Reset(x); err != nil {
				t.Fatal(err)
			}
			if err := dense.PTDFInto(pd); err != nil {
				t.Fatal(err)
			}
			if err := sparse.Reset(x); err != nil {
				t.Fatal(err)
			}
			if err := sparse.PTDFInto(ps); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < n.L(); l++ {
				rd, rs := pd.RowView(l), ps.RowView(l)
				for j := range rd {
					if diff := math.Abs(rd[j] - rs[j]); diff > 1e-10*(1+math.Abs(rd[j])) {
						t.Fatalf("%s trial %d: PTDF mismatch at (%d,%d): dense %g sparse %g", n.Name, trial, l, j, rd[j], rs[j])
					}
				}
			}
		}
	}
}

// TestSparsePTDFColsAgree checks the partial-column fast path against the
// full sparse PTDF on every case: each requested column must match its
// counterpart to factorization roundoff (the two read symmetric entries
// of the same inverse), and the dense backend must not advertise the
// interface — its full build is a bitwise historical contract.
func TestSparsePTDFColsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range allCases(t) {
		if _, ok := NewBFactorizerBackend(n, DenseBackend).(PTDFColser); ok {
			t.Fatalf("%s: dense factorizer claims PTDFColser", n.Name)
		}
		sparse := NewBFactorizerBackend(n, SparseBackend)
		pc, ok := sparse.(PTDFColser)
		if !ok {
			t.Fatalf("%s: sparse factorizer does not implement PTDFColser", n.Name)
		}
		x := perturbedReactances(n, rng)
		if err := sparse.Reset(x); err != nil {
			t.Fatal(err)
		}
		full := mat.NewDense(n.L(), n.N()-1)
		if err := sparse.PTDFInto(full); err != nil {
			t.Fatal(err)
		}
		nb1 := n.N() - 1
		cols := []int{0, nb1 / 2, nb1 - 1}
		part := mat.NewDense(len(cols), n.L())
		if err := pc.PTDFColsInto(part, cols); err != nil {
			t.Fatal(err)
		}
		for i, j := range cols {
			row := part.RowView(i)
			for l := 0; l < n.L(); l++ {
				want := full.At(l, j)
				if diff := math.Abs(row[l] - want); diff > 1e-10*(1+math.Abs(want)) {
					t.Fatalf("%s: PTDF column %d branch %d: full %g cols %g",
						n.Name, j, l, want, row[l])
				}
			}
		}
	}
}

// TestDensePTDFMatchesNetworkPTDF pins the dense factorizer to the public
// PTDF construction (which it must reproduce bitwise on sub-threshold
// cases).
func TestDensePTDFMatchesNetworkPTDF(t *testing.T) {
	for _, name := range []string{"case4gs", "ieee14", "ieee30"} {
		n, err := CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		x := n.Reactances()
		want, err := n.PTDF(x)
		if err != nil {
			t.Fatal(err)
		}
		f := NewBFactorizerBackend(n, DenseBackend)
		if err := f.Reset(x); err != nil {
			t.Fatal(err)
		}
		got := mat.NewDense(n.L(), n.N()-1)
		if err := f.PTDFInto(got); err != nil {
			t.Fatal(err)
		}
		if !mat.Equal(got, want, 0) {
			t.Fatalf("%s: dense factorizer PTDF differs from Network.PTDF", name)
		}
	}
}

// TestAutoBackendSelection pins the size-based backend choice: the paper's
// own cases stay dense (preserving bitwise reproducibility), the new large
// cases go sparse.
func TestAutoBackendSelection(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Backend
	}{
		{"case4gs", DenseBackend},
		{"ieee14", DenseBackend},
		{"ieee30", DenseBackend},
		{"ieee57", SparseBackend},
		{"ieee118", SparseBackend},
	} {
		n, err := CaseByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := NewBFactorizer(n).Backend(); got != tc.want {
			t.Errorf("%s: auto backend = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMeasurementMatrixFullRankAllCases checks the estimator's full-rank
// assumption on every registered case: the slack-reduced H must have rank
// N-1 at nominal reactances.
func TestMeasurementMatrixFullRankAllCases(t *testing.T) {
	for _, n := range allCases(t) {
		h := n.MeasurementMatrix(n.Reactances())
		basis := mat.OrthonormalBasis(h, 0)
		if got := basis.Cols(); got != n.N()-1 {
			t.Errorf("%s: rank(H) = %d, want %d", n.Name, got, n.N()-1)
		}
	}
}

// TestSparseFactorizerRejectsIslanded mirrors the Validate guard at the
// numeric level: factoring an islanded network's susceptance matrix must
// fail loudly, not return garbage.
func TestSparseFactorizerRejectsIslanded(t *testing.T) {
	n := &Network{
		Name:     "islanded",
		BaseMVA:  100,
		SlackBus: 1,
		Buses:    []Bus{{Index: 1}, {Index: 2}, {Index: 3}, {Index: 4}},
		Branches: []Branch{
			{From: 1, To: 2, X: 0.1, LimitMW: 10, XMin: 0.1, XMax: 0.1},
			{From: 3, To: 4, X: 0.1, LimitMW: 10, XMin: 0.1, XMax: 0.1},
		},
	}
	f := NewBFactorizerBackend(n, SparseBackend)
	if err := f.Reset(n.Reactances()); err == nil {
		t.Fatal("expected sparse factorization of an islanded network to fail")
	}
	// (The dense LU keeps its historical exact-zero pivot test for bitwise
	// compatibility, so rounding can let an islanded matrix through there;
	// Validate is the structural guard on that path.)
}
