package grid

import (
	"math"

	"gridmtd/internal/mat"
)

// Incidence returns the N×L branch-bus incidence matrix A with
// A[i][l] = +1 if branch l starts at bus i+1, -1 if it ends there.
func (n *Network) Incidence() *mat.Dense {
	a := mat.NewDense(n.N(), n.L())
	for l, br := range n.Branches {
		a.Set(br.From-1, l, 1)
		a.Set(br.To-1, l, -1)
	}
	return a
}

// SusceptanceDiag returns the L×L diagonal matrix D = diag(1/x_l) for the
// given reactance vector (per-unit).
func (n *Network) SusceptanceDiag(x []float64) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	d := make([]float64, len(x))
	for i, v := range x {
		d[i] = 1 / v
	}
	return mat.Diagonal(d)
}

// BMatrix returns the N×N nodal susceptance matrix B = A·D·Aᵀ for the
// given reactance vector.
func (n *Network) BMatrix(x []float64) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	b := mat.NewDense(n.N(), n.N())
	for l, br := range n.Branches {
		y := 1 / x[l]
		i, j := br.From-1, br.To-1
		b.Add(i, i, y)
		b.Add(j, j, y)
		b.Add(i, j, -y)
		b.Add(j, i, -y)
	}
	return b
}

// ReducedB returns B with the slack bus row and column removed; it is
// invertible for connected networks.
func (n *Network) ReducedB(x []float64) *mat.Dense {
	return n.ReducedBInto(x, mat.NewDense(n.N()-1, n.N()-1))
}

// ReducedBInto builds the slack-reduced susceptance matrix into the
// preallocated (N-1)×(N-1) matrix out and returns it. It accumulates the
// same per-branch additions as BMatrix (skipping the slack row/column), so
// the entries are bitwise identical to ReducedB while allocating nothing.
func (n *Network) ReducedBInto(x []float64, out *mat.Dense) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	if out.Rows() != n.N()-1 || out.Cols() != n.N()-1 {
		panic("grid: reduced susceptance buffer has wrong shape")
	}
	out.Zero()
	for l, br := range n.Branches {
		y := 1 / x[l]
		i, j := br.From-1, br.To-1
		ri, rj := n.reducedCol(i), n.reducedCol(j)
		if ri >= 0 {
			out.Add(ri, ri, y)
		}
		if rj >= 0 {
			out.Add(rj, rj, y)
		}
		if ri >= 0 && rj >= 0 {
			out.Add(ri, rj, -y)
			out.Add(rj, ri, -y)
		}
	}
	return out
}

// MeasurementMatrix returns the slack-reduced measurement matrix
// H ∈ R^{M×(N-1)} that maps the non-slack voltage angles θ to the
// measurement vector z = [p; f; −f] (bus injections, forward branch flows,
// reverse branch flows), all in per-unit. Removing the slack column makes H
// full column rank for connected networks, matching the estimator's and
// the paper's full-rank assumption.
func (n *Network) MeasurementMatrix(x []float64) *mat.Dense {
	return n.MeasurementMatrixInto(x, mat.NewDense(n.M(), n.N()-1))
}

// reducedCol maps a 0-based bus index to its slack-reduced state column, or
// -1 for the slack bus.
func (n *Network) reducedCol(bus int) int {
	s := n.SlackBus - 1
	switch {
	case bus == s:
		return -1
	case bus < s:
		return bus
	default:
		return bus - 1
	}
}

// MeasurementMatrixInto builds H into the preallocated M×(N-1) matrix h and
// returns it. The injection block is accumulated branch by branch (the same
// per-branch additions BMatrix performs, in the same order), so the entries
// are bitwise identical to MeasurementMatrix while allocating nothing.
func (n *Network) MeasurementMatrixInto(x []float64, h *mat.Dense) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	nb, nl := n.N(), n.L()
	if h.Rows() != nb+2*nl || h.Cols() != nb-1 {
		panic("grid: measurement matrix buffer has wrong shape")
	}
	h.Zero()
	for l, br := range n.Branches {
		y := 1 / x[l]
		i, j := br.From-1, br.To-1
		ci, cj := n.reducedCol(i), n.reducedCol(j)
		// Injection rows: p = B θ with B = A·D·Aᵀ accumulated per branch.
		if ci >= 0 {
			h.Add(i, ci, y)
			h.Add(j, ci, -y)
		}
		if cj >= 0 {
			h.Add(j, cj, y)
			h.Add(i, cj, -y)
		}
		// Flow rows: f_l = (θ_from − θ_to)/x_l ; reverse flows are negated.
		if ci >= 0 {
			h.Set(nb+l, ci, y)
			h.Set(nb+nl+l, ci, -y)
		}
		if cj >= 0 {
			h.Set(nb+l, cj, -y)
			h.Set(nb+nl+l, cj, y)
		}
	}
	return h
}

// MeasurementMatrixTInto builds Hᵀ ((N-1)×M, one state per row) into the
// preallocated matrix ht and returns it. The transposed layout stores each
// column of H contiguously, which is what the subspace engine's
// Gram-Schmidt pass wants; entries equal MeasurementMatrix's bitwise.
func (n *Network) MeasurementMatrixTInto(x []float64, ht *mat.Dense) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	nb, nl := n.N(), n.L()
	if ht.Rows() != nb-1 || ht.Cols() != nb+2*nl {
		panic("grid: transposed measurement matrix buffer has wrong shape")
	}
	ht.Zero()
	for l, br := range n.Branches {
		y := 1 / x[l]
		i, j := br.From-1, br.To-1
		ci, cj := n.reducedCol(i), n.reducedCol(j)
		if ci >= 0 {
			ht.Add(ci, i, y)
			ht.Add(ci, j, -y)
		}
		if cj >= 0 {
			ht.Add(cj, j, y)
			ht.Add(cj, i, -y)
		}
		if ci >= 0 {
			ht.Set(ci, nb+l, y)
			ht.Set(ci, nb+nl+l, -y)
		}
		if cj >= 0 {
			ht.Set(cj, nb+l, -y)
			ht.Set(cj, nb+nl+l, y)
		}
	}
	return ht
}

// GammaAmbient returns the row count of the reduced γ-equivalent
// measurement representation built by MeasurementMatrixTGammaInto: N + L.
func (n *Network) GammaAmbient() int { return n.N() + n.L() }

// MeasurementMatrixTGammaInto builds the transposed reduced γ-equivalent
// measurement matrix into the preallocated (N-1)×(N+L) buffer: the
// injection block of Hᵀ followed by the flow block scaled by √2. The full
// measurement matrix stacks the flow rows twice (z = [p; f; −f], the
// reverse-flow block being the exact negation of the forward one), so for
// any two columns ⟨h_a, h_b⟩ = ⟨p_a, p_b⟩ + 2⟨f_a, f_b⟩ — exactly the
// inner product of the reduced columns [p; √2·f]. Principal angles (and
// hence γ) depend on the column sets only through these inner products, so
// the reduced representation yields mathematically identical angles while
// cutting every Gram-Schmidt and cross-Gram reduction from N+2L to N+L
// rows. The √2 scaling rounds each flow entry once, which is why this
// builder serves only the large-case fast-kernel path (1e-9-agreement
// contract), not the bitwise dense path.
func (n *Network) MeasurementMatrixTGammaInto(x []float64, ht *mat.Dense) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	nb, nl := n.N(), n.L()
	if ht.Rows() != nb-1 || ht.Cols() != nb+nl {
		panic("grid: reduced gamma measurement matrix buffer has wrong shape")
	}
	ht.Zero()
	for l, br := range n.Branches {
		y := 1 / x[l]
		ys := y * math.Sqrt2
		i, j := br.From-1, br.To-1
		ci, cj := n.reducedCol(i), n.reducedCol(j)
		if ci >= 0 {
			ht.Add(ci, i, y)
			ht.Add(ci, j, -y)
			ht.Set(ci, nb+l, ys)
		}
		if cj >= 0 {
			ht.Add(cj, j, y)
			ht.Add(cj, i, -y)
			ht.Set(cj, nb+l, -ys)
		}
	}
	return ht
}

// PTDF returns the L×(N-1) power transfer distribution factor matrix
// D·Arᵀ·Br⁻¹ mapping net injections at non-slack buses (per-unit) to branch
// flows (per-unit), where Ar is the incidence matrix without the slack row
// and Br the reduced susceptance matrix. The factorization backend is
// picked by size (see NewBFactorizer); on the dense path the result is
// bitwise identical to the historical inverse-then-multiply construction.
func (n *Network) PTDF(x []float64) (*mat.Dense, error) {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	f := NewBFactorizer(n)
	if err := f.Reset(x); err != nil {
		return nil, err
	}
	out := mat.NewDense(n.L(), n.N()-1)
	if err := f.PTDFInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReduceVec removes the slack-bus entry from a length-N bus vector,
// returning the length-(N-1) reduced vector used with ReducedB and PTDF.
func (n *Network) ReduceVec(v []float64) []float64 {
	if len(v) != n.N() {
		panic("grid: bus vector length mismatch")
	}
	out := make([]float64, 0, n.N()-1)
	for i, x := range v {
		if i == n.SlackBus-1 {
			continue
		}
		out = append(out, x)
	}
	return out
}

// ExpandVec is the inverse of ReduceVec: it inserts value at the slack
// position of a reduced vector.
func (n *Network) ExpandVec(v []float64, slackValue float64) []float64 {
	if len(v) != n.N()-1 {
		panic("grid: reduced vector length mismatch")
	}
	out := make([]float64, 0, n.N())
	j := 0
	for i := 0; i < n.N(); i++ {
		if i == n.SlackBus-1 {
			out = append(out, slackValue)
			continue
		}
		out = append(out, v[j])
		j++
	}
	return out
}

// InjectionsMW returns the net bus injection vector (generation − load) in
// MW for a given dispatch (ordered as n.Gens).
func (n *Network) InjectionsMW(dispatchMW []float64) []float64 {
	if len(dispatchMW) != len(n.Gens) {
		panic("grid: dispatch vector length mismatch")
	}
	p := make([]float64, n.N())
	for i, b := range n.Buses {
		p[i] = -b.LoadMW
	}
	for i, g := range n.Gens {
		p[g.Bus-1] += dispatchMW[i]
	}
	return p
}
