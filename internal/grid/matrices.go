package grid

import (
	"gridmtd/internal/mat"
)

// Incidence returns the N×L branch-bus incidence matrix A with
// A[i][l] = +1 if branch l starts at bus i+1, -1 if it ends there.
func (n *Network) Incidence() *mat.Dense {
	a := mat.NewDense(n.N(), n.L())
	for l, br := range n.Branches {
		a.Set(br.From-1, l, 1)
		a.Set(br.To-1, l, -1)
	}
	return a
}

// SusceptanceDiag returns the L×L diagonal matrix D = diag(1/x_l) for the
// given reactance vector (per-unit).
func (n *Network) SusceptanceDiag(x []float64) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	d := make([]float64, len(x))
	for i, v := range x {
		d[i] = 1 / v
	}
	return mat.Diagonal(d)
}

// BMatrix returns the N×N nodal susceptance matrix B = A·D·Aᵀ for the
// given reactance vector.
func (n *Network) BMatrix(x []float64) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	b := mat.NewDense(n.N(), n.N())
	for l, br := range n.Branches {
		y := 1 / x[l]
		i, j := br.From-1, br.To-1
		b.Add(i, i, y)
		b.Add(j, j, y)
		b.Add(i, j, -y)
		b.Add(j, i, -y)
	}
	return b
}

// ReducedB returns B with the slack bus row and column removed; it is
// invertible for connected networks.
func (n *Network) ReducedB(x []float64) *mat.Dense {
	b := n.BMatrix(x)
	s := n.SlackBus - 1
	out := mat.NewDense(n.N()-1, n.N()-1)
	ri := 0
	for i := 0; i < n.N(); i++ {
		if i == s {
			continue
		}
		rj := 0
		for j := 0; j < n.N(); j++ {
			if j == s {
				continue
			}
			out.Set(ri, rj, b.At(i, j))
			rj++
		}
		ri++
	}
	return out
}

// MeasurementMatrix returns the slack-reduced measurement matrix
// H ∈ R^{M×(N-1)} that maps the non-slack voltage angles θ to the
// measurement vector z = [p; f; −f] (bus injections, forward branch flows,
// reverse branch flows), all in per-unit. Removing the slack column makes H
// full column rank for connected networks, matching the estimator's and
// the paper's full-rank assumption.
func (n *Network) MeasurementMatrix(x []float64) *mat.Dense {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	nb, nl := n.N(), n.L()
	s := n.SlackBus - 1
	h := mat.NewDense(nb+2*nl, nb-1)

	// colOf maps a bus (0-based) to its reduced state column, or -1 for the
	// slack bus.
	colOf := func(bus int) int {
		switch {
		case bus == s:
			return -1
		case bus < s:
			return bus
		default:
			return bus - 1
		}
	}

	// Injection rows: p = B θ.
	b := n.BMatrix(x)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if c := colOf(j); c >= 0 {
				h.Set(i, c, b.At(i, j))
			}
		}
	}
	// Flow rows: f_l = (θ_from − θ_to)/x_l ; reverse flows are negated.
	for l, br := range n.Branches {
		y := 1 / x[l]
		if c := colOf(br.From - 1); c >= 0 {
			h.Set(nb+l, c, y)
			h.Set(nb+nl+l, c, -y)
		}
		if c := colOf(br.To - 1); c >= 0 {
			h.Set(nb+l, c, -y)
			h.Set(nb+nl+l, c, y)
		}
	}
	return h
}

// PTDF returns the L×(N-1) power transfer distribution factor matrix
// D·Arᵀ·Br⁻¹ mapping net injections at non-slack buses (per-unit) to branch
// flows (per-unit), where Ar is the incidence matrix without the slack row
// and Br the reduced susceptance matrix.
func (n *Network) PTDF(x []float64) (*mat.Dense, error) {
	if len(x) != n.L() {
		panic("grid: reactance vector length mismatch")
	}
	br, err := mat.Inverse(n.ReducedB(x))
	if err != nil {
		return nil, err
	}
	s := n.SlackBus - 1
	// Build D·Arᵀ directly: row l has +1/x at the from-bus column and -1/x
	// at the to-bus column (skipping the slack).
	dat := mat.NewDense(n.L(), n.N()-1)
	colOf := func(bus int) int {
		switch {
		case bus == s:
			return -1
		case bus < s:
			return bus
		default:
			return bus - 1
		}
	}
	for l, b := range n.Branches {
		y := 1 / x[l]
		if c := colOf(b.From - 1); c >= 0 {
			dat.Set(l, c, y)
		}
		if c := colOf(b.To - 1); c >= 0 {
			dat.Set(l, c, -y)
		}
	}
	return mat.Mul(dat, br), nil
}

// ReduceVec removes the slack-bus entry from a length-N bus vector,
// returning the length-(N-1) reduced vector used with ReducedB and PTDF.
func (n *Network) ReduceVec(v []float64) []float64 {
	if len(v) != n.N() {
		panic("grid: bus vector length mismatch")
	}
	out := make([]float64, 0, n.N()-1)
	for i, x := range v {
		if i == n.SlackBus-1 {
			continue
		}
		out = append(out, x)
	}
	return out
}

// ExpandVec is the inverse of ReduceVec: it inserts value at the slack
// position of a reduced vector.
func (n *Network) ExpandVec(v []float64, slackValue float64) []float64 {
	if len(v) != n.N()-1 {
		panic("grid: reduced vector length mismatch")
	}
	out := make([]float64, 0, n.N())
	j := 0
	for i := 0; i < n.N(); i++ {
		if i == n.SlackBus-1 {
			out = append(out, slackValue)
			continue
		}
		out = append(out, v[j])
		j++
	}
	return out
}

// InjectionsMW returns the net bus injection vector (generation − load) in
// MW for a given dispatch (ordered as n.Gens).
func (n *Network) InjectionsMW(dispatchMW []float64) []float64 {
	if len(dispatchMW) != len(n.Gens) {
		panic("grid: dispatch vector length mismatch")
	}
	p := make([]float64, n.N())
	for i, b := range n.Buses {
		p[i] = -b.LoadMW
	}
	for i, g := range n.Gens {
		p[g.Bus-1] += dispatchMW[i]
	}
	return p
}
