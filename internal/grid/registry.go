package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"gridmtd/internal/grid/cases"
)

// Calibrated flow limits for the 4-bus example (see Case4GS), re-exported
// from the case data for the calibration tooling.
const (
	Case4GSLine1LimitMW = cases.Case4GSLine1LimitMW
	Case4GSLine2LimitMW = cases.Case4GSLine2LimitMW
)

// FromSpec converts an embedded case description into a live Network. The
// conversion performs exactly the arithmetic the historical hand-written
// constructors performed — in particular XMin/XMax = (1 ∓ EtaMax)·X for
// D-FACTS branches — so networks built from the re-expressed case data are
// bitwise identical to the ones the constructors used to return.
func FromSpec(s *cases.Spec) *Network {
	buses := make([]Bus, s.N())
	for i, l := range s.LoadsMW {
		buses[i] = Bus{Index: i + 1, LoadMW: l}
	}
	brs := make([]Branch, s.L())
	for i, b := range s.Branches {
		limit := b.LimitMW
		if limit == 0 {
			limit = Unlimited
		}
		br := Branch{From: b.From, To: b.To, X: b.X, LimitMW: limit, XMin: b.X, XMax: b.X}
		if s.HasDFACTS(i + 1) {
			br.HasDFACTS = true
			br.XMin = (1 - s.EtaMax) * b.X
			br.XMax = (1 + s.EtaMax) * b.X
		}
		brs[i] = br
	}
	gens := make([]Generator, len(s.Gens))
	for i, g := range s.Gens {
		gens[i] = Generator{Bus: g.Bus, CostPerMWh: g.CostPerMWh, MinMW: g.MinMW, MaxMW: g.MaxMW}
	}
	return &Network{
		Name:     s.Name,
		BaseMVA:  s.BaseMVA,
		SlackBus: s.SlackBus,
		Buses:    buses,
		Branches: brs,
		Gens:     gens,
	}
}

// CaseInfo summarizes one registered case for listings.
type CaseInfo struct {
	// Name is the registry key; Aliases are alternative lookup names.
	Name    string
	Aliases []string
	// Title is a one-line description.
	Title string
	// Buses, Branches and DFACTS count the case's size.
	Buses, Branches, DFACTS int
}

// Cases lists the registered cases ordered by size.
func Cases() []CaseInfo {
	specs := cases.All()
	out := make([]CaseInfo, len(specs))
	for i, s := range specs {
		out[i] = CaseInfo{
			Name:     s.Name,
			Aliases:  append([]string(nil), s.Aliases...),
			Title:    s.Title,
			Buses:    s.N(),
			Branches: s.L(),
			DFACTS:   len(s.DFACTS),
		}
	}
	return out
}

// CaseNames returns the primary names of the registered cases, smallest
// system first.
func CaseNames() []string { return cases.Names() }

var registryHash = sync.OnceValue(func() string {
	h := sha256.New()
	for _, s := range cases.All() {
		fmt.Fprintf(h, "case %s %q base=%g slack=%d eta=%g\n", s.Name, s.Title, s.BaseMVA, s.SlackBus, s.EtaMax)
		fmt.Fprintf(h, "loads %v\n", s.LoadsMW)
		for _, b := range s.Branches {
			fmt.Fprintf(h, "br %d %d %v %v\n", b.From, b.To, b.X, b.LimitMW)
		}
		for _, g := range s.Gens {
			fmt.Fprintf(h, "gen %d %v %v %v\n", g.Bus, g.CostPerMWh, g.MinMW, g.MaxMW)
		}
		fmt.Fprintf(h, "dfacts %v\n", s.DFACTS)
	}
	return hex.EncodeToString(h.Sum(nil))
})

// RegistryHash returns a stable SHA-256 content hash over the embedded
// case registry — every number that shapes a Network (loads, reactances,
// ratings, generator economics, D-FACTS deployment). Persistent caches key
// their entries on it so responses computed against one registry build are
// never served against another: editing any case data changes the hash and
// silently invalidates every stale entry.
func RegistryHash() string { return registryHash() }

// CaseByName builds a fresh, validated Network for the named case (primary
// name or alias, case-insensitive). The error for an unknown name lists
// what is available.
func CaseByName(name string) (*Network, error) {
	s, ok := cases.ByName(name)
	if !ok {
		return nil, fmt.Errorf("grid: unknown case %q (available: %s)", name, strings.Join(cases.Names(), ", "))
	}
	n := FromSpec(s)
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("grid: case %q: %w", name, err)
	}
	return n, nil
}

// mustCase builds a registered case, panicking on registry or validation
// errors — embedded case data is covered by tests, so this cannot fail at
// run time.
func mustCase(name string) *Network {
	n, err := CaseByName(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Case4GS returns the 4-bus test system of the paper's motivating example
// (Section IV-B); see the case4gs entry in internal/grid/cases for the
// reverse-engineered economics.
func Case4GS() *Network { return mustCase("case4gs") }

// CaseIEEE14 returns the IEEE 14-bus system configured exactly as in the
// paper's evaluation (Section VII-A); see the ieee14 entry in
// internal/grid/cases.
func CaseIEEE14() *Network { return mustCase("ieee14") }

// CaseIEEE30 returns the IEEE 30-bus system used for the paper's
// scalability experiment (Fig. 6b); see the ieee30 entry in
// internal/grid/cases.
func CaseIEEE30() *Network { return mustCase("ieee30") }

// CaseIEEE57 returns the IEEE 57-bus system, the first case beyond the
// paper's own evaluation sizes; see the ieee57 entry in
// internal/grid/cases for the reproduction choices.
func CaseIEEE57() *Network { return mustCase("ieee57") }

// CaseIEEE118 returns the IEEE 118-bus system the sparse backend exists
// for; see the ieee118 entry in internal/grid/cases for the reproduction
// choices.
func CaseIEEE118() *Network { return mustCase("ieee118") }
