package grid

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"gridmtd/internal/mat"
)

// Backend names a reduced-susceptance factorization strategy.
type Backend int

const (
	// AutoBackend picks dense below SparseThreshold buses, sparse at or
	// above it.
	AutoBackend Backend = iota
	// DenseBackend forces the dense LU path — the historical code path,
	// bitwise identical to it.
	DenseBackend
	// SparseBackend forces the sparse Cholesky path (fill-reducing
	// ordering, CSC storage, triangular solves).
	SparseBackend
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case DenseBackend:
		return "dense"
	case SparseBackend:
		return "sparse"
	default:
		return "auto"
	}
}

// SparseThreshold is the bus count at which AutoBackend switches from the
// dense LU to the sparse Cholesky factorizer. Measured on the registered
// cases the sparse backend already wins the factor+PTDF unit at 30 buses
// (2.7×, growing to 10× at 118 — see PERF.md), but the paper's own
// 4/14/30-bus cases are pinned to the dense path anyway: their experiment
// outputs are bitwise-reproducibility contracts and only the dense backend
// performs the historical float operations. The same threshold keys every
// other dense/fast seam: the warm-started revised simplex and the
// multi-accumulator γ kernels engage only on the ≥-threshold path, which
// carries a 1e-9-agreement contract instead of the bitwise one.
const SparseThreshold = 50

// defaultBackend is the process-wide AutoBackend override, settable from
// command-line flags so dense-vs-sparse A/B runs need no code edits.
var defaultBackend atomic.Int32

// SetDefaultBackend overrides what AutoBackend resolves to for every
// factorizer and engine constructed afterwards. AutoBackend restores the
// size-based rule. Intended for process startup (the cmds' -backend flag);
// engines snapshot their resolution at construction time.
func SetDefaultBackend(b Backend) { defaultBackend.Store(int32(b)) }

// CurrentDefaultBackend returns the active AutoBackend override
// (AutoBackend when none is set).
func CurrentDefaultBackend() Backend { return Backend(defaultBackend.Load()) }

// Backends lists the selectable linear-algebra backends with one-line
// descriptions, in flag-value order — the shared source for the cmds'
// "-backend list" discoverability output (kept next to ParseBackend so the
// two stay in sync).
func Backends() []struct{ Name, Desc string } {
	return []struct{ Name, Desc string }{
		{"auto", "dense below the sparse threshold (50 buses), sparse at or above it"},
		{"dense", "historical dense LU path, bitwise-reproducible outputs"},
		{"sparse", "CSC + min-degree + sparse Cholesky, warm simplex, fast γ kernels (1e-9)"},
	}
}

// ParseBackend parses a -backend flag value: "auto", "dense" or "sparse".
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return AutoBackend, nil
	case "dense":
		return DenseBackend, nil
	case "sparse":
		return SparseBackend, nil
	default:
		return AutoBackend, fmt.Errorf("grid: unknown backend %q (want auto, dense or sparse)", s)
	}
}

// EffectiveBackend resolves a possibly-Auto backend choice for a network:
// the process-wide default first, then the SparseThreshold size rule. The
// result is always DenseBackend or SparseBackend.
func EffectiveBackend(n *Network, b Backend) Backend {
	if b == AutoBackend {
		b = CurrentDefaultBackend()
	}
	if b == AutoBackend {
		if n.N() >= SparseThreshold {
			return SparseBackend
		}
		return DenseBackend
	}
	return b
}

// BFactorizer factors the slack-reduced susceptance matrix B_r(x) of one
// network and answers solves against it. It is the pluggable seam between
// the grid model and the linear-algebra backends: the dense implementation
// performs exactly the historical operations (ReducedBInto + LU), the
// sparse one assembles B_r in CSC form and runs a fill-reducing sparse
// Cholesky. A BFactorizer owns per-instance scratch and is NOT safe for
// concurrent use — engines keep one per worker.
type BFactorizer interface {
	// Backend reports which implementation this is (DenseBackend or
	// SparseBackend).
	Backend() Backend
	// Reset (re)factors B_r at the reactance vector x (full length L).
	// After an error the factorizer must not be used for solves.
	Reset(x []float64) error
	// SolveInto solves B_r·y = b into dst and returns dst. dst must not
	// alias b for the dense backend.
	SolveInto(dst, b []float64) []float64
	// PTDFInto builds the L×(N-1) power transfer distribution factor
	// matrix D·Arᵀ·B_r⁻¹ for the reactances of the last Reset into dst.
	PTDFInto(dst *mat.Dense) error
}

// PTDFColser is the optional fast-path seam for callers that read only a
// few PTDF columns (the dispatch LP touches the generator buses, not all
// N-1): PTDFColsInto fills dst row i with column cols[i] of the PTDF —
// dst(i, l) = PTDF(l, cols[i]) — paying one solve per requested column
// instead of one per bus. Values agree with PTDFInto to factorization
// roundoff, not bitwise (the full build reads the symmetric counterpart
// of each inverse entry), so the dense backend — whose PTDF is a bitwise
// historical contract — deliberately does not implement it.
type PTDFColser interface {
	PTDFColsInto(dst *mat.Dense, cols []int) error
}

// NewBFactorizer returns the AutoBackend factorizer for the network.
func NewBFactorizer(n *Network) BFactorizer {
	return NewBFactorizerBackend(n, AutoBackend)
}

// NewBFactorizerBackend returns a factorizer with an explicit backend
// choice (benchmarks and the dense/sparse agreement tests).
func NewBFactorizerBackend(n *Network, b Backend) BFactorizer {
	if EffectiveBackend(n, b) == SparseBackend {
		return newSparseBFactorizer(n)
	}
	return newDenseBFactorizer(n)
}

// errNotFactored is returned when PTDFInto runs before a successful Reset.
var errNotFactored = errors.New("grid: factorizer used before a successful Reset")

// buildDATInto fills the L×(N-1) matrix D·Arᵀ for reactances x: row l has
// +1/x_l at the from-bus column and −1/x_l at the to-bus column (skipping
// the slack). The entries and their write order match the historical
// constructions in Network.PTDF and the dispatch engine exactly.
func (n *Network) buildDATInto(dat *mat.Dense, x []float64) {
	s := n.SlackBus - 1
	dat.Zero()
	for l, br := range n.Branches {
		y := 1 / x[l]
		if c := reducedColIndex(br.From-1, s); c >= 0 {
			dat.Set(l, c, y)
		}
		if c := reducedColIndex(br.To-1, s); c >= 0 {
			dat.Set(l, c, -y)
		}
	}
}

// reducedColIndex maps a 0-based bus to its slack-reduced column (-1 at the
// slack bus).
func reducedColIndex(bus, slack int) int {
	switch {
	case bus == slack:
		return -1
	case bus < slack:
		return bus
	default:
		return bus - 1
	}
}

// ---- Dense backend --------------------------------------------------------

type denseBFactorizer struct {
	n  *Network
	x  []float64
	br *mat.Dense
	lu mat.LU
	ok bool
	// PTDF scratch, allocated on first PTDFInto — solve-only callers
	// (dcflow) never pay for it.
	inv        *mat.Dense
	dat        *mat.Dense
	ecol, icol []float64
}

func newDenseBFactorizer(n *Network) *denseBFactorizer {
	nb := n.N()
	return &denseBFactorizer{
		n:  n,
		x:  make([]float64, n.L()),
		br: mat.NewDense(nb-1, nb-1),
	}
}

func (f *denseBFactorizer) Backend() Backend { return DenseBackend }

func (f *denseBFactorizer) Reset(x []float64) error {
	copy(f.x, x)
	f.n.ReducedBInto(x, f.br)
	if err := f.lu.Reset(f.br); err != nil {
		f.ok = false
		return err
	}
	f.ok = true
	return nil
}

func (f *denseBFactorizer) SolveInto(dst, b []float64) []float64 {
	return f.lu.SolveInto(dst, b)
}

func (f *denseBFactorizer) PTDFInto(dst *mat.Dense) error {
	if !f.ok {
		return errNotFactored
	}
	nb1 := f.n.N() - 1
	if f.inv == nil {
		f.inv = mat.NewDense(nb1, nb1)
		f.dat = mat.NewDense(f.n.L(), nb1)
		f.ecol = make([]float64, nb1)
		f.icol = make([]float64, nb1)
	}
	// Invert B_r column by column, then multiply — exactly the historical
	// sequence (mat.Inverse followed by mat.Mul), so dense PTDFs are
	// bitwise identical to the pre-factorizer code.
	for j := 0; j < nb1; j++ {
		for i := range f.ecol {
			f.ecol[i] = 0
		}
		f.ecol[j] = 1
		f.lu.SolveInto(f.icol, f.ecol)
		f.inv.SetCol(j, f.icol)
	}
	f.n.buildDATInto(f.dat, f.x)
	mat.MulInto(dst, f.dat, f.inv)
	return nil
}

// ---- Sparse backend -------------------------------------------------------

type sparseBFactorizer struct {
	n   *Network
	x   []float64
	csc *mat.CSC
	// slots maps each branch to the storage positions of its up-to-four
	// contributions to B_r: (ri,ri), (rj,rj), (ri,rj), (rj,ri); -1 marks a
	// contribution that falls on the slack row/column.
	slots [][4]int
	chol  *mat.SparseChol
	ok    bool
	// PTDF scratch, allocated on first PTDFInto — solve-only callers
	// (dcflow) never pay for it.
	invT *mat.Dense // row j = B_r⁻¹·e_j (B_r is symmetric)
	ecol []float64
	ccol []float64 // PTDFColsInto: one inverse column at a time
}

func newSparseBFactorizer(n *Network) *sparseBFactorizer {
	nb1 := n.N() - 1
	s := n.SlackBus - 1
	var is, js []int
	for _, br := range n.Branches {
		ri := reducedColIndex(br.From-1, s)
		rj := reducedColIndex(br.To-1, s)
		if ri >= 0 {
			is, js = append(is, ri), append(js, ri)
		}
		if rj >= 0 {
			is, js = append(is, rj), append(js, rj)
		}
		if ri >= 0 && rj >= 0 {
			is, js = append(is, ri, rj), append(js, rj, ri)
		}
	}
	csc := mat.NewCSCFromTriplets(nb1, nb1, is, js, make([]float64, len(is)))
	slots := make([][4]int, n.L())
	for l, br := range n.Branches {
		ri := reducedColIndex(br.From-1, s)
		rj := reducedColIndex(br.To-1, s)
		slot := [4]int{-1, -1, -1, -1}
		if ri >= 0 {
			slot[0] = csc.Pos(ri, ri)
		}
		if rj >= 0 {
			slot[1] = csc.Pos(rj, rj)
		}
		if ri >= 0 && rj >= 0 {
			slot[2] = csc.Pos(ri, rj)
			slot[3] = csc.Pos(rj, ri)
		}
		slots[l] = slot
	}
	return &sparseBFactorizer{
		n:     n,
		x:     make([]float64, n.L()),
		csc:   csc,
		slots: slots,
	}
}

func (f *sparseBFactorizer) Backend() Backend { return SparseBackend }

func (f *sparseBFactorizer) Reset(x []float64) error {
	if len(x) != f.n.L() {
		panic("grid: reactance vector length mismatch")
	}
	copy(f.x, x)
	vals := f.csc.Values()
	for i := range vals {
		vals[i] = 0
	}
	for l := range f.n.Branches {
		y := 1 / x[l]
		s := f.slots[l]
		if s[0] >= 0 {
			vals[s[0]] += y
		}
		if s[1] >= 0 {
			vals[s[1]] += y
		}
		if s[2] >= 0 {
			vals[s[2]] -= y
			vals[s[3]] -= y
		}
	}
	var err error
	if f.chol == nil {
		f.chol, err = mat.NewSparseChol(f.csc)
	} else {
		err = f.chol.Refactor(f.csc)
	}
	if err != nil {
		f.ok = false
		return fmt.Errorf("grid: sparse susceptance factorization: %w", err)
	}
	f.ok = true
	return nil
}

func (f *sparseBFactorizer) SolveInto(dst, b []float64) []float64 {
	return f.chol.SolveInto(dst, b)
}

func (f *sparseBFactorizer) PTDFInto(dst *mat.Dense) error {
	if !f.ok {
		return errNotFactored
	}
	// B_r⁻¹ one column per triangular-solve pair; B_r is symmetric, so the
	// solved column j doubles as row j of the inverse and each PTDF row is
	// a scaled difference of two inverse rows:
	//   PTDF(l, :) = (1/x_l)·(B_r⁻¹(ri, :) − B_r⁻¹(rj, :)).
	// This skips the dense L×(N-1)×(N-1) multiplication entirely.
	nb1 := f.n.N() - 1
	if f.invT == nil {
		f.invT = mat.NewDense(nb1, nb1)
		f.ecol = make([]float64, nb1)
	}
	for j := 0; j < nb1; j++ {
		for i := range f.ecol {
			f.ecol[i] = 0
		}
		f.ecol[j] = 1
		f.chol.SolveInto(f.invT.RowView(j), f.ecol)
	}
	for l := range f.n.Branches {
		y := 1 / f.x[l]
		row := dst.RowView(l)
		ri := reducedColIndex(f.n.Branches[l].From-1, f.n.SlackBus-1)
		rj := reducedColIndex(f.n.Branches[l].To-1, f.n.SlackBus-1)
		switch {
		case ri >= 0 && rj >= 0:
			ra, rb := f.invT.RowView(ri), f.invT.RowView(rj)
			for k := range row {
				row[k] = y * (ra[k] - rb[k])
			}
		case ri >= 0:
			ra := f.invT.RowView(ri)
			for k := range row {
				row[k] = y * ra[k]
			}
		default:
			rb := f.invT.RowView(rj)
			for k := range row {
				row[k] = -y * rb[k]
			}
		}
	}
	return nil
}

// PTDFColsInto implements PTDFColser: dst row i gets PTDF column cols[i]
// (length-L branch profile), one triangular-solve pair per requested
// column. With B_r symmetric, B_r⁻¹·e_j is both column and row j of the
// inverse, so PTDF(l, j) = (1/x_l)·((B_r⁻¹e_j)[ri] − (B_r⁻¹e_j)[rj]).
func (f *sparseBFactorizer) PTDFColsInto(dst *mat.Dense, cols []int) error {
	if !f.ok {
		return errNotFactored
	}
	nb1 := f.n.N() - 1
	if f.ccol == nil {
		f.ccol = make([]float64, nb1)
	}
	if f.ecol == nil {
		f.ecol = make([]float64, nb1)
	}
	s := f.n.SlackBus - 1
	for i, j := range cols {
		for k := range f.ecol {
			f.ecol[k] = 0
		}
		f.ecol[j] = 1
		f.chol.SolveInto(f.ccol, f.ecol)
		row := dst.RowView(i)
		for l, br := range f.n.Branches {
			y := 1 / f.x[l]
			ri := reducedColIndex(br.From-1, s)
			rj := reducedColIndex(br.To-1, s)
			switch {
			case ri >= 0 && rj >= 0:
				row[l] = y * (f.ccol[ri] - f.ccol[rj])
			case ri >= 0:
				row[l] = y * f.ccol[ri]
			default:
				row[l] = -y * f.ccol[rj]
			}
		}
	}
	return nil
}
