package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/mat"
)

func TestIncidence(t *testing.T) {
	n := Case4GS()
	a := n.Incidence()
	if a.Rows() != 4 || a.Cols() != 4 {
		t.Fatalf("shape %dx%d", a.Rows(), a.Cols())
	}
	// Branch 1 is 1->2.
	if a.At(0, 0) != 1 || a.At(1, 0) != -1 {
		t.Error("branch 1 incidence wrong")
	}
	// Every column sums to zero.
	for l := 0; l < a.Cols(); l++ {
		var s float64
		for i := 0; i < a.Rows(); i++ {
			s += a.At(i, l)
		}
		if s != 0 {
			t.Errorf("column %d sums to %v", l, s)
		}
	}
}

func TestBMatrixAgainstIncidenceProduct(t *testing.T) {
	// The fast assembly must agree with the definition B = A·D·Aᵀ.
	for _, n := range []*Network{Case4GS(), CaseIEEE14(), CaseIEEE30()} {
		x := n.Reactances()
		direct := n.BMatrix(x)
		a := n.Incidence()
		viaDef := mat.Mul(a, mat.Mul(n.SusceptanceDiag(x), a.T()))
		if !mat.Equal(direct, viaDef, 1e-9) {
			t.Errorf("%s: BMatrix disagrees with A·D·Aᵀ", n.Name)
		}
	}
}

func TestBMatrixRowSumsZero(t *testing.T) {
	n := CaseIEEE14()
	b := n.BMatrix(n.Reactances())
	for i := 0; i < b.Rows(); i++ {
		var s float64
		for j := 0; j < b.Cols(); j++ {
			s += b.At(i, j)
		}
		if math.Abs(s) > 1e-9 {
			t.Errorf("row %d sums to %v, want 0", i, s)
		}
	}
}

func TestReducedBInvertible(t *testing.T) {
	for _, n := range []*Network{Case4GS(), CaseIEEE14(), CaseIEEE30()} {
		rb := n.ReducedB(n.Reactances())
		if rb.Rows() != n.N()-1 {
			t.Fatalf("%s: reduced B is %dx%d", n.Name, rb.Rows(), rb.Cols())
		}
		if _, err := mat.Inverse(rb); err != nil {
			t.Errorf("%s: reduced B is singular: %v", n.Name, err)
		}
	}
}

func TestMeasurementMatrixShapeAndRank(t *testing.T) {
	for _, n := range []*Network{Case4GS(), CaseIEEE14(), CaseIEEE30()} {
		h := n.MeasurementMatrix(n.Reactances())
		if h.Rows() != n.M() || h.Cols() != n.N()-1 {
			t.Fatalf("%s: H is %dx%d, want %dx%d", n.Name, h.Rows(), h.Cols(), n.M(), n.N()-1)
		}
		if r := mat.Rank(h, 0); r != n.N()-1 {
			t.Errorf("%s: rank(H) = %d, want %d", n.Name, r, n.N()-1)
		}
	}
}

func TestMeasurementMatrixConsistentWithFlows(t *testing.T) {
	// H must map angles to [p; f; -f]: verify against a manual DC solution.
	n := Case4GS()
	x := n.Reactances()
	rb := n.ReducedB(x)
	pMW := n.InjectionsMW([]float64{350, 150})
	pPU := n.ReduceVec(mat.ScaleVec(1/n.BaseMVA, pMW))
	thetaRed, err := mat.Solve(rb, pPU)
	if err != nil {
		t.Fatal(err)
	}
	z := mat.MulVec(n.MeasurementMatrix(x), thetaRed)
	// First N entries are injections (per-unit).
	for i := 0; i < n.N(); i++ {
		if math.Abs(z[i]-pMW[i]/n.BaseMVA) > 1e-9 {
			t.Errorf("injection %d: z = %v, want %v", i, z[i], pMW[i]/n.BaseMVA)
		}
	}
	// Forward and reverse flow blocks must be negatives of each other.
	for l := 0; l < n.L(); l++ {
		if math.Abs(z[n.N()+l]+z[n.N()+n.L()+l]) > 1e-12 {
			t.Errorf("flow block mismatch at branch %d", l)
		}
	}
}

func TestPTDFReproducesFlows(t *testing.T) {
	// PTDF · p must equal the flows from the angle-based solution.
	for _, n := range []*Network{Case4GS(), CaseIEEE14()} {
		x := n.Reactances()
		ptdf, err := n.PTDF(x)
		if err != nil {
			t.Fatal(err)
		}
		// Random balanced injection.
		rng := rand.New(rand.NewSource(42))
		p := make([]float64, n.N())
		var sum float64
		for i := 0; i < n.N()-1; i++ {
			p[i] = rng.NormFloat64()
			sum += p[i]
		}
		p[n.N()-1] = -sum

		red := n.ReduceVec(p)
		flowsPTDF := mat.MulVec(ptdf, red)

		thetaRed, err := mat.Solve(n.ReducedB(x), red)
		if err != nil {
			t.Fatal(err)
		}
		theta := n.ExpandVec(thetaRed, 0)
		for l, br := range n.Branches {
			want := (theta[br.From-1] - theta[br.To-1]) / x[l]
			if math.Abs(flowsPTDF[l]-want) > 1e-9 {
				t.Errorf("%s: branch %d PTDF flow %v, want %v", n.Name, l, flowsPTDF[l], want)
			}
		}
	}
}

func TestReduceExpandVec(t *testing.T) {
	n := CaseIEEE14()
	v := make([]float64, n.N())
	for i := range v {
		v[i] = float64(i + 1)
	}
	red := n.ReduceVec(v)
	if len(red) != n.N()-1 {
		t.Fatalf("reduced length %d", len(red))
	}
	back := n.ExpandVec(red, v[n.SlackBus-1])
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("round trip failed at %d: %v != %v", i, back[i], v[i])
		}
	}
}

func TestReduceVecNonFirstSlack(t *testing.T) {
	n := validNet()
	n.SlackBus = 2
	red := n.ReduceVec([]float64{10, 20})
	if len(red) != 1 || red[0] != 10 {
		t.Fatalf("ReduceVec = %v, want [10]", red)
	}
	back := n.ExpandVec(red, 99)
	if back[0] != 10 || back[1] != 99 {
		t.Fatalf("ExpandVec = %v", back)
	}
}

// Property: for random reactance settings within D-FACTS bounds, H keeps
// full column rank and B stays symmetric.
func TestQuickMatrixInvariants(t *testing.T) {
	n := CaseIEEE14()
	lo, hi := n.DFACTSBounds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		x := n.ExpandDFACTS(xd)
		b := n.BMatrix(x)
		for i := 0; i < b.Rows(); i++ {
			for j := i + 1; j < b.Cols(); j++ {
				if math.Abs(b.At(i, j)-b.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		h := n.MeasurementMatrix(x)
		return mat.Rank(h, 0) == n.N()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMeasurementMatrixIntoMatches: the buffered builders must reproduce
// MeasurementMatrix bitwise (the injection block is accumulated per branch
// in the same order BMatrix sums it).
func TestMeasurementMatrixIntoMatches(t *testing.T) {
	for _, n := range []*Network{Case4GS(), CaseIEEE14(), CaseIEEE30()} {
		x := n.Reactances()
		for _, i := range n.DFACTSIndices() {
			x[i] = n.Branches[i].XMin // push devices off nominal
		}
		want := n.MeasurementMatrix(x)

		got := mat.NewDense(n.M(), n.N()-1)
		// Poison the buffer to catch missing zeroing.
		for i := 0; i < got.Rows(); i++ {
			for j := 0; j < got.Cols(); j++ {
				got.Set(i, j, 999)
			}
		}
		n.MeasurementMatrixInto(x, got)
		for i := 0; i < want.Rows(); i++ {
			for j := 0; j < want.Cols(); j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("%s: H[%d][%d] = %v, want %v", n.Name, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}

		ht := mat.NewDense(n.N()-1, n.M())
		n.MeasurementMatrixTInto(x, ht)
		for i := 0; i < want.Rows(); i++ {
			for j := 0; j < want.Cols(); j++ {
				if ht.At(j, i) != want.At(i, j) {
					t.Fatalf("%s: Hᵀ[%d][%d] = %v, want %v", n.Name, j, i, ht.At(j, i), want.At(i, j))
				}
			}
		}
	}
}

// TestReducedBIntoMatches checks the buffered reduced susceptance builder.
func TestReducedBIntoMatches(t *testing.T) {
	for _, n := range []*Network{Case4GS(), CaseIEEE14(), CaseIEEE30()} {
		x := n.Reactances()
		want := n.ReducedB(x)
		got := mat.NewDense(n.N()-1, n.N()-1)
		got.Set(0, 0, 123) // poison
		n.ReducedBInto(x, got)
		if !mat.Equal(want, got, 0) {
			t.Fatalf("%s: ReducedBInto differs from ReducedB", n.Name)
		}
	}
}

// TestExpandDFACTSInto checks the buffered expansion against the
// allocating form and the device ordering.
func TestExpandDFACTSInto(t *testing.T) {
	n := CaseIEEE14()
	idx := n.DFACTSIndices()
	xd := make([]float64, len(idx))
	for k := range xd {
		xd[k] = 0.01 * float64(k+1)
	}
	want := n.ExpandDFACTS(xd)
	dst := make([]float64, n.L())
	n.ExpandDFACTSInto(xd, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

// TestGammaReducedPreservesInnerProducts checks the exactness argument
// behind MeasurementMatrixTGammaInto: the Gram matrix of the reduced
// columns [p; √2·f] must equal HᵀH, because principal angles (γ) depend on
// the column sets only through these inner products.
func TestGammaReducedPreservesInnerProducts(t *testing.T) {
	n := CaseIEEE14()
	x := n.Reactances()
	h := n.MeasurementMatrix(x)
	red := mat.NewDense(n.N()-1, n.GammaAmbient())
	n.MeasurementMatrixTGammaInto(x, red)
	states := n.N() - 1
	for a := 0; a < states; a++ {
		for b := a; b < states; b++ {
			var full float64
			for i := 0; i < n.M(); i++ {
				full += h.At(i, a) * h.At(i, b)
			}
			got := mat.Dot(red.RowView(a), red.RowView(b))
			if math.Abs(got-full) > 1e-12*(1+math.Abs(full)) {
				t.Fatalf("gram(%d,%d): reduced %.15g vs full %.15g", a, b, got, full)
			}
		}
	}
}
