package grid

// CaseIEEE14 returns the IEEE 14-bus system configured exactly as in the
// paper's evaluation (Section VII-A):
//
//   - topology, branch reactances and bus loads from the MATPOWER case14
//     file;
//   - generators at buses 1, 2, 3, 6, 8 with the paper's Table-IV limits
//     (300, 50, 30, 50, 20) MW and linear costs (20, 30, 40, 50, 35) $/MWh;
//   - D-FACTS devices on branches L_D = {1, 5, 9, 11, 17, 19} with a ±50%
//     reactance range (ηmax = 0.5);
//   - branch flow limits of 160 MW on branch 1 and 60 MW elsewhere.
//
// Bus 1 is the angle reference.
func CaseIEEE14() *Network {
	const etaMax = 0.5
	dfacts := map[int]bool{1: true, 5: true, 9: true, 11: true, 17: true, 19: true}

	type bdata struct {
		from, to int
		x        float64
	}
	branches := []bdata{
		{1, 2, 0.05917},   // 1
		{1, 5, 0.22304},   // 2
		{2, 3, 0.19797},   // 3
		{2, 4, 0.17632},   // 4
		{2, 5, 0.17388},   // 5
		{3, 4, 0.17103},   // 6
		{4, 5, 0.04211},   // 7
		{4, 7, 0.20912},   // 8
		{4, 9, 0.55618},   // 9
		{5, 6, 0.25202},   // 10
		{6, 11, 0.19890},  // 11
		{6, 12, 0.25581},  // 12
		{6, 13, 0.13027},  // 13
		{7, 8, 0.17615},   // 14
		{7, 9, 0.11001},   // 15
		{9, 10, 0.08450},  // 16
		{9, 14, 0.27038},  // 17
		{10, 11, 0.19207}, // 18
		{12, 13, 0.19988}, // 19
		{13, 14, 0.34802}, // 20
	}
	brs := make([]Branch, len(branches))
	for i, b := range branches {
		limit := 60.0
		if i == 0 {
			limit = 160.0
		}
		br := Branch{From: b.from, To: b.to, X: b.x, LimitMW: limit, XMin: b.x, XMax: b.x}
		if dfacts[i+1] {
			br.HasDFACTS = true
			br.XMin = (1 - etaMax) * b.x
			br.XMax = (1 + etaMax) * b.x
		}
		brs[i] = br
	}

	loads := []float64{0, 21.7, 94.2, 47.8, 7.6, 11.2, 0, 0, 29.5, 9.0, 3.5, 6.1, 13.5, 14.9}
	buses := make([]Bus, len(loads))
	for i, l := range loads {
		buses[i] = Bus{Index: i + 1, LoadMW: l}
	}

	return &Network{
		Name:     "ieee14",
		BaseMVA:  100,
		SlackBus: 1,
		Buses:    buses,
		Branches: brs,
		Gens: []Generator{
			{Bus: 1, CostPerMWh: 20, MinMW: 0, MaxMW: 300},
			{Bus: 2, CostPerMWh: 30, MinMW: 0, MaxMW: 50},
			{Bus: 3, CostPerMWh: 40, MinMW: 0, MaxMW: 30},
			{Bus: 6, CostPerMWh: 50, MinMW: 0, MaxMW: 50},
			{Bus: 8, CostPerMWh: 35, MinMW: 0, MaxMW: 20},
		},
	}
}
