package grid

import (
	"math"

	"gridmtd/internal/mat"
)

// GammaSketchOperands returns the topology-fixed operands of the γ-sketch
// backend's structural factorization. In the reduced γ-equivalent
// representation (see MeasurementMatrixTGammaInto) every candidate column
// matrix factors as B(x) = Ĉ·D(x)·E with
//
//	Ĉ = [A; √2·I]  ((N+L)×L, A the full bus-branch incidence),
//	D(x) = diag(1/x_l),
//	E  = Ãᵀ        (L×(N−1), the slack-reduced incidence transpose),
//
// so B(x₁)ᵀB(x₂) = Eᵀ·D₁·G·D₂·E with the sparse Gram kernel
// G = ĈᵀĈ = AᵀA + 2I. The method returns Eᵀ in CSC form ((N−1)×L: column l
// holds branch l's ±1 reduced-incidence entries — the row-contiguous layout
// the sketch's scatter wants) and G (L×L). Both depend only on the
// topology; one pair serves every reactance vector of the network.
func (n *Network) GammaSketchOperands() (et, g *mat.CSC) {
	nb1 := n.N() - 1
	s := n.SlackBus - 1
	nl := n.L()

	// Eᵀ: entry (reducedCol(bus), branch) = ±1.
	var eis, ejs []int
	var evs []float64
	for l, br := range n.Branches {
		if c := reducedColIndex(br.From-1, s); c >= 0 {
			eis, ejs, evs = append(eis, c), append(ejs, l), append(evs, 1)
		}
		if c := reducedColIndex(br.To-1, s); c >= 0 {
			eis, ejs, evs = append(eis, c), append(ejs, l), append(evs, -1)
		}
	}
	et = mat.NewCSCFromTriplets(nb1, nl, eis, ejs, evs)

	// G = AᵀA + 2I: (AᵀA)_{lm} sums a_bl·a_bm over the buses both branches
	// touch (full incidence, slack included), and the 2I is the √2-scaled
	// flow block's contribution.
	inc := make([][]int, n.N())      // incident branches per bus
	sign := make([][]float64, n.N()) // ±1 orientation per incidence
	for l, br := range n.Branches {
		inc[br.From-1] = append(inc[br.From-1], l)
		sign[br.From-1] = append(sign[br.From-1], 1)
		inc[br.To-1] = append(inc[br.To-1], l)
		sign[br.To-1] = append(sign[br.To-1], -1)
	}
	var gis, gjs []int
	var gvs []float64
	for b := range inc {
		for i, li := range inc[b] {
			for j, lj := range inc[b] {
				gis, gjs = append(gis, li), append(gjs, lj)
				gvs = append(gvs, sign[b][i]*sign[b][j])
			}
		}
	}
	sqrt2sq := math.Sqrt2 * math.Sqrt2 // the flow rows carry √2 exactly as built
	for l := 0; l < nl; l++ {
		gis, gjs = append(gis, l), append(gjs, l)
		gvs = append(gvs, sqrt2sq)
	}
	g = mat.NewCSCFromTriplets(nl, nl, gis, gjs, gvs)
	return et, g
}
