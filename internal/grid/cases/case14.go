package cases

// ieee14 is the IEEE 14-bus system configured exactly as in the paper's
// evaluation (Section VII-A):
//
//   - topology, branch reactances and bus loads from the MATPOWER case14
//     file;
//   - generators at buses 1, 2, 3, 6, 8 with the paper's Table-IV limits
//     (300, 50, 30, 50, 20) MW and linear costs (20, 30, 40, 50, 35) $/MWh;
//   - D-FACTS devices on branches L_D = {1, 5, 9, 11, 17, 19} with a ±50%
//     reactance range (ηmax = 0.5);
//   - branch flow limits of 160 MW on branch 1 and 60 MW elsewhere.
//
// Bus 1 is the angle reference.
func init() {
	Register(&Spec{
		Name:     "ieee14",
		Aliases:  []string{"14bus", "case14"},
		Title:    "IEEE 14-bus system with the paper's Table-IV economics and D-FACTS set",
		BaseMVA:  100,
		SlackBus: 1,
		LoadsMW:  []float64{0, 21.7, 94.2, 47.8, 7.6, 11.2, 0, 0, 29.5, 9.0, 3.5, 6.1, 13.5, 14.9},
		Branches: []Branch{
			{From: 1, To: 2, X: 0.05917, LimitMW: 160},  // 1
			{From: 1, To: 5, X: 0.22304, LimitMW: 60},   // 2
			{From: 2, To: 3, X: 0.19797, LimitMW: 60},   // 3
			{From: 2, To: 4, X: 0.17632, LimitMW: 60},   // 4
			{From: 2, To: 5, X: 0.17388, LimitMW: 60},   // 5
			{From: 3, To: 4, X: 0.17103, LimitMW: 60},   // 6
			{From: 4, To: 5, X: 0.04211, LimitMW: 60},   // 7
			{From: 4, To: 7, X: 0.20912, LimitMW: 60},   // 8
			{From: 4, To: 9, X: 0.55618, LimitMW: 60},   // 9
			{From: 5, To: 6, X: 0.25202, LimitMW: 60},   // 10
			{From: 6, To: 11, X: 0.19890, LimitMW: 60},  // 11
			{From: 6, To: 12, X: 0.25581, LimitMW: 60},  // 12
			{From: 6, To: 13, X: 0.13027, LimitMW: 60},  // 13
			{From: 7, To: 8, X: 0.17615, LimitMW: 60},   // 14
			{From: 7, To: 9, X: 0.11001, LimitMW: 60},   // 15
			{From: 9, To: 10, X: 0.08450, LimitMW: 60},  // 16
			{From: 9, To: 14, X: 0.27038, LimitMW: 60},  // 17
			{From: 10, To: 11, X: 0.19207, LimitMW: 60}, // 18
			{From: 12, To: 13, X: 0.19988, LimitMW: 60}, // 19
			{From: 13, To: 14, X: 0.34802, LimitMW: 60}, // 20
		},
		Gens: []Gen{
			{Bus: 1, CostPerMWh: 20, MinMW: 0, MaxMW: 300},
			{Bus: 2, CostPerMWh: 30, MinMW: 0, MaxMW: 50},
			{Bus: 3, CostPerMWh: 40, MinMW: 0, MaxMW: 30},
			{Bus: 6, CostPerMWh: 50, MinMW: 0, MaxMW: 50},
			{Bus: 8, CostPerMWh: 35, MinMW: 0, MaxMW: 20},
		},
		DFACTS: []int{1, 5, 9, 11, 17, 19},
		EtaMax: 0.5,
	})
}
