// Package cases holds the embedded test-case descriptions of the MTD
// reproduction as pure data, in the spirit of MATPOWER case files: bus
// loads, branch reactances and ratings, generators with linear costs, and
// the D-FACTS deployment the paper's defender controls. The package is
// deliberately free of behavior — it depends on nothing and nothing
// numerical depends on it — so adding a case is a data-entry exercise and
// the grid package owns the one conversion from a Spec to a live Network.
//
// The registry maps case names (and their aliases) to Specs; grid.Cases and
// grid.CaseByName are the consumer-facing views.
package cases

import (
	"sort"
	"strings"
)

// Branch is one transmission line of a case description.
type Branch struct {
	// From and To are 1-based bus indices.
	From, To int
	// X is the branch reactance in per-unit.
	X float64
	// LimitMW is the thermal rating in MW; 0 means unlimited.
	LimitMW float64
}

// Gen is one dispatchable generator of a case description.
type Gen struct {
	// Bus is the 1-based bus the generator connects to.
	Bus int
	// CostPerMWh is the linear cost coefficient in $/MWh.
	CostPerMWh float64
	// MinMW and MaxMW bound the dispatch.
	MinMW, MaxMW float64
}

// Spec is a complete case description.
type Spec struct {
	// Name is the registry key (e.g. "ieee118").
	Name string
	// Aliases are alternative lookup names ("118bus", "case118").
	Aliases []string
	// Title is a one-line description for case listings.
	Title string
	// BaseMVA is the per-unit power base.
	BaseMVA float64
	// SlackBus is the 1-based angle-reference bus.
	SlackBus int
	// LoadsMW is the real-power demand per bus; its length is the bus count.
	LoadsMW []float64
	// Branches lists the transmission lines.
	Branches []Branch
	// Gens lists the generators.
	Gens []Gen
	// DFACTS lists the 1-based branch numbers carrying D-FACTS devices.
	DFACTS []int
	// EtaMax is the relative reactance range of the D-FACTS devices: each
	// device can set its branch reactance within [1−EtaMax, 1+EtaMax]·x.
	EtaMax float64
}

// N returns the number of buses.
func (s *Spec) N() int { return len(s.LoadsMW) }

// L returns the number of branches.
func (s *Spec) L() int { return len(s.Branches) }

// HasDFACTS reports whether the 1-based branch number carries a D-FACTS
// device.
func (s *Spec) HasDFACTS(branch int) bool {
	for _, b := range s.DFACTS {
		if b == branch {
			return true
		}
	}
	return false
}

var (
	registry = map[string]*Spec{}
	byAlias  = map[string]*Spec{}
)

// Register adds a spec to the registry. It panics on duplicate names or
// aliases (the registry is populated from init functions only).
func Register(s *Spec) {
	key := strings.ToLower(s.Name)
	if _, dup := byAlias[key]; dup {
		panic("cases: duplicate case name " + s.Name)
	}
	registry[key] = s
	byAlias[key] = s
	for _, a := range s.Aliases {
		ak := strings.ToLower(a)
		if _, dup := byAlias[ak]; dup {
			panic("cases: duplicate case alias " + a)
		}
		byAlias[ak] = s
	}
}

// ByName looks up a spec by name or alias (case-insensitive).
func ByName(name string) (*Spec, bool) {
	s, ok := byAlias[strings.ToLower(name)]
	return s, ok
}

// All returns the registered specs ordered by bus count, then name — the
// order case listings print in.
func All() []*Spec {
	out := make([]*Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N() != out[j].N() {
			return out[i].N() < out[j].N()
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the primary names of all registered cases, in All order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
