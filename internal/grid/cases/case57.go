package cases

// ieee57 is the IEEE 57-bus test system (MATPOWER case57 lineage), the
// first case beyond the paper's own evaluation sizes. Reproduction choices,
// mirroring the 30-bus conventions:
//
//   - branch reactances and bus loads follow the standard case data; the
//     two parallel-circuit pairs of the original (4-18 and 24-25) are
//     merged into single equivalent branches (x_eq = x1·x2/(x1+x2)) because
//     the Network model — like the paper — treats a branch as a unique
//     bus pair;
//   - the original's quadratic generator costs are linearized at half
//     capacity (c = c1 + c2·Pmax), as for the 30-bus case;
//   - the case publishes no line ratings (rateA = 0); the limits here are
//     calibrated from the rating-free base-case OPF flows (1.1×|f|,
//     floored at 12 MW and rounded up to 5 MW) so the cost-benefit
//     machinery sees a realistically congested system — see
//     cmd/calibcase, which regenerates them;
//   - the D-FACTS set is 12 branches spread across the network with the
//     paper's ηmax = 0.5, chosen as for the 30-bus case (the paper
//     specifies no placement beyond 14 buses).
//
// Bus 1 is the angle reference.
func init() {
	Register(&Spec{
		Name:     "ieee57",
		Aliases:  []string{"57bus", "case57"},
		Title:    "IEEE 57-bus system (parallel circuits merged, calibrated ratings)",
		BaseMVA:  100,
		SlackBus: 1,
		LoadsMW: []float64{
			55, 3, 41, 0, 13, 75, 0, 150, 121, 5,
			0, 377, 18, 10.5, 22, 43, 42, 27.2, 3.3, 2.3,
			0, 0, 6.3, 0, 6.3, 0, 9.3, 4.6, 17, 3.6,
			5.8, 1.6, 3.8, 0, 6, 0, 0, 14, 0, 0,
			6.3, 7.1, 2, 12, 0, 0, 29.7, 0, 18, 21,
			18, 4.9, 20, 4.1, 6.8, 7.6, 6.7,
		},
		Branches: []Branch{
			{From: 1, To: 2, X: 0.028, LimitMW: caseLimit57[0]},      // 1
			{From: 2, To: 3, X: 0.085, LimitMW: caseLimit57[1]},      // 2
			{From: 3, To: 4, X: 0.0366, LimitMW: caseLimit57[2]},     // 3
			{From: 4, To: 5, X: 0.132, LimitMW: caseLimit57[3]},      // 4
			{From: 4, To: 6, X: 0.148, LimitMW: caseLimit57[4]},      // 5
			{From: 6, To: 7, X: 0.102, LimitMW: caseLimit57[5]},      // 6
			{From: 6, To: 8, X: 0.173, LimitMW: caseLimit57[6]},      // 7
			{From: 8, To: 9, X: 0.0505, LimitMW: caseLimit57[7]},     // 8
			{From: 9, To: 10, X: 0.1679, LimitMW: caseLimit57[8]},    // 9
			{From: 9, To: 11, X: 0.0848, LimitMW: caseLimit57[9]},    // 10
			{From: 9, To: 12, X: 0.295, LimitMW: caseLimit57[10]},    // 11
			{From: 9, To: 13, X: 0.158, LimitMW: caseLimit57[11]},    // 12
			{From: 13, To: 14, X: 0.0434, LimitMW: caseLimit57[12]},  // 13
			{From: 13, To: 15, X: 0.0869, LimitMW: caseLimit57[13]},  // 14
			{From: 1, To: 15, X: 0.091, LimitMW: caseLimit57[14]},    // 15
			{From: 1, To: 16, X: 0.206, LimitMW: caseLimit57[15]},    // 16
			{From: 1, To: 17, X: 0.108, LimitMW: caseLimit57[16]},    // 17
			{From: 3, To: 15, X: 0.053, LimitMW: caseLimit57[17]},    // 18
			{From: 4, To: 18, X: 0.24228, LimitMW: caseLimit57[18]},  // 19 (merged parallel pair)
			{From: 5, To: 6, X: 0.0641, LimitMW: caseLimit57[19]},    // 20
			{From: 7, To: 8, X: 0.0712, LimitMW: caseLimit57[20]},    // 21
			{From: 10, To: 12, X: 0.1262, LimitMW: caseLimit57[21]},  // 22
			{From: 11, To: 13, X: 0.0732, LimitMW: caseLimit57[22]},  // 23
			{From: 12, To: 13, X: 0.058, LimitMW: caseLimit57[23]},   // 24
			{From: 12, To: 16, X: 0.0813, LimitMW: caseLimit57[24]},  // 25
			{From: 12, To: 17, X: 0.179, LimitMW: caseLimit57[25]},   // 26
			{From: 14, To: 15, X: 0.0547, LimitMW: caseLimit57[26]},  // 27
			{From: 18, To: 19, X: 0.685, LimitMW: caseLimit57[27]},   // 28
			{From: 19, To: 20, X: 0.434, LimitMW: caseLimit57[28]},   // 29
			{From: 21, To: 20, X: 0.7767, LimitMW: caseLimit57[29]},  // 30
			{From: 21, To: 22, X: 0.117, LimitMW: caseLimit57[30]},   // 31
			{From: 22, To: 23, X: 0.0152, LimitMW: caseLimit57[31]},  // 32
			{From: 23, To: 24, X: 0.256, LimitMW: caseLimit57[32]},   // 33
			{From: 24, To: 25, X: 0.60276, LimitMW: caseLimit57[33]}, // 34 (merged parallel pair)
			{From: 24, To: 26, X: 0.0473, LimitMW: caseLimit57[34]},  // 35
			{From: 26, To: 27, X: 0.254, LimitMW: caseLimit57[35]},   // 36
			{From: 27, To: 28, X: 0.0954, LimitMW: caseLimit57[36]},  // 37
			{From: 28, To: 29, X: 0.0587, LimitMW: caseLimit57[37]},  // 38
			{From: 7, To: 29, X: 0.0648, LimitMW: caseLimit57[38]},   // 39
			{From: 25, To: 30, X: 0.202, LimitMW: caseLimit57[39]},   // 40
			{From: 30, To: 31, X: 0.497, LimitMW: caseLimit57[40]},   // 41
			{From: 31, To: 32, X: 0.755, LimitMW: caseLimit57[41]},   // 42
			{From: 32, To: 33, X: 0.036, LimitMW: caseLimit57[42]},   // 43
			{From: 34, To: 32, X: 0.953, LimitMW: caseLimit57[43]},   // 44
			{From: 34, To: 35, X: 0.078, LimitMW: caseLimit57[44]},   // 45
			{From: 35, To: 36, X: 0.0537, LimitMW: caseLimit57[45]},  // 46
			{From: 36, To: 37, X: 0.0366, LimitMW: caseLimit57[46]},  // 47
			{From: 37, To: 38, X: 0.1009, LimitMW: caseLimit57[47]},  // 48
			{From: 37, To: 39, X: 0.0379, LimitMW: caseLimit57[48]},  // 49
			{From: 36, To: 40, X: 0.0466, LimitMW: caseLimit57[49]},  // 50
			{From: 22, To: 38, X: 0.0295, LimitMW: caseLimit57[50]},  // 51
			{From: 11, To: 41, X: 0.749, LimitMW: caseLimit57[51]},   // 52
			{From: 41, To: 42, X: 0.352, LimitMW: caseLimit57[52]},   // 53
			{From: 41, To: 43, X: 0.412, LimitMW: caseLimit57[53]},   // 54
			{From: 38, To: 44, X: 0.0585, LimitMW: caseLimit57[54]},  // 55
			{From: 15, To: 45, X: 0.1042, LimitMW: caseLimit57[55]},  // 56
			{From: 14, To: 46, X: 0.0735, LimitMW: caseLimit57[56]},  // 57
			{From: 46, To: 47, X: 0.068, LimitMW: caseLimit57[57]},   // 58
			{From: 47, To: 48, X: 0.0233, LimitMW: caseLimit57[58]},  // 59
			{From: 48, To: 49, X: 0.129, LimitMW: caseLimit57[59]},   // 60
			{From: 49, To: 50, X: 0.128, LimitMW: caseLimit57[60]},   // 61
			{From: 50, To: 51, X: 0.22, LimitMW: caseLimit57[61]},    // 62
			{From: 10, To: 51, X: 0.0712, LimitMW: caseLimit57[62]},  // 63
			{From: 13, To: 49, X: 0.191, LimitMW: caseLimit57[63]},   // 64
			{From: 29, To: 52, X: 0.187, LimitMW: caseLimit57[64]},   // 65
			{From: 52, To: 53, X: 0.0984, LimitMW: caseLimit57[65]},  // 66
			{From: 53, To: 54, X: 0.232, LimitMW: caseLimit57[66]},   // 67
			{From: 54, To: 55, X: 0.2265, LimitMW: caseLimit57[67]},  // 68
			{From: 11, To: 43, X: 0.153, LimitMW: caseLimit57[68]},   // 69
			{From: 44, To: 45, X: 0.1242, LimitMW: caseLimit57[69]},  // 70
			{From: 40, To: 56, X: 1.195, LimitMW: caseLimit57[70]},   // 71
			{From: 56, To: 41, X: 0.549, LimitMW: caseLimit57[71]},   // 72
			{From: 56, To: 42, X: 0.354, LimitMW: caseLimit57[72]},   // 73
			{From: 39, To: 57, X: 1.355, LimitMW: caseLimit57[73]},   // 74
			{From: 57, To: 56, X: 0.26, LimitMW: caseLimit57[74]},    // 75
			{From: 38, To: 49, X: 0.177, LimitMW: caseLimit57[75]},   // 76
			{From: 38, To: 48, X: 0.0482, LimitMW: caseLimit57[76]},  // 77
			{From: 9, To: 55, X: 0.1205, LimitMW: caseLimit57[77]},   // 78
		},
		Gens: []Gen{
			{Bus: 1, CostPerMWh: 64.68, MinMW: 0, MaxMW: 575.88},
			{Bus: 2, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 3, CostPerMWh: 55, MinMW: 0, MaxMW: 140},
			{Bus: 6, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 8, CostPerMWh: 32.22, MinMW: 0, MaxMW: 550},
			{Bus: 9, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 12, CostPerMWh: 33.23, MinMW: 0, MaxMW: 410},
		},
		DFACTS: []int{1, 8, 15, 22, 27, 32, 37, 43, 48, 55, 61, 66},
		EtaMax: 0.5,
	})
}

// caseLimit57 holds the calibrated branch ratings (MW) in branch order:
// headroom 1.10 over the rating-free OPF flows at nominal reactances,
// floor 12 MW, rounded up to 5 MW. Generated by cmd/calibcase.
var caseLimit57 = [78]float64{
	90, 15, 75, 45, 65, 30, 65, 265, 55, 80,
	35, 65, 45, 20, 15, 15, 25, 35, 35, 60,
	115, 15, 50, 15, 45, 25, 15, 15, 15, 15,
	15, 15, 15, 20, 30, 30, 40, 45, 85, 15,
	15, 15, 15, 15, 15, 15, 15, 20, 15, 15,
	15, 15, 15, 20, 15, 25, 40, 40, 15, 15,
	15, 25, 45, 35, 25, 20, 15, 15, 20, 25,
	15, 15, 15, 15, 15, 15, 15, 20,
}
