package cases

// Calibrated flow limits for the 4-bus example. The paper omits them; these
// values minimize the deviation of the reproduced Table III dispatch from
// the published one (RMSE 0.35 MW across the four perturbations;
// cmd/calib4bus re-runs the calibration sweep).
const (
	Case4GSLine1LimitMW = 127.7
	Case4GSLine2LimitMW = 173.5
)

// case4gs is the 4-bus test system of the paper's motivating example
// (Section IV-B): MATPOWER's case4gs (Grainger & Stevenson) with the
// reverse-engineered Table II/III economics. The paper does not list the
// generator costs and flow limits it used; linear costs c1 = 20,
// c2 = 30 $/MWh reproduce every cost in the tables exactly (and reveal that
// Table III's "1.595e4" for Δx2 is a typo for 1.1595e4), generator 1
// capacity 350 MW gives the pre-perturbation dispatch (350, 150), and the
// flow limits on branches 1 and 2 are calibrated so the post-perturbation
// dispatches match Table III (see EXPERIMENTS.md). All four branches carry
// D-FACTS with a ±50% range so the example's ±20% perturbations stay in
// range.
func init() {
	Register(&Spec{
		Name:     "case4gs",
		Aliases:  []string{"4bus"},
		Title:    "4-bus motivating example (MATPOWER case4gs, Table II/III economics)",
		BaseMVA:  100,
		SlackBus: 1,
		LoadsMW:  []float64{50, 170, 200, 80},
		Branches: []Branch{
			{From: 1, To: 2, X: 0.0504, LimitMW: Case4GSLine1LimitMW},
			{From: 1, To: 3, X: 0.0372, LimitMW: Case4GSLine2LimitMW},
			{From: 2, To: 4, X: 0.0372, LimitMW: 250},
			{From: 3, To: 4, X: 0.0636, LimitMW: 250},
		},
		Gens: []Gen{
			{Bus: 1, CostPerMWh: 20, MinMW: 0, MaxMW: 350},
			{Bus: 4, CostPerMWh: 30, MinMW: 0, MaxMW: 318},
		},
		DFACTS: []int{1, 2, 3, 4},
		EtaMax: 0.5,
	})
}
