package cases

// ieee118 is the IEEE 118-bus test system — the evaluation grid of the MTD
// survey (Lakshminarayana et al., 2024) and the game-theoretic follow-up
// (Lakshminarayana/Belmega/Poor, 2020) — and the case the sparse
// linear-algebra backend exists for. Reproduction choices, mirroring the
// 30-/57-bus conventions:
//
//   - branch reactances and bus loads follow the standard case data; the
//     nine parallel-circuit pairs of the original (42-49, 49-54, 56-59,
//     49-66, 77-80, 89-90, 89-92 among them) are merged into single
//     equivalent branches (x_eq = x1·x2/(x1+x2)) because the Network model
//     — like the paper — treats a branch as a unique bus pair;
//   - the original's quadratic generator costs are linearized at half
//     capacity (c = c1 + c2·Pmax); the 35 synchronous condensers keep
//     their 100 MW capability with the condenser cost (41 $/MWh);
//   - the case publishes no line ratings (rateA = 0); the limits here are
//     calibrated from the rating-free base-case OPF flows (1.1×|f|,
//     floored at 12 MW and rounded up to 5 MW) so the cost-benefit
//     machinery sees a realistically congested system — see cmd/calibcase,
//     which regenerates them;
//   - the D-FACTS set is 12 branches spread across the three areas of the
//     network with the paper's ηmax = 0.5 (the paper specifies no
//     placement beyond 14 buses; 12 devices keeps the max-γ corner poll
//     exact).
//
// Bus 69 — the largest unit's bus and the customary reference for this
// system — is the angle reference.
func init() {
	Register(&Spec{
		Name:     "ieee118",
		Aliases:  []string{"118bus", "case118"},
		Title:    "IEEE 118-bus system (parallel circuits merged, calibrated ratings)",
		BaseMVA:  100,
		SlackBus: 69,
		LoadsMW: []float64{
			51, 20, 39, 39, 0, 52, 19, 28, 0, 0, // 1-10
			70, 47, 34, 14, 90, 25, 11, 60, 45, 18, // 11-20
			14, 10, 7, 13, 0, 0, 71, 17, 24, 0, // 21-30
			43, 59, 23, 59, 33, 31, 0, 0, 27, 66, // 31-40
			37, 96, 18, 16, 53, 28, 34, 20, 87, 17, // 41-50
			17, 18, 23, 113, 63, 84, 12, 12, 277, 78, // 51-60
			0, 77, 0, 0, 0, 39, 28, 0, 0, 66, // 61-70
			0, 12, 6, 68, 47, 68, 61, 71, 39, 130, // 71-80
			0, 54, 20, 11, 24, 21, 0, 48, 0, 163, // 81-90
			10, 65, 12, 30, 42, 38, 15, 34, 42, 37, // 91-100
			22, 5, 23, 38, 31, 43, 50, 2, 8, 39, // 101-110
			0, 68, 6, 8, 22, 184, 20, 33, // 111-118
		},
		Branches: []Branch{
			{From: 1, To: 2, X: 0.0999, LimitMW: caseLimit118[0]},       // 1
			{From: 1, To: 3, X: 0.0424, LimitMW: caseLimit118[1]},       // 2
			{From: 4, To: 5, X: 0.00798, LimitMW: caseLimit118[2]},      // 3
			{From: 3, To: 5, X: 0.108, LimitMW: caseLimit118[3]},        // 4
			{From: 5, To: 6, X: 0.054, LimitMW: caseLimit118[4]},        // 5
			{From: 6, To: 7, X: 0.0208, LimitMW: caseLimit118[5]},       // 6
			{From: 8, To: 9, X: 0.0305, LimitMW: caseLimit118[6]},       // 7
			{From: 8, To: 5, X: 0.0267, LimitMW: caseLimit118[7]},       // 8
			{From: 9, To: 10, X: 0.0322, LimitMW: caseLimit118[8]},      // 9
			{From: 4, To: 11, X: 0.0688, LimitMW: caseLimit118[9]},      // 10
			{From: 5, To: 11, X: 0.0682, LimitMW: caseLimit118[10]},     // 11
			{From: 11, To: 12, X: 0.0196, LimitMW: caseLimit118[11]},    // 12
			{From: 2, To: 12, X: 0.0616, LimitMW: caseLimit118[12]},     // 13
			{From: 3, To: 12, X: 0.16, LimitMW: caseLimit118[13]},       // 14
			{From: 7, To: 12, X: 0.034, LimitMW: caseLimit118[14]},      // 15
			{From: 11, To: 13, X: 0.0731, LimitMW: caseLimit118[15]},    // 16
			{From: 12, To: 14, X: 0.0707, LimitMW: caseLimit118[16]},    // 17
			{From: 13, To: 15, X: 0.2444, LimitMW: caseLimit118[17]},    // 18
			{From: 14, To: 15, X: 0.195, LimitMW: caseLimit118[18]},     // 19
			{From: 12, To: 16, X: 0.0834, LimitMW: caseLimit118[19]},    // 20
			{From: 15, To: 17, X: 0.0437, LimitMW: caseLimit118[20]},    // 21
			{From: 16, To: 17, X: 0.1801, LimitMW: caseLimit118[21]},    // 22
			{From: 17, To: 18, X: 0.0505, LimitMW: caseLimit118[22]},    // 23
			{From: 18, To: 19, X: 0.0493, LimitMW: caseLimit118[23]},    // 24
			{From: 19, To: 20, X: 0.117, LimitMW: caseLimit118[24]},     // 25
			{From: 15, To: 19, X: 0.0394, LimitMW: caseLimit118[25]},    // 26
			{From: 20, To: 21, X: 0.0849, LimitMW: caseLimit118[26]},    // 27
			{From: 21, To: 22, X: 0.097, LimitMW: caseLimit118[27]},     // 28
			{From: 22, To: 23, X: 0.159, LimitMW: caseLimit118[28]},     // 29
			{From: 23, To: 24, X: 0.0492, LimitMW: caseLimit118[29]},    // 30
			{From: 23, To: 25, X: 0.08, LimitMW: caseLimit118[30]},      // 31
			{From: 26, To: 25, X: 0.0382, LimitMW: caseLimit118[31]},    // 32
			{From: 25, To: 27, X: 0.163, LimitMW: caseLimit118[32]},     // 33
			{From: 27, To: 28, X: 0.0855, LimitMW: caseLimit118[33]},    // 34
			{From: 28, To: 29, X: 0.0943, LimitMW: caseLimit118[34]},    // 35
			{From: 30, To: 17, X: 0.0388, LimitMW: caseLimit118[35]},    // 36
			{From: 8, To: 30, X: 0.0504, LimitMW: caseLimit118[36]},     // 37
			{From: 26, To: 30, X: 0.086, LimitMW: caseLimit118[37]},     // 38
			{From: 17, To: 31, X: 0.1563, LimitMW: caseLimit118[38]},    // 39
			{From: 29, To: 31, X: 0.0331, LimitMW: caseLimit118[39]},    // 40
			{From: 23, To: 32, X: 0.1153, LimitMW: caseLimit118[40]},    // 41
			{From: 31, To: 32, X: 0.0985, LimitMW: caseLimit118[41]},    // 42
			{From: 27, To: 32, X: 0.0755, LimitMW: caseLimit118[42]},    // 43
			{From: 15, To: 33, X: 0.1244, LimitMW: caseLimit118[43]},    // 44
			{From: 19, To: 34, X: 0.247, LimitMW: caseLimit118[44]},     // 45
			{From: 35, To: 36, X: 0.0102, LimitMW: caseLimit118[45]},    // 46
			{From: 35, To: 37, X: 0.0497, LimitMW: caseLimit118[46]},    // 47
			{From: 33, To: 37, X: 0.142, LimitMW: caseLimit118[47]},     // 48
			{From: 34, To: 36, X: 0.0268, LimitMW: caseLimit118[48]},    // 49
			{From: 34, To: 37, X: 0.0094, LimitMW: caseLimit118[49]},    // 50
			{From: 38, To: 37, X: 0.0375, LimitMW: caseLimit118[50]},    // 51
			{From: 37, To: 39, X: 0.106, LimitMW: caseLimit118[51]},     // 52
			{From: 37, To: 40, X: 0.168, LimitMW: caseLimit118[52]},     // 53
			{From: 30, To: 38, X: 0.054, LimitMW: caseLimit118[53]},     // 54
			{From: 39, To: 40, X: 0.0605, LimitMW: caseLimit118[54]},    // 55
			{From: 40, To: 41, X: 0.0487, LimitMW: caseLimit118[55]},    // 56
			{From: 40, To: 42, X: 0.183, LimitMW: caseLimit118[56]},     // 57
			{From: 41, To: 42, X: 0.135, LimitMW: caseLimit118[57]},     // 58
			{From: 43, To: 44, X: 0.2454, LimitMW: caseLimit118[58]},    // 59
			{From: 34, To: 43, X: 0.1681, LimitMW: caseLimit118[59]},    // 60
			{From: 44, To: 45, X: 0.0901, LimitMW: caseLimit118[60]},    // 61
			{From: 45, To: 46, X: 0.1356, LimitMW: caseLimit118[61]},    // 62
			{From: 46, To: 47, X: 0.127, LimitMW: caseLimit118[62]},     // 63
			{From: 46, To: 48, X: 0.189, LimitMW: caseLimit118[63]},     // 64
			{From: 47, To: 49, X: 0.0625, LimitMW: caseLimit118[64]},    // 65
			{From: 42, To: 49, X: 0.1615, LimitMW: caseLimit118[65]},    // 66 (merged parallel pair)
			{From: 45, To: 49, X: 0.186, LimitMW: caseLimit118[66]},     // 67
			{From: 48, To: 49, X: 0.0505, LimitMW: caseLimit118[67]},    // 68
			{From: 49, To: 50, X: 0.0752, LimitMW: caseLimit118[68]},    // 69
			{From: 49, To: 51, X: 0.137, LimitMW: caseLimit118[69]},     // 70
			{From: 51, To: 52, X: 0.0588, LimitMW: caseLimit118[70]},    // 71
			{From: 52, To: 53, X: 0.1635, LimitMW: caseLimit118[71]},    // 72
			{From: 53, To: 54, X: 0.122, LimitMW: caseLimit118[72]},     // 73
			{From: 49, To: 54, X: 0.145, LimitMW: caseLimit118[73]},     // 74 (merged parallel pair)
			{From: 54, To: 55, X: 0.0707, LimitMW: caseLimit118[74]},    // 75
			{From: 54, To: 56, X: 0.00955, LimitMW: caseLimit118[75]},   // 76
			{From: 55, To: 56, X: 0.0151, LimitMW: caseLimit118[76]},    // 77
			{From: 56, To: 57, X: 0.0966, LimitMW: caseLimit118[77]},    // 78
			{From: 50, To: 57, X: 0.134, LimitMW: caseLimit118[78]},     // 79
			{From: 56, To: 58, X: 0.0966, LimitMW: caseLimit118[79]},    // 80
			{From: 51, To: 58, X: 0.0719, LimitMW: caseLimit118[80]},    // 81
			{From: 54, To: 59, X: 0.2293, LimitMW: caseLimit118[81]},    // 82
			{From: 56, To: 59, X: 0.12242, LimitMW: caseLimit118[82]},   // 83 (merged parallel pair)
			{From: 55, To: 59, X: 0.2158, LimitMW: caseLimit118[83]},    // 84
			{From: 59, To: 60, X: 0.145, LimitMW: caseLimit118[84]},     // 85
			{From: 59, To: 61, X: 0.15, LimitMW: caseLimit118[85]},      // 86
			{From: 60, To: 61, X: 0.0135, LimitMW: caseLimit118[86]},    // 87
			{From: 60, To: 62, X: 0.0561, LimitMW: caseLimit118[87]},    // 88
			{From: 61, To: 62, X: 0.0376, LimitMW: caseLimit118[88]},    // 89
			{From: 63, To: 59, X: 0.0386, LimitMW: caseLimit118[89]},    // 90
			{From: 63, To: 64, X: 0.02, LimitMW: caseLimit118[90]},      // 91
			{From: 64, To: 61, X: 0.0268, LimitMW: caseLimit118[91]},    // 92
			{From: 38, To: 65, X: 0.0986, LimitMW: caseLimit118[92]},    // 93
			{From: 64, To: 65, X: 0.0302, LimitMW: caseLimit118[93]},    // 94
			{From: 49, To: 66, X: 0.04595, LimitMW: caseLimit118[94]},   // 95 (merged parallel pair)
			{From: 62, To: 66, X: 0.218, LimitMW: caseLimit118[95]},     // 96
			{From: 62, To: 67, X: 0.117, LimitMW: caseLimit118[96]},     // 97
			{From: 65, To: 66, X: 0.037, LimitMW: caseLimit118[97]},     // 98
			{From: 66, To: 67, X: 0.1015, LimitMW: caseLimit118[98]},    // 99
			{From: 65, To: 68, X: 0.016, LimitMW: caseLimit118[99]},     // 100
			{From: 47, To: 69, X: 0.2778, LimitMW: caseLimit118[100]},   // 101
			{From: 49, To: 69, X: 0.324, LimitMW: caseLimit118[101]},    // 102
			{From: 68, To: 69, X: 0.037, LimitMW: caseLimit118[102]},    // 103
			{From: 69, To: 70, X: 0.127, LimitMW: caseLimit118[103]},    // 104
			{From: 24, To: 70, X: 0.4115, LimitMW: caseLimit118[104]},   // 105
			{From: 70, To: 71, X: 0.0355, LimitMW: caseLimit118[105]},   // 106
			{From: 24, To: 72, X: 0.196, LimitMW: caseLimit118[106]},    // 107
			{From: 71, To: 72, X: 0.18, LimitMW: caseLimit118[107]},     // 108
			{From: 71, To: 73, X: 0.0454, LimitMW: caseLimit118[108]},   // 109
			{From: 70, To: 74, X: 0.1323, LimitMW: caseLimit118[109]},   // 110
			{From: 70, To: 75, X: 0.141, LimitMW: caseLimit118[110]},    // 111
			{From: 69, To: 75, X: 0.122, LimitMW: caseLimit118[111]},    // 112
			{From: 74, To: 75, X: 0.0406, LimitMW: caseLimit118[112]},   // 113
			{From: 76, To: 77, X: 0.148, LimitMW: caseLimit118[113]},    // 114
			{From: 69, To: 77, X: 0.101, LimitMW: caseLimit118[114]},    // 115
			{From: 75, To: 77, X: 0.1999, LimitMW: caseLimit118[115]},   // 116
			{From: 77, To: 78, X: 0.0124, LimitMW: caseLimit118[116]},   // 117
			{From: 78, To: 79, X: 0.0244, LimitMW: caseLimit118[117]},   // 118
			{From: 77, To: 80, X: 0.03318, LimitMW: caseLimit118[118]},  // 119 (merged parallel pair)
			{From: 79, To: 80, X: 0.0704, LimitMW: caseLimit118[119]},   // 120
			{From: 68, To: 81, X: 0.0202, LimitMW: caseLimit118[120]},   // 121
			{From: 81, To: 80, X: 0.037, LimitMW: caseLimit118[121]},    // 122
			{From: 77, To: 82, X: 0.0853, LimitMW: caseLimit118[122]},   // 123
			{From: 82, To: 83, X: 0.03665, LimitMW: caseLimit118[123]},  // 124
			{From: 83, To: 84, X: 0.132, LimitMW: caseLimit118[124]},    // 125
			{From: 83, To: 85, X: 0.148, LimitMW: caseLimit118[125]},    // 126
			{From: 84, To: 85, X: 0.0641, LimitMW: caseLimit118[126]},   // 127
			{From: 85, To: 86, X: 0.123, LimitMW: caseLimit118[127]},    // 128
			{From: 86, To: 87, X: 0.2074, LimitMW: caseLimit118[128]},   // 129
			{From: 85, To: 88, X: 0.102, LimitMW: caseLimit118[129]},    // 130
			{From: 85, To: 89, X: 0.173, LimitMW: caseLimit118[130]},    // 131
			{From: 88, To: 89, X: 0.0712, LimitMW: caseLimit118[131]},   // 132
			{From: 89, To: 90, X: 0.06515, LimitMW: caseLimit118[132]},  // 133 (merged parallel pair)
			{From: 90, To: 91, X: 0.0836, LimitMW: caseLimit118[133]},   // 134
			{From: 89, To: 92, X: 0.03827, LimitMW: caseLimit118[134]},  // 135 (merged parallel pair)
			{From: 91, To: 92, X: 0.1272, LimitMW: caseLimit118[135]},   // 136
			{From: 92, To: 93, X: 0.0848, LimitMW: caseLimit118[136]},   // 137
			{From: 92, To: 94, X: 0.158, LimitMW: caseLimit118[137]},    // 138
			{From: 93, To: 94, X: 0.0732, LimitMW: caseLimit118[138]},   // 139
			{From: 94, To: 95, X: 0.0434, LimitMW: caseLimit118[139]},   // 140
			{From: 80, To: 96, X: 0.182, LimitMW: caseLimit118[140]},    // 141
			{From: 82, To: 96, X: 0.053, LimitMW: caseLimit118[141]},    // 142
			{From: 94, To: 96, X: 0.0869, LimitMW: caseLimit118[142]},   // 143
			{From: 80, To: 97, X: 0.0934, LimitMW: caseLimit118[143]},   // 144
			{From: 80, To: 98, X: 0.108, LimitMW: caseLimit118[144]},    // 145
			{From: 80, To: 99, X: 0.206, LimitMW: caseLimit118[145]},    // 146
			{From: 92, To: 100, X: 0.295, LimitMW: caseLimit118[146]},   // 147
			{From: 94, To: 100, X: 0.058, LimitMW: caseLimit118[147]},   // 148
			{From: 95, To: 96, X: 0.0547, LimitMW: caseLimit118[148]},   // 149
			{From: 96, To: 97, X: 0.0885, LimitMW: caseLimit118[149]},   // 150
			{From: 98, To: 100, X: 0.179, LimitMW: caseLimit118[150]},   // 151
			{From: 99, To: 100, X: 0.0813, LimitMW: caseLimit118[151]},  // 152
			{From: 100, To: 101, X: 0.1262, LimitMW: caseLimit118[152]}, // 153
			{From: 92, To: 102, X: 0.0559, LimitMW: caseLimit118[153]},  // 154
			{From: 101, To: 102, X: 0.112, LimitMW: caseLimit118[154]},  // 155
			{From: 100, To: 103, X: 0.0525, LimitMW: caseLimit118[155]}, // 156
			{From: 100, To: 104, X: 0.204, LimitMW: caseLimit118[156]},  // 157
			{From: 103, To: 104, X: 0.1584, LimitMW: caseLimit118[157]}, // 158
			{From: 103, To: 105, X: 0.1625, LimitMW: caseLimit118[158]}, // 159
			{From: 100, To: 106, X: 0.229, LimitMW: caseLimit118[159]},  // 160
			{From: 104, To: 105, X: 0.0378, LimitMW: caseLimit118[160]}, // 161
			{From: 105, To: 106, X: 0.0547, LimitMW: caseLimit118[161]}, // 162
			{From: 105, To: 107, X: 0.183, LimitMW: caseLimit118[162]},  // 163
			{From: 105, To: 108, X: 0.0703, LimitMW: caseLimit118[163]}, // 164
			{From: 106, To: 107, X: 0.183, LimitMW: caseLimit118[164]},  // 165
			{From: 108, To: 109, X: 0.0288, LimitMW: caseLimit118[165]}, // 166
			{From: 103, To: 110, X: 0.1813, LimitMW: caseLimit118[166]}, // 167
			{From: 109, To: 110, X: 0.0762, LimitMW: caseLimit118[167]}, // 168
			{From: 110, To: 111, X: 0.0755, LimitMW: caseLimit118[168]}, // 169
			{From: 110, To: 112, X: 0.064, LimitMW: caseLimit118[169]},  // 170
			{From: 17, To: 113, X: 0.0301, LimitMW: caseLimit118[170]},  // 171
			{From: 32, To: 113, X: 0.203, LimitMW: caseLimit118[171]},   // 172
			{From: 32, To: 114, X: 0.0612, LimitMW: caseLimit118[172]},  // 173
			{From: 27, To: 115, X: 0.0741, LimitMW: caseLimit118[173]},  // 174
			{From: 114, To: 115, X: 0.0104, LimitMW: caseLimit118[174]}, // 175
			{From: 68, To: 116, X: 0.00405, LimitMW: caseLimit118[175]}, // 176
			{From: 12, To: 117, X: 0.14, LimitMW: caseLimit118[176]},    // 177
			{From: 75, To: 118, X: 0.0481, LimitMW: caseLimit118[177]},  // 178
			{From: 76, To: 118, X: 0.0544, LimitMW: caseLimit118[178]},  // 179
		},
		Gens: []Gen{
			{Bus: 10, CostPerMWh: 32.22, MinMW: 0, MaxMW: 550},
			{Bus: 12, CostPerMWh: 41.76, MinMW: 0, MaxMW: 185},
			{Bus: 25, CostPerMWh: 34.55, MinMW: 0, MaxMW: 320},
			{Bus: 26, CostPerMWh: 33.18, MinMW: 0, MaxMW: 414},
			{Bus: 31, CostPerMWh: 172.86, MinMW: 0, MaxMW: 107},
			{Bus: 46, CostPerMWh: 82.63, MinMW: 0, MaxMW: 119},
			{Bus: 49, CostPerMWh: 34.90, MinMW: 0, MaxMW: 304},
			{Bus: 54, CostPerMWh: 50.83, MinMW: 0, MaxMW: 148},
			{Bus: 59, CostPerMWh: 36.45, MinMW: 0, MaxMW: 255},
			{Bus: 61, CostPerMWh: 36.25, MinMW: 0, MaxMW: 260},
			{Bus: 65, CostPerMWh: 32.56, MinMW: 0, MaxMW: 491},
			{Bus: 66, CostPerMWh: 32.55, MinMW: 0, MaxMW: 492},
			{Bus: 69, CostPerMWh: 35.59, MinMW: 0, MaxMW: 805.2},
			{Bus: 80, CostPerMWh: 32.10, MinMW: 0, MaxMW: 577},
			{Bus: 87, CostPerMWh: 280, MinMW: 0, MaxMW: 104},
			{Bus: 89, CostPerMWh: 31.65, MinMW: 0, MaxMW: 707},
			{Bus: 100, CostPerMWh: 33.97, MinMW: 0, MaxMW: 352},
			{Bus: 103, CostPerMWh: 55, MinMW: 0, MaxMW: 140},
			{Bus: 111, CostPerMWh: 57.78, MinMW: 0, MaxMW: 136},
			// Synchronous condensers of the original case, kept as 100 MW
			// units at the condenser cost.
			{Bus: 1, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 4, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 6, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 8, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 15, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 18, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 19, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 24, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 27, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 32, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 34, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 36, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 40, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 42, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 55, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 56, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 62, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 70, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 72, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 73, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 74, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 76, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 77, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 85, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 90, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 91, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 92, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 99, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 104, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 105, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 107, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 110, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 112, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 113, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
			{Bus: 116, CostPerMWh: 41, MinMW: 0, MaxMW: 100},
		},
		DFACTS: []int{21, 37, 54, 69, 85, 93, 104, 115, 126, 141, 156, 171},
		EtaMax: 0.5,
	})
}

// caseLimit118 holds the calibrated branch ratings (MW) in branch order:
// headroom 1.10 over the rating-free OPF flows at nominal reactances,
// floor 12 MW, rounded up to 5 MW. Generated by cmd/calibcase.
var caseLimit118 = [179]float64{
	15, 50, 140, 90, 120, 65, 605, 455, 605, 95,
	110, 85, 30, 15, 45, 40, 20, 15, 15, 15,
	145, 30, 105, 35, 25, 15, 45, 60, 70, 95,
	270, 105, 190, 50, 30, 270, 125, 355, 15, 15,
	100, 45, 35, 35, 25, 15, 40, 15, 35, 105,
	275, 80, 70, 210, 50, 40, 15, 15, 15, 25,
	15, 25, 35, 25, 35, 110, 55, 45, 85, 105,
	45, 25, 15, 135, 15, 15, 40, 55, 65, 30,
	45, 20, 40, 25, 65, 70, 110, 40, 20, 255,
	255, 160, 70, 410, 290, 80, 65, 40, 100, 100,
	40, 25, 75, 50, 40, 25, 45, 35, 15, 25,
	15, 60, 55, 90, 55, 65, 30, 50, 225, 95,
	175, 175, 75, 105, 55, 75, 65, 25, 15, 85,
	105, 140, 195, 15, 350, 15, 90, 85, 80, 75,
	15, 30, 60, 15, 15, 15, 45, 15, 30, 15,
	35, 55, 30, 60, 55, 185, 75, 35, 50, 75,
	65, 15, 30, 50, 30, 45, 85, 40, 15, 75,
	15, 20, 15, 35, 15, 205, 25, 25, 15,
}
