package cases

import "testing"

func TestRegistryComplete(t *testing.T) {
	want := []string{"case4gs", "ieee14", "ieee30", "ieee57", "ieee118", "ieee300"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (size order)", i, got[i], want[i])
		}
	}
}

func TestLookupAliasesAndCase(t *testing.T) {
	for _, name := range []string{"IEEE118", "118bus", "Case118", "ieee118"} {
		s, ok := ByName(name)
		if !ok || s.Name != "ieee118" {
			t.Errorf("ByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := ByName("ieee9999"); ok {
		t.Error("unknown case resolved")
	}
}

func TestSpecStructuralConsistency(t *testing.T) {
	for _, s := range All() {
		n := s.N()
		if s.BaseMVA <= 0 || s.SlackBus < 1 || s.SlackBus > n {
			t.Errorf("%s: bad base/slack", s.Name)
		}
		for i, b := range s.Branches {
			if b.From < 1 || b.From > n || b.To < 1 || b.To > n || b.From == b.To {
				t.Errorf("%s branch %d: bad endpoints (%d, %d)", s.Name, i+1, b.From, b.To)
			}
			if b.X <= 0 {
				t.Errorf("%s branch %d: non-positive reactance %g", s.Name, i+1, b.X)
			}
			if b.LimitMW < 0 {
				t.Errorf("%s branch %d: negative rating %g", s.Name, i+1, b.LimitMW)
			}
		}
		for _, d := range s.DFACTS {
			if d < 1 || d > s.L() {
				t.Errorf("%s: D-FACTS branch %d out of range", s.Name, d)
			}
		}
		if len(s.DFACTS) == 0 || s.EtaMax <= 0 {
			t.Errorf("%s: no D-FACTS deployment", s.Name)
		}
		if len(s.Gens) == 0 {
			t.Errorf("%s: no generators", s.Name)
		}
		var load, cap float64
		for _, l := range s.LoadsMW {
			if l < 0 {
				t.Errorf("%s: negative load", s.Name)
			}
			load += l
		}
		for _, g := range s.Gens {
			if g.Bus < 1 || g.Bus > n {
				t.Errorf("%s: generator bus %d out of range", s.Name, g.Bus)
			}
			cap += g.MaxMW
		}
		if cap < load {
			t.Errorf("%s: capacity %.1f below load %.1f", s.Name, cap, load)
		}
	}
}

// TestCanonicalSizes pins the embedded data to the IEEE test-system sizes
// (branch counts after merging parallel circuits) and total loads.
func TestCanonicalSizes(t *testing.T) {
	for _, tc := range []struct {
		name         string
		buses, lines int
		gens         int
		totalLoadMW  float64
	}{
		{"case4gs", 4, 4, 2, 500},
		{"ieee14", 14, 20, 5, 259},
		{"ieee30", 30, 41, 6, 283.4},
		{"ieee57", 57, 78, 7, 1250.8},
		{"ieee118", 118, 179, 54, 4242},
		{"ieee300", 300, 411, 69, 23524.7},
	} {
		s, ok := ByName(tc.name)
		if !ok {
			t.Fatalf("case %s missing", tc.name)
		}
		if s.N() != tc.buses || s.L() != tc.lines || len(s.Gens) != tc.gens {
			t.Errorf("%s: size %d/%d/%d, want %d/%d/%d",
				tc.name, s.N(), s.L(), len(s.Gens), tc.buses, tc.lines, tc.gens)
		}
		var load float64
		for _, l := range s.LoadsMW {
			load += l
		}
		if diff := load - tc.totalLoadMW; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: total load %.3f MW, want %.3f", tc.name, load, tc.totalLoadMW)
		}
	}
}
