package cases

// ieee30 is the IEEE 30-bus system used for the paper's scalability
// experiment (Fig. 6b), with topology, reactances, loads, generator
// locations/capacities and branch ratings from the MATPOWER case30 file.
// Two reproduction choices documented in DESIGN.md:
//
//   - MATPOWER's quadratic generator costs are linearized at half capacity
//     (only the pre-perturbation OPF state depends on them, and Fig. 6b
//     measures detection effectiveness, not cost);
//   - the paper does not list the 30-bus D-FACTS set; ten branches spread
//     across the network are used here, with the same ηmax = 0.5 range as
//     the 14-bus case.
func init() {
	Register(&Spec{
		Name:     "ieee30",
		Aliases:  []string{"30bus", "case30"},
		Title:    "IEEE 30-bus system of the paper's scalability experiment",
		BaseMVA:  100,
		SlackBus: 1,
		LoadsMW: []float64{
			0, 21.7, 2.4, 7.6, 94.2, 0, 22.8, 30.0, 0, 5.8,
			0, 11.2, 0, 6.2, 8.2, 3.5, 9.0, 3.2, 9.5, 2.2,
			17.5, 0, 3.2, 8.7, 0, 3.5, 0, 0, 2.4, 10.6,
		},
		Branches: []Branch{
			{From: 1, To: 2, X: 0.06, LimitMW: 130},  // 1
			{From: 1, To: 3, X: 0.19, LimitMW: 130},  // 2
			{From: 2, To: 4, X: 0.17, LimitMW: 65},   // 3
			{From: 3, To: 4, X: 0.04, LimitMW: 130},  // 4
			{From: 2, To: 5, X: 0.20, LimitMW: 130},  // 5
			{From: 2, To: 6, X: 0.18, LimitMW: 65},   // 6
			{From: 4, To: 6, X: 0.04, LimitMW: 90},   // 7
			{From: 5, To: 7, X: 0.12, LimitMW: 70},   // 8
			{From: 6, To: 7, X: 0.08, LimitMW: 130},  // 9
			{From: 6, To: 8, X: 0.04, LimitMW: 32},   // 10
			{From: 6, To: 9, X: 0.21, LimitMW: 65},   // 11
			{From: 6, To: 10, X: 0.56, LimitMW: 32},  // 12
			{From: 9, To: 11, X: 0.21, LimitMW: 65},  // 13
			{From: 9, To: 10, X: 0.11, LimitMW: 65},  // 14
			{From: 4, To: 12, X: 0.26, LimitMW: 65},  // 15
			{From: 12, To: 13, X: 0.14, LimitMW: 65}, // 16
			{From: 12, To: 14, X: 0.26, LimitMW: 32}, // 17
			{From: 12, To: 15, X: 0.13, LimitMW: 32}, // 18
			{From: 12, To: 16, X: 0.20, LimitMW: 32}, // 19
			{From: 14, To: 15, X: 0.20, LimitMW: 16}, // 20
			{From: 16, To: 17, X: 0.19, LimitMW: 16}, // 21
			{From: 15, To: 18, X: 0.22, LimitMW: 16}, // 22
			{From: 18, To: 19, X: 0.13, LimitMW: 16}, // 23
			{From: 19, To: 20, X: 0.07, LimitMW: 32}, // 24
			{From: 10, To: 20, X: 0.21, LimitMW: 32}, // 25
			{From: 10, To: 17, X: 0.08, LimitMW: 32}, // 26
			{From: 10, To: 21, X: 0.07, LimitMW: 32}, // 27
			{From: 10, To: 22, X: 0.15, LimitMW: 32}, // 28
			{From: 21, To: 22, X: 0.02, LimitMW: 32}, // 29
			{From: 15, To: 23, X: 0.20, LimitMW: 16}, // 30
			{From: 22, To: 24, X: 0.18, LimitMW: 16}, // 31
			{From: 23, To: 24, X: 0.27, LimitMW: 16}, // 32
			{From: 24, To: 25, X: 0.33, LimitMW: 16}, // 33
			{From: 25, To: 26, X: 0.38, LimitMW: 16}, // 34
			{From: 25, To: 27, X: 0.21, LimitMW: 16}, // 35
			{From: 28, To: 27, X: 0.40, LimitMW: 65}, // 36
			{From: 27, To: 29, X: 0.42, LimitMW: 16}, // 37
			{From: 27, To: 30, X: 0.60, LimitMW: 16}, // 38
			{From: 29, To: 30, X: 0.45, LimitMW: 16}, // 39
			{From: 8, To: 28, X: 0.20, LimitMW: 32},  // 40
			{From: 6, To: 28, X: 0.06, LimitMW: 32},  // 41
		},
		Gens: []Gen{
			{Bus: 1, CostPerMWh: 3.6, MinMW: 0, MaxMW: 80},
			{Bus: 2, CostPerMWh: 3.15, MinMW: 0, MaxMW: 80},
			{Bus: 22, CostPerMWh: 4.13, MinMW: 0, MaxMW: 50},
			{Bus: 27, CostPerMWh: 3.71, MinMW: 0, MaxMW: 55},
			{Bus: 23, CostPerMWh: 3.75, MinMW: 0, MaxMW: 30},
			{Bus: 13, CostPerMWh: 4.0, MinMW: 0, MaxMW: 40},
		},
		DFACTS: []int{1, 5, 9, 14, 18, 21, 25, 29, 33, 39},
		EtaMax: 0.5,
	})
}
