// Package grid models the power network studied by the paper: buses,
// transmission branches (optionally equipped with D-FACTS devices that let
// the operator perturb branch reactance), and generators with linear costs.
// It builds the DC power-flow matrices the rest of the system consumes: the
// branch-bus incidence matrix A, the susceptance matrices D and B = A·D·Aᵀ,
// the (slack-reduced) measurement matrix H = [B; D·Aᵀ; −D·Aᵀ] of the state
// estimator, and the PTDF matrix used by the LP formulation of the DC OPF.
//
// # Case registry
//
// Test systems live as pure data in the internal/grid/cases subpackage and
// are served through Cases, CaseNames and CaseByName (plus the historical
// Case4GS/CaseIEEE14/... constructors). Five cases are embedded: the
// MATPOWER 4-bus case (case4gs) of the paper's motivating example, the
// IEEE 14-bus case with the paper's Table-IV economics, the IEEE 30-bus
// case of the scalability experiment, and — beyond the paper's own sizes —
// the IEEE 57- and 118-bus systems with calibrated line ratings (see
// cmd/calibcase).
//
// # Factorization backends
//
// Every solve against the slack-reduced susceptance matrix B_r(x) — the
// DC power flow, the PTDF build of the dispatch OPF — goes through the
// pluggable BFactorizer seam. The dense backend performs exactly the
// historical LU operations, bit for bit, and serves the paper's
// sub-SparseThreshold cases so their fixed-seed experiment outputs stay
// byte-identical; the sparse backend (CSC assembly, fill-reducing sparse
// Cholesky, triangular solves from internal/mat) serves the 57/118-bus
// cases, where it factors and builds PTDFs up to 10× faster (PERF.md).
package grid

import (
	"errors"
	"fmt"
	"math"
)

// Bus is a network node.
type Bus struct {
	// Index is the 1-based bus number as in the case file.
	Index int
	// LoadMW is the real power demand at the bus in MW.
	LoadMW float64
}

// Branch is a transmission line between two buses.
type Branch struct {
	// From and To are 1-based bus indices; positive flow runs From -> To.
	From, To int
	// X is the branch reactance in per-unit.
	X float64
	// LimitMW is the thermal flow limit in MW; +Inf means unlimited.
	LimitMW float64
	// HasDFACTS marks branches whose reactance the defender can perturb.
	HasDFACTS bool
	// XMin and XMax bound the reactance achievable by the D-FACTS device.
	// For branches without D-FACTS they both equal X.
	XMin, XMax float64
}

// Generator is a dispatchable source with a linear cost curve.
type Generator struct {
	// Bus is the 1-based index of the bus the generator connects to.
	Bus int
	// CostPerMWh is the linear generation cost coefficient c_i in $/MWh.
	CostPerMWh float64
	// MinMW and MaxMW bound the dispatch.
	MinMW, MaxMW float64
}

// Network is a complete power system model.
type Network struct {
	// Name identifies the case (e.g. "case4gs").
	Name string
	// BaseMVA is the per-unit power base.
	BaseMVA float64
	// SlackBus is the 1-based reference bus whose voltage angle is fixed
	// to zero.
	SlackBus int
	Buses    []Bus
	Branches []Branch
	Gens     []Generator
}

// N returns the number of buses.
func (n *Network) N() int { return len(n.Buses) }

// L returns the number of branches.
func (n *Network) L() int { return len(n.Branches) }

// M returns the number of sensor measurements: one injection per bus plus
// forward and reverse flow measurements per branch (M = N + 2L).
func (n *Network) M() int { return n.N() + 2*n.L() }

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := &Network{
		Name:     n.Name,
		BaseMVA:  n.BaseMVA,
		SlackBus: n.SlackBus,
		Buses:    append([]Bus(nil), n.Buses...),
		Branches: append([]Branch(nil), n.Branches...),
		Gens:     append([]Generator(nil), n.Gens...),
	}
	return out
}

// Validate checks structural consistency: positive base power, valid bus
// indexing, positive reactances, consistent D-FACTS ranges, valid generator
// buses and bounds, uniqueness of branch endpoints, and network
// connectivity. Islands are rejected here with a descriptive error because
// they otherwise surface only as a singular susceptance matrix deep inside
// a factorization. Duplicate branches are rejected as a lint-style guard:
// the solvers key everything by branch index and would handle parallel
// circuits fine, but a repeated bus pair is almost always a transcription
// mistake, and this repo's case convention is a simple graph — the
// embedded 57-/118-bus cases merge parallel circuits into one equivalent
// branch (x_eq = x1·x2/(x1+x2)); do the same when importing raw case data.
func (n *Network) Validate() error {
	if n.BaseMVA <= 0 {
		return errors.New("grid: BaseMVA must be positive")
	}
	if len(n.Buses) == 0 {
		return errors.New("grid: no buses")
	}
	for i, b := range n.Buses {
		if b.Index != i+1 {
			return fmt.Errorf("grid: bus %d has index %d, want %d (buses must be numbered 1..N in order)", i, b.Index, i+1)
		}
	}
	if n.SlackBus < 1 || n.SlackBus > len(n.Buses) {
		return fmt.Errorf("grid: slack bus %d out of range", n.SlackBus)
	}
	if len(n.Branches) == 0 {
		return errors.New("grid: no branches")
	}
	seenPair := make(map[[2]int]int, len(n.Branches))
	for i, br := range n.Branches {
		if br.From < 1 || br.From > len(n.Buses) || br.To < 1 || br.To > len(n.Buses) {
			return fmt.Errorf("grid: branch %d endpoints (%d, %d) out of range", i+1, br.From, br.To)
		}
		if br.From == br.To {
			return fmt.Errorf("grid: branch %d is a self-loop at bus %d", i+1, br.From)
		}
		pair := [2]int{br.From, br.To}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		if first, dup := seenPair[pair]; dup {
			return fmt.Errorf("grid: branches %d and %d both connect buses %d-%d; merge parallel circuits into one equivalent branch (x_eq = x1*x2/(x1+x2))", first, i+1, pair[0], pair[1])
		}
		seenPair[pair] = i + 1
		if br.X <= 0 {
			return fmt.Errorf("grid: branch %d has non-positive reactance %g", i+1, br.X)
		}
		if br.LimitMW <= 0 {
			return fmt.Errorf("grid: branch %d has non-positive flow limit %g (use +Inf for unlimited)", i+1, br.LimitMW)
		}
		if br.XMin <= 0 || br.XMax < br.XMin {
			return fmt.Errorf("grid: branch %d has invalid reactance range [%g, %g]", i+1, br.XMin, br.XMax)
		}
		if br.X < br.XMin-1e-12 || br.X > br.XMax+1e-12 {
			return fmt.Errorf("grid: branch %d reactance %g outside range [%g, %g]", i+1, br.X, br.XMin, br.XMax)
		}
		if !br.HasDFACTS && br.XMax != br.XMin {
			return fmt.Errorf("grid: branch %d has a reactance range but no D-FACTS device", i+1)
		}
	}
	for i, g := range n.Gens {
		if g.Bus < 1 || g.Bus > len(n.Buses) {
			return fmt.Errorf("grid: generator %d bus %d out of range", i, g.Bus)
		}
		if g.MinMW < 0 || g.MaxMW < g.MinMW {
			return fmt.Errorf("grid: generator %d has invalid dispatch range [%g, %g]", i, g.MinMW, g.MaxMW)
		}
	}
	if unreachable := n.unreachableBuses(); len(unreachable) > 0 {
		preview := unreachable
		const maxListed = 8
		suffix := ""
		if len(preview) > maxListed {
			preview = preview[:maxListed]
			suffix = ", ..."
		}
		return fmt.Errorf("grid: network is islanded: %d of %d buses unreachable from bus 1 (buses %s%s); the susceptance matrix of an islanded network is singular",
			len(unreachable), len(n.Buses), joinInts(preview), suffix)
	}
	return nil
}

// unreachableBuses returns the 1-based indices of buses the branch graph
// does not connect to bus 1, in ascending order (empty for a connected
// network).
func (n *Network) unreachableBuses() []int {
	adj := make([][]int, len(n.Buses)+1)
	for _, br := range n.Branches {
		adj[br.From] = append(adj[br.From], br.To)
		adj[br.To] = append(adj[br.To], br.From)
	}
	seen := make([]bool, len(n.Buses)+1)
	stack := []int{1}
	seen[1] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	var out []int
	for b := 1; b <= len(n.Buses); b++ {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// joinInts renders a small int list as "a, b, c".
func joinInts(v []int) string {
	s := ""
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprint(x)
	}
	return s
}

// Reactances returns the current branch reactance vector (per-unit).
func (n *Network) Reactances() []float64 {
	x := make([]float64, len(n.Branches))
	for i, br := range n.Branches {
		x[i] = br.X
	}
	return x
}

// WithReactances returns a clone of the network with the given full branch
// reactance vector. It panics if the length does not match.
func (n *Network) WithReactances(x []float64) *Network {
	if len(x) != len(n.Branches) {
		panic("grid: reactance vector length mismatch")
	}
	out := n.Clone()
	for i := range out.Branches {
		out.Branches[i].X = x[i]
	}
	return out
}

// SetReactances replaces the full branch reactance vector in place (the
// mutable counterpart of WithReactances, used by day-sweep loops that keep
// one work network alive across hours). It panics if the length does not
// match.
func (n *Network) SetReactances(x []float64) {
	if len(x) != len(n.Branches) {
		panic("grid: reactance vector length mismatch")
	}
	for i := range n.Branches {
		n.Branches[i].X = x[i]
	}
}

// LoadsMW returns the bus load vector in MW.
func (n *Network) LoadsMW() []float64 {
	l := make([]float64, len(n.Buses))
	for i, b := range n.Buses {
		l[i] = b.LoadMW
	}
	return l
}

// SetLoadsMW replaces the bus load vector in place. It panics if the length
// does not match.
func (n *Network) SetLoadsMW(l []float64) {
	if len(l) != len(n.Buses) {
		panic("grid: load vector length mismatch")
	}
	for i := range n.Buses {
		n.Buses[i].LoadMW = l[i]
	}
}

// ScaleLoads multiplies every bus load by factor (used to drive the network
// with a load trace).
func (n *Network) ScaleLoads(factor float64) {
	for i := range n.Buses {
		n.Buses[i].LoadMW *= factor
	}
}

// TotalLoadMW returns the system demand in MW.
func (n *Network) TotalLoadMW() float64 {
	var s float64
	for _, b := range n.Buses {
		s += b.LoadMW
	}
	return s
}

// TotalGenCapacityMW returns the aggregate generator capacity in MW.
func (n *Network) TotalGenCapacityMW() float64 {
	var s float64
	for _, g := range n.Gens {
		s += g.MaxMW
	}
	return s
}

// DFACTSIndices returns the 0-based indices of branches with D-FACTS
// devices.
func (n *Network) DFACTSIndices() []int {
	var idx []int
	for i, br := range n.Branches {
		if br.HasDFACTS {
			idx = append(idx, i)
		}
	}
	return idx
}

// DFACTSStateColumns returns the sorted slack-reduced state columns that a
// D-FACTS reactance change can touch: the columns of the buses incident to
// a D-FACTS branch. Every other column of the measurement matrix H(x) is
// bitwise identical across all D-FACTS settings (MeasurementMatrixInto
// writes a column only from the branches incident to its bus), which is
// the structural fact the estimator fast-build path relies on.
func (n *Network) DFACTSStateColumns() []int {
	touched := make([]bool, n.N()-1)
	for _, br := range n.Branches {
		if !br.HasDFACTS {
			continue
		}
		if c := n.reducedCol(br.From - 1); c >= 0 {
			touched[c] = true
		}
		if c := n.reducedCol(br.To - 1); c >= 0 {
			touched[c] = true
		}
	}
	var cols []int
	for c, t := range touched {
		if t {
			cols = append(cols, c)
		}
	}
	return cols
}

// DFACTSBounds returns the reactance bounds for the D-FACTS branches, in
// the order of DFACTSIndices.
func (n *Network) DFACTSBounds() (lo, hi []float64) {
	for _, i := range n.DFACTSIndices() {
		lo = append(lo, n.Branches[i].XMin)
		hi = append(hi, n.Branches[i].XMax)
	}
	return lo, hi
}

// DFACTSSetting extracts the reactances of the D-FACTS branches from a full
// reactance vector.
func (n *Network) DFACTSSetting(x []float64) []float64 {
	if len(x) != len(n.Branches) {
		panic("grid: reactance vector length mismatch")
	}
	idx := n.DFACTSIndices()
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = x[i]
	}
	return out
}

// ExpandDFACTS builds a full reactance vector from the current network
// reactances with the D-FACTS branches overridden by xD (ordered as
// DFACTSIndices).
func (n *Network) ExpandDFACTS(xD []float64) []float64 {
	return n.ExpandDFACTSInto(xD, make([]float64, len(n.Branches)))
}

// ExpandDFACTSInto is ExpandDFACTS writing into a caller-provided full
// reactance vector, allocating nothing. dst must have length L.
func (n *Network) ExpandDFACTSInto(xD, dst []float64) []float64 {
	if len(dst) != len(n.Branches) {
		panic("grid: reactance vector length mismatch")
	}
	k := 0
	for i, br := range n.Branches {
		if br.HasDFACTS {
			if k >= len(xD) {
				panic("grid: D-FACTS vector length mismatch")
			}
			dst[i] = xD[k]
			k++
		} else {
			dst[i] = br.X
		}
	}
	if k != len(xD) {
		panic("grid: D-FACTS vector length mismatch")
	}
	return dst
}

// BranchLimitsMW returns the flow limit vector in MW.
func (n *Network) BranchLimitsMW() []float64 {
	f := make([]float64, len(n.Branches))
	for i, br := range n.Branches {
		f[i] = br.LimitMW
	}
	return f
}

// GenCosts returns the linear cost coefficients of the generators.
func (n *Network) GenCosts() []float64 {
	c := make([]float64, len(n.Gens))
	for i, g := range n.Gens {
		c[i] = g.CostPerMWh
	}
	return c
}

// GenBounds returns the dispatch bounds of the generators in MW.
func (n *Network) GenBounds() (lo, hi []float64) {
	lo = make([]float64, len(n.Gens))
	hi = make([]float64, len(n.Gens))
	for i, g := range n.Gens {
		lo[i] = g.MinMW
		hi[i] = g.MaxMW
	}
	return lo, hi
}

// Unlimited is a convenience flow limit for branches without a thermal
// constraint.
var Unlimited = math.Inf(1)
