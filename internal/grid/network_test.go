package grid

import (
	"math"
	"strings"
	"testing"
)

func validNet() *Network {
	return &Network{
		Name:     "test2",
		BaseMVA:  100,
		SlackBus: 1,
		Buses:    []Bus{{Index: 1, LoadMW: 0}, {Index: 2, LoadMW: 50}},
		Branches: []Branch{{From: 1, To: 2, X: 0.1, LimitMW: 100, XMin: 0.1, XMax: 0.1}},
		Gens:     []Generator{{Bus: 1, CostPerMWh: 10, MinMW: 0, MaxMW: 100}},
	}
}

func TestValidateAccepts(t *testing.T) {
	for _, n := range []*Network{validNet(), Case4GS(), CaseIEEE14(), CaseIEEE30()} {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: Validate = %v", n.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Network)
		substr string
	}{
		{"zero base", func(n *Network) { n.BaseMVA = 0 }, "BaseMVA"},
		{"bad bus numbering", func(n *Network) { n.Buses[1].Index = 5 }, "numbered"},
		{"slack out of range", func(n *Network) { n.SlackBus = 9 }, "slack"},
		{"no branches", func(n *Network) { n.Branches = nil }, "no branches"},
		{"branch endpoint", func(n *Network) { n.Branches[0].To = 7 }, "out of range"},
		{"self loop", func(n *Network) { n.Branches[0].To = 1 }, "self-loop"},
		{"bad reactance", func(n *Network) { n.Branches[0].X = 0 }, "reactance"},
		{"bad limit", func(n *Network) { n.Branches[0].LimitMW = -1 }, "flow limit"},
		{"bad range", func(n *Network) { n.Branches[0].XMin = 0.3; n.Branches[0].XMax = 0.2 }, "range"},
		{"x outside range", func(n *Network) {
			n.Branches[0].XMin = 0.2
			n.Branches[0].XMax = 0.3
			n.Branches[0].HasDFACTS = true
		}, "outside range"},
		{"range without dfacts", func(n *Network) {
			n.Branches[0].XMin = 0.05
			n.Branches[0].XMax = 0.2
		}, "no D-FACTS"},
		{"gen bus", func(n *Network) { n.Gens[0].Bus = 9 }, "generator"},
		{"gen bounds", func(n *Network) { n.Gens[0].MinMW = 5; n.Gens[0].MaxMW = 1 }, "dispatch range"},
	}
	for _, c := range cases {
		n := validNet()
		c.mutate(n)
		err := n.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.substr)
		}
	}
}

func TestValidateDisconnected(t *testing.T) {
	n := &Network{
		Name:     "disc",
		BaseMVA:  100,
		SlackBus: 1,
		Buses:    []Bus{{Index: 1}, {Index: 2}, {Index: 3}, {Index: 4}},
		Branches: []Branch{
			{From: 1, To: 2, X: 0.1, LimitMW: 10, XMin: 0.1, XMax: 0.1},
			{From: 3, To: 4, X: 0.1, LimitMW: 10, XMin: 0.1, XMax: 0.1},
		},
	}
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "islanded") {
		t.Fatalf("err = %v, want islanding error", err)
	}
	// The error must name the unreachable buses so the operator can find
	// the break in the branch data.
	if !strings.Contains(err.Error(), "buses 3, 4") {
		t.Fatalf("err = %v, want the unreachable buses listed", err)
	}
}

func TestValidateDuplicateBranch(t *testing.T) {
	n := Case4GS()
	// Duplicate branch 2 (1-3) in reversed orientation: still the same
	// unordered bus pair.
	n.Branches = append(n.Branches, Branch{From: 3, To: 1, X: 0.1, LimitMW: 10, XMin: 0.1, XMax: 0.1})
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "both connect buses 1-3") {
		t.Fatalf("err = %v, want duplicate-branch error naming the pair", err)
	}
	if !strings.Contains(err.Error(), "branches 2 and 5") {
		t.Fatalf("err = %v, want both branch numbers named", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := Case4GS()
	c := n.Clone()
	c.Buses[0].LoadMW = 999
	c.Branches[0].X = 9
	c.Gens[0].CostPerMWh = 9
	if n.Buses[0].LoadMW == 999 || n.Branches[0].X == 9 || n.Gens[0].CostPerMWh == 9 {
		t.Fatal("Clone shares storage")
	}
}

func TestReactanceHelpers(t *testing.T) {
	n := Case4GS()
	x := n.Reactances()
	if len(x) != 4 || x[0] != 0.0504 {
		t.Fatalf("Reactances = %v", x)
	}
	x2 := append([]float64(nil), x...)
	x2[1] *= 1.2
	m := n.WithReactances(x2)
	if m.Branches[1].X != x[1]*1.2 {
		t.Error("WithReactances did not apply")
	}
	if n.Branches[1].X != x[1] {
		t.Error("WithReactances mutated the original")
	}
}

func TestLoadHelpers(t *testing.T) {
	n := Case4GS()
	if got := n.TotalLoadMW(); got != 500 {
		t.Fatalf("TotalLoadMW = %v, want 500", got)
	}
	n.ScaleLoads(0.5)
	if got := n.TotalLoadMW(); got != 250 {
		t.Fatalf("after ScaleLoads: %v, want 250", got)
	}
	n.SetLoadsMW([]float64{1, 2, 3, 4})
	if got := n.LoadsMW(); got[3] != 4 || n.TotalLoadMW() != 10 {
		t.Fatalf("SetLoadsMW wrong: %v", got)
	}
}

func TestDFACTSHelpers(t *testing.T) {
	n := CaseIEEE14()
	idx := n.DFACTSIndices()
	want := []int{0, 4, 8, 10, 16, 18} // paper's L_D = {1,5,9,11,17,19}, 1-based
	if len(idx) != len(want) {
		t.Fatalf("DFACTSIndices = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("DFACTSIndices = %v, want %v", idx, want)
		}
	}
	lo, hi := n.DFACTSBounds()
	for k, i := range idx {
		if math.Abs(lo[k]-0.5*n.Branches[i].X) > 1e-12 || math.Abs(hi[k]-1.5*n.Branches[i].X) > 1e-12 {
			t.Errorf("bounds for branch %d = [%v, %v], want ±50%%", i, lo[k], hi[k])
		}
	}
	// Round trip: extract and expand.
	x := n.Reactances()
	setting := n.DFACTSSetting(x)
	full := n.ExpandDFACTS(setting)
	for i := range x {
		if x[i] != full[i] {
			t.Fatalf("ExpandDFACTS round trip failed at %d", i)
		}
	}
	// Expansion applies overrides at the right slots.
	setting[0] = 99
	full = n.ExpandDFACTS(setting)
	if full[0] != 99 {
		t.Error("ExpandDFACTS did not apply override")
	}
}

func TestGenHelpers(t *testing.T) {
	n := CaseIEEE14()
	c := n.GenCosts()
	if len(c) != 5 || c[0] != 20 || c[4] != 35 {
		t.Fatalf("GenCosts = %v", c)
	}
	lo, hi := n.GenBounds()
	if lo[0] != 0 || hi[0] != 300 || hi[4] != 20 {
		t.Fatalf("GenBounds = %v %v", lo, hi)
	}
	if got := n.TotalGenCapacityMW(); got != 450 {
		t.Fatalf("TotalGenCapacityMW = %v, want 450", got)
	}
}

func TestInjectionsMW(t *testing.T) {
	n := Case4GS()
	p := n.InjectionsMW([]float64{350, 150})
	want := []float64{300, -170, -200, 70}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("InjectionsMW = %v, want %v", p, want)
		}
	}
}
