// Package optimize implements the derivative-free optimizers used to solve
// the paper's non-convex MTD selection problem (4): Nelder-Mead simplex
// search, compass pattern search, a multi-start driver, and a quadratic
// penalty wrapper for constraints. Together they substitute for MATLAB's
// fmincon + MultiStart on the small (≤ ~10-dimensional) reactance search
// spaces in this project.
package optimize

import (
	"errors"
	"math"
	"sort"
)

// Objective is a function to be minimized.
type Objective func(x []float64) float64

// ThresholdEval evaluates an objective that can certify "above threshold"
// without computing exactly. When screened is true, f is a certified
// LOWER BOUND on the true objective with f > threshold — NOT the
// objective value; when screened is false, f is the exact objective.
// A +Inf threshold must disable screening (the result is then exact).
// Implementations must guarantee the bound: a screened verdict may only
// be issued when the true objective provably exceeds the threshold.
type ThresholdEval func(x []float64, threshold float64) (f float64, screened bool)

// Result reports the outcome of a minimization.
type Result struct {
	X         []float64 // best point found
	F         float64   // objective value at X
	Evals     int       // number of objective evaluations
	Converged bool      // whether the tolerance criterion was met
}

// NMConfig configures Nelder-Mead. The zero value selects sensible
// defaults.
type NMConfig struct {
	// InitialStep is the size of the initial simplex around x0 per
	// coordinate (default 0.05 + 5% of |x0_i|).
	InitialStep float64
	// TolF stops when the simplex function-value spread falls below it
	// (default 1e-10).
	TolF float64
	// TolX stops when the simplex diameter falls below it (default 1e-10).
	TolX float64
	// MaxEvals bounds objective evaluations (default 200 * dim).
	MaxEvals int
	// Screen, when non-nil, replaces plain objective evaluations with a
	// threshold-aware evaluator (the dual-bound screen). Reflection,
	// expansion and contraction points are probed against the tightest
	// value they must beat to be stored in the simplex; a screened verdict
	// substitutes the certified bound for the exact value, which is safe
	// because every comparison that point faces is against values at or
	// below the probe threshold — the point loses them all either way,
	// lands in the same branch, and the bound is never stored in the
	// simplex. All other evaluations (initial simplex, shrink, convergence
	// state) run through Screen with a +Inf threshold and are therefore
	// exact.
	// Every probe counts as one evaluation, so MaxEvals cutoffs are
	// unchanged; the whole trajectory — and the Result — is bitwise
	// identical to the unscreened run.
	Screen ThresholdEval
}

func (c NMConfig) withDefaults(dim int) NMConfig {
	if c.InitialStep <= 0 {
		c.InitialStep = 0.05
	}
	if c.TolF <= 0 {
		c.TolF = 1e-10
	}
	if c.TolX <= 0 {
		c.TolX = 1e-10
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 200 * dim
	}
	return c
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead downhill
// simplex method with standard coefficients (reflection 1, expansion 2,
// contraction 0.5, shrink 0.5).
func NelderMead(f Objective, x0 []float64, cfg NMConfig) (*Result, error) {
	n := len(x0)
	if n == 0 {
		return nil, errors.New("optimize: empty starting point")
	}
	cfg = cfg.withDefaults(n)

	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		if cfg.Screen != nil {
			v, _ := cfg.Screen(x, math.Inf(1))
			return v
		}
		return f(x)
	}
	// probe is eval with a screening threshold: the returned value is
	// either exact or a certified lower bound strictly above threshold
	// (see NMConfig.Screen for why substituting the bound is safe).
	probe := func(x []float64, threshold float64) float64 {
		evals++
		if cfg.Screen != nil {
			v, _ := cfg.Screen(x, threshold)
			return v
		}
		return f(x)
	}

	// Initial simplex: x0 plus a perturbation along each axis.
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = eval(simplex[0].x)
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		step := cfg.InitialStep * (1 + math.Abs(x[i]))
		x[i] += step
		simplex[i+1] = vertex{x: x, f: eval(x)}
	}

	order := func() {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	}
	order()

	for evals < cfg.MaxEvals {
		best, worst := simplex[0], simplex[n]

		// Convergence checks.
		spread := math.Abs(worst.f - best.f)
		var diam float64
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(simplex[i].x[j] - best.x[j]); d > diam {
					diam = d
				}
			}
		}
		if spread < cfg.TolF && diam < cfg.TolX {
			return &Result{X: best.x, F: best.f, Evals: evals, Converged: true}, nil
		}

		// Centroid of all but the worst vertex.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}

		lerp := func(t float64) []float64 {
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				x[j] = centroid[j] + t*(worst.x[j]-centroid[j])
			}
			return x
		}

		// Reflection. The reflected point enters the simplex only if it
		// beats at least the second-worst vertex, and every comparison it
		// faces is against values ≤ worst.f — so worst.f is the screening
		// threshold: a screened fr (bound > worst.f) loses every
		// comparison below exactly as the unknown exact value would.
		xr := lerp(-1)
		fr := probe(xr, worst.f)
		switch {
		case fr < best.f:
			// Expansion. The expanded point is kept only if it beats fr
			// (which is exact here — a screened fr cannot be < best.f);
			// otherwise xr is stored and fe discarded, so fr is the
			// screening threshold.
			xe := lerp(-2)
			fe := probe(xe, fr)
			if fe < fr {
				simplex[n] = vertex{x: xe, f: fe}
			} else {
				simplex[n] = vertex{x: xr, f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: xr, f: fr}
		default:
			// Contraction (outside if reflection improved on worst, else inside).
			var xc []float64
			if fr < worst.f {
				xc = lerp(-0.5)
			} else {
				xc = lerp(0.5)
			}
			// The contraction point is stored only if it beats
			// min(fr, worst.f); a screened fr > worst.f leaves that
			// threshold at worst.f, the same value the unscreened run
			// would use (its exact fr ≥ the bound > worst.f too).
			fc := probe(xc, math.Min(fr, worst.f))
			if fc < math.Min(fr, worst.f) {
				simplex[n] = vertex{x: xc, f: fc}
			} else {
				// Shrink towards the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
		order()
	}
	order()
	return &Result{X: simplex[0].x, F: simplex[0].f, Evals: evals, Converged: false}, nil
}
