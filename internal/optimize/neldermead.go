// Package optimize implements the derivative-free optimizers used to solve
// the paper's non-convex MTD selection problem (4): Nelder-Mead simplex
// search, compass pattern search, a multi-start driver, and a quadratic
// penalty wrapper for constraints. Together they substitute for MATLAB's
// fmincon + MultiStart on the small (≤ ~10-dimensional) reactance search
// spaces in this project.
package optimize

import (
	"errors"
	"math"
	"sort"
)

// Objective is a function to be minimized.
type Objective func(x []float64) float64

// Result reports the outcome of a minimization.
type Result struct {
	X         []float64 // best point found
	F         float64   // objective value at X
	Evals     int       // number of objective evaluations
	Converged bool      // whether the tolerance criterion was met
}

// NMConfig configures Nelder-Mead. The zero value selects sensible
// defaults.
type NMConfig struct {
	// InitialStep is the size of the initial simplex around x0 per
	// coordinate (default 0.05 + 5% of |x0_i|).
	InitialStep float64
	// TolF stops when the simplex function-value spread falls below it
	// (default 1e-10).
	TolF float64
	// TolX stops when the simplex diameter falls below it (default 1e-10).
	TolX float64
	// MaxEvals bounds objective evaluations (default 200 * dim).
	MaxEvals int
}

func (c NMConfig) withDefaults(dim int) NMConfig {
	if c.InitialStep <= 0 {
		c.InitialStep = 0.05
	}
	if c.TolF <= 0 {
		c.TolF = 1e-10
	}
	if c.TolX <= 0 {
		c.TolX = 1e-10
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 200 * dim
	}
	return c
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead downhill
// simplex method with standard coefficients (reflection 1, expansion 2,
// contraction 0.5, shrink 0.5).
func NelderMead(f Objective, x0 []float64, cfg NMConfig) (*Result, error) {
	n := len(x0)
	if n == 0 {
		return nil, errors.New("optimize: empty starting point")
	}
	cfg = cfg.withDefaults(n)

	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	// Initial simplex: x0 plus a perturbation along each axis.
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = eval(simplex[0].x)
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		step := cfg.InitialStep * (1 + math.Abs(x[i]))
		x[i] += step
		simplex[i+1] = vertex{x: x, f: eval(x)}
	}

	order := func() {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	}
	order()

	for evals < cfg.MaxEvals {
		best, worst := simplex[0], simplex[n]

		// Convergence checks.
		spread := math.Abs(worst.f - best.f)
		var diam float64
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(simplex[i].x[j] - best.x[j]); d > diam {
					diam = d
				}
			}
		}
		if spread < cfg.TolF && diam < cfg.TolX {
			return &Result{X: best.x, F: best.f, Evals: evals, Converged: true}, nil
		}

		// Centroid of all but the worst vertex.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}

		lerp := func(t float64) []float64 {
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				x[j] = centroid[j] + t*(worst.x[j]-centroid[j])
			}
			return x
		}

		// Reflection.
		xr := lerp(-1)
		fr := eval(xr)
		switch {
		case fr < best.f:
			// Expansion.
			xe := lerp(-2)
			fe := eval(xe)
			if fe < fr {
				simplex[n] = vertex{x: xe, f: fe}
			} else {
				simplex[n] = vertex{x: xr, f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: xr, f: fr}
		default:
			// Contraction (outside if reflection improved on worst, else inside).
			var xc []float64
			if fr < worst.f {
				xc = lerp(-0.5)
			} else {
				xc = lerp(0.5)
			}
			fc := eval(xc)
			if fc < math.Min(fr, worst.f) {
				simplex[n] = vertex{x: xc, f: fc}
			} else {
				// Shrink towards the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
		order()
	}
	order()
	return &Result{X: simplex[0].x, F: simplex[0].f, Evals: evals, Converged: false}, nil
}
