package optimize

import (
	"errors"
	"math/rand"
)

// Bounds is a per-dimension box used to draw multi-start points.
type Bounds struct {
	Lower []float64
	Upper []float64
}

// Dim returns the dimensionality of the box.
func (b Bounds) Dim() int { return len(b.Lower) }

// Validate checks the box for consistency.
func (b Bounds) Validate() error {
	if len(b.Lower) == 0 || len(b.Lower) != len(b.Upper) {
		return errors.New("optimize: invalid bounds")
	}
	for i := range b.Lower {
		if b.Lower[i] > b.Upper[i] {
			return errors.New("optimize: lower bound exceeds upper bound")
		}
	}
	return nil
}

// Sample draws a uniform point inside the box.
func (b Bounds) Sample(rng *rand.Rand) []float64 {
	x := make([]float64, len(b.Lower))
	for i := range x {
		x[i] = b.Lower[i] + rng.Float64()*(b.Upper[i]-b.Lower[i])
	}
	return x
}

// Clamp projects x into the box in place and returns it.
func (b Bounds) Clamp(x []float64) []float64 {
	for i := range x {
		if x[i] < b.Lower[i] {
			x[i] = b.Lower[i]
		}
		if x[i] > b.Upper[i] {
			x[i] = b.Upper[i]
		}
	}
	return x
}

// Contains reports whether x lies inside the box (within tol).
func (b Bounds) Contains(x []float64, tol float64) bool {
	if len(x) != len(b.Lower) {
		return false
	}
	for i := range x {
		if x[i] < b.Lower[i]-tol || x[i] > b.Upper[i]+tol {
			return false
		}
	}
	return true
}

// Local is a local minimizer signature usable with MultiStart.
type Local func(f Objective, x0 []float64) (*Result, error)

// MSConfig configures the multi-start driver.
type MSConfig struct {
	// Starts is the number of random restarts in addition to the provided
	// initial points (default 10).
	Starts int
	// Seed seeds the restart sampler.
	Seed int64
	// InitialPoints are deterministic starting points tried before random
	// ones (e.g. the current operating point).
	InitialPoints [][]float64
}

// MultiStart minimizes f over the box by running the local solver from
// several starting points (deterministic ones first, then Starts uniform
// random draws) and returning the best local optimum. Candidate points are
// clamped to the box before each local run, and returned points are clamped
// too, so the result always lies inside the box.
func MultiStart(f Objective, box Bounds, local Local, cfg MSConfig) (*Result, error) {
	if err := box.Validate(); err != nil {
		return nil, err
	}
	if cfg.Starts <= 0 {
		cfg.Starts = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Evaluate through a box projection so local solvers cannot leave it.
	proj := func(x []float64) float64 {
		clamped := box.Clamp(append([]float64(nil), x...))
		return f(clamped)
	}

	var best *Result
	totalEvals := 0
	try := func(x0 []float64) error {
		x0 = box.Clamp(append([]float64(nil), x0...))
		res, err := local(proj, x0)
		if err != nil {
			return err
		}
		totalEvals += res.Evals
		res.X = box.Clamp(res.X)
		res.F = f(res.X)
		totalEvals++
		if best == nil || res.F < best.F {
			best = res
		}
		return nil
	}

	for _, p := range cfg.InitialPoints {
		if err := try(p); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Starts; i++ {
		if err := try(box.Sample(rng)); err != nil {
			return nil, err
		}
	}
	if best == nil {
		return nil, errors.New("optimize: no starting points")
	}
	best.Evals = totalEvals
	return best, nil
}
