package optimize

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Bounds is a per-dimension box used to draw multi-start points.
type Bounds struct {
	Lower []float64
	Upper []float64
}

// Dim returns the dimensionality of the box.
func (b Bounds) Dim() int { return len(b.Lower) }

// Validate checks the box for consistency.
func (b Bounds) Validate() error {
	if len(b.Lower) == 0 || len(b.Lower) != len(b.Upper) {
		return errors.New("optimize: invalid bounds")
	}
	for i := range b.Lower {
		if b.Lower[i] > b.Upper[i] {
			return errors.New("optimize: lower bound exceeds upper bound")
		}
	}
	return nil
}

// Sample draws a uniform point inside the box.
func (b Bounds) Sample(rng *rand.Rand) []float64 {
	x := make([]float64, len(b.Lower))
	for i := range x {
		x[i] = b.Lower[i] + rng.Float64()*(b.Upper[i]-b.Lower[i])
	}
	return x
}

// Clamp projects x into the box in place and returns it.
func (b Bounds) Clamp(x []float64) []float64 {
	for i := range x {
		if x[i] < b.Lower[i] {
			x[i] = b.Lower[i]
		}
		if x[i] > b.Upper[i] {
			x[i] = b.Upper[i]
		}
	}
	return x
}

// Contains reports whether x lies inside the box (within tol).
func (b Bounds) Contains(x []float64, tol float64) bool {
	if len(x) != len(b.Lower) {
		return false
	}
	for i := range x {
		if x[i] < b.Lower[i]-tol || x[i] > b.Upper[i]+tol {
			return false
		}
	}
	return true
}

// Local is a local minimizer signature usable with MultiStart.
type Local func(f Objective, x0 []float64) (*Result, error)

// MSConfig configures the multi-start driver.
type MSConfig struct {
	// Starts is the number of random restarts in addition to the provided
	// initial points (default 10).
	Starts int
	// Seed seeds the restart sampler.
	Seed int64
	// InitialPoints are deterministic starting points tried before random
	// ones (e.g. the current operating point).
	InitialPoints [][]float64
	// Parallelism bounds the number of concurrent local searches. 0 (or
	// negative) uses GOMAXPROCS; 1 forces a serial run. The objective and
	// local solver must be safe for concurrent calls whenever the effective
	// parallelism exceeds 1. The returned Result is identical for every
	// setting: all start points are drawn up front from one deterministic
	// sequence, and the reduction picks the same winner a serial loop
	// would.
	Parallelism int
	// NewWorkerObjective, when non-nil, gives every worker goroutine its
	// own objective (engine affinity: one cached engine session per worker
	// instead of sync.Pool churn on every evaluation). It returns the
	// worker's objective and a reset hook the driver calls before each
	// local search; the hook scopes any cross-evaluation state the
	// objective carries (the dispatch engine's warm LP basis) to a single
	// start, so results do not depend on which worker ran which start. The
	// returned objective must be pointwise identical to the f passed to
	// MultiStart up to that per-start state; a nil reset is allowed for
	// stateless objectives.
	NewWorkerObjective func() (Objective, func())
	// NewWorkerScreened is NewWorkerObjective for objectives that also
	// expose a threshold-aware evaluator (the dual-bound screen): it
	// returns the worker's exact objective, its ThresholdEval, and the
	// per-start reset hook. The ThresholdEval must agree with the
	// objective — screened=false results equal the objective pointwise,
	// and a screened verdict certifies the objective exceeds the
	// threshold. When set it takes precedence over NewWorkerObjective;
	// the restart screen then certifies losing restarts without an exact
	// evaluation, and local searches run through ScreenedLocal when that
	// is configured too.
	NewWorkerScreened func() (Objective, ThresholdEval, func())
	// ScreenedLocal, when non-nil alongside NewWorkerScreened, is the
	// threshold-aware local minimizer (NelderMead with NMConfig.Screen):
	// it receives the box-projected objective and ThresholdEval. The
	// screened local search must return bitwise the Result of
	// Local(f, x0) — the screen may only skip solve work, never alter
	// the trajectory (see NMConfig.Screen). Falls back to Local when nil.
	ScreenedLocal func(f Objective, screen ThresholdEval, x0 []float64) (*Result, error)
	// ScreenRestarts stages the run: the deterministic InitialPoints
	// trajectories complete first, then every random restart is scored
	// with a single objective evaluation at its (clamped) start point and
	// earns a full local search only if that score strictly improves on
	// the best initial-point optimum. Restarts that fail the screen
	// contribute their score as a 1-eval outcome — they can never win the
	// reduction (their score is no better than an earlier result), so the
	// screen only removes local-search work, never changes a winner that
	// would have come from an initial point. Screening is deterministic
	// and worker-count invariant by construction: the bar is fixed at the
	// stage barrier before any restart is scored. It has no effect when
	// there are no InitialPoints. Callers with expensive objectives (the
	// dispatch-LP searches on the sparse path) use it to stop paying a
	// full Nelder-Mead budget for restarts that start out losing; exact
	// paths leave it off and keep the historical every-start behavior.
	ScreenRestarts bool
}

// MultiStart minimizes f over the box by running the local solver from
// several starting points (deterministic ones first, then Starts uniform
// random draws) and returning the best local optimum. Candidate points are
// clamped to the box before each local run, and returned points are clamped
// too, so the result always lies inside the box.
//
// Local searches run on up to cfg.Parallelism goroutines. Determinism is
// preserved by construction rather than by per-start reseeding: every start
// point is pre-drawn from the single Seed-keyed sequence (bitwise the
// points a serial run would draw), the local searches are independent, and
// the best result is selected by (objective value, start index) — the exact
// winner of the historical serial loop — so any worker count, including 1,
// returns the same Result.
func MultiStart(f Objective, box Bounds, local Local, cfg MSConfig) (*Result, error) {
	if err := box.Validate(); err != nil {
		return nil, err
	}
	if cfg.Starts <= 0 {
		cfg.Starts = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Assemble every start point up front, in the order the serial loop
	// would try them.
	points := make([][]float64, 0, len(cfg.InitialPoints)+cfg.Starts)
	for _, p := range cfg.InitialPoints {
		points = append(points, box.Clamp(append([]float64(nil), p...)))
	}
	for i := 0; i < cfg.Starts; i++ {
		points = append(points, box.Sample(rng))
	}
	if len(points) == 0 {
		return nil, errors.New("optimize: no starting points")
	}

	// workerObjective resolves one worker's objective, optional
	// threshold-aware evaluator, and per-start reset hook: the shared f
	// (no screen) when no affinity factory is configured.
	workerObjective := func() (Objective, ThresholdEval, func()) {
		if cfg.NewWorkerScreened != nil {
			return cfg.NewWorkerScreened()
		}
		if cfg.NewWorkerObjective != nil {
			obj, reset := cfg.NewWorkerObjective()
			return obj, nil, reset
		}
		return f, nil, nil
	}

	type outcome struct {
		res   *Result
		evals int
		err   error
	}
	outs := make([]outcome, len(points))
	// screenBar is the restart screen threshold: the best initial-point
	// optimum, fixed at the stage barrier before any restart is scored.
	// +Inf (the zero stage: no screening, or no initial points) admits
	// every restart.
	screenBar := math.Inf(1)
	screening := cfg.ScreenRestarts && len(cfg.InitialPoints) > 0
	// runStart runs start i against one worker's objective. The reset hook
	// fires before the local search, so everything the objective computes
	// for this start — including the final re-evaluation of the clamped
	// optimum — depends only on the start itself, never on which worker
	// ran it or what that worker ran before.
	runStart := func(i int, obj Objective, te ThresholdEval, reset func()) {
		if reset != nil {
			reset()
		}
		if screening && i >= len(cfg.InitialPoints) {
			// Restart screen: one evaluation at the start point decides
			// whether this restart earns a local search. The score is a
			// pure function of the point (the reset above scoped any
			// warm state), so the verdict is worker-count invariant.
			// With a ThresholdEval the evaluation itself can stop at a
			// certified bound above the bar: a screened restart's stored
			// F is then that bound — still above the bar, i.e. above an
			// earlier start's optimum — so under the strict-improvement
			// reduction it can never win, exactly like the exact score
			// it stands in for. Either way it counts one evaluation.
			x0 := box.Clamp(append([]float64(nil), points[i]...))
			var f0 float64
			if te != nil {
				f0, _ = te(x0, screenBar)
			} else {
				f0 = obj(x0)
			}
			if !(f0 < screenBar) {
				outs[i] = outcome{res: &Result{X: x0, F: f0, Evals: 1}, evals: 1}
				return
			}
			if reset != nil {
				reset() // scope the local search exactly like an unscreened run
			}
		}
		// Evaluate through a box projection so local solvers cannot leave
		// the box.
		proj := func(x []float64) float64 {
			clamped := box.Clamp(append([]float64(nil), x...))
			return obj(clamped)
		}
		var res *Result
		var err error
		if te != nil && cfg.ScreenedLocal != nil {
			projT := func(x []float64, threshold float64) (float64, bool) {
				clamped := box.Clamp(append([]float64(nil), x...))
				return te(clamped, threshold)
			}
			res, err = cfg.ScreenedLocal(proj, projT, points[i])
		} else {
			res, err = local(proj, points[i])
		}
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		evals := res.Evals
		res.X = box.Clamp(res.X)
		res.F = obj(res.X)
		evals++
		outs[i] = outcome{res: res, evals: evals}
	}

	// runRange dispatches starts [lo, hi) across up to cfg.Parallelism
	// workers and fails fast on the earliest-index error, exactly like the
	// historical serial loop.
	runRange := func(lo, hi int) error {
		workers := cfg.Parallelism
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > hi-lo {
			workers = hi - lo
		}
		if workers <= 1 {
			obj, te, reset := workerObjective()
			for i := lo; i < hi; i++ {
				runStart(i, obj, te, reset)
				if outs[i].err != nil {
					// Fail fast like the serial loop: later starts never run.
					return outs[i].err
				}
			}
			return nil
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				obj, te, reset := workerObjective()
				for i := range next {
					runStart(i, obj, te, reset)
				}
			}()
		}
		for i := lo; i < hi; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		for i := lo; i < hi; i++ {
			if outs[i].err != nil {
				return outs[i].err
			}
		}
		return nil
	}

	if screening {
		// Stage 1: deterministic initial points. The barrier fixes the
		// screen bar before any restart runs, so the bar — and with it
		// every screen verdict — is independent of scheduling.
		if err := runRange(0, len(cfg.InitialPoints)); err != nil {
			return nil, err
		}
		for i := 0; i < len(cfg.InitialPoints); i++ {
			if outs[i].res.F < screenBar {
				screenBar = outs[i].res.F
			}
		}
		if err := runRange(len(cfg.InitialPoints), len(points)); err != nil {
			return nil, err
		}
	} else if err := runRange(0, len(points)); err != nil {
		return nil, err
	}

	// Deterministic reduction in start order: first error wins, strict
	// improvement picks the earliest minimum — the serial loop's winner.
	var best *Result
	totalEvals := 0
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		totalEvals += outs[i].evals
		if best == nil || outs[i].res.F < best.F {
			best = outs[i].res
		}
	}
	best.Evals = totalEvals
	return best, nil
}
