package optimize

import (
	"errors"
	"math"
)

// PSConfig configures compass pattern search. The zero value selects
// sensible defaults.
type PSConfig struct {
	// InitialStep is the starting mesh size (default 0.1).
	InitialStep float64
	// MinStep is the mesh size at which the search stops (default 1e-8).
	MinStep float64
	// MaxEvals bounds objective evaluations (default 500 * dim).
	MaxEvals int
}

func (c PSConfig) withDefaults(dim int) PSConfig {
	if c.InitialStep <= 0 {
		c.InitialStep = 0.1
	}
	if c.MinStep <= 0 {
		c.MinStep = 1e-8
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 500 * dim
	}
	return c
}

// PatternSearch minimizes f by compass (coordinate) search: poll the 2n
// axis directions at the current mesh size, move to any improvement,
// otherwise halve the mesh. Simple, derivative-free and robust to the mild
// non-smoothness introduced by inner LP solves.
func PatternSearch(f Objective, x0 []float64, cfg PSConfig) (*Result, error) {
	n := len(x0)
	if n == 0 {
		return nil, errors.New("optimize: empty starting point")
	}
	cfg = cfg.withDefaults(n)

	x := append([]float64(nil), x0...)
	evals := 0
	fx := f(x)
	evals++
	step := cfg.InitialStep

	for step > cfg.MinStep && evals < cfg.MaxEvals {
		improved := false
		for j := 0; j < n && evals < cfg.MaxEvals; j++ {
			for _, dir := range []float64{1, -1} {
				cand := append([]float64(nil), x...)
				cand[j] += dir * step
				fc := f(cand)
				evals++
				if fc < fx-1e-15*math.Abs(fx) {
					x, fx = cand, fc
					improved = true
					break
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return &Result{X: x, F: fx, Evals: evals, Converged: step <= cfg.MinStep}, nil
}
