package optimize

import "math"

// Constraint represents an inequality constraint g(x) <= 0.
type Constraint func(x []float64) float64

// Penalized wraps an objective with quadratic penalties for violated
// constraints: f(x) + mu * Σ max(0, g_i(x))². With a sufficiently large mu
// the unconstrained minimum of the wrapped function approaches the
// constrained minimum; the MTD selection uses it to enforce the
// γ(H, H') >= γ_th effectiveness constraint inside derivative-free search.
func Penalized(f Objective, cons []Constraint, mu float64) Objective {
	return func(x []float64) float64 {
		v := f(x)
		for _, g := range cons {
			if viol := g(x); viol > 0 {
				v += mu * viol * viol
			}
		}
		return v
	}
}

// MaxViolation returns the largest constraint violation at x (0 if all
// constraints hold).
func MaxViolation(cons []Constraint, x []float64) float64 {
	var worst float64
	for _, g := range cons {
		if v := g(x); v > worst {
			worst = v
		}
	}
	return worst
}

// Feasible reports whether all constraints hold at x within tol.
func Feasible(cons []Constraint, x []float64, tol float64) bool {
	return MaxViolation(cons, x) <= tol
}

// InfeasibleObjective is a large sentinel value local solvers can use for
// points where the objective itself is undefined (e.g. the inner OPF is
// infeasible). It is finite so simplex arithmetic stays well-behaved.
const InfeasibleObjective = 1e12

// SoftMax returns max(v, floor), useful to keep penalized objectives away
// from -Inf/NaN propagation.
func SoftMax(v, floor float64) float64 {
	if math.IsNaN(v) {
		return InfeasibleObjective
	}
	return math.Max(v, floor)
}
