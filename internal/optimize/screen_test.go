package optimize

import (
	"math"
	"sync/atomic"
	"testing"
)

// screenBoxes builds the 2-D test box and a concurrency-safe counting
// sphere objective centred at the origin.
func countingSphere(evals *atomic.Int64) Objective {
	return func(x []float64) float64 {
		evals.Add(1)
		s := 0.0
		for _, v := range x {
			s += v * v
		}
		return s
	}
}

// TestMultiStartScreenPrunesLosingRestarts: with an initial point already
// near the optimum, every random restart starts out losing, so the screen
// charges each exactly one evaluation instead of a local-search budget —
// and the winner is bitwise the unscreened winner (it came from the
// initial point both ways).
func TestMultiStartScreenPrunesLosingRestarts(t *testing.T) {
	box := Bounds{Lower: []float64{-10, -10}, Upper: []float64{10, 10}}
	local := func(f Objective, x0 []float64) (*Result, error) {
		return NelderMead(f, x0, NMConfig{MaxEvals: 200})
	}
	run := func(screen bool) (*Result, int64) {
		var evals atomic.Int64
		res, err := MultiStart(countingSphere(&evals), box, local, MSConfig{
			Starts:         5,
			Seed:           3,
			InitialPoints:  [][]float64{{0.05, -0.05}},
			ScreenRestarts: screen,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, evals.Load()
	}
	_, fullEvals := run(false)
	scr, scrEvals := run(true)
	// The screened run still converges from the initial point (all five
	// restarts start out losing and are pruned; on the sphere a pruned
	// restart could only have re-found the same optimum anyway).
	if scr.F > 1e-9 {
		t.Fatalf("screened run failed to converge: %+v", scr)
	}
	// Each pruned restart costs one screen evaluation instead of a
	// local-search budget.
	saved := fullEvals - scrEvals
	if saved < 5*10 {
		t.Fatalf("screen saved only %d evaluations (full %d, screened %d)", saved, fullEvals, scrEvals)
	}
	if scr.Evals != int(scrEvals) {
		t.Fatalf("Result.Evals %d != objective evaluations %d", scr.Evals, scrEvals)
	}
}

// twoBasin has a shallow basin (value 0) around x=1 and a strictly deeper
// one (value -5) around x=-6: a restart landing near the deep basin starts
// below the initial point's optimum, so the screen must admit it.
func twoBasin(x []float64) float64 {
	if x[0] >= -1 {
		return (x[0] - 1) * (x[0] - 1)
	}
	return math.Abs(x[0]+6) - 5
}

// TestMultiStartScreenAdmitsImprovingRestart: the screen is a filter, not
// a cap — a restart whose start point already beats the deterministic
// optimum gets its full local search and can win.
func TestMultiStartScreenAdmitsImprovingRestart(t *testing.T) {
	box := Bounds{Lower: []float64{-8}, Upper: []float64{8}}
	local := func(f Objective, x0 []float64) (*Result, error) {
		return NelderMead(f, x0, NMConfig{MaxEvals: 300})
	}
	res, err := MultiStart(twoBasin, box, local, MSConfig{
		Starts:         6,
		Seed:           1,
		InitialPoints:  [][]float64{{1.5}},
		ScreenRestarts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > -4.9 {
		t.Fatalf("screened multistart missed the deep basin: F=%g at x=%g", res.F, res.X[0])
	}
}

// TestMultiStartScreenWorkerInvariance: the screen bar is fixed at the
// stage barrier, so verdicts — and with them the winner and the total
// evaluation count — are identical for every worker count.
func TestMultiStartScreenWorkerInvariance(t *testing.T) {
	box := Bounds{Lower: []float64{-8, -8}, Upper: []float64{8, 8}}
	obj := func(x []float64) float64 { return twoBasin(x[:1]) + x[1]*x[1] }
	local := func(f Objective, x0 []float64) (*Result, error) {
		return NelderMead(f, x0, NMConfig{MaxEvals: 150})
	}
	var ref *Result
	for _, par := range []int{1, 2, 4} {
		res, err := MultiStart(obj, box, local, MSConfig{
			Starts:         8,
			Seed:           7,
			InitialPoints:  [][]float64{{1.5, 0.5}, {2, -1}},
			Parallelism:    par,
			ScreenRestarts: true,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.F != ref.F || res.Evals != ref.Evals || res.X[0] != ref.X[0] || res.X[1] != ref.X[1] {
			t.Fatalf("parallelism %d result differs: %+v vs %+v", par, res, ref)
		}
	}
}

// TestMultiStartScreenWithoutInitialPointsIsNoop: with nothing to set the
// bar, screening must not change anything.
func TestMultiStartScreenWithoutInitialPointsIsNoop(t *testing.T) {
	box := Bounds{Lower: []float64{-10, -10}, Upper: []float64{10, 10}}
	local := func(f Objective, x0 []float64) (*Result, error) {
		return NelderMead(f, x0, NMConfig{MaxEvals: 100})
	}
	run := func(screen bool) (*Result, int64) {
		var evals atomic.Int64
		res, err := MultiStart(countingSphere(&evals), box, local, MSConfig{
			Starts:         4,
			Seed:           11,
			ScreenRestarts: screen,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, evals.Load()
	}
	a, ae := run(false)
	b, be := run(true)
	if a.F != b.F || ae != be || a.Evals != b.Evals {
		t.Fatalf("screening without initial points changed the run: %+v/%d vs %+v/%d", a, ae, b, be)
	}
}
