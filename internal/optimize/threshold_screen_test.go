package optimize

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// mkScreen mimics the dual-bound screen on an arbitrary objective: it
// certifies "above threshold" with the lower bound f(x) − slack whenever
// that bound still clears the threshold, and answers exactly otherwise.
// slack > 0 exercises the bound-is-not-the-value substitution (the
// screened value differs from the exact one, as a real weak-duality
// bound would); exactCalls counts the evaluations that could not stop at
// a bound — the "solves" the screen saved show up as the difference.
func mkScreen(f Objective, slack float64, exactCalls, screens *int) ThresholdEval {
	return func(x []float64, threshold float64) (float64, bool) {
		if !math.IsInf(threshold, 1) {
			if b := f(x) - slack; b > threshold {
				*screens++
				return b, true
			}
		}
		*exactCalls++
		return f(x), false
	}
}

// ripple is a multimodal objective rough enough to drive NM through
// every branch (reflection, expansion, both contractions, shrink).
func ripple(off []float64) Objective {
	return func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - off[i]
			s += d*d + 0.3*math.Sin(7*d)
		}
		return s
	}
}

// TestScreenedNelderMeadResultBitwise is the NM screening contract: the
// screened run must return a bitwise-identical Result (X, F, Evals,
// Converged) while stopping at certified bounds for some evaluations.
// Randomized objectives, starts and budgets; slack makes every screened
// value differ from the exact one, so any unsound substitution would
// steer the trajectory and change the result.
func TestScreenedNelderMeadResultBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	screensTotal, savedTotal := 0, 0
	for trial := 0; trial < 60; trial++ {
		dim := 2 + rng.Intn(4)
		off := make([]float64, dim)
		x0 := make([]float64, dim)
		for i := range off {
			off[i] = 2 * (2*rng.Float64() - 1)
			x0[i] = 3 * (2*rng.Float64() - 1)
		}
		f := ripple(off)
		cfg := NMConfig{MaxEvals: 40 + rng.Intn(120)}
		exact, err := NelderMead(f, x0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		exactCalls, screens := 0, 0
		scfg := cfg
		scfg.Screen = mkScreen(f, 0.05+rng.Float64(), &exactCalls, &screens)
		screened, err := NelderMead(f, x0, scfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(exact, screened) {
			t.Fatalf("trial %d: screened result differs:\nexact    %+v\nscreened %+v", trial, exact, screened)
		}
		if exactCalls+screens != screened.Evals {
			t.Fatalf("trial %d: probe accounting: %d exact + %d screened != %d evals",
				trial, exactCalls, screens, screened.Evals)
		}
		screensTotal += screens
		savedTotal += screened.Evals - exactCalls
	}
	if screensTotal == 0 {
		t.Fatal("property test never exercised a screened evaluation")
	}
	t.Logf("screen replaced %d of the exact evaluations across trials (saved %d)", screensTotal, savedTotal)
}

// TestScreenedMultiStartResultBitwise runs the full screened pipeline —
// restart screen via ThresholdEval plus ScreenedLocal Nelder-Mead — and
// pins the Result bitwise against the unscreened MultiStart.
func TestScreenedMultiStartResultBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	box := Bounds{Lower: []float64{-4, -4, -4}, Upper: []float64{4, 4, 4}}
	for trial := 0; trial < 20; trial++ {
		off := []float64{2 * rng.Float64(), -2 * rng.Float64(), rng.Float64()}
		f := ripple(off)
		maxEvals := 60 + rng.Intn(60)
		local := func(fo Objective, x0 []float64) (*Result, error) {
			return NelderMead(fo, x0, NMConfig{MaxEvals: maxEvals})
		}
		base := MSConfig{
			Starts:         4,
			Seed:           int64(trial),
			InitialPoints:  [][]float64{{0.5, 0.5, 0.5}},
			ScreenRestarts: true,
		}
		exact, err := MultiStart(f, box, local, base)
		if err != nil {
			t.Fatal(err)
		}
		screens, exactCalls := 0, 0
		slack := 0.1 + rng.Float64()
		scr := base
		scr.NewWorkerScreened = func() (Objective, ThresholdEval, func()) {
			return f, mkScreen(f, slack, &exactCalls, &screens), nil
		}
		scr.ScreenedLocal = func(fo Objective, screen ThresholdEval, x0 []float64) (*Result, error) {
			return NelderMead(fo, x0, NMConfig{MaxEvals: maxEvals, Screen: screen})
		}
		screened, err := MultiStart(f, box, local, scr)
		if err != nil {
			t.Fatal(err)
		}
		// Pruned restarts store their screen score as F; with a screen
		// that value is the certified bound, not the exact score — but
		// such an outcome can never be the returned winner (its F is no
		// better than an earlier start's optimum), so the returned
		// Result must still be bitwise identical.
		if !reflect.DeepEqual(exact, screened) {
			t.Fatalf("trial %d: screened MultiStart differs:\nexact    %+v\nscreened %+v", trial, exact, screened)
		}
	}
}
