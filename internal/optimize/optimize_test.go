package optimize

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i < len(x)-1; i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func TestNelderMeadSphere(t *testing.T) {
	res, err := NelderMead(sphere, []float64{3, -2, 1}, NMConfig{MaxEvals: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-8 {
		t.Fatalf("F = %v at %v, want ~0", res.F, res.X)
	}
	if !res.Converged {
		t.Error("expected convergence on the sphere")
	}
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	res, err := NelderMead(rosenbrock, []float64{-1.2, 1}, NMConfig{MaxEvals: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.X {
		if math.Abs(v-1) > 1e-3 {
			t.Fatalf("X = %v, want ~[1 1] (F=%v)", res.X, res.F)
		}
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	if _, err := NelderMead(sphere, nil, NMConfig{}); err == nil {
		t.Fatal("expected error for empty x0")
	}
}

func TestNelderMeadRespectsBudget(t *testing.T) {
	count := 0
	f := func(x []float64) float64 {
		count++
		return sphere(x)
	}
	res, err := NelderMead(f, []float64{5, 5, 5, 5}, NMConfig{MaxEvals: 50})
	if err != nil {
		t.Fatal(err)
	}
	// A few extra evaluations are allowed within one iteration, but not
	// more than the shrink step can add (n evaluations).
	if count > 50+5 {
		t.Errorf("objective evaluated %d times, budget 50", count)
	}
	if res.Evals > 50+5 {
		t.Errorf("reported evals %d exceeds budget", res.Evals)
	}
}

func TestPatternSearchSphere(t *testing.T) {
	res, err := PatternSearch(sphere, []float64{2, -3}, PSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-10 {
		t.Fatalf("F = %v, want ~0", res.F)
	}
}

func TestPatternSearchQuadraticShifted(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1) + 7
	}
	res, err := PatternSearch(f, []float64{0, 0}, PSConfig{InitialStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-5 || math.Abs(res.X[1]+1) > 1e-5 {
		t.Fatalf("X = %v, want [3 -1]", res.X)
	}
	if math.Abs(res.F-7) > 1e-9 {
		t.Fatalf("F = %v, want 7", res.F)
	}
}

func TestPatternSearchEmptyInput(t *testing.T) {
	if _, err := PatternSearch(sphere, nil, PSConfig{}); err == nil {
		t.Fatal("expected error for empty x0")
	}
}

func TestBoundsValidate(t *testing.T) {
	if err := (Bounds{Lower: []float64{0}, Upper: []float64{1}}).Validate(); err != nil {
		t.Errorf("valid box rejected: %v", err)
	}
	bad := []Bounds{
		{},
		{Lower: []float64{0}, Upper: []float64{1, 2}},
		{Lower: []float64{2}, Upper: []float64{1}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBoundsSampleClampContains(t *testing.T) {
	b := Bounds{Lower: []float64{-1, 0}, Upper: []float64{1, 2}}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		x := b.Sample(rng)
		if !b.Contains(x, 0) {
			t.Fatalf("sampled point %v outside box", x)
		}
	}
	clamped := b.Clamp([]float64{-5, 5})
	if clamped[0] != -1 || clamped[1] != 2 {
		t.Errorf("Clamp = %v, want [-1 2]", clamped)
	}
	if b.Contains([]float64{0}, 0) {
		t.Error("Contains must reject wrong dimension")
	}
}

func TestMultiStartFindsGlobalMin(t *testing.T) {
	// A deceptive 1-D function with a local minimum at x=-2 (value 1) and
	// the global minimum at x=2 (value 0).
	f := func(x []float64) float64 {
		v := x[0]
		return math.Min((v+2)*(v+2)+1, (v-2)*(v-2))
	}
	box := Bounds{Lower: []float64{-5}, Upper: []float64{5}}
	local := func(f Objective, x0 []float64) (*Result, error) {
		return NelderMead(f, x0, NMConfig{MaxEvals: 500})
	}
	res, err := MultiStart(f, box, local, MSConfig{Starts: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 || res.F > 1e-6 {
		t.Fatalf("X = %v F = %v, want global minimum at 2", res.X, res.F)
	}
}

func TestMultiStartUsesInitialPoints(t *testing.T) {
	// Count runs to ensure the deterministic initial point is included.
	var starts [][]float64
	local := func(f Objective, x0 []float64) (*Result, error) {
		starts = append(starts, append([]float64(nil), x0...))
		return &Result{X: x0, F: f(x0)}, nil
	}
	box := Bounds{Lower: []float64{0}, Upper: []float64{1}}
	_, err := MultiStart(sphere, box, local, MSConfig{
		Starts:        3,
		InitialPoints: [][]float64{{0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 4 {
		t.Fatalf("local solver ran %d times, want 4", len(starts))
	}
	if starts[0][0] != 0.25 {
		t.Errorf("first start = %v, want the provided initial point", starts[0])
	}
}

func TestMultiStartResultInsideBox(t *testing.T) {
	// Local solver that tries to escape the box; MultiStart must clamp.
	local := func(f Objective, x0 []float64) (*Result, error) {
		x := []float64{99}
		return &Result{X: x, F: f(x)}, nil
	}
	box := Bounds{Lower: []float64{0}, Upper: []float64{1}}
	res, err := MultiStart(sphere, box, local, MSConfig{Starts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !box.Contains(res.X, 0) {
		t.Fatalf("result %v escaped the box", res.X)
	}
}

func TestMultiStartInvalidBox(t *testing.T) {
	local := func(f Objective, x0 []float64) (*Result, error) {
		return &Result{X: x0, F: f(x0)}, nil
	}
	if _, err := MultiStart(sphere, Bounds{}, local, MSConfig{}); err == nil {
		t.Fatal("expected error for invalid box")
	}
}

func TestPenalized(t *testing.T) {
	// min x² s.t. x >= 1 (g(x) = 1-x <= 0). Penalized optimum approaches 1.
	f := func(x []float64) float64 { return x[0] * x[0] }
	g := func(x []float64) float64 { return 1 - x[0] }
	pen := Penalized(f, []Constraint{g}, 1e6)
	res, err := NelderMead(pen, []float64{3}, NMConfig{MaxEvals: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 {
		t.Fatalf("X = %v, want ~1", res.X)
	}
	// Inside the feasible region the penalty must vanish.
	if got := pen([]float64{2}); got != 4 {
		t.Errorf("penalized value at feasible point = %v, want 4", got)
	}
}

func TestMaxViolationAndFeasible(t *testing.T) {
	cons := []Constraint{
		func(x []float64) float64 { return x[0] - 1 },  // x <= 1
		func(x []float64) float64 { return -x[0] - 1 }, // x >= -1
	}
	if got := MaxViolation(cons, []float64{3}); got != 2 {
		t.Errorf("MaxViolation = %v, want 2", got)
	}
	if got := MaxViolation(cons, []float64{0}); got != 0 {
		t.Errorf("MaxViolation = %v, want 0", got)
	}
	if !Feasible(cons, []float64{0.5}, 0) {
		t.Error("0.5 should be feasible")
	}
	if Feasible(cons, []float64{1.5}, 0.1) {
		t.Error("1.5 should be infeasible")
	}
}

func TestSoftMax(t *testing.T) {
	if got := SoftMax(math.NaN(), 0); got != InfeasibleObjective {
		t.Errorf("SoftMax(NaN) = %v", got)
	}
	if got := SoftMax(-5, 0); got != 0 {
		t.Errorf("SoftMax(-5, 0) = %v, want 0", got)
	}
	if got := SoftMax(5, 0); got != 5 {
		t.Errorf("SoftMax(5, 0) = %v, want 5", got)
	}
}

// Property: Nelder-Mead never returns a worse point than its start on
// convex quadratics.
func TestQuickNelderMeadImproves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		center := make([]float64, n)
		x0 := make([]float64, n)
		for i := range center {
			center[i] = r.NormFloat64() * 3
			x0[i] = r.NormFloat64() * 3
		}
		obj := func(x []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - center[i]
				s += d * d
			}
			return s
		}
		res, err := NelderMead(obj, x0, NMConfig{MaxEvals: 3000})
		if err != nil {
			return false
		}
		return res.F <= obj(x0)+1e-12 && res.F < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: pattern search on separable convex quadratics converges to the
// optimum from any start.
func TestQuickPatternSearchConverges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		center := make([]float64, n)
		x0 := make([]float64, n)
		for i := range center {
			center[i] = r.NormFloat64() * 2
			x0[i] = r.NormFloat64() * 2
		}
		obj := func(x []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - center[i]
				s += d * d
			}
			return s
		}
		res, err := PatternSearch(obj, x0, PSConfig{InitialStep: 1, MaxEvals: 20000})
		if err != nil {
			return false
		}
		return res.F < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// multimodal is a deliberately nasty objective with many local minima.
func multimodal(x []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v*v + 2*math.Sin(7*v+float64(i))
	}
	return s
}

// TestMultiStartParallelismInvariant is the determinism contract of the
// parallel driver: identical Result (point, value, eval count) for any
// Parallelism setting, including values above GOMAXPROCS.
func TestMultiStartParallelismInvariant(t *testing.T) {
	box := Bounds{Lower: []float64{-3, -3, -3}, Upper: []float64{3, 3, 3}}
	local := func(f Objective, x0 []float64) (*Result, error) {
		return NelderMead(f, x0, NMConfig{MaxEvals: 300})
	}
	settings := []int{1, 4, runtime.GOMAXPROCS(0), 16}
	var results []*Result
	for _, par := range settings {
		res, err := MultiStart(multimodal, box, local, MSConfig{
			Starts:        12,
			Seed:          99,
			InitialPoints: [][]float64{{1, 1, 1}},
			Parallelism:   par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		results = append(results, res)
	}
	base := results[0]
	for i, res := range results[1:] {
		if res.F != base.F {
			t.Fatalf("parallelism %d: F = %v, want %v", settings[i+1], res.F, base.F)
		}
		for j := range base.X {
			if res.X[j] != base.X[j] {
				t.Fatalf("parallelism %d: X[%d] = %v, want %v", settings[i+1], j, res.X[j], base.X[j])
			}
		}
		if res.Evals != base.Evals {
			t.Fatalf("parallelism %d: Evals = %d, want %d", settings[i+1], res.Evals, base.Evals)
		}
	}
}

// TestMultiStartWorkerObjectiveInvariant checks the per-worker objective
// affinity path: a factory-built objective that carries per-start state
// (standing in for the dispatch engine's warm LP basis) must produce the
// identical Result for every worker count, because the reset hook fires
// before each local search and scopes the state to that start.
func TestMultiStartWorkerObjectiveInvariant(t *testing.T) {
	box := Bounds{Lower: []float64{-3, -3, -3}, Upper: []float64{3, 3, 3}}
	local := func(f Objective, x0 []float64) (*Result, error) {
		return NelderMead(f, x0, NMConfig{MaxEvals: 200})
	}
	run := func(par int) (*Result, int64) {
		var resets int64
		factory := func() (Objective, func()) {
			evals := 0 // per-worker state, reset at every start
			obj := func(x []float64) float64 {
				evals++
				// The perturbation depends on the evaluation index since
				// the last reset: results stay parallelism-invariant only
				// if the driver really resets per start.
				return multimodal(x) * (1 + 1e-12*float64(evals))
			}
			reset := func() {
				evals = 0
				atomic.AddInt64(&resets, 1)
			}
			return obj, reset
		}
		res, err := MultiStart(multimodal, box, local, MSConfig{
			Starts:             9,
			Seed:               17,
			InitialPoints:      [][]float64{{1, 1, 1}},
			Parallelism:        par,
			NewWorkerObjective: factory,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return res, atomic.LoadInt64(&resets)
	}
	base, baseResets := run(1)
	if baseResets != 10 {
		t.Fatalf("serial run reset %d times, want one per start (10)", baseResets)
	}
	for _, par := range []int{4, 16} {
		res, resets := run(par)
		if resets != 10 {
			t.Fatalf("parallelism %d reset %d times, want 10", par, resets)
		}
		if res.F != base.F || res.Evals != base.Evals {
			t.Fatalf("parallelism %d: (F, Evals) = (%v, %d), want (%v, %d)", par, res.F, res.Evals, base.F, base.Evals)
		}
		for j := range base.X {
			if res.X[j] != base.X[j] {
				t.Fatalf("parallelism %d: X[%d] = %v, want %v", par, j, res.X[j], base.X[j])
			}
		}
	}
}

// TestMultiStartParallelErrorIsFirstByIndex checks the error reduction:
// the reported error is the one the serial loop would have hit first.
func TestMultiStartParallelErrorIsFirstByIndex(t *testing.T) {
	box := Bounds{Lower: []float64{0}, Upper: []float64{1}}
	local := func(f Objective, x0 []float64) (*Result, error) {
		if x0[0] > 0.99 { // initial point #0 fails
			return nil, errors.New("boom-first")
		}
		return &Result{X: x0, F: f(x0), Evals: 1}, nil
	}
	_, err := MultiStart(func(x []float64) float64 { return x[0] }, box, local, MSConfig{
		Starts:        6,
		Seed:          1,
		InitialPoints: [][]float64{{1}},
		Parallelism:   4,
	})
	if err == nil || err.Error() != "boom-first" {
		t.Fatalf("err = %v, want boom-first", err)
	}
}
