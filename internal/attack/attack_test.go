package attack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/dcflow"
	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/se"
)

func setup14(t *testing.T) (*grid.Network, *mat.Dense, []float64) {
	t.Helper()
	n := grid.CaseIEEE14()
	h := n.MeasurementMatrix(n.Reactances())
	inj := n.InjectionsMW([]float64{220, 10, 9, 10, 10})
	res, err := dcflow.Solve(n, n.Reactances(), inj)
	if err != nil {
		t.Fatal(err)
	}
	z := dcflow.Measurements(n, inj, res)
	return n, h, z
}

func TestCraft(t *testing.T) {
	_, h, _ := setup14(t)
	c := make([]float64, h.Cols())
	c[0] = 1
	v := Craft(h, c)
	if !mat.VecEqual(v.A, h.Col(0), 1e-14) {
		t.Fatal("Craft(e1) must return the first column of H")
	}
	// C must be a copy, not an alias.
	c[0] = 99
	if v.C[0] == 99 {
		t.Error("Craft aliases the input c")
	}
}

func TestCraftedAttackIsStealthyOnOldH(t *testing.T) {
	_, h, _ := setup14(t)
	est, err := se.NewEstimator(h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		c := make([]float64, h.Cols())
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		v := Craft(h, c)
		if !est.IsStealthy(v.A, 0) {
			t.Fatalf("crafted attack %d is not stealthy on its own H", i)
		}
		if !IsUndetectable(h, v.A, 0) {
			t.Fatalf("Proposition-1 test rejects crafted attack %d on its own H", i)
		}
	}
}

func TestRandomAttackScaling(t *testing.T) {
	_, h, z := setup14(t)
	rng := rand.New(rand.NewSource(8))
	for _, ratio := range []float64{0.01, 0.08, 0.3} {
		v, err := Random(rng, h, z, ratio)
		if err != nil {
			t.Fatal(err)
		}
		if got := MagnitudeRatio(v.A, z); math.Abs(got-ratio) > 1e-9 {
			t.Errorf("ratio = %v, want %v", got, ratio)
		}
		// a must equal H·c after scaling too.
		if !mat.VecEqual(v.A, mat.MulVec(h, v.C), 1e-10) {
			t.Error("scaled attack inconsistent: a != H·c")
		}
	}
}

func TestRandomAttackErrors(t *testing.T) {
	_, h, z := setup14(t)
	rng := rand.New(rand.NewSource(9))
	if _, err := Random(rng, h, z, 0); err == nil {
		t.Error("expected error for ratio 0")
	}
	if _, err := Random(rng, h, make([]float64, len(z)), 0.1); err == nil {
		t.Error("expected error for zero measurement vector")
	}
}

func TestIsUndetectableAfterPerturbation(t *testing.T) {
	// 4-bus motivating example: attack 2 (c = e4) involves only branches
	// 3-4, so perturbing branch 1 or 2 leaves it stealthy while perturbing
	// branch 3 or 4 exposes it (paper Table I zero pattern).
	n := grid.Case4GS()
	h := n.MeasurementMatrix(n.Reactances())
	// Reduced state c: buses 2,3,4 -> c = e_{bus4} = [0,0,1].
	attack2 := Craft(h, []float64{0, 0, 1})

	for line := 0; line < 4; line++ {
		x := n.Reactances()
		x[line] *= 1.2
		hNew := n.MeasurementMatrix(x)
		got := IsUndetectable(hNew, attack2.A, 0)
		want := line == 0 || line == 1 // stealthy when perturbing lines 1-2
		if got != want {
			t.Errorf("perturbing line %d: undetectable = %v, want %v", line+1, got, want)
		}
	}

	// Attack 1 (c = [0,1,1,1] over all buses = [1,1,1] reduced) involves
	// only branches 1-2: the pattern flips.
	attack1 := Craft(h, []float64{1, 1, 1})
	for line := 0; line < 4; line++ {
		x := n.Reactances()
		x[line] *= 1.2
		hNew := n.MeasurementMatrix(x)
		got := IsUndetectable(hNew, attack1.A, 0)
		want := line == 2 || line == 3
		if got != want {
			t.Errorf("attack1, perturbing line %d: undetectable = %v, want %v", line+1, got, want)
		}
	}
}

func TestZeroAttackUndetectable(t *testing.T) {
	_, h, _ := setup14(t)
	if !IsUndetectable(h, make([]float64, h.Rows()), 0) {
		t.Error("zero attack must be undetectable")
	}
}

func TestMagnitudeRatioZeroZ(t *testing.T) {
	if got := MagnitudeRatio([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("MagnitudeRatio with zero z = %v, want 0", got)
	}
}

// Property: attacks crafted on H are undetectable on any scalar multiple of
// H (the paper's perfectly-aligned column space case) but become detectable
// under a D-FACTS perturbation of a branch their c touches.
func TestQuickScalingKeepsStealth(t *testing.T) {
	n := grid.CaseIEEE14()
	h := n.MeasurementMatrix(n.Reactances())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := make([]float64, h.Cols())
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		v := Craft(h, c)
		scaled := mat.ScaleMat(1+rng.Float64(), h)
		return IsUndetectable(scaled, v.A, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the Proposition-1 rank test agrees with the residual-component
// test of the estimator for random attacks and perturbations.
func TestQuickRankTestAgreesWithResidual(t *testing.T) {
	n := grid.CaseIEEE14()
	h := n.MeasurementMatrix(n.Reactances())
	lo, hi := n.DFACTSBounds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random D-FACTS setting.
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		hNew := n.MeasurementMatrix(n.ExpandDFACTS(xd))
		est, err := se.NewEstimator(hNew)
		if err != nil {
			return false
		}
		c := make([]float64, h.Cols())
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		v := Craft(h, c)
		return IsUndetectable(hNew, v.A, 0) == est.IsStealthy(v.A, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRandomBatchMatchesRandom: the packed sampler must consume the
// generator exactly as sequential Random calls and produce bitwise
// identical attacks.
func TestRandomBatchMatchesRandom(t *testing.T) {
	h := testH(t)
	z := testZ(h.Rows())
	const k = 25

	single := make([]*Vector, k)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < k; i++ {
		v, err := Random(rng, h, z, 0.08)
		if err != nil {
			t.Fatal(err)
		}
		single[i] = v
	}

	rng = rand.New(rand.NewSource(77))
	batch, err := RandomBatch(rng, h, z, 0.08, k)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() != k {
		t.Fatalf("Len = %d, want %d", batch.Len(), k)
	}
	for i := 0; i < k; i++ {
		for j, v := range single[i].A {
			if batch.A(i)[j] != v {
				t.Fatalf("attack %d: A[%d] = %v, want %v", i, j, batch.A(i)[j], v)
			}
		}
		for j, v := range single[i].C {
			if batch.C(i)[j] != v {
				t.Fatalf("attack %d: C[%d] = %v, want %v", i, j, batch.C(i)[j], v)
			}
		}
	}
	// At copies.
	v := batch.At(2)
	v.A[0]++
	if batch.A(2)[0] == v.A[0] {
		t.Fatal("At returned a view, want a copy")
	}
}

// testH builds a small full-rank measurement-like matrix.
func testH(t *testing.T) *mat.Dense {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	h := mat.NewDense(12, 4)
	for i := 0; i < h.Rows(); i++ {
		for j := 0; j < h.Cols(); j++ {
			h.Set(i, j, rng.NormFloat64())
		}
	}
	return h
}

func testZ(m int) []float64 {
	z := make([]float64, m)
	for i := range z {
		z[i] = 1 + float64(i%5)
	}
	return z
}
