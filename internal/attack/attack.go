// Package attack constructs the false data injection (FDI) attacks the MTD
// defends against. An attacker who has learned the measurement matrix H of
// the state estimator injects a = H·c into the sensor measurements; such
// attacks are undetectable by the residual BDD (Liu, Ning & Reiter 2009).
// The package crafts structured attacks from chosen or random state
// perturbations c, applies the paper's ‖a‖₁/‖z‖₁ magnitude scaling, and
// implements Proposition 1's rank test for whether an attack remains
// stealthy after an MTD changes the matrix to H'.
package attack

import (
	"errors"
	"math/rand"

	"gridmtd/internal/mat"
)

// Vector is a crafted FDI attack.
type Vector struct {
	// C is the state perturbation the attacker injects, in the reduced
	// (slack-removed) state space.
	C []float64
	// A = H·C is the measurement injection, length M.
	A []float64
}

// Craft builds the BDD-bypassing attack a = H·c for the (pre-perturbation)
// measurement matrix h.
func Craft(h *mat.Dense, c []float64) *Vector {
	if len(c) != h.Cols() {
		panic("attack: state perturbation length mismatch")
	}
	return &Vector{C: mat.CopyVec(c), A: mat.MulVec(h, c)}
}

// Random draws a random BDD-bypassing attack: c ~ N(0, I) scaled so that
// ‖a‖₁/‖z‖₁ = ratio against the operating-point measurement vector z (the
// paper uses ratio ≈ 0.08, keeping injections small relative to real
// measurements). It returns an error if z or the drawn direction is
// degenerate.
func Random(rng *rand.Rand, h *mat.Dense, z []float64, ratio float64) (*Vector, error) {
	if ratio <= 0 {
		return nil, errors.New("attack: ratio must be positive")
	}
	zNorm := mat.Norm1(z)
	if zNorm == 0 {
		return nil, errors.New("attack: zero measurement vector")
	}
	c := make([]float64, h.Cols())
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	a := mat.MulVec(h, c)
	aNorm := mat.Norm1(a)
	if aNorm == 0 {
		return nil, errors.New("attack: degenerate attack direction")
	}
	scale := ratio * zNorm / aNorm
	return &Vector{C: mat.ScaleVec(scale, c), A: mat.ScaleVec(scale, a)}, nil
}

// IsUndetectable implements the paper's Proposition 1: attack a (crafted
// from the old H) stays undetectable under the new measurement matrix
// hNew iff rank([hNew a]) = rank(hNew), i.e. a lies in Col(hNew). tol is
// the relative rank tolerance (<= 0 selects the default).
func IsUndetectable(hNew *mat.Dense, a []float64, tol float64) bool {
	if len(a) != hNew.Rows() {
		panic("attack: attack vector length mismatch")
	}
	if mat.Norm2(a) == 0 {
		return true
	}
	base := mat.Rank(hNew, tol)
	aug := mat.Rank(mat.HStackVec(hNew, a), tol)
	return aug == base
}

// MagnitudeRatio returns ‖a‖₁/‖z‖₁, the attack sizing metric used in the
// paper's simulations.
func MagnitudeRatio(a, z []float64) float64 {
	zn := mat.Norm1(z)
	if zn == 0 {
		return 0
	}
	return mat.Norm1(a) / zn
}
