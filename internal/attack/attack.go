// Package attack constructs the false data injection (FDI) attacks the MTD
// defends against. An attacker who has learned the measurement matrix H of
// the state estimator injects a = H·c into the sensor measurements; such
// attacks are undetectable by the residual BDD (Liu, Ning & Reiter 2009).
// The package crafts structured attacks from chosen or random state
// perturbations c, applies the paper's ‖a‖₁/‖z‖₁ magnitude scaling, and
// implements Proposition 1's rank test for whether an attack remains
// stealthy after an MTD changes the matrix to H'.
package attack

import (
	"errors"
	"fmt"
	"math/rand"

	"gridmtd/internal/mat"
)

// Vector is a crafted FDI attack.
type Vector struct {
	// C is the state perturbation the attacker injects, in the reduced
	// (slack-removed) state space.
	C []float64
	// A = H·C is the measurement injection, length M.
	A []float64
}

// Craft builds the BDD-bypassing attack a = H·c for the (pre-perturbation)
// measurement matrix h.
func Craft(h *mat.Dense, c []float64) *Vector {
	if len(c) != h.Cols() {
		panic("attack: state perturbation length mismatch")
	}
	return &Vector{C: mat.CopyVec(c), A: mat.MulVec(h, c)}
}

// Random draws a random BDD-bypassing attack: c ~ N(0, I) scaled so that
// ‖a‖₁/‖z‖₁ = ratio against the operating-point measurement vector z (the
// paper uses ratio ≈ 0.08, keeping injections small relative to real
// measurements). It returns an error if z or the drawn direction is
// degenerate.
func Random(rng *rand.Rand, h *mat.Dense, z []float64, ratio float64) (*Vector, error) {
	c := make([]float64, h.Cols())
	a := make([]float64, h.Rows())
	if err := randomInto(rng, h, z, ratio, c, a); err != nil {
		return nil, err
	}
	return &Vector{C: c, A: a}, nil
}

// randomInto draws one random attack into the provided state and
// measurement slices, consuming the generator exactly as Random does.
func randomInto(rng *rand.Rand, h *mat.Dense, z []float64, ratio float64, c, a []float64) error {
	if ratio <= 0 {
		return errors.New("attack: ratio must be positive")
	}
	zNorm := mat.Norm1(z)
	if zNorm == 0 {
		return errors.New("attack: zero measurement vector")
	}
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	mat.MulVecInto(a, h, c)
	aNorm := mat.Norm1(a)
	if aNorm == 0 {
		return errors.New("attack: degenerate attack direction")
	}
	scale := ratio * zNorm / aNorm
	for i, v := range c {
		c[i] = scale * v
	}
	for i, v := range a {
		a[i] = scale * v
	}
	return nil
}

// Batch is a set of attacks packed into two contiguous matrices — one row
// per attack. Compared to a slice of individual Vectors this is a single
// pair of allocations, and the evaluation loop that scans every attack's
// measurement injection walks memory sequentially instead of chasing a
// thousand heap pointers.
type Batch struct {
	c *mat.Dense // k×(N-1) state perturbations, one per row
	a *mat.Dense // k×M measurement injections, one per row
}

// NewBatch returns an empty batch with capacity for count attacks on a
// system with the given state and measurement dimensions.
func NewBatch(count, states, measurements int) *Batch {
	return &Batch{c: mat.NewDense(count, states), a: mat.NewDense(count, measurements)}
}

// RandomBatch draws count random attacks (see Random) into a packed batch.
// The generator is consumed exactly as count sequential Random calls
// would, so the attacks are bitwise identical to the unpacked path.
func RandomBatch(rng *rand.Rand, h *mat.Dense, z []float64, ratio float64, count int) (*Batch, error) {
	b := NewBatch(count, h.Cols(), h.Rows())
	for k := 0; k < count; k++ {
		if err := randomInto(rng, h, z, ratio, b.c.RowView(k), b.a.RowView(k)); err != nil {
			return nil, fmt.Errorf("attack: sampling attack %d: %w", k, err)
		}
	}
	return b, nil
}

// Len returns the number of attacks in the batch.
func (b *Batch) Len() int { return b.a.Rows() }

// C returns attack i's state perturbation as a view into the batch.
func (b *Batch) C(i int) []float64 { return b.c.RowView(i) }

// A returns attack i's measurement injection a = H·c as a view into the
// batch.
func (b *Batch) A(i int) []float64 { return b.a.RowView(i) }

// At materializes attack i as a standalone Vector (copies).
func (b *Batch) At(i int) *Vector {
	return &Vector{C: mat.CopyVec(b.C(i)), A: mat.CopyVec(b.A(i))}
}

// IsUndetectable implements the paper's Proposition 1: attack a (crafted
// from the old H) stays undetectable under the new measurement matrix
// hNew iff rank([hNew a]) = rank(hNew), i.e. a lies in Col(hNew). tol is
// the relative rank tolerance (<= 0 selects the default).
func IsUndetectable(hNew *mat.Dense, a []float64, tol float64) bool {
	if len(a) != hNew.Rows() {
		panic("attack: attack vector length mismatch")
	}
	if mat.Norm2(a) == 0 {
		return true
	}
	base := mat.Rank(hNew, tol)
	aug := mat.Rank(mat.HStackVec(hNew, a), tol)
	return aug == base
}

// MagnitudeRatio returns ‖a‖₁/‖z‖₁, the attack sizing metric used in the
// paper's simulations.
func MagnitudeRatio(a, z []float64) float64 {
	zn := mat.Norm1(z)
	if zn == 0 {
		return 0
	}
	return mat.Norm1(a) / zn
}
