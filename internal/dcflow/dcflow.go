// Package dcflow solves the DC power flow: given a network, a branch
// reactance vector and net bus injections, it computes the bus voltage
// angles and branch flows from B·θ = p. This is the physical substrate the
// state estimator, the OPF and the MTD experiments all run on.
package dcflow

import (
	"errors"
	"fmt"
	"math"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
)

// ErrUnbalanced is returned when generation does not match load: the DC
// model has no losses, so injections must sum to (numerically) zero.
var ErrUnbalanced = errors.New("dcflow: bus injections do not sum to zero")

// Result holds a solved DC power flow.
type Result struct {
	// ThetaRad are the bus voltage angles in radians (slack = 0), length N.
	ThetaRad []float64
	// FlowsMW are the branch flows in MW, positive in the From -> To
	// direction, length L.
	FlowsMW []float64
}

// Solve computes the DC power flow for the network with branch reactances x
// (per-unit) and net bus injections in MW (generation minus load, length N).
// Injections must balance to zero within tolerance.
func Solve(n *grid.Network, x []float64, injectionsMW []float64) (*Result, error) {
	if len(injectionsMW) != n.N() {
		return nil, fmt.Errorf("dcflow: injection vector has length %d, want %d", len(injectionsMW), n.N())
	}
	if len(x) != n.L() {
		return nil, fmt.Errorf("dcflow: reactance vector has length %d, want %d", len(x), n.L())
	}
	total := mat.SumVec(injectionsMW)
	if math.Abs(total) > 1e-6*(1+mat.Norm1(injectionsMW)) {
		return nil, fmt.Errorf("%w: imbalance %.6g MW", ErrUnbalanced, total)
	}

	// Per-unit injections at non-slack buses. The susceptance solve goes
	// through the size-picked factorization backend (dense LU below
	// grid.SparseThreshold buses, sparse Cholesky above); the dense path
	// performs the historical operations bitwise.
	pPU := mat.ScaleVec(1/n.BaseMVA, injectionsMW)
	pRed := n.ReduceVec(pPU)

	bf := grid.NewBFactorizer(n)
	if err := bf.Reset(x); err != nil {
		return nil, fmt.Errorf("dcflow: singular susceptance matrix: %w", err)
	}
	thetaRed := bf.SolveInto(make([]float64, n.N()-1), pRed)
	theta := n.ExpandVec(thetaRed, 0)

	flows := make([]float64, n.L())
	for l, br := range n.Branches {
		flows[l] = (theta[br.From-1] - theta[br.To-1]) / x[l] * n.BaseMVA
	}
	return &Result{ThetaRad: theta, FlowsMW: flows}, nil
}

// SolveDispatch computes the DC power flow for a generator dispatch
// (ordered as n.Gens, in MW) against the network's current loads.
func SolveDispatch(n *grid.Network, x []float64, dispatchMW []float64) (*Result, error) {
	return Solve(n, x, n.InjectionsMW(dispatchMW))
}

// Violations returns the indices of branches whose |flow| exceeds the
// network limit by more than tolMW.
func Violations(n *grid.Network, flowsMW []float64, tolMW float64) []int {
	var out []int
	for l, br := range n.Branches {
		if math.Abs(flowsMW[l]) > br.LimitMW+tolMW {
			out = append(out, l)
		}
	}
	return out
}

// Measurements builds the noiseless measurement vector z = [p; f; −f] in
// per-unit from a solved flow and the injections that produced it.
func Measurements(n *grid.Network, injectionsMW []float64, res *Result) []float64 {
	z := make([]float64, 0, n.M())
	for _, p := range injectionsMW {
		z = append(z, p/n.BaseMVA)
	}
	for _, f := range res.FlowsMW {
		z = append(z, f/n.BaseMVA)
	}
	for _, f := range res.FlowsMW {
		z = append(z, -f/n.BaseMVA)
	}
	return z
}
