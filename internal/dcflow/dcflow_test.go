package dcflow

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
)

// TestCase4GSPaperFlows verifies the solver against the paper's Table II:
// dispatch (350, 150) MW on case4gs gives flows
// (126.56, 173.44, -43.44, -26.56) MW.
func TestCase4GSPaperFlows(t *testing.T) {
	n := grid.Case4GS()
	res, err := SolveDispatch(n, n.Reactances(), []float64{350, 150})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{126.56, 173.44, -43.44, -26.56}
	for l := range want {
		if math.Abs(res.FlowsMW[l]-want[l]) > 0.05 {
			t.Errorf("branch %d flow = %.2f MW, want %.2f (Table II)", l+1, res.FlowsMW[l], want[l])
		}
	}
	if res.ThetaRad[n.SlackBus-1] != 0 {
		t.Error("slack angle must be zero")
	}
}

func TestFlowConservation(t *testing.T) {
	// Net flow into each bus must equal its net injection.
	n := grid.CaseIEEE14()
	dispatch := []float64{220, 10, 9, 10, 10} // sums to 259 = total load
	res, err := SolveDispatch(n, n.Reactances(), dispatch)
	if err != nil {
		t.Fatal(err)
	}
	inj := n.InjectionsMW(dispatch)
	netFlow := make([]float64, n.N())
	for l, br := range n.Branches {
		netFlow[br.From-1] += res.FlowsMW[l]
		netFlow[br.To-1] -= res.FlowsMW[l]
	}
	for i := range inj {
		if math.Abs(netFlow[i]-inj[i]) > 1e-6 {
			t.Errorf("bus %d: outflow %v != injection %v", i+1, netFlow[i], inj[i])
		}
	}
}

func TestUnbalancedRejected(t *testing.T) {
	n := grid.Case4GS()
	_, err := Solve(n, n.Reactances(), []float64{100, 0, 0, 0})
	if !errors.Is(err, ErrUnbalanced) {
		t.Fatalf("err = %v, want ErrUnbalanced", err)
	}
}

func TestDimensionErrors(t *testing.T) {
	n := grid.Case4GS()
	if _, err := Solve(n, n.Reactances(), []float64{1, -1}); err == nil {
		t.Error("expected injection length error")
	}
	if _, err := Solve(n, []float64{0.1}, []float64{1, -1, 0, 0}); err == nil {
		t.Error("expected reactance length error")
	}
}

func TestViolations(t *testing.T) {
	n := grid.Case4GS() // limits 127.5, 173.7, 250, 250
	flows := []float64{130, 100, -260, 0}
	got := Violations(n, flows, 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Violations = %v, want [0 2]", got)
	}
	if v := Violations(n, []float64{0, 0, 0, 0}, 0); v != nil {
		t.Fatalf("Violations on zero flows = %v", v)
	}
}

func TestMeasurementsLayout(t *testing.T) {
	n := grid.Case4GS()
	inj := n.InjectionsMW([]float64{350, 150})
	res, err := Solve(n, n.Reactances(), inj)
	if err != nil {
		t.Fatal(err)
	}
	z := Measurements(n, inj, res)
	if len(z) != n.M() {
		t.Fatalf("len(z) = %d, want %d", len(z), n.M())
	}
	// z must equal H·θ_reduced (the SE model equation).
	h := n.MeasurementMatrix(n.Reactances())
	theta := n.ReduceVec(res.ThetaRad)
	hTheta := mat.MulVec(h, theta)
	if !mat.VecEqual(z, hTheta, 1e-9) {
		t.Error("z != H·θ: measurement builder inconsistent with H")
	}
}

// Property: scaling all reactances by a common factor leaves DC flows
// unchanged (only angles scale).
func TestQuickFlowScaleInvariance(t *testing.T) {
	n := grid.CaseIEEE14()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 0.5 + rng.Float64()*1.5
		dispatch := []float64{220, 10, 9, 10, 10}
		r1, err1 := SolveDispatch(n, n.Reactances(), dispatch)
		r2, err2 := SolveDispatch(n, mat.ScaleVec(scale, n.Reactances()), dispatch)
		if err1 != nil || err2 != nil {
			return false
		}
		return mat.VecEqual(r1.FlowsMW, r2.FlowsMW, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: superposition — flows are linear in injections.
func TestQuickSuperposition(t *testing.T) {
	n := grid.Case4GS()
	x := n.Reactances()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []float64 {
			p := make([]float64, n.N())
			var sum float64
			for i := 0; i < n.N()-1; i++ {
				p[i] = rng.NormFloat64() * 50
				sum += p[i]
			}
			p[n.N()-1] = -sum
			return p
		}
		p1, p2 := mk(), mk()
		r1, err1 := Solve(n, x, p1)
		r2, err2 := Solve(n, x, p2)
		r12, err3 := Solve(n, x, mat.AddVec(p1, p2))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return mat.VecEqual(mat.AddVec(r1.FlowsMW, r2.FlowsMW), r12.FlowsMW, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
