package scenario

import (
	"reflect"
	"testing"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
)

func sweepSpec(caseName string, parallelism int) Spec {
	return Spec{
		Kind:          GammaSweep,
		Case:          caseName,
		GammaGrid:     []float64{0.05, 0.1},
		SelectStarts:  2,
		MaxEvals:      30,
		Seed:          1,
		OPFStarts:     2,
		OPFMaxEvals:   30,
		OPFSeed:       1,
		Effectiveness: core.EffectivenessConfig{NumAttacks: 30, Seed: 1},
		Parallelism:   parallelism,
	}
}

// TestGammaSweepDeterministic pins the scenario determinism contract on
// both backend paths: the same Spec and seed produce identical rows
// across runs and across worker counts (dense = the historical bitwise
// path; sparse = the warm-simplex path whose per-worker sessions are
// reset at every local search).
func TestGammaSweepDeterministic(t *testing.T) {
	for _, caseName := range []string{"ieee14", "ieee57"} {
		t.Run(caseName, func(t *testing.T) {
			serial, err := NewRunner().Run(sweepSpec(caseName, 1))
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Rows) != 2 {
				t.Fatalf("got %d rows, want 2", len(serial.Rows))
			}
			again, err := NewRunner().Run(sweepSpec(caseName, 1))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Rows, again.Rows) {
				t.Error("same Spec + seed produced different rows across runs")
			}
			for _, workers := range []int{2, 4} {
				par, err := NewRunner().Run(sweepSpec(caseName, workers))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial.Rows, par.Rows) {
					t.Errorf("parallelism %d produced different rows than serial", workers)
				}
			}
		})
	}
}

// TestPlacementDeterministic pins the placement study's worker-count
// invariance: the greedy choice and its γ are identical for any
// parallelism, on both backend paths.
func TestPlacementDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("placement probes are expensive")
	}
	for _, caseName := range []string{"ieee14", "ieee57"} {
		t.Run(caseName, func(t *testing.T) {
			spec := Spec{Kind: Placement, Case: caseName, Placement: PlacementSpec{Devices: 3}}
			spec.Parallelism = 1
			serial, err := NewRunner().Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Rows) != 3 {
				t.Fatalf("got %d rounds, want 3", len(serial.Rows))
			}
			spec.Parallelism = 4
			par, err := NewRunner().Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Rows, par.Rows) {
				t.Errorf("parallel placement differs from serial:\nserial %+v\npar    %+v", serial.Rows, par.Rows)
			}
			// Greedy γ must be monotone in the deployment size.
			for i := 1; i < len(serial.Rows); i++ {
				if serial.Rows[i].Gamma < serial.Rows[i-1].Gamma-1e-12 {
					t.Errorf("round %d γ %v below round %d γ %v", i+1, serial.Rows[i].Gamma, i, serial.Rows[i-1].Gamma)
				}
			}
		})
	}
}

// TestPlacementSketchProbeExactRecheck pins the widened-pool placement
// protocol: with the sketched-γ probe ranking an all-branches pool, every
// round's recorded γ is the exact evaluator's value at the winning corner
// (not the probe's), the probe value sits within the sketch bound of it,
// and the frontier stays monotone.
func TestPlacementSketchProbeExactRecheck(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-pool placement probes are expensive")
	}
	res, err := NewRunner().Run(Spec{
		Kind:         Placement,
		Case:         "ieee14",
		GammaBackend: core.SketchGamma,
		Placement:    PlacementSpec{Devices: 2, AllBranches: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rounds, want 2", len(res.Rows))
	}
	n, err := grid.CaseByName("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	exact := core.NewGammaEvaluatorBackend(n, n.Reactances(), core.ExactGamma)
	for i, r := range res.Rows {
		if want := exact.Gamma(r.Reactances); r.Gamma != want {
			t.Errorf("round %d: recorded γ %.15g is not the exact re-check %.15g", i+1, r.Gamma, want)
		}
		if d := r.ProbeGamma - r.Gamma; d > 1e-6 || d < -1e-6 {
			t.Errorf("round %d: probe γ %.12g vs exact %.12g beyond the sketch bound", i+1, r.ProbeGamma, r.Gamma)
		}
		if len(r.Devices) != i+1 {
			t.Errorf("round %d deployment %v", i+1, r.Devices)
		}
	}
	if res.Rows[1].Gamma < res.Rows[0].Gamma-1e-12 {
		t.Errorf("widened-pool frontier not monotone: %v then %v", res.Rows[0].Gamma, res.Rows[1].Gamma)
	}
	// The wide pool must genuinely widen: an ieee14 pool is all 20
	// branches, so the greedy winner may sit outside the embedded
	// 6-device deployment — at minimum the search must have been free to
	// choose any branch.
	for _, dev := range res.Rows[1].Devices {
		if dev < 1 || dev > n.L() {
			t.Errorf("chosen device %d outside the branch range", dev)
		}
	}
}

// TestRandomKeysDeterministic pins the keyspace scenario: same Spec +
// seed, same draws, across runs.
func TestRandomKeysDeterministic(t *testing.T) {
	spec := Spec{
		Kind:          RandomKeys,
		Case:          "ieee14",
		Trials:        3,
		CostBudget:    0.02,
		OPFStarts:     2,
		OPFSeed:       1,
		Seed:          3,
		Effectiveness: core.EffectivenessConfig{NumAttacks: 30, Seed: 2},
	}
	a, err := NewRunner().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Error("random-keys scenario not reproducible for a fixed seed")
	}
	if len(a.Rows) != 3 || a.Rows[0].Draws < 1 {
		t.Errorf("unexpected rows: %+v", a.Rows)
	}
}

// TestSpecValidate pins the structural error surface.
func TestSpecValidate(t *testing.T) {
	if err := (Spec{Kind: GammaSweep, GammaGrid: []float64{0.1}}).Validate(); err == nil {
		t.Error("spec without a grid selector accepted")
	}
	if err := (Spec{Kind: GammaSweep, Case: "ieee14", Net: nil}).Validate(); err == nil {
		t.Error("GammaSweep without GammaGrid accepted")
	}
	if err := (Spec{Kind: GammaSweep, Case: "nope", GammaGrid: []float64{0.1}}).Validate(); err == nil {
		t.Error("unknown case accepted")
	}
	if err := (Spec{Kind: GammaSweep, Case: "ieee14", GammaGrid: []float64{0.1}, StaleAttacker: true}).Validate(); err == nil {
		t.Error("StaleAttacker without Hour accepted")
	}
	if err := (Spec{Kind: DaySweep, Case: "ieee14"}).Validate(); err != nil {
		t.Errorf("valid day sweep rejected: %v", err)
	}
}

// TestCompileUnits pins the compiled batch shape: setup + one unit per
// sweep point (+ the cap), labeled.
func TestCompileUnits(t *testing.T) {
	spec := sweepSpec("ieee14", 0)
	spec.CapWithMaxGamma = true
	b, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Units) != 1+len(spec.GammaGrid)+1 {
		t.Fatalf("got %d units, want setup + %d points + cap", len(b.Units), len(spec.GammaGrid))
	}
	if b.Units[0].Label != "operating-point" || b.Units[len(b.Units)-1].Label != "max-gamma-cap" {
		t.Errorf("unexpected unit labels: %v, %v", b.Units[0].Label, b.Units[len(b.Units)-1].Label)
	}
}

// TestRunnerEngineReuse pins the service-path amortization: two runs with
// the same caller-provided network share one dispatch engine.
func TestRunnerEngineReuse(t *testing.T) {
	n, err := grid.CaseByName("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	e1, err := r.DispatchEngine(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.DispatchEngine(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("runner rebuilt the dispatch engine for the same network pointer")
	}
	spec := sweepSpec("", 1)
	spec.Case = ""
	spec.Net = n
	if _, err := r.Run(spec); err != nil {
		t.Fatal(err)
	}
	e3, err := r.DispatchEngine(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e3 != e1 {
		t.Error("scenario run did not reuse the cached engine")
	}
}
