package scenario

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"gridmtd/internal/core"
)

// The placement study answers "where should the D-FACTS devices go":
// greedy forward selection over a candidate branch pool, where a
// deployment's score is the largest subspace separation γ it can reach
// against the nominal configuration. The score of a subset is evaluated
// exactly — γ is polled at every corner of the subset's device box, which
// is where reactance perturbations empirically maximize γ (the same
// observation core.MaxGamma exploits) — and every probe shares one
// γ-evaluation engine, because H(x_nominal) does not depend on which
// branches carry devices. That sharing is what makes the study cheap: a
// round of the ieee57 search is hundreds of γ evaluations against one
// cached basis, not hundreds of engine constructions.
//
// The greedy ranking is deterministic: candidates are scored in pool
// order, ties keep the earliest candidate, and the corner poll keeps the
// lowest achieving corner mask — independent of Parallelism.

// placementState carries the study's shared engines and greedy chain.
type placementState struct {
	eval     *core.GammaEvaluator
	xNominal []float64
	pool     []int // candidate branch indices (0-based), evaluation order
	lo, hi   map[int]float64
	chosen   []int // greedily selected so far (0-based)
	baseCost float64
	baseOK   bool
}

// setupPlacement resolves the candidate pool, the per-branch device
// bounds and the shared engines.
func (st *execState) setupPlacement() error {
	spec := st.spec.Placement
	n := st.n
	var pool []int
	switch {
	case len(spec.Pool) == 0 && spec.AllBranches:
		for i := 0; i < n.L(); i++ {
			pool = append(pool, i)
		}
	case len(spec.Pool) == 0:
		pool = append(pool, n.DFACTSIndices()...)
	default:
		seen := make(map[int]bool)
		for _, b := range spec.Pool {
			if b < 1 || b > n.L() {
				return fmt.Errorf("scenario: placement pool branch %d out of range 1..%d", b, n.L())
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			pool = append(pool, b-1)
		}
	}
	if len(pool) == 0 {
		return fmt.Errorf("scenario: placement pool is empty (case %s has no D-FACTS deployment to use as default)", n.Name)
	}
	etaMax := spec.EtaMax
	if etaMax <= 0 {
		etaMax = 0.5
	}
	lo, hi := make(map[int]float64, len(pool)), make(map[int]float64, len(pool))
	for _, i := range pool {
		br := n.Branches[i]
		if br.HasDFACTS {
			lo[i], hi[i] = br.XMin, br.XMax
		} else {
			lo[i], hi[i] = (1-etaMax)*br.X, (1+etaMax)*br.X
		}
	}
	eng, err := st.engineFor()
	if err != nil {
		return err
	}
	x := n.Reactances()
	st.pl = &placementState{
		eval:     core.NewGammaEvaluatorBackend(n, x, st.spec.GammaBackend),
		xNominal: x,
		pool:     pool,
		lo:       lo,
		hi:       hi,
	}
	if cost, err := eng.Cost(x); err == nil {
		st.pl.baseCost, st.pl.baseOK = cost, true
	}
	st.res.GammaBackendUsed = st.pl.eval.Backend()
	return nil
}

// subsetScore polls γ at every corner of the subset's device box (bit j of
// the mask sets subset[j] to its upper bound) and returns the best value
// with the lowest achieving mask.
func (pl *placementState) subsetScore(sess *core.GammaSession, subset []int, x []float64) (float64, int) {
	copy(x, pl.xNominal)
	bestG, bestMask := math.Inf(-1), -1
	total := 1 << len(subset)
	for mask := 0; mask < total; mask++ {
		for j, br := range subset {
			if mask&(1<<j) != 0 {
				x[br] = pl.hi[br]
			} else {
				x[br] = pl.lo[br]
			}
		}
		if g := sess.Gamma(x); g > bestG {
			bestG, bestMask = g, mask
		}
	}
	return bestG, bestMask
}

// placementRound adds the pool candidate whose addition to the chosen
// deployment reaches the highest γ, fanning the candidate probes across
// workers with a per-worker γ session.
func (st *execState) placementRound(round int) error {
	pl := st.pl
	var candidates []int
	inChosen := make(map[int]bool, len(pl.chosen))
	for _, c := range pl.chosen {
		inChosen[c] = true
	}
	for _, c := range pl.pool {
		if !inChosen[c] {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		return nil // pool exhausted before the requested deployment size
	}
	if len(pl.chosen)+1 > 12 {
		return fmt.Errorf("scenario: placement deployments beyond 12 devices make the corner poll inexact")
	}

	type probe struct {
		gamma float64
		mask  int
	}
	probes := make([]probe, len(candidates))
	workers := st.spec.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}
	evalRange := func(from, to int) {
		sess := pl.eval.NewSession()
		x := make([]float64, len(pl.xNominal))
		subset := make([]int, len(pl.chosen)+1)
		copy(subset, pl.chosen)
		for i := from; i < to; i++ {
			subset[len(pl.chosen)] = candidates[i]
			g, mask := pl.subsetScore(sess, subset, x)
			probes[i] = probe{gamma: g, mask: mask}
		}
	}
	if workers <= 1 {
		evalRange(0, len(candidates))
	} else {
		var wg sync.WaitGroup
		per := (len(candidates) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			from, to := w*per, (w+1)*per
			if to > len(candidates) {
				to = len(candidates)
			}
			if from >= to {
				continue
			}
			wg.Add(1)
			go func(from, to int) {
				defer wg.Done()
				evalRange(from, to)
			}(from, to)
		}
		wg.Wait()
	}

	// Deterministic reduction: strict improvement in candidate (pool)
	// order keeps the earliest winner — the serial scan's choice.
	best := 0
	for i := 1; i < len(probes); i++ {
		if probes[i].gamma > probes[best].gamma {
			best = i
		}
	}
	pl.chosen = append(pl.chosen, candidates[best])

	// Evaluate the winning deployment's cost at its best corner through
	// the shared dispatch engine; under calibrated ratings the corner
	// dispatch can be infeasible, which the row reports as CostKnown=false.
	xBest := make([]float64, len(pl.xNominal))
	copy(xBest, pl.xNominal)
	for j, br := range pl.chosen {
		if probes[best].mask&(1<<j) != 0 {
			xBest[br] = pl.hi[br]
		} else {
			xBest[br] = pl.lo[br]
		}
	}
	// The greedy ranking ran on the (possibly approximate) probe backend;
	// the recorded γ is the exact evaluator's value at the winning corner,
	// so the frontier the study reports never inherits a probe error bound.
	// On the exact backend GammaExact is the probe evaluation itself.
	row := Row{
		Gamma:      pl.eval.GammaExact(xBest),
		ProbeGamma: probes[best].gamma,
		Devices:    make([]int, len(pl.chosen)),
		Reactances: xBest,
	}
	for i, br := range pl.chosen {
		row.Devices[i] = br + 1
	}
	sort.Ints(row.Devices)
	if st.pl.baseOK {
		if cost, err := st.eng.Cost(xBest); err == nil {
			row.CostIncrease = core.OperationalCost(pl.baseCost, cost)
			row.CostKnown = true
		}
	}
	st.res.Rows = append(st.res.Rows, row)
	return nil
}
