package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
	"gridmtd/internal/sim"
)

// maxCachedEngines bounds the Runner's per-network dispatch-engine cache
// (entries are evicted oldest-first; an evicted engine is simply rebuilt
// on the next request for its network).
const maxCachedEngines = 16

// Runner executes compiled Specs. It owns the shared per-case engine
// state: one dispatch-OPF engine per caller-provided network (keyed by the
// *grid.Network pointer, so a long-running service whose case table hands
// out stable networks amortizes the engine across every request), with the
// per-worker DispatchSession/GammaSession affinity inside each unit coming
// from the engines themselves. A Runner is safe for concurrent use; the
// networks passed via Spec.Net are never mutated (load-changing workloads
// run on private clones).
//
// The zero value is ready to use.
type Runner struct {
	mu        sync.Mutex
	engines   map[*grid.Network]*opf.DispatchEngine
	order     []*grid.Network
	estCaches map[*grid.Network]*core.EstimatorCache
	estOrder  []*grid.Network
}

// NewRunner returns an empty Runner.
func NewRunner() *Runner { return &Runner{} }

// Run compiles and executes the Spec.
func (r *Runner) Run(spec Spec) (*Result, error) {
	b, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	return r.RunBatch(b)
}

// RunBatch executes a compiled batch: the units run in order against one
// shared execution state (resolved network, shared engines, warm-start
// chain), exactly as the historical bespoke loops did.
func (r *Runner) RunBatch(b *Batch) (*Result, error) {
	n, owned, err := b.Spec.network()
	if err != nil {
		return nil, err
	}
	st := &execState{spec: b.Spec, r: r, n: n, owned: owned, res: &Result{}}
	if st.spec.Effectiveness.GammaBackend == core.AutoGamma {
		// The attack-evaluation screen follows the sweep's γ backend unless
		// the spec pins it explicitly: one -gamma flag selects both sides.
		st.spec.Effectiveness.GammaBackend = st.spec.GammaBackend
	}
	if s := b.Spec.LoadScale; s != 0 && s != 1 {
		st.ensureOwned()
		st.n.ScaleLoads(s)
	}
	for _, u := range b.Units {
		if err := u.run(st); err != nil {
			return nil, err
		}
	}
	st.res.Net = st.n
	st.res.Baseline = st.pre
	return st.res, nil
}

// DispatchEngine returns the runner's shared dispatch-OPF engine for the
// caller-owned network n (built on first use, cached by pointer). Services
// that run selection primitives outside a full Spec — the planner's
// explicit-x_old requests — use this to stay on the same warm engines the
// runner's scenarios use.
func (r *Runner) DispatchEngine(n *grid.Network, backend grid.Backend) (*opf.DispatchEngine, error) {
	return r.dispatchEngine(n, backend, true)
}

// dispatchEngine returns the engine for n, from the cache when cacheable
// (caller-owned long-lived networks) or freshly built otherwise.
func (r *Runner) dispatchEngine(n *grid.Network, backend grid.Backend, cacheable bool) (*opf.DispatchEngine, error) {
	if cacheable {
		r.mu.Lock()
		e, ok := r.engines[n]
		r.mu.Unlock()
		if ok {
			return e, nil
		}
	}
	e, err := opf.NewDispatchEngineBackend(n, backend)
	if err != nil {
		return nil, err
	}
	if cacheable {
		r.mu.Lock()
		defer r.mu.Unlock()
		if existing, ok := r.engines[n]; ok {
			// A concurrent request built it first; keep one.
			return existing, nil
		}
		if r.engines == nil {
			r.engines = make(map[*grid.Network]*opf.DispatchEngine)
		}
		if len(r.order) >= maxCachedEngines {
			delete(r.engines, r.order[0])
			r.order = r.order[1:]
		}
		r.engines[n] = e
		r.order = append(r.order, n)
	}
	return e, nil
}

// EstimatorCache returns the runner's shared per-network estimator cache
// for the caller-owned network n (built on first use, cached by pointer,
// same lifetime policy as DispatchEngine). The planner injects it into the
// effectiveness config of explicit-x_old selections so repeated candidate
// evaluations against one case reuse their post-MTD QR factorizations.
func (r *Runner) EstimatorCache(n *grid.Network) *core.EstimatorCache {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.estCaches[n]; ok {
		return c
	}
	c := core.NewEstimatorCache(n, 0)
	if r.estCaches == nil {
		r.estCaches = make(map[*grid.Network]*core.EstimatorCache)
	}
	if len(r.estOrder) >= maxCachedEngines {
		delete(r.estCaches, r.estOrder[0])
		r.estOrder = r.estOrder[1:]
	}
	r.estCaches[n] = c
	r.estOrder = append(r.estOrder, n)
	return c
}

// execState is the shared state a batch's units thread through: the
// network (private clone when mutated), the shared engines, the attacker's
// knowledge, the warm-start chain and the accumulating result.
type execState struct {
	spec  Spec
	r     *Runner
	n     *grid.Network
	owned bool

	eng     *opf.DispatchEngine
	engines *core.Engines
	estc    *core.EstimatorCache
	pre     *opf.Result
	xOld    []float64
	zOld    []float64
	attacks *core.AttackSet
	warm    [][]float64
	rng     *rand.Rand

	lastLearn *sim.LearningOutcome
	pl        *placementState

	res *Result
}

// ensureOwned gives the state a network it may mutate.
func (st *execState) ensureOwned() {
	if !st.owned {
		st.n = st.n.Clone()
		st.owned = true
	}
}

// engineFor resolves the state's dispatch engine (cached across Runs only
// for caller-provided, never-mutated networks).
func (st *execState) engineFor() (*opf.DispatchEngine, error) {
	if st.eng != nil {
		return st.eng, nil
	}
	e, err := st.r.dispatchEngine(st.n, st.spec.Backend, !st.owned)
	if err != nil {
		return nil, fmt.Errorf("scenario: dispatch engine: %w", err)
	}
	st.eng = e
	return e, nil
}

// effectivenessCfg resolves the spec's effectiveness config with the
// runner's estimator cache injected: the shared per-network cache for
// caller-owned networks, a batch-private one for mutated clones (whose
// pointer must not pin an entry in the runner after the batch ends).
func (st *execState) effectivenessCfg() core.EffectivenessConfig {
	if st.estc == nil {
		if st.owned {
			st.estc = core.NewEstimatorCache(st.n, 0)
		} else {
			st.estc = st.r.EstimatorCache(st.n)
		}
	}
	cfg := st.spec.Effectiveness
	cfg.Estimators = st.estc
	return cfg
}

// opfStarts resolves the problem-(1) budget (defaulting to the selection
// budget, the convention of the sweep experiments).
func (st *execState) opfStarts() int {
	if st.spec.OPFStarts > 0 {
		return st.spec.OPFStarts
	}
	return st.spec.SelectStarts
}

// setScaledLoads sets the network loads to base·factor.
func (st *execState) setScaledLoads(base []float64, factor float64) {
	loads := make([]float64, len(base))
	for i, l := range base {
		loads[i] = l * factor
	}
	st.n.SetLoadsMW(loads)
}

// ---- GammaSweep -----------------------------------------------------------

// setupGammaSweep establishes the operating point and attacker knowledge:
// either the base-load problem-(1) solution (Fig. 6, mtdscan) or a profile
// hour with optionally one-hour-stale attacker knowledge (Fig. 9).
func (st *execState) setupGammaSweep() error {
	spec := st.spec
	if spec.Hour > 0 {
		st.ensureOwned()
		eng, err := st.engineFor()
		if err != nil {
			return err
		}
		factors, err := spec.profileFactors(st.n)
		if err != nil {
			return err
		}
		if spec.Hour >= len(factors) {
			return fmt.Errorf("scenario: hour %d out of range", spec.Hour)
		}
		base := st.n.LoadsMW()
		seedNow := spec.OPFSeed
		if spec.StaleAttacker {
			// Attacker knowledge: previous hour's no-MTD configuration.
			st.setScaledLoads(base, factors[spec.Hour-1])
			prev, err := opf.SolveDFACTSEngine(eng, opf.DFACTSConfig{
				Starts: st.opfStarts(), MaxEvals: spec.OPFMaxEvals, Seed: spec.OPFSeed,
				Parallelism: spec.Parallelism,
			})
			if err != nil {
				return fmt.Errorf("scenario: previous-hour OPF: %w", err)
			}
			st.zOld, err = core.OperatingMeasurements(st.n, prev.Reactances)
			if err != nil {
				return err
			}
			st.xOld = prev.Reactances
			seedNow++
		}
		st.setScaledLoads(base, factors[spec.Hour])
		st.pre, err = opf.SolveDFACTSEngine(eng, opf.DFACTSConfig{
			Starts: st.opfStarts(), MaxEvals: spec.OPFMaxEvals, Seed: seedNow,
			Parallelism: spec.Parallelism,
		})
		if err != nil {
			return fmt.Errorf("scenario: operating-point OPF: %w", err)
		}
	} else {
		eng, err := st.engineFor()
		if err != nil {
			return err
		}
		st.pre, err = opf.SolveDFACTSEngine(eng, opf.DFACTSConfig{
			Starts: st.opfStarts(), MaxEvals: spec.OPFMaxEvals, Seed: spec.OPFSeed,
			Parallelism: spec.Parallelism,
		})
		if err != nil {
			return fmt.Errorf("scenario: pre-perturbation OPF: %w", err)
		}
	}
	if st.xOld == nil {
		var err error
		st.xOld = st.pre.Reactances
		st.zOld, err = core.OperatingMeasurements(st.n, st.xOld)
		if err != nil {
			return err
		}
	}
	var err error
	st.attacks, err = core.SampleAttacks(st.n, st.xOld, st.zOld, spec.Effectiveness)
	if err != nil {
		return err
	}
	st.engines = core.NewEnginesSharedBackend(st.n, st.xOld, st.eng, st.spec.GammaBackend)
	st.res.GammaBackendUsed = st.engines.Gamma().Backend()
	return nil
}

// sweepPoint solves problem (4) at one γ threshold and evaluates it
// against the shared attack set. Thresholds past the hardware's reach mark
// the sweep exhausted; later points are skipped.
func (st *execState) sweepPoint(gth float64) error {
	if st.res.Exhausted {
		return nil
	}
	sel, err := core.SelectMTDWith(st.engines, st.n, st.xOld, core.SelectConfig{
		GammaThreshold: gth,
		Starts:         st.spec.SelectStarts,
		MaxEvals:       st.spec.MaxEvals,
		Seed:           st.spec.Seed,
		BaselineCost:   st.pre.CostPerHour,
		WarmStarts:     st.warm,
		Parallelism:    st.spec.Parallelism,
	})
	if errors.Is(err, core.ErrConstraintUnreachable) {
		st.res.Exhausted = true
		st.res.ExhaustedAt = gth
		return nil
	}
	if err != nil {
		return fmt.Errorf("scenario: γ_th=%.2f: %w", gth, err)
	}
	return st.appendSelection(sel, gth)
}

// sweepCap appends the hardware's best (max-γ) design after an exhausted
// sweep. On calibrated large cases the max-γ corner can be operationally
// infeasible; the sweep then simply ends at the last reachable threshold.
func (st *execState) sweepCap() error {
	if !st.res.Exhausted {
		return nil
	}
	// The cap runs at the solver's default evaluation budget (not
	// Spec.MaxEvals): it is the sweep's one-off "best the hardware can do"
	// probe, and every historical caller budgeted it that way.
	sel, err := core.MaxGammaWith(st.engines, st.n, st.xOld, core.MaxGammaConfig{
		Starts:       st.spec.SelectStarts,
		Seed:         st.spec.Seed,
		BaselineCost: st.pre.CostPerHour,
		Parallelism:  st.spec.Parallelism,
	})
	if errors.Is(err, opf.ErrInfeasible) {
		return nil
	}
	if err != nil {
		return err
	}
	return st.appendSelection(sel, 0)
}

// appendSelection evaluates a selection against the shared attack set and
// records the sweep row, chaining its setting as the next point's warm
// start.
func (st *execState) appendSelection(sel *core.Selection, target float64) error {
	eff, err := core.EvaluateAttacks(st.n, st.attacks, sel.Reactances, st.effectivenessCfg())
	if err != nil {
		return err
	}
	st.res.Rows = append(st.res.Rows, Row{
		GammaTarget:  target,
		Gamma:        eff.Gamma,
		Deltas:       eff.Deltas,
		Eta:          eff.Eta,
		CostIncrease: sel.CostIncrease,
		Undetectable: eff.UndetectableFraction,
		Reactances:   sel.Reactances,
		BaselineCost: sel.BaselineCost,
		MTDCost:      sel.OPF.CostPerHour,
	})
	st.warm = [][]float64{st.n.DFACTSSetting(sel.Reactances)}
	return nil
}

// ---- DaySweep -------------------------------------------------------------

// runDay executes the Section VII-C day loop (sim.RunDay builds one
// dispatch engine for the whole day) and maps the hourly records to rows
// labeled with their profile indices.
func (st *execState) runDay() error {
	spec := st.spec
	factors, err := spec.profileFactors(st.n)
	if err != nil {
		return err
	}
	hourIdx := spec.Hours
	selected := factors
	if len(hourIdx) > 0 {
		selected = make([]float64, 0, len(hourIdx))
		for _, h := range hourIdx {
			if h < 0 || h >= len(factors) {
				return fmt.Errorf("scenario: hour index %d out of range", h)
			}
			selected = append(selected, factors[h])
		}
	} else {
		hourIdx = make([]int, len(factors))
		for i := range factors {
			hourIdx[i] = i
		}
	}
	results, err := sim.RunDay(sim.DayConfig{
		Net:               st.n,
		LoadFactors:       selected,
		Tune:              spec.Tune,
		OPFStarts:         spec.OPFStarts,
		Warmup:            spec.Warmup,
		PersistReactances: spec.PersistReactances,
		GammaBackend:      spec.GammaBackend,
		Seed:              spec.Seed,
	})
	if err != nil {
		return err
	}
	for i, r := range results {
		st.res.Rows = append(st.res.Rows, Row{
			Hour:           hourIdx[i],
			TotalLoadMW:    r.TotalLoadMW,
			BaselineCost:   r.BaselineCost,
			MTDCost:        r.MTDCost,
			CostIncrease:   r.CostIncrease,
			GammaThreshold: r.GammaThreshold,
			Gamma:          r.GammaOldMTD,
			GammaOldNew:    r.GammaOldNew,
			GammaNewMTD:    r.GammaNewMTD,
			Eta:            []float64{r.Eta},
		})
	}
	return nil
}

// ---- RandomKeys -----------------------------------------------------------

// setupRandomKeys establishes the operating point, the shared attack set
// and the key sampler.
func (st *execState) setupRandomKeys() error {
	spec := st.spec
	eng, err := st.engineFor()
	if err != nil {
		return err
	}
	st.pre, err = opf.SolveDFACTSEngine(eng, opf.DFACTSConfig{
		Starts: st.opfStarts(), MaxEvals: spec.OPFMaxEvals, Seed: spec.OPFSeed,
		Parallelism: spec.Parallelism,
	})
	if err != nil {
		return fmt.Errorf("scenario: pre-perturbation OPF: %w", err)
	}
	st.xOld = st.pre.Reactances
	st.zOld, err = core.OperatingMeasurements(st.n, st.xOld)
	if err != nil {
		return err
	}
	st.attacks, err = core.SampleAttacks(st.n, st.xOld, st.zOld, spec.Effectiveness)
	if err != nil {
		return err
	}
	st.rng = rand.New(rand.NewSource(spec.Seed))
	return nil
}

// randomKey draws one keyspace perturbation through the shared dispatch
// engine and evaluates it.
func (st *execState) randomKey(trial int) error {
	xRand, _, draws, err := core.RandomKeyWithinCostEngine(st.rng, st.n, st.eng, st.pre.CostPerHour, st.spec.CostBudget, 0)
	if err != nil {
		return err
	}
	eff, err := core.EvaluateAttacks(st.n, st.attacks, xRand, st.effectivenessCfg())
	if err != nil {
		return err
	}
	st.res.Rows = append(st.res.Rows, Row{
		Trial:        trial,
		Draws:        draws,
		Gamma:        eff.Gamma,
		Deltas:       eff.Deltas,
		Eta:          eff.Eta,
		Undetectable: eff.UndetectableFraction,
		Reactances:   xRand,
	})
	return nil
}

// ---- Learning -------------------------------------------------------------

// learnPoint runs the attacker's subspace estimation at one sample count.
func (st *execState) learnPoint(samples int) error {
	out, err := sim.SimulateLearning(st.n, st.n.Reactances(), sim.LearningConfig{
		Samples:  samples,
		Sigma:    st.spec.LearnSigma,
		JitterMW: st.spec.LearnJitterMW,
		Seed:     st.spec.Seed,
	})
	if err != nil {
		return err
	}
	st.res.Rows = append(st.res.Rows, Row{Samples: samples, SubspaceError: out.SubspaceError})
	st.lastLearn = out
	return nil
}

// learnProbe applies one max-γ MTD and records how stale the attacker's
// best estimate becomes. The probe runs on the runner's shared dispatch
// engine, like every other unit.
func (st *execState) learnProbe() error {
	eng, err := st.engineFor()
	if err != nil {
		return err
	}
	x := st.n.Reactances()
	engines := core.NewEnginesSharedBackend(st.n, x, eng, st.spec.GammaBackend)
	st.res.GammaBackendUsed = engines.Gamma().Backend()
	sel, err := core.MaxGammaWith(engines, st.n, x, core.MaxGammaConfig{
		Starts:       st.spec.ProbeStarts,
		Seed:         st.spec.ProbeSeed,
		BaselineCost: st.spec.ProbeBaselineCost,
		Parallelism:  st.spec.Parallelism,
	})
	if err != nil {
		return err
	}
	info := &LearningInfo{Selection: sel, Last: st.lastLearn}
	if st.lastLearn != nil {
		info.Stale = sim.BasisGamma(st.n, sel.Reactances, st.lastLearn)
	}
	st.res.Learning = info
	return nil
}
