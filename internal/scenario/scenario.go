// Package scenario is the planning layer every repeated-evaluation
// workload of the reproduction runs on. A Spec declaratively describes one
// study — which case, how it is loaded, what the attacker knows, which
// sweep is performed, at what budgets and seeds — and compiles into a
// deterministic batch of evaluation units. A Runner executes the batch
// against shared per-case engines: the dispatch-OPF engine (with its
// cached LP skeleton, factorizer workspaces and, on the sparse path, warm
// simplex bases) is built once per case and serves every unit, and the
// γ-evaluation engine is rebuilt only when the attacker's knowledge moves.
// Per-worker DispatchSession/GammaSession affinity inside each unit comes
// from the core/opf engines themselves (optimize.MSConfig.NewWorkerObjective).
//
// The experiments package, the example programs, cmd/mtdscan and the
// gridmtdd planner service all build Specs instead of hand-rolling their
// own engine construction and sweep loops; on the dense (bitwise) backend
// the rows a Spec produces are byte-identical to what those bespoke loops
// historically printed.
package scenario

import (
	"errors"
	"fmt"

	"gridmtd/internal/core"
	"gridmtd/internal/grid"
	"gridmtd/internal/loadprofile"
	"gridmtd/internal/opf"
	"gridmtd/internal/sim"
)

// Kind selects the workload a Spec describes.
type Kind int

const (
	// GammaSweep solves problem (4) along a γ-threshold grid against one
	// fixed attacker knowledge (Figs. 6 and 9, mtdscan, the tradeoff
	// example, single selection requests).
	GammaSweep Kind = iota
	// DaySweep runs the Section VII-C hourly operating day (Figs. 10-11,
	// the dailyops example) with one dispatch engine per day.
	DaySweep
	// RandomKeys draws prior-work random keyspace perturbations under an
	// OPF-cost budget and evaluates each (Figs. 7-8, the random baseline).
	RandomKeys
	// Learning runs the attacker's subspace-estimation curve and the
	// staleness induced by one max-γ MTD (Section IV-A).
	Learning
	// Placement greedily searches D-FACTS device subsets for the deployment
	// maximizing the reachable γ — the placement study the case registry
	// and shared γ engines make cheap.
	Placement
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case GammaSweep:
		return "gamma-sweep"
	case DaySweep:
		return "day-sweep"
	case RandomKeys:
		return "random-keys"
	case Learning:
		return "learning"
	case Placement:
		return "placement"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// PlacementSpec parameterizes the Placement workload.
type PlacementSpec struct {
	// Devices is the target deployment size (default 6, capped at 12 so
	// each probe's corner poll stays exact).
	Devices int
	// Pool lists the candidate branches (1-based numbers). Empty uses the
	// case's embedded D-FACTS deployment as the pool — "which subset of
	// the 12 installed devices carries the detection capability".
	Pool []int
	// AllBranches widens the pool to every branch of the case — the
	// deployment-design question ("where should devices go, given none are
	// installed yet") rather than the subset question. A wide pool
	// multiplies the probe count by L/12, which is what the cheap
	// sketched-γ probe (Spec.GammaBackend = sketch) exists for; each
	// round's winner is re-checked exactly, so the recorded frontier does
	// not inherit the probe's error bound. Ignored when Pool is set.
	AllBranches bool
	// EtaMax is the relative reactance range assumed for pool branches
	// that do not already carry a device (default 0.5, the paper's ηmax).
	EtaMax float64
}

// Spec declaratively describes one study. Exactly one of Case, Network or
// Net selects the grid; the remaining fields parameterize the workload of
// the chosen Kind (fields of other kinds are ignored). The zero budget
// values inherit the solvers' defaults, exactly as the historical bespoke
// loops did.
type Spec struct {
	Kind Kind

	// Case names a registered case (resolved via grid.CaseByName).
	Case string
	// Network builds the grid explicitly (the experiments' case overrides).
	Network func() *grid.Network
	// Net is a pre-built network owned by the caller (the planner service's
	// LRU entries). The runner never mutates it: load-changing workloads
	// run on a private clone, and engine reuse across Runs is keyed on this
	// pointer.
	Net *grid.Network

	// Backend optionally forces the dispatch engine's linear-algebra
	// backend. The γ kernels follow the process-wide default
	// (grid.SetDefaultBackend), which the commands configure from -backend.
	Backend grid.Backend

	// GammaBackend optionally forces the γ-evaluation backend of the
	// study's selection searches and placement probes (exact / sparse /
	// sketch; auto follows the -gamma process default, exact when none is
	// set). Approximate backends only ever guide searches: reported γ
	// values stay exact (see core.SelectMTD's tolerance contract and the
	// placement rows' exact winner re-check).
	GammaBackend core.GammaBackend

	// LoadScale, when set (≠ 0 and ≠ 1), multiplies every bus load before
	// anything runs (mtdscan -scale, the tradeoff example's 6 PM point).
	LoadScale float64
	// PeakLoadMW scales the embedded NY winter-weekday trace for the
	// profile-driven workloads; 0 picks 85% of the case's base load.
	PeakLoadMW float64
	// Hour, when > 0, places a GammaSweep at this profile index instead of
	// the base loads (Fig. 9's 6 PM operating point).
	Hour int
	// StaleAttacker gives the GammaSweep attacker knowledge from hour
	// Hour−1's no-MTD configuration instead of the current one (Fig. 9's
	// one-hour-stale protocol; requires Hour > 0).
	StaleAttacker bool
	// Hours restricts a DaySweep to these profile indices (nil = all 24).
	Hours []int
	// Warmup runs a DaySweep's first hour once, unrecorded (sim.DayConfig).
	Warmup bool
	// PersistReactances keeps a DaySweep's devices where the previous hour
	// left them (sim.DayConfig).
	PersistReactances bool

	// OPFStarts, OPFMaxEvals and OPFSeed budget the problem-(1) solves
	// (the pre-perturbation operating points).
	OPFStarts   int
	OPFMaxEvals int
	OPFSeed     int64

	// GammaGrid are the γ_th values of a GammaSweep (constraint (4b)).
	GammaGrid []float64
	// CapWithMaxGamma appends the hardware's best (max-γ) design when the
	// sweep exhausts the reachable thresholds (Figs. 6 and 9). Sweeps
	// without it simply end at the last reachable threshold.
	CapWithMaxGamma bool
	// SelectStarts, MaxEvals and Seed budget the problem-(4) searches.
	SelectStarts int
	MaxEvals     int
	Seed         int64
	// Effectiveness configures the attack sampling and η'(δ) evaluations.
	Effectiveness core.EffectivenessConfig
	// Tune configures a DaySweep's hourly γ-threshold tuning.
	Tune core.TuneConfig
	// Parallelism bounds the concurrent local searches / placement probes
	// (0 = GOMAXPROCS, 1 = serial). Results are identical for any setting.
	Parallelism int

	// Trials is the number of RandomKeys draws; CostBudget their relative
	// OPF-cost allowance (the paper reads prior work as 0.02).
	Trials     int
	CostBudget float64

	// SampleGrid, LearnSigma and LearnJitterMW drive the Learning curve;
	// ProbeStarts/ProbeSeed/ProbeBaselineCost budget its max-γ staleness
	// probe (ProbeBaselineCost 0 solves the no-MTD baseline internally).
	SampleGrid        []int
	LearnSigma        float64
	LearnJitterMW     float64
	ProbeStarts       int
	ProbeSeed         int64
	ProbeBaselineCost float64

	// Placement parameterizes the Placement workload.
	Placement PlacementSpec
}

// Row is one evaluation unit's outcome. Only the fields of the Spec's Kind
// are populated; everything else stays zero.
type Row struct {
	// GammaTarget is the requested γ_th of a sweep point (0 marks the
	// max-γ cap); Gamma the achieved separation γ(H_old, H').
	GammaTarget float64
	Gamma       float64
	// Deltas and Eta form the η'(δ) curve at this point.
	Deltas []float64
	Eta    []float64
	// CostIncrease is the paper's C_MTD at this point.
	CostIncrease float64
	// Undetectable is the fraction of the attack set still stealthy.
	Undetectable float64
	// Reactances is the full post-MTD reactance vector (sweep points, keys).
	Reactances []float64

	// Hour and the daily metrics mirror sim.HourResult (DaySweep).
	Hour           int
	TotalLoadMW    float64
	BaselineCost   float64
	MTDCost        float64
	GammaThreshold float64
	GammaOldNew    float64
	GammaNewMTD    float64

	// Trial and Draws label a RandomKeys draw.
	Trial int
	Draws int

	// Samples and SubspaceError form the Learning curve.
	Samples       int
	SubspaceError float64

	// Devices is a Placement round's chosen deployment (sorted 1-based
	// branch numbers); CostKnown reports whether CostIncrease could be
	// evaluated at the round's best corner (the corner dispatch can be
	// infeasible under calibrated ratings). Gamma is always the exact
	// evaluator's value at the winning corner; ProbeGamma is the probe
	// backend's value there (equal to Gamma on the exact backend).
	Devices    []int
	CostKnown  bool
	ProbeGamma float64
}

// LearningInfo carries the Learning workload's terminal state.
type LearningInfo struct {
	// Stale is γ(attacker's best estimate, post-MTD H).
	Stale float64
	// Selection is the max-γ perturbation used for the staleness probe.
	Selection *core.Selection
	// Last is the attacker's final (largest-sample) estimate.
	Last *sim.LearningOutcome
}

// Result is one executed Spec.
type Result struct {
	// Net is the network the study ran on (with any LoadScale / profile
	// hour applied) — callers render labels and totals from it.
	Net *grid.Network
	// Baseline is the pre-perturbation problem-(1) solution (nil for kinds
	// without one).
	Baseline *opf.Result
	// Rows are the evaluation units' outcomes, in unit order.
	Rows []Row
	// Exhausted reports that a GammaSweep hit an unreachable threshold;
	// ExhaustedAt is that threshold.
	Exhausted   bool
	ExhaustedAt float64
	// Learning carries the Learning workload's terminal state.
	Learning *LearningInfo
	// GammaBackendUsed is the γ backend that actually served the study's
	// searches/probes (a sketch request degrades to exact when the old
	// side's Gram matrix defeats the sketch construction). Zero
	// (AutoGamma) for kinds that build no γ engine in the runner.
	GammaBackendUsed core.GammaBackend
}

// Validate checks the Spec for structural errors before any computation
// starts.
func (s Spec) Validate() error {
	selectors := 0
	if s.Case != "" {
		selectors++
		if _, err := grid.CaseByName(s.Case); err != nil {
			return err
		}
	}
	if s.Network != nil {
		selectors++
	}
	if s.Net != nil {
		selectors++
	}
	if selectors != 1 {
		return errors.New("scenario: exactly one of Case, Network or Net must select the grid")
	}
	switch s.Kind {
	case GammaSweep:
		if len(s.GammaGrid) == 0 {
			return errors.New("scenario: GammaSweep needs a non-empty GammaGrid")
		}
		if s.StaleAttacker && s.Hour <= 0 {
			return errors.New("scenario: StaleAttacker needs Hour > 0")
		}
	case DaySweep, RandomKeys, Learning, Placement:
		// Budgets default inside the runner / solvers.
	default:
		return fmt.Errorf("scenario: unknown kind %d", int(s.Kind))
	}
	return nil
}

// network resolves the Spec's grid. owned reports whether the runner may
// mutate it (fresh constructions are owned; a caller-provided Net is not).
func (s Spec) network() (n *grid.Network, owned bool, err error) {
	switch {
	case s.Case != "":
		n, err = grid.CaseByName(s.Case)
		return n, true, err
	case s.Network != nil:
		return s.Network(), true, nil
	default:
		return s.Net, false, nil
	}
}

// profileFactors returns the Spec's hourly load factors: the embedded NY
// winter-weekday shape scaled so the network peaks at PeakLoadMW (or 85%
// of the base load when unset) — the convention every profile-driven
// artifact of the reproduction shares.
func (s Spec) profileFactors(n *grid.Network) ([]float64, error) {
	peak := s.PeakLoadMW
	if peak <= 0 {
		peak = 0.85 * n.TotalLoadMW()
	}
	return loadprofile.ScaleToPeak(loadprofile.NYWinterWeekday(), n.TotalLoadMW(), peak)
}

// Unit is one schedulable step of a compiled Spec. Units run in order:
// sweeps chain warm starts and day loops carry the attacker's staleness,
// so the batch is deterministic by construction rather than by isolation.
type Unit struct {
	// Label names the unit for logs and progress displays.
	Label string
	run   func(*execState) error
}

// Batch is a compiled Spec: the resolved deterministic unit sequence.
type Batch struct {
	Spec  Spec
	Units []Unit
}

// Compile resolves the Spec into its evaluation units. Compilation is
// cheap and performs no numerical work; it exists so callers can inspect
// and label the work before running it.
func (s Spec) Compile() (*Batch, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := &Batch{Spec: s}
	switch s.Kind {
	case GammaSweep:
		b.Units = append(b.Units, Unit{Label: "operating-point", run: (*execState).setupGammaSweep})
		for _, gth := range s.GammaGrid {
			gth := gth
			b.Units = append(b.Units, Unit{
				Label: fmt.Sprintf("gamma=%.3g", gth),
				run:   func(st *execState) error { return st.sweepPoint(gth) },
			})
		}
		if s.CapWithMaxGamma {
			b.Units = append(b.Units, Unit{Label: "max-gamma-cap", run: (*execState).sweepCap})
		}
	case DaySweep:
		b.Units = append(b.Units, Unit{Label: "day", run: (*execState).runDay})
	case RandomKeys:
		b.Units = append(b.Units, Unit{Label: "operating-point", run: (*execState).setupRandomKeys})
		trials := s.Trials
		if trials <= 0 {
			trials = 1
		}
		for t := 1; t <= trials; t++ {
			t := t
			b.Units = append(b.Units, Unit{
				Label: fmt.Sprintf("key-%d", t),
				run:   func(st *execState) error { return st.randomKey(t) },
			})
		}
	case Learning:
		for _, k := range s.SampleGrid {
			k := k
			b.Units = append(b.Units, Unit{
				Label: fmt.Sprintf("samples-%d", k),
				run:   func(st *execState) error { return st.learnPoint(k) },
			})
		}
		b.Units = append(b.Units, Unit{Label: "staleness-probe", run: (*execState).learnProbe})
	case Placement:
		devices := s.Placement.Devices
		if devices <= 0 {
			devices = 6
		}
		if devices > 12 {
			devices = 12 // the documented cap: keeps every probe's corner poll exact
		}
		b.Units = append(b.Units, Unit{Label: "placement-setup", run: (*execState).setupPlacement})
		for round := 1; round <= devices; round++ {
			round := round
			b.Units = append(b.Units, Unit{
				Label: fmt.Sprintf("round-%d", round),
				run:   func(st *execState) error { return st.placementRound(round) },
			})
		}
	}
	return b, nil
}
