package core

import (
	"math"
	"testing"

	"gridmtd/internal/grid"
)

// estStatsDelta runs fn and returns the change in the process-wide
// estimator-cache counters it caused.
func estStatsDelta(fn func()) EstimatorCacheStats {
	before := GlobalEstimatorCacheStats()
	fn()
	after := GlobalEstimatorCacheStats()
	return EstimatorCacheStats{
		Hits:       after.Hits - before.Hits,
		Misses:     after.Misses - before.Misses,
		FastBuilds: after.FastBuilds - before.FastBuilds,
		FullQRs:    after.FullQRs - before.FullQRs,
	}
}

// TestEstimatorCacheHitMissEvict pins the cache mechanics: bitwise-keyed
// hits return the identical estimator, distinct settings miss through the
// factory's fast build, eviction drops the least recently used entry, and
// a foreign network bypasses the cache with a full QR.
func TestEstimatorCacheHitMissEvict(t *testing.T) {
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	c := NewEstimatorCache(n, 2)
	lo, hi := n.DFACTSBounds()
	setting := func(f float64) []float64 {
		xd := make([]float64, len(lo))
		for i := range xd {
			xd[i] = lo[i] + f*(hi[i]-lo[i])
		}
		return n.ExpandDFACTS(xd)
	}
	x1, x2, x3 := setting(0.25), setting(0.5), setting(0.75)

	var e1 any
	d := estStatsDelta(func() {
		est, err := c.Get(n, x1)
		if err != nil {
			t.Fatal(err)
		}
		e1 = est
	})
	if d.Misses != 1 || d.Hits != 0 || d.FastBuilds != 1 || d.FullQRs != 0 {
		t.Fatalf("first Get: %+v; want 1 miss served by the fast build", d)
	}
	d = estStatsDelta(func() {
		est, err := c.Get(n, x1)
		if err != nil {
			t.Fatal(err)
		}
		if any(est) != e1 {
			t.Fatal("hit returned a different estimator instance")
		}
	})
	if d.Hits != 1 || d.Misses != 0 || d.FastBuilds != 0 || d.FullQRs != 0 {
		t.Fatalf("repeat Get: %+v; want a pure hit", d)
	}
	d = estStatsDelta(func() {
		if _, err := c.Get(n, x2); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(n, x3); err != nil { // evicts x1 (cap 2)
			t.Fatal(err)
		}
		if _, err := c.Get(n, x1); err != nil { // rebuilt after eviction
			t.Fatal(err)
		}
	})
	if d.Misses != 3 || d.FastBuilds != 3 {
		t.Fatalf("evict sequence: %+v; want 3 fast-build misses", d)
	}

	other, err := grid.CaseByName("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	d = estStatsDelta(func() {
		if _, err := c.Get(other, other.Reactances()); err != nil {
			t.Fatal(err)
		}
	})
	if d.Misses != 1 || d.FullQRs != 1 || d.FastBuilds != 0 {
		t.Fatalf("foreign network: %+v; want an uncached full QR", d)
	}
}

// TestEvaluateAttacksWithEstimatorCache is the end-to-end agreement bar on
// a fast (sparse-backend) set: injecting the cache must leave η′(δ), the
// undetectable fraction and γ within 1e-9 of the uncached path, and repeat
// evaluations of the same candidate must hit the cache.
func TestEvaluateAttacksWithEstimatorCache(t *testing.T) {
	n, err := grid.CaseByName("ieee118")
	if err != nil {
		t.Fatal(err)
	}
	xOld := n.Reactances()
	zOld, err := OperatingMeasurements(n, xOld)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EffectivenessConfig{NumAttacks: 100, Seed: 5}
	set, err := SampleAttacks(n, xOld, zOld, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !set.fast {
		t.Fatal("ieee118 attack set is not fast; the cache gate would never open")
	}
	cached := cfg
	cached.Estimators = NewEstimatorCache(n, 0)
	for pi, xd := range backendTestPoints(n) {
		xNew := n.ExpandDFACTS(xd)
		want, err := EvaluateAttacks(n, set, xNew, cfg)
		if err != nil {
			t.Fatalf("point %d (uncached): %v", pi, err)
		}
		var got *EffectivenessResult
		d := estStatsDelta(func() {
			got, err = EvaluateAttacks(n, set, xNew, cached)
			if err != nil {
				t.Fatalf("point %d (cached): %v", pi, err)
			}
		})
		if d.Misses != 1 || d.Hits != 0 {
			t.Fatalf("point %d: first cached eval %+v; want one miss", pi, d)
		}
		for i := range want.Eta {
			if math.Abs(got.Eta[i]-want.Eta[i]) > 1e-9 {
				t.Errorf("point %d: η′(%.2f) cached %v != %v", pi, want.Deltas[i], got.Eta[i], want.Eta[i])
			}
		}
		if math.Abs(got.UndetectableFraction-want.UndetectableFraction) > 1e-9 {
			t.Errorf("point %d: undetectable cached %v != %v", pi, got.UndetectableFraction, want.UndetectableFraction)
		}
		if math.Abs(got.Gamma-want.Gamma) > 1e-9 {
			t.Errorf("point %d: γ cached %v != %v", pi, got.Gamma, want.Gamma)
		}
		d = estStatsDelta(func() {
			if _, err := EvaluateAttacks(n, set, xNew, cached); err != nil {
				t.Fatalf("point %d (repeat): %v", pi, err)
			}
		})
		if d.Hits != 1 || d.Misses != 0 {
			t.Fatalf("point %d: repeat cached eval %+v; want one hit", pi, d)
		}
	}
}
