package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
	"gridmtd/internal/optimize"
)

// ErrNoDFACTS is returned when a selection routine runs on a network
// without any D-FACTS devices.
var ErrNoDFACTS = errors.New("core: network has no D-FACTS devices")

// ErrConstraintUnreachable is returned by SelectMTD when no reactance
// setting within the D-FACTS limits achieves the requested γ threshold.
var ErrConstraintUnreachable = errors.New("core: gamma threshold unreachable within D-FACTS limits")

// Selection is a chosen MTD perturbation together with its metrics.
type Selection struct {
	// Reactances is the full post-MTD branch reactance vector x'.
	Reactances []float64
	// OPF is the optimal dispatch under the chosen reactances.
	OPF *opf.Result
	// Gamma is the achieved separation γ(H(xOld), H(x')).
	Gamma float64
	// CostIncrease is C_MTD: the relative OPF cost increase over the
	// no-MTD optimum at the same loads (paper equation (3)).
	CostIncrease float64
	// BaselineCost is the no-MTD OPF cost C_OPF,t' used as reference: the
	// cost of problem (1) — dispatch AND D-FACTS reactances optimized
	// without any γ constraint.
	BaselineCost float64
}

// SelectConfig tunes the problem-(4) search.
type SelectConfig struct {
	// GammaThreshold is γ_th in constraint (4b).
	GammaThreshold float64
	// Starts is the number of multi-start points (default 8).
	Starts int
	// Seed seeds the multi-start sampler.
	Seed int64
	// MaxEvals bounds objective evaluations per local search (default
	// 80 × #D-FACTS branches).
	MaxEvals int
	// PenaltyMu weights the quadratic γ-constraint penalty (default 1e10,
	// large relative to $-scale OPF costs).
	PenaltyMu float64
	// GammaTol is the tolerated constraint slack when validating the
	// result (default 2e-3 rad).
	GammaTol float64
	// BaselineCost, when positive, is used as the no-MTD reference cost
	// C_OPF,t' instead of solving problem (1) internally. Callers running
	// many selections against the same loads (tradeoff sweeps, the daily
	// simulation) should compute it once via NoMTDCost.
	BaselineCost float64
	// WarmStarts are additional D-FACTS starting points for the search
	// (e.g. the previous γ-threshold's solution during a sweep).
	WarmStarts [][]float64
	// Parallelism bounds the number of concurrent local searches (0 =
	// GOMAXPROCS, 1 = serial). The selected MTD is identical for every
	// setting; see optimize.MSConfig.Parallelism.
	Parallelism int
}

func (c SelectConfig) withDefaults(dim int) SelectConfig {
	if c.Starts <= 0 {
		c.Starts = 8
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 80 * dim
	}
	if c.PenaltyMu <= 0 {
		c.PenaltyMu = 1e10
	}
	if c.GammaTol <= 0 {
		c.GammaTol = 2e-3
	}
	return c
}

// NoMTDCost returns C_OPF,t': the generation cost of problem (1) at the
// network's current loads with dispatch and D-FACTS reactances free — the
// reference against which the MTD operational cost is measured.
func NoMTDCost(n *grid.Network, starts int, seed int64) (float64, error) {
	res, err := opf.SolveDFACTS(n, opf.DFACTSConfig{Starts: starts, Seed: seed})
	if err != nil {
		return 0, fmt.Errorf("core: no-MTD baseline OPF: %w", err)
	}
	return res.CostPerHour, nil
}

// SelectMTD solves the paper's problem (4): choose the D-FACTS reactance
// vector x' minimizing the OPF generation cost at the network's current
// loads subject to γ(H(xOld), H(x')) ≥ γ_th and the device/network limits.
// xOld is the (attacker-known) pre-perturbation reactance vector — with
// hourly MTD it reflects loads one interval old, while cost is evaluated at
// the current loads, exactly as in Section VI.
func SelectMTD(n *grid.Network, xOld []float64, cfg SelectConfig) (*Selection, error) {
	eng, err := newEngines(n, xOld)
	if err != nil {
		return nil, err
	}
	return selectMTD(n, xOld, cfg, eng)
}

// Engines bundles the cached evaluators one pre-perturbation configuration
// needs: the γ-evaluation engine keyed by x_old and the dispatch-OPF
// engine. Callers running several searches against the same x_old (the
// γ-threshold bisection, a γ sweep, the planner service) build them once
// via NewEngines; batched drivers that already hold a dispatch engine for
// the case share it via NewEnginesShared, so only the (x_old-keyed) γ side
// is rebuilt per configuration.
type Engines struct {
	gamma    *GammaEvaluator
	dispatch *opf.DispatchEngine
}

// NewEngines builds the evaluator bundle for the pre-perturbation
// reactance vector xOld, constructing a fresh dispatch engine.
func NewEngines(n *grid.Network, xOld []float64) (*Engines, error) {
	de, err := opf.NewDispatchEngine(n)
	if err != nil {
		return nil, fmt.Errorf("core: dispatch engine: %w", err)
	}
	return NewEnginesShared(n, xOld, de), nil
}

// NewEnginesShared builds the evaluator bundle around an existing dispatch
// engine for the same network (which must have been constructed for n),
// with the default γ backend.
func NewEnginesShared(n *grid.Network, xOld []float64, dispatch *opf.DispatchEngine) *Engines {
	return NewEnginesSharedBackend(n, xOld, dispatch, AutoGamma)
}

// NewEnginesSharedBackend is NewEnginesShared with an explicit γ-backend
// choice — the hook the scenario layer and the planner service thread
// their per-spec/per-request GammaBackend through.
func NewEnginesSharedBackend(n *grid.Network, xOld []float64, dispatch *opf.DispatchEngine, gb GammaBackend) *Engines {
	return &Engines{gamma: NewGammaEvaluatorBackend(n, xOld, gb), dispatch: dispatch}
}

// Dispatch exposes the bundle's dispatch-OPF engine.
func (e *Engines) Dispatch() *opf.DispatchEngine { return e.dispatch }

// Gamma exposes the bundle's γ evaluator (keyed by the xOld the bundle was
// built for).
func (e *Engines) Gamma() *GammaEvaluator { return e.gamma }

func newEngines(n *grid.Network, xOld []float64) (*Engines, error) {
	return NewEngines(n, xOld)
}

// SelectMTDWith is SelectMTD against a pre-built evaluator bundle (whose γ
// engine must be keyed by the same xOld).
func SelectMTDWith(eng *Engines, n *grid.Network, xOld []float64, cfg SelectConfig) (*Selection, error) {
	return selectMTD(n, xOld, cfg, eng)
}

// MaxGammaWith is MaxGamma against a pre-built evaluator bundle.
func MaxGammaWith(eng *Engines, n *grid.Network, xOld []float64, cfg MaxGammaConfig) (*Selection, error) {
	return maxGamma(n, xOld, cfg, eng)
}

// selectMTD is SelectMTD against pre-built engines.
func selectMTD(n *grid.Network, xOld []float64, cfg SelectConfig, eng *Engines) (*Selection, error) {
	idx := n.DFACTSIndices()
	if len(idx) == 0 {
		return nil, ErrNoDFACTS
	}
	cfg = cfg.withDefaults(len(idx))

	baselineCost := cfg.BaselineCost
	if baselineCost <= 0 {
		var err error
		baselineCost, err = NoMTDCost(n, cfg.Starts, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}

	// Each multi-start worker gets its own engine sessions (no pool churn
	// per evaluation) and two kinds of per-worker warm state: the sparse
	// path's warm LP basis and, on the sketch backend, the carried Lanczos
	// warm start. The reset hook scopes both to one local search, so the
	// selected MTD is identical for every worker count. The driver-level
	// objective is built by the same factory, so there is exactly one
	// definition.
	newWorker := func() (optimize.Objective, optimize.ThresholdEval, func()) {
		gs := eng.gamma.NewSession()
		gs.CarryWarmStarts()
		ds := eng.dispatch.NewSession()
		costOf := func(xd []float64) float64 {
			cost, err := ds.Cost(n.ExpandDFACTS(xd))
			if err != nil {
				return optimize.InfeasibleObjective
			}
			return cost
		}
		cons := []optimize.Constraint{
			func(xd []float64) float64 { return cfg.GammaThreshold - gs.GammaDFACTS(xd) },
		}
		reset := func() {
			ds.ResetWarmStart()
			gs.ResetWarmStart()
		}
		if eng.dispatch.Backend() == grid.SparseBackend {
			// Lazy-penalty skip (sparse path only): evaluate the γ
			// constraint first and skip the dispatch solve entirely at
			// γ-infeasible points, scoring them penalty + CostUpperBound
			// — the most ANY dispatch solve could have added. Every
			// γ-feasible point scores below costUB, so no skipped point
			// can ever displace one as the returned minimum; and with
			// the default μ = 1e10 the penalty term dominates the
			// objective landscape at any meaningful violation anyway, so
			// the skip only deprives the search of cost detail the
			// penalty had already drowned out. The surrogate is a pure
			// function of xd, so determinism and worker-count invariance
			// are untouched; the winner is still validated by exact γ
			// and a full dispatch solve below. The dense path keeps the
			// historical Penalized objective bitwise.
			costUB := eng.dispatch.CostUpperBound()
			gammaCons := cons[0]
			obj := func(xd []float64) float64 {
				viol := gammaCons(xd)
				if viol <= 0 {
					return costOf(xd)
				}
				return cfg.PenaltyMu*viol*viol + costUB
			}
			// Threshold-aware evaluation (the dual-bound screen): same
			// composite, same γ-first evaluation order, but a γ-feasible
			// point's dispatch solve may stop at a certified weak-duality
			// bound above the threshold. The screen is valid only below
			// the infeasibility sentinel: the composite maps dispatch
			// errors to exactly InfeasibleObjective, so "LP cost >
			// threshold" implies "composite > threshold" only when
			// threshold < InfeasibleObjective; at or above it the
			// evaluation runs exact. Every solve goes through the shared
			// SolveCache from the seed basis, so a skipped solve is a
			// skipped pure computation — no other evaluation changes.
			te := func(xd []float64, threshold float64) (float64, bool) {
				viol := gammaCons(xd)
				if viol > 0 {
					return cfg.PenaltyMu*viol*viol + costUB, false
				}
				if threshold < optimize.InfeasibleObjective {
					cost, screened, err := ds.CostOrBound(n.ExpandDFACTS(xd), threshold)
					if err != nil {
						return optimize.InfeasibleObjective, false
					}
					return cost, screened
				}
				return costOf(xd), false
			}
			return obj, te, reset
		}
		return optimize.Penalized(costOf, cons, cfg.PenaltyMu), nil, reset
	}
	obj, _, _ := newWorker()

	lo, hi := n.DFACTSBounds()
	box := optimize.Bounds{Lower: lo, Upper: hi}
	local := func(f optimize.Objective, x0 []float64) (*optimize.Result, error) {
		return optimize.NelderMead(f, x0, optimize.NMConfig{MaxEvals: cfg.MaxEvals})
	}
	initials := [][]float64{
		n.DFACTSSetting(n.Reactances()),
		n.DFACTSSetting(xOld),
	}
	initials = append(initials, cfg.WarmStarts...)
	best, err := optimize.MultiStart(obj, box, local, optimize.MSConfig{
		Starts:        cfg.Starts,
		Seed:          cfg.Seed,
		InitialPoints: initials,
		Parallelism:   cfg.Parallelism,
		// Sparse path: a random restart is admitted only if its start
		// point already beats the best initial-point optimum — every
		// skipped restart saves a full Nelder-Mead budget of dispatch
		// LPs. Dense path keeps the historical every-start search.
		ScreenRestarts:    eng.dispatch.Backend() == grid.SparseBackend,
		NewWorkerScreened: newWorker,
		// Dual-bound screening inside the local searches (sparse path
		// only — newWorker returns a nil ThresholdEval on the dense
		// path, which keeps the historical exact NelderMead bitwise).
		ScreenedLocal: func(f optimize.Objective, screen optimize.ThresholdEval, x0 []float64) (*optimize.Result, error) {
			return optimize.NelderMead(f, x0, optimize.NMConfig{MaxEvals: cfg.MaxEvals, Screen: screen})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("core: problem (4) search: %w", err)
	}

	// Tolerance contract: an approximate γ backend may guide the search,
	// but the winner is validated — and reported — through the exact
	// evaluator, so GammaTol keeps its historical meaning (search slack,
	// not search slack plus sketch error). For exact and sparse backends
	// GammaDFACTSExact is the regular evaluation.
	gamma := eng.gamma.GammaDFACTSExact(best.X)
	if gamma < cfg.GammaThreshold-cfg.GammaTol {
		return nil, fmt.Errorf("%w: best γ %.4f < threshold %.4f", ErrConstraintUnreachable, gamma, cfg.GammaThreshold)
	}
	xFull := n.ExpandDFACTS(best.X)
	res, err := eng.dispatch.Solve(xFull)
	if err != nil {
		return nil, fmt.Errorf("core: OPF at selected reactances: %w", err)
	}
	return &Selection{
		Reactances:   xFull,
		OPF:          res,
		Gamma:        gamma,
		CostIncrease: OperationalCost(baselineCost, res.CostPerHour),
		BaselineCost: baselineCost,
	}, nil
}

// MaxGammaConfig tunes the MaxGamma search.
type MaxGammaConfig struct {
	// Starts is the number of multi-start points (default 8).
	Starts int
	// MaxEvals bounds objective evaluations per local search, for both the
	// γ maximization and the infeasibility-backoff selections (default
	// 120 × #D-FACTS branches). Lower it for quick large-case probes.
	MaxEvals int
	// Seed seeds the sampler.
	Seed int64
	// BaselineCost, when positive, is the no-MTD reference cost (see
	// SelectConfig.BaselineCost).
	BaselineCost float64
	// Parallelism bounds the number of concurrent workers for the corner
	// enumeration and the local searches (0 = GOMAXPROCS, 1 = serial).
	// The result is identical for every setting.
	Parallelism int
}

// MaxGamma finds the D-FACTS setting that maximizes γ(H(xOld), H(x'))
// regardless of cost — the pure-detection design of Section V, and the
// practical probe for the largest achievable γ (Theorem 1's orthogonality
// is unattainable with bounded devices, so this is the best the hardware
// can do). Because γ is typically maximized at extreme device settings, the
// search polls all box corners (up to 2¹² of them) in addition to
// multi-start Nelder-Mead. On networks with calibrated (tight) line
// ratings the pure-γ optimum can be operationally infeasible — no dispatch
// satisfies the ratings there; MaxGamma then backs off to the largest γ
// threshold the cost-minimizing problem (4) can satisfy, i.e. the best the
// hardware AND the network constraints allow.
func MaxGamma(n *grid.Network, xOld []float64, cfg MaxGammaConfig) (*Selection, error) {
	eng, err := newEngines(n, xOld)
	if err != nil {
		return nil, err
	}
	return maxGamma(n, xOld, cfg, eng)
}

// maxGamma is MaxGamma against pre-built engines.
func maxGamma(n *grid.Network, xOld []float64, cfg MaxGammaConfig, eng *Engines) (*Selection, error) {
	idx := n.DFACTSIndices()
	if len(idx) == 0 {
		return nil, ErrNoDFACTS
	}
	if cfg.Starts <= 0 {
		cfg.Starts = 8
	}
	if cfg.MaxEvals <= 0 {
		cfg.MaxEvals = 120 * len(idx)
	}
	gammaOf := eng.gamma.GammaDFACTS
	lo, hi := n.DFACTSBounds()
	box := optimize.Bounds{Lower: lo, Upper: hi}

	// Corner enumeration (exact when the maximum sits at a vertex, which it
	// empirically does for reactance perturbations). The corners are fanned
	// out across workers; the reduction keeps the highest γ and breaks ties
	// toward the lowest corner index, which is exactly the corner a serial
	// ascending scan with strict improvement would keep.
	newGammaOf := func() func([]float64) float64 {
		return eng.gamma.NewSession().GammaDFACTS
	}
	bestX := box.Sample(rand.New(rand.NewSource(cfg.Seed)))
	bestG := gammaOf(bestX)
	if d := len(idx); d <= 12 {
		cornerG, cornerMask := bestCorner(newGammaOf, lo, hi, d, cfg.Parallelism)
		if cornerG > bestG {
			bestG = cornerG
			for i := 0; i < d; i++ {
				if cornerMask&(1<<i) != 0 {
					bestX[i] = hi[i]
				} else {
					bestX[i] = lo[i]
				}
			}
		}
	}

	newWorkerObj := func() (optimize.Objective, func()) {
		gs := eng.gamma.NewSession()
		gs.CarryWarmStarts()
		// The carried Lanczos warm start is scoped to one local search, same
		// as selectMTD: reset keeps the search identical for every worker
		// count.
		return func(xd []float64) float64 { return -gs.GammaDFACTS(xd) }, gs.ResetWarmStart
	}
	obj, _ := newWorkerObj()
	local := func(f optimize.Objective, x0 []float64) (*optimize.Result, error) {
		return optimize.NelderMead(f, x0, optimize.NMConfig{MaxEvals: cfg.MaxEvals})
	}
	res, err := optimize.MultiStart(obj, box, local, optimize.MSConfig{
		Starts:             cfg.Starts,
		Seed:               cfg.Seed,
		InitialPoints:      [][]float64{bestX},
		Parallelism:        cfg.Parallelism,
		NewWorkerObjective: newWorkerObj,
	})
	if err != nil {
		return nil, err
	}
	if g := -res.F; g > bestG {
		bestG = g
		bestX = res.X
	}
	// Same tolerance contract as selectMTD: the reported γ (and the backoff
	// ladder's thresholds, which are fractions of it) come from the exact
	// evaluator even when an approximate backend guided the corner poll and
	// the local searches.
	if eng.gamma.Backend() == SketchGamma {
		bestG = eng.gamma.GammaDFACTSExact(bestX)
	}

	baselineCost := cfg.BaselineCost
	if baselineCost <= 0 {
		baselineCost, err = NoMTDCost(n, cfg.Starts, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	xFull := n.ExpandDFACTS(bestX)
	opfRes, err := eng.dispatch.Solve(xFull)
	if errors.Is(err, opf.ErrInfeasible) {
		// The pure-γ optimum cannot be operated. Walk a deterministic
		// ladder of γ thresholds below it; the first level problem (4) can
		// satisfy is the best operable design.
		for _, frac := range []float64{0.95, 0.85, 0.75, 0.65, 0.55, 0.45} {
			sel, serr := selectMTD(n, xOld, SelectConfig{
				GammaThreshold: frac * bestG,
				Starts:         cfg.Starts,
				MaxEvals:       cfg.MaxEvals,
				Seed:           cfg.Seed,
				BaselineCost:   baselineCost,
				Parallelism:    cfg.Parallelism,
			}, eng)
			if serr == nil {
				return sel, nil
			}
		}
		return nil, fmt.Errorf("core: OPF at max-γ reactances: %w", err)
	}
	if err != nil {
		return nil, fmt.Errorf("core: OPF at max-γ reactances: %w", err)
	}
	return &Selection{
		Reactances:   xFull,
		OPF:          opfRes,
		Gamma:        bestG,
		CostIncrease: OperationalCost(baselineCost, opfRes.CostPerHour),
		BaselineCost: baselineCost,
	}, nil
}

// bestCorner evaluates γ at all 2^d corners of the D-FACTS box, splitting
// the masks across workers, and returns the best value with the lowest
// achieving mask. newGammaOf builds one γ evaluator per worker chunk
// (engine affinity); the chunk sessions never opt into warm-start carrying
// — the chunk partition depends on the worker count, so a carried state
// would break the worker-count invariance — and γ evaluation is otherwise
// stateless, so the winner is independent of the worker count.
func bestCorner(newGammaOf func() func([]float64) float64, lo, hi []float64, d, parallelism int) (float64, int) {
	total := 1 << d
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	type chunkBest struct {
		g    float64
		mask int
	}
	evalRange := func(fromMask, toMask int) chunkBest {
		gammaOf := newGammaOf()
		xd := make([]float64, d)
		best := chunkBest{g: math.Inf(-1), mask: -1}
		for mask := fromMask; mask < toMask; mask++ {
			for i := 0; i < d; i++ {
				if mask&(1<<i) != 0 {
					xd[i] = hi[i]
				} else {
					xd[i] = lo[i]
				}
			}
			if g := gammaOf(xd); g > best.g {
				best = chunkBest{g: g, mask: mask}
			}
		}
		return best
	}
	var bests []chunkBest
	if workers <= 1 {
		bests = []chunkBest{evalRange(0, total)}
	} else {
		bests = make([]chunkBest, workers)
		var wg sync.WaitGroup
		per := (total + workers - 1) / workers
		for w := 0; w < workers; w++ {
			from := w * per
			to := from + per
			if to > total {
				to = total
			}
			if from >= to {
				bests[w] = chunkBest{g: math.Inf(-1), mask: -1}
				continue
			}
			wg.Add(1)
			go func(w, from, to int) {
				defer wg.Done()
				bests[w] = evalRange(from, to)
			}(w, from, to)
		}
		wg.Wait()
	}
	best := bests[0]
	for _, cb := range bests[1:] {
		// Chunks cover ascending mask ranges, so strict improvement keeps
		// the lowest winning mask.
		if cb.g > best.g {
			best = cb
		}
	}
	return best.g, best.mask
}

// RandomKeyWithinCost implements the random-keyspace MTD of prior work
// (Morrow et al., Davis et al.) under the reproduced paper's reading:
// random D-FACTS settings drawn uniformly from the device box, accepted
// when their OPF cost stays within costFrac (e.g. 0.02 = "within 2% of the
// optimal value") of baselineCost. It returns the accepted full reactance
// vector, its OPF cost, and the number of draws consumed. maxDraws bounds
// rejection sampling (default 1000 when <= 0).
func RandomKeyWithinCost(rng *rand.Rand, n *grid.Network, baselineCost, costFrac float64, maxDraws int) ([]float64, float64, int, error) {
	engine, err := opf.NewDispatchEngine(n)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: dispatch engine: %w", err)
	}
	return RandomKeyWithinCostEngine(rng, n, engine, baselineCost, costFrac, maxDraws)
}

// RandomKeyWithinCostEngine is RandomKeyWithinCost against a pre-built
// dispatch engine for the same network, so keyspace studies drawing many
// keys on one case (Figs. 7-8, the random-baseline example) amortize the
// engine construction. Each call opens a fresh engine session, so the draw
// sequence and accepted key are identical to RandomKeyWithinCost.
func RandomKeyWithinCostEngine(rng *rand.Rand, n *grid.Network, engine *opf.DispatchEngine, baselineCost, costFrac float64, maxDraws int) ([]float64, float64, int, error) {
	idx := n.DFACTSIndices()
	if len(idx) == 0 {
		return nil, 0, 0, ErrNoDFACTS
	}
	if baselineCost <= 0 || costFrac < 0 {
		return nil, 0, 0, errors.New("core: invalid cost budget")
	}
	if maxDraws <= 0 {
		maxDraws = 1000
	}
	// The rejection loop is sequential, so a single session is safe and
	// deterministic; on the sparse path its warm LP basis carries across
	// draws and cuts the per-draw simplex work.
	sess := engine.NewSession()
	lo, hi := n.DFACTSBounds()
	box := optimize.Bounds{Lower: lo, Upper: hi}
	budget := baselineCost * (1 + costFrac)
	for draw := 1; draw <= maxDraws; draw++ {
		xd := box.Sample(rng)
		x := n.ExpandDFACTS(xd)
		cost, err := sess.Cost(x)
		if err != nil {
			continue // infeasible draw: outside the keyspace
		}
		if cost <= budget {
			return x, cost, draw, nil
		}
	}
	return nil, 0, maxDraws, fmt.Errorf("core: no random key within %.1f%% cost budget after %d draws", 100*costFrac, maxDraws)
}

// RandomPerturbation is the naive random baseline: every D-FACTS branch
// reactance is multiplied by an independent uniform factor in
// [1−maxFrac, 1+maxFrac], clipped to the device limits. It returns the
// full post-MTD reactance vector derived from the network's current
// reactances. (Under the paper's reading the prior-work keyspace bounds
// the OPF *cost*, not the reactance change — see RandomKeyWithinCost; this
// variant is kept as the literal-jitter ablation.)
func RandomPerturbation(rng *rand.Rand, n *grid.Network, maxFrac float64) ([]float64, error) {
	idx := n.DFACTSIndices()
	if len(idx) == 0 {
		return nil, ErrNoDFACTS
	}
	if maxFrac <= 0 {
		return nil, errors.New("core: maxFrac must be positive")
	}
	// Reactances() returns a fresh copy of the branch reactances, so the
	// in-place clipping below never aliases the network's stored values
	// (guarded by TestRandomPerturbationDoesNotMutateNetwork in
	// engine_test.go).
	x := n.Reactances()
	for _, i := range idx {
		factor := 1 + (2*rng.Float64()-1)*maxFrac
		v := x[i] * factor
		if v < n.Branches[i].XMin {
			v = n.Branches[i].XMin
		}
		if v > n.Branches[i].XMax {
			v = n.Branches[i].XMax
		}
		x[i] = v
	}
	return x, nil
}
