package core

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"gridmtd/internal/grid"
	"gridmtd/internal/mat"
	"gridmtd/internal/se"
)

// defaultEstimatorCacheCap bounds an EstimatorCache's LRU. Each entry holds
// one dense QR (Q, Qᵀ, R plus H — about 4·M·n floats, ~30 MB for ieee300),
// so the default stays small; a daemon's repeat traffic concentrates on far
// fewer distinct settings than this anyway.
const defaultEstimatorCacheCap = 16

// estGlobal aggregates estimator-cache traffic process-wide, mirroring the
// lp package's global revised-simplex counters: lock-free increments on the
// serving path, one snapshot call for /v1/stats and mtdexp -v.
var estGlobal struct {
	hits, misses        atomic.Int64
	fastBuilds, fullQRs atomic.Int64
}

// EstimatorCacheStats is a snapshot of the process-wide estimator-cache
// counters.
type EstimatorCacheStats struct {
	// Hits / Misses count cache lookups by outcome.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// FastBuilds counts misses served by the rank-structured completion
	// (only the D-FACTS-affected columns re-orthogonalized); FullQRs counts
	// misses that paid a full Householder factorization — the first build
	// per network, plus any fast-path premise or tolerance failure.
	FastBuilds int `json:"fast_builds"`
	FullQRs    int `json:"full_qrs"`
}

// Delta returns the field-wise counter increments s − since, for
// per-request assertions against the cumulative process-wide counters.
func (s EstimatorCacheStats) Delta(since EstimatorCacheStats) EstimatorCacheStats {
	return EstimatorCacheStats{
		Hits:       s.Hits - since.Hits,
		Misses:     s.Misses - since.Misses,
		FastBuilds: s.FastBuilds - since.FastBuilds,
		FullQRs:    s.FullQRs - since.FullQRs,
	}
}

// GlobalEstimatorCacheStats returns the process-wide cache counters.
func GlobalEstimatorCacheStats() EstimatorCacheStats {
	return EstimatorCacheStats{
		Hits:       int(estGlobal.hits.Load()),
		Misses:     int(estGlobal.misses.Load()),
		FastBuilds: int(estGlobal.fastBuilds.Load()),
		FullQRs:    int(estGlobal.fullQRs.Load()),
	}
}

// EstimatorCache memoizes post-MTD estimators per candidate reactance
// vector for one network. The cache key is the exact bit pattern of x_new,
// so a hit returns a factorization built from a bitwise-identical
// measurement matrix — no tolerance is involved in reuse. Entries are
// immutable once built (Estimator methods are read-only), so one cached
// estimator may serve concurrent evaluations.
//
// Builds route through a lazily constructed se.Factory: the thin QR of the
// D-FACTS-invariant columns is computed once per network (the first miss),
// and every later miss re-orthogonalizes only the device-adjacent columns
// against it. The factory's own bitwise premise check falls back to the
// full QR when a caller hands an x_new that disagrees outside the volatile
// columns (a network whose base reactances were mutated), so correctness
// never depends on the structural assumption.
//
// An EstimatorCache is safe for concurrent use; concurrent misses on one
// key share a single build. A nil cache is valid and builds fresh
// estimators on every call.
type EstimatorCache struct {
	n   *grid.Network
	cap int

	mu      sync.Mutex
	factory *se.Factory
	entries map[string]*estEntry
	lru     *list.List // front = most recent; values are keys
}

type estEntry struct {
	once sync.Once
	est  *se.Estimator
	err  error
	elem *list.Element
}

// NewEstimatorCache builds a cache for the given (immutable) network.
// capacity <= 0 selects the default.
func NewEstimatorCache(n *grid.Network, capacity int) *EstimatorCache {
	if capacity <= 0 {
		capacity = defaultEstimatorCacheCap
	}
	return &EstimatorCache{
		n:       n,
		cap:     capacity,
		entries: map[string]*estEntry{},
		lru:     list.New(),
	}
}

// estKey packs a reactance vector's bit pattern into a map key.
func estKey(x []float64) string {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		u := math.Float64bits(v)
		for k := 0; k < 8; k++ {
			b[8*i+k] = byte(u >> (8 * k))
		}
	}
	return string(b)
}

// Get returns the estimator for H(xNew), from the cache when possible. A
// nil receiver or a network other than the cache's bypasses the cache
// (counted as a miss with a full QR) — the caller never has to check which
// network an EffectivenessConfig's cache was built for.
func (c *EstimatorCache) Get(n *grid.Network, xNew []float64) (*se.Estimator, error) {
	if c == nil || n != c.n {
		estGlobal.misses.Add(1)
		estGlobal.fullQRs.Add(1)
		return se.NewEstimator(n.MeasurementMatrix(xNew))
	}
	key := estKey(xNew)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(e.elem)
	} else {
		e = &estEntry{}
		e.elem = c.lru.PushFront(key)
		c.entries[key] = e
		for c.lru.Len() > c.cap {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.entries, old.Value.(string))
		}
	}
	c.mu.Unlock()
	first := false
	e.once.Do(func() {
		first = true
		e.est, e.err = c.build(xNew)
	})
	if first || !ok {
		estGlobal.misses.Add(1)
	} else {
		estGlobal.hits.Add(1)
	}
	return e.est, e.err
}

// build constructs one estimator through the factory, creating the factory
// from this x_new's measurement matrix on the first build.
func (c *EstimatorCache) build(xNew []float64) (*se.Estimator, error) {
	h := c.n.MeasurementMatrix(xNew)
	f, err := c.factoryFor(h)
	if err != nil || f == nil {
		estGlobal.fullQRs.Add(1)
		return se.NewEstimator(h)
	}
	est, fast, err := f.Build(h)
	if fast {
		estGlobal.fastBuilds.Add(1)
	} else {
		estGlobal.fullQRs.Add(1)
	}
	return est, err
}

// factoryFor returns the cache's factory, constructing it from the given
// measurement matrix on first use. A construction error (degenerate
// geometry) permanently disables the fast path for this cache rather than
// failing lookups.
func (c *EstimatorCache) factoryFor(h *mat.Dense) (*se.Factory, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.factory == nil {
		f, err := se.NewFactory(h, c.n.DFACTSStateColumns())
		if err != nil {
			return nil, err
		}
		c.factory = f
	}
	return c.factory, nil
}
