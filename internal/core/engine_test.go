package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/subspace"
)

// randomReactances draws a random full reactance vector with the D-FACTS
// branches uniform inside their device boxes.
func randomReactances(rng *rand.Rand, n *grid.Network) []float64 {
	x := n.Reactances()
	for _, i := range n.DFACTSIndices() {
		br := n.Branches[i]
		x[i] = br.XMin + rng.Float64()*(br.XMax-br.XMin)
	}
	return x
}

// TestGammaEvaluatorMatchesUncached is the cached-vs-uncached equivalence
// check: the engine must reproduce subspace.Gamma on random reactance
// pairs to 1e-12 (in practice the two paths perform identical
// floating-point operations and agree bitwise).
func TestGammaEvaluatorMatchesUncached(t *testing.T) {
	n := grid.CaseIEEE14()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		xOld := randomReactances(rng, n)
		ev := NewGammaEvaluator(n, xOld)
		for cand := 0; cand < 5; cand++ {
			xNew := randomReactances(rng, n)
			want := subspace.Gamma(n.MeasurementMatrix(xOld), n.MeasurementMatrix(xNew))
			got := ev.Gamma(xNew)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d cand %d: engine γ = %v, uncached γ = %v (diff %g)",
					trial, cand, got, want, got-want)
			}
			gotD := ev.GammaDFACTS(n.DFACTSSetting(xNew))
			if gotD != got {
				t.Fatalf("GammaDFACTS = %v differs from Gamma = %v", gotD, got)
			}
		}
	}
}

// TestGammaEvaluatorConcurrent hammers one evaluator from many goroutines
// and checks every result against the serial value: the pooled workspaces
// must not bleed state across concurrent evaluations.
func TestGammaEvaluatorConcurrent(t *testing.T) {
	n := grid.CaseIEEE14()
	rng := rand.New(rand.NewSource(12))
	xOld := randomReactances(rng, n)
	ev := NewGammaEvaluator(n, xOld)

	const numCands = 24
	cands := make([][]float64, numCands)
	want := make([]float64, numCands)
	for i := range cands {
		cands[i] = randomReactances(rng, n)
		want[i] = ev.Gamma(cands[i])
	}

	var wg sync.WaitGroup
	errs := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				for i := range cands {
					if ev.Gamma(cands[i]) != want[i] {
						errs[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, cnt := range errs {
		if cnt > 0 {
			t.Fatalf("worker %d saw %d mismatching concurrent γ values", w, cnt)
		}
	}
}

// TestSelectMTDParallelismInvariant verifies the headline determinism
// contract: the identical Selection comes back for any Parallelism.
func TestSelectMTDParallelismInvariant(t *testing.T) {
	n, xt, _, cost := setup14(t)
	var results []*Selection
	for _, par := range []int{1, 4} {
		sel, err := SelectMTD(n, xt, SelectConfig{
			GammaThreshold: 0.2,
			Starts:         3,
			Seed:           21,
			BaselineCost:   cost,
			Parallelism:    par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		results = append(results, sel)
	}
	a, b := results[0], results[1]
	for i := range a.Reactances {
		if a.Reactances[i] != b.Reactances[i] {
			t.Fatalf("reactance %d differs across parallelism: %v vs %v", i, a.Reactances[i], b.Reactances[i])
		}
	}
	if a.Gamma != b.Gamma || a.OPF.CostPerHour != b.OPF.CostPerHour || a.CostIncrease != b.CostIncrease {
		t.Fatalf("selection metrics differ across parallelism: %+v vs %+v", a, b)
	}
}

// TestMaxGammaParallelismInvariant checks the corner enumeration and the
// multi-start reduction stay deterministic under parallel fan-out.
func TestMaxGammaParallelismInvariant(t *testing.T) {
	n, xt, _, cost := setup14(t)
	var sels []*Selection
	for _, par := range []int{1, 3} {
		sel, err := MaxGamma(n, xt, MaxGammaConfig{Starts: 2, Seed: 5, BaselineCost: cost, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sels = append(sels, sel)
	}
	if sels[0].Gamma != sels[1].Gamma {
		t.Fatalf("max γ differs across parallelism: %v vs %v", sels[0].Gamma, sels[1].Gamma)
	}
	for i := range sels[0].Reactances {
		if sels[0].Reactances[i] != sels[1].Reactances[i] {
			t.Fatalf("reactance %d differs across parallelism", i)
		}
	}
}

// TestEvaluateAttacksParallelismInvariant checks the chunked η′ loop:
// every reported number must be identical for any worker count.
func TestEvaluateAttacksParallelismInvariant(t *testing.T) {
	n, xt, zt, _ := setup14(t)
	cfg := EffectivenessConfig{NumAttacks: 200, Seed: 9, ReportProbs: true}
	set, err := SampleAttacks(n, xt, zt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xNew := n.ExpandDFACTS(mustMaxCorner(t, n))
	var results []*EffectivenessResult
	for _, par := range []int{1, 4, 7} {
		c := cfg
		c.Parallelism = par
		eff, err := EvaluateAttacks(n, set, xNew, c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		results = append(results, eff)
	}
	base := results[0]
	for ri, r := range results[1:] {
		if r.Gamma != base.Gamma || r.UndetectableFraction != base.UndetectableFraction {
			t.Fatalf("result %d: γ/undetectable differ across parallelism", ri+1)
		}
		for i := range base.Eta {
			if r.Eta[i] != base.Eta[i] {
				t.Fatalf("result %d: η'[%d] differs: %v vs %v", ri+1, i, r.Eta[i], base.Eta[i])
			}
		}
		for i := range base.DetectionProbs {
			if r.DetectionProbs[i] != base.DetectionProbs[i] {
				t.Fatalf("result %d: prob[%d] differs", ri+1, i)
			}
		}
	}
}

// mustMaxCorner returns the all-XMax D-FACTS setting.
func mustMaxCorner(t *testing.T, n *grid.Network) []float64 {
	t.Helper()
	_, hi := n.DFACTSBounds()
	return hi
}

// TestRandomPerturbationDoesNotMutateNetwork is the regression test for
// the aliasing hazard: RandomPerturbation clips the returned vector in
// place, which must never touch the network's stored reactances (it
// operates on the copy Reactances() returns).
func TestRandomPerturbationDoesNotMutateNetwork(t *testing.T) {
	n := grid.CaseIEEE14()
	before := n.Reactances()
	rng := rand.New(rand.NewSource(3))
	x, err := RandomPerturbation(rng, n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	after := n.Reactances()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("branch %d reactance mutated by RandomPerturbation: %v -> %v", i, before[i], after[i])
		}
		if before[i] != n.Branches[i].X {
			t.Fatalf("branch %d stored X inconsistent", i)
		}
	}
	// The returned vector must be a distinct allocation: writing through it
	// must not reach the network either.
	for i := range x {
		x[i] = -1
	}
	for i := range before {
		if n.Branches[i].X != before[i] {
			t.Fatalf("branch %d mutated through returned slice", i)
		}
	}
}

// TestAttackSetAccessors covers the packed batch surface.
func TestAttackSetAccessors(t *testing.T) {
	n, xt, zt, _ := setup14(t)
	set, err := SampleAttacks(n, xt, zt, EffectivenessConfig{NumAttacks: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 10 {
		t.Fatalf("Len = %d, want 10", set.Len())
	}
	v := set.At(3)
	if len(v.A) != n.M() || len(v.C) != n.N()-1 {
		t.Fatalf("attack dims %d/%d, want %d/%d", len(v.A), len(v.C), n.M(), n.N()-1)
	}
	// At must copy: mutating the vector cannot corrupt the batch.
	orig := set.Batch.A(3)[0]
	v.A[0] = math.Inf(1)
	if set.Batch.A(3)[0] != orig {
		t.Fatal("At returned a view into the batch")
	}
}
