package core

import (
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
)

// sketchedAttackCfg is the effectiveness config the agreement suite runs
// with: enough attacks to populate every η′ band, seeded, analytic.
func sketchedAttackCfg(backend GammaBackend) EffectivenessConfig {
	return EffectivenessConfig{
		NumAttacks:   200,
		Seed:         7,
		GammaBackend: backend,
	}
}

// TestSketchedAttackEvalAgreement is the screened-residual contract: the
// sketched analytic path (sparse-Gram screening with exact re-check near
// every decision threshold) must report η′(δ) rows, the undetectable
// fraction, and γ identical to the exact path, across the registered cases
// and a spread of candidate perturbations.
func TestSketchedAttackEvalAgreement(t *testing.T) {
	for _, name := range backendTestCases(t) {
		n, err := grid.CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		xOld := n.Reactances()
		zOld, err := OperatingMeasurements(n, xOld)
		if err != nil {
			t.Fatalf("%s: operating point: %v", name, err)
		}
		exactSet, err := SampleAttacks(n, xOld, zOld, sketchedAttackCfg(ExactGamma))
		if err != nil {
			t.Fatal(err)
		}
		sketchSet, err := SampleAttacks(n, xOld, zOld, sketchedAttackCfg(SketchGamma))
		if err != nil {
			t.Fatal(err)
		}
		if sketchSet.sketch == nil {
			t.Fatalf("%s: SampleAttacks under SketchGamma did not build the screening evaluator", name)
		}
		for pi, xd := range backendTestPoints(n) {
			xNew := n.ExpandDFACTS(xd)
			exact, err := EvaluateAttacks(n, exactSet, xNew, sketchedAttackCfg(ExactGamma))
			if err != nil {
				t.Fatalf("%s point %d (exact): %v", name, pi, err)
			}
			sketched, err := EvaluateAttacks(n, sketchSet, xNew, sketchedAttackCfg(SketchGamma))
			if err != nil {
				t.Fatalf("%s point %d (sketch): %v", name, pi, err)
			}
			for i := range exact.Eta {
				if sketched.Eta[i] != exact.Eta[i] {
					t.Errorf("%s point %d: η′(%.2f) sketched %v != exact %v",
						name, pi, exact.Deltas[i], sketched.Eta[i], exact.Eta[i])
				}
			}
			if sketched.UndetectableFraction != exact.UndetectableFraction {
				t.Errorf("%s point %d: undetectable fraction sketched %v != exact %v",
					name, pi, sketched.UndetectableFraction, exact.UndetectableFraction)
			}
			// γ is reported through the exact basis path on both sets.
			if sketched.Gamma != exact.Gamma {
				t.Errorf("%s point %d: γ sketched %v != exact %v", name, pi, sketched.Gamma, exact.Gamma)
			}
		}
	}
}

// TestSketchedAttackEvalExactPathsUntouched pins the gate: Monte Carlo and
// ReportProbs evaluations ignore the screening machinery even on a
// sketch-built set, so their outputs stay bitwise identical to the
// historical path.
func TestSketchedAttackEvalExactPathsUntouched(t *testing.T) {
	n, err := grid.CaseByName("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	xOld := n.Reactances()
	zOld, err := OperatingMeasurements(n, xOld)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sketchedAttackCfg(SketchGamma)
	cfg.NumAttacks = 50
	cfg.ReportProbs = true
	set, err := SampleAttacks(n, xOld, zOld, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exactCfg := cfg
	exactCfg.GammaBackend = ExactGamma
	exactSet, err := SampleAttacks(n, xOld, zOld, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	xNew := n.ExpandDFACTS(backendTestPoints(n)[2])
	a, err := EvaluateAttacks(n, set, xNew, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateAttacks(n, exactSet, xNew, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.DetectionProbs {
		if a.DetectionProbs[k] != b.DetectionProbs[k] {
			t.Fatalf("attack %d: ReportProbs probability differs under a sketch set: %v vs %v",
				k, a.DetectionProbs[k], b.DetectionProbs[k])
		}
	}
}

// TestCarriedWarmStartDeterminism pins the carried-Lanczos-warm-start
// discipline end to end: a full problem-(4) selection must return the
// identical design for 1 and 4 workers and across repeated runs, on both
// approximate backends (sparse, which carries LP bases; sketch, which
// additionally carries Ritz warm starts).
func TestCarriedWarmStartDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("57-bus selections take seconds")
	}
	n, err := grid.CaseByName("ieee57")
	if err != nil {
		t.Fatal(err)
	}
	xOld := n.Reactances()
	de, err := opf.NewDispatchEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []GammaBackend{SparseGamma, SketchGamma} {
		var ref *Selection
		for run := 0; run < 2; run++ {
			for _, par := range []int{1, 4} {
				eng := NewEnginesSharedBackend(n, xOld, de, backend)
				sel, err := SelectMTDWith(eng, n, xOld, SelectConfig{
					GammaThreshold: 0.05,
					Starts:         2,
					MaxEvals:       30,
					Seed:           5,
					BaselineCost:   1,
					Parallelism:    par,
				})
				if err != nil {
					t.Fatalf("%v run %d parallelism %d: %v", backend, run, par, err)
				}
				if ref == nil {
					ref = sel
					continue
				}
				if sel.Gamma != ref.Gamma {
					t.Fatalf("%v run %d parallelism %d: γ %v != reference %v", backend, run, par, sel.Gamma, ref.Gamma)
				}
				for i := range ref.Reactances {
					if sel.Reactances[i] != ref.Reactances[i] {
						t.Fatalf("%v run %d parallelism %d: reactance %d differs: %v vs %v",
							backend, run, par, i, sel.Reactances[i], ref.Reactances[i])
					}
				}
			}
		}
	}
}
