package core

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"gridmtd/internal/grid"
	"gridmtd/internal/opf"
)

// pre14 lazily computes the paper's pre-perturbation state for the 14-bus
// system: x_t from problem (1) (dispatch + D-FACTS optimized) and the
// operating measurement vector, shared across tests because the D-FACTS OPF
// is the expensive step.
var pre14 = struct {
	once sync.Once
	net  *grid.Network
	xt   []float64
	zt   []float64
	cost float64
	err  error
}{}

func setup14(t *testing.T) (*grid.Network, []float64, []float64, float64) {
	t.Helper()
	pre14.once.Do(func() {
		n := grid.CaseIEEE14()
		res, err := opf.SolveDFACTS(n, opf.DFACTSConfig{Starts: 10, Seed: 7})
		if err != nil {
			pre14.err = err
			return
		}
		z, err := OperatingMeasurements(n, res.Reactances)
		if err != nil {
			pre14.err = err
			return
		}
		pre14.net, pre14.xt, pre14.zt, pre14.cost = n, res.Reactances, z, res.CostPerHour
	})
	if pre14.err != nil {
		t.Fatal(pre14.err)
	}
	return pre14.net.Clone(), pre14.xt, pre14.zt, pre14.cost
}

func TestEffectivenessIdentityPerturbation(t *testing.T) {
	// No perturbation: every crafted attack remains perfectly stealthy and
	// no detection threshold is met.
	n, xt, zt, _ := setup14(t)
	eff, err := Effectiveness(n, xt, xt, zt, EffectivenessConfig{NumAttacks: 100, Seed: 1, ReportProbs: true})
	if err != nil {
		t.Fatal(err)
	}
	if eff.Gamma > 1e-6 {
		t.Errorf("gamma = %v for identical configurations, want 0", eff.Gamma)
	}
	if eff.UndetectableFraction != 1 {
		t.Errorf("undetectable fraction = %v, want 1", eff.UndetectableFraction)
	}
	for i, e := range eff.Eta {
		if e != 0 {
			t.Errorf("eta[%d] = %v, want 0", i, e)
		}
	}
	// All detection probabilities equal the FP rate.
	for _, p := range eff.DetectionProbs {
		if math.Abs(p-5e-4) > 1e-6 {
			t.Errorf("stealthy attack P_D = %v, want alpha", p)
			break
		}
	}
}

func TestEffectivenessIncreasesWithGamma(t *testing.T) {
	// The paper's central claim (Fig. 6): larger γ ⇒ larger η'(δ).
	n, xt, zt, _ := setup14(t)
	sel1, err := SelectMTD(n, xt, SelectConfig{GammaThreshold: 0.15, Starts: 4, Seed: 2, BaselineCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	sel2, err := SelectMTD(n, xt, SelectConfig{GammaThreshold: 0.40, Starts: 4, Seed: 2, BaselineCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	eff1, err := Effectiveness(n, xt, sel1.Reactances, zt, EffectivenessConfig{NumAttacks: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eff2, err := Effectiveness(n, xt, sel2.Reactances, zt, EffectivenessConfig{NumAttacks: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !(eff2.Gamma > eff1.Gamma) {
		t.Fatalf("gamma ordering violated: %v vs %v", eff1.Gamma, eff2.Gamma)
	}
	for i := range eff1.Eta {
		if eff2.Eta[i] < eff1.Eta[i] {
			t.Errorf("eta[%d]: %v at γ=%.2f < %v at γ=%.2f",
				i, eff2.Eta[i], eff2.Gamma, eff1.Eta[i], eff1.Gamma)
		}
	}
	// At the high end the MTD must be strongly effective (Fig. 6a shape).
	if eff2.Eta[len(eff2.Eta)-1] < 0.9 {
		t.Errorf("eta(0.95) = %v at γ=%.2f, want >= 0.9", eff2.Eta[len(eff2.Eta)-1], eff2.Gamma)
	}
}

func TestEffectivenessAnalyticMatchesMonteCarlo(t *testing.T) {
	n, xt, zt, _ := setup14(t)
	sel, err := SelectMTD(n, xt, SelectConfig{GammaThreshold: 0.3, Starts: 4, Seed: 4, BaselineCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := EffectivenessConfig{NumAttacks: 60, Seed: 5}
	analytic, err := Effectiveness(n, xt, sel.Reactances, zt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MonteCarlo = true
	cfg.NoiseTrials = 400
	mc, err := Effectiveness(n, xt, sel.Reactances, zt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range analytic.Eta {
		if math.Abs(analytic.Eta[i]-mc.Eta[i]) > 0.12 {
			t.Errorf("delta %v: analytic eta %v vs MC eta %v",
				analytic.Deltas[i], analytic.Eta[i], mc.Eta[i])
		}
	}
}

func TestEffectivenessRejectsBadZ(t *testing.T) {
	n, xt, _, _ := setup14(t)
	if _, err := Effectiveness(n, xt, xt, []float64{1, 2}, EffectivenessConfig{NumAttacks: 10}); err == nil {
		t.Fatal("expected error for wrong-length z")
	}
}

func TestEtaAt(t *testing.T) {
	r := &EffectivenessResult{Deltas: []float64{0.5, 0.9}, Eta: []float64{0.7, 0.3}}
	if v, err := r.EtaAt(0.9); err != nil || v != 0.3 {
		t.Errorf("EtaAt(0.9) = %v, %v", v, err)
	}
	if _, err := r.EtaAt(0.8); err == nil {
		t.Error("expected error for unevaluated delta")
	}
}

func TestSelectMTDMeetsThreshold(t *testing.T) {
	n, xt, _, baseCost := setup14(t)
	sel, err := SelectMTD(n, xt, SelectConfig{GammaThreshold: 0.25, Starts: 4, Seed: 6, BaselineCost: baseCost})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Gamma < 0.25-2e-3 {
		t.Errorf("achieved gamma %v below threshold", sel.Gamma)
	}
	if sel.CostIncrease < 0 {
		t.Errorf("cost increase %v negative", sel.CostIncrease)
	}
	// The chosen reactances respect the device limits and leave
	// non-D-FACTS branches untouched.
	dfacts := map[int]bool{}
	for _, i := range n.DFACTSIndices() {
		dfacts[i] = true
	}
	for i, br := range n.Branches {
		if dfacts[i] {
			if sel.Reactances[i] < br.XMin-1e-9 || sel.Reactances[i] > br.XMax+1e-9 {
				t.Errorf("branch %d reactance %v outside limits", i, sel.Reactances[i])
			}
		} else if sel.Reactances[i] != br.X {
			t.Errorf("branch %d without D-FACTS was perturbed", i)
		}
	}
}

func TestSelectMTDUnreachableThreshold(t *testing.T) {
	n, xt, _, baseCost := setup14(t)
	_, err := SelectMTD(n, xt, SelectConfig{GammaThreshold: 0.6, Starts: 3, Seed: 8, BaselineCost: baseCost})
	if !errors.Is(err, ErrConstraintUnreachable) {
		t.Fatalf("err = %v, want ErrConstraintUnreachable", err)
	}
}

func TestSelectMTDCostMonotoneInThreshold(t *testing.T) {
	// The tradeoff: a tighter γ requirement can only cost more.
	n, xt, _, baseCost := setup14(t)
	var prev float64
	var warm [][]float64
	for _, gth := range []float64{0.1, 0.3, 0.41} {
		sel, err := SelectMTD(n, xt, SelectConfig{
			GammaThreshold: gth, Starts: 4, Seed: 9,
			BaselineCost: baseCost, WarmStarts: warm,
		})
		if err != nil {
			t.Fatalf("gth=%v: %v", gth, err)
		}
		if sel.CostIncrease < prev-1e-3 {
			t.Errorf("cost increase %v at γ_th=%v below previous %v", sel.CostIncrease, gth, prev)
		}
		prev = sel.CostIncrease
		warm = [][]float64{n.DFACTSSetting(sel.Reactances)}
	}
	if prev <= 0 {
		t.Error("high-γ MTD should incur positive operational cost on the congested 14-bus system")
	}
}

func TestSelectMTDNoDFACTS(t *testing.T) {
	n, xt, _, _ := setup14(t)
	for i := range n.Branches {
		n.Branches[i].HasDFACTS = false
		n.Branches[i].XMin = n.Branches[i].X
		n.Branches[i].XMax = n.Branches[i].X
	}
	if _, err := SelectMTD(n, xt, SelectConfig{GammaThreshold: 0.1}); !errors.Is(err, ErrNoDFACTS) {
		t.Fatalf("err = %v, want ErrNoDFACTS", err)
	}
	if _, err := MaxGamma(n, xt, MaxGammaConfig{}); !errors.Is(err, ErrNoDFACTS) {
		t.Fatalf("MaxGamma err = %v, want ErrNoDFACTS", err)
	}
	if _, err := RandomPerturbation(rand.New(rand.NewSource(1)), n, 0.02); !errors.Is(err, ErrNoDFACTS) {
		t.Fatalf("RandomPerturbation err = %v, want ErrNoDFACTS", err)
	}
}

func TestMaxGammaReachesPaperRange(t *testing.T) {
	// With the paper's D-FACTS set and ±50% range, the achievable γ on the
	// 14-bus system reaches ≈ 0.42-0.45 rad (the paper sweeps up to 0.45).
	n, xt, _, baseCost := setup14(t)
	sel, err := MaxGamma(n, xt, MaxGammaConfig{Starts: 4, Seed: 10, BaselineCost: baseCost})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Gamma < 0.40 || sel.Gamma > math.Pi/2 {
		t.Errorf("max gamma = %v, want in [0.40, pi/2]", sel.Gamma)
	}
}

func TestRandomPerturbationWithinBounds(t *testing.T) {
	n, _, _, _ := setup14(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		x, err := RandomPerturbation(rng, n, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		for i, br := range n.Branches {
			if !br.HasDFACTS {
				if x[i] != br.X {
					t.Fatalf("non-D-FACTS branch %d perturbed", i)
				}
				continue
			}
			if math.Abs(x[i]-br.X) > 0.02*br.X+1e-12 {
				t.Fatalf("branch %d perturbed by more than 2%%: %v vs %v", i, x[i], br.X)
			}
			if x[i] < br.XMin-1e-12 || x[i] > br.XMax+1e-12 {
				t.Fatalf("branch %d outside device limits", i)
			}
		}
	}
	if _, err := RandomPerturbation(rng, n, 0); err == nil {
		t.Error("expected error for maxFrac=0")
	}
}

func TestRandomPerturbationGammaIsSmall(t *testing.T) {
	// The motivation for the paper: ±2% random keys yield tiny γ compared
	// to the designed perturbations.
	n, xt, _, _ := setup14(t)
	rng := rand.New(rand.NewSource(12))
	nn := n.WithReactances(xt)
	for trial := 0; trial < 10; trial++ {
		x, err := RandomPerturbation(rng, nn, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if g := Gamma(n, xt, x); g > 0.05 {
			t.Errorf("random ±2%% perturbation achieved γ=%v, expected < 0.05", g)
		}
	}
}

func TestOperationalCost(t *testing.T) {
	if got := OperationalCost(100, 110); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("OperationalCost = %v, want 0.1", got)
	}
	if got := OperationalCost(100, 99.9999); got != 0 {
		t.Errorf("tiny negative should clamp to 0, got %v", got)
	}
	if got := OperationalCost(0, 50); got != 0 {
		t.Errorf("zero baseline should give 0, got %v", got)
	}
}

func TestOperatingMeasurementsLength(t *testing.T) {
	n, xt, zt, _ := setup14(t)
	if len(zt) != n.M() {
		t.Fatalf("len(z) = %d, want %d", len(zt), n.M())
	}
	_ = xt
}

func TestTuneGammaThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning loop is expensive")
	}
	n, xt, zt, baseCost := setup14(t)
	sel, eff, err := TuneGammaThreshold(n, xt, zt, TuneConfig{
		TargetDelta: 0.9,
		TargetEta:   0.9,
		Iterations:  4,
		Effectiveness: EffectivenessConfig{
			NumAttacks: 200,
			Seed:       13,
		},
		Select: SelectConfig{Starts: 3, Seed: 13, BaselineCost: baseCost},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eff.Eta[0] < 0.9 {
		t.Errorf("tuned effectiveness %v below target 0.9", eff.Eta[0])
	}
	if sel.Gamma <= 0 {
		t.Errorf("tuned gamma = %v", sel.Gamma)
	}
}

func TestRandomKeyWithinCost(t *testing.T) {
	n, _, _, baseCost := setup14(t)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		x, cost, draws, err := RandomKeyWithinCost(rng, n, baseCost, 0.02, 200)
		if err != nil {
			t.Fatal(err)
		}
		if cost > baseCost*1.02+1e-9 {
			t.Errorf("key cost %v exceeds 2%% budget over %v", cost, baseCost)
		}
		if draws < 1 {
			t.Errorf("draws = %d", draws)
		}
		for i, br := range n.Branches {
			if x[i] < br.XMin-1e-12 || x[i] > br.XMax+1e-12 {
				t.Errorf("branch %d reactance outside device limits", i)
			}
		}
	}
	// Impossible budget must exhaust draws with an error.
	if _, _, _, err := RandomKeyWithinCost(rng, n, baseCost*0.5, 0.0, 10); err == nil {
		t.Error("expected exhaustion error for impossible budget")
	}
	// Invalid arguments.
	if _, _, _, err := RandomKeyWithinCost(rng, n, 0, 0.02, 10); err == nil {
		t.Error("expected error for zero baseline cost")
	}
	if _, _, _, err := RandomKeyWithinCost(rng, n, baseCost, -1, 10); err == nil {
		t.Error("expected error for negative budget")
	}
}
