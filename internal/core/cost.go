package core

// OperationalCost returns the paper's C_MTD metric (equation (3)): the
// relative increase of the OPF cost caused by the MTD perturbation,
// (C'_OPF − C_OPF)/C_OPF. The result is clamped below at zero — the MTD
// optimum can never genuinely beat the unconstrained optimum; tiny negative
// values only arise from solver tolerance.
func OperationalCost(baselineCost, mtdCost float64) float64 {
	if baselineCost <= 0 {
		return 0
	}
	c := (mtdCost - baselineCost) / baselineCost
	if c < 0 {
		return 0
	}
	return c
}
