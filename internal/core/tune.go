package core

import (
	"fmt"

	"gridmtd/internal/grid"
)

// TuneConfig controls TuneGammaThreshold.
type TuneConfig struct {
	// TargetDelta is the detection-probability level δ* of interest
	// (default 0.9, as in the paper's daily simulation).
	TargetDelta float64
	// TargetEta is the required effectiveness η'(δ*) (default 0.9).
	TargetEta float64
	// Iterations is the number of bisection steps on γ_th (default 7,
	// resolving γ to ~γ_max/2⁷).
	Iterations int
	// Effectiveness configures the inner η' evaluations; its Deltas are
	// overridden with TargetDelta.
	Effectiveness EffectivenessConfig
	// Select configures the inner problem-(4) solves; its GammaThreshold
	// is overridden during the search.
	Select SelectConfig
}

func (c TuneConfig) withDefaults() TuneConfig {
	if c.TargetDelta <= 0 {
		c.TargetDelta = 0.9
	}
	if c.TargetEta <= 0 {
		c.TargetEta = 0.9
	}
	if c.Iterations <= 0 {
		c.Iterations = 7
	}
	return c
}

// TuneGammaThreshold implements the defender's numerical procedure from the
// daily-cost experiment (Section VII-C): find the smallest γ_th whose
// problem-(4) solution achieves η'(δ*) ≥ target, by bisection over
// [0, γ_max] where γ_max comes from MaxGamma. It returns the tuned
// selection; if even γ_max misses the target, the max-γ selection is
// returned with its (best achievable) effectiveness and no error, matching
// the paper's "as effective as the hardware allows" fallback.
func TuneGammaThreshold(n *grid.Network, xOld, zOld []float64, cfg TuneConfig) (*Selection, *EffectivenessResult, error) {
	eng, err := newEngines(n, xOld)
	if err != nil {
		return nil, nil, err
	}
	return TuneGammaThresholdWith(eng, n, xOld, zOld, cfg)
}

// TuneGammaThresholdWith is TuneGammaThreshold against a pre-built
// evaluator bundle (γ engine keyed by xOld). Day sweeps build the dispatch
// engine once per day and pass an hourly NewEnginesShared bundle here, so
// only the γ side is rebuilt as the attacker's knowledge moves.
func TuneGammaThresholdWith(eng *Engines, n *grid.Network, xOld, zOld []float64, cfg TuneConfig) (*Selection, *EffectivenessResult, error) {
	cfg = cfg.withDefaults()
	cfg.Effectiveness.Deltas = []float64{cfg.TargetDelta}

	// The cached evaluators — the γ engine (keyed by xOld), the dispatch
	// engine, and the attack set — are built once. Every bisection
	// iteration reuses them; the attack sampler is reseeded per
	// Effectiveness call in the uncached path, so hoisting it out of the
	// loop reproduces exactly the same attacks.
	attacks, err := SampleAttacks(n, xOld, zOld, cfg.Effectiveness)
	if err != nil {
		return nil, nil, err
	}
	evalEta := func(sel *Selection) (*EffectivenessResult, float64, error) {
		eff, err := EvaluateAttacks(n, attacks, sel.Reactances, cfg.Effectiveness)
		if err != nil {
			return nil, 0, err
		}
		return eff, eff.Eta[0], nil
	}

	// Compute the no-MTD reference cost once, reusing it across bisection
	// iterations.
	if cfg.Select.BaselineCost <= 0 {
		baseline, err := NoMTDCost(n, cfg.Select.Starts, cfg.Select.Seed)
		if err != nil {
			return nil, nil, err
		}
		cfg.Select.BaselineCost = baseline
	}

	// Probe the achievable range.
	maxSel, err := maxGamma(n, xOld, MaxGammaConfig{
		Starts:       cfg.Select.Starts,
		Seed:         cfg.Select.Seed,
		BaselineCost: cfg.Select.BaselineCost,
		Parallelism:  cfg.Select.Parallelism,
	}, eng)
	if err != nil {
		return nil, nil, fmt.Errorf("core: probing max gamma: %w", err)
	}
	maxEff, maxEta, err := evalEta(maxSel)
	if err != nil {
		return nil, nil, err
	}
	if maxEta < cfg.TargetEta {
		// Even the most aggressive perturbation cannot reach the target:
		// return it as the best effort.
		return maxSel, maxEff, nil
	}

	lo, hi := 0.0, maxSel.Gamma
	bestSel, bestEff := maxSel, maxEff
	warm := [][]float64{n.DFACTSSetting(maxSel.Reactances)}
	for it := 0; it < cfg.Iterations; it++ {
		mid := (lo + hi) / 2
		sCfg := cfg.Select
		sCfg.GammaThreshold = mid
		sCfg.WarmStarts = warm
		sel, err := selectMTD(n, xOld, sCfg, eng)
		if err != nil {
			// Threshold unreachable at this level (or OPF infeasible):
			// treat as "needs larger γ_th" being impossible — tighten from
			// below.
			lo = mid
			continue
		}
		eff, eta, err := evalEta(sel)
		if err != nil {
			return nil, nil, err
		}
		warm = append(warm, n.DFACTSSetting(sel.Reactances))
		if eta >= cfg.TargetEta {
			// Keep the cheapest selection that meets the target (bisection
			// lowers γ_th monotonically, but the non-convex inner search can
			// return pricier solutions at lower thresholds).
			if sel.OPF.CostPerHour < bestSel.OPF.CostPerHour {
				bestSel, bestEff = sel, eff
			}
			hi = mid
		} else {
			lo = mid
		}
	}
	return bestSel, bestEff, nil
}
