// Package core implements the paper's contribution: selection and
// evaluation of moving-target-defense (MTD) reactance perturbations for
// power grid state estimation.
//
// The defender periodically re-dispatches the grid by solving the OPF; an
// attacker who learned the measurement matrix H_t of an earlier
// configuration injects stealthy attacks a = H_t·c. The MTD perturbs
// D-FACTS branch reactances so the new matrix H'_t' separates from H_t,
// exposing those attacks to the bad data detector.
//
// The package provides:
//
//   - Effectiveness: the paper's η'(δ) metric — the fraction of stealthy
//     pre-perturbation attacks whose detection probability under the new
//     configuration exceeds δ (Section V-A), evaluated analytically via the
//     noncentral-χ² residual distribution or by Monte Carlo, together with
//     the subspace separation γ(H_t, H'_t').
//   - SelectMTD: the constrained perturbation selection of problem (4) —
//     minimize OPF cost subject to γ(H_t, H'_t') ≥ γ_th — solved by
//     multi-start derivative-free search with a quadratic penalty, the
//     dispatch LP nested inside.
//   - MaxGamma: the pure-detection design (Section V) that maximizes
//     γ regardless of cost, used to probe the feasible γ range of the
//     D-FACTS hardware.
//   - RandomPerturbation: the random keyspace baseline of prior work
//     (Morrow et al., Davis et al., Rahman et al.) against which the paper
//     compares.
//   - OperationalCost: the paper's C_MTD metric (relative OPF cost
//     increase), and TuneGammaThreshold: the numerical procedure that picks
//     the smallest γ_th achieving a target effectiveness.
//
// # Estimator caching
//
// Evaluating η'(δ) needs the post-MTD state estimator (a QR factorization
// of H'), which dominates large-case evaluation cost. EstimatorCache
// memoizes estimators per network with a bitwise key over the candidate
// reactance vector: two x_new vectors share an entry only when every
// float64 is identical, so a hit can never change a result. There is no
// staleness-based invalidation — networks resolved from the case registry
// are immutable, so an entry is invalidated only by LRU eviction (capacity
// pressure) or by keying against a different *grid.Network pointer, which
// bypasses the cache entirely. Misses build through se.Factory, which
// re-orthogonalizes only the D-FACTS-adjacent state columns and falls back
// to the full QR whenever its stable-column premise fails bitwise.
// EffectivenessConfig.Estimators opts an evaluation in; only fast
// (sparse-backend) attack sets consult it, keeping the small-case dense
// path byte-identical.
//
// # Solve memoization and restart screening
//
// The same bitwise-keying discipline governs the dispatch LP underneath
// the selection search. Sparse-backend opf engines memoize full solves
// per (loads, x) — the search revisits candidate points (initial-point
// trajectories, penalty re-evaluations), and a memo hit returns bitwise
// what the miss computed, so the hit/miss pattern cannot alter a
// result. On top of that, SelectMTD's multi-start runs with screened
// restarts on the sparse path: the deterministic initial points search
// first and fix a bar, and each random restart earns its Nelder-Mead
// budget only by beating that bar at its start point, cutting a cold
// ieee300 selection from 179 to 88 full dispatch solves (PERF.md, PR 8).
// The bar is fixed at a stage barrier, so outcomes are identical for
// every worker count. Dense engines build no memo and dense call sites
// never screen; the golden suite is byte-identical by construction.
package core
